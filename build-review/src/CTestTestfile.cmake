# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("ir")
subdirs("interp")
subdirs("analysis")
subdirs("opt")
subdirs("pipeline")
subdirs("hls")
subdirs("verilog")
subdirs("sim")
subdirs("power")
subdirs("kernels")
subdirs("cgpa")
