# Empty compiler generated dependencies file for cgpa_pipeline.
# This may be replaced when dependencies are built.
