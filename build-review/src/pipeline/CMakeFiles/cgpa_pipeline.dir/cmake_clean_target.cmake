file(REMOVE_RECURSE
  "libcgpa_pipeline.a"
)
