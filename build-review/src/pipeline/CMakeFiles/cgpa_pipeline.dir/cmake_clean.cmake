file(REMOVE_RECURSE
  "CMakeFiles/cgpa_pipeline.dir/functional_exec.cpp.o"
  "CMakeFiles/cgpa_pipeline.dir/functional_exec.cpp.o.d"
  "CMakeFiles/cgpa_pipeline.dir/partition.cpp.o"
  "CMakeFiles/cgpa_pipeline.dir/partition.cpp.o.d"
  "CMakeFiles/cgpa_pipeline.dir/plan.cpp.o"
  "CMakeFiles/cgpa_pipeline.dir/plan.cpp.o.d"
  "CMakeFiles/cgpa_pipeline.dir/transform.cpp.o"
  "CMakeFiles/cgpa_pipeline.dir/transform.cpp.o.d"
  "libcgpa_pipeline.a"
  "libcgpa_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgpa_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
