# Empty compiler generated dependencies file for cgpa_ir.
# This may be replaced when dependencies are built.
