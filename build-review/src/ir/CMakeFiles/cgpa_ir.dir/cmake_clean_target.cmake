file(REMOVE_RECURSE
  "libcgpa_ir.a"
)
