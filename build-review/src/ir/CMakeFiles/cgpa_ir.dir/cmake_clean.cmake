file(REMOVE_RECURSE
  "CMakeFiles/cgpa_ir.dir/basic_block.cpp.o"
  "CMakeFiles/cgpa_ir.dir/basic_block.cpp.o.d"
  "CMakeFiles/cgpa_ir.dir/builder.cpp.o"
  "CMakeFiles/cgpa_ir.dir/builder.cpp.o.d"
  "CMakeFiles/cgpa_ir.dir/function.cpp.o"
  "CMakeFiles/cgpa_ir.dir/function.cpp.o.d"
  "CMakeFiles/cgpa_ir.dir/instruction.cpp.o"
  "CMakeFiles/cgpa_ir.dir/instruction.cpp.o.d"
  "CMakeFiles/cgpa_ir.dir/module.cpp.o"
  "CMakeFiles/cgpa_ir.dir/module.cpp.o.d"
  "CMakeFiles/cgpa_ir.dir/parser.cpp.o"
  "CMakeFiles/cgpa_ir.dir/parser.cpp.o.d"
  "CMakeFiles/cgpa_ir.dir/printer.cpp.o"
  "CMakeFiles/cgpa_ir.dir/printer.cpp.o.d"
  "CMakeFiles/cgpa_ir.dir/slots.cpp.o"
  "CMakeFiles/cgpa_ir.dir/slots.cpp.o.d"
  "CMakeFiles/cgpa_ir.dir/type.cpp.o"
  "CMakeFiles/cgpa_ir.dir/type.cpp.o.d"
  "CMakeFiles/cgpa_ir.dir/value.cpp.o"
  "CMakeFiles/cgpa_ir.dir/value.cpp.o.d"
  "CMakeFiles/cgpa_ir.dir/verifier.cpp.o"
  "CMakeFiles/cgpa_ir.dir/verifier.cpp.o.d"
  "libcgpa_ir.a"
  "libcgpa_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgpa_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
