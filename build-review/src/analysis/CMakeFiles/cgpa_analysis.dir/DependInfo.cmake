
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/alias.cpp" "src/analysis/CMakeFiles/cgpa_analysis.dir/alias.cpp.o" "gcc" "src/analysis/CMakeFiles/cgpa_analysis.dir/alias.cpp.o.d"
  "/root/repo/src/analysis/control_dep.cpp" "src/analysis/CMakeFiles/cgpa_analysis.dir/control_dep.cpp.o" "gcc" "src/analysis/CMakeFiles/cgpa_analysis.dir/control_dep.cpp.o.d"
  "/root/repo/src/analysis/dominators.cpp" "src/analysis/CMakeFiles/cgpa_analysis.dir/dominators.cpp.o" "gcc" "src/analysis/CMakeFiles/cgpa_analysis.dir/dominators.cpp.o.d"
  "/root/repo/src/analysis/loops.cpp" "src/analysis/CMakeFiles/cgpa_analysis.dir/loops.cpp.o" "gcc" "src/analysis/CMakeFiles/cgpa_analysis.dir/loops.cpp.o.d"
  "/root/repo/src/analysis/pdg.cpp" "src/analysis/CMakeFiles/cgpa_analysis.dir/pdg.cpp.o" "gcc" "src/analysis/CMakeFiles/cgpa_analysis.dir/pdg.cpp.o.d"
  "/root/repo/src/analysis/profile.cpp" "src/analysis/CMakeFiles/cgpa_analysis.dir/profile.cpp.o" "gcc" "src/analysis/CMakeFiles/cgpa_analysis.dir/profile.cpp.o.d"
  "/root/repo/src/analysis/scc.cpp" "src/analysis/CMakeFiles/cgpa_analysis.dir/scc.cpp.o" "gcc" "src/analysis/CMakeFiles/cgpa_analysis.dir/scc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/ir/CMakeFiles/cgpa_ir.dir/DependInfo.cmake"
  "/root/repo/build-review/src/interp/CMakeFiles/cgpa_interp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/cgpa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
