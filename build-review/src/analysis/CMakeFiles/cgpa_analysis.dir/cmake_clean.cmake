file(REMOVE_RECURSE
  "CMakeFiles/cgpa_analysis.dir/alias.cpp.o"
  "CMakeFiles/cgpa_analysis.dir/alias.cpp.o.d"
  "CMakeFiles/cgpa_analysis.dir/control_dep.cpp.o"
  "CMakeFiles/cgpa_analysis.dir/control_dep.cpp.o.d"
  "CMakeFiles/cgpa_analysis.dir/dominators.cpp.o"
  "CMakeFiles/cgpa_analysis.dir/dominators.cpp.o.d"
  "CMakeFiles/cgpa_analysis.dir/loops.cpp.o"
  "CMakeFiles/cgpa_analysis.dir/loops.cpp.o.d"
  "CMakeFiles/cgpa_analysis.dir/pdg.cpp.o"
  "CMakeFiles/cgpa_analysis.dir/pdg.cpp.o.d"
  "CMakeFiles/cgpa_analysis.dir/profile.cpp.o"
  "CMakeFiles/cgpa_analysis.dir/profile.cpp.o.d"
  "CMakeFiles/cgpa_analysis.dir/scc.cpp.o"
  "CMakeFiles/cgpa_analysis.dir/scc.cpp.o.d"
  "libcgpa_analysis.a"
  "libcgpa_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgpa_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
