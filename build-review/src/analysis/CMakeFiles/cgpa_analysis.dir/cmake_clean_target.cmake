file(REMOVE_RECURSE
  "libcgpa_analysis.a"
)
