# Empty compiler generated dependencies file for cgpa_analysis.
# This may be replaced when dependencies are built.
