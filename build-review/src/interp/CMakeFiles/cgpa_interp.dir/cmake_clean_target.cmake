file(REMOVE_RECURSE
  "libcgpa_interp.a"
)
