file(REMOVE_RECURSE
  "CMakeFiles/cgpa_interp.dir/eval.cpp.o"
  "CMakeFiles/cgpa_interp.dir/eval.cpp.o.d"
  "CMakeFiles/cgpa_interp.dir/interpreter.cpp.o"
  "CMakeFiles/cgpa_interp.dir/interpreter.cpp.o.d"
  "CMakeFiles/cgpa_interp.dir/memory.cpp.o"
  "CMakeFiles/cgpa_interp.dir/memory.cpp.o.d"
  "libcgpa_interp.a"
  "libcgpa_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgpa_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
