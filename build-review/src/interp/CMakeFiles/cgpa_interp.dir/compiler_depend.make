# Empty compiler generated dependencies file for cgpa_interp.
# This may be replaced when dependencies are built.
