file(REMOVE_RECURSE
  "CMakeFiles/cgpa_driver.dir/driver.cpp.o"
  "CMakeFiles/cgpa_driver.dir/driver.cpp.o.d"
  "CMakeFiles/cgpa_driver.dir/report.cpp.o"
  "CMakeFiles/cgpa_driver.dir/report.cpp.o.d"
  "libcgpa_driver.a"
  "libcgpa_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgpa_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
