# Empty dependencies file for cgpa_driver.
# This may be replaced when dependencies are built.
