file(REMOVE_RECURSE
  "libcgpa_driver.a"
)
