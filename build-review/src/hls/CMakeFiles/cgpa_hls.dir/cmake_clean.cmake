file(REMOVE_RECURSE
  "CMakeFiles/cgpa_hls.dir/area.cpp.o"
  "CMakeFiles/cgpa_hls.dir/area.cpp.o.d"
  "CMakeFiles/cgpa_hls.dir/ops.cpp.o"
  "CMakeFiles/cgpa_hls.dir/ops.cpp.o.d"
  "CMakeFiles/cgpa_hls.dir/schedule.cpp.o"
  "CMakeFiles/cgpa_hls.dir/schedule.cpp.o.d"
  "CMakeFiles/cgpa_hls.dir/sdc.cpp.o"
  "CMakeFiles/cgpa_hls.dir/sdc.cpp.o.d"
  "libcgpa_hls.a"
  "libcgpa_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgpa_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
