
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hls/area.cpp" "src/hls/CMakeFiles/cgpa_hls.dir/area.cpp.o" "gcc" "src/hls/CMakeFiles/cgpa_hls.dir/area.cpp.o.d"
  "/root/repo/src/hls/ops.cpp" "src/hls/CMakeFiles/cgpa_hls.dir/ops.cpp.o" "gcc" "src/hls/CMakeFiles/cgpa_hls.dir/ops.cpp.o.d"
  "/root/repo/src/hls/schedule.cpp" "src/hls/CMakeFiles/cgpa_hls.dir/schedule.cpp.o" "gcc" "src/hls/CMakeFiles/cgpa_hls.dir/schedule.cpp.o.d"
  "/root/repo/src/hls/sdc.cpp" "src/hls/CMakeFiles/cgpa_hls.dir/sdc.cpp.o" "gcc" "src/hls/CMakeFiles/cgpa_hls.dir/sdc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/ir/CMakeFiles/cgpa_ir.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/cgpa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
