file(REMOVE_RECURSE
  "libcgpa_hls.a"
)
