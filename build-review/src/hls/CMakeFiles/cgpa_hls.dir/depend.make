# Empty dependencies file for cgpa_hls.
# This may be replaced when dependencies are built.
