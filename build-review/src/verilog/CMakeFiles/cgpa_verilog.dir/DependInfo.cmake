
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verilog/emitter.cpp" "src/verilog/CMakeFiles/cgpa_verilog.dir/emitter.cpp.o" "gcc" "src/verilog/CMakeFiles/cgpa_verilog.dir/emitter.cpp.o.d"
  "/root/repo/src/verilog/lint.cpp" "src/verilog/CMakeFiles/cgpa_verilog.dir/lint.cpp.o" "gcc" "src/verilog/CMakeFiles/cgpa_verilog.dir/lint.cpp.o.d"
  "/root/repo/src/verilog/testbench.cpp" "src/verilog/CMakeFiles/cgpa_verilog.dir/testbench.cpp.o" "gcc" "src/verilog/CMakeFiles/cgpa_verilog.dir/testbench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/pipeline/CMakeFiles/cgpa_pipeline.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hls/CMakeFiles/cgpa_hls.dir/DependInfo.cmake"
  "/root/repo/build-review/src/analysis/CMakeFiles/cgpa_analysis.dir/DependInfo.cmake"
  "/root/repo/build-review/src/interp/CMakeFiles/cgpa_interp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ir/CMakeFiles/cgpa_ir.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/cgpa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
