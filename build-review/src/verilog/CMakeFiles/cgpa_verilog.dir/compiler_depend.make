# Empty compiler generated dependencies file for cgpa_verilog.
# This may be replaced when dependencies are built.
