file(REMOVE_RECURSE
  "libcgpa_verilog.a"
)
