file(REMOVE_RECURSE
  "CMakeFiles/cgpa_verilog.dir/emitter.cpp.o"
  "CMakeFiles/cgpa_verilog.dir/emitter.cpp.o.d"
  "CMakeFiles/cgpa_verilog.dir/lint.cpp.o"
  "CMakeFiles/cgpa_verilog.dir/lint.cpp.o.d"
  "CMakeFiles/cgpa_verilog.dir/testbench.cpp.o"
  "CMakeFiles/cgpa_verilog.dir/testbench.cpp.o.d"
  "libcgpa_verilog.a"
  "libcgpa_verilog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgpa_verilog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
