file(REMOVE_RECURSE
  "CMakeFiles/cgpa_sim.dir/cache.cpp.o"
  "CMakeFiles/cgpa_sim.dir/cache.cpp.o.d"
  "CMakeFiles/cgpa_sim.dir/engine.cpp.o"
  "CMakeFiles/cgpa_sim.dir/engine.cpp.o.d"
  "CMakeFiles/cgpa_sim.dir/fifo.cpp.o"
  "CMakeFiles/cgpa_sim.dir/fifo.cpp.o.d"
  "CMakeFiles/cgpa_sim.dir/mips.cpp.o"
  "CMakeFiles/cgpa_sim.dir/mips.cpp.o.d"
  "CMakeFiles/cgpa_sim.dir/system.cpp.o"
  "CMakeFiles/cgpa_sim.dir/system.cpp.o.d"
  "libcgpa_sim.a"
  "libcgpa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgpa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
