# Empty dependencies file for cgpa_sim.
# This may be replaced when dependencies are built.
