file(REMOVE_RECURSE
  "libcgpa_sim.a"
)
