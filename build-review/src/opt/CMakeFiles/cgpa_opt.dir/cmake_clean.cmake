file(REMOVE_RECURSE
  "CMakeFiles/cgpa_opt.dir/passes.cpp.o"
  "CMakeFiles/cgpa_opt.dir/passes.cpp.o.d"
  "libcgpa_opt.a"
  "libcgpa_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgpa_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
