# Empty dependencies file for cgpa_opt.
# This may be replaced when dependencies are built.
