file(REMOVE_RECURSE
  "libcgpa_opt.a"
)
