file(REMOVE_RECURSE
  "CMakeFiles/cgpa_power.dir/model.cpp.o"
  "CMakeFiles/cgpa_power.dir/model.cpp.o.d"
  "libcgpa_power.a"
  "libcgpa_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgpa_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
