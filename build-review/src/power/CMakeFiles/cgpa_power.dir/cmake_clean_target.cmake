file(REMOVE_RECURSE
  "libcgpa_power.a"
)
