# Empty compiler generated dependencies file for cgpa_power.
# This may be replaced when dependencies are built.
