# Empty compiler generated dependencies file for cgpa_kernels.
# This may be replaced when dependencies are built.
