
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/em3d.cpp" "src/kernels/CMakeFiles/cgpa_kernels.dir/em3d.cpp.o" "gcc" "src/kernels/CMakeFiles/cgpa_kernels.dir/em3d.cpp.o.d"
  "/root/repo/src/kernels/gaussblur.cpp" "src/kernels/CMakeFiles/cgpa_kernels.dir/gaussblur.cpp.o" "gcc" "src/kernels/CMakeFiles/cgpa_kernels.dir/gaussblur.cpp.o.d"
  "/root/repo/src/kernels/hash_index.cpp" "src/kernels/CMakeFiles/cgpa_kernels.dir/hash_index.cpp.o" "gcc" "src/kernels/CMakeFiles/cgpa_kernels.dir/hash_index.cpp.o.d"
  "/root/repo/src/kernels/kernel.cpp" "src/kernels/CMakeFiles/cgpa_kernels.dir/kernel.cpp.o" "gcc" "src/kernels/CMakeFiles/cgpa_kernels.dir/kernel.cpp.o.d"
  "/root/repo/src/kernels/kmeans.cpp" "src/kernels/CMakeFiles/cgpa_kernels.dir/kmeans.cpp.o" "gcc" "src/kernels/CMakeFiles/cgpa_kernels.dir/kmeans.cpp.o.d"
  "/root/repo/src/kernels/ks.cpp" "src/kernels/CMakeFiles/cgpa_kernels.dir/ks.cpp.o" "gcc" "src/kernels/CMakeFiles/cgpa_kernels.dir/ks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/ir/CMakeFiles/cgpa_ir.dir/DependInfo.cmake"
  "/root/repo/build-review/src/interp/CMakeFiles/cgpa_interp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/cgpa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
