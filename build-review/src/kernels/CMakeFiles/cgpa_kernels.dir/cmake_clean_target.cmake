file(REMOVE_RECURSE
  "libcgpa_kernels.a"
)
