file(REMOVE_RECURSE
  "CMakeFiles/cgpa_kernels.dir/em3d.cpp.o"
  "CMakeFiles/cgpa_kernels.dir/em3d.cpp.o.d"
  "CMakeFiles/cgpa_kernels.dir/gaussblur.cpp.o"
  "CMakeFiles/cgpa_kernels.dir/gaussblur.cpp.o.d"
  "CMakeFiles/cgpa_kernels.dir/hash_index.cpp.o"
  "CMakeFiles/cgpa_kernels.dir/hash_index.cpp.o.d"
  "CMakeFiles/cgpa_kernels.dir/kernel.cpp.o"
  "CMakeFiles/cgpa_kernels.dir/kernel.cpp.o.d"
  "CMakeFiles/cgpa_kernels.dir/kmeans.cpp.o"
  "CMakeFiles/cgpa_kernels.dir/kmeans.cpp.o.d"
  "CMakeFiles/cgpa_kernels.dir/ks.cpp.o"
  "CMakeFiles/cgpa_kernels.dir/ks.cpp.o.d"
  "libcgpa_kernels.a"
  "libcgpa_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgpa_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
