# Empty dependencies file for cgpa_support.
# This may be replaced when dependencies are built.
