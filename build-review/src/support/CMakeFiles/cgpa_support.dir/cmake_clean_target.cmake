file(REMOVE_RECURSE
  "libcgpa_support.a"
)
