file(REMOVE_RECURSE
  "CMakeFiles/cgpa_support.dir/diag.cpp.o"
  "CMakeFiles/cgpa_support.dir/diag.cpp.o.d"
  "CMakeFiles/cgpa_support.dir/rng.cpp.o"
  "CMakeFiles/cgpa_support.dir/rng.cpp.o.d"
  "CMakeFiles/cgpa_support.dir/strings.cpp.o"
  "CMakeFiles/cgpa_support.dir/strings.cpp.o.d"
  "libcgpa_support.a"
  "libcgpa_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgpa_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
