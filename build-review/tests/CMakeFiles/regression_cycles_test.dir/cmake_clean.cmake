file(REMOVE_RECURSE
  "CMakeFiles/regression_cycles_test.dir/regression_cycles_test.cpp.o"
  "CMakeFiles/regression_cycles_test.dir/regression_cycles_test.cpp.o.d"
  "regression_cycles_test"
  "regression_cycles_test.pdb"
  "regression_cycles_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regression_cycles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
