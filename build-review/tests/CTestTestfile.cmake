# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/support_test[1]_include.cmake")
include("/root/repo/build-review/tests/ir_test[1]_include.cmake")
include("/root/repo/build-review/tests/interp_test[1]_include.cmake")
include("/root/repo/build-review/tests/analysis_test[1]_include.cmake")
include("/root/repo/build-review/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build-review/tests/hls_test[1]_include.cmake")
include("/root/repo/build-review/tests/sim_test[1]_include.cmake")
include("/root/repo/build-review/tests/kernels_test[1]_include.cmake")
include("/root/repo/build-review/tests/verilog_test[1]_include.cmake")
include("/root/repo/build-review/tests/opt_test[1]_include.cmake")
include("/root/repo/build-review/tests/driver_test[1]_include.cmake")
include("/root/repo/build-review/tests/power_test[1]_include.cmake")
include("/root/repo/build-review/tests/affine_test[1]_include.cmake")
include("/root/repo/build-review/tests/robustness_test[1]_include.cmake")
include("/root/repo/build-review/tests/case_studies_test[1]_include.cmake")
include("/root/repo/build-review/tests/regression_cycles_test[1]_include.cmake")
