file(REMOVE_RECURSE
  "CMakeFiles/cgpac.dir/cgpac.cpp.o"
  "CMakeFiles/cgpac.dir/cgpac.cpp.o.d"
  "cgpac"
  "cgpac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgpac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
