# Empty compiler generated dependencies file for cgpac.
# This may be replaced when dependencies are built.
