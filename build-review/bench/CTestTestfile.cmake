# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-review/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench-smoke "/root/repo/build-review/bench/framework_micro" "--min-seconds" "0.02" "--out" "/root/repo/build-review/bench/BENCH_smoke.json")
set_tests_properties(bench-smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;23;add_test;/root/repo/bench/CMakeLists.txt;0;")
