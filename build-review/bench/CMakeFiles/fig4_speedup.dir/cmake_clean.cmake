file(REMOVE_RECURSE
  "CMakeFiles/fig4_speedup.dir/fig4_speedup.cpp.o"
  "CMakeFiles/fig4_speedup.dir/fig4_speedup.cpp.o.d"
  "fig4_speedup"
  "fig4_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
