# Empty dependencies file for fig4_speedup.
# This may be replaced when dependencies are built.
