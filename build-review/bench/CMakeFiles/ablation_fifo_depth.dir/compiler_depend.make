# Empty compiler generated dependencies file for ablation_fifo_depth.
# This may be replaced when dependencies are built.
