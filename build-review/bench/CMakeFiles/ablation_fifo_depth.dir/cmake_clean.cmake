file(REMOVE_RECURSE
  "CMakeFiles/ablation_fifo_depth.dir/ablation_fifo_depth.cpp.o"
  "CMakeFiles/ablation_fifo_depth.dir/ablation_fifo_depth.cpp.o.d"
  "ablation_fifo_depth"
  "ablation_fifo_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fifo_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
