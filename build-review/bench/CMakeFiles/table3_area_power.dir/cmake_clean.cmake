file(REMOVE_RECURSE
  "CMakeFiles/table3_area_power.dir/table3_area_power.cpp.o"
  "CMakeFiles/table3_area_power.dir/table3_area_power.cpp.o.d"
  "table3_area_power"
  "table3_area_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_area_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
