# Empty compiler generated dependencies file for table3_area_power.
# This may be replaced when dependencies are built.
