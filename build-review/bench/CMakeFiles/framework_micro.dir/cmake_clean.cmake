file(REMOVE_RECURSE
  "CMakeFiles/framework_micro.dir/framework_micro.cpp.o"
  "CMakeFiles/framework_micro.dir/framework_micro.cpp.o.d"
  "framework_micro"
  "framework_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/framework_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
