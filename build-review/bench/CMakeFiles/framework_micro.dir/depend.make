# Empty dependencies file for framework_micro.
# This may be replaced when dependencies are built.
