file(REMOVE_RECURSE
  "CMakeFiles/table2_partitions.dir/table2_partitions.cpp.o"
  "CMakeFiles/table2_partitions.dir/table2_partitions.cpp.o.d"
  "table2_partitions"
  "table2_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
