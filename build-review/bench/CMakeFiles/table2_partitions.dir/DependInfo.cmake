
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_partitions.cpp" "bench/CMakeFiles/table2_partitions.dir/table2_partitions.cpp.o" "gcc" "bench/CMakeFiles/table2_partitions.dir/table2_partitions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/cgpa/CMakeFiles/cgpa_driver.dir/DependInfo.cmake"
  "/root/repo/build-review/src/power/CMakeFiles/cgpa_power.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/cgpa_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/kernels/CMakeFiles/cgpa_kernels.dir/DependInfo.cmake"
  "/root/repo/build-review/src/verilog/CMakeFiles/cgpa_verilog.dir/DependInfo.cmake"
  "/root/repo/build-review/src/pipeline/CMakeFiles/cgpa_pipeline.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hls/CMakeFiles/cgpa_hls.dir/DependInfo.cmake"
  "/root/repo/build-review/src/opt/CMakeFiles/cgpa_opt.dir/DependInfo.cmake"
  "/root/repo/build-review/src/analysis/CMakeFiles/cgpa_analysis.dir/DependInfo.cmake"
  "/root/repo/build-review/src/interp/CMakeFiles/cgpa_interp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ir/CMakeFiles/cgpa_ir.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/cgpa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
