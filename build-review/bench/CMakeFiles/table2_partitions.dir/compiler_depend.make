# Empty compiler generated dependencies file for table2_partitions.
# This may be replaced when dependencies are built.
