# Empty compiler generated dependencies file for scalability_workers.
# This may be replaced when dependencies are built.
