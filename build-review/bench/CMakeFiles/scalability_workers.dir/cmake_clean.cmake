file(REMOVE_RECURSE
  "CMakeFiles/scalability_workers.dir/scalability_workers.cpp.o"
  "CMakeFiles/scalability_workers.dir/scalability_workers.cpp.o.d"
  "scalability_workers"
  "scalability_workers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalability_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
