file(REMOVE_RECURSE
  "CMakeFiles/tradeoff_p1_p2.dir/tradeoff_p1_p2.cpp.o"
  "CMakeFiles/tradeoff_p1_p2.dir/tradeoff_p1_p2.cpp.o.d"
  "tradeoff_p1_p2"
  "tradeoff_p1_p2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tradeoff_p1_p2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
