# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tradeoff_p1_p2.
