# Empty dependencies file for tradeoff_p1_p2.
# This may be replaced when dependencies are built.
