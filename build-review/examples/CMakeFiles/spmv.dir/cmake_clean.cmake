file(REMOVE_RECURSE
  "CMakeFiles/spmv.dir/spmv.cpp.o"
  "CMakeFiles/spmv.dir/spmv.cpp.o.d"
  "spmv"
  "spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
