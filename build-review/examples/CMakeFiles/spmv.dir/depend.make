# Empty dependencies file for spmv.
# This may be replaced when dependencies are built.
