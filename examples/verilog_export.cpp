// Verilog export: compile a kernel with CGPA, emit the RTL (worker FSMs,
// FIFOs, memory crossbar, top level) and a self-checking testbench, run
// the built-in structural lint, and write everything to ./cgpa_rtl/.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "cgpa/driver.hpp"
#include "verilog/emitter.hpp"
#include "verilog/lint.hpp"
#include "verilog/testbench.hpp"

int main(int argc, char** argv) {
  using namespace cgpa;
  const std::string kernelName = argc > 1 ? argv[1] : "hash-indexing";
  const kernels::Kernel* kernel = kernels::kernelByName(kernelName);
  if (kernel == nullptr) {
    std::printf("unknown kernel '%s'\n", kernelName.c_str());
    return 1;
  }

  const driver::CompiledAccelerator accel = driver::compileKernel(
      *kernel, driver::Flow::CgpaP1, driver::CompileOptions{});
  std::printf("compiled %s: pipeline %s, %zu tasks, %zu channels\n",
              kernel->name().c_str(), accel.shape.c_str(),
              accel.pipelineModule.tasks.size(),
              accel.pipelineModule.channels.size());

  const std::string rtl = verilog::emitPipelineVerilog(
      accel.pipelineModule, hls::ScheduleOptions{}, verilog::VerilogOptions{});
  verilog::TestbenchOptions tbOptions;
  tbOptions.dumpBytes = 64;
  const std::string tb = verilog::emitTestbench(accel.pipelineModule, tbOptions);

  const std::string lintErrors = verilog::lintReport(rtl + "\n" + tb);
  if (!lintErrors.empty()) {
    std::printf("structural lint FAILED:\n%s", lintErrors.c_str());
    return 1;
  }
  std::printf("structural lint: clean (%zu lines of Verilog)\n",
              static_cast<std::size_t>(
                  std::count(rtl.begin(), rtl.end(), '\n')));

  std::filesystem::create_directories("cgpa_rtl");
  const std::string base = "cgpa_rtl/" + kernel->name();
  std::ofstream(base + ".v") << rtl;
  std::ofstream(base + "_tb.v") << tb;
  std::printf("wrote %s.v and %s_tb.v\n", base.c_str(), base.c_str());
  return 0;
}
