// Quickstart: compile one of the paper's kernels (em3d) with CGPA,
// inspect the pipeline the partitioner discovered, simulate it cycle-level
// against the MIPS software-core baseline, and check the results.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "cgpa/driver.hpp"

int main() {
  using namespace cgpa;

  // 1. Pick a kernel. em3d is the paper's running example: a linked-list
  //    traversal (sequential) feeding independent node updates (parallel).
  const kernels::Kernel* kernel = kernels::kernelByName("em3d");
  std::printf("kernel: %s — %s\n\n", kernel->name().c_str(),
              kernel->description().c_str());

  // 2. Compile: profiling, PDG, SCC classification, PS-DSWP-style
  //    partition, MTCG transform, FSM scheduling, area estimation.
  const driver::CompiledAccelerator accel = driver::compileKernel(
      *kernel, driver::Flow::CgpaP1, driver::CompileOptions{});
  std::printf("discovered pipeline: %s\n%s\n", accel.shape.c_str(),
              accel.plan.describe().c_str());

  // 3. Simulate the accelerator system (workers + FIFOs + banked cache).
  kernels::Workload work = kernel->buildWorkload(kernels::WorkloadConfig{});
  const sim::SimResult sim = sim::simulateSystem(
      accel.pipelineModule, *work.memory, work.args, sim::SystemConfig{});

  // 4. Baseline: the same loop on the MIPS software-core model.
  auto baselineModule = kernel->buildModule();
  kernels::Workload baseWork = kernel->buildWorkload(kernels::WorkloadConfig{});
  const sim::MipsResult mips =
      sim::runMipsModel(*baselineModule->findFunction("kernel"), baseWork.args,
                        *baseWork.memory, sim::CacheConfig{});

  // 5. Validate against the native reference and report.
  kernels::Workload refWork = kernel->buildWorkload(kernels::WorkloadConfig{});
  kernel->runReference(*refWork.memory, refWork.args);
  const bool correct = work.memory->raw() == refWork.memory->raw();

  std::printf("MIPS core:  %10llu cycles\n",
              static_cast<unsigned long long>(mips.cycles));
  std::printf("CGPA:       %10llu cycles  (%.2fx speedup, %d workers)\n",
              static_cast<unsigned long long>(sim.cycles),
              static_cast<double>(mips.cycles) /
                  static_cast<double>(sim.cycles),
              accel.pipelineModule.numWorkers);
  std::printf("area:       %d ALUTs + %d FIFO BRAM bits\n", accel.area.aluts,
              accel.area.fifoBramBits);
  std::printf("result:     %s\n", correct ? "matches the golden reference"
                                          : "MISMATCH (bug!)");
  return correct ? 0 : 1;
}
