// SpMV: applying CGPA to a kernel *outside* the paper's benchmark set —
// sparse matrix-vector multiply in CSR form — to show the framework
// generalizes. The outer row loop carries an irregular inner reduction
// (row lengths vary, column indices are data dependent), exactly the kind
// of loop classic HLS pipelining handles poorly:
//
//   for (i = 0; i < rows; ++i) {
//     double acc = 0.0;
//     for (k = rowPtr[i]; k < rowPtr[i+1]; ++k)
//       acc += vals[k] * x[cols[k]];
//     y[i] = acc;
//   }
//
// CGPA finds the row loop's body fully parallel (y[i] stores are injective
// in i) with a replicable induction: a P-shaped or S-P pipeline depending
// on where the rowPtr fetches land.
#include <cstdio>
#include <vector>

#include "analysis/alias.hpp"
#include "analysis/control_dep.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "analysis/pdg.hpp"
#include "analysis/scc.hpp"
#include "interp/eval.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "pipeline/partition.hpp"
#include "pipeline/transform.hpp"
#include "sim/mips.hpp"
#include "sim/system.hpp"
#include "support/rng.hpp"

using namespace cgpa;
using ir::CmpPred;
using ir::Type;

int main() {
  // --- IR ------------------------------------------------------------------
  ir::Module module("spmv");
  ir::Region* rowPtrR = module.addRegion("row_ptr", ir::RegionShape::Array, 4);
  rowPtrR->readOnly = true;
  ir::Region* colsR = module.addRegion("cols", ir::RegionShape::Array, 4);
  colsR->readOnly = true;
  ir::Region* valsR = module.addRegion("vals", ir::RegionShape::Array, 8);
  valsR->readOnly = true;
  ir::Region* xR = module.addRegion("x", ir::RegionShape::Array, 8);
  xR->readOnly = true;
  ir::Region* yR = module.addRegion("y", ir::RegionShape::Array, 8);

  ir::Function* fn = module.addFunction("kernel", Type::I32);
  ir::Argument* rowPtr = fn->addArgument(Type::Ptr, "row_ptr");
  rowPtr->setRegionId(rowPtrR->id);
  ir::Argument* cols = fn->addArgument(Type::Ptr, "cols");
  cols->setRegionId(colsR->id);
  ir::Argument* vals = fn->addArgument(Type::Ptr, "vals");
  vals->setRegionId(valsR->id);
  ir::Argument* x = fn->addArgument(Type::Ptr, "x");
  x->setRegionId(xR->id);
  ir::Argument* y = fn->addArgument(Type::Ptr, "y");
  y->setRegionId(yR->id);
  ir::Argument* rows = fn->addArgument(Type::I32, "rows");

  auto* entry = fn->addBlock("entry");
  auto* oheader = fn->addBlock("oheader");
  auto* obody = fn->addBlock("obody");
  auto* iheader = fn->addBlock("iheader");
  auto* ibody = fn->addBlock("ibody");
  auto* after = fn->addBlock("after");
  auto* latch = fn->addBlock("latch");
  auto* exit = fn->addBlock("exit");

  ir::IRBuilder b(&module);
  b.setInsertPoint(entry);
  b.br(oheader);
  b.setInsertPoint(oheader);
  auto* i = b.phi(Type::I32, "i");
  b.condBr(b.icmp(CmpPred::SLT, i, rows, "more"), obody, exit);
  b.setInsertPoint(obody);
  auto* startAddr = b.gep(rowPtr, i, 4, 0, "start.addr");
  auto* start = b.load(Type::I32, startAddr, "start");
  auto* endAddr = b.gep(rowPtr, i, 4, 4, "end.addr");
  auto* end = b.load(Type::I32, endAddr, "end");
  b.br(iheader);
  b.setInsertPoint(iheader);
  auto* k = b.phi(Type::I32, "k");
  auto* acc = b.phi(Type::F64, "acc");
  b.condBr(b.icmp(CmpPred::SLT, k, end, "inner"), ibody, after);
  b.setInsertPoint(ibody);
  auto* colAddr = b.gep(cols, k, 4, 0, "col.addr");
  auto* col = b.load(Type::I32, colAddr, "col");
  auto* valAddr = b.gep(vals, k, 8, 0, "val.addr");
  auto* val = b.load(Type::F64, valAddr, "val");
  auto* xAddr = b.gep(x, col, 8, 0, "x.addr");
  auto* xv = b.load(Type::F64, xAddr, "xv");
  auto* prod = b.fmul(val, xv, "prod");
  auto* acc2 = b.fadd(acc, prod, "acc2");
  auto* k2 = b.add(k, b.i32(1), "k2");
  b.br(iheader);
  b.setInsertPoint(after);
  auto* accOut = b.phi(Type::F64, "acc.out");
  accOut->addIncoming(acc, iheader);
  auto* yAddr = b.gep(y, i, 8, 0, "y.addr");
  b.store(accOut, yAddr);
  b.br(latch);
  b.setInsertPoint(latch);
  auto* i2 = b.add(i, b.i32(1), "i2");
  b.br(oheader);
  b.setInsertPoint(exit);
  b.ret(b.i32(0));
  i->addIncoming(b.i32(0), entry);
  i->addIncoming(i2, latch);
  k->addIncoming(start, obody);
  k->addIncoming(k2, ibody);
  acc->addIncoming(b.f64(0.0), obody);
  acc->addIncoming(acc2, ibody);

  if (const std::string err = ir::verifyModule(module); !err.empty()) {
    std::printf("verify: %s\n", err.c_str());
    return 1;
  }

  // --- Compile ----------------------------------------------------------------
  analysis::DominatorTree dom(*fn);
  analysis::DominatorTree postDom(*fn, true);
  analysis::LoopInfo loops(*fn, dom);
  analysis::AliasAnalysis alias(*fn, module, loops);
  analysis::ControlDependence controlDeps(*fn, postDom);
  analysis::Loop* loop = loops.loopWithHeader(oheader);
  analysis::Pdg pdg(*fn, *loop, alias, controlDeps);
  analysis::SccGraph sccs(pdg, [](const ir::Instruction*) { return 1.0; });
  pipeline::PipelinePlan plan =
      pipeline::partitionLoop(sccs, *loop, pipeline::PartitionOptions{});
  std::printf("SpMV partition:\n%s\n", plan.describe().c_str());
  const pipeline::PipelineModule pm = pipeline::transformLoop(*fn, plan, 0);
  if (const std::string err = ir::verifyModule(module); !err.empty()) {
    std::printf("transform verify: %s\n", err.c_str());
    return 1;
  }

  // --- Workload: random CSR matrix, 256 rows x 256 cols, ~8 nnz/row ----------
  const int numRows = 256;
  const int numCols = 256;
  Rng rng(123);
  std::vector<int> rowPtrV = {0};
  std::vector<int> colV;
  std::vector<double> valV;
  for (int r = 0; r < numRows; ++r) {
    const int nnz = static_cast<int>(rng.nextInRange(2, 14));
    for (int e = 0; e < nnz; ++e) {
      colV.push_back(static_cast<int>(rng.nextBelow(numCols)));
      valV.push_back(rng.nextDouble() * 2.0 - 1.0);
    }
    rowPtrV.push_back(static_cast<int>(colV.size()));
  }
  std::vector<double> xV;
  for (int c = 0; c < numCols; ++c)
    xV.push_back(rng.nextDouble());

  interp::Memory mem(1 << 22);
  const std::uint64_t rowPtrA = mem.allocate(rowPtrV.size() * 4, 4);
  for (std::size_t idx = 0; idx < rowPtrV.size(); ++idx)
    mem.writeI32(rowPtrA + idx * 4, rowPtrV[idx]);
  const std::uint64_t colsA = mem.allocate(colV.size() * 4, 4);
  for (std::size_t idx = 0; idx < colV.size(); ++idx)
    mem.writeI32(colsA + idx * 4, colV[idx]);
  const std::uint64_t valsA = mem.allocate(valV.size() * 8, 8);
  for (std::size_t idx = 0; idx < valV.size(); ++idx)
    mem.writeF64(valsA + idx * 8, valV[idx]);
  const std::uint64_t xA = mem.allocate(xV.size() * 8, 8);
  for (std::size_t idx = 0; idx < xV.size(); ++idx)
    mem.writeF64(xA + idx * 8, xV[idx]);
  const std::uint64_t yA = mem.allocate(numRows * 8, 8);

  const std::uint64_t args[] = {rowPtrA, colsA, valsA,
                                xA,      yA,    static_cast<std::uint64_t>(numRows)};

  const sim::SimResult result =
      sim::simulateSystem(pm, mem, args, sim::SystemConfig{});

  // Golden check.
  int errors = 0;
  for (int r = 0; r < numRows; ++r) {
    double acc = 0.0;
    for (int e = rowPtrV[static_cast<std::size_t>(r)];
         e < rowPtrV[static_cast<std::size_t>(r) + 1]; ++e)
      acc += valV[static_cast<std::size_t>(e)] *
             xV[static_cast<std::size_t>(colV[static_cast<std::size_t>(e)])];
    if (mem.readF64(yA + static_cast<std::uint64_t>(r) * 8) != acc)
      ++errors;
  }
  std::printf("SpMV on CGPA: %llu cycles, %d/%d rows correct — %s\n",
              static_cast<unsigned long long>(result.cycles),
              numRows - errors, numRows, errors == 0 ? "OK" : "MISMATCH");
  return errors == 0 ? 0 : 1;
}
