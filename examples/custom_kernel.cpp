// Custom kernel: using the CGPA library on your own loop, end to end and
// at the lowest API level — build IR with IRBuilder, declare memory
// regions (the shape facts a real deployment gets from alias analysis),
// run the analyses, partition, transform, and simulate.
//
// The loop is an anomaly scan over a linked list of sensor records:
//
//   for (r = log; r != null; r = r->next) {     // sequential traversal
//     double v = r->value;
//     double score = v * v * 0.5 + v;           // parallel scoring
//     if (score > threshold) count++;           // sequential reduction
//   }
//   return count;
//
// CGPA discovers an S-P-S pipeline: list walk -> scoring workers -> count.
#include <cstdio>

#include "analysis/alias.hpp"
#include "analysis/control_dep.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "analysis/pdg.hpp"
#include "analysis/scc.hpp"
#include "interp/eval.hpp"
#include "interp/interpreter.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "pipeline/partition.hpp"
#include "pipeline/transform.hpp"
#include "sim/system.hpp"

using namespace cgpa;
using ir::CmpPred;
using ir::Type;

int main() {
  // --- 1. Build the IR --------------------------------------------------
  ir::Module module("sensor_scan");
  // Record: {f64 value @0, ptr next @8}, 16 bytes, an acyclic list.
  ir::Region* records =
      module.addRegion("records", ir::RegionShape::AcyclicList, 16);
  records->nextOffset = 8;
  records->readOnly = true; // The scan never writes the log.

  ir::Function* fn = module.addFunction("kernel", Type::I32);
  ir::Argument* logArg = fn->addArgument(Type::Ptr, "log");
  logArg->setRegionId(records->id);
  ir::Argument* threshold = fn->addArgument(Type::F64, "threshold");

  auto* entry = fn->addBlock("entry");
  auto* header = fn->addBlock("header");
  auto* body = fn->addBlock("body");
  auto* bump = fn->addBlock("bump");
  auto* latch = fn->addBlock("latch");
  auto* exit = fn->addBlock("exit");

  ir::IRBuilder b(&module);
  b.setInsertPoint(entry);
  b.br(header);
  b.setInsertPoint(header);
  auto* rec = b.phi(Type::Ptr, "rec");
  auto* count = b.phi(Type::I32, "count");
  b.condBr(b.icmp(CmpPred::NE, rec, b.nullPtr(), "live"), body, exit);
  b.setInsertPoint(body);
  auto* v = b.load(Type::F64, rec, "v");
  auto* v2 = b.fmul(v, v, "v2");
  auto* half = b.fmul(v2, b.f64(0.5), "half");
  auto* score = b.fadd(half, v, "score");
  auto* hot = b.fcmp(CmpPred::OGT, score, threshold, "hot");
  b.condBr(hot, bump, latch);
  b.setInsertPoint(bump);
  auto* count2 = b.add(count, b.i32(1), "count2");
  b.br(latch);
  b.setInsertPoint(latch);
  auto* countNext = b.phi(Type::I32, "count.next");
  countNext->addIncoming(count, body);
  countNext->addIncoming(count2, bump);
  auto* nextAddr = b.gep(rec, nullptr, 0, 8, "next.addr");
  auto* next = b.load(Type::Ptr, nextAddr, "next");
  b.br(header);
  b.setInsertPoint(exit);
  b.ret(count);
  rec->addIncoming(logArg, entry);
  rec->addIncoming(next, latch);
  count->addIncoming(b.i32(0), entry);
  count->addIncoming(countNext, latch);

  if (const std::string err = ir::verifyModule(module); !err.empty()) {
    std::printf("IR verification failed: %s\n", err.c_str());
    return 1;
  }
  std::printf("--- input IR ---\n%s\n", ir::printFunction(*fn).c_str());

  // --- 2. Analyses + partition ------------------------------------------
  analysis::DominatorTree dom(*fn);
  analysis::DominatorTree postDom(*fn, /*postDom=*/true);
  analysis::LoopInfo loops(*fn, dom);
  analysis::AliasAnalysis alias(*fn, module, loops);
  analysis::ControlDependence controlDeps(*fn, postDom);
  analysis::Loop* loop = loops.topLevelLoops().front();
  analysis::Pdg pdg(*fn, *loop, alias, controlDeps);
  analysis::SccGraph sccs(pdg, [](const ir::Instruction*) { return 1.0; });

  pipeline::PartitionOptions options; // 4 workers, P1 policy.
  pipeline::PipelinePlan plan = pipeline::partitionLoop(sccs, *loop, options);
  std::printf("--- partition ---\n%s\n", plan.describe().c_str());

  // --- 3. Transform ------------------------------------------------------
  const pipeline::PipelineModule pm =
      pipeline::transformLoop(*fn, plan, /*loopId=*/0);
  if (const std::string err = ir::verifyModule(module); !err.empty()) {
    std::printf("transformed module broken: %s\n", err.c_str());
    return 1;
  }
  std::printf("generated %zu task functions, %zu FIFO channels, %zu "
              "live-outs\n\n",
              pm.tasks.size(), pm.channels.size(), pm.liveouts.size());

  // --- 4. Workload + golden ----------------------------------------------
  auto layout = [](interp::Memory& mem, int n) {
    std::uint64_t head = 0;
    for (int i = n - 1; i >= 0; --i) {
      const std::uint64_t node = mem.allocate(16, 8);
      mem.writeF64(node, (i * 37 % 100) / 10.0);
      mem.writePtr(node + 8, head);
      head = node;
    }
    return head;
  };
  const double thresholdValue = 30.0;
  int expected = 0;
  {
    interp::Memory mem(1 << 20);
    std::uint64_t node = layout(mem, 5000);
    while (node != 0) {
      const double value = mem.readF64(node);
      if (value * value * 0.5 + value > thresholdValue)
        ++expected;
      node = mem.readPtr(node + 8);
    }
  }

  // --- 5. Cycle-level simulation ------------------------------------------
  interp::Memory mem(1 << 20);
  const std::uint64_t head = layout(mem, 5000);
  const std::uint64_t args[] = {
      head, interp::doubleToPattern(Type::F64, thresholdValue)};
  const sim::SimResult result =
      sim::simulateSystem(pm, mem, args, sim::SystemConfig{});
  const int got = static_cast<int>(
      interp::patternToInt(Type::I32, result.returnValue));

  std::printf("anomalies: %d (expected %d) in %llu cycles — %s\n", got,
              expected, static_cast<unsigned long long>(result.cycles),
              got == expected ? "OK" : "MISMATCH");
  return got == expected ? 0 : 1;
}
