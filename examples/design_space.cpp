// Design-space exploration: sweep worker count x FIFO depth for one kernel
// and print a cycles grid plus the area cost of each point — the kind of
// exploration an accelerator architect runs before committing a
// configuration.
#include <cstdio>

#include "cgpa/driver.hpp"

int main(int argc, char** argv) {
  using namespace cgpa;
  const std::string kernelName = argc > 1 ? argv[1] : "em3d";
  const kernels::Kernel* kernel = kernels::kernelByName(kernelName);
  if (kernel == nullptr) {
    std::printf("unknown kernel '%s'\n", kernelName.c_str());
    return 1;
  }

  std::printf("design space for %s (cycles; lower is better)\n",
              kernel->name().c_str());
  std::printf("%8s |", "workers");
  const int depths[] = {4, 8, 16, 32};
  for (int depth : depths)
    std::printf(" depth=%-3d |", depth);
  std::printf(" ALUTs\n");

  for (int workers : {1, 2, 4, 8}) {
    driver::CompileOptions compile;
    compile.partition.numWorkers = workers;
    const driver::CompiledAccelerator accel =
        driver::compileKernel(*kernel, driver::Flow::CgpaP1, compile);
    std::printf("%8d |", workers);
    for (int depth : depths) {
      kernels::Workload work =
          kernel->buildWorkload(kernels::WorkloadConfig{});
      sim::SystemConfig config;
      config.fifoDepth = depth;
      const sim::SimResult result = sim::simulateSystem(
          accel.pipelineModule, *work.memory, work.args, config);
      std::printf(" %9llu |", static_cast<unsigned long long>(result.cycles));
    }
    std::printf(" %d\n", accel.area.aluts);
  }
  std::printf("\nThe paper's configuration is 4 workers x depth 16.\n");
  return 0;
}
