# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/hls_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_test[1]_include.cmake")
include("/root/repo/build/tests/verilog_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/driver_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/affine_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/case_studies_test[1]_include.cmake")
