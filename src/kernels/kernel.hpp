// Benchmark kernels (paper Table 2): K-means, Hash-indexing, ks, em3d, and
// SIFT 1D-Gaussblur. Each kernel provides:
//   * an IR builder producing the unannotated C/C++ loop as our SSA IR,
//     with region declarations standing in for the paper's alias/shape
//     analysis facts (see DESIGN.md);
//   * a deterministic synthetic workload generator laying the paper's data
//     structures out in simulated memory;
//   * a native C++ golden reference with bit-identical arithmetic order,
//     used to validate interpreter, functional pipeline, and cycle
//     simulation.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "interp/memory.hpp"
#include "ir/module.hpp"

namespace cgpa::kernels {

struct WorkloadConfig {
  int scale = 1;           ///< Multiplies the default problem size.
  std::uint64_t seed = 42; ///< Workload RNG seed.
};

struct Workload {
  std::unique_ptr<interp::Memory> memory;
  std::vector<std::uint64_t> args; ///< Arguments for @kernel.
};

class Kernel {
public:
  virtual ~Kernel() = default;

  virtual std::string name() const = 0;
  virtual std::string domain() const = 0;
  virtual std::string description() const = 0;

  /// Fresh module containing the function `@kernel` plus region table.
  virtual std::unique_ptr<ir::Module> buildModule() const = 0;

  /// Block name of the target loop's header inside @kernel.
  virtual std::string targetLoopHeader() const = 0;

  virtual Workload buildWorkload(const WorkloadConfig& config) const = 0;

  /// Native golden model over the same memory layout; returns the value
  /// @kernel would return (canonical bit pattern).
  virtual std::uint64_t runReference(interp::Memory& memory,
                                     std::span<const std::uint64_t> args)
      const = 0;

  /// Paper Table 2: expected partition shape under policy P1.
  virtual std::string expectedShape() const = 0;
  /// Paper Table 2: whether the P2 (replicated data-level parallelism)
  /// variant applies.
  virtual bool supportsP2() const = 0;
};

/// All five paper kernels, in Table 2 order.
std::vector<const Kernel*> allKernels();

/// Lookup by name ("em3d", "kmeans", "hash-indexing", "ks",
/// "1d-gaussblur"); nullptr if unknown.
const Kernel* kernelByName(const std::string& name);

} // namespace cgpa::kernels
