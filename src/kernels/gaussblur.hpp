// SIFT 1D row Gaussian blur (paper Appendix A.2): a 5-tap weighted sum
// slides across each image row; scalar replacement / pipeline
// vectorization has already been applied, so the window lives in shift
// registers (the replicable R2 section) fed by one new image load per
// column (R3). The target loop is the inner column loop; the row loop
// stays in the wrapper and re-invokes the accelerator per row (exercising
// fork/join constraints (1)-(2)). Expected partition: S-P; P2 applies.
#pragma once

#include "kernels/kernel.hpp"

namespace cgpa::kernels {

class GaussblurKernel final : public Kernel {
public:
  std::string name() const override { return "1d-gaussblur"; }
  std::string domain() const override { return "image processing"; }
  std::string description() const override {
    return "1D row Gaussian blurring with a shift-register window";
  }
  std::unique_ptr<ir::Module> buildModule() const override;
  std::string targetLoopHeader() const override { return "jheader"; }
  Workload buildWorkload(const WorkloadConfig& config) const override;
  std::uint64_t runReference(interp::Memory& memory,
                             std::span<const std::uint64_t> args)
      const override;
  std::string expectedShape() const override { return "S-P"; }
  bool supportsP2() const override { return true; }
};

} // namespace cgpa::kernels
