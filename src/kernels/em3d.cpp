#include "kernels/em3d.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace cgpa::kernels {

using ir::CmpPred;
using ir::IRBuilder;
using ir::Type;

namespace {

// Node layout (32-bit pointers): value f64 @0, from_count i32 @8,
// from_nodes ptr @12, coeffs ptr @16, next ptr @20; element size 24.
constexpr std::int64_t kValueOff = 0;
constexpr std::int64_t kCountOff = 8;
constexpr std::int64_t kFromOff = 12;
constexpr std::int64_t kCoeffOff = 16;
constexpr std::int64_t kNextOff = 20;
constexpr std::int64_t kNodeSize = 24;

} // namespace

std::unique_ptr<ir::Module> Em3dKernel::buildModule() const {
  auto module = std::make_unique<ir::Module>("em3d");

  ir::Region* enodes =
      module->addRegion("enodes", ir::RegionShape::AcyclicList, kNodeSize);
  enodes->nextOffset = kNextOff;
  ir::Region* hnodes =
      module->addRegion("hnodes", ir::RegionShape::Array, kNodeSize);
  hnodes->readOnly = true;
  ir::Region* fromArr = module->addRegion("from_arrays", ir::RegionShape::Array, 4);
  fromArr->readOnly = true;
  fromArr->elemPointerTarget = hnodes->id;
  ir::Region* coeffArr =
      module->addRegion("coeff_arrays", ir::RegionShape::Array, 8);
  coeffArr->readOnly = true;
  enodes->pointerFields.push_back({kFromOff, fromArr->id});
  enodes->pointerFields.push_back({kCoeffOff, coeffArr->id});

  ir::Function* fn = module->addFunction("kernel", Type::I32);
  ir::Argument* head = fn->addArgument(Type::Ptr, "nodelist");
  head->setRegionId(enodes->id);

  auto* entry = fn->addBlock("entry");
  auto* oheader = fn->addBlock("oheader");
  auto* obody = fn->addBlock("obody");
  auto* iheader = fn->addBlock("iheader");
  auto* ibody = fn->addBlock("ibody");
  auto* after = fn->addBlock("after");
  auto* latch = fn->addBlock("latch");
  auto* exit = fn->addBlock("exit");

  IRBuilder b(module.get());
  b.setInsertPoint(entry);
  b.br(oheader);

  b.setInsertPoint(oheader);
  auto* node = b.phi(Type::Ptr, "node");
  auto* live = b.icmp(CmpPred::NE, node, b.nullPtr(), "live");
  b.condBr(live, obody, exit);

  b.setInsertPoint(obody);
  auto* countAddr = b.gep(node, nullptr, 0, kCountOff, "count.addr");
  auto* count = b.load(Type::I32, countAddr, "count");
  auto* fromBaseAddr = b.gep(node, nullptr, 0, kFromOff, "from.base.addr");
  auto* fromBase = b.load(Type::Ptr, fromBaseAddr, "from.base");
  auto* coeffBaseAddr = b.gep(node, nullptr, 0, kCoeffOff, "coeff.base.addr");
  auto* coeffBase = b.load(Type::Ptr, coeffBaseAddr, "coeff.base");
  auto* value0 = b.load(Type::F64, node, "value0");
  b.br(iheader);

  b.setInsertPoint(iheader);
  auto* i = b.phi(Type::I32, "i");
  auto* acc = b.phi(Type::F64, "acc");
  auto* more = b.icmp(CmpPred::SLT, i, count, "more");
  b.condBr(more, ibody, after);

  b.setInsertPoint(ibody);
  auto* fromAddr = b.gep(fromBase, i, 4, 0, "from.addr");
  auto* from = b.load(Type::Ptr, fromAddr, "from");
  auto* coeffAddr = b.gep(coeffBase, i, 8, 0, "coeff.addr");
  auto* coeff = b.load(Type::F64, coeffAddr, "coeff");
  auto* fromValue = b.load(Type::F64, from, "from.value");
  auto* product = b.fmul(coeff, fromValue, "product");
  auto* acc2 = b.fsub(acc, product, "acc2");
  auto* i2 = b.add(i, b.i32(1), "i2");
  b.br(iheader);

  b.setInsertPoint(after);
  b.store(acc, node);
  b.br(latch);

  b.setInsertPoint(latch);
  auto* nextAddr = b.gep(node, nullptr, 0, kNextOff, "next.addr");
  auto* next = b.load(Type::Ptr, nextAddr, "next");
  b.br(oheader);

  b.setInsertPoint(exit);
  b.ret(b.i32(0));

  node->addIncoming(head, entry);
  node->addIncoming(next, latch);
  i->addIncoming(b.i32(0), obody);
  i->addIncoming(i2, ibody);
  acc->addIncoming(value0, obody);
  acc->addIncoming(acc2, ibody);
  return module;
}

Workload Em3dKernel::buildWorkload(const WorkloadConfig& config) const {
  // Default: 512 E nodes, 512 H nodes, degree 4..9 (paper: "less than 10
  // for most cases").
  const int numE = 512 * config.scale;
  const int numH = 512 * config.scale;
  Workload workload;
  workload.memory = std::make_unique<interp::Memory>(
      std::max<std::uint64_t>(1 << 22, static_cast<std::uint64_t>(numE) * 256));
  interp::Memory& mem = *workload.memory;
  Rng rng(config.seed);

  const std::uint64_t hBase =
      mem.allocate(static_cast<std::uint64_t>(numH) * kNodeSize, 8);
  for (int h = 0; h < numH; ++h) {
    const std::uint64_t addr = hBase + static_cast<std::uint64_t>(h) * kNodeSize;
    mem.writeF64(addr + kValueOff, rng.nextDouble() * 4.0 - 2.0);
    mem.writeI32(addr + kCountOff, 0);
    mem.writePtr(addr + kFromOff, 0);
    mem.writePtr(addr + kCoeffOff, 0);
    mem.writePtr(addr + kNextOff, 0);
  }

  const std::uint64_t eBase =
      mem.allocate(static_cast<std::uint64_t>(numE) * kNodeSize, 8);
  for (int e = 0; e < numE; ++e) {
    const std::uint64_t addr = eBase + static_cast<std::uint64_t>(e) * kNodeSize;
    const int degree = static_cast<int>(rng.nextInRange(4, 9));
    const std::uint64_t fromArr =
        mem.allocate(static_cast<std::uint64_t>(degree) * 4, 4);
    const std::uint64_t coeffArr =
        mem.allocate(static_cast<std::uint64_t>(degree) * 8, 8);
    for (int d = 0; d < degree; ++d) {
      const std::uint64_t target =
          hBase + rng.nextBelow(static_cast<std::uint64_t>(numH)) * kNodeSize;
      mem.writePtr(fromArr + static_cast<std::uint64_t>(d) * 4, target);
      mem.writeF64(coeffArr + static_cast<std::uint64_t>(d) * 8,
                   rng.nextDouble());
    }
    mem.writeF64(addr + kValueOff, rng.nextDouble());
    mem.writeI32(addr + kCountOff, degree);
    mem.writePtr(addr + kFromOff, fromArr);
    mem.writePtr(addr + kCoeffOff, coeffArr);
    const bool last = e == numE - 1;
    mem.writePtr(addr + kNextOff,
                 last ? 0 : addr + static_cast<std::uint64_t>(kNodeSize));
  }

  workload.args = {eBase};
  return workload;
}

std::uint64_t Em3dKernel::runReference(interp::Memory& mem,
                                       std::span<const std::uint64_t> args)
    const {
  std::uint64_t node = args[0];
  while (node != 0) {
    const int count = mem.readI32(node + kCountOff);
    const std::uint64_t fromBase = mem.readPtr(node + kFromOff);
    const std::uint64_t coeffBase = mem.readPtr(node + kCoeffOff);
    double acc = mem.readF64(node + kValueOff);
    for (int i = 0; i < count; ++i) {
      const std::uint64_t from =
          mem.readPtr(fromBase + static_cast<std::uint64_t>(i) * 4);
      const double coeff =
          mem.readF64(coeffBase + static_cast<std::uint64_t>(i) * 8);
      acc -= coeff * mem.readF64(from + kValueOff);
    }
    mem.writeF64(node + kValueOff, acc);
    node = mem.readPtr(node + kNextOff);
  }
  return 0;
}

} // namespace cgpa::kernels
