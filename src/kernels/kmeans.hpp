// K-means (Rodinia): find the nearest cluster for every point and
// accumulate new cluster centers (paper Appendix A.1). The parallel
// section is the inlined findNearestPoint distance scan; the membership /
// new-center updates form the sequential section. Expected partition: P-S.
#pragma once

#include "kernels/kernel.hpp"

namespace cgpa::kernels {

class KmeansKernel final : public Kernel {
public:
  std::string name() const override { return "kmeans"; }
  std::string domain() const override { return "machine learning"; }
  std::string description() const override {
    return "finding the nearest cluster for each node and updating its "
           "position";
  }
  std::unique_ptr<ir::Module> buildModule() const override;
  std::string targetLoopHeader() const override { return "oheader"; }
  Workload buildWorkload(const WorkloadConfig& config) const override;
  std::uint64_t runReference(interp::Memory& memory,
                             std::span<const std::uint64_t> args)
      const override;
  std::string expectedShape() const override { return "P-S"; }
  bool supportsP2() const override { return false; }
};

} // namespace cgpa::kernels
