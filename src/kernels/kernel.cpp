#include "kernels/kernel.hpp"

#include "kernels/em3d.hpp"
#include "kernels/gaussblur.hpp"
#include "kernels/hash_index.hpp"
#include "kernels/kmeans.hpp"
#include "kernels/ks.hpp"

namespace cgpa::kernels {

namespace {

const KmeansKernel kKmeans;
const HashIndexKernel kHashIndex;
const KsKernel kKs;
const Em3dKernel kEm3d;
const GaussblurKernel kGaussblur;

} // namespace

std::vector<const Kernel*> allKernels() {
  // Paper Table 2 order.
  return {&kKmeans, &kHashIndex, &kKs, &kEm3d, &kGaussblur};
}

const Kernel* kernelByName(const std::string& name) {
  for (const Kernel* kernel : allKernels())
    if (kernel->name() == name)
      return kernel;
  return nullptr;
}

} // namespace cgpa::kernels
