#include "kernels/kmeans.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace cgpa::kernels {

using ir::CmpPred;
using ir::IRBuilder;
using ir::Type;

namespace {

constexpr int kDefaultPoints = 256;
constexpr int kClusters = 8;
constexpr int kFeatures = 8;

} // namespace

std::unique_ptr<ir::Module> KmeansKernel::buildModule() const {
  auto module = std::make_unique<ir::Module>("kmeans");

  ir::Region* points = module->addRegion("points", ir::RegionShape::Array, 8);
  points->readOnly = true;
  ir::Region* clusters =
      module->addRegion("clusters", ir::RegionShape::Array, 8);
  clusters->readOnly = true;
  ir::Region* membership =
      module->addRegion("membership", ir::RegionShape::Array, 4);
  ir::Region* newCenters =
      module->addRegion("new_centers", ir::RegionShape::Array, 8);
  ir::Region* newLens =
      module->addRegion("new_centers_len", ir::RegionShape::Array, 4);

  ir::Function* fn = module->addFunction("kernel", Type::I32);
  ir::Argument* pointsArg = fn->addArgument(Type::Ptr, "points");
  pointsArg->setRegionId(points->id);
  ir::Argument* clustersArg = fn->addArgument(Type::Ptr, "clusters");
  clustersArg->setRegionId(clusters->id);
  ir::Argument* membershipArg = fn->addArgument(Type::Ptr, "membership");
  membershipArg->setRegionId(membership->id);
  ir::Argument* centersArg = fn->addArgument(Type::Ptr, "new_centers");
  centersArg->setRegionId(newCenters->id);
  ir::Argument* lensArg = fn->addArgument(Type::Ptr, "new_centers_len");
  lensArg->setRegionId(newLens->id);
  ir::Argument* numPoints = fn->addArgument(Type::I32, "num_points");
  ir::Argument* numClusters = fn->addArgument(Type::I32, "num_clusters");
  ir::Argument* numFeatures = fn->addArgument(Type::I32, "num_features");

  auto* entry = fn->addBlock("entry");
  auto* oheader = fn->addBlock("oheader");
  auto* obody = fn->addBlock("obody");
  auto* cheader = fn->addBlock("cheader");
  auto* cbody = fn->addBlock("cbody");
  auto* fheader = fn->addBlock("fheader");
  auto* fbody = fn->addBlock("fbody");
  auto* fafter = fn->addBlock("fafter");
  auto* cafter = fn->addBlock("cafter");
  auto* uheader = fn->addBlock("uheader");
  auto* ubody = fn->addBlock("ubody");
  auto* latch = fn->addBlock("latch");
  auto* exit = fn->addBlock("exit");

  IRBuilder b(module.get());
  b.setInsertPoint(entry);
  b.br(oheader);

  // Outer loop over points; delta counts membership changes (live-out).
  b.setInsertPoint(oheader);
  auto* i = b.phi(Type::I32, "i");
  auto* delta = b.phi(Type::I32, "delta");
  auto* moreP = b.icmp(CmpPred::SLT, i, numPoints, "more.points");
  b.condBr(moreP, obody, exit);

  b.setInsertPoint(obody);
  auto* pointBase = b.mul(i, numFeatures, "point.base");
  b.br(cheader);

  // findNearestPoint, inlined: scan clusters.
  b.setInsertPoint(cheader);
  auto* j = b.phi(Type::I32, "j");
  auto* best = b.phi(Type::F64, "best");
  auto* bestIdx = b.phi(Type::I32, "best.idx");
  auto* moreC = b.icmp(CmpPred::SLT, j, numClusters, "more.clusters");
  b.condBr(moreC, cbody, cafter);

  b.setInsertPoint(cbody);
  auto* clusterBase = b.mul(j, numFeatures, "cluster.base");
  b.br(fheader);

  // Squared euclidean distance over features.
  b.setInsertPoint(fheader);
  auto* f = b.phi(Type::I32, "f");
  auto* dist = b.phi(Type::F64, "dist");
  auto* moreF = b.icmp(CmpPred::SLT, f, numFeatures, "more.features");
  b.condBr(moreF, fbody, fafter);

  b.setInsertPoint(fbody);
  auto* pIdx = b.add(pointBase, f, "p.idx");
  auto* pAddr = b.gep(pointsArg, pIdx, 8, 0, "p.addr");
  auto* pv = b.load(Type::F64, pAddr, "pv");
  auto* cIdx = b.add(clusterBase, f, "c.idx");
  auto* cAddr = b.gep(clustersArg, cIdx, 8, 0, "c.addr");
  auto* cv = b.load(Type::F64, cAddr, "cv");
  auto* diff = b.fsub(pv, cv, "diff");
  auto* sq = b.fmul(diff, diff, "sq");
  auto* dist2 = b.fadd(dist, sq, "dist2");
  auto* f2 = b.add(f, b.i32(1), "f2");
  b.br(fheader);

  b.setInsertPoint(fafter);
  auto* closer = b.fcmp(CmpPred::OLT, dist, best, "closer");
  auto* best2 = b.select(closer, dist, best, "best2");
  auto* bestIdx2 = b.select(closer, j, bestIdx, "best.idx2");
  auto* j2 = b.add(j, b.i32(1), "j2");
  b.br(cheader);

  // Sequential section: membership, delta, new_centers_len, new_centers.
  // The chosen index leaves the cluster loop through an LCSSA phi, so it
  // crosses the pipeline boundary once per point.
  b.setInsertPoint(cafter);
  auto* index = b.phi(Type::I32, "index");
  index->addIncoming(bestIdx, cheader);
  auto* mAddr = b.gep(membershipArg, i, 4, 0, "m.addr");
  auto* oldMember = b.load(Type::I32, mAddr, "old.member");
  auto* changed = b.icmp(CmpPred::NE, oldMember, index, "changed");
  auto* inc = b.cast(ir::Opcode::ZExt, changed, Type::I32, "inc");
  auto* delta2 = b.add(delta, inc, "delta2");
  b.store(index, mAddr);
  auto* lenAddr = b.gep(lensArg, index, 4, 0, "len.addr");
  auto* len = b.load(Type::I32, lenAddr, "len");
  auto* len2 = b.add(len, b.i32(1), "len2");
  b.store(len2, lenAddr);
  auto* centerBase = b.mul(index, numFeatures, "center.base");
  auto* pointBase2 = b.mul(i, numFeatures, "point.base2");
  b.br(uheader);

  b.setInsertPoint(uheader);
  auto* u = b.phi(Type::I32, "u");
  auto* moreU = b.icmp(CmpPred::SLT, u, numFeatures, "more.update");
  b.condBr(moreU, ubody, latch);

  b.setInsertPoint(ubody);
  auto* ncIdx = b.add(centerBase, u, "nc.idx");
  auto* ncAddr = b.gep(centersArg, ncIdx, 8, 0, "nc.addr");
  auto* ncv = b.load(Type::F64, ncAddr, "ncv");
  auto* puIdx = b.add(pointBase2, u, "pu.idx");
  auto* puAddr = b.gep(pointsArg, puIdx, 8, 0, "pu.addr");
  auto* puv = b.load(Type::F64, puAddr, "puv");
  auto* ncv2 = b.fadd(ncv, puv, "ncv2");
  b.store(ncv2, ncAddr);
  auto* u2 = b.add(u, b.i32(1), "u2");
  b.br(uheader);

  b.setInsertPoint(latch);
  auto* i2 = b.add(i, b.i32(1), "i2");
  b.br(oheader);

  b.setInsertPoint(exit);
  b.ret(delta);

  i->addIncoming(b.i32(0), entry);
  i->addIncoming(i2, latch);
  delta->addIncoming(b.i32(0), entry);
  delta->addIncoming(delta2, latch);
  j->addIncoming(b.i32(0), obody);
  j->addIncoming(j2, fafter);
  best->addIncoming(b.f64(1e30), obody);
  best->addIncoming(best2, fafter);
  bestIdx->addIncoming(b.i32(0), obody);
  bestIdx->addIncoming(bestIdx2, fafter);
  f->addIncoming(b.i32(0), cbody);
  f->addIncoming(f2, fbody);
  dist->addIncoming(b.f64(0.0), cbody);
  dist->addIncoming(dist2, fbody);
  u->addIncoming(b.i32(0), cafter);
  u->addIncoming(u2, ubody);
  return module;
}

Workload KmeansKernel::buildWorkload(const WorkloadConfig& config) const {
  const int numPoints = kDefaultPoints * config.scale;
  Workload workload;
  workload.memory = std::make_unique<interp::Memory>(std::max<std::uint64_t>(
      1 << 22, static_cast<std::uint64_t>(numPoints) * kFeatures * 16));
  interp::Memory& mem = *workload.memory;
  Rng rng(config.seed);

  const std::uint64_t points = mem.allocate(
      static_cast<std::uint64_t>(numPoints) * kFeatures * 8, 8);
  for (int i = 0; i < numPoints * kFeatures; ++i)
    mem.writeF64(points + static_cast<std::uint64_t>(i) * 8,
                 rng.nextDouble() * 10.0);
  const std::uint64_t clusters =
      mem.allocate(static_cast<std::uint64_t>(kClusters) * kFeatures * 8, 8);
  for (int i = 0; i < kClusters * kFeatures; ++i)
    mem.writeF64(clusters + static_cast<std::uint64_t>(i) * 8,
                 rng.nextDouble() * 10.0);
  const std::uint64_t membership =
      mem.allocate(static_cast<std::uint64_t>(numPoints) * 4, 4);
  for (int i = 0; i < numPoints; ++i)
    mem.writeI32(membership + static_cast<std::uint64_t>(i) * 4,
                 static_cast<std::int32_t>(rng.nextBelow(kClusters)));
  const std::uint64_t newCenters =
      mem.allocate(static_cast<std::uint64_t>(kClusters) * kFeatures * 8, 8);
  const std::uint64_t newLens =
      mem.allocate(static_cast<std::uint64_t>(kClusters) * 4, 4);

  workload.args = {points,
                   clusters,
                   membership,
                   newCenters,
                   newLens,
                   static_cast<std::uint64_t>(numPoints),
                   static_cast<std::uint64_t>(kClusters),
                   static_cast<std::uint64_t>(kFeatures)};
  return workload;
}

std::uint64_t KmeansKernel::runReference(interp::Memory& mem,
                                         std::span<const std::uint64_t> args)
    const {
  const std::uint64_t points = args[0];
  const std::uint64_t clusters = args[1];
  const std::uint64_t membership = args[2];
  const std::uint64_t newCenters = args[3];
  const std::uint64_t newLens = args[4];
  const int numPoints = static_cast<int>(args[5]);
  const int numClusters = static_cast<int>(args[6]);
  const int numFeatures = static_cast<int>(args[7]);

  std::int32_t delta = 0;
  for (int i = 0; i < numPoints; ++i) {
    double best = 1e30;
    std::int32_t bestIdx = 0;
    for (int j = 0; j < numClusters; ++j) {
      double dist = 0.0;
      for (int f = 0; f < numFeatures; ++f) {
        const double pv = mem.readF64(
            points + static_cast<std::uint64_t>(i * numFeatures + f) * 8);
        const double cv = mem.readF64(
            clusters + static_cast<std::uint64_t>(j * numFeatures + f) * 8);
        const double diff = pv - cv;
        dist = dist + diff * diff;
      }
      if (dist < best) {
        best = dist;
        bestIdx = j;
      }
    }
    const std::uint64_t mAddr = membership + static_cast<std::uint64_t>(i) * 4;
    if (mem.readI32(mAddr) != bestIdx)
      ++delta;
    mem.writeI32(mAddr, bestIdx);
    const std::uint64_t lenAddr =
        newLens + static_cast<std::uint64_t>(bestIdx) * 4;
    mem.writeI32(lenAddr, mem.readI32(lenAddr) + 1);
    for (int u = 0; u < numFeatures; ++u) {
      const std::uint64_t ncAddr =
          newCenters + static_cast<std::uint64_t>(bestIdx * numFeatures + u) * 8;
      const double pv = mem.readF64(
          points + static_cast<std::uint64_t>(i * numFeatures + u) * 8);
      mem.writeF64(ncAddr, mem.readF64(ncAddr) + pv);
    }
  }
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(delta));
}

} // namespace cgpa::kernels
