#include "kernels/hash_index.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace cgpa::kernels {

using ir::CmpPred;
using ir::IRBuilder;
using ir::Type;

namespace {

// Record layout: key i32 @0, next ptr @4, hnext ptr @8, pad @12; elem 16.
constexpr std::int64_t kKeyOff = 0;
constexpr std::int64_t kNextOff = 4;
constexpr std::int64_t kHnextOff = 8;
constexpr std::int64_t kNodeSize = 16;
constexpr int kTableSize = 1024; // Power of two.
constexpr int kDefaultRecords = 2048;

/// The multiplicative mixing computed by the parallel stage. Mirrors the
/// IR instruction-for-instruction (32-bit wraparound semantics).
std::int32_t hashKey(std::int32_t key) {
  std::uint32_t h = static_cast<std::uint32_t>(key);
  h = h * 2654435761u;
  h ^= h >> 16;
  h = h * 2246822519u;
  h ^= h >> 13;
  h = h * 3266489917u;
  h ^= h >> 16;
  return static_cast<std::int32_t>(h);
}

} // namespace

std::unique_ptr<ir::Module> HashIndexKernel::buildModule() const {
  auto module = std::make_unique<ir::Module>("hash_index");

  ir::Region* records =
      module->addRegion("records", ir::RegionShape::AcyclicList, kNodeSize);
  records->nextOffset = kNextOff;
  ir::Region* table = module->addRegion("table", ir::RegionShape::Array, 4);

  ir::Function* fn = module->addFunction("kernel", Type::I32);
  ir::Argument* head = fn->addArgument(Type::Ptr, "records");
  head->setRegionId(records->id);
  ir::Argument* tableArg = fn->addArgument(Type::Ptr, "table");
  tableArg->setRegionId(table->id);
  ir::Argument* mask = fn->addArgument(Type::I32, "table_mask");

  auto* entry = fn->addBlock("entry");
  auto* header = fn->addBlock("header");
  auto* body = fn->addBlock("body");
  auto* latch = fn->addBlock("latch");
  auto* exit = fn->addBlock("exit");

  IRBuilder b(module.get());
  b.setInsertPoint(entry);
  b.br(header);

  b.setInsertPoint(header);
  auto* node = b.phi(Type::Ptr, "node");
  auto* live = b.icmp(CmpPred::NE, node, b.nullPtr(), "live");
  b.condBr(live, body, exit);

  b.setInsertPoint(body);
  auto* key = b.load(Type::I32, node, "key");
  // Parallel section: multiplicative hash mixing.
  auto* h1 = b.mul(key, b.i32(static_cast<std::int32_t>(2654435761u)), "h1");
  auto* h2 = b.bitXor(h1, b.lshr(h1, b.i32(16), "h1s"), "h2");
  auto* h3 = b.mul(h2, b.i32(static_cast<std::int32_t>(2246822519u)), "h3");
  auto* h4 = b.bitXor(h3, b.lshr(h3, b.i32(13), "h3s"), "h4");
  auto* h5 = b.mul(h4, b.i32(static_cast<std::int32_t>(3266489917u)), "h5");
  auto* h6 = b.bitXor(h5, b.lshr(h5, b.i32(16), "h5s"), "h6");
  auto* slot = b.bitAnd(h6, mask, "slot");
  // Sequential section: bucket head insertion.
  auto* bucketAddr = b.gep(tableArg, slot, 4, 0, "bucket.addr");
  auto* oldHead = b.load(Type::Ptr, bucketAddr, "old.head");
  auto* hnextAddr = b.gep(node, nullptr, 0, kHnextOff, "hnext.addr");
  b.store(oldHead, hnextAddr);
  b.store(node, bucketAddr);
  b.br(latch);

  b.setInsertPoint(latch);
  auto* nextAddr = b.gep(node, nullptr, 0, kNextOff, "next.addr");
  auto* next = b.load(Type::Ptr, nextAddr, "next");
  b.br(header);

  b.setInsertPoint(exit);
  b.ret(b.i32(0));

  node->addIncoming(head, entry);
  node->addIncoming(next, latch);
  return module;
}

Workload HashIndexKernel::buildWorkload(const WorkloadConfig& config) const {
  const int numRecords = kDefaultRecords * config.scale;
  Workload workload;
  workload.memory = std::make_unique<interp::Memory>(std::max<std::uint64_t>(
      1 << 22, static_cast<std::uint64_t>(numRecords) * 64));
  interp::Memory& mem = *workload.memory;
  Rng rng(config.seed);

  const std::uint64_t tableBase =
      mem.allocate(static_cast<std::uint64_t>(kTableSize) * 4, 4);
  for (int i = 0; i < kTableSize; ++i)
    mem.writePtr(tableBase + static_cast<std::uint64_t>(i) * 4, 0);

  const std::uint64_t recordBase =
      mem.allocate(static_cast<std::uint64_t>(numRecords) * kNodeSize, 8);
  for (int r = 0; r < numRecords; ++r) {
    const std::uint64_t addr =
        recordBase + static_cast<std::uint64_t>(r) * kNodeSize;
    mem.writeI32(addr + kKeyOff, static_cast<std::int32_t>(rng.next()));
    mem.writePtr(addr + kNextOff,
                 r == numRecords - 1
                     ? 0
                     : addr + static_cast<std::uint64_t>(kNodeSize));
    mem.writePtr(addr + kHnextOff, 0);
  }

  workload.args = {recordBase, tableBase,
                   static_cast<std::uint64_t>(kTableSize - 1)};
  return workload;
}

std::uint64_t HashIndexKernel::runReference(interp::Memory& mem,
                                            std::span<const std::uint64_t> args)
    const {
  std::uint64_t node = args[0];
  const std::uint64_t table = args[1];
  const std::int32_t mask = static_cast<std::int32_t>(args[2]);
  while (node != 0) {
    const std::int32_t key = mem.readI32(node + kKeyOff);
    const std::int32_t slot = hashKey(key) & mask;
    const std::uint64_t bucketAddr =
        table + static_cast<std::uint64_t>(slot) * 4;
    const std::uint64_t oldHead = mem.readPtr(bucketAddr);
    mem.writePtr(node + kHnextOff, oldHead);
    mem.writePtr(bucketAddr, node);
    node = mem.readPtr(node + kNextOff);
  }
  return 0;
}

} // namespace cgpa::kernels
