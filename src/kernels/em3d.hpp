// em3d (Olden): electromagnetic wave propagation on a bipartite graph of
// E and H nodes stored in linked lists. The kernel loop walks the E list
// and updates each node's value by subtracting the weighted values of its
// from-nodes (paper Figure 1a). Expected partition: S-P; P2 applies.
#pragma once

#include "kernels/kernel.hpp"

namespace cgpa::kernels {

class Em3dKernel final : public Kernel {
public:
  std::string name() const override { return "em3d"; }
  std::string domain() const override { return "3D simulation"; }
  std::string description() const override {
    return "updating value for each node in a linked list by subtracting "
           "weighted values of its from_nodes";
  }
  std::unique_ptr<ir::Module> buildModule() const override;
  std::string targetLoopHeader() const override { return "oheader"; }
  Workload buildWorkload(const WorkloadConfig& config) const override;
  std::uint64_t runReference(interp::Memory& memory,
                             std::span<const std::uint64_t> args)
      const override;
  std::string expectedShape() const override { return "S-P"; }
  bool supportsP2() const override { return true; }
};

} // namespace cgpa::kernels
