// Hash-indexing (after Kocberber et al., "Meet the Walkers", MICRO'13):
// walk a linked list of records, compute a hash of each record's key, and
// insert the record at the head of the corresponding hash-table bucket
// chain. Expected partition: S-P-S.
#pragma once

#include "kernels/kernel.hpp"

namespace cgpa::kernels {

class HashIndexKernel final : public Kernel {
public:
  std::string name() const override { return "hash-indexing"; }
  std::string domain() const override { return "database"; }
  std::string description() const override {
    return "computing hash key for each node and indexing it in a "
           "linked-list";
  }
  std::unique_ptr<ir::Module> buildModule() const override;
  std::string targetLoopHeader() const override { return "header"; }
  Workload buildWorkload(const WorkloadConfig& config) const override;
  std::uint64_t runReference(interp::Memory& memory,
                             std::span<const std::uint64_t> args)
      const override;
  std::string expectedShape() const override { return "S-P-S"; }
  bool supportsP2() const override { return false; }
};

} // namespace cgpa::kernels
