#include "kernels/ks.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace cgpa::kernels {

using ir::CmpPred;
using ir::IRBuilder;
using ir::Type;

namespace {

// Partition-node layout: id i32 @0, D i32 @4 (external-internal cost
// difference), next ptr @8, pad; elem 16.
constexpr std::int64_t kIdOff = 0;
constexpr std::int64_t kDOff = 4;
constexpr std::int64_t kNextOff = 8;
constexpr std::int64_t kNodeSize = 16;
constexpr int kDefaultNodes = 64; // Per side: 64x64 = 4096 pair scans.

} // namespace

std::unique_ptr<ir::Module> KsKernel::buildModule() const {
  auto module = std::make_unique<ir::Module>("ks");

  ir::Region* aNodes =
      module->addRegion("a_nodes", ir::RegionShape::AcyclicList, kNodeSize);
  aNodes->nextOffset = kNextOff;
  aNodes->readOnly = true;
  ir::Region* bNodes =
      module->addRegion("b_nodes", ir::RegionShape::AcyclicList, kNodeSize);
  bNodes->nextOffset = kNextOff;
  bNodes->readOnly = true;
  ir::Region* cost = module->addRegion("cost_matrix", ir::RegionShape::Array, 4);
  cost->readOnly = true;

  ir::Function* fn = module->addFunction("kernel", Type::I32);
  ir::Argument* aHead = fn->addArgument(Type::Ptr, "a_list");
  aHead->setRegionId(aNodes->id);
  ir::Argument* bHead = fn->addArgument(Type::Ptr, "b_list");
  bHead->setRegionId(bNodes->id);
  ir::Argument* costArg = fn->addArgument(Type::Ptr, "cost");
  costArg->setRegionId(cost->id);
  ir::Argument* numB = fn->addArgument(Type::I32, "num_b");

  auto* entry = fn->addBlock("entry");
  auto* oheader = fn->addBlock("oheader");
  auto* obody = fn->addBlock("obody");
  auto* iheader = fn->addBlock("iheader");
  auto* ibody = fn->addBlock("ibody");
  auto* after = fn->addBlock("after");
  auto* latch = fn->addBlock("latch");
  auto* exit = fn->addBlock("exit");

  IRBuilder b(module.get());
  b.setInsertPoint(entry);
  b.br(oheader);

  b.setInsertPoint(oheader);
  auto* a = b.phi(Type::Ptr, "a");
  auto* bestGain = b.phi(Type::I32, "best.gain");
  auto* bestA = b.phi(Type::I32, "best.a");
  auto* bestB = b.phi(Type::I32, "best.b");
  auto* alive = b.icmp(CmpPred::NE, a, b.nullPtr(), "alive");
  b.condBr(alive, obody, exit);

  b.setInsertPoint(obody);
  auto* aId = b.load(Type::I32, a, "a.id");
  auto* aDAddr = b.gep(a, nullptr, 0, kDOff, "a.d.addr");
  auto* aD = b.load(Type::I32, aDAddr, "a.d");
  auto* aRow = b.mul(aId, numB, "a.row");
  b.br(iheader);

  // Inner scan over the B list: track the best gain for this `a`.
  b.setInsertPoint(iheader);
  auto* bn = b.phi(Type::Ptr, "bn");
  auto* gain = b.phi(Type::I32, "gain");
  auto* gainB = b.phi(Type::I32, "gain.b");
  auto* blive = b.icmp(CmpPred::NE, bn, b.nullPtr(), "b.live");
  b.condBr(blive, ibody, after);

  b.setInsertPoint(ibody);
  auto* bId = b.load(Type::I32, bn, "b.id");
  auto* bDAddr = b.gep(bn, nullptr, 0, kDOff, "b.d.addr");
  auto* bD = b.load(Type::I32, bDAddr, "b.d");
  auto* cIdx = b.add(aRow, bId, "c.idx");
  auto* cAddr = b.gep(costArg, cIdx, 4, 0, "c.addr");
  auto* c = b.load(Type::I32, cAddr, "c");
  auto* dSum = b.add(aD, bD, "d.sum");
  auto* c2 = b.shl(c, b.i32(1), "c2");
  auto* pairGain = b.sub(dSum, c2, "pair.gain");
  auto* better = b.icmp(CmpPred::SGT, pairGain, gain, "better");
  auto* gain2 = b.select(better, pairGain, gain, "gain2");
  auto* gainB2 = b.select(better, bId, gainB, "gain.b2");
  auto* bNextAddr = b.gep(bn, nullptr, 0, kNextOff, "b.next.addr");
  auto* bNext = b.load(Type::Ptr, bNextAddr, "b.next");
  b.br(iheader);

  // Sequential max reduction across outer iterations (live-outs). The
  // inner scan's results leave the loop through LCSSA phis.
  b.setInsertPoint(after);
  auto* gainOut = b.phi(Type::I32, "gain.out");
  gainOut->addIncoming(gain, iheader);
  auto* gainBOut = b.phi(Type::I32, "gain.b.out");
  gainBOut->addIncoming(gainB, iheader);
  auto* improved = b.icmp(CmpPred::SGT, gainOut, bestGain, "improved");
  auto* bestGain2 = b.select(improved, gainOut, bestGain, "best.gain2");
  auto* bestA2 = b.select(improved, aId, bestA, "best.a2");
  auto* bestB2 = b.select(improved, gainBOut, bestB, "best.b2");
  b.br(latch);

  b.setInsertPoint(latch);
  auto* aNextAddr = b.gep(a, nullptr, 0, kNextOff, "a.next.addr");
  auto* aNext = b.load(Type::Ptr, aNextAddr, "a.next");
  b.br(oheader);

  // Combine the three live-outs into one checksum return value.
  b.setInsertPoint(exit);
  auto* aShift = b.shl(bestA, b.i32(10), "a.shift");
  auto* bShift = b.shl(bestB, b.i32(20), "b.shift");
  auto* combined =
      b.bitXor(b.bitXor(bestGain, aShift, "x1"), bShift, "combined");
  b.ret(combined);

  a->addIncoming(aHead, entry);
  a->addIncoming(aNext, latch);
  bestGain->addIncoming(b.i32(-1000000000), entry);
  bestGain->addIncoming(bestGain2, latch);
  bestA->addIncoming(b.i32(-1), entry);
  bestA->addIncoming(bestA2, latch);
  bestB->addIncoming(b.i32(-1), entry);
  bestB->addIncoming(bestB2, latch);
  bn->addIncoming(bHead, obody);
  bn->addIncoming(bNext, ibody);
  gain->addIncoming(b.i32(-1000000000), obody);
  gain->addIncoming(gain2, ibody);
  gainB->addIncoming(b.i32(-1), obody);
  gainB->addIncoming(gainB2, ibody);
  return module;
}

Workload KsKernel::buildWorkload(const WorkloadConfig& config) const {
  const int numA = kDefaultNodes * config.scale;
  const int numB = kDefaultNodes * config.scale;
  Workload workload;
  workload.memory = std::make_unique<interp::Memory>(std::max<std::uint64_t>(
      1 << 22,
      static_cast<std::uint64_t>(numA) * static_cast<std::uint64_t>(numB) * 8));
  interp::Memory& mem = *workload.memory;
  Rng rng(config.seed);

  const std::uint64_t costBase = mem.allocate(
      static_cast<std::uint64_t>(numA) * static_cast<std::uint64_t>(numB) * 4,
      4);
  for (int i = 0; i < numA * numB; ++i)
    mem.writeI32(costBase + static_cast<std::uint64_t>(i) * 4,
                 static_cast<std::int32_t>(rng.nextInRange(0, 9)));

  auto buildList = [&](int count) {
    const std::uint64_t base =
        mem.allocate(static_cast<std::uint64_t>(count) * kNodeSize, 8);
    for (int i = 0; i < count; ++i) {
      const std::uint64_t addr =
          base + static_cast<std::uint64_t>(i) * kNodeSize;
      mem.writeI32(addr + kIdOff, i);
      mem.writeI32(addr + kDOff,
                   static_cast<std::int32_t>(rng.nextInRange(-50, 50)));
      mem.writePtr(addr + kNextOff,
                   i == count - 1 ? 0
                                  : addr + static_cast<std::uint64_t>(kNodeSize));
    }
    return base;
  };
  const std::uint64_t aBase = buildList(numA);
  const std::uint64_t bBase = buildList(numB);

  workload.args = {aBase, bBase, costBase, static_cast<std::uint64_t>(numB)};
  return workload;
}

std::uint64_t KsKernel::runReference(interp::Memory& mem,
                                     std::span<const std::uint64_t> args)
    const {
  std::uint64_t a = args[0];
  const std::uint64_t bHead = args[1];
  const std::uint64_t cost = args[2];
  const std::int32_t numB = static_cast<std::int32_t>(args[3]);

  std::int32_t bestGain = -1000000000;
  std::int32_t bestA = -1;
  std::int32_t bestB = -1;
  while (a != 0) {
    const std::int32_t aId = mem.readI32(a + kIdOff);
    const std::int32_t aD = mem.readI32(a + kDOff);
    std::int32_t gain = -1000000000;
    std::int32_t gainB = -1;
    for (std::uint64_t bn = bHead; bn != 0; bn = mem.readPtr(bn + kNextOff)) {
      const std::int32_t bId = mem.readI32(bn + kIdOff);
      const std::int32_t bD = mem.readI32(bn + kDOff);
      const std::int32_t c =
          mem.readI32(cost + static_cast<std::uint64_t>(aId * numB + bId) * 4);
      const std::int32_t pairGain = aD + bD - (c << 1);
      if (pairGain > gain) {
        gain = pairGain;
        gainB = bId;
      }
    }
    if (gain > bestGain) {
      bestGain = gain;
      bestA = aId;
      bestB = gainB;
    }
    a = mem.readPtr(a + kNextOff);
  }
  const std::int32_t combined = bestGain ^ (bestA << 10) ^ (bestB << 20);
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(combined));
}

} // namespace cgpa::kernels
