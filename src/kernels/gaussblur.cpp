#include "kernels/gaussblur.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace cgpa::kernels {

using ir::CmpPred;
using ir::IRBuilder;
using ir::Type;

namespace {

constexpr int kDefaultHeight = 24;
constexpr int kDefaultWidth = 160;
// 5-tap Gaussian coefficients.
constexpr float kCoef[5] = {0.0625f, 0.25f, 0.375f, 0.25f, 0.0625f};

} // namespace

std::unique_ptr<ir::Module> GaussblurKernel::buildModule() const {
  auto module = std::make_unique<ir::Module>("gaussblur");

  ir::Region* img = module->addRegion("img", ir::RegionShape::Array, 4);
  img->readOnly = true;
  ir::Region* inter =
      module->addRegion("intermediate", ir::RegionShape::Array, 4);

  ir::Function* fn = module->addFunction("kernel", Type::I32);
  ir::Argument* imgArg = fn->addArgument(Type::Ptr, "img");
  imgArg->setRegionId(img->id);
  ir::Argument* interArg = fn->addArgument(Type::Ptr, "intermediate");
  interArg->setRegionId(inter->id);
  ir::Argument* height = fn->addArgument(Type::I32, "height");
  ir::Argument* width = fn->addArgument(Type::I32, "width");

  auto* entry = fn->addBlock("entry");
  auto* rheader = fn->addBlock("rheader");
  auto* rbody = fn->addBlock("rbody");
  auto* jheader = fn->addBlock("jheader");
  auto* jbody = fn->addBlock("jbody");
  auto* jexit = fn->addBlock("jexit");
  auto* rlatch = fn->addBlock("rlatch");
  auto* rexit = fn->addBlock("rexit");

  IRBuilder b(module.get());
  b.setInsertPoint(entry);
  b.br(rheader);

  // Row loop: runs on the wrapper; the accelerator handles each row.
  b.setInsertPoint(rheader);
  auto* row = b.phi(Type::I32, "row");
  auto* moreRows = b.icmp(CmpPred::SLT, row, height, "more.rows");
  b.condBr(moreRows, rbody, rexit);

  // Row preamble: prime the 5-wide window (scalar replacement).
  b.setInsertPoint(rbody);
  auto* rowBase = b.mul(row, width, "row.base");
  ir::Value* pre[5];
  for (int t = 0; t < 5; ++t) {
    auto* addr = b.gep(imgArg, rowBase, 4, t * 4, "pre.addr" + std::to_string(t));
    pre[t] = b.load(Type::F32, addr, "pre" + std::to_string(t));
  }
  auto* jLimit = b.sub(width, b.i32(4), "j.limit");
  b.br(jheader);

  // Target loop: slide the window across the row.
  b.setInsertPoint(jheader);
  auto* j = b.phi(Type::I32, "j");
  ir::Instruction* window[5];
  for (int t = 0; t < 5; ++t)
    window[t] = b.phi(Type::F32, "w" + std::to_string(t));
  auto* moreCols = b.icmp(CmpPred::SLT, j, jLimit, "more.cols");
  b.condBr(moreCols, jbody, jexit);

  b.setInsertPoint(jbody);
  // Parallel section: the weighted 5-tap reduction and output store.
  ir::Value* sum = b.fmul(b.f32(kCoef[0]), window[0], "m0");
  for (int t = 1; t < 5; ++t) {
    auto* m = b.fmul(b.f32(kCoef[t]), window[t], "m" + std::to_string(t));
    sum = b.fadd(sum, m, "s" + std::to_string(t));
  }
  auto* outIdx = b.add(rowBase, j, "out.idx");
  auto* outAddr = b.gep(interArg, outIdx, 4, 0, "out.addr");
  b.store(sum, outAddr);
  // R3: fetch the next image sample feeding the shift chain.
  auto* inOff = b.add(j, b.i32(5), "in.off");
  auto* inIdx = b.add(rowBase, inOff, "in.idx");
  auto* inAddr = b.gep(imgArg, inIdx, 4, 0, "in.addr");
  auto* newSample = b.load(Type::F32, inAddr, "new.sample");
  auto* j2 = b.add(j, b.i32(1), "j2");
  b.br(jheader);

  b.setInsertPoint(jexit);
  b.br(rlatch);

  b.setInsertPoint(rlatch);
  auto* row2 = b.add(row, b.i32(1), "row2");
  b.br(rheader);

  b.setInsertPoint(rexit);
  b.ret(b.i32(0));

  row->addIncoming(b.i32(0), entry);
  row->addIncoming(row2, rlatch);
  j->addIncoming(b.i32(0), rbody);
  j->addIncoming(j2, jbody);
  // Shift chain: w[t] takes w[t+1]; the last one takes the fresh sample.
  for (int t = 0; t < 5; ++t) {
    window[t]->addIncoming(pre[t], rbody);
    window[t]->addIncoming(t < 4 ? static_cast<ir::Value*>(window[t + 1])
                                 : static_cast<ir::Value*>(newSample),
                           jbody);
  }
  return module;
}

Workload GaussblurKernel::buildWorkload(const WorkloadConfig& config) const {
  const int height = kDefaultHeight * config.scale;
  const int width = kDefaultWidth;
  Workload workload;
  workload.memory = std::make_unique<interp::Memory>(std::max<std::uint64_t>(
      1 << 22, static_cast<std::uint64_t>(height) * width * 16));
  interp::Memory& mem = *workload.memory;
  Rng rng(config.seed);

  const std::uint64_t img = mem.allocate(
      static_cast<std::uint64_t>(height) * width * 4, 4);
  for (int i = 0; i < height * width; ++i)
    mem.writeF32(img + static_cast<std::uint64_t>(i) * 4,
                 static_cast<float>(rng.nextDouble() * 255.0));
  const std::uint64_t inter = mem.allocate(
      static_cast<std::uint64_t>(height) * width * 4, 4);

  workload.args = {img, inter, static_cast<std::uint64_t>(height),
                   static_cast<std::uint64_t>(width)};
  return workload;
}

std::uint64_t GaussblurKernel::runReference(interp::Memory& mem,
                                            std::span<const std::uint64_t> args)
    const {
  const std::uint64_t img = args[0];
  const std::uint64_t inter = args[1];
  const int height = static_cast<int>(args[2]);
  const int width = static_cast<int>(args[3]);

  for (int row = 0; row < height; ++row) {
    const int rowBase = row * width;
    float window[5];
    for (int t = 0; t < 5; ++t)
      window[t] =
          mem.readF32(img + static_cast<std::uint64_t>(rowBase + t) * 4);
    for (int j = 0; j < width - 4; ++j) {
      float sum = kCoef[0] * window[0];
      for (int t = 1; t < 5; ++t)
        sum = sum + kCoef[t] * window[t];
      mem.writeF32(inter + static_cast<std::uint64_t>(rowBase + j) * 4, sum);
      const float fresh =
          mem.readF32(img + static_cast<std::uint64_t>(rowBase + j + 5) * 4);
      for (int t = 0; t < 4; ++t)
        window[t] = window[t + 1];
      window[4] = fresh;
    }
  }
  return 0;
}

} // namespace cgpa::kernels
