// ks (Kernighan–Lin graph partitioning): traverse doubly-nested linked
// lists of candidate nodes from the two partitions and find the swap pair
// with the maximum gain. Expected partition: S-P-S.
#pragma once

#include "kernels/kernel.hpp"

namespace cgpa::kernels {

class KsKernel final : public Kernel {
public:
  std::string name() const override { return "ks"; }
  std::string domain() const override { return "graph partition"; }
  std::string description() const override {
    return "traversing doubly-nested linked-lists to find a max gain of "
           "swapping";
  }
  std::unique_ptr<ir::Module> buildModule() const override;
  std::string targetLoopHeader() const override { return "oheader"; }
  Workload buildWorkload(const WorkloadConfig& config) const override;
  std::uint64_t runReference(interp::Memory& memory,
                             std::span<const std::uint64_t> args)
      const override;
  std::string expectedShape() const override { return "S-P-S"; }
  bool supportsP2() const override { return false; }
};

} // namespace cgpa::kernels
