#include "fuzz/invariants.hpp"

#include <algorithm>
#include <set>

#include "hls/schedule_audit.hpp"
#include "ir/verifier.hpp"
#include "sim/fifo.hpp"

namespace cgpa::fuzz {

using analysis::Scc;
using analysis::SccClass;
using analysis::SccEdge;

std::string InvariantReport::summary() const {
  std::string text;
  for (const std::string& violation : violations) {
    if (!text.empty())
      text += '\n';
    text += violation;
  }
  return text;
}

InvariantReport checkPlan(const pipeline::PipelinePlan& plan) {
  InvariantReport report;
  if (plan.stages.empty()) {
    report.fail("plan has no stages");
    return report;
  }

  // At most one parallel stage (PS-DSWP shape), and a sane worker count.
  int parallelStages = 0;
  for (const pipeline::Stage& stage : plan.stages)
    if (stage.parallel)
      ++parallelStages;
  ++report.checksRun;
  if (parallelStages > 1)
    report.fail("plan has " + std::to_string(parallelStages) +
                " parallel stages (at most one allowed)");
  ++report.checksRun;
  if (plan.numWorkers < 1)
    report.fail("plan has numWorkers = " + std::to_string(plan.numWorkers));

  if (plan.sccs == nullptr) {
    report.fail("plan carries no SCC graph");
    return report;
  }
  const auto& sccs = plan.sccs->sccs();

  // Every SCC is placed in exactly one stage XOR replicated everywhere.
  std::vector<int> placements(sccs.size(), 0);
  for (const pipeline::Stage& stage : plan.stages)
    for (const int scc : stage.sccIds) {
      if (scc < 0 || scc >= static_cast<int>(sccs.size())) {
        report.fail("stage references unknown SCC " + std::to_string(scc));
        continue;
      }
      ++placements[static_cast<std::size_t>(scc)];
    }
  for (const int scc : plan.replicatedSccs)
    if (scc >= 0 && scc < static_cast<int>(sccs.size()))
      ++placements[static_cast<std::size_t>(scc)];
  for (std::size_t s = 0; s < sccs.size(); ++s) {
    ++report.checksRun;
    if (placements[s] != 1)
      report.fail("SCC " + std::to_string(s) + " placed " +
                  std::to_string(placements[s]) +
                  " times (must be exactly once: one stage or replicated)");
  }

  // Replicated SCCs must be safe to run redundantly: loop-carried state is
  // fine (each copy carries its own), side effects are not.
  for (const int scc : plan.replicatedSccs) {
    if (scc < 0 || scc >= static_cast<int>(sccs.size()))
      continue;
    const Scc& node = sccs[static_cast<std::size_t>(scc)];
    ++report.checksRun;
    if (node.sideEffects)
      report.fail("replicated SCC " + std::to_string(scc) +
                  " has side effects");
    ++report.checksRun;
    if (node.cls == SccClass::Sequential)
      report.fail("replicated SCC " + std::to_string(scc) +
                  " is Sequential class");
  }

  // Parallel-stage membership: iterations of the parallel stage run
  // concurrently on different workers, so no member SCC may carry a
  // dependence from one iteration to the next.
  const int parallelIndex = plan.parallelStageIndex();
  if (parallelIndex >= 0) {
    for (const int scc : plan.stages[static_cast<std::size_t>(parallelIndex)]
                             .sccIds) {
      if (scc < 0 || scc >= static_cast<int>(sccs.size()))
        continue;
      const Scc& node = sccs[static_cast<std::size_t>(scc)];
      ++report.checksRun;
      if (node.cls != SccClass::Parallel)
        report.fail("parallel stage contains " +
                    std::string(analysis::sccClassName(node.cls)) + " SCC " +
                    std::to_string(scc));
      ++report.checksRun;
      if (node.hasInternalCarried)
        report.fail("parallel stage SCC " + std::to_string(scc) +
                    " has an internal loop-carried dependence");
    }
  }

  // Dependence direction: condensation edges between two placed SCCs must
  // flow forward through the pipeline (consumer stage >= producer stage),
  // and no loop-carried edge may connect two parallel-stage SCCs (the
  // consumer's next iteration runs concurrently on another worker).
  for (const SccEdge& edge : plan.sccs->edges()) {
    const bool fromReplicated = plan.isReplicatedScc(edge.from);
    const bool toReplicated = plan.isReplicatedScc(edge.to);
    if (fromReplicated || toReplicated)
      continue; // Replicated SCCs exist in every stage.
    const int fromStage = plan.stageOfScc(edge.from);
    const int toStage = plan.stageOfScc(edge.to);
    if (fromStage < 0 || toStage < 0)
      continue; // Placement errors reported above.
    ++report.checksRun;
    if (fromStage > toStage)
      report.fail("dependence flows backward: SCC " +
                  std::to_string(edge.from) + " (stage " +
                  std::to_string(fromStage) + ") -> SCC " +
                  std::to_string(edge.to) + " (stage " +
                  std::to_string(toStage) + ")");
    ++report.checksRun;
    if (edge.loopCarried && fromStage == parallelIndex &&
        toStage == parallelIndex)
      report.fail("loop-carried dependence inside the parallel stage: SCC " +
                  std::to_string(edge.from) + " -> SCC " +
                  std::to_string(edge.to));
  }
  return report;
}

InvariantReport checkPipelineModule(const pipeline::PipelineModule& pipeline) {
  InvariantReport report;
  if (pipeline.module == nullptr || pipeline.wrapper == nullptr) {
    report.fail("pipeline missing module or wrapper");
    return report;
  }
  const int numStages = static_cast<int>(pipeline.tasks.size());

  // Tasks: one per stage 0..n-1, at most one parallel.
  std::vector<int> stageSeen(static_cast<std::size_t>(numStages), 0);
  int parallelTasks = 0;
  for (const pipeline::TaskInfo& task : pipeline.tasks) {
    ++report.checksRun;
    if (task.fn == nullptr) {
      report.fail("task with null function");
      continue;
    }
    if (task.stageIndex < 0 || task.stageIndex >= numStages)
      report.fail("task " + task.fn->name() + " has stage index " +
                  std::to_string(task.stageIndex));
    else
      ++stageSeen[static_cast<std::size_t>(task.stageIndex)];
    if (task.parallel)
      ++parallelTasks;
  }
  for (int s = 0; s < numStages; ++s) {
    ++report.checksRun;
    if (stageSeen[static_cast<std::size_t>(s)] != 1)
      report.fail("stage " + std::to_string(s) + " has " +
                  std::to_string(stageSeen[static_cast<std::size_t>(s)]) +
                  " tasks");
  }
  ++report.checksRun;
  if (parallelTasks > 1)
    report.fail("pipeline has " + std::to_string(parallelTasks) +
                " parallel tasks");

  // Channels: dense ids, endpoints are distinct forward stages, lane count
  // is numWorkers iff an endpoint is the parallel stage.
  const pipeline::TaskInfo* parallelTask = pipeline.parallelTask();
  const int parallelStage =
      parallelTask != nullptr ? parallelTask->stageIndex : -1;
  for (std::size_t c = 0; c < pipeline.channels.size(); ++c) {
    const pipeline::ChannelInfo& channel = pipeline.channels[c];
    ++report.checksRun;
    if (channel.id != static_cast<int>(c))
      report.fail("channel at index " + std::to_string(c) + " has id " +
                  std::to_string(channel.id));
    ++report.checksRun;
    if (channel.producerStage < 0 || channel.producerStage >= numStages ||
        channel.consumerStage < 0 || channel.consumerStage >= numStages)
      report.fail("channel " + std::to_string(channel.id) +
                  " has out-of-range endpoint stages");
    else {
      if (channel.producerStage >= channel.consumerStage)
        report.fail("channel " + std::to_string(channel.id) +
                    " does not flow forward: stage " +
                    std::to_string(channel.producerStage) + " -> " +
                    std::to_string(channel.consumerStage));
      const bool touchesParallel = channel.producerStage == parallelStage ||
                                   channel.consumerStage == parallelStage;
      const int expectedLanes = touchesParallel ? pipeline.numWorkers : 1;
      ++report.checksRun;
      if (channel.lanes != expectedLanes)
        report.fail("channel " + std::to_string(channel.id) + " has " +
                    std::to_string(channel.lanes) + " lanes, expected " +
                    std::to_string(expectedLanes));
      ++report.checksRun;
      if (channel.broadcast && channel.producerStage == parallelStage)
        report.fail("channel " + std::to_string(channel.id) +
                    " broadcasts out of the parallel stage");
    }
  }

  // Liveouts: unique ids, owned by a real stage.
  std::set<int> liveoutIds;
  for (const pipeline::LiveoutInfo& liveout : pipeline.liveouts) {
    ++report.checksRun;
    if (!liveoutIds.insert(liveout.id).second)
      report.fail("duplicate liveout id " + std::to_string(liveout.id));
    if (liveout.ownerStage < 0 || liveout.ownerStage >= numStages)
      report.fail("liveout " + std::to_string(liveout.id) +
                  " owned by stage " + std::to_string(liveout.ownerStage));
  }

  // Every emitted function must still verify.
  auto verifyFn = [&](const ir::Function* fn) {
    if (fn == nullptr)
      return;
    ++report.checksRun;
    const std::string error = ir::verifyFunction(*fn);
    if (!error.empty())
      report.fail(fn->name() + ": " + error);
  };
  verifyFn(pipeline.wrapper);
  for (const pipeline::TaskInfo& task : pipeline.tasks)
    verifyFn(task.fn);
  return report;
}

InvariantReport checkSchedules(const pipeline::PipelineModule& pipeline,
                               const hls::ScheduleOptions& options) {
  InvariantReport report;
  auto auditFn = [&](const ir::Function* fn) {
    if (fn == nullptr)
      return;
    const hls::FunctionSchedule schedule = hls::scheduleFunction(*fn, options);
    const hls::ScheduleAudit audit = hls::auditSchedule(*fn, schedule, options);
    report.checksRun += audit.constraintsChecked;
    for (const std::string& violation : audit.violations)
      report.fail(fn->name() + ": " + violation);
  };
  auditFn(pipeline.wrapper);
  for (const pipeline::TaskInfo& task : pipeline.tasks)
    auditFn(task.fn);
  return report;
}

InvariantReport checkSimResult(const pipeline::PipelineModule& pipeline,
                               const sim::SimResult& result,
                               const sim::SystemConfig& config) {
  InvariantReport report;

  // Token conservation, channel by channel. After a completed run every
  // FIFO drained, so pops match pushes exactly; the per-channel stats must
  // also account for every globally counted push/pop.
  ++report.checksRun;
  if (result.channelStats.size() != pipeline.channels.size())
    report.fail("sim reports " + std::to_string(result.channelStats.size()) +
                " channels, pipeline has " +
                std::to_string(pipeline.channels.size()));
  std::uint64_t sumPushes = 0;
  std::uint64_t sumPops = 0;
  for (std::size_t c = 0; c < result.channelStats.size(); ++c) {
    const auto& stats = result.channelStats[c];
    sumPushes += stats.pushes;
    sumPops += stats.pops;
    ++report.checksRun;
    if (stats.pops != stats.pushes)
      report.fail("channel " + std::to_string(c) + " not conserved: " +
                  std::to_string(stats.pushes) + " pushes, " +
                  std::to_string(stats.pops) + " pops");
    // Lane capacity in flits equals the configured entry depth, clamped up
    // so one complete value of the channel's type always fits (the sim
    // applies the same clamp; without it a shallow FIFO would deadlock).
    const int flits = sim::FifoLane::flitsFor(pipeline.channels[c].type,
                                              config.fifoWidthBits);
    const int capacity = std::max(config.fifoDepth, flits);
    ++report.checksRun;
    if (stats.maxOccupancyFlits > capacity)
      report.fail("channel " + std::to_string(c) + " occupancy " +
                  std::to_string(stats.maxOccupancyFlits) +
                  " exceeds FIFO capacity " + std::to_string(capacity));
    // Push/pop counters are value-granular (one per produce/consume), so
    // no flit arithmetic applies here; occupancy above is the flit axis.
  }
  ++report.checksRun;
  if (sumPushes != result.fifoPushes || sumPops != result.fifoPops)
    report.fail("per-channel totals (" + std::to_string(sumPushes) + "/" +
                std::to_string(sumPops) +
                ") disagree with global FIFO counters (" +
                std::to_string(result.fifoPushes) + "/" +
                std::to_string(result.fifoPops) + ")");

  // Engine accounting: each fork of the accelerated loop spawns one engine
  // per sequential task plus numWorkers per parallel task (the wrapper is
  // not counted in enginesSpawned). The wrapper may invoke the loop many
  // times per run, so the spawn count is a positive multiple of the
  // per-invocation engine count — except for a zero-invocation run.
  int enginesPerFork = 0;
  for (const pipeline::TaskInfo& task : pipeline.tasks)
    enginesPerFork += task.parallel ? pipeline.numWorkers : 1;
  ++report.checksRun;
  if (enginesPerFork > 0 && result.enginesSpawned % enginesPerFork != 0)
    report.fail("spawned " + std::to_string(result.enginesSpawned) +
                " engines, not a multiple of " +
                std::to_string(enginesPerFork) + " per fork");
  ++report.checksRun;
  if (result.engines.size() !=
      static_cast<std::size_t>(result.enginesSpawned) + 1)
    report.fail("engine summaries (" + std::to_string(result.engines.size()) +
                ") != wrapper + spawned engines");

  // Progress: a completed run took cycles and did work; the active/stalled
  // split never exceeds total engine-cycles.
  ++report.checksRun;
  if (result.cycles == 0)
    report.fail("simulation completed in zero cycles");
  ++report.checksRun;
  if (result.cyclesActive == 0)
    report.fail("no engine ever made progress");
  ++report.checksRun;
  if (result.cyclesActive + result.cyclesStalled >
      result.cycles *
          (static_cast<std::uint64_t>(result.enginesSpawned) + 1))
    report.fail("engine-cycle accounting exceeds cycles * engines");

  // Cycle-attribution ledger conservation: per engine, every live cycle
  // carries exactly one cause, so Σ causes == active + stalled; with the
  // idle remainder the partition covers the whole run (== result.cycles).
  // The FIFO cause additionally splits into full/empty, and those split
  // again per channel.
  std::uint64_t sumFullByChannel = 0;
  std::uint64_t sumEmptyByChannel = 0;
  for (std::size_t e = 0; e < result.engines.size(); ++e) {
    const sim::WorkerStats& stats = result.engines[e].stats;
    const std::string who = "engine " + std::to_string(e);
    ++report.checksRun;
    const std::uint64_t causes = stats.cyclesBusy + stats.stallMem +
                                 stats.stallFifoFull + stats.stallFifoEmpty +
                                 stats.stallDep;
    if (causes != stats.cyclesActive + stats.cyclesStalled)
      report.fail(who + " ledger not conserved: Σ causes " +
                  std::to_string(causes) + " != live cycles " +
                  std::to_string(stats.cyclesActive + stats.cyclesStalled));
    ++report.checksRun;
    if (stats.stallFifoFull + stats.stallFifoEmpty != stats.stallFifo)
      report.fail(who + " fifo split " +
                  std::to_string(stats.stallFifoFull) + "+" +
                  std::to_string(stats.stallFifoEmpty) + " != stallFifo " +
                  std::to_string(stats.stallFifo));
    ++report.checksRun;
    if (causes + stats.cyclesIdle != result.cycles)
      report.fail(who + " ledger + idle " +
                  std::to_string(causes + stats.cyclesIdle) +
                  " != run cycles " + std::to_string(result.cycles));
    std::uint64_t fullSlices = 0;
    for (const std::uint64_t cycles : stats.stallFifoFullByChannel)
      fullSlices += cycles;
    std::uint64_t emptySlices = 0;
    for (const std::uint64_t cycles : stats.stallFifoEmptyByChannel)
      emptySlices += cycles;
    ++report.checksRun;
    if (fullSlices != stats.stallFifoFull ||
        emptySlices != stats.stallFifoEmpty)
      report.fail(who + " per-channel FIFO slices (" +
                  std::to_string(fullSlices) + "/" +
                  std::to_string(emptySlices) +
                  ") disagree with totals (" +
                  std::to_string(stats.stallFifoFull) + "/" +
                  std::to_string(stats.stallFifoEmpty) + ")");
    sumFullByChannel += fullSlices;
    sumEmptyByChannel += emptySlices;
  }
  // Aggregates mirror the per-engine ledgers, and the channel summaries
  // (stallFullCycles/stallEmptyCycles) account for every attributed cycle.
  ++report.checksRun;
  if (result.cyclesBusy + result.stallMem + result.stallFifoFull +
          result.stallFifoEmpty + result.stallDep !=
      result.cyclesActive + result.cyclesStalled)
    report.fail("aggregate ledger not conserved");
  ++report.checksRun;
  if (result.stallFifoFull + result.stallFifoEmpty != result.stallFifo)
    report.fail("aggregate fifo split != stallFifo");
  std::uint64_t channelFull = 0;
  std::uint64_t channelEmpty = 0;
  for (const auto& stats : result.channelStats) {
    channelFull += stats.stallFullCycles;
    channelEmpty += stats.stallEmptyCycles;
  }
  ++report.checksRun;
  if (channelFull != sumFullByChannel || channelEmpty != sumEmptyByChannel)
    report.fail("channel stall-cycle summaries (" +
                std::to_string(channelFull) + "/" +
                std::to_string(channelEmpty) +
                ") disagree with engine ledgers (" +
                std::to_string(sumFullByChannel) + "/" +
                std::to_string(sumEmptyByChannel) + ")");
  return report;
}

} // namespace cgpa::fuzz
