#include "fuzz/shrink.hpp"

#include "support/diag.hpp"

namespace cgpa::fuzz {

namespace {

/// One candidate simplification; returns false if it does not apply.
using Mutation = bool (*)(LoopSpec&);

bool dropLastOp(LoopSpec& spec) {
  if (spec.ops.size() <= 1)
    return false;
  spec.ops.pop_back();
  return true;
}

bool dropFirstOp(LoopSpec& spec) {
  if (spec.ops.size() <= 1)
    return false;
  spec.ops.erase(spec.ops.begin());
  return true;
}

bool halveTrip(LoopSpec& spec) {
  if (spec.tripCount <= 2)
    return false;
  spec.tripCount /= 2;
  return true;
}

bool tripToTwo(LoopSpec& spec) {
  if (spec.tripCount <= 2)
    return false;
  spec.tripCount = 2;
  return true;
}

bool countedStyle(LoopSpec& spec) {
  if (spec.style != IterStyle::ListWalk)
    return false;
  for (const BodyOp op : spec.ops)
    if (op == BodyOp::ListPayload)
      return false; // The op only exists on lists.
  spec.style = IterStyle::Counted;
  return true;
}

bool narrowInduction(LoopSpec& spec) {
  if (!spec.wideInduction)
    return false;
  spec.wideInduction = false;
  return true;
}

bool plainReturn(LoopSpec& spec) {
  if (!spec.returnAcc)
    return false;
  spec.returnAcc = false;
  return true;
}

bool canonicalData(LoopSpec& spec) {
  if (spec.dataSeed == 1)
    return false;
  spec.dataSeed = 1;
  return true;
}

constexpr Mutation kMutations[] = {dropLastOp,      dropFirstOp, halveTrip,
                                   tripToTwo,       countedStyle,
                                   narrowInduction, plainReturn, canonicalData};

} // namespace

ShrinkResult shrinkSpec(const LoopSpec& failing,
                        const FailurePredicate& stillFails, int maxAttempts) {
  ShrinkResult result;
  result.spec = failing;
  // Fixed point: retry the whole mutation menu after every acceptance,
  // since dropping one op can unlock dropping another.
  bool progressed = true;
  while (progressed && result.attempts < maxAttempts) {
    progressed = false;
    for (const Mutation mutate : kMutations) {
      if (result.attempts >= maxAttempts)
        break;
      LoopSpec candidate = result.spec;
      if (!mutate(candidate))
        continue;
      ++result.attempts;
      if (stillFails(candidate)) {
        result.spec = candidate;
        ++result.reductions;
        progressed = true;
      }
    }
  }
  return result;
}

} // namespace cgpa::fuzz
