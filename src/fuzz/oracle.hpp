// Differential oracle: one generated loop, five independent executions.
//
// For a LoopSpec the oracle runs
//   1. the sequential reference interpreter (golden),
//   2. the functional pipeline executor (untimed, unbounded queues),
//   3. the cycle-level system simulator (interpreting tier, pinned),
//   4. a fault-injected cycle-sim re-run (seeded timing perturbations),
//   5. a threaded-tier cycle-sim re-run (sim/exec/threaded.hpp) that must
//      match golden AND be bit-identical to leg 3 in every architectural
//      counter (cycles, liveouts, memory, op counts, stalls, energy),
// legs 2-5 for every requested (policy, worker-count) configuration,
// each against a bit-identical fresh workload. It compares return values,
// final memory images, and — where the PDG requires an order — the
// per-address store sequences, and layers the structural invariant
// checkers (fuzz/invariants.hpp) over every compiled pipeline.
//
// Any disagreement is a bug in exactly one of: partitioner, transform,
// scheduler, simulator, functional executor, or the generator's region
// annotations — which is the point.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "fuzz/loopgen.hpp"
#include "hls/schedule.hpp"
#include "pipeline/plan.hpp"
#include "sim/fault.hpp"
#include "sim/system.hpp"

namespace cgpa::fuzz {

struct OracleOptions {
  /// Worker counts to exercise for each policy.
  std::vector<int> workerCounts = {1, 2, 4};
  /// Run the ForceParallel (P2) policy in addition to the Heuristic (P1).
  bool runP2 = true;
  hls::ScheduleOptions schedule;
  int fifoDepth = 16;
  int fifoWidthBits = 32;
  /// Cycle cap for the simulation legs; 0 derives sim::kDefaultMaxCycles,
  /// the same knob `cgpac --max-cycles` overrides. A capped or deadlocked
  /// simulation fails the oracle with the Status message (including the
  /// wedged channel), so wedged configs shrink like any other failure.
  std::uint64_t maxCycles = 0;
  /// Compare per-address store sequences between golden and functional
  /// executions (the cycle simulator is checked on final state only).
  bool checkStoreOrder = true;
  /// Run the plan/module/schedule/sim invariant checkers.
  bool checkInvariants = true;
  /// Also simulate at cycle level (the most expensive leg).
  bool runCycleSim = true;
  /// Cycle-sim execution-tier selection (the --sim-backend knob):
  /// Interp runs leg 3 alone under the interpreting tier; Threaded runs it
  /// alone under the threaded tier (checked against golden only); Auto —
  /// the default — runs both tiers and additionally requires strict
  /// bit-identity between them (leg 5): identical cycles, return value,
  /// memory image, liveouts, op counts, stall/active counters, FIFO and
  /// cache stats, and energy.
  sim::SimBackend simBackend = sim::SimBackend::Auto;
  /// When enabled, each cycle-sim config runs a second, fault-injected
  /// leg: seeded timing perturbations (sim/fault.hpp) that a correct
  /// pipeline must absorb — results must still match golden and at least
  /// one fault must actually fire.
  sim::FaultPlan faults;
};

/// One compiled-and-executed configuration.
struct OracleConfigResult {
  std::string label; ///< e.g. "P1/W4".
  std::string shape; ///< Plan shape, e.g. "S-P-S".
  bool pipelined = false;
  std::uint64_t cycles = 0; ///< 0 when the cycle sim was skipped.
  /// The threaded-tier leg ran and was verified bit-identical to the
  /// interpreting leg for this config.
  bool threadedChecked = false;
};

/// What the generated loop actually exercised — recorded so a fuzzing run
/// can prove its corpus covers the interesting structure space.
struct OracleCoverage {
  bool parallelScc = false;
  bool replicableScc = false;
  bool sequentialScc = false;
  bool heavyReplicable = false; ///< Replicable with load or multiply.
  bool parallelStage = false;   ///< Some config produced a parallel stage.
  bool earlyExitTaken = false;  ///< Loop exited before the bound.
  std::set<std::string> shapes; ///< All plan shapes seen.
};

struct OracleReport {
  bool ok = true;
  std::vector<std::string> errors;
  std::vector<OracleConfigResult> configs;
  OracleCoverage coverage;
  int invariantChecks = 0;
  std::uint64_t goldenReturn = 0;
  std::uint64_t goldenInstructions = 0;

  /// All errors joined with newlines (empty when ok).
  std::string summary() const;
};

/// Run the full differential check for `spec`.
OracleReport runOracle(const LoopSpec& spec, const OracleOptions& options = {});

} // namespace cgpa::fuzz
