#include "fuzz/oracle.hpp"

#include <map>

#include "analysis/alias.hpp"
#include "analysis/control_dep.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "analysis/pdg.hpp"
#include "analysis/scc.hpp"
#include "fuzz/invariants.hpp"
#include "hls/ops.hpp"
#include "interp/interpreter.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "opt/passes.hpp"
#include "pipeline/functional_exec.hpp"
#include "pipeline/partition.hpp"
#include "pipeline/transform.hpp"
#include "sim/system.hpp"
#include "support/diag.hpp"

namespace cgpa::fuzz {

namespace {

/// Records the sequence of stored values per address (execution order) and
/// counts entries into the loop header.
class StoreCapture : public interp::ExecObserver {
public:
  StoreCapture(const interp::Memory& memory, std::string headerName)
      : memory_(&memory), headerName_(std::move(headerName)) {}

  void onExec(const ir::Instruction& inst, std::uint64_t memAddr) override {
    if (inst.opcode() != ir::Opcode::Store)
      return;
    // The observer fires after execution, so the stored pattern is simply
    // what the address now holds.
    const ir::Type type = inst.operand(0)->type();
    stores_[memAddr].push_back(memory_->load(type, memAddr));
  }
  void onBlockEnter(const ir::BasicBlock& block) override {
    if (block.name() == headerName_)
      ++headerEntries_;
  }

  const std::map<std::uint64_t, std::vector<std::uint64_t>>& stores() const {
    return stores_;
  }
  std::uint64_t headerEntries() const { return headerEntries_; }

private:
  const interp::Memory* memory_;
  std::string headerName_;
  std::map<std::uint64_t, std::vector<std::uint64_t>> stores_;
  std::uint64_t headerEntries_ = 0;
};

std::string policyName(pipeline::ReplicablePolicy policy) {
  return policy == pipeline::ReplicablePolicy::Heuristic ? "P1" : "P2";
}

/// First byte index at which the two images differ, or -1 if equal.
std::int64_t firstMemoryDiff(const interp::Memory& a,
                             const interp::Memory& b) {
  const auto& ra = a.raw();
  const auto& rb = b.raw();
  if (ra.size() != rb.size())
    return 0;
  for (std::size_t i = 0; i < ra.size(); ++i)
    if (ra[i] != rb[i])
      return static_cast<std::int64_t>(i);
  return -1;
}

/// First architectural field at which two SimResults differ, or "" when
/// they are bit-identical. The backend tag is deliberately excluded: it is
/// the one field the two execution tiers are allowed to differ in.
std::string compareSimResults(const sim::SimResult& a,
                              const sim::SimResult& b) {
  auto diff = [](const char* field, auto x, auto y) {
    return std::string(field) + " " + std::to_string(x) + " vs " +
           std::to_string(y);
  };
  if (a.cycles != b.cycles)
    return diff("cycles", a.cycles, b.cycles);
  if (a.returnValue != b.returnValue)
    return diff("returnValue", a.returnValue, b.returnValue);
  if (a.opCounts != b.opCounts)
    return "opCounts differ";
  if (a.liveouts != b.liveouts)
    return "liveouts differ";
  if (a.fifoPushes != b.fifoPushes)
    return diff("fifoPushes", a.fifoPushes, b.fifoPushes);
  if (a.fifoPops != b.fifoPops)
    return diff("fifoPops", a.fifoPops, b.fifoPops);
  if (a.fifoMaxOccupancyFlits != b.fifoMaxOccupancyFlits)
    return diff("fifoMaxOccupancyFlits", a.fifoMaxOccupancyFlits,
                b.fifoMaxOccupancyFlits);
  if (a.stallMem != b.stallMem)
    return diff("stallMem", a.stallMem, b.stallMem);
  if (a.stallFifo != b.stallFifo)
    return diff("stallFifo", a.stallFifo, b.stallFifo);
  if (a.stallFifoFull != b.stallFifoFull)
    return diff("stallFifoFull", a.stallFifoFull, b.stallFifoFull);
  if (a.stallFifoEmpty != b.stallFifoEmpty)
    return diff("stallFifoEmpty", a.stallFifoEmpty, b.stallFifoEmpty);
  if (a.stallDep != b.stallDep)
    return diff("stallDep", a.stallDep, b.stallDep);
  if (a.cyclesActive != b.cyclesActive)
    return diff("cyclesActive", a.cyclesActive, b.cyclesActive);
  if (a.cyclesStalled != b.cyclesStalled)
    return diff("cyclesStalled", a.cyclesStalled, b.cyclesStalled);
  if (a.cyclesBusy != b.cyclesBusy)
    return diff("cyclesBusy", a.cyclesBusy, b.cyclesBusy);
  if (a.cyclesIdle != b.cyclesIdle)
    return diff("cyclesIdle", a.cyclesIdle, b.cyclesIdle);
  if (a.dynamicEnergyPj != b.dynamicEnergyPj)
    return diff("dynamicEnergyPj", a.dynamicEnergyPj, b.dynamicEnergyPj);
  if (a.enginesSpawned != b.enginesSpawned)
    return diff("enginesSpawned", a.enginesSpawned, b.enginesSpawned);
  if (a.faultsInjected != b.faultsInjected)
    return diff("faultsInjected", a.faultsInjected, b.faultsInjected);
  if (a.cache.accesses != b.cache.accesses)
    return diff("cache.accesses", a.cache.accesses, b.cache.accesses);
  if (a.cache.hits != b.cache.hits)
    return diff("cache.hits", a.cache.hits, b.cache.hits);
  if (a.cache.misses != b.cache.misses)
    return diff("cache.misses", a.cache.misses, b.cache.misses);
  if (a.cache.bankRejects != b.cache.bankRejects)
    return diff("cache.bankRejects", a.cache.bankRejects, b.cache.bankRejects);
  if (a.channelStats.size() != b.channelStats.size())
    return diff("channelStats.size", a.channelStats.size(),
                b.channelStats.size());
  for (std::size_t i = 0; i < a.channelStats.size(); ++i) {
    const auto& ca = a.channelStats[i];
    const auto& cb = b.channelStats[i];
    if (ca.pushes != cb.pushes || ca.pops != cb.pops ||
        ca.maxOccupancyFlits != cb.maxOccupancyFlits ||
        ca.parkFull != cb.parkFull || ca.parkEmpty != cb.parkEmpty ||
        ca.stallFullCycles != cb.stallFullCycles ||
        ca.stallEmptyCycles != cb.stallEmptyCycles)
      return "channelStats[" + std::to_string(i) + "] differs";
  }
  if (a.engines.size() != b.engines.size())
    return diff("engines.size", a.engines.size(), b.engines.size());
  for (std::size_t i = 0; i < a.engines.size(); ++i) {
    const auto& ea = a.engines[i];
    const auto& eb = b.engines[i];
    if (ea.taskIndex != eb.taskIndex || ea.stageIndex != eb.stageIndex ||
        ea.stats.opCounts != eb.stats.opCounts ||
        ea.stats.stallMem != eb.stats.stallMem ||
        ea.stats.stallFifo != eb.stats.stallFifo ||
        ea.stats.stallDep != eb.stats.stallDep ||
        ea.stats.cyclesActive != eb.stats.cyclesActive ||
        ea.stats.cyclesStalled != eb.stats.cyclesStalled ||
        ea.stats.dynamicEnergyPj != eb.stats.dynamicEnergyPj)
      return "engines[" + std::to_string(i) + "] stats differ";
    // The sixth differential check: the cycle-attribution ledger —
    // busy/idle counts, the FIFO full/empty split, and its per-channel
    // slices — must be bit-identical between the execution tiers too.
    if (ea.stats.cyclesBusy != eb.stats.cyclesBusy ||
        ea.stats.cyclesIdle != eb.stats.cyclesIdle ||
        ea.stats.stallFifoFull != eb.stats.stallFifoFull ||
        ea.stats.stallFifoEmpty != eb.stats.stallFifoEmpty ||
        ea.stats.stallFifoFullByChannel != eb.stats.stallFifoFullByChannel ||
        ea.stats.stallFifoEmptyByChannel != eb.stats.stallFifoEmptyByChannel)
      return "engines[" + std::to_string(i) + "] ledger differs";
  }
  return "";
}

std::string compareStoreOrders(const StoreCapture& golden,
                               const StoreCapture& dut) {
  if (golden.stores() == dut.stores())
    return "";
  // Localize: first address whose sequence disagrees.
  for (const auto& [addr, seq] : golden.stores()) {
    const auto it = dut.stores().find(addr);
    if (it == dut.stores().end())
      return "address " + std::to_string(addr) +
             " stored by golden but never by pipeline";
    if (it->second != seq)
      return "store sequence at address " + std::to_string(addr) +
             " diverges (golden " + std::to_string(seq.size()) +
             " stores, pipeline " + std::to_string(it->second.size()) + ")";
  }
  return "pipeline stores to an address the golden run never touches";
}

} // namespace

std::string OracleReport::summary() const {
  std::string text;
  for (const std::string& error : errors) {
    if (!text.empty())
      text += '\n';
    text += error;
  }
  return text;
}

OracleReport runOracle(const LoopSpec& spec, const OracleOptions& options) {
  OracleReport report;
  auto fail = [&](const std::string& label, const std::string& message) {
    report.ok = false;
    report.errors.push_back(label + ": " + message);
  };

  // Build once, then round-trip through the printer so every configuration
  // compiles a pristine copy (the transform mutates its module in place).
  GeneratedLoop generated = buildLoop(spec);
  const std::string moduleText = ir::printModule(*generated.module);

  // --- Golden: sequential reference interpretation. ------------------------
  FuzzWorkload goldenWork = buildWorkload(spec);
  StoreCapture goldenStores(*goldenWork.memory, generated.headerName);
  std::uint64_t goldenReturn = 0;
  {
    interp::Interpreter interp(*goldenWork.memory);
    interp.setObserver(&goldenStores);
    const interp::InterpResult result =
        interp.run(*generated.fn, goldenWork.args);
    goldenReturn = result.returnValue;
    report.goldenReturn = goldenReturn;
    report.goldenInstructions = result.instructionsExecuted;
  }
  // Header entries = iterations + 1; fewer than the bound means the
  // early-exit path actually fired.
  if (spec.tripCount > 0 &&
      goldenStores.headerEntries() <
          static_cast<std::uint64_t>(spec.tripCount) + 1)
    report.coverage.earlyExitTaken = true;

  // The optimizer must not change observable behavior: re-run the golden
  // on an optimized copy and insist on identical results.
  {
    ir::ParseResult parsed = ir::parseModule(moduleText);
    if (!parsed.ok()) {
      fail("roundtrip", "generated module failed to re-parse: " + parsed.error);
      return report;
    }
    opt::runScalarOptimizations(*parsed.module);
    const std::string verifyError = ir::verifyModule(*parsed.module);
    if (!verifyError.empty())
      fail("opt", "optimized module failed verification: " + verifyError);
    FuzzWorkload work = buildWorkload(spec);
    interp::Interpreter interp(*work.memory);
    const interp::InterpResult result =
        interp.run(*parsed.module->findFunction("kernel"), work.args);
    if (result.returnValue != goldenReturn)
      fail("opt", "optimized return value " +
                      std::to_string(result.returnValue) + " != golden " +
                      std::to_string(goldenReturn));
    const std::int64_t diff = firstMemoryDiff(*work.memory, *goldenWork.memory);
    if (diff >= 0)
      fail("opt", "optimized memory image diverges at byte " +
                      std::to_string(diff));
  }

  // --- Device under test: every (policy, worker-count) configuration. -----
  std::vector<pipeline::ReplicablePolicy> policies = {
      pipeline::ReplicablePolicy::Heuristic};
  if (options.runP2)
    policies.push_back(pipeline::ReplicablePolicy::ForceParallel);

  for (const pipeline::ReplicablePolicy policy : policies) {
    for (const int workers : options.workerCounts) {
      const std::string label =
          policyName(policy) + "/W" + std::to_string(workers);

      ir::ParseResult parsed = ir::parseModule(moduleText);
      if (!parsed.ok()) {
        fail(label, "module re-parse failed: " + parsed.error);
        continue;
      }
      ir::Module& module = *parsed.module;
      ir::Function* fn = module.findFunction("kernel");
      opt::runScalarOptimizations(module);

      // Analyses, exactly as the kernel driver runs them (minus profiling:
      // fuzz loops weight SCCs by op latency alone).
      analysis::DominatorTree dom(*fn);
      analysis::DominatorTree postDom(*fn, true);
      analysis::LoopInfo loops(*fn, dom);
      analysis::AliasAnalysis alias(*fn, module, loops);
      analysis::ControlDependence controlDeps(*fn, postDom);
      ir::BasicBlock* header = fn->findBlock(generated.headerName);
      if (header == nullptr) {
        fail(label, "loop header optimized away");
        continue;
      }
      analysis::Loop* loop = loops.loopWithHeader(header);
      if (loop == nullptr) {
        fail(label, "header no longer starts a loop");
        continue;
      }
      analysis::Pdg pdg(*fn, *loop, alias, controlDeps);
      analysis::SccGraph sccs(pdg, [](const ir::Instruction* inst) {
        const auto timing = hls::opTiming(inst->opcode(), inst->type());
        return static_cast<double>(1 + timing.latency);
      });

      for (const analysis::Scc& scc : sccs.sccs()) {
        switch (scc.cls) {
        case analysis::SccClass::Parallel:
          report.coverage.parallelScc = true;
          break;
        case analysis::SccClass::Replicable:
          report.coverage.replicableScc = true;
          if (!scc.lightweight())
            report.coverage.heavyReplicable = true;
          break;
        case analysis::SccClass::Sequential:
          report.coverage.sequentialScc = true;
          break;
        }
      }

      pipeline::PartitionOptions partitionOptions;
      partitionOptions.numWorkers = workers;
      partitionOptions.policy = policy;
      pipeline::PipelinePlan plan =
          pipeline::partitionLoop(sccs, *loop, partitionOptions);

      OracleConfigResult configResult;
      configResult.label = label;
      configResult.shape = plan.shapeString();
      configResult.pipelined = plan.pipelined();
      report.coverage.shapes.insert(configResult.shape);
      if (plan.parallelStageIndex() >= 0)
        report.coverage.parallelStage = true;

      if (options.checkInvariants) {
        InvariantReport planReport = checkPlan(plan);
        report.invariantChecks += planReport.checksRun;
        for (const std::string& violation : planReport.violations)
          fail(label, "plan invariant: " + violation);
      }

      pipeline::PipelineModule pipelineModule =
          pipeline::transformLoop(*fn, plan, /*loopId=*/0);
      {
        const std::string verifyError = ir::verifyModule(module);
        if (!verifyError.empty()) {
          fail(label, "transformed module failed verification: " + verifyError);
          continue;
        }
      }

      if (options.checkInvariants) {
        InvariantReport moduleReport = checkPipelineModule(pipelineModule);
        report.invariantChecks += moduleReport.checksRun;
        for (const std::string& violation : moduleReport.violations)
          fail(label, "pipeline invariant: " + violation);
        InvariantReport scheduleReport =
            checkSchedules(pipelineModule, options.schedule);
        report.invariantChecks += scheduleReport.checksRun;
        for (const std::string& violation : scheduleReport.violations)
          fail(label, "schedule invariant: " + violation);
      }

      // Leg 2: functional pipeline execution.
      {
        FuzzWorkload work = buildWorkload(spec);
        StoreCapture dutStores(*work.memory, generated.headerName);
        const pipeline::FunctionalRunResult result = runPipelineFunctional(
            pipelineModule, *work.memory, work.args,
            options.checkStoreOrder ? &dutStores : nullptr);
        if (result.wrapperReturn != goldenReturn)
          fail(label, "functional return value " +
                          std::to_string(result.wrapperReturn) +
                          " != golden " + std::to_string(goldenReturn));
        const std::int64_t diff =
            firstMemoryDiff(*work.memory, *goldenWork.memory);
        if (diff >= 0)
          fail(label, "functional memory image diverges at byte " +
                          std::to_string(diff));
        if (options.checkStoreOrder) {
          const std::string storeDiff =
              compareStoreOrders(goldenStores, dutStores);
          if (!storeDiff.empty())
            fail(label, "store order: " + storeDiff);
        }
      }

      // Leg 3: cycle-level simulation. Pinned to the interpreting tier
      // (unless --sim-backend picked Threaded alone) so leg 5 has an
      // explicit reference regardless of what Auto resolves to.
      if (options.runCycleSim) {
        FuzzWorkload work = buildWorkload(spec);
        sim::SystemConfig config;
        config.fifoDepth = options.fifoDepth;
        config.fifoWidthBits = options.fifoWidthBits;
        config.schedule = options.schedule;
        config.backend = options.simBackend == sim::SimBackend::Threaded
                             ? sim::SimBackend::Threaded
                             : sim::SimBackend::Interp;
        config.maxCycles =
            options.maxCycles != 0 ? options.maxCycles : sim::kDefaultMaxCycles;
        Expected<sim::SimResult> checked = sim::simulateSystemChecked(
            pipelineModule, *work.memory, work.args, config);
        if (!checked.ok()) {
          // A deadlock or cycle cap is an oracle failure, not a crash: the
          // Status message names the wedged channel, so the shrinker can
          // minimize the spec like any other disagreement.
          fail(label, "cycle-sim: " + checked.status().toString());
          continue;
        }
        const sim::SimResult& result = *checked;
        configResult.cycles = result.cycles;
        if (result.returnValue != goldenReturn)
          fail(label, "cycle-sim return value " +
                          std::to_string(result.returnValue) + " != golden " +
                          std::to_string(goldenReturn));
        const std::int64_t diff =
            firstMemoryDiff(*work.memory, *goldenWork.memory);
        if (diff >= 0)
          fail(label, "cycle-sim memory image diverges at byte " +
                          std::to_string(diff));
        if (options.checkInvariants) {
          InvariantReport simReport =
              checkSimResult(pipelineModule, result, config);
          report.invariantChecks += simReport.checksRun;
          for (const std::string& violation : simReport.violations)
            fail(label, "sim invariant: " + violation);
        }

        // Leg 4: fault-injected re-run — same pipeline, same workload,
        // perturbed timings. Functional results must be unaffected.
        if (options.faults.enabled()) {
          FuzzWorkload faultWork = buildWorkload(spec);
          sim::SystemConfig faultConfig = config;
          faultConfig.faults = options.faults;
          Expected<sim::SimResult> faulted = sim::simulateSystemChecked(
              pipelineModule, *faultWork.memory, faultWork.args, faultConfig);
          if (!faulted.ok()) {
            fail(label, "fault-sim: " + faulted.status().toString());
            continue;
          }
          if (faulted->returnValue != goldenReturn)
            fail(label, "fault-sim return value " +
                            std::to_string(faulted->returnValue) +
                            " != golden " + std::to_string(goldenReturn));
          const std::int64_t faultDiff =
              firstMemoryDiff(*faultWork.memory, *goldenWork.memory);
          if (faultDiff >= 0)
            fail(label, "fault-sim memory image diverges at byte " +
                            std::to_string(faultDiff));
          if (options.checkInvariants) {
            InvariantReport faultReport =
                checkSimResult(pipelineModule, *faulted, faultConfig);
            report.invariantChecks += faultReport.checksRun;
            for (const std::string& violation : faultReport.violations)
              fail(label, "fault-sim invariant: " + violation);
          }
        }

        // Leg 5: threaded-tier re-run — same pipeline, same workload, the
        // computed-goto execution tier. Must match golden AND be strictly
        // bit-identical to the interpreting leg above: any field of the
        // SimResult that differs (other than the backend tag) is a
        // divergence between the two dispatch cores.
        if (options.simBackend == sim::SimBackend::Auto) {
          FuzzWorkload threadedWork = buildWorkload(spec);
          sim::SystemConfig threadedConfig = config;
          threadedConfig.backend = sim::SimBackend::Threaded;
          Expected<sim::SimResult> threaded = sim::simulateSystemChecked(
              pipelineModule, *threadedWork.memory, threadedWork.args,
              threadedConfig);
          if (!threaded.ok()) {
            fail(label, "threaded-sim: " + threaded.status().toString());
            continue;
          }
          if (threaded->backend != sim::SimBackend::Threaded)
            fail(label, "threaded-sim ran under the wrong backend tag");
          if (threaded->returnValue != goldenReturn)
            fail(label, "threaded-sim return value " +
                            std::to_string(threaded->returnValue) +
                            " != golden " + std::to_string(goldenReturn));
          const std::int64_t threadedDiff =
              firstMemoryDiff(*threadedWork.memory, *goldenWork.memory);
          if (threadedDiff >= 0)
            fail(label, "threaded-sim memory image diverges at byte " +
                            std::to_string(threadedDiff));
          const std::string tierDiff = compareSimResults(result, *threaded);
          if (!tierDiff.empty())
            fail(label,
                 "threaded-sim not bit-identical to interp leg: " + tierDiff);
          else
            configResult.threadedChecked = true;
          if (options.checkInvariants) {
            InvariantReport threadedReport =
                checkSimResult(pipelineModule, *threaded, threadedConfig);
            report.invariantChecks += threadedReport.checksRun;
            for (const std::string& violation : threadedReport.violations)
              fail(label, "threaded-sim invariant: " + violation);
          }
        }
      }

      report.configs.push_back(configResult);
    }
  }
  return report;
}

} // namespace cgpa::fuzz
