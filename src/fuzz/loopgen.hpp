// Seeded random irregular-loop generator.
//
// Every generated loop is a valid ir:: module with the canonical shape the
// pipeline transform requires (one exiting branch in the header, one latch,
// one exit block) but an *irregular* body drawn from a feature menu:
// pointer chasing over an acyclic list, non-affine gathers, data-dependent
// early exits, scalar and floating reductions, sequential memory
// accumulation, and control-dependent stores. The menu is biased so that a
// batch of generated loops exercises all three SCC classes (parallel /
// replicable / sequential), lightweight and heavyweight replicables, and
// both placement policies P1/P2.
//
// Generation is two-phase: a seed deterministically expands to a LoopSpec
// (the explicit recipe), and the spec deterministically builds the module
// and its workload. The shrinker (fuzz/shrink.hpp) operates on specs, and
// the corpus format (fuzz/corpus.hpp) serializes them, so every failure is
// reproducible from a short line of text.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "interp/memory.hpp"
#include "ir/module.hpp"

namespace cgpa::fuzz {

/// One body feature. Each op owns its destination region (when it stores),
/// so features compose without incidental same-address conflicts; the
/// interesting dependences (reductions, gathers, early exits, the list
/// walk) are explicit in the recipe.
enum class BodyOp {
  StoreAffine,   ///< W[i] = mix(R[i], i): parallel-class store.
  GatherStore,   ///< W[i] = R2[R_idx[i] & mask] + i: non-affine read.
  Reduction,     ///< acc += R[i] (+i): lightweight replicable accumulator
                 ///< fed by a parallel load -> demoted to sequential.
  FloatReduction,///< facc += F[i] * c: float ordering must be preserved.
  LcgChain,      ///< x = x*a+c: lightweight replicable chain, stored.
  SeqMemAccum,   ///< C[0] += v: load-store cycle, sequential class.
  CondStore,    ///< if (v & 1) W[i] = v: control-dependent store (diamond).
  EarlyExit,     ///< exit &&= R_e[i] <= threshold: data-dependent exit.
  ListPayload,   ///< ListWalk only: node.pay = node.pay*3+1 (distinct nodes).
};

/// Number of BodyOp kinds (menu size for the RNG and the shrinker).
inline constexpr int kNumBodyOps = static_cast<int>(BodyOp::ListPayload) + 1;

const char* bodyOpName(BodyOp op);

enum class IterStyle {
  Counted, ///< for (i = 0; i < n; ++i) — plus optional early exit.
  ListWalk ///< for (node = head; node != null; node = node->next).
};

struct LoopSpec {
  std::uint64_t dataSeed = 1; ///< Workload contents (not structure).
  IterStyle style = IterStyle::Counted;
  int tripCount = 16;    ///< Counted bound / list length. May be 0.
  bool wideInduction = false; ///< i64 induction instead of i32.
  bool returnAcc = true; ///< Return the reduction value (liveout) vs 0.
  std::vector<BodyOp> ops;
  std::int64_t lcgMul = 1103515245;
  std::int64_t lcgAdd = 12345;
  std::int64_t exitThreshold = 0; ///< EarlyExit compare bound.
};

struct GenOptions {
  int maxBodyOps = 4;
  int maxTripCount = 48;
};

/// Expand `seed` into a spec (deterministic; independent of platform).
LoopSpec specFromSeed(std::uint64_t seed, const GenOptions& options = {});

struct GeneratedLoop {
  LoopSpec spec;
  std::unique_ptr<ir::Module> module;
  ir::Function* fn = nullptr;       ///< @kernel.
  std::string headerName = "header"; ///< Target loop header block.
};

/// Build the IR for `spec`. The result always passes ir::verifyFunction.
GeneratedLoop buildLoop(const LoopSpec& spec);

struct FuzzWorkload {
  std::unique_ptr<interp::Memory> memory;
  std::vector<std::uint64_t> args;
};

/// Deterministically lay out and fill the workload for `spec`. Calling
/// this repeatedly yields bit-identical memories, so golden and
/// device-under-test runs each get a fresh, equal image.
FuzzWorkload buildWorkload(const LoopSpec& spec);

} // namespace cgpa::fuzz
