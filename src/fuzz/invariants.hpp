// Invariant checkers: structural properties that must hold for *every*
// partitioned loop, independent of the workload's values. The differential
// oracle (fuzz/oracle.hpp) runs these alongside the output comparison, so a
// latent compiler bug surfaces even when it happens not to corrupt results
// for a particular input.
//
// Four layers, matching the compilation flow:
//   * checkPlan            — partition legality (paper Section 3.3): at most
//                            one parallel stage, no loop-carried dependence
//                            inside or between parallel-stage SCCs, only
//                            side-effect-free SCCs replicated, condensation
//                            edges flow forward through the pipeline.
//   * checkPipelineModule  — transform output structure: channel endpoint
//                            stages, lane counts, task/stage bijection.
//   * checkSchedules       — re-validates every task FSM against all SDC
//                            constraints incl. paper Eqs. 1-4 (delegates to
//                            hls::auditSchedule).
//   * checkSimResult       — conservation laws of a finished simulation:
//                            per-channel push/pop balance, occupancy within
//                            FIFO capacity, engine spawn counts, progress.
#pragma once

#include <string>
#include <vector>

#include "hls/schedule.hpp"
#include "pipeline/plan.hpp"
#include "pipeline/transform.hpp"
#include "sim/system.hpp"

namespace cgpa::fuzz {

struct InvariantReport {
  std::vector<std::string> violations;
  int checksRun = 0;

  bool ok() const { return violations.empty(); }
  void fail(std::string message) { violations.push_back(std::move(message)); }
  void merge(const InvariantReport& other) {
    violations.insert(violations.end(), other.violations.begin(),
                      other.violations.end());
    checksRun += other.checksRun;
  }
  /// All violations joined with newlines (empty when ok).
  std::string summary() const;
};

/// Partition legality for `plan` (which carries its SccGraph).
InvariantReport checkPlan(const pipeline::PipelinePlan& plan);

/// Structural well-formedness of a transformed pipeline.
InvariantReport checkPipelineModule(const pipeline::PipelineModule& pipeline);

/// Schedule every function of `pipeline` (wrapper + tasks) and audit each
/// one against the full SDC constraint set, including paper Eqs. 1-4.
InvariantReport checkSchedules(const pipeline::PipelineModule& pipeline,
                               const hls::ScheduleOptions& options);

/// Conservation and progress laws over a finished cycle-level run:
/// per-channel pops == pushes, channel totals match the global counters,
/// high-water occupancy within the configured FIFO capacity, engine count
/// matches the task list, and nonzero runs make progress.
InvariantReport checkSimResult(const pipeline::PipelineModule& pipeline,
                               const sim::SimResult& result,
                               const sim::SystemConfig& config);

} // namespace cgpa::fuzz
