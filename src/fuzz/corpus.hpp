// Regression corpus: shrunk failing loops as self-describing .cgir files.
//
// Each corpus file starts with a one-line spec comment
//   ; fuzz-spec v1 data=<seed> style=<counted|list> trip=<n> ...
// followed by the printed IR of the generated module. Replay rebuilds the
// loop and workload from the spec line (the authoritative part) and
// additionally parse+verifies the stored IR text, so a corpus file both
// documents the failing shape and guards the printer/parser round-trip.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fuzz/loopgen.hpp"

namespace cgpa::fuzz {

/// One-line, human-readable, fully reproducible encoding of `spec`.
std::string serializeSpec(const LoopSpec& spec);

/// Inverse of serializeSpec. Accepts the bare line or one prefixed with
/// "; ". Returns nullopt (with a message in `error`) on malformed input.
std::optional<LoopSpec> parseSpecLine(const std::string& line,
                                      std::string* error = nullptr);

/// Write `spec` (plus its generated IR) to `path`. Returns false on I/O
/// failure.
bool writeCorpusFile(const std::string& path, const LoopSpec& spec);

/// Read the spec line back from a corpus file written by writeCorpusFile.
std::optional<LoopSpec> readCorpusSpec(const std::string& path,
                                       std::string* error = nullptr);

/// All "*.cgir" files under `directory`, sorted by name (empty if the
/// directory does not exist).
std::vector<std::string> listCorpusFiles(const std::string& directory);

} // namespace cgpa::fuzz
