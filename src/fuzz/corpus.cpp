#include "fuzz/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "ir/printer.hpp"

namespace cgpa::fuzz {

namespace {

constexpr const char* kMagic = "fuzz-spec v1";

std::optional<BodyOp> opFromName(const std::string& name) {
  for (int k = 0; k < kNumBodyOps; ++k)
    if (name == bodyOpName(static_cast<BodyOp>(k)))
      return static_cast<BodyOp>(k);
  return std::nullopt;
}

void setError(std::string* error, const std::string& message) {
  if (error != nullptr)
    *error = message;
}

} // namespace

std::string serializeSpec(const LoopSpec& spec) {
  std::ostringstream out;
  out << kMagic << " data=" << spec.dataSeed << " style="
      << (spec.style == IterStyle::ListWalk ? "list" : "counted")
      << " trip=" << spec.tripCount << " wide=" << (spec.wideInduction ? 1 : 0)
      << " retacc=" << (spec.returnAcc ? 1 : 0) << " mul=" << spec.lcgMul
      << " add=" << spec.lcgAdd << " thresh=" << spec.exitThreshold
      << " ops=";
  for (std::size_t k = 0; k < spec.ops.size(); ++k) {
    if (k > 0)
      out << ',';
    out << bodyOpName(spec.ops[k]);
  }
  return out.str();
}

std::optional<LoopSpec> parseSpecLine(const std::string& line,
                                      std::string* error) {
  std::string text = line;
  // Strip comment lead-in and surrounding whitespace.
  std::size_t begin = text.find_first_not_of(" \t;");
  if (begin == std::string::npos) {
    setError(error, "empty spec line");
    return std::nullopt;
  }
  text = text.substr(begin);
  if (text.rfind(kMagic, 0) != 0) {
    setError(error, "missing '" + std::string(kMagic) + "' magic");
    return std::nullopt;
  }
  text = text.substr(std::string(kMagic).size());

  LoopSpec spec;
  spec.ops.clear();
  bool sawOps = false;
  std::istringstream fields(text);
  std::string field;
  while (fields >> field) {
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      setError(error, "malformed field '" + field + "'");
      return std::nullopt;
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    try {
      if (key == "data") {
        spec.dataSeed = std::stoull(value);
      } else if (key == "style") {
        if (value == "list")
          spec.style = IterStyle::ListWalk;
        else if (value == "counted")
          spec.style = IterStyle::Counted;
        else {
          setError(error, "unknown style '" + value + "'");
          return std::nullopt;
        }
      } else if (key == "trip") {
        spec.tripCount = std::stoi(value);
      } else if (key == "wide") {
        spec.wideInduction = value != "0";
      } else if (key == "retacc") {
        spec.returnAcc = value != "0";
      } else if (key == "mul") {
        spec.lcgMul = std::stoll(value);
      } else if (key == "add") {
        spec.lcgAdd = std::stoll(value);
      } else if (key == "thresh") {
        spec.exitThreshold = std::stoll(value);
      } else if (key == "ops") {
        sawOps = true;
        std::istringstream opsStream(value);
        std::string opName;
        while (std::getline(opsStream, opName, ',')) {
          const std::optional<BodyOp> op = opFromName(opName);
          if (!op.has_value()) {
            setError(error, "unknown op '" + opName + "'");
            return std::nullopt;
          }
          spec.ops.push_back(*op);
        }
      } else {
        setError(error, "unknown key '" + key + "'");
        return std::nullopt;
      }
    } catch (const std::exception&) {
      setError(error, "bad value in field '" + field + "'");
      return std::nullopt;
    }
  }
  if (!sawOps || spec.ops.empty()) {
    setError(error, "spec has no ops");
    return std::nullopt;
  }
  if (spec.tripCount < 0) {
    setError(error, "negative trip count");
    return std::nullopt;
  }
  return spec;
}

bool writeCorpusFile(const std::string& path, const LoopSpec& spec) {
  GeneratedLoop loop = buildLoop(spec);
  std::ofstream out(path);
  if (!out)
    return false;
  out << "; " << serializeSpec(spec) << "\n";
  out << ir::printModule(*loop.module);
  return static_cast<bool>(out);
}

std::optional<LoopSpec> readCorpusSpec(const std::string& path,
                                       std::string* error) {
  std::ifstream in(path);
  if (!in) {
    setError(error, "cannot open " + path);
    return std::nullopt;
  }
  std::string line;
  if (!std::getline(in, line)) {
    setError(error, "empty file " + path);
    return std::nullopt;
  }
  return parseSpecLine(line, error);
}

std::vector<std::string> listCorpusFiles(const std::string& directory) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".cgir")
      files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

} // namespace cgpa::fuzz
