// Failing-loop shrinker: greedy spec minimization.
//
// Given a LoopSpec for which some predicate fails (a divergence or an
// invariant violation), repeatedly try structurally smaller specs — fewer
// body ops, smaller trip counts, simpler iteration style, default flags —
// keeping each change only if the failure persists. Deterministic and
// bounded; the result is what gets written to tests/corpus/.
#pragma once

#include <functional>

#include "fuzz/loopgen.hpp"

namespace cgpa::fuzz {

/// Returns true when `spec` still exhibits the failure being minimized.
/// Must be deterministic. (Failures that abort the process cannot be
/// shrunk in-process; the fuzz tool reports the seed for offline replay.)
using FailurePredicate = std::function<bool(const LoopSpec&)>;

struct ShrinkResult {
  LoopSpec spec;      ///< Smallest failing spec found.
  int attempts = 0;   ///< Predicate evaluations spent.
  int reductions = 0; ///< Accepted simplification steps.
};

/// Minimize `failing` under `stillFails` (which must hold for `failing`
/// itself). Spends at most `maxAttempts` predicate calls.
ShrinkResult shrinkSpec(const LoopSpec& failing,
                        const FailurePredicate& stillFails,
                        int maxAttempts = 200);

} // namespace cgpa::fuzz
