#include "fuzz/loopgen.hpp"

#include <algorithm>

#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "support/diag.hpp"
#include "support/rng.hpp"

namespace cgpa::fuzz {

using ir::CmpPred;
using ir::IRBuilder;
using ir::Type;

namespace {

/// Array regions hold this many elements; indices stay in range because
/// trip counts are capped well below it and gathers mask with kArrMask.
constexpr int kArrElems = 64;
constexpr int kArrMask = kArrElems - 1;

/// List node layout: pay i64 @0, next ptr @8.
constexpr std::int64_t kNodePayOff = 0;
constexpr std::int64_t kNodeNextOff = 8;
constexpr std::int64_t kNodeSize = 16;

/// How to fill one array region's contents.
enum class Fill { SignedSmall, RawI32, Bounded8, F64, ZeroI32, ZeroI64, Cell };

struct RegionPlan {
  std::string name;
  std::int64_t elemSize = 4;
  int elems = kArrElems;
  bool readOnly = false;
  Fill fill = Fill::ZeroI32;
};

/// The array regions (and their argument order) implied by a spec. Shared
/// by buildLoop and buildWorkload so IR and memory image never drift.
std::vector<RegionPlan> regionPlans(const LoopSpec& spec) {
  std::vector<RegionPlan> plans;
  for (std::size_t k = 0; k < spec.ops.size(); ++k) {
    const std::string id = std::to_string(k);
    switch (spec.ops[k]) {
    case BodyOp::StoreAffine:
      plans.push_back({"sa_r" + id, 4, kArrElems, true, Fill::SignedSmall});
      plans.push_back({"sa_w" + id, 4, kArrElems, false, Fill::ZeroI32});
      break;
    case BodyOp::GatherStore:
      plans.push_back({"ga_i" + id, 4, kArrElems, true, Fill::RawI32});
      plans.push_back({"ga_r" + id, 4, kArrElems, true, Fill::SignedSmall});
      plans.push_back({"ga_w" + id, 4, kArrElems, false, Fill::ZeroI32});
      break;
    case BodyOp::Reduction:
      plans.push_back({"rd_r" + id, 4, kArrElems, true, Fill::SignedSmall});
      break;
    case BodyOp::FloatReduction:
      plans.push_back({"fr_r" + id, 8, kArrElems, true, Fill::F64});
      plans.push_back({"fr_o" + id, 8, 1, false, Fill::Cell});
      break;
    case BodyOp::LcgChain:
      plans.push_back({"lc_w" + id, 8, kArrElems, false, Fill::ZeroI64});
      break;
    case BodyOp::SeqMemAccum:
      plans.push_back({"sq_c" + id, 8, 1, false, Fill::Cell});
      break;
    case BodyOp::CondStore:
      plans.push_back({"cs_r" + id, 4, kArrElems, true, Fill::SignedSmall});
      plans.push_back({"cs_w" + id, 4, kArrElems, false, Fill::ZeroI32});
      break;
    case BodyOp::EarlyExit:
      plans.push_back({"ee_r" + id, 4, kArrElems, true, Fill::Bounded8});
      break;
    case BodyOp::ListPayload:
      break; // Lives in the list region.
    }
  }
  return plans;
}

bool hasOp(const LoopSpec& spec, BodyOp op) {
  return std::find(spec.ops.begin(), spec.ops.end(), op) != spec.ops.end();
}

} // namespace

const char* bodyOpName(BodyOp op) {
  switch (op) {
  case BodyOp::StoreAffine:
    return "store_affine";
  case BodyOp::GatherStore:
    return "gather_store";
  case BodyOp::Reduction:
    return "reduction";
  case BodyOp::FloatReduction:
    return "float_reduction";
  case BodyOp::LcgChain:
    return "lcg_chain";
  case BodyOp::SeqMemAccum:
    return "seq_mem_accum";
  case BodyOp::CondStore:
    return "cond_store";
  case BodyOp::EarlyExit:
    return "early_exit";
  case BodyOp::ListPayload:
    return "list_payload";
  }
  return "?";
}

LoopSpec specFromSeed(std::uint64_t seed, const GenOptions& options) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x7f4a7c15ULL);
  LoopSpec spec;
  spec.dataSeed = rng.next() | 1;
  spec.style = rng.nextBelow(4) == 0 ? IterStyle::ListWalk : IterStyle::Counted;
  // Bias toward interesting small trip counts but mostly mid-sized loops.
  switch (rng.nextBelow(8)) {
  case 0:
    spec.tripCount = static_cast<int>(rng.nextBelow(4)); // 0..3
    break;
  default:
    spec.tripCount =
        4 + static_cast<int>(rng.nextBelow(
                static_cast<std::uint64_t>(options.maxTripCount - 3)));
    break;
  }
  spec.wideInduction = rng.nextBelow(4) == 0;
  spec.returnAcc = rng.nextBelow(4) != 0;

  static constexpr std::int64_t kMuls[] = {1103515245, 6364136223846793005LL,
                                           2654435761LL, 25214903917LL};
  static constexpr std::int64_t kAdds[] = {12345, 1442695040888963407LL, 1013904223};
  spec.lcgMul = kMuls[rng.nextBelow(4)];
  spec.lcgAdd = kAdds[rng.nextBelow(3)];
  spec.exitThreshold = rng.nextInRange(2, 6);

  const int numOps =
      1 + static_cast<int>(rng.nextBelow(
              static_cast<std::uint64_t>(options.maxBodyOps)));
  for (int k = 0; k < numOps; ++k) {
    BodyOp op = static_cast<BodyOp>(rng.nextBelow(kNumBodyOps));
    if (op == BodyOp::ListPayload && spec.style != IterStyle::ListWalk)
      op = BodyOp::StoreAffine;
    // Single-instance features: one diamond and one exit condition keep
    // the canonical loop shape (one exiting branch, one latch).
    if ((op == BodyOp::CondStore || op == BodyOp::EarlyExit ||
         op == BodyOp::ListPayload) &&
        hasOp(spec, op))
      op = BodyOp::Reduction;
    spec.ops.push_back(op);
  }
  return spec;
}

GeneratedLoop buildLoop(const LoopSpec& spec) {
  GeneratedLoop out;
  out.spec = spec;
  out.module = std::make_unique<ir::Module>("fuzzloop");
  ir::Module& module = *out.module;

  const bool isList = spec.style == IterStyle::ListWalk;
  const Type iType = spec.wideInduction ? Type::I64 : Type::I32;

  // Regions and arguments. List head comes first (kernel convention), then
  // one pointer per array region, then the trip-count bound when counted.
  ir::Function* fn = module.addFunction("kernel", Type::I64);
  out.fn = fn;

  ir::Argument* headArg = nullptr;
  if (isList) {
    ir::Region* nodes =
        module.addRegion("nodes", ir::RegionShape::AcyclicList, kNodeSize);
    nodes->nextOffset = kNodeNextOff;
    nodes->readOnly = !hasOp(spec, BodyOp::ListPayload);
    headArg = fn->addArgument(Type::Ptr, "head");
    headArg->setRegionId(nodes->id);
  }
  std::vector<ir::Argument*> regionArgs;
  for (const RegionPlan& plan : regionPlans(spec)) {
    ir::Region* region =
        module.addRegion(plan.name, ir::RegionShape::Array, plan.elemSize);
    region->readOnly = plan.readOnly;
    ir::Argument* arg = fn->addArgument(Type::Ptr, plan.name);
    arg->setRegionId(region->id);
    regionArgs.push_back(arg);
  }
  ir::Argument* boundArg = nullptr;
  if (!isList)
    boundArg = fn->addArgument(iType, "n");

  auto* entry = fn->addBlock("entry");
  auto* header = fn->addBlock("header");
  auto* body = fn->addBlock("body");
  ir::BasicBlock* then = hasOp(spec, BodyOp::CondStore)
                             ? fn->addBlock("then")
                             : nullptr;
  auto* latch = fn->addBlock("latch");
  auto* exit = fn->addBlock("exit");

  IRBuilder b(&module);
  auto iconst = [&](std::int64_t value) {
    return module.constInt(iType, value);
  };

  b.setInsertPoint(entry);
  b.br(header);

  // --- Header: phis, exit condition, single exiting branch. --------------
  b.setInsertPoint(header);
  ir::Instruction* iPhi = b.phi(iType, "i");
  ir::Instruction* nodePhi = isList ? b.phi(Type::Ptr, "node") : nullptr;
  std::vector<ir::Instruction*> intAccPhis; // Reductions + LCG chains.
  ir::Instruction* faccPhi = nullptr;
  std::vector<ir::Value*> accInits;
  for (std::size_t k = 0; k < spec.ops.size(); ++k) {
    const std::string id = std::to_string(k);
    if (spec.ops[k] == BodyOp::Reduction) {
      intAccPhis.push_back(b.phi(Type::I64, "acc" + id));
      accInits.push_back(b.i64(0));
    } else if (spec.ops[k] == BodyOp::LcgChain) {
      intAccPhis.push_back(b.phi(Type::I64, "x" + id));
      accInits.push_back(b.i64(88172645463325252LL + static_cast<std::int64_t>(k)));
    } else if (spec.ops[k] == BodyOp::FloatReduction && faccPhi == nullptr) {
      faccPhi = b.phi(Type::F64, "facc");
    }
  }

  ir::Value* inBounds =
      isList ? b.icmp(CmpPred::NE, nodePhi, b.nullPtr(), "live")
             : b.icmp(CmpPred::SLT, iPhi, boundArg, "inb");
  ir::Value* liveCond = inBounds;
  {
    // Data-dependent early exit folds into the single exiting branch.
    int argIndex = 0;
    for (std::size_t k = 0; k < spec.ops.size(); ++k) {
      const int firstArg = argIndex;
      argIndex += static_cast<int>(regionPlans(LoopSpec{
          spec.dataSeed, spec.style, spec.tripCount, spec.wideInduction,
          spec.returnAcc, {spec.ops[k]}}).size());
      if (spec.ops[k] != BodyOp::EarlyExit)
        continue;
      ir::Value* base = regionArgs[static_cast<std::size_t>(firstArg)];
      ir::Value* addr = b.gep(base, iPhi, 4, 0, "ee.addr");
      ir::Value* ev = b.load(Type::I32, addr, "ee.v");
      ir::Value* ok = b.icmp(CmpPred::SLE, ev,
                             b.i32(spec.exitThreshold), "ee.ok");
      liveCond = b.bitAnd(liveCond, ok, "live.and");
    }
  }
  b.condBr(liveCond, body, exit);

  // --- Body: straight-line features, optional trailing diamond. -----------
  b.setInsertPoint(body);
  ir::Value* iNarrow =
      spec.wideInduction
          ? b.cast(ir::Opcode::Trunc, iPhi, Type::I32, "i.n")
          : static_cast<ir::Value*>(iPhi);
  ir::Value* iWide =
      spec.wideInduction
          ? static_cast<ir::Value*>(iPhi)
          : b.cast(ir::Opcode::SExt, iPhi, Type::I64, "i.w");

  std::vector<ir::Value*> intAccNext;
  ir::Value* faccNext = nullptr;
  ir::Value* condStoreValue = nullptr;
  ir::Value* condStoreAddr = nullptr;
  ir::Value* condStoreCond = nullptr;

  int argIndex = 0;
  std::size_t accIndex = 0;
  for (std::size_t k = 0; k < spec.ops.size(); ++k) {
    const std::string id = std::to_string(k);
    auto arg = [&](int offset) {
      return regionArgs[static_cast<std::size_t>(argIndex + offset)];
    };
    switch (spec.ops[k]) {
    case BodyOp::StoreAffine: {
      ir::Value* v =
          b.load(Type::I32, b.gep(arg(0), iPhi, 4, 0, "sa.a" + id), "sa.v" + id);
      ir::Value* m = b.mul(v, b.i32(static_cast<std::int32_t>(2654435761u)),
                           "sa.m" + id);
      ir::Value* w = b.bitXor(m, iNarrow, "sa.x" + id);
      b.store(w, b.gep(arg(1), iPhi, 4, 0, "sa.w" + id));
      argIndex += 2;
      break;
    }
    case BodyOp::GatherStore: {
      ir::Value* t =
          b.load(Type::I32, b.gep(arg(0), iPhi, 4, 0, "ga.ia" + id), "ga.t" + id);
      ir::Value* idx = b.bitAnd(t, b.i32(kArrMask), "ga.idx" + id);
      ir::Value* g =
          b.load(Type::I32, b.gep(arg(1), idx, 4, 0, "ga.ga" + id), "ga.g" + id);
      ir::Value* s = b.add(g, iNarrow, "ga.s" + id);
      b.store(s, b.gep(arg(2), iPhi, 4, 0, "ga.wa" + id));
      argIndex += 3;
      break;
    }
    case BodyOp::Reduction: {
      ir::Value* rv =
          b.load(Type::I32, b.gep(arg(0), iPhi, 4, 0, "rd.a" + id), "rd.v" + id);
      ir::Value* rvx = b.cast(ir::Opcode::SExt, rv, Type::I64, "rd.x" + id);
      intAccNext.push_back(b.add(intAccPhis[accIndex], rvx, "rd.acc" + id));
      ++accIndex;
      argIndex += 1;
      break;
    }
    case BodyOp::FloatReduction: {
      ir::Value* fv =
          b.load(Type::F64, b.gep(arg(0), iPhi, 8, 0, "fr.a" + id), "fr.v" + id);
      ir::Value* fm = b.fmul(fv, b.f64(0.5), "fr.m" + id);
      faccNext = b.fadd(faccPhi, fm, "fr.acc" + id);
      argIndex += 2; // Input array + output cell (cell used at exit).
      break;
    }
    case BodyOp::LcgChain: {
      ir::Value* x2 = b.add(b.mul(intAccPhis[accIndex], b.i64(spec.lcgMul),
                                  "lc.m" + id),
                            b.i64(spec.lcgAdd), "lc.x" + id);
      b.store(x2, b.gep(arg(0), iPhi, 8, 0, "lc.w" + id));
      intAccNext.push_back(x2);
      ++accIndex;
      argIndex += 1;
      break;
    }
    case BodyOp::SeqMemAccum: {
      ir::Value* addr = b.gep(arg(0), nullptr, 0, 0, "sq.a" + id);
      ir::Value* cv = b.load(Type::I64, addr, "sq.v" + id);
      ir::Value* inc = b.add(iWide, b.i64(1), "sq.i" + id);
      b.store(b.add(cv, inc, "sq.s" + id), addr);
      argIndex += 1;
      break;
    }
    case BodyOp::CondStore: {
      ir::Value* cv =
          b.load(Type::I32, b.gep(arg(0), iPhi, 4, 0, "cs.a" + id), "cs.v" + id);
      ir::Value* bit = b.bitAnd(cv, b.i32(1), "cs.b" + id);
      condStoreCond = b.icmp(CmpPred::NE, bit, b.i32(0), "cs.c" + id);
      condStoreValue = cv;
      condStoreAddr = b.gep(arg(1), iPhi, 4, 0, "cs.w" + id);
      argIndex += 2;
      break;
    }
    case BodyOp::EarlyExit:
      argIndex += 1; // Handled in the header.
      break;
    case BodyOp::ListPayload: {
      ir::Value* payAddr = b.gep(nodePhi, nullptr, 0, kNodePayOff, "lp.a" + id);
      ir::Value* pv = b.load(Type::I64, payAddr, "lp.v" + id);
      ir::Value* pv2 = b.add(b.mul(pv, b.i64(3), "lp.m" + id), b.i64(1),
                             "lp.s" + id);
      b.store(pv2, payAddr);
      break;
    }
    }
  }

  if (then != nullptr) {
    b.condBr(condStoreCond, then, latch);
    b.setInsertPoint(then);
    b.store(condStoreValue, condStoreAddr);
    b.br(latch);
  } else {
    b.br(latch);
  }

  // --- Latch: advance induction / list walk. ------------------------------
  b.setInsertPoint(latch);
  ir::Value* iNext = b.add(iPhi, iconst(1), "i.next");
  ir::Value* nodeNext = nullptr;
  if (isList) {
    ir::Value* nextAddr = b.gep(nodePhi, nullptr, 0, kNodeNextOff, "next.addr");
    nodeNext = b.load(Type::Ptr, nextAddr, "next");
  }
  b.br(header);

  // --- Exit: fold liveouts into the return value. -------------------------
  b.setInsertPoint(exit);
  if (faccPhi != nullptr) {
    // The float accumulator leaves the loop through memory, avoiding an
    // out-of-range fptosi in the return fold.
    int outArg = 0;
    for (std::size_t k = 0; k < spec.ops.size(); ++k) {
      const auto plans = regionPlans(LoopSpec{
          spec.dataSeed, spec.style, spec.tripCount, spec.wideInduction,
          spec.returnAcc, {spec.ops[k]}});
      if (spec.ops[k] == BodyOp::FloatReduction) {
        b.store(faccPhi, b.gep(regionArgs[static_cast<std::size_t>(outArg + 1)],
                               nullptr, 0, 0, "fr.out"));
        break;
      }
      outArg += static_cast<int>(plans.size());
    }
  }
  ir::Value* result = nullptr;
  if (spec.returnAcc && !intAccPhis.empty()) {
    result = intAccPhis.front();
    for (std::size_t a = 1; a < intAccPhis.size(); ++a)
      result = b.bitXor(result, intAccPhis[a], "ret.x" + std::to_string(a));
  } else {
    result = spec.wideInduction
                 ? static_cast<ir::Value*>(iPhi)
                 : b.cast(ir::Opcode::SExt, iPhi, Type::I64, "ret.i");
  }
  b.ret(result);

  // --- Phi wiring. ---------------------------------------------------------
  iPhi->addIncoming(iconst(0), entry);
  iPhi->addIncoming(iNext, latch);
  if (isList) {
    nodePhi->addIncoming(headArg, entry);
    nodePhi->addIncoming(nodeNext, latch);
  }
  for (std::size_t a = 0; a < intAccPhis.size(); ++a) {
    intAccPhis[a]->addIncoming(accInits[a], entry);
    intAccPhis[a]->addIncoming(intAccNext[a], latch);
  }
  if (faccPhi != nullptr) {
    faccPhi->addIncoming(b.f64(0.0), entry);
    faccPhi->addIncoming(faccNext, latch);
  }

  const std::string verifyError = ir::verifyFunction(*fn);
  CGPA_ASSERT(verifyError.empty(),
              "generated loop failed verification: " + verifyError);
  return out;
}

FuzzWorkload buildWorkload(const LoopSpec& spec) {
  FuzzWorkload workload;
  workload.memory = std::make_unique<interp::Memory>(1 << 20);
  interp::Memory& mem = *workload.memory;
  Rng rng(spec.dataSeed);

  if (spec.style == IterStyle::ListWalk) {
    // Lay out the list nodes contiguously, linked in address order.
    const int len = spec.tripCount;
    std::uint64_t head = 0;
    if (len > 0) {
      head = mem.allocate(static_cast<std::uint64_t>(len) * kNodeSize, 8);
      for (int r = 0; r < len; ++r) {
        const std::uint64_t addr =
            head + static_cast<std::uint64_t>(r) * kNodeSize;
        mem.writeI64(addr + kNodePayOff, rng.nextInRange(-50, 50));
        mem.writePtr(addr + kNodeNextOff,
                     r == len - 1 ? 0 : addr + kNodeSize);
      }
    }
    workload.args.push_back(head);
  }

  for (const RegionPlan& plan : regionPlans(spec)) {
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(plan.elems) *
        static_cast<std::uint64_t>(plan.elemSize);
    const std::uint64_t base = mem.allocate(bytes, 8);
    for (int e = 0; e < plan.elems; ++e) {
      const std::uint64_t addr =
          base + static_cast<std::uint64_t>(e) *
                     static_cast<std::uint64_t>(plan.elemSize);
      switch (plan.fill) {
      case Fill::SignedSmall:
        mem.writeI32(addr, static_cast<std::int32_t>(rng.nextInRange(-100, 100)));
        break;
      case Fill::RawI32:
        mem.writeI32(addr, static_cast<std::int32_t>(rng.next()));
        break;
      case Fill::Bounded8:
        mem.writeI32(addr, static_cast<std::int32_t>(rng.nextInRange(0, 7)));
        break;
      case Fill::F64:
        mem.writeF64(addr, rng.nextDouble() * 8.0 - 4.0);
        break;
      case Fill::ZeroI32:
      case Fill::ZeroI64:
      case Fill::Cell:
        break; // Memory starts zeroed.
      }
    }
    workload.args.push_back(base);
  }

  if (spec.style == IterStyle::Counted)
    workload.args.push_back(static_cast<std::uint64_t>(spec.tripCount));
  return workload;
}

} // namespace cgpa::fuzz
