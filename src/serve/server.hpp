// cgpad core: a batched multi-tenant compile+simulate service.
//
// Architecture: a fixed pool of worker threads drains one shared job
// queue. Each worker owns a JobExecutor (its private reusable
// SystemSimulator set); all workers share one PlanCache. Clients reach
// the pool three ways, all equivalent:
//
//   - in-process:  submit()/submitAsync() — used by tests and benches
//   - Unix socket: listenUnix(path) + one reader thread per connection
//   - TCP:         listenTcp(port) — loopback only, for host tooling
//
// Each connection thread parses newline-delimited cgpa.job.v1 frames and
// enqueues run jobs with a completion callback that writes the
// cgpa.jobresult.v1 response back under the connection's write mutex —
// responses may interleave across jobs of one connection (match them by
// `id`), but every frame is written atomically. Protocol errors
// (malformed JSON, oversized frame, schema violations) are answered
// inline with ok=false and never kill the connection.
//
// Shutdown semantics: requestShutdown() stops accepting new work
// (listeners close, enqueue rejects), but the queue *drains* — every
// accepted job still produces its response before the workers exit.
// wait() (or the destructor) joins everything.
//
// Server stats schema "cgpa.serverstats.v1":
//   schema         "cgpa.serverstats.v1"
//   workers        worker-thread count
//   uptimeSeconds  seconds since the server was constructed
//   jobs     {accepted, completed, failed, inflight, protocolErrors}
//            (inflight == accepted - completed - failed, stated so
//            monitors need no arithmetic)
//   cache    {capacity, entries, lookups, hits, misses, evictions}
//            (hits + misses == lookups, entries <= capacity)
//   latency  bucket boundaries + per-phase and per-class end-to-end
//            histograms with derived p50/p90/p99 (service_metrics.hpp);
//            on a drained snapshot the end-to-end kernel+spec counts
//            equal jobs.completed and the failed count equals jobs.failed
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/executor.hpp"
#include "serve/framing.hpp"
#include "serve/http_observer.hpp"
#include "serve/job.hpp"
#include "serve/job_trace.hpp"
#include "serve/plan_cache.hpp"
#include "serve/service_metrics.hpp"
#include "support/status.hpp"
#include "trace/json.hpp"

namespace cgpa::serve {

struct ServerOptions {
  int workers = 4;                  ///< Worker-pool size (min 1).
  std::size_t cacheEntries = 32;    ///< PlanCache capacity (0 = unbounded).
  std::size_t maxFrameBytes = kDefaultMaxFrameBytes;
  std::size_t slowJobRing = 16;     ///< Slow-job ring capacity (0 = off).
};

class Server {
public:
  explicit Server(ServerOptions options = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueue one run job; the future resolves to its cgpa.jobresult.v1
  /// document (ok=false responses included — the future never throws).
  /// After requestShutdown() the job is rejected with an ok=false
  /// response immediately.
  std::future<trace::JsonValue> submitAsync(JobRequest job);

  /// Blocking submitAsync.
  trace::JsonValue submit(JobRequest job);

  /// cgpa.serverstats.v1 snapshot.
  trace::JsonValue serverStatsJson() const;

  PlanCacheStats cacheStats() const { return cache_.stats(); }

  /// Start accepting connections on a Unix-domain socket at `path`
  /// (unlinks a stale socket first).
  Status listenUnix(const std::string& path);

  /// Start accepting loopback TCP connections on `port` (0 = ephemeral;
  /// the bound port is returned through `boundPort`).
  Status listenTcp(int port, int* boundPort = nullptr);

  /// Start the read-only HTTP observer (/metrics, /stats, /slowjobs,
  /// /healthz) on loopback TCP `port` (0 = ephemeral). The observer is
  /// deliberately not part of the job-listener set: requestShutdown()
  /// leaves it up so /healthz answers 503 while queued jobs drain, and
  /// wait() tears it down last.
  Status listenHttp(int port, int* boundPort = nullptr);

  /// Prometheus text exposition of the live metrics registry (what
  /// GET /metrics serves).
  std::string prometheusText() const;

  /// The slow-job ring as JSONL (what GET /slowjobs serves).
  std::string slowJobsJsonl() const { return metrics_.slowJobsJsonl(); }

  const ServiceMetrics& metrics() const { return metrics_; }

  /// Serve frames from `reader`, writing responses with `write` in input
  /// order (pending run jobs are flushed before op=stats/shutdown frames
  /// so the output is deterministic). Used by `cgpad --stdio` and
  /// `--in/--out`; returns after end of stream or an op=shutdown frame.
  Status serveOrdered(FrameReader& reader,
                      const std::function<Status(const std::string&)>& write);

  /// Stop accepting new work; queued jobs still complete.
  void requestShutdown();

  /// Block until requestShutdown() is called (here or by an op=shutdown
  /// frame on any connection). cgpad's socket mode parks on this.
  void waitForShutdownRequest();

  bool shuttingDown() const {
    return stopping_.load(std::memory_order_acquire);
  }

  /// Join workers, listeners and connection threads. Implies
  /// requestShutdown().
  void wait();

private:
  struct Item {
    JobRequest job;
    std::function<void(trace::JsonValue)> done;
    /// Set by enqueue(); the worker charges enqueue->dequeue to the
    /// ledger's queueWait phase.
    std::chrono::steady_clock::time_point enqueued{};
    /// Frame-decode time measured by the transport (0 for in-process
    /// submits, which start from a parsed JobRequest).
    std::uint64_t parseNanos = 0;
  };

  /// One client connection: the fd plus the write mutex that keeps
  /// response frames atomic. Held by shared_ptr so in-flight job
  /// callbacks keep the fd alive after the reader thread exits.
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();
    void send(const trace::JsonValue& response);

    int fd;
    std::mutex writeMutex;
  };

  void workerLoop();
  void acceptLoop(int listenFd);
  void connectionLoop(std::shared_ptr<Connection> conn);
  /// Join reader threads whose connectionLoop has returned and prune dead
  /// connection entries, so a long-running daemon serving many short-lived
  /// clients does not accumulate thread handles without bound.
  void reapFinishedConnections();
  /// Decode and dispatch one frame from a socket connection.
  void dispatchFrame(const std::string& line,
                     const std::shared_ptr<Connection>& conn);
  bool enqueue(Item item);
  /// submitAsync with the transport's measured frame-parse time.
  std::future<trace::JsonValue> submitParsed(JobRequest job,
                                             std::uint64_t parseNanos);
  ServiceMetrics::Gauges gauges() const;

  ServerOptions options_;
  PlanCache cache_;
  ServiceMetrics metrics_;
  const std::chrono::steady_clock::time_point startTime_ =
      std::chrono::steady_clock::now();
  HttpObserver observer_;

  std::mutex queueMutex_;
  std::condition_variable queueCv_;
  std::deque<Item> queue_;
  std::atomic<bool> stopping_{false};

  std::vector<std::thread> workers_;

  std::mutex netMutex_; ///< Guards listenFds_, connections_, threads.
  std::vector<int> listenFds_;
  std::vector<std::thread> acceptThreads_;
  /// Reader threads keyed by connection id; a thread announces itself in
  /// finishedConnections_ when its loop returns and the accept loop reaps
  /// it before the next accept (wait() joins whatever remains).
  std::vector<std::pair<std::uint64_t, std::thread>> connectionThreads_;
  std::vector<std::uint64_t> finishedConnections_;
  std::uint64_t nextConnectionId_ = 0;
  std::vector<std::weak_ptr<Connection>> connections_;
  std::vector<std::string> unixPaths_; ///< Unlinked on shutdown.
  bool joined_ = false;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> protocolErrors_{0};
};

} // namespace cgpa::serve
