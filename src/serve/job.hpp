// cgpad wire protocol: newline-delimited JSON frames carrying one
// `cgpa.job.v1` request per line and one `cgpa.jobresult.v1` response per
// job, built on the shared trace/json.hpp document model.
//
// Request schema v1 (defaults mirror the cgpac CLI):
//   schema     "cgpa.job.v1"
//   id         client-chosen correlation token (string or number; echoed
//              verbatim in the response)
//   op         "run" (default) | "stats" | "shutdown"
//   kernel     built-in kernel name               } exactly one of the
//   spec       fuzz-spec v1 line (tests/corpus)   } two for op=run
//   flow       "p1" | "p2" | "legup"      (default "p1")
//   workers    parallel-stage workers      (default 4)
//   fifoDepth  FIFO entries per lane       (default 16)
//   scale      workload scale factor       (default 1)
//   seed       workload seed               (default 42)
//   backend    "interp"|"threaded"|"auto"  (default "auto")
//   maxCycles  simulation cycle cap        (default 0 = sim default)
//   trace      request the per-job phase ledger (default false)
//
// Response schema v1:
//   schema     "cgpa.jobresult.v1"
//   id         echoed request id ("" when the frame was unparseable)
//   ok         true when the job produced a simulation result
//   — op=run, ok=true —
//   cacheHit   compiled plan came from the shared plan cache
//   irHash     FNV-1a-64 hex of the post-transform IR (the cache key)
//   remarks    {count, digest} of the compile-time cgpa.remarks.v1 doc
//   cycles     deterministic simulated cycle count
//   correct    result matched the reference model
//   stats      full cgpa.simstats.v1 document — bit-identical to what
//              `cgpac --stats-json` writes for the same request
//   trace      cgpa.jobtrace.v1 phase ledger (serve/job_trace.hpp) —
//              present only when the request set trace:true, so default
//              responses stay byte-identical to cgpac
//   — op=stats, ok=true —
//   serverStats  cgpa.serverstats.v1 snapshot (serve/server.hpp)
//   — ok=false —
//   error      cgpa.failure.v1 document (trace/failure_json.hpp)
//
// Protocol failures (malformed JSON, unknown op, oversized frame) come
// back as ok=false responses with ErrorCode::InvalidArgument/ParseError;
// the connection always survives them.
#pragma once

#include <cstdint>
#include <string>

#include "cgpa/driver.hpp"
#include "sim/system.hpp"
#include "support/status.hpp"
#include "trace/json.hpp"

namespace cgpa::serve {

inline constexpr const char* kJobSchema = "cgpa.job.v1";
inline constexpr const char* kJobResultSchema = "cgpa.jobresult.v1";
inline constexpr const char* kServerStatsSchema = "cgpa.serverstats.v1";

enum class JobOp : std::uint8_t { Run, Stats, Shutdown };

const char* toString(JobOp op);

struct JobRequest {
  trace::JsonValue id; ///< Echoed verbatim (string or number; may be null).
  JobOp op = JobOp::Run;
  std::string kernel; ///< Built-in kernel name; empty for spec jobs.
  std::string spec;   ///< fuzz-spec v1 line; empty for kernel jobs.
  std::string flow = "p1";
  int workers = 4;
  int fifoDepth = 16;
  int scale = 1;
  std::uint64_t seed = 42;
  sim::SimBackend backend = sim::SimBackend::Auto;
  std::uint64_t maxCycles = 0; ///< 0 = sim::kDefaultMaxCycles.
  bool trace = false; ///< Embed the cgpa.jobtrace.v1 ledger in the result.

  /// "kernel|em3d|p1|w4" / "spec|...|p2|w2": the compile identity — every
  /// field that changes the compiled pipeline (not the workload).
  std::string compileKey() const;
};

/// "p1"/"p2"/"legup" -> Flow; InvalidArgument otherwise.
Expected<driver::Flow> flowFromString(const std::string& name);

/// Validate + decode one parsed cgpa.job.v1 document.
Expected<JobRequest> jobFromJson(const trace::JsonValue& doc);

/// Parse + decode one frame line. ParseError for malformed JSON,
/// InvalidArgument for schema violations.
Expected<JobRequest> jobFromFrame(const std::string& line);

/// Encode `job` as a cgpa.job.v1 document (round-trips through
/// jobFromJson; used by cgpa_client and the golden-fixture tests).
trace::JsonValue jobToJson(const JobRequest& job);

/// Successful run response. `stats` is the full cgpa.simstats.v1 document
/// and is embedded by move.
trace::JsonValue jobResultOk(const trace::JsonValue& id, bool cacheHit,
                             const std::string& irHash,
                             std::size_t remarkCount,
                             const std::string& remarksDigest,
                             std::uint64_t cycles, bool correct,
                             trace::JsonValue stats);

/// ok=false response wrapping `status` as an embedded cgpa.failure.v1
/// document. Used for both job failures and protocol errors.
trace::JsonValue jobResultError(const trace::JsonValue& id,
                                const Status& status);

/// op=stats response embedding a cgpa.serverstats.v1 snapshot.
trace::JsonValue jobResultStats(const trace::JsonValue& id,
                                trace::JsonValue serverStats);

} // namespace cgpa::serve
