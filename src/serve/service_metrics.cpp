#include "serve/service_metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace cgpa::serve {

namespace {

/// Prometheus-style quantile estimate: walk the cumulative distribution
/// to the target rank and interpolate linearly inside the bucket. The
/// overflow bucket has no upper bound, so it reports its lower boundary
/// (the estimate is then a known underestimate, never an invention).
double quantile(const LatencyHistogram::Snapshot& snap, double q) {
  if (snap.count == 0)
    return 0.0;
  const double target = q * static_cast<double>(snap.count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
    const std::uint64_t inBucket = snap.buckets[i];
    if (inBucket == 0)
      continue;
    if (static_cast<double>(cumulative + inBucket) >= target) {
      const double lower =
          i == 0 ? 0.0
                 : static_cast<double>(LatencyHistogram::boundaryNanos(i - 1));
      if (i >= LatencyHistogram::kBoundaryCount)
        return lower;
      const double upper =
          static_cast<double>(LatencyHistogram::boundaryNanos(i));
      const double into =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(inBucket);
      return lower + (upper - lower) * std::clamp(into, 0.0, 1.0);
    }
    cumulative += inBucket;
  }
  return static_cast<double>(
      LatencyHistogram::boundaryNanos(LatencyHistogram::kBoundaryCount - 1));
}

trace::JsonValue histogramJson(const LatencyHistogram::Snapshot& snap) {
  trace::JsonValue doc = trace::JsonValue::object();
  doc.set("count", snap.count);
  doc.set("sumNanos", snap.sumNanos);
  doc.set("p50Nanos", snap.p50Nanos);
  doc.set("p90Nanos", snap.p90Nanos);
  doc.set("p99Nanos", snap.p99Nanos);
  trace::JsonValue buckets = trace::JsonValue::array();
  for (const std::uint64_t n : snap.buckets)
    buckets.push(n);
  doc.set("buckets", std::move(buckets));
  return doc;
}

void appendFmt(std::string& out, const char* fmt, ...) {
  char buffer[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, ap);
  va_end(ap);
  out += buffer;
}

/// One Prometheus histogram series: cumulative `_bucket` lines (with the
/// mandatory +Inf bucket), `_sum` in seconds, `_count`.
void appendHistogramSeries(std::string& out, const char* name,
                           const char* labelKey, const char* labelValue,
                           const LatencyHistogram::Snapshot& snap) {
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
    cumulative += snap.buckets[i];
    if (i < LatencyHistogram::kBoundaryCount)
      appendFmt(out, "%s_bucket{%s=\"%s\",le=\"%.10g\"} %llu\n", name,
                labelKey, labelValue,
                static_cast<double>(LatencyHistogram::boundaryNanos(i)) / 1e9,
                static_cast<unsigned long long>(cumulative));
    else
      appendFmt(out, "%s_bucket{%s=\"%s\",le=\"+Inf\"} %llu\n", name,
                labelKey, labelValue,
                static_cast<unsigned long long>(cumulative));
  }
  appendFmt(out, "%s_sum{%s=\"%s\"} %.10g\n", name, labelKey, labelValue,
            static_cast<double>(snap.sumNanos) / 1e9);
  appendFmt(out, "%s_count{%s=\"%s\"} %llu\n", name, labelKey, labelValue,
            static_cast<unsigned long long>(snap.count));
}

} // namespace

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot snap;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  snap.sumNanos = sumNanos_.load(std::memory_order_relaxed);
  snap.p50Nanos = quantile(snap, 0.50);
  snap.p90Nanos = quantile(snap, 0.90);
  snap.p99Nanos = quantile(snap, 0.99);
  return snap;
}

const char* toString(JobClass cls) {
  switch (cls) {
  case JobClass::Kernel:
    return "kernel";
  case JobClass::Spec:
    return "spec";
  case JobClass::Failed:
    return "failed";
  }
  return "?";
}

void ServiceMetrics::record(JobClass cls, const std::string& idJson,
                            const std::string& what, bool ok,
                            const JobTrace& trace) {
  // A zero phase means "did not happen" (compile on a cache hit, parse on
  // an in-process submit); recording it would report the distribution of
  // skipping the phase, not of doing it.
  for (std::size_t i = 0; i < kJobPhaseCount; ++i)
    if (trace.nanos[i] > 0)
      phases_[i].record(trace.nanos[i]);
  const std::uint64_t endToEnd = trace.endToEndNanos();
  endToEnd_[static_cast<std::size_t>(cls)].record(endToEnd);

  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(slowMutex_);
  if (slowCapacity_ == 0)
    return;
  if (slow_.size() >= slowCapacity_ &&
      endToEnd <= slow_.back().trace.endToEndNanos())
    return;
  SlowJobEntry entry;
  entry.id = idJson;
  entry.what = what;
  entry.ok = ok;
  entry.seq = seq;
  entry.trace = trace;
  const auto at = std::upper_bound(
      slow_.begin(), slow_.end(), endToEnd,
      [](std::uint64_t value, const SlowJobEntry& have) {
        return value > have.trace.endToEndNanos();
      });
  slow_.insert(at, std::move(entry));
  if (slow_.size() > slowCapacity_)
    slow_.pop_back();
}

trace::JsonValue ServiceMetrics::latencyJson() const {
  trace::JsonValue doc = trace::JsonValue::object();
  doc.set("unit", "nanos");
  trace::JsonValue boundaries = trace::JsonValue::array();
  for (std::size_t i = 0; i < LatencyHistogram::kBoundaryCount; ++i)
    boundaries.push(LatencyHistogram::boundaryNanos(i));
  doc.set("boundariesNanos", std::move(boundaries));
  trace::JsonValue phases = trace::JsonValue::object();
  for (std::size_t i = 0; i < kJobPhaseCount; ++i)
    phases.set(toString(static_cast<JobPhase>(i)),
               histogramJson(phases_[i].snapshot()));
  doc.set("phases", std::move(phases));
  trace::JsonValue classes = trace::JsonValue::object();
  for (std::size_t i = 0; i < kJobClassCount; ++i)
    classes.set(toString(static_cast<JobClass>(i)),
                histogramJson(endToEnd_[i].snapshot()));
  doc.set("endToEnd", std::move(classes));
  return doc;
}

std::string ServiceMetrics::slowJobsJsonl() const {
  std::vector<SlowJobEntry> entries;
  {
    std::lock_guard lock(slowMutex_);
    entries = slow_;
  }
  std::string out;
  for (const SlowJobEntry& entry : entries) {
    trace::JsonValue doc = jobTraceJson(entry.trace);
    std::string error;
    const auto id = trace::parseJson(entry.id, &error);
    doc.set("id", id ? *id : trace::JsonValue(entry.id));
    doc.set("what", entry.what);
    doc.set("ok", entry.ok);
    doc.set("seq", entry.seq);
    out += doc.dump(0);
    out += "\n";
  }
  return out;
}

std::string ServiceMetrics::prometheusText(const Gauges& gauges) const {
  std::string out;
  out.reserve(16384);
  out += "# HELP cgpad_uptime_seconds Seconds since the server started.\n"
         "# TYPE cgpad_uptime_seconds gauge\n";
  appendFmt(out, "cgpad_uptime_seconds %.10g\n", gauges.uptimeSeconds);
  out += "# HELP cgpad_workers Worker-pool size.\n"
         "# TYPE cgpad_workers gauge\n";
  appendFmt(out, "cgpad_workers %d\n", gauges.workers);
  out += "# HELP cgpad_jobs_accepted_total Run jobs accepted.\n"
         "# TYPE cgpad_jobs_accepted_total counter\n";
  appendFmt(out, "cgpad_jobs_accepted_total %llu\n",
            static_cast<unsigned long long>(gauges.accepted));
  out += "# HELP cgpad_jobs_completed_total Run jobs finished ok.\n"
         "# TYPE cgpad_jobs_completed_total counter\n";
  appendFmt(out, "cgpad_jobs_completed_total %llu\n",
            static_cast<unsigned long long>(gauges.completed));
  out += "# HELP cgpad_jobs_failed_total Run jobs finished ok=false.\n"
         "# TYPE cgpad_jobs_failed_total counter\n";
  appendFmt(out, "cgpad_jobs_failed_total %llu\n",
            static_cast<unsigned long long>(gauges.failed));
  out += "# HELP cgpad_protocol_errors_total Malformed or oversized "
         "frames.\n"
         "# TYPE cgpad_protocol_errors_total counter\n";
  appendFmt(out, "cgpad_protocol_errors_total %llu\n",
            static_cast<unsigned long long>(gauges.protocolErrors));
  out += "# HELP cgpad_jobs_inflight Accepted jobs not yet answered.\n"
         "# TYPE cgpad_jobs_inflight gauge\n";
  appendFmt(out, "cgpad_jobs_inflight %llu\n",
            static_cast<unsigned long long>(gauges.inflight));

  out += "# HELP cgpad_plan_cache_lookups_total Plan-cache lookups.\n"
         "# TYPE cgpad_plan_cache_lookups_total counter\n";
  appendFmt(out, "cgpad_plan_cache_lookups_total %llu\n",
            static_cast<unsigned long long>(gauges.cache.lookups));
  out += "# HELP cgpad_plan_cache_hits_total Plan-cache hits.\n"
         "# TYPE cgpad_plan_cache_hits_total counter\n";
  appendFmt(out, "cgpad_plan_cache_hits_total %llu\n",
            static_cast<unsigned long long>(gauges.cache.hits));
  out += "# HELP cgpad_plan_cache_misses_total Plan-cache misses.\n"
         "# TYPE cgpad_plan_cache_misses_total counter\n";
  appendFmt(out, "cgpad_plan_cache_misses_total %llu\n",
            static_cast<unsigned long long>(gauges.cache.misses));
  out += "# HELP cgpad_plan_cache_evictions_total Plan-cache evictions.\n"
         "# TYPE cgpad_plan_cache_evictions_total counter\n";
  appendFmt(out, "cgpad_plan_cache_evictions_total %llu\n",
            static_cast<unsigned long long>(gauges.cache.evictions));
  out += "# HELP cgpad_plan_cache_entries Live plan-cache entries.\n"
         "# TYPE cgpad_plan_cache_entries gauge\n";
  appendFmt(out, "cgpad_plan_cache_entries %llu\n",
            static_cast<unsigned long long>(gauges.cache.entries));

  out += "# HELP cgpad_job_phase_seconds Wall time per job phase "
         "(nonzero phases only).\n"
         "# TYPE cgpad_job_phase_seconds histogram\n";
  for (std::size_t i = 0; i < kJobPhaseCount; ++i)
    appendHistogramSeries(out, "cgpad_job_phase_seconds", "phase",
                          toString(static_cast<JobPhase>(i)),
                          phases_[i].snapshot());
  out += "# HELP cgpad_job_latency_seconds End-to-end job latency per "
         "class.\n"
         "# TYPE cgpad_job_latency_seconds histogram\n";
  for (std::size_t i = 0; i < kJobClassCount; ++i)
    appendHistogramSeries(out, "cgpad_job_latency_seconds", "class",
                          toString(static_cast<JobClass>(i)),
                          endToEnd_[i].snapshot());
  return out;
}

} // namespace cgpa::serve
