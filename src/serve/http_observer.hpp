// Minimal HTTP/1.0 observer endpoint for cgpad — hand-rolled like
// framing.cpp, no new dependencies. Serves four read-only routes:
//
//   GET /metrics   Prometheus text exposition of the metrics registry
//   GET /stats     the cgpa.serverstats.v1 snapshot as JSON
//   GET /slowjobs  the slow-job ring as JSONL (cgpa.jobtrace.v1 lines)
//   GET /healthz   200 "ok" while serving, 503 once shutdown begins
//
// Isolation contract: the observer owns its own listen socket and one
// accept thread that handles connections serially; every read carries a
// receive timeout and an 8 KiB request cap, so a wedged or confused
// client (e.g. one speaking the JSONL job protocol at this port — it
// gets a 400 and a close, the mirror of FrameReader's oversized-frame
// rejection) can delay at most the next observer request, never the job
// path. Responses always carry Content-Length and Connection: close.
//
// The Server wires the route callbacks and keeps the observer out of its
// job-listener set, so requestShutdown() leaves /healthz reachable (now
// answering 503) until wait() tears the observer down last.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "support/status.hpp"

namespace cgpa::serve {

class HttpObserver {
public:
  /// Route content callbacks; each returns the full response body.
  struct Endpoints {
    std::function<std::string()> metricsText;
    std::function<std::string()> statsJson;
    std::function<std::string()> slowJobsJsonl;
    std::function<bool()> healthy;
  };

  HttpObserver() = default;
  ~HttpObserver() { stop(); }
  HttpObserver(const HttpObserver&) = delete;
  HttpObserver& operator=(const HttpObserver&) = delete;

  /// Bind 127.0.0.1:`port` (0 = ephemeral, reported via `boundPort`) and
  /// start the accept thread. Call at most once.
  Status listen(int port, int* boundPort, Endpoints endpoints);

  /// Close the listener and join the accept thread. Idempotent; safe to
  /// call without a prior listen().
  void stop();

  int boundPort() const { return boundPort_; }

private:
  void acceptLoop();
  void handleConnection(int fd);

  Endpoints endpoints_;
  // Written by listen(), exchanged to -1 by stop() while the accept
  // thread reads it — atomic so the shutdown handoff is race-free.
  std::atomic<int> listenFd_{-1};
  int boundPort_ = -1;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
};

} // namespace cgpa::serve
