// Per-worker job execution: compile (through the shared PlanCache) and
// simulate (on a per-worker reusable SystemSimulator) one cgpa.job.v1
// request, producing the cgpa.jobresult.v1 response document.
//
// Thread model: one JobExecutor per worker thread. The PlanCache is the
// only shared state, and its entries are immutable after insertion; every
// mutable object a job touches (workload memory, SystemSimulator run
// state, remark collectors during compile) is created per job or owned by
// exactly one worker. Simulation is fully deterministic, so a job's
// response is byte-identical no matter which worker ran it, how warm the
// cache was (modulo the `cacheHit` flag), or what ran concurrently — the
// server-vs-CLI differential test pins this.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "serve/job.hpp"
#include "serve/job_trace.hpp"
#include "serve/plan_cache.hpp"
#include "sim/system.hpp"
#include "support/status.hpp"
#include "trace/json.hpp"

namespace cgpa::serve {

/// Compile the request's kernel or fuzz-spec into a frozen CompiledPlan
/// (does not consult any cache). Shared by the executor and by the
/// library-path leg of the determinism test.
Expected<std::shared_ptr<CompiledPlan>> compileJobPlan(const JobRequest& job);

/// One simulated run, straight through the library path (no cache, no
/// SystemSimulator reuse): the reference leg the service is differentially
/// tested against. On success returns the exact response document fields
/// as a jobResultOk with cacheHit=false.
Expected<trace::JsonValue> runJobDirect(const JobRequest& job);

class JobExecutor {
public:
  explicit JobExecutor(PlanCache* cache, std::size_t maxSimulators = 16)
      : cache_(cache), maxSimulators_(maxSimulators) {}

  /// Execute one run-op job; never throws, never aborts: every failure
  /// becomes an ok=false response. Returns (response, ok-flag).
  ///
  /// `ledger` (optional) accumulates the per-phase wall-time breakdown:
  /// cacheLookup/compile/planBuild/simulate/verify/serialize are timed
  /// here; the caller pre-credits queueWait and parse. When the job asked
  /// for tracing (job.trace) and a ledger is supplied, the response gains
  /// a cgpa.jobtrace.v1 `trace` object.
  trace::JsonValue run(const JobRequest& job, bool& ok,
                       JobTrace* ledger = nullptr);

private:
  struct SimEntry {
    std::shared_ptr<const CompiledPlan> plan; ///< Keeps the pipeline alive.
    std::unique_ptr<sim::SystemSimulator> simulator;
    std::uint64_t lastUsed = 0;
  };

  /// Reusable simulator for (plan, sim-config); builds and caches one per
  /// distinct key, evicting least-recently-used beyond maxSimulators_.
  sim::SystemSimulator& simulatorFor(
      const std::shared_ptr<const CompiledPlan>& plan,
      const sim::SystemConfig& config, const std::string& simKey);

  PlanCache* cache_;
  std::size_t maxSimulators_;
  std::map<std::string, SimEntry> simulators_;
  std::uint64_t tick_ = 0;
};

} // namespace cgpa::serve
