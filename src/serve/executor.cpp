#include "serve/executor.hpp"

#include "analysis/control_dep.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "analysis/pdg.hpp"
#include "analysis/scc.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/loopgen.hpp"
#include "hls/ops.hpp"
#include "interp/interpreter.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "opt/passes.hpp"
#include "trace/metrics.hpp"
#include "trace/remarks_json.hpp"
#include "trace/run_record.hpp"

namespace cgpa::serve {

namespace {

/// Spec-job compile: mirrors the fuzz oracle's device-under-test path
/// (optimize, analyze, partition, transform) with remarks recorded into
/// the plan — the serve-side equivalent of driver::compileKernelChecked.
Status compileSpecInto(const JobRequest& job, driver::Flow flow,
                       CompiledPlan& plan) {
  std::string error;
  const std::optional<fuzz::LoopSpec> spec =
      fuzz::parseSpecLine(job.spec, &error);
  if (!spec)
    return Status::error(ErrorCode::InvalidArgument,
                         "bad fuzz spec: " + error);
  fuzz::GeneratedLoop generated = fuzz::buildLoop(*spec);
  ir::Module& module = *generated.module;
  ir::Function* fn = generated.fn;
  opt::runScalarOptimizations(module);
  if (Status status = ir::verifyModuleStatus(module); !status.ok())
    return status;

  analysis::DominatorTree dom(*fn);
  analysis::DominatorTree postDom(*fn, true);
  analysis::LoopInfo loops(*fn, dom);
  analysis::AliasAnalysis alias(*fn, module, loops);
  analysis::ControlDependence controlDeps(*fn, postDom);
  ir::BasicBlock* header = fn->findBlock(generated.headerName);
  if (header == nullptr || loops.loopWithHeader(header) == nullptr)
    return Status::error(ErrorCode::InvalidArgument,
                         "spec loop header not found after optimization");
  analysis::Loop* loop = loops.loopWithHeader(header);
  analysis::Pdg pdg(*fn, *loop, alias, controlDeps, &plan.remarks);
  analysis::SccGraph sccs(
      pdg,
      [](const ir::Instruction* inst) {
        const auto timing = hls::opTiming(inst->opcode(), inst->type());
        return static_cast<double>(1 + timing.latency);
      },
      &plan.remarks);

  pipeline::PipelinePlan pipelinePlan;
  if (flow == driver::Flow::Legup) {
    pipelinePlan = pipeline::sequentialPlan(sccs, *loop, &plan.remarks);
  } else {
    pipeline::PartitionOptions popts;
    popts.numWorkers = job.workers;
    popts.remarks = &plan.remarks;
    if (flow == driver::Flow::CgpaP2)
      popts.policy = pipeline::ReplicablePolicy::ForceParallel;
    if (Status status = pipeline::checkPartitionOptions(popts); !status.ok())
      return status;
    pipelinePlan = pipeline::partitionLoop(sccs, *loop, popts);
  }
  plan.shape = pipelinePlan.shapeString();

  if (Status status = pipeline::checkTransformPreconditions(pipelinePlan);
      !status.ok())
    return status;
  plan.specPipeline =
      pipeline::transformLoop(*fn, pipelinePlan, /*loopId=*/0, &plan.remarks);
  if (Status status = ir::verifyModuleStatus(module); !status.ok())
    return Status::error(ErrorCode::VerifyError,
                         "transformed module failed verification: " +
                             status.message());
  plan.specModule = std::move(generated.module);
  return Status::success();
}

} // namespace

Expected<std::shared_ptr<CompiledPlan>> compileJobPlan(const JobRequest& job) {
  Expected<driver::Flow> flow = flowFromString(job.flow);
  if (!flow.ok())
    return flow.status();

  auto plan = std::make_shared<CompiledPlan>();
  std::string irText;
  if (!job.kernel.empty()) {
    const kernels::Kernel* kernel = kernels::kernelByName(job.kernel);
    if (kernel == nullptr)
      return Status::error(ErrorCode::InvalidArgument,
                           "unknown kernel '" + job.kernel + "'");
    driver::CompileOptions compile;
    compile.partition.numWorkers = job.workers;
    compile.remarks = &plan->remarks;
    Expected<driver::CompiledAccelerator> compiled =
        driver::compileKernelChecked(*kernel, *flow, compile);
    if (!compiled.ok())
      return compiled.status();
    plan->accel = std::make_unique<driver::CompiledAccelerator>(
        std::move(*compiled));
    plan->shape = plan->accel->shape;
    irText = ir::printModule(*plan->accel->module);
  } else {
    if (Status status = compileSpecInto(job, *flow, *plan); !status.ok())
      return status;
    irText = ir::printModule(*plan->specModule);
  }
  plan->irHash = trace::hashHex(trace::fnv1a64(irText));
  plan->remarksDigest = trace::hashHex(
      trace::fnv1a64(trace::remarksJson(plan->remarks).dump(0)));

  // Pre-finalize register slots while the plan is still private to this
  // thread. Slot numbering is otherwise lazy (SlotMap construction calls
  // Function::finalizeSlots()), which would mutate the shared IR the
  // first time each worker builds a simulator from a cached plan — a data
  // race. After this pass finalizeSlots() is write-free, so concurrent
  // simulator construction and runs only ever read the shared module.
  const ir::Module& module = !job.kernel.empty() ? *plan->accel->module
                                                 : *plan->specModule;
  for (const auto& fn : module.functions())
    fn->finalizeSlots();
  return plan;
}

namespace {

sim::SystemConfig systemConfigFor(const JobRequest& job) {
  sim::SystemConfig config;
  config.fifoDepth = job.fifoDepth;
  config.backend = job.backend;
  if (job.maxCycles != 0)
    config.maxCycles = job.maxCycles;
  return config;
}

/// Simulate `job` against `plan` and assemble the success response.
/// `reusable` (optional) supplies the worker's cached SystemSimulator;
/// null falls back to the one-shot library call — both paths are
/// bit-identical by construction (the simulator is stateless across runs).
/// `timer` must be open on JobPhase::PlanBuild when called; workload
/// construction is charged there, then the timer walks through
/// simulate -> verify -> serialize.
Expected<trace::JsonValue>
simulateJob(const JobRequest& job,
            const std::shared_ptr<const CompiledPlan>& plan, bool cacheHit,
            sim::SystemSimulator* reusable, PhaseTimer& timer) {
  const sim::SystemConfig config = systemConfigFor(job);
  const pipeline::PipelineModule& pipeline = plan->pipeline();

  interp::Memory* memory = nullptr;
  kernels::Workload kernelWork;
  fuzz::FuzzWorkload specWork;
  std::span<const std::uint64_t> args;
  const kernels::Kernel* kernel = nullptr;
  std::optional<fuzz::LoopSpec> spec;
  if (!job.kernel.empty()) {
    kernel = kernels::kernelByName(job.kernel);
    if (kernel == nullptr)
      return Status::error(ErrorCode::InvalidArgument,
                           "unknown kernel '" + job.kernel + "'");
    kernels::WorkloadConfig workloadConfig;
    workloadConfig.scale = job.scale;
    workloadConfig.seed = job.seed;
    kernelWork = kernel->buildWorkload(workloadConfig);
    memory = kernelWork.memory.get();
    args = kernelWork.args;
  } else {
    std::string error;
    spec = fuzz::parseSpecLine(job.spec, &error);
    if (!spec)
      return Status::error(ErrorCode::InvalidArgument,
                           "bad fuzz spec: " + error);
    specWork = fuzz::buildWorkload(*spec);
    memory = specWork.memory.get();
    args = specWork.args;
  }

  timer.begin(JobPhase::Simulate);
  Expected<sim::SimResult> simulated =
      reusable != nullptr
          ? reusable->runChecked(*memory, args)
          : sim::simulateSystemChecked(pipeline, *memory, args, config);
  if (!simulated.ok())
    return simulated.status();
  const sim::SimResult& result = *simulated;

  // Reference model on a bit-identical fresh workload: native golden for
  // kernels, sequential interpreter for generated specs.
  timer.begin(JobPhase::Verify);
  bool correct = false;
  if (kernel != nullptr) {
    kernels::WorkloadConfig workloadConfig;
    workloadConfig.scale = job.scale;
    workloadConfig.seed = job.seed;
    kernels::Workload refWork = kernel->buildWorkload(workloadConfig);
    const std::uint64_t refReturn =
        kernel->runReference(*refWork.memory, refWork.args);
    correct = result.returnValue == refReturn &&
              memory->raw() == refWork.memory->raw();
  } else {
    fuzz::GeneratedLoop golden = fuzz::buildLoop(*spec);
    fuzz::FuzzWorkload goldenWork = fuzz::buildWorkload(*spec);
    interp::Interpreter interp(*goldenWork.memory);
    const interp::InterpResult goldenResult =
        interp.run(*golden.fn, goldenWork.args);
    correct = result.returnValue == goldenResult.returnValue &&
              memory->raw() == goldenWork.memory->raw();
  }

  timer.begin(JobPhase::Serialize);
  trace::StatsDocInputs stats;
  stats.result = &result;
  stats.pipeline = &pipeline;
  stats.freqMHz = config.freqMHz;
  stats.kernel = !job.kernel.empty() ? job.kernel : job.spec;
  Expected<driver::Flow> flow = flowFromString(job.flow);
  stats.flow = driver::flowName(*flow);
  stats.correct = correct;
  stats.workers = job.workers;
  stats.fifoDepth = job.fifoDepth;
  stats.scale = job.scale;
  stats.seed = job.seed;
  return jobResultOk(job.id, cacheHit, plan->irHash, plan->remarks.size(),
                     plan->remarksDigest, result.cycles, correct,
                     trace::buildStatsDocument(stats));
}

} // namespace

Expected<trace::JsonValue> runJobDirect(const JobRequest& job) {
  // The direct path has no queue and no frame, so queueWait and parse
  // stay 0; the remaining phases are timed so a traced direct run and a
  // traced served run carry structurally identical ledgers.
  JobTrace ledger;
  PhaseTimer timer(job.trace ? &ledger : nullptr);
  timer.begin(JobPhase::Compile);
  Expected<std::shared_ptr<CompiledPlan>> plan = compileJobPlan(job);
  if (!plan.ok())
    return plan.status();
  timer.begin(JobPhase::PlanBuild);
  Expected<trace::JsonValue> response =
      simulateJob(job, *plan, /*cacheHit=*/false, /*reusable=*/nullptr, timer);
  timer.end();
  if (response.ok() && job.trace)
    response->set("trace", jobTraceJson(ledger));
  return response;
}

sim::SystemSimulator&
JobExecutor::simulatorFor(const std::shared_ptr<const CompiledPlan>& plan,
                          const sim::SystemConfig& config,
                          const std::string& simKey) {
  auto it = simulators_.find(simKey);
  if (it == simulators_.end()) {
    if (simulators_.size() >= maxSimulators_) {
      auto victim = simulators_.begin();
      for (auto cursor = simulators_.begin(); cursor != simulators_.end();
           ++cursor)
        if (cursor->second.lastUsed < victim->second.lastUsed)
          victim = cursor;
      simulators_.erase(victim);
    }
    SimEntry entry;
    entry.plan = plan;
    entry.simulator =
        std::make_unique<sim::SystemSimulator>(plan->pipeline(), config);
    it = simulators_.emplace(simKey, std::move(entry)).first;
  }
  it->second.lastUsed = ++tick_;
  return *it->second.simulator;
}

trace::JsonValue JobExecutor::run(const JobRequest& job, bool& ok,
                                  JobTrace* ledger) {
  PhaseTimer timer(ledger);
  // Close the ledger and (when asked) embed it — on error responses too:
  // a slow failure is exactly what the ledger is for.
  auto finish = [&](trace::JsonValue response) {
    timer.end();
    if (job.trace && ledger != nullptr)
      response.set("trace", jobTraceJson(*ledger));
    return response;
  };

  timer.begin(JobPhase::CacheLookup);
  std::shared_ptr<const CompiledPlan> plan =
      cache_ != nullptr ? cache_->lookup(job.compileKey()) : nullptr;
  const bool cacheHit = plan != nullptr;
  if (plan == nullptr) {
    timer.begin(JobPhase::Compile);
    Expected<std::shared_ptr<CompiledPlan>> compiled = compileJobPlan(job);
    if (!compiled.ok()) {
      ok = false;
      return finish(jobResultError(job.id, compiled.status()));
    }
    timer.begin(JobPhase::PlanBuild);
    plan = cache_ != nullptr ? cache_->insert(job.compileKey(), *compiled)
                             : std::shared_ptr<const CompiledPlan>(*compiled);
  } else {
    timer.begin(JobPhase::PlanBuild);
  }

  const sim::SystemConfig config = systemConfigFor(job);
  const std::string simKey =
      plan->irHash + "|f" + std::to_string(job.fifoDepth) + "|b" +
      sim::toString(config.backend) + "|m" + std::to_string(job.maxCycles);
  sim::SystemSimulator& simulator = simulatorFor(plan, config, simKey);

  Expected<trace::JsonValue> response =
      simulateJob(job, plan, cacheHit, &simulator, timer);
  if (!response.ok()) {
    ok = false;
    return finish(jobResultError(job.id, response.status()));
  }
  ok = true;
  return finish(std::move(*response));
}

} // namespace cgpa::serve
