#include "serve/http_observer.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace cgpa::serve {

namespace {

/// Whole-request cap: request line + headers. Anything larger is not a
/// plausible GET for our four routes — answer 431 and close, the HTTP
/// mirror of FrameReader's oversized-frame rejection.
constexpr std::size_t kMaxRequestBytes = 8192;

/// Per-recv timeout; bounds how long a silent client can hold the
/// single-threaded observer.
constexpr long kRecvTimeoutSeconds = 2;

void writeAll(int fd, const std::string& data) {
  std::size_t offset = 0;
  while (offset < data.size()) {
    const ssize_t n = ::send(fd, data.data() + offset, data.size() - offset,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR)
        continue;
      return; // Client hung up; nothing to salvage on a one-shot reply.
    }
    offset += static_cast<std::size_t>(n);
  }
}

void respond(int fd, const char* statusLine, const char* contentType,
             const std::string& body) {
  std::string head;
  head.reserve(128);
  head += "HTTP/1.0 ";
  head += statusLine;
  head += "\r\nContent-Type: ";
  head += contentType;
  head += "\r\nContent-Length: ";
  head += std::to_string(body.size());
  head += "\r\nConnection: close\r\n\r\n";
  writeAll(fd, head + body);
}

} // namespace

Status HttpObserver::listen(int port, int* boundPort, Endpoints endpoints) {
  endpoints_ = std::move(endpoints);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    return Status::error(ErrorCode::IoError,
                         std::string("socket(AF_INET): ") +
                             std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    return Status::error(ErrorCode::IoError,
                         "bind(127.0.0.1:" + std::to_string(port) +
                             "): " + std::strerror(err));
  }
  if (::listen(fd, 16) < 0) {
    const int err = errno;
    ::close(fd);
    return Status::error(ErrorCode::IoError,
                         "listen(:" + std::to_string(port) +
                             "): " + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int err = errno;
    ::close(fd);
    return Status::error(ErrorCode::IoError,
                         std::string("getsockname: ") + std::strerror(err));
  }
  boundPort_ = ntohs(bound.sin_port);
  if (boundPort != nullptr)
    *boundPort = boundPort_;
  listenFd_.store(fd, std::memory_order_release);
  thread_ = std::thread([this] { acceptLoop(); });
  return Status::success();
}

void HttpObserver::stop() {
  if (!stopping_.exchange(true)) {
    const int fd = listenFd_.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0) {
      // shutdown() unblocks a parked accept(); close() alone may not.
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
  }
  if (thread_.joinable())
    thread_.join();
}

void HttpObserver::acceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int listenFd = listenFd_.load(std::memory_order_acquire);
    if (listenFd < 0)
      return;
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR)
        continue;
      return; // Listener closed (stop()) or fatal error.
    }
    handleConnection(fd);
    // Lingering close: when input is still buffered unread (an oversized
    // request, a pipelined JSONL stream), an immediate close() turns
    // into a TCP RST that can destroy the response in flight. Shut the
    // write side and drain the leftovers first; SO_RCVTIMEO (set in
    // handleConnection) bounds the drain.
    ::shutdown(fd, SHUT_WR);
    char drain[1024];
    ssize_t n;
    while ((n = ::recv(fd, drain, sizeof(drain), 0)) > 0 ||
           (n < 0 && errno == EINTR)) {
    }
    ::close(fd);
  }
}

void HttpObserver::handleConnection(int fd) {
  timeval timeout{};
  timeout.tv_sec = kRecvTimeoutSeconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  // Read until the end of headers, the request cap, a timeout, or EOF.
  // The request line alone is enough to route, so a valid GET whose
  // client never finishes its headers still gets its answer.
  std::string request;
  bool haveLine = false;
  bool sawEof = false;
  bool timedOut = false;
  char buffer[1024];
  while (request.size() < kMaxRequestBytes) {
    if (request.find("\r\n\r\n") != std::string::npos ||
        request.find("\n\n") != std::string::npos)
      break;
    haveLine = request.find('\n') != std::string::npos;
    if (haveLine) {
      // A non-GET first line is not worth waiting out: answer now. This
      // is where a JSONL frame sent to the metrics port lands.
      const std::string firstLine = request.substr(0, request.find('\n'));
      if (firstLine.rfind("GET ", 0) != 0) {
        respond(fd, "400 Bad Request", "text/plain",
                "not an HTTP GET request (is this the cgpad job port you "
                "wanted?)\n");
        return;
      }
    }
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n == 0) {
      sawEof = true;
      break;
    }
    if (n < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        timedOut = true;
        break;
      }
      return; // Connection error; nobody left to answer.
    }
    request.append(buffer, static_cast<std::size_t>(n));
  }

  const std::size_t lineEnd = request.find('\n');
  if (lineEnd == std::string::npos) {
    if (request.size() >= kMaxRequestBytes) {
      respond(fd, "431 Request Header Fields Too Large", "text/plain",
              "request exceeds 8 KiB\n");
      return;
    }
    respond(fd, timedOut ? "408 Request Timeout" : "400 Bad Request",
            "text/plain", "incomplete request\n");
    return;
  }
  std::string line = request.substr(0, lineEnd);
  if (!line.empty() && line.back() == '\r')
    line.pop_back();
  if (line.rfind("GET ", 0) != 0) {
    respond(fd, "400 Bad Request", "text/plain",
            "not an HTTP GET request (is this the cgpad job port you "
            "wanted?)\n");
    return;
  }
  (void)sawEof;
  std::string path = line.substr(4);
  if (const std::size_t space = path.find(' '); space != std::string::npos)
    path.resize(space);
  if (const std::size_t query = path.find('?'); query != std::string::npos)
    path.resize(query);

  if (path == "/healthz") {
    const bool healthy = endpoints_.healthy && endpoints_.healthy();
    respond(fd, healthy ? "200 OK" : "503 Service Unavailable", "text/plain",
            healthy ? "ok\n" : "shutting down\n");
    return;
  }
  if (path == "/metrics") {
    respond(fd, "200 OK", "text/plain; version=0.0.4; charset=utf-8",
            endpoints_.metricsText ? endpoints_.metricsText() : "");
    return;
  }
  if (path == "/stats") {
    respond(fd, "200 OK", "application/json",
            endpoints_.statsJson ? endpoints_.statsJson() : "{}");
    return;
  }
  if (path == "/slowjobs") {
    respond(fd, "200 OK", "application/x-ndjson",
            endpoints_.slowJobsJsonl ? endpoints_.slowJobsJsonl() : "");
    return;
  }
  respond(fd, "404 Not Found", "text/plain",
          "unknown path (try /metrics, /stats, /slowjobs, /healthz)\n");
}

} // namespace cgpa::serve
