// Live service metrics for cgpad: lock-cheap counters, fixed-boundary
// log-scale latency histograms (per phase and end-to-end per job class),
// and a bounded slow-job ring keeping the phase ledgers of the worst
// offenders for post-hoc forensics.
//
// Recording is lock-free (relaxed atomics per histogram bucket) except
// for the slow-job ring, which takes one short mutex per completed job.
// Snapshots are taken with relaxed loads; a snapshot race can only skew
// transient totals, and every snapshot trace_check validates is quiescent
// (ordered-mode op=stats flushes pending jobs first, and final snapshots
// are written after the worker pool joins), so the cross-field equality
// "end-to-end histogram counts == jobs completed/failed" is exact there.
// Within one histogram, `count` is defined as the bucket sum, so
// Σ buckets == count holds in *every* snapshot by construction.
//
// Bucket boundaries are powers of two in microseconds: bucket i counts
// samples < 1µs·2^i for i in [0, 27), plus one overflow bucket — the
// same fixed geometry on every build so histograms diff across runs.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "serve/job_trace.hpp"
#include "serve/plan_cache.hpp"
#include "trace/json.hpp"

namespace cgpa::serve {

/// Fixed log-scale latency histogram over unsigned nanoseconds.
class LatencyHistogram {
public:
  static constexpr std::size_t kBoundaryCount = 27;
  static constexpr std::size_t kBucketCount = kBoundaryCount + 1;

  /// Upper bound (exclusive) of bucket `i`: 1µs · 2^i nanoseconds.
  static constexpr std::uint64_t boundaryNanos(std::size_t i) {
    return 1000ull << i;
  }

  void record(std::uint64_t nanos) {
    std::size_t bucket = 0;
    while (bucket < kBoundaryCount && nanos >= boundaryNanos(bucket))
      ++bucket;
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    sumNanos_.fetch_add(nanos, std::memory_order_relaxed);
  }

  struct Snapshot {
    std::array<std::uint64_t, kBucketCount> buckets{};
    std::uint64_t count = 0;    ///< Σ buckets, by construction.
    std::uint64_t sumNanos = 0;
    double p50Nanos = 0;
    double p90Nanos = 0;
    double p99Nanos = 0;
  };

  Snapshot snapshot() const;

private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> sumNanos_{0};
};

/// End-to-end latency class: successful kernel jobs, successful spec
/// jobs, and failed jobs of either kind (their latency profile — often
/// a fast parse/compile rejection — would poison the success classes).
enum class JobClass : std::uint8_t { Kernel, Spec, Failed };

inline constexpr std::size_t kJobClassCount = 3;

const char* toString(JobClass cls);

/// One slow-job ring entry: enough context to answer "why was that job
/// slow" without the original request.
struct SlowJobEntry {
  std::string id;   ///< Request id, JSON-encoded.
  std::string what; ///< Kernel name or spec line.
  bool ok = false;
  std::uint64_t seq = 0; ///< Completion sequence number.
  JobTrace trace;
};

class ServiceMetrics {
public:
  explicit ServiceMetrics(std::size_t slowRingCapacity = 16)
      : slowCapacity_(slowRingCapacity) {}

  /// Fold one completed job into the registry: every nonzero phase into
  /// its phase histogram, the ledger sum into the class histogram, and
  /// the ledger into the slow ring when it ranks.
  void record(JobClass cls, const std::string& idJson,
              const std::string& what, bool ok, const JobTrace& trace);

  /// The `latency` section of cgpa.serverstats.v1: bucket boundaries,
  /// per-phase histograms, and per-class end-to-end histograms, each
  /// with derived p50/p90/p99.
  trace::JsonValue latencyJson() const;

  /// The slow-job ring as JSONL, slowest first: one cgpa.jobtrace.v1
  /// document per line, extended with id/what/ok/seq context fields.
  std::string slowJobsJsonl() const;

  LatencyHistogram::Snapshot phaseSnapshot(JobPhase phase) const {
    return phases_[static_cast<std::size_t>(phase)].snapshot();
  }
  LatencyHistogram::Snapshot classSnapshot(JobClass cls) const {
    return endToEnd_[static_cast<std::size_t>(cls)].snapshot();
  }

  /// Server-level gauges folded into the Prometheus exposition alongside
  /// the histograms (the registry does not own these counters).
  struct Gauges {
    int workers = 0;
    std::uint64_t accepted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t protocolErrors = 0;
    std::uint64_t inflight = 0;
    double uptimeSeconds = 0;
    PlanCacheStats cache;
  };

  /// Prometheus text exposition (version 0.0.4) of gauges + histograms.
  std::string prometheusText(const Gauges& gauges) const;

private:
  std::array<LatencyHistogram, kJobPhaseCount> phases_;
  std::array<LatencyHistogram, kJobClassCount> endToEnd_;

  mutable std::mutex slowMutex_;
  std::vector<SlowJobEntry> slow_; ///< Sorted by endToEnd, slowest first.
  std::size_t slowCapacity_;
  std::atomic<std::uint64_t> seq_{0};
};

} // namespace cgpa::serve
