#include "serve/job_trace.hpp"

namespace cgpa::serve {

const char* toString(JobPhase phase) {
  switch (phase) {
  case JobPhase::QueueWait:
    return "queueWait";
  case JobPhase::Parse:
    return "parse";
  case JobPhase::CacheLookup:
    return "cacheLookup";
  case JobPhase::Compile:
    return "compile";
  case JobPhase::PlanBuild:
    return "planBuild";
  case JobPhase::Simulate:
    return "simulate";
  case JobPhase::Verify:
    return "verify";
  case JobPhase::Serialize:
    return "serialize";
  }
  return "?";
}

trace::JsonValue jobTraceJson(const JobTrace& trace) {
  trace::JsonValue doc = trace::JsonValue::object();
  doc.set("schema", kJobTraceSchema);
  doc.set("endToEndNanos", trace.endToEndNanos());
  trace::JsonValue phases = trace::JsonValue::object();
  for (std::size_t i = 0; i < kJobPhaseCount; ++i)
    phases.set(toString(static_cast<JobPhase>(i)), trace.nanos[i]);
  doc.set("phases", std::move(phases));
  return doc;
}

} // namespace cgpa::serve
