#include "serve/plan_cache.hpp"

#include <mutex>

namespace cgpa::serve {

std::shared_ptr<const CompiledPlan>
PlanCache::lookup(const std::string& compileKey) {
  {
    std::shared_lock lock(mutex_);
    const auto key = keyIndex_.find(compileKey);
    if (key != keyIndex_.end()) {
      const auto entry = byHash_.find(key->second);
      if (entry != byHash_.end()) {
        entry->second->lastUsed.store(
            tick_.fetch_add(1, std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return entry->second->plan;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

std::shared_ptr<const CompiledPlan>
PlanCache::insert(const std::string& compileKey,
                  std::shared_ptr<CompiledPlan> plan) {
  std::unique_lock lock(mutex_);
  const std::string irHash = plan->irHash;
  auto it = byHash_.find(irHash);
  if (it == byHash_.end()) {
    auto entry = std::make_shared<Entry>();
    entry->plan = std::move(plan);
    it = byHash_.emplace(irHash, std::move(entry)).first;
  }
  it->second->lastUsed.store(tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                             std::memory_order_relaxed);
  keyIndex_[compileKey] = irHash;

  while (capacity_ > 0 && byHash_.size() > capacity_) {
    auto victim = byHash_.end();
    std::uint64_t oldest = ~0ULL;
    for (auto cursor = byHash_.begin(); cursor != byHash_.end(); ++cursor) {
      if (cursor == it)
        continue; // Never evict the entry just touched.
      const std::uint64_t used =
          cursor->second->lastUsed.load(std::memory_order_relaxed);
      if (used < oldest) {
        oldest = used;
        victim = cursor;
      }
    }
    if (victim == byHash_.end())
      break;
    for (auto key = keyIndex_.begin(); key != keyIndex_.end();) {
      if (key->second == victim->first)
        key = keyIndex_.erase(key);
      else
        ++key;
    }
    byHash_.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second->plan;
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  // Derived, not a third counter: a lookup is counted exactly when its
  // hit-or-miss verdict lands, so hits + misses == lookups holds in every
  // snapshot even while other threads are mid-lookup (trace_check's
  // serverstats validator asserts this equality strictly).
  out.lookups = out.hits + out.misses;
  out.evictions = evictions_.load(std::memory_order_relaxed);
  {
    std::shared_lock lock(mutex_);
    out.entries = byHash_.size();
  }
  out.capacity = capacity_;
  return out;
}

} // namespace cgpa::serve
