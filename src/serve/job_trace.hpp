// Per-job phase ledger: attribute a job's wall time to exactly one phase
// at every instant, the same conservation discipline the cycle simulator
// applies to stall causes (Σ phases == end-to-end, no gaps, no overlap).
//
// Phase taxonomy (docs/service.md "Live telemetry" has the precise
// start/stop points):
//   queueWait    submitAsync/dispatch enqueue -> worker dequeue
//   parse        frame bytes -> validated JobRequest (0 for in-process
//                submits, which start from a JobRequest)
//   cacheLookup  PlanCache::lookup on the compile key
//   compile      compileJobPlan on a cache miss (0 on a hit)
//   planBuild    cache insert + simulator acquisition + workload build
//   simulate     the cycle-simulator run itself
//   verify       reference-model rerun + memory/return comparison
//   serialize    response-document assembly (stats doc + jobresult)
//
// Conservation holds by construction: PhaseTimer::begin() closes the
// current phase and opens the next at the same steady_clock sample, so
// the ledger tiles the measured interval exactly; externally measured
// intervals (queueWait, parse) are credited as whole nanosecond spans.
// Durations are unsigned nanoseconds and endToEndNanos() is defined as
// the exact sum, which trace_check --jobtrace re-checks on every emitted
// document.
//
// Emitted as schema "cgpa.jobtrace.v1":
//   schema        "cgpa.jobtrace.v1"
//   endToEndNanos Σ of the eight phase durations
//   phases        {queueWait, parse, cacheLookup, compile, planBuild,
//                  simulate, verify, serialize} — all keys always present
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "trace/json.hpp"

namespace cgpa::serve {

inline constexpr const char* kJobTraceSchema = "cgpa.jobtrace.v1";

enum class JobPhase : std::uint8_t {
  QueueWait,
  Parse,
  CacheLookup,
  Compile,
  PlanBuild,
  Simulate,
  Verify,
  Serialize,
};

inline constexpr std::size_t kJobPhaseCount = 8;

/// Wire/JSON name of a phase ("queueWait", "parse", ...).
const char* toString(JobPhase phase);

/// The closed ledger for one job: nanoseconds attributed per phase.
struct JobTrace {
  std::array<std::uint64_t, kJobPhaseCount> nanos{};

  std::uint64_t& operator[](JobPhase phase) {
    return nanos[static_cast<std::size_t>(phase)];
  }
  std::uint64_t operator[](JobPhase phase) const {
    return nanos[static_cast<std::size_t>(phase)];
  }

  /// Credit `duration` nanoseconds to `phase` (externally measured
  /// intervals: queue wait, frame parse).
  void add(JobPhase phase, std::uint64_t duration) {
    nanos[static_cast<std::size_t>(phase)] += duration;
  }

  /// End-to-end wall time == the exact phase sum (conservation is a
  /// definition here, and an invariant everywhere the doc is consumed).
  std::uint64_t endToEndNanos() const {
    std::uint64_t total = 0;
    for (const std::uint64_t n : nanos)
      total += n;
    return total;
  }
};

/// Scoped stopwatch over a JobTrace. begin(next) closes the open phase
/// and opens `next` at the same clock sample, so consecutive phases tile
/// time with no gap; end() closes the ledger. A null trace makes every
/// call a no-op, so instrumented code paths need no branches.
class PhaseTimer {
public:
  explicit PhaseTimer(JobTrace* trace) : trace_(trace) {}
  ~PhaseTimer() { end(); }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  void begin(JobPhase phase) {
    if (trace_ == nullptr)
      return;
    const auto now = std::chrono::steady_clock::now();
    closeAt(now);
    current_ = phase;
    open_ = true;
    mark_ = now;
  }

  void end() {
    if (trace_ == nullptr || !open_)
      return;
    closeAt(std::chrono::steady_clock::now());
    open_ = false;
  }

private:
  void closeAt(std::chrono::steady_clock::time_point now) {
    if (!open_)
      return;
    const auto delta =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - mark_)
            .count();
    trace_->add(current_, delta > 0 ? static_cast<std::uint64_t>(delta) : 0);
  }

  JobTrace* trace_;
  JobPhase current_ = JobPhase::QueueWait;
  bool open_ = false;
  std::chrono::steady_clock::time_point mark_{};
};

/// Encode a closed ledger as a cgpa.jobtrace.v1 document.
trace::JsonValue jobTraceJson(const JobTrace& trace);

} // namespace cgpa::serve
