#include "serve/framing.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace cgpa::serve {

bool FrameReader::refill() {
  if (eof_ || !status_.ok())
    return false;
  char chunk[4096];
  const long n = read_(chunk, sizeof chunk);
  if (n < 0) {
    status_ = Status::error(ErrorCode::IoError, "frame read failed");
    return false;
  }
  if (n == 0) {
    eof_ = true;
    return false;
  }
  buffer_.append(chunk, static_cast<std::size_t>(n));
  return true;
}

Expected<std::optional<std::string>> FrameReader::next() {
  for (;;) {
    const std::size_t newline = buffer_.find('\n', pos_);
    if (newline != std::string::npos) {
      std::string frame = buffer_.substr(pos_, newline - pos_);
      // Carriage returns are tolerated so `cgpa_client` scripts written on
      // any platform frame identically.
      if (!frame.empty() && frame.back() == '\r')
        frame.pop_back();
      buffer_.erase(0, newline + 1);
      pos_ = 0;
      if (frame.size() > maxFrameBytes_)
        return Status::error(ErrorCode::InvalidArgument,
                             "frame of " + std::to_string(frame.size()) +
                                 " bytes exceeds the " +
                                 std::to_string(maxFrameBytes_) +
                                 "-byte limit");
      return std::optional<std::string>(std::move(frame));
    }
    // No newline yet. If the partial line already blows the cap, drop what
    // we hold and keep skipping until its newline arrives — bounded memory
    // even against an endless line.
    if (buffer_.size() - pos_ > maxFrameBytes_) {
      buffer_.clear();
      pos_ = 0;
      // Skip to the next newline across refills.
      for (;;) {
        if (!refill()) {
          if (!status_.ok())
            return status_;
          return Status::error(ErrorCode::InvalidArgument,
                               "unterminated oversized frame at end of "
                               "stream");
        }
        const std::size_t skip = buffer_.find('\n');
        if (skip != std::string::npos) {
          buffer_.erase(0, skip + 1);
          break;
        }
        buffer_.clear();
      }
      return Status::error(ErrorCode::InvalidArgument,
                           "frame exceeds the " +
                               std::to_string(maxFrameBytes_) +
                               "-byte limit");
    }
    if (!refill()) {
      if (!status_.ok())
        return status_;
      if (buffer_.size() > pos_) {
        // Final unterminated line: accept it (files written without a
        // trailing newline are common).
        std::string frame = buffer_.substr(pos_);
        buffer_.clear();
        pos_ = 0;
        if (frame.size() > maxFrameBytes_)
          return Status::error(ErrorCode::InvalidArgument,
                               "frame exceeds the " +
                                   std::to_string(maxFrameBytes_) +
                                   "-byte limit");
        return std::optional<std::string>(std::move(frame));
      }
      return std::optional<std::string>();
    }
  }
}

FrameReader fdFrameReader(int fd, std::size_t maxFrameBytes) {
  return FrameReader(
      [fd](char* buffer, std::size_t capacity) -> long {
        for (;;) {
          const ssize_t n = ::read(fd, buffer, capacity);
          if (n >= 0)
            return static_cast<long>(n);
          if (errno == EINTR)
            continue;
          return -1;
        }
      },
      maxFrameBytes);
}

Status writeFrame(int fd, const std::string& line) {
  std::string out = line;
  out.push_back('\n');
  std::size_t written = 0;
  // MSG_NOSIGNAL: a client that hung up must surface as an EPIPE IoError,
  // not raise SIGPIPE and kill the whole multi-tenant daemon. Non-socket
  // fds (stdout, --out files) reject send() with ENOTSOCK; fall back to
  // plain write() for those.
  bool socket = true;
  while (written < out.size()) {
    ssize_t n;
    if (socket) {
      n = ::send(fd, out.data() + written, out.size() - written,
                 MSG_NOSIGNAL);
      if (n < 0 && errno == ENOTSOCK) {
        socket = false;
        continue;
      }
    } else {
      n = ::write(fd, out.data() + written, out.size() - written);
    }
    if (n < 0) {
      if (errno == EINTR)
        continue;
      return Status::error(ErrorCode::IoError,
                           std::string("frame write failed: ") +
                               std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::success();
}

} // namespace cgpa::serve
