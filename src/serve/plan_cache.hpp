// Shared compiled-plan cache for the cgpad worker pool.
//
// Entries are keyed by the FNV-1a-64 hash of the post-transform textual IR
// (the same fingerprint cgpa.run.v1 records as `irHash`): two requests
// that compile to the same pipeline share one entry regardless of how they
// were phrased. Because the content hash is only known *after* compiling,
// a secondary index maps the request's compile identity
// (JobRequest::compileKey()) to the irHash, so repeat requests skip the
// compile entirely.
//
// Concurrency model: read-mostly. Lookups take a shared lock; inserts and
// evictions take the exclusive lock. A compile happens *outside* any lock
// (it can take milliseconds), so two workers racing on the same cold key
// may both compile; the loser's insert finds the entry present and drops
// its copy — counted as a miss each, never a correctness hazard. Entries
// are immutable after insertion (enforced by const access), which is what
// makes sharing them across worker threads safe by construction: the
// embedded RemarkCollector is frozen at compile time and only ever read.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>

#include "cgpa/driver.hpp"
#include "pipeline/transform.hpp"
#include "trace/remarks.hpp"

namespace cgpa::serve {

/// One compiled pipeline, frozen: either a whole CompiledAccelerator
/// (kernel jobs) or a module + PipelineModule pair (fuzz-spec jobs), plus
/// the provenance the response reports. Shared read-only across workers.
struct CompiledPlan {
  /// Kernel-job path: owns module, analyses, pipeline, area.
  std::unique_ptr<driver::CompiledAccelerator> accel;
  /// Spec-job path: the transformed module and its pipeline.
  std::unique_ptr<ir::Module> specModule;
  pipeline::PipelineModule specPipeline;

  std::string irHash; ///< FNV-1a-64 hex of the post-transform IR.
  std::string shape;
  /// Compile-time decision provenance, frozen at insertion.
  trace::RemarkCollector remarks;
  std::string remarksDigest; ///< FNV-1a-64 hex of the remarks JSON.

  const pipeline::PipelineModule& pipeline() const {
    return accel != nullptr ? accel->pipelineModule : specPipeline;
  }
};

struct PlanCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;
  std::uint64_t capacity = 0;
};

class PlanCache {
public:
  explicit PlanCache(std::size_t capacity) : capacity_(capacity) {}

  /// Entry for `compileKey` if cached (counted as a hit), nullptr
  /// otherwise (counted as a miss).
  std::shared_ptr<const CompiledPlan> lookup(const std::string& compileKey);

  /// Insert a freshly compiled plan under (compileKey, plan->irHash) and
  /// return the canonical entry — the already-present one if another
  /// worker won the compile race. Evicts the least-recently-used entry
  /// beyond capacity.
  std::shared_ptr<const CompiledPlan>
  insert(const std::string& compileKey, std::shared_ptr<CompiledPlan> plan);

  PlanCacheStats stats() const;

private:
  struct Entry {
    std::shared_ptr<const CompiledPlan> plan;
    /// Last-touch tick for LRU eviction; relaxed atomic so shared-lock
    /// readers can bump it.
    std::atomic<std::uint64_t> lastUsed{0};
  };

  std::size_t capacity_;
  mutable std::shared_mutex mutex_;
  /// irHash -> entry (the content-keyed store).
  std::map<std::string, std::shared_ptr<Entry>> byHash_;
  /// compileKey -> irHash (the request-keyed index).
  std::map<std::string, std::string> keyIndex_;
  std::atomic<std::uint64_t> tick_{0};
  // No separate lookups counter: stats() derives lookups = hits + misses
  // so the serverstats ledger balances in every concurrent snapshot.
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

} // namespace cgpa::serve
