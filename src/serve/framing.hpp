// Newline-delimited JSON framing for the cgpad protocol.
//
// A frame is one complete JSON document on one line, terminated by '\n'.
// The reader enforces a maximum frame size: an oversized frame is consumed
// through its terminating newline and reported as InvalidArgument, so the
// connection survives and the next frame parses cleanly — the protocol's
// defense against a client streaming an unbounded line.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "support/status.hpp"

namespace cgpa::serve {

/// Default frame cap (1 MiB): generous for any cgpa.job.v1 request, small
/// enough that a rogue client cannot balloon the server.
inline constexpr std::size_t kDefaultMaxFrameBytes = 1u << 20;

/// Incremental line framer over an arbitrary byte source. The source
/// callback fills a buffer and returns the byte count (0 = end of stream,
/// negative = I/O error).
class FrameReader {
public:
  using ReadFn = std::function<long(char* buffer, std::size_t capacity)>;

  FrameReader(ReadFn read, std::size_t maxFrameBytes = kDefaultMaxFrameBytes)
      : read_(std::move(read)), maxFrameBytes_(maxFrameBytes) {}

  /// Next complete frame (without the newline). nullopt at end of stream.
  /// An oversized frame yields InvalidArgument after skipping through its
  /// newline; the reader stays usable. I/O failures yield IoError.
  Expected<std::optional<std::string>> next();

private:
  /// Refill buffer_; false at EOF or error (status_ set on error).
  bool refill();

  ReadFn read_;
  std::size_t maxFrameBytes_;
  std::string buffer_; ///< Bytes read but not yet returned.
  std::size_t pos_ = 0;
  bool eof_ = false;
  Status status_; ///< Sticky I/O error.
};

/// FrameReader over a file descriptor (socket or pipe).
FrameReader fdFrameReader(int fd,
                          std::size_t maxFrameBytes = kDefaultMaxFrameBytes);

/// Write one frame (document line + '\n') to `fd`, retrying on partial
/// writes. IoError on failure.
Status writeFrame(int fd, const std::string& line);

} // namespace cgpa::serve
