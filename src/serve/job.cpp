#include "serve/job.hpp"

#include <cmath>

#include "trace/failure_json.hpp"

namespace cgpa::serve {

const char* toString(JobOp op) {
  switch (op) {
  case JobOp::Run:
    return "run";
  case JobOp::Stats:
    return "stats";
  case JobOp::Shutdown:
    return "shutdown";
  }
  return "?";
}

std::string JobRequest::compileKey() const {
  const std::string what =
      kernel.empty() ? "spec|" + spec : "kernel|" + kernel;
  return what + "|" + flow + "|w" + std::to_string(workers);
}

Expected<driver::Flow> flowFromString(const std::string& name) {
  if (name == "p1")
    return driver::Flow::CgpaP1;
  if (name == "p2")
    return driver::Flow::CgpaP2;
  if (name == "legup")
    return driver::Flow::Legup;
  return Status::error(ErrorCode::InvalidArgument,
                       "unknown flow '" + name + "' (use p1|p2|legup)");
}

namespace {

Status invalid(const std::string& message) {
  return Status::error(ErrorCode::InvalidArgument, "cgpa.job.v1: " + message);
}

/// Positive int field with a default; InvalidArgument on wrong type or a
/// non-positive value.
Status takeInt(const trace::JsonValue& doc, const char* key, int& out) {
  const trace::JsonValue* v = doc.find(key);
  if (v == nullptr)
    return Status::success();
  if (!v->isNumber())
    return invalid(std::string(key) + " must be a number");
  const double d = v->asDouble();
  if (d < 1.0 || d != static_cast<double>(static_cast<int>(d)))
    return invalid(std::string(key) + " must be a positive integer");
  out = static_cast<int>(d);
  return Status::success();
}

Status takeU64(const trace::JsonValue& doc, const char* key,
               std::uint64_t& out) {
  const trace::JsonValue* v = doc.find(key);
  if (v == nullptr)
    return Status::success();
  if (!v->isNumber())
    return invalid(std::string(key) + " must be a number");
  // Unsigned-integer literals parse to an exact uint64; accept them
  // directly so the full [0, 2^64) range works (their double image may
  // round up to 2^64 and fail the checks below).
  if (v->kind() == trace::JsonValue::Kind::Uint) {
    out = v->asUint();
    return Status::success();
  }
  const double d = v->asDouble();
  if (d < 0.0)
    return invalid(std::string(key) + " must be nonnegative");
  // Float-form values (1.5, 1e20) must denote an exact uint64: integral
  // and below 2^64. Every integral double in that range converts exactly,
  // so nothing above 2^53 can slip through with silently lost precision.
  if (d != std::trunc(d))
    return invalid(std::string(key) + " must be a nonnegative integer");
  if (d >= 18446744073709551616.0)
    return invalid(std::string(key) +
                   " does not fit in an unsigned 64-bit integer");
  out = static_cast<std::uint64_t>(d);
  return Status::success();
}

} // namespace

Expected<JobRequest> jobFromJson(const trace::JsonValue& doc) {
  if (!doc.isObject())
    return invalid("frame is not a JSON object");
  const trace::JsonValue* schema = doc.find("schema");
  if (schema == nullptr || schema->asString() != kJobSchema)
    return invalid("schema must be '" + std::string(kJobSchema) + "'");

  JobRequest job;
  if (const trace::JsonValue* id = doc.find("id"); id != nullptr) {
    if (!id->isString() && !id->isNumber())
      return invalid("id must be a string or a number");
    job.id = *id;
  }
  if (const trace::JsonValue* op = doc.find("op"); op != nullptr) {
    const std::string name = op->asString();
    if (name == "run")
      job.op = JobOp::Run;
    else if (name == "stats")
      job.op = JobOp::Stats;
    else if (name == "shutdown")
      job.op = JobOp::Shutdown;
    else
      return invalid("unknown op '" + name + "' (use run|stats|shutdown)");
  }
  if (const trace::JsonValue* kernel = doc.find("kernel"); kernel != nullptr) {
    if (!kernel->isString())
      return invalid("kernel must be a string");
    job.kernel = kernel->asString();
  }
  if (const trace::JsonValue* spec = doc.find("spec"); spec != nullptr) {
    if (!spec->isString())
      return invalid("spec must be a string");
    job.spec = spec->asString();
  }
  if (const trace::JsonValue* flow = doc.find("flow"); flow != nullptr) {
    job.flow = flow->asString();
    if (Expected<driver::Flow> parsed = flowFromString(job.flow); !parsed.ok())
      return parsed.status();
  }
  if (Status s = takeInt(doc, "workers", job.workers); !s.ok())
    return s;
  if (Status s = takeInt(doc, "fifoDepth", job.fifoDepth); !s.ok())
    return s;
  if (Status s = takeInt(doc, "scale", job.scale); !s.ok())
    return s;
  if (Status s = takeU64(doc, "seed", job.seed); !s.ok())
    return s;
  if (Status s = takeU64(doc, "maxCycles", job.maxCycles); !s.ok())
    return s;
  if (const trace::JsonValue* backend = doc.find("backend");
      backend != nullptr) {
    if (!sim::parseSimBackend(backend->asString(), job.backend))
      return invalid("backend must be interp|threaded|auto, got '" +
                     backend->asString() + "'");
  }
  if (const trace::JsonValue* traceFlag = doc.find("trace");
      traceFlag != nullptr) {
    if (traceFlag->kind() != trace::JsonValue::Kind::Bool)
      return invalid("trace must be a boolean");
    job.trace = traceFlag->asBool();
  }

  if (job.op == JobOp::Run) {
    if (job.kernel.empty() == job.spec.empty())
      return invalid("op=run needs exactly one of 'kernel' or 'spec'");
  }
  return job;
}

Expected<JobRequest> jobFromFrame(const std::string& line) {
  std::string error;
  const auto doc = trace::parseJson(line, &error);
  if (!doc)
    return Status::error(ErrorCode::ParseError,
                         "cgpa.job.v1: frame does not parse: " + error);
  return jobFromJson(*doc);
}

trace::JsonValue jobToJson(const JobRequest& job) {
  trace::JsonValue doc = trace::JsonValue::object();
  doc.set("schema", kJobSchema);
  if (job.id.kind() != trace::JsonValue::Kind::Null)
    doc.set("id", job.id);
  doc.set("op", toString(job.op));
  if (job.op == JobOp::Run) {
    if (!job.kernel.empty())
      doc.set("kernel", job.kernel);
    else
      doc.set("spec", job.spec);
    doc.set("flow", job.flow);
    doc.set("workers", job.workers);
    doc.set("fifoDepth", job.fifoDepth);
    doc.set("scale", job.scale);
    doc.set("seed", job.seed);
    doc.set("backend", sim::toString(job.backend));
    if (job.maxCycles != 0)
      doc.set("maxCycles", job.maxCycles);
    if (job.trace)
      doc.set("trace", true);
  }
  return doc;
}

namespace {

trace::JsonValue resultShell(const trace::JsonValue& id, bool ok) {
  trace::JsonValue doc = trace::JsonValue::object();
  doc.set("schema", kJobResultSchema);
  // An unparseable frame has no id; echo "" so the key is always present
  // and clients can key responses uniformly.
  doc.set("id", id.kind() == trace::JsonValue::Kind::Null
                    ? trace::JsonValue("")
                    : id);
  doc.set("ok", ok);
  return doc;
}

} // namespace

trace::JsonValue jobResultOk(const trace::JsonValue& id, bool cacheHit,
                             const std::string& irHash,
                             std::size_t remarkCount,
                             const std::string& remarksDigest,
                             std::uint64_t cycles, bool correct,
                             trace::JsonValue stats) {
  trace::JsonValue doc = resultShell(id, true);
  doc.set("cacheHit", cacheHit);
  doc.set("irHash", irHash);
  trace::JsonValue remarks = trace::JsonValue::object();
  remarks.set("count", static_cast<std::uint64_t>(remarkCount));
  remarks.set("digest", remarksDigest);
  doc.set("remarks", std::move(remarks));
  doc.set("cycles", cycles);
  doc.set("correct", correct);
  doc.set("stats", std::move(stats));
  return doc;
}

trace::JsonValue jobResultError(const trace::JsonValue& id,
                                const Status& status) {
  trace::JsonValue doc = resultShell(id, false);
  doc.set("error", trace::failureJson(status));
  return doc;
}

trace::JsonValue jobResultStats(const trace::JsonValue& id,
                                trace::JsonValue serverStats) {
  trace::JsonValue doc = resultShell(id, true);
  doc.set("serverStats", std::move(serverStats));
  return doc;
}

} // namespace cgpa::serve
