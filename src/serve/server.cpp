#include "serve/server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace cgpa::serve {

namespace {

/// Minimal ok=true acknowledgement (op=shutdown).
trace::JsonValue ackResult(const trace::JsonValue& id) {
  trace::JsonValue doc = trace::JsonValue::object();
  doc.set("schema", kJobResultSchema);
  doc.set("id", id.kind() == trace::JsonValue::Kind::Null
                    ? trace::JsonValue("")
                    : id);
  doc.set("ok", true);
  return doc;
}

Status closeOnError(int fd, const std::string& message) {
  const int err = errno;
  if (fd >= 0)
    ::close(fd);
  return Status::error(ErrorCode::IoError,
                       message + ": " + std::strerror(err));
}

} // namespace

Server::Connection::~Connection() {
  if (fd >= 0)
    ::close(fd);
}

void Server::Connection::send(const trace::JsonValue& response) {
  std::lock_guard lock(writeMutex);
  // A failed write (client hung up mid-response) is not recoverable at
  // this layer; the reader thread will observe the closed socket.
  (void)writeFrame(fd, response.dump(0));
}

Server::Server(ServerOptions options)
    : options_(options), cache_(options.cacheEntries),
      metrics_(options.slowJobRing) {
  if (options_.workers < 1)
    options_.workers = 1;
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w)
    workers_.emplace_back([this] { workerLoop(); });
}

Server::~Server() { wait(); }

bool Server::enqueue(Item item) {
  item.enqueued = std::chrono::steady_clock::now();
  {
    std::lock_guard lock(queueMutex_);
    if (stopping_.load(std::memory_order_acquire))
      return false;
    queue_.push_back(std::move(item));
  }
  queueCv_.notify_one();
  return true;
}

void Server::workerLoop() {
  JobExecutor executor(&cache_);
  while (true) {
    Item item;
    {
      std::unique_lock lock(queueMutex_);
      queueCv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !queue_.empty();
      });
      if (queue_.empty())
        return; // stopping_ and drained: exit.
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    JobTrace ledger;
    const auto dequeued = std::chrono::steady_clock::now();
    const auto waited =
        std::chrono::duration_cast<std::chrono::nanoseconds>(dequeued -
                                                             item.enqueued)
            .count();
    ledger.add(JobPhase::QueueWait,
               waited > 0 ? static_cast<std::uint64_t>(waited) : 0);
    ledger.add(JobPhase::Parse, item.parseNanos);
    bool ok = false;
    trace::JsonValue response = executor.run(item.job, ok, &ledger);
    // Record metrics before the counter bump and before done(): once a
    // caller observes the response (ordered-mode flush, a resolved
    // future), this job is fully present in every histogram, so drained
    // snapshots satisfy the histogram-count == completed equality.
    const JobClass cls = !ok ? JobClass::Failed
                        : item.job.kernel.empty() ? JobClass::Spec
                                                  : JobClass::Kernel;
    metrics_.record(cls, item.job.id.dump(0),
                    !item.job.kernel.empty() ? item.job.kernel
                                             : item.job.spec,
                    ok, ledger);
    (ok ? completed_ : failed_).fetch_add(1, std::memory_order_relaxed);
    item.done(std::move(response));
  }
}

std::future<trace::JsonValue> Server::submitAsync(JobRequest job) {
  return submitParsed(std::move(job), /*parseNanos=*/0);
}

std::future<trace::JsonValue> Server::submitParsed(JobRequest job,
                                                   std::uint64_t parseNanos) {
  auto promise = std::make_shared<std::promise<trace::JsonValue>>();
  std::future<trace::JsonValue> future = promise->get_future();
  const trace::JsonValue id = job.id;
  accepted_.fetch_add(1, std::memory_order_relaxed);
  Item item;
  item.job = std::move(job);
  item.parseNanos = parseNanos;
  item.done = [promise](trace::JsonValue response) {
    promise->set_value(std::move(response));
  };
  if (!enqueue(std::move(item))) {
    accepted_.fetch_sub(1, std::memory_order_relaxed);
    promise->set_value(jobResultError(
        id, Status::error(ErrorCode::InvalidArgument,
                          "server is shutting down; job rejected")));
  }
  return future;
}

trace::JsonValue Server::submit(JobRequest job) {
  return submitAsync(std::move(job)).get();
}

ServiceMetrics::Gauges Server::gauges() const {
  ServiceMetrics::Gauges gauges;
  gauges.workers = options_.workers;
  gauges.accepted = accepted_.load(std::memory_order_relaxed);
  gauges.completed = completed_.load(std::memory_order_relaxed);
  gauges.failed = failed_.load(std::memory_order_relaxed);
  gauges.protocolErrors = protocolErrors_.load(std::memory_order_relaxed);
  // One set of loads feeds both the counters and the derived gauge, so
  // inflight == accepted - completed - failed holds inside every
  // snapshot (the loads themselves may race; saturate just in case).
  const std::uint64_t settled = gauges.completed + gauges.failed;
  gauges.inflight = gauges.accepted > settled ? gauges.accepted - settled : 0;
  gauges.uptimeSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    startTime_)
          .count();
  gauges.cache = cache_.stats();
  return gauges;
}

trace::JsonValue Server::serverStatsJson() const {
  const ServiceMetrics::Gauges snapshot = gauges();
  trace::JsonValue doc = trace::JsonValue::object();
  doc.set("schema", kServerStatsSchema);
  doc.set("workers", snapshot.workers);
  doc.set("uptimeSeconds", snapshot.uptimeSeconds);
  trace::JsonValue jobs = trace::JsonValue::object();
  jobs.set("accepted", snapshot.accepted);
  jobs.set("completed", snapshot.completed);
  jobs.set("failed", snapshot.failed);
  jobs.set("inflight", snapshot.inflight);
  jobs.set("protocolErrors", snapshot.protocolErrors);
  doc.set("jobs", std::move(jobs));
  const PlanCacheStats stats = snapshot.cache;
  trace::JsonValue cache = trace::JsonValue::object();
  cache.set("capacity", stats.capacity);
  cache.set("entries", stats.entries);
  cache.set("lookups", stats.lookups);
  cache.set("hits", stats.hits);
  cache.set("misses", stats.misses);
  cache.set("evictions", stats.evictions);
  doc.set("cache", std::move(cache));
  doc.set("latency", metrics_.latencyJson());
  return doc;
}

std::string Server::prometheusText() const {
  return metrics_.prometheusText(gauges());
}

void Server::dispatchFrame(const std::string& line,
                           const std::shared_ptr<Connection>& conn) {
  const auto parseStart = std::chrono::steady_clock::now();
  Expected<JobRequest> job = jobFromFrame(line);
  const auto parsed =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - parseStart)
          .count();
  const std::uint64_t parseNanos =
      parsed > 0 ? static_cast<std::uint64_t>(parsed) : 0;
  if (!job.ok()) {
    protocolErrors_.fetch_add(1, std::memory_order_relaxed);
    conn->send(jobResultError(trace::JsonValue(), job.status()));
    return;
  }
  switch (job->op) {
  case JobOp::Stats:
    conn->send(jobResultStats(job->id, serverStatsJson()));
    return;
  case JobOp::Shutdown:
    conn->send(ackResult(job->id));
    requestShutdown();
    return;
  case JobOp::Run:
    break;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  const trace::JsonValue id = job->id;
  Item item;
  item.job = std::move(*job);
  item.parseNanos = parseNanos;
  item.done = [conn](trace::JsonValue response) {
    conn->send(response);
  };
  if (!enqueue(std::move(item))) {
    accepted_.fetch_sub(1, std::memory_order_relaxed);
    conn->send(jobResultError(
        id, Status::error(ErrorCode::InvalidArgument,
                          "server is shutting down; job rejected")));
  }
}

void Server::connectionLoop(std::shared_ptr<Connection> conn) {
  FrameReader reader = fdFrameReader(conn->fd, options_.maxFrameBytes);
  while (true) {
    Expected<std::optional<std::string>> frame = reader.next();
    if (!frame.ok()) {
      if (frame.status().code() == ErrorCode::IoError)
        return; // Socket gone; nothing left to answer to.
      // Oversized frame: report and keep the connection alive.
      protocolErrors_.fetch_add(1, std::memory_order_relaxed);
      conn->send(jobResultError(trace::JsonValue(), frame.status()));
      continue;
    }
    if (!frame->has_value())
      return; // Clean end of stream.
    dispatchFrame(**frame, conn);
  }
}

void Server::reapFinishedConnections() {
  std::vector<std::thread> done;
  {
    std::lock_guard lock(netMutex_);
    if (finishedConnections_.empty())
      return;
    for (auto it = connectionThreads_.begin();
         it != connectionThreads_.end();) {
      if (std::find(finishedConnections_.begin(), finishedConnections_.end(),
                    it->first) != finishedConnections_.end()) {
        done.push_back(std::move(it->second));
        it = connectionThreads_.erase(it);
      } else {
        ++it;
      }
    }
    finishedConnections_.clear();
    connections_.erase(
        std::remove_if(connections_.begin(), connections_.end(),
                       [](const std::weak_ptr<Connection>& weak) {
                         return weak.expired();
                       }),
        connections_.end());
  }
  // Join outside the lock: the finishing thread appends its id under
  // netMutex_ as its very last step, so join() returns promptly.
  for (std::thread& thread : done)
    thread.join();
}

void Server::acceptLoop(int listenFd) {
  while (!stopping_.load(std::memory_order_acquire)) {
    reapFinishedConnections();
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR)
        continue;
      return; // Listener closed (shutdown) or fatal error.
    }
    auto conn = std::make_shared<Connection>(fd);
    std::lock_guard lock(netMutex_);
    if (stopping_.load(std::memory_order_acquire))
      return; // Raced with shutdown; drop the connection.
    connections_.push_back(conn);
    const std::uint64_t id = nextConnectionId_++;
    connectionThreads_.emplace_back(
        id, std::thread([this, id, conn = std::move(conn)]() mutable {
          connectionLoop(std::move(conn));
          std::lock_guard lock(netMutex_);
          finishedConnections_.push_back(id);
        }));
  }
}

Status Server::listenUnix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path))
    return Status::error(ErrorCode::InvalidArgument,
                         "socket path too long: " + path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    return closeOnError(-1, "socket(AF_UNIX)");
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0)
    return closeOnError(fd, "bind(" + path + ")");
  if (::listen(fd, 64) < 0)
    return closeOnError(fd, "listen(" + path + ")");
  std::lock_guard lock(netMutex_);
  listenFds_.push_back(fd);
  unixPaths_.push_back(path);
  acceptThreads_.emplace_back([this, fd] { acceptLoop(fd); });
  return Status::success();
}

Status Server::listenTcp(int port, int* boundPort) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    return closeOnError(-1, "socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0)
    return closeOnError(fd, "bind(127.0.0.1:" + std::to_string(port) + ")");
  if (::listen(fd, 64) < 0)
    return closeOnError(fd, "listen(:" + std::to_string(port) + ")");
  if (boundPort != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0)
      return closeOnError(fd, "getsockname");
    *boundPort = ntohs(bound.sin_port);
  }
  std::lock_guard lock(netMutex_);
  listenFds_.push_back(fd);
  acceptThreads_.emplace_back([this, fd] { acceptLoop(fd); });
  return Status::success();
}

Status Server::listenHttp(int port, int* boundPort) {
  HttpObserver::Endpoints endpoints;
  endpoints.metricsText = [this] { return prometheusText(); };
  endpoints.statsJson = [this] {
    return serverStatsJson().dump(2) + "\n";
  };
  endpoints.slowJobsJsonl = [this] { return slowJobsJsonl(); };
  endpoints.healthy = [this] { return !shuttingDown(); };
  return observer_.listen(port, boundPort, std::move(endpoints));
}

Status Server::serveOrdered(
    FrameReader& reader,
    const std::function<Status(const std::string&)>& write) {
  std::deque<std::future<trace::JsonValue>> pending;
  auto flush = [&]() -> Status {
    while (!pending.empty()) {
      trace::JsonValue response = pending.front().get();
      pending.pop_front();
      if (Status status = write(response.dump(0)); !status.ok())
        return status;
    }
    return Status::success();
  };

  while (true) {
    Expected<std::optional<std::string>> frame = reader.next();
    if (!frame.ok()) {
      if (frame.status().code() == ErrorCode::IoError) {
        (void)flush();
        return frame.status();
      }
      protocolErrors_.fetch_add(1, std::memory_order_relaxed);
      if (Status status = flush(); !status.ok())
        return status;
      if (Status status =
              write(jobResultError(trace::JsonValue(), frame.status())
                        .dump(0));
          !status.ok())
        return status;
      continue;
    }
    if (!frame->has_value())
      return flush();

    const auto parseStart = std::chrono::steady_clock::now();
    Expected<JobRequest> job = jobFromFrame(**frame);
    const auto parsed =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - parseStart)
            .count();
    if (!job.ok()) {
      protocolErrors_.fetch_add(1, std::memory_order_relaxed);
      if (Status status = flush(); !status.ok())
        return status;
      if (Status status =
              write(jobResultError(trace::JsonValue(), job.status()).dump(0));
          !status.ok())
        return status;
      continue;
    }
    switch (job->op) {
    case JobOp::Run:
      pending.push_back(submitParsed(
          std::move(*job),
          parsed > 0 ? static_cast<std::uint64_t>(parsed) : 0));
      break;
    case JobOp::Stats:
      // Flush first so the snapshot (and the output order) is
      // deterministic: every prior job is fully accounted.
      if (Status status = flush(); !status.ok())
        return status;
      if (Status status =
              write(jobResultStats(job->id, serverStatsJson()).dump(0));
          !status.ok())
        return status;
      break;
    case JobOp::Shutdown:
      if (Status status = flush(); !status.ok())
        return status;
      if (Status status = write(ackResult(job->id).dump(0)); !status.ok())
        return status;
      requestShutdown();
      return Status::success();
    }
  }
}

void Server::waitForShutdownRequest() {
  std::unique_lock lock(queueMutex_);
  queueCv_.wait(lock, [this] {
    return stopping_.load(std::memory_order_acquire);
  });
}

void Server::requestShutdown() {
  {
    std::lock_guard lock(queueMutex_);
    stopping_.store(true, std::memory_order_release);
  }
  queueCv_.notify_all();
  std::lock_guard lock(netMutex_);
  for (const int fd : listenFds_) {
    // shutdown() unblocks a parked accept(); close() alone may not.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  listenFds_.clear();
  for (const std::string& path : unixPaths_)
    ::unlink(path.c_str());
  unixPaths_.clear();
}

void Server::wait() {
  requestShutdown();
  {
    std::lock_guard lock(netMutex_);
    if (joined_)
      return;
    joined_ = true;
  }
  // Workers drain the queue, then exit.
  for (std::thread& worker : workers_)
    if (worker.joinable())
      worker.join();
  // Unblock connection readers parked in read(); their in-flight jobs are
  // done (workers joined), so SHUT_RD loses no responses.
  std::vector<std::thread> acceptThreads;
  std::vector<std::pair<std::uint64_t, std::thread>> connectionThreads;
  {
    std::lock_guard lock(netMutex_);
    for (const std::weak_ptr<Connection>& weak : connections_)
      if (const std::shared_ptr<Connection> conn = weak.lock())
        ::shutdown(conn->fd, SHUT_RD);
    acceptThreads.swap(acceptThreads_);
    connectionThreads.swap(connectionThreads_);
  }
  for (std::thread& thread : acceptThreads)
    if (thread.joinable())
      thread.join();
  for (auto& [id, thread] : connectionThreads)
    if (thread.joinable())
      thread.join();
  // The observer outlives the job path so /healthz can answer 503 while
  // queued jobs drain; it goes down last.
  observer_.stop();
}

} // namespace cgpa::serve
