// Top-level CGPA driver: the public API examples, tests, and the
// experiment harness use. Mirrors the paper's toolflow (Figure 3):
// profile -> analyses -> PDG -> partition -> transform -> schedule ->
// simulate / emit Verilog, plus the two baselines (MIPS software core and
// a Legup-style single-worker accelerator).
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "analysis/alias.hpp"
#include "analysis/control_dep.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "analysis/pdg.hpp"
#include "analysis/profile.hpp"
#include "analysis/scc.hpp"
#include "hls/area.hpp"
#include "kernels/kernel.hpp"
#include "pipeline/functional_exec.hpp"
#include "pipeline/partition.hpp"
#include "pipeline/transform.hpp"
#include "power/model.hpp"
#include "sim/mips.hpp"
#include "sim/system.hpp"

namespace cgpa::driver {

enum class Flow {
  Mips,    ///< Software core baseline (no accelerator).
  Legup,   ///< Single sequential accelerator worker (Legup-style HLS).
  CgpaP1,  ///< CGPA pipeline, heavy replicables in a sequential stage.
  CgpaP2,  ///< CGPA pipeline, replicables forced into the workers.
};

const char* flowName(Flow flow);

struct CompileOptions {
  pipeline::PartitionOptions partition;
  hls::ScheduleOptions schedule;
  kernels::WorkloadConfig profileWorkload; ///< Training run for weights.
  /// When non-null, every compile stage records its decisions here (PDG
  /// memory-dependence pruning, SCC classification, partition placement,
  /// channel provenance, SDC binding constraints). Null = zero overhead.
  trace::RemarkCollector* remarks = nullptr;
};

/// A compiled accelerator: owns the transformed module and every analysis
/// it was derived from.
struct CompiledAccelerator {
  std::unique_ptr<ir::Module> module;
  ir::Function* fn = nullptr;
  std::unique_ptr<analysis::DominatorTree> dom;
  std::unique_ptr<analysis::DominatorTree> postDom;
  std::unique_ptr<analysis::LoopInfo> loops;
  std::unique_ptr<analysis::AliasAnalysis> alias;
  std::unique_ptr<analysis::ControlDependence> controlDeps;
  std::unique_ptr<analysis::Pdg> pdg;
  std::unique_ptr<analysis::SccGraph> sccs;
  pipeline::PipelinePlan plan;
  pipeline::PipelineModule pipelineModule;
  std::string shape; ///< "S-P", "P-S", ... (paper Table 2).
  hls::AreaReport area; ///< Total: all workers + wrapper + FIFO BRAM.
};

/// Compile `kernel` for the given flow (Legup = single sequential stage;
/// CgpaP1/P2 = pipelined). Flow::Mips is invalid here.
///
/// Recoverable failures come back as a Status: InvalidArgument (Mips flow,
/// missing @kernel or target loop), VerifyError (broken input or broken
/// transformed module), PartitionError (illegal worker count),
/// TransformError (unsupported loop shape), ScheduleError (infeasible SDC
/// system). See docs/robustness.md.
Expected<CompiledAccelerator> compileKernelChecked(
    const kernels::Kernel& kernel, Flow flow, const CompileOptions& options);

/// Legacy aborting wrapper over compileKernelChecked().
CompiledAccelerator compileKernel(const kernels::Kernel& kernel, Flow flow,
                                  const CompileOptions& options);

/// One measured configuration of one kernel.
struct Measurement {
  Flow flow = Flow::Mips;
  std::uint64_t cycles = 0;
  bool correct = false; ///< Memory image + return value match the golden.
  std::string shape;    ///< Empty for MIPS.
  int aluts = 0;
  int fifoBramBits = 0;
  double powerMw = 0.0;
  double energyUj = 0.0;
  double energyEfficiency = 0.0; ///< E_mips / E_this (paper Table 3).
  sim::SimResult sim;            ///< Valid for accelerator flows.
  sim::MipsResult mips;          ///< Valid for Flow::Mips.
};

struct EvaluationOptions {
  kernels::WorkloadConfig workload;
  CompileOptions compile;
  sim::SystemConfig system;
  power::PowerConfig power;
  bool runP2 = false; ///< Also evaluate CgpaP2 when the kernel supports it.
};

/// Full paper-style evaluation of one kernel: MIPS, Legup, CGPA P1, and
/// optionally P2, all validated against the native reference.
struct KernelEvaluation {
  std::string kernelName;
  Measurement mips;
  Measurement legup;
  Measurement cgpaP1;
  std::optional<Measurement> cgpaP2;

  double speedupLegup() const; ///< Legup over MIPS.
  double speedupCgpa() const;  ///< CGPA P1 over MIPS.
  double cgpaOverLegup() const;
};

KernelEvaluation evaluateKernel(const kernels::Kernel& kernel,
                                const EvaluationOptions& options);

} // namespace cgpa::driver
