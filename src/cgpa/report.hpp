// Report formatting for the experiment harness: renders the paper's
// Table 2 (partitions), Figure 4 (speedups), and Table 3 (area/power/
// energy) from a set of kernel evaluations.
#pragma once

#include <string>
#include <vector>

#include "cgpa/driver.hpp"

namespace cgpa::driver {

double geomean(const std::vector<double>& values);

/// Paper Table 2: kernel, domain, partition shapes (P1 and, where
/// applicable, P2).
std::string formatTable2(const std::vector<KernelEvaluation>& evals);

/// Paper Figure 4: per-kernel loop speedups over the MIPS core, plus
/// geomeans.
std::string formatFigure4(const std::vector<KernelEvaluation>& evals);

/// Paper Table 3: ALUT / power / energy / energy efficiency per
/// configuration.
std::string formatTable3(const std::vector<KernelEvaluation>& evals);

/// Machine-readable rendering of a full evaluation set: per kernel, per
/// flow, the measurement plus (for accelerator flows) the complete
/// SimResult in the trace::MetricsRegistry "cgpa.simstats.v1" schema.
/// Every Fig.4/Table-2/Table-3 harness binary can dump this via
/// CGPA_STATS_JSON=<path> (see bench/common.hpp).
std::string formatEvaluationsJson(const std::vector<KernelEvaluation>& evals);

} // namespace cgpa::driver
