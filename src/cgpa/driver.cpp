#include "cgpa/driver.hpp"

#include "hls/ops.hpp"
#include "ir/verifier.hpp"
#include "opt/passes.hpp"
#include "support/diag.hpp"

namespace cgpa::driver {

const char* flowName(Flow flow) {
  switch (flow) {
  case Flow::Mips:
    return "MIPS";
  case Flow::Legup:
    return "Legup";
  case Flow::CgpaP1:
    return "CGPA(P1)";
  case Flow::CgpaP2:
    return "CGPA(P2)";
  }
  return "?";
}

Expected<CompiledAccelerator> compileKernelChecked(
    const kernels::Kernel& kernel, Flow flow, const CompileOptions& options) {
  if (flow == Flow::Mips)
    return Status::error(ErrorCode::InvalidArgument,
                         "compileKernel: MIPS is not an accelerator");

  CompiledAccelerator out;
  out.module = kernel.buildModule();
  out.fn = out.module->findFunction("kernel");
  if (out.fn == nullptr)
    return Status::error(ErrorCode::InvalidArgument,
                         "kernel module lacks @kernel");
  if (Status status = ir::verifyModuleStatus(*out.module); !status.ok())
    return status;

  // Scalar optimizations before pipeline generation (paper Section 3.3).
  opt::runScalarOptimizations(*out.module);
  if (Status status = ir::verifyModuleStatus(*out.module); !status.ok())
    return Status::error(ErrorCode::VerifyError,
                         "scalar optimizations broke the module: " +
                             status.message());

  // Profiling step (paper Section 3.2): run the training workload through
  // the interpreter to weight SCCs and the sink pass.
  kernels::Workload training = kernel.buildWorkload(options.profileWorkload);
  const analysis::ProfileData profile =
      analysis::profileFunction(*out.fn, training.args, *training.memory);

  // Analyses.
  out.dom = std::make_unique<analysis::DominatorTree>(*out.fn);
  out.postDom = std::make_unique<analysis::DominatorTree>(*out.fn, true);
  out.loops = std::make_unique<analysis::LoopInfo>(*out.fn, *out.dom);
  out.alias =
      std::make_unique<analysis::AliasAnalysis>(*out.fn, *out.module, *out.loops);
  out.controlDeps =
      std::make_unique<analysis::ControlDependence>(*out.fn, *out.postDom);

  ir::BasicBlock* header = out.fn->findBlock(kernel.targetLoopHeader());
  if (header == nullptr)
    return Status::error(ErrorCode::InvalidArgument,
                         "target loop header not found: " +
                             kernel.targetLoopHeader());
  analysis::Loop* loop = out.loops->loopWithHeader(header);
  if (loop == nullptr)
    return Status::error(ErrorCode::InvalidArgument,
                         "target block is not a loop header: " +
                             kernel.targetLoopHeader());

  out.pdg = std::make_unique<analysis::Pdg>(*out.fn, *loop, *out.alias,
                                            *out.controlDeps, options.remarks);
  out.sccs = std::make_unique<analysis::SccGraph>(
      *out.pdg,
      [&profile](const ir::Instruction* inst) {
        const auto timing = hls::opTiming(inst->opcode(), inst->type());
        return static_cast<double>(profile.countOf(inst->parent())) *
               static_cast<double>(1 + timing.latency);
      },
      options.remarks);

  // Partition.
  pipeline::PartitionOptions partitionOptions = options.partition;
  partitionOptions.remarks = options.remarks;
  partitionOptions.blockFreq = [profile](const ir::BasicBlock* block) {
    return static_cast<double>(profile.countOf(block));
  };
  if (flow == Flow::Legup) {
    out.plan = pipeline::sequentialPlan(*out.sccs, *loop, options.remarks);
  } else {
    if (Status status = pipeline::checkPartitionOptions(partitionOptions);
        !status.ok())
      return status;
    partitionOptions.policy = flow == Flow::CgpaP2
                                  ? pipeline::ReplicablePolicy::ForceParallel
                                  : pipeline::ReplicablePolicy::Heuristic;
    out.plan = pipeline::partitionLoop(*out.sccs, *loop, partitionOptions);
  }
  out.shape = out.plan.shapeString();

  // Transform.
  if (Status status = pipeline::checkTransformPreconditions(out.plan);
      !status.ok())
    return status;
  out.pipelineModule =
      pipeline::transformLoop(*out.fn, out.plan, /*loopId=*/0, options.remarks);
  if (Status status = ir::verifyModuleStatus(*out.module); !status.ok())
    return Status::error(ErrorCode::VerifyError,
                         "transformed module failed verification: " +
                             status.message());

  // Area: wrapper + every worker instance + FIFO BRAM. This is the one
  // scheduling pass that reports remarks: the sim-side scheduling of the
  // same tasks (SystemSimulator) keeps a null collector so the SDC
  // decisions are recorded exactly once.
  hls::ScheduleOptions scheduleOptions = options.schedule;
  scheduleOptions.remarks = options.remarks;
  Expected<hls::FunctionSchedule> wrapperSchedule =
      hls::scheduleFunctionChecked(*out.fn, scheduleOptions);
  if (!wrapperSchedule.ok())
    return wrapperSchedule.status();
  out.area = hls::estimateWorkerArea(*out.fn, *wrapperSchedule);
  for (const pipeline::TaskInfo& task : out.pipelineModule.tasks) {
    Expected<hls::FunctionSchedule> schedule =
        hls::scheduleFunctionChecked(*task.fn, scheduleOptions);
    if (!schedule.ok())
      return schedule.status();
    const hls::AreaReport worker = hls::estimateWorkerArea(*task.fn, *schedule);
    const int copies = task.parallel ? out.pipelineModule.numWorkers : 1;
    for (int c = 0; c < copies; ++c)
      out.area += worker;
  }
  for (const pipeline::ChannelInfo& channel : out.pipelineModule.channels)
    out.area.fifoBramBits +=
        hls::fifoBramBits(16, channel.lanes,
                          typeBits(channel.type) == 0 ? 1
                                                      : typeBits(channel.type));
  return out;
}

CompiledAccelerator compileKernel(const kernels::Kernel& kernel, Flow flow,
                                  const CompileOptions& options) {
  Expected<CompiledAccelerator> accel =
      compileKernelChecked(kernel, flow, options);
  if (!accel.ok())
    fatalError(accel.status().toString(), __FILE__, __LINE__);
  return std::move(*accel);
}

namespace {

/// Golden result: reference run over a fresh identical workload.
struct Golden {
  kernels::Workload workload;
  std::uint64_t returnValue = 0;
};

Golden makeGolden(const kernels::Kernel& kernel,
                  const kernels::WorkloadConfig& config) {
  Golden golden;
  golden.workload = kernel.buildWorkload(config);
  golden.returnValue =
      kernel.runReference(*golden.workload.memory, golden.workload.args);
  return golden;
}

bool matchesGolden(const Golden& golden, const interp::Memory& memory,
                   std::uint64_t returnValue) {
  return returnValue == golden.returnValue &&
         memory.raw() == golden.workload.memory->raw();
}

Measurement measureAccelerator(const kernels::Kernel& kernel, Flow flow,
                               const Golden& golden,
                               const EvaluationOptions& options,
                               double mipsEnergy) {
  const CompiledAccelerator accel =
      compileKernel(kernel, flow, options.compile);
  kernels::Workload workload = kernel.buildWorkload(options.workload);
  Measurement m;
  m.flow = flow;
  m.shape = accel.shape;
  m.sim = sim::simulateSystem(accel.pipelineModule, *workload.memory,
                              workload.args, options.system);
  m.cycles = m.sim.cycles;
  m.correct = matchesGolden(golden, *workload.memory, m.sim.returnValue);
  m.aluts = accel.area.aluts;
  m.fifoBramBits = accel.area.fifoBramBits;
  const power::PowerReport power = power::estimateAcceleratorPower(
      accel.area, m.sim.dynamicEnergyPj, m.cycles, options.power);
  m.powerMw = power.totalMw;
  m.energyUj = power.energyUj;
  m.energyEfficiency = m.energyUj > 0.0 ? mipsEnergy / m.energyUj : 0.0;
  return m;
}

} // namespace

double KernelEvaluation::speedupLegup() const {
  return legup.cycles == 0 ? 0.0
                           : static_cast<double>(mips.cycles) /
                                 static_cast<double>(legup.cycles);
}

double KernelEvaluation::speedupCgpa() const {
  return cgpaP1.cycles == 0 ? 0.0
                            : static_cast<double>(mips.cycles) /
                                  static_cast<double>(cgpaP1.cycles);
}

double KernelEvaluation::cgpaOverLegup() const {
  return cgpaP1.cycles == 0 ? 0.0
                            : static_cast<double>(legup.cycles) /
                                  static_cast<double>(cgpaP1.cycles);
}

KernelEvaluation evaluateKernel(const kernels::Kernel& kernel,
                                const EvaluationOptions& options) {
  KernelEvaluation eval;
  eval.kernelName = kernel.name();

  const Golden golden = makeGolden(kernel, options.workload);

  // MIPS software core baseline (same scalar optimizations applied: the
  // CPU compiler would run them too).
  {
    auto module = kernel.buildModule();
    opt::runScalarOptimizations(*module);
    const ir::Function* fn = module->findFunction("kernel");
    kernels::Workload workload = kernel.buildWorkload(options.workload);
    eval.mips.flow = Flow::Mips;
    eval.mips.mips = sim::runMipsModel(*fn, workload.args, *workload.memory,
                                       options.system.cache);
    eval.mips.cycles = eval.mips.mips.cycles;
    eval.mips.correct =
        matchesGolden(golden, *workload.memory, eval.mips.mips.returnValue);
    eval.mips.energyUj = power::mipsEnergyUj(eval.mips.cycles, options.power);
    eval.mips.powerMw = options.power.mipsCoreMw;
    eval.mips.energyEfficiency = 1.0;
  }

  eval.legup = measureAccelerator(kernel, Flow::Legup, golden, options,
                                  eval.mips.energyUj);
  eval.cgpaP1 = measureAccelerator(kernel, Flow::CgpaP1, golden, options,
                                   eval.mips.energyUj);
  if (options.runP2 && kernel.supportsP2())
    eval.cgpaP2 = measureAccelerator(kernel, Flow::CgpaP2, golden, options,
                                     eval.mips.energyUj);
  return eval;
}

} // namespace cgpa::driver
