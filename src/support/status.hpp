// Structured failure handling: cgpa::Status / cgpa::Expected<T>.
//
// The toolchain distinguishes two failure classes:
//   * internal invariant violations — compiler bugs — which stay on
//     CGPA_ASSERT / CGPA_UNREACHABLE (diag.hpp) and abort, and
//   * *recoverable* failures of a pipeline under construction or under
//     simulation (malformed input IR, an illegal partition request, an
//     infeasible schedule, a deadlocked or cycle-capped simulation), which
//     propagate as a Status so callers — the cgpac CLI, the fuzz harness,
//     future serving layers — can report, shrink, retry, or skip instead
//     of dying.
//
// A Status optionally carries a StatusDetail payload: a polymorphic
// forensic record (e.g. sim::DeadlockReport) that higher layers downcast
// via detailAs<T>() and serialize (trace/failure_json.hpp). See
// docs/robustness.md for the full conventions.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "support/diag.hpp"

namespace cgpa {

/// Failure taxonomy, ordered roughly by pipeline phase. Keep in sync with
/// errorCodeName() and the cgpac exit-code table (tools/cgpac.cpp,
/// docs/robustness.md).
enum class ErrorCode : std::uint8_t {
  Ok = 0,
  InvalidArgument,  ///< Caller error: bad flag value, missing loop, ...
  ParseError,       ///< Textual IR failed to parse.
  VerifyError,      ///< IR failed structural/SSA verification.
  PartitionError,   ///< Illegal partition request or plan.
  ScheduleError,    ///< SDC system infeasible / scheduler non-convergent.
  TransformError,   ///< Loop shape unsupported by the pipeline transform.
  SimDeadlock,      ///< Every engine parked with no pending wakeup.
  CycleCapExceeded, ///< Simulation passed SystemConfig::maxCycles.
  IoError,          ///< File could not be read/written.
  Internal,         ///< Should-not-happen escaped as a status.
};

const char* errorCodeName(ErrorCode code);

/// Base class for structured failure payloads attached to a Status (e.g.
/// sim::DeadlockReport). Lives here so low-level libraries can attach
/// details without depending on the layers that interpret them.
class StatusDetail {
public:
  virtual ~StatusDetail() = default;
  /// Multi-line human-readable rendering (for stderr / logs).
  virtual std::string describe() const = 0;
};

/// Success or a (code, message, optional detail) failure. Cheap to move;
/// the detail is shared so a Status can be copied into reports freely.
class [[nodiscard]] Status {
public:
  Status() = default; ///< Ok.

  static Status success() { return Status(); }
  static Status error(ErrorCode code, std::string message) {
    Status s;
    s.code_ = code;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const { return code_ == ErrorCode::Ok; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Attach a forensic payload (builder style).
  Status&& withDetail(std::shared_ptr<const StatusDetail> detail) && {
    detail_ = std::move(detail);
    return std::move(*this);
  }
  void setDetail(std::shared_ptr<const StatusDetail> detail) {
    detail_ = std::move(detail);
  }
  const StatusDetail* detail() const { return detail_.get(); }
  std::shared_ptr<const StatusDetail> sharedDetail() const { return detail_; }

  /// Downcast the payload; nullptr when absent or of another type.
  template <typename T> const T* detailAs() const {
    return dynamic_cast<const T*>(detail_.get());
  }

  /// "schedule-error: initial SDC system infeasible" (or "ok").
  std::string toString() const;

private:
  ErrorCode code_ = ErrorCode::Ok;
  std::string message_;
  std::shared_ptr<const StatusDetail> detail_;
};

/// A value or the Status explaining why there is none.
template <typename T> class [[nodiscard]] Expected {
public:
  Expected(T value) : value_(std::move(value)) {}
  Expected(Status status) : status_(std::move(status)) {
    CGPA_ASSERT(!status_.ok(),
                "Expected constructed from an Ok status without a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() {
    CGPA_ASSERT(value_.has_value(),
                "Expected::value() on error: " + status_.toString());
    return *value_;
  }
  const T& value() const {
    CGPA_ASSERT(value_.has_value(),
                "Expected::value() on error: " + status_.toString());
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

private:
  std::optional<T> value_;
  Status status_; ///< Ok when value_ is present.
};

} // namespace cgpa
