// Diagnostics: assertion and fatal-error helpers used throughout the CGPA
// framework. These are enabled in all build types; an internal invariant
// violation in a compiler is a bug we always want to catch, not UB.
#pragma once

#include <cstdio>
#include <string>

namespace cgpa {

/// Print a formatted fatal-error message and abort.
[[noreturn]] void fatalError(const std::string& message, const char* file,
                             int line);

/// Report a failed invariant check and abort.
[[noreturn]] void assertFail(const char* condition, const std::string& message,
                             const char* file, int line);

} // namespace cgpa

/// Invariant check that is active in every build type. `msg` is a
/// std::string expression evaluated only on failure.
#define CGPA_ASSERT(cond, msg)                                                \
  do {                                                                        \
    if (!(cond))                                                              \
      ::cgpa::assertFail(#cond, (msg), __FILE__, __LINE__);                   \
  } while (0)

/// Marks code paths that must be unreachable.
#define CGPA_UNREACHABLE(msg) ::cgpa::fatalError((msg), __FILE__, __LINE__)
