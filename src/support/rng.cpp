#include "support/rng.hpp"

#include "support/diag.hpp"

namespace cgpa {

std::uint64_t Rng::next() {
  state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::nextBelow(std::uint64_t bound) {
  CGPA_ASSERT(bound != 0, "nextBelow requires a nonzero bound");
  // Modulo bias is negligible for the workload sizes used here, and
  // determinism matters more than perfect uniformity.
  return next() % bound;
}

std::int64_t Rng::nextInRange(std::int64_t lo, std::int64_t hi) {
  CGPA_ASSERT(lo <= hi, "nextInRange requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(nextBelow(span));
}

double Rng::nextDouble() {
  // 53 high-quality bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

} // namespace cgpa
