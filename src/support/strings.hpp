// Small string helpers shared by the IR printer/parser and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cgpa {

/// Split `text` on `sep`, keeping empty fields.
std::vector<std::string_view> splitString(std::string_view text, char sep);

/// Strip ASCII whitespace from both ends.
std::string_view trimString(std::string_view text);

/// True if `text` starts with `prefix`.
bool startsWith(std::string_view text, std::string_view prefix);

/// Format a double with fixed precision (for report tables).
std::string formatFixed(double value, int decimals);

/// Right-pad `text` with spaces to at least `width` columns.
std::string padRight(std::string_view text, std::size_t width);

/// Left-pad `text` with spaces to at least `width` columns.
std::string padLeft(std::string_view text, std::size_t width);

} // namespace cgpa
