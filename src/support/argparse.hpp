// Shared command-line parsing for the CGPA tools (cgpac, cgpa_fuzz,
// trace_check): one cursor over argv that understands both `--flag value`
// and `--flag=value`, positionals, and typed values.
//
// Failures are reported as cgpa::Status with ErrorCode::InvalidArgument
// (missing value, malformed number, unknown flag) so every tool maps them
// to the documented exit code 2 through one path instead of hand-rolling
// fprintf-and-return in each parser branch.
//
// Usage:
//
//   support::ArgParser args(argc, argv);
//   while (!args.done()) {
//     if (args.matchFlag("kernel")) {
//       Expected<std::string> v = args.value();
//       if (!v.ok()) return usageError(v.status());
//       options.kernel = *v;
//     } else if (args.matchFlag("dump-ir")) {
//       options.dumpIr = true;
//     } else if (!args.isFlag()) {
//       positionals.push_back(args.positional());
//     } else {
//       return usageError(args.unknown());
//     }
//   }
#pragma once

#include <cstdint>
#include <string>

#include "support/status.hpp"

namespace cgpa::support {

class ArgParser {
public:
  /// Wraps argv (argv[0], the program name, is skipped).
  ArgParser(int argc, char** argv) : argc_(argc), argv_(argv) {}

  bool done() const { return index_ >= argc_; }

  /// Current token, verbatim ("" when done).
  std::string peek() const {
    return done() ? std::string() : std::string(argv_[index_]);
  }

  /// True when the current token looks like a flag (starts with "--", or
  /// is a single-dash short option like "-h").
  bool isFlag() const;

  /// Consume the current token as a positional argument.
  std::string positional();

  /// If the current token is `--name` or `--name=value`, consume it and
  /// return true; the inline value (if any) is staged for value(). An
  /// optional `alias` matches the whole token verbatim (e.g. "-h").
  bool matchFlag(const std::string& name, const std::string& alias = "");

  /// Value of the flag last consumed by matchFlag(): the `=value` part if
  /// present, else the next argv token. InvalidArgument when neither
  /// exists. Call at most once per matchFlag().
  Expected<std::string> value();

  /// value() parsed as a number; InvalidArgument on trailing garbage,
  /// overflow, or (for uintValue) a leading minus sign.
  Expected<std::int64_t> intValue();
  Expected<std::uint64_t> uintValue();
  Expected<double> doubleValue();

  /// InvalidArgument Status naming the current (unconsumed) token; for the
  /// final `else` of a flag-matching chain. Does not consume.
  Status unknown() const;

private:
  int argc_;
  char** argv_;
  int index_ = 1;
  std::string flagName_;    ///< Last flag consumed by matchFlag().
  std::string inlineValue_; ///< Its staged `=value`, when present.
  bool hasInline_ = false;
};

} // namespace cgpa::support
