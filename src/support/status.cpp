#include "support/status.hpp"

namespace cgpa {

const char* errorCodeName(ErrorCode code) {
  switch (code) {
  case ErrorCode::Ok:
    return "ok";
  case ErrorCode::InvalidArgument:
    return "invalid-argument";
  case ErrorCode::ParseError:
    return "parse-error";
  case ErrorCode::VerifyError:
    return "verify-error";
  case ErrorCode::PartitionError:
    return "partition-error";
  case ErrorCode::ScheduleError:
    return "schedule-error";
  case ErrorCode::TransformError:
    return "transform-error";
  case ErrorCode::SimDeadlock:
    return "sim-deadlock";
  case ErrorCode::CycleCapExceeded:
    return "cycle-cap-exceeded";
  case ErrorCode::IoError:
    return "io-error";
  case ErrorCode::Internal:
    return "internal";
  }
  return "?";
}

std::string Status::toString() const {
  if (ok())
    return "ok";
  std::string text = errorCodeName(code_);
  if (!message_.empty()) {
    text += ": ";
    text += message_;
  }
  return text;
}

} // namespace cgpa
