#include "support/strings.hpp"

#include <cctype>
#include <cstdio>

namespace cgpa {

std::vector<std::string_view> splitString(std::string_view text, char sep) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      fields.push_back(text.substr(start));
      return fields;
    }
    fields.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trimString(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0)
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0)
    --end;
  return text.substr(begin, end - begin);
}

bool startsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string formatFixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

std::string padRight(std::string_view text, std::size_t width) {
  std::string padded(text);
  if (padded.size() < width)
    padded.append(width - padded.size(), ' ');
  return padded;
}

std::string padLeft(std::string_view text, std::size_t width) {
  std::string padded(text);
  if (padded.size() < width)
    padded.insert(padded.begin(), width - padded.size(), ' ');
  return padded;
}

} // namespace cgpa
