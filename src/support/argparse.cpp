#include "support/argparse.hpp"

#include <cerrno>
#include <cstdlib>

namespace cgpa::support {

bool ArgParser::isFlag() const {
  const std::string token = peek();
  return token.size() >= 2 && token[0] == '-' && token != "-";
}

std::string ArgParser::positional() {
  std::string token = peek();
  if (!done())
    ++index_;
  return token;
}

bool ArgParser::matchFlag(const std::string& name, const std::string& alias) {
  if (done())
    return false;
  const std::string token = argv_[index_];
  if (!alias.empty() && token == alias) {
    ++index_;
    flagName_ = alias;
    hasInline_ = false;
    inlineValue_.clear();
    return true;
  }
  if (token.rfind("--", 0) != 0)
    return false;
  const std::size_t eq = token.find('=');
  const std::string head =
      eq == std::string::npos ? token.substr(2) : token.substr(2, eq - 2);
  if (head != name)
    return false;
  ++index_;
  flagName_ = "--" + name;
  hasInline_ = eq != std::string::npos;
  inlineValue_ = hasInline_ ? token.substr(eq + 1) : std::string();
  return true;
}

Expected<std::string> ArgParser::value() {
  if (hasInline_) {
    hasInline_ = false;
    return std::string(std::move(inlineValue_));
  }
  if (done())
    return Status::error(ErrorCode::InvalidArgument,
                         "missing value for " + flagName_);
  return std::string(argv_[index_++]);
}

Expected<std::int64_t> ArgParser::intValue() {
  Expected<std::string> text = value();
  if (!text.ok())
    return text.status();
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(text->c_str(), &end, 10);
  if (end == text->c_str() || *end != '\0' || errno == ERANGE)
    return Status::error(ErrorCode::InvalidArgument,
                         "bad integer for " + flagName_ + ": '" + *text + "'");
  return static_cast<std::int64_t>(parsed);
}

Expected<std::uint64_t> ArgParser::uintValue() {
  Expected<std::string> text = value();
  if (!text.ok())
    return text.status();
  if (!text->empty() && (*text)[0] == '-')
    return Status::error(ErrorCode::InvalidArgument,
                         "negative value for " + flagName_ + ": '" + *text +
                             "'");
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text->c_str(), &end, 10);
  if (end == text->c_str() || *end != '\0' || errno == ERANGE)
    return Status::error(ErrorCode::InvalidArgument,
                         "bad integer for " + flagName_ + ": '" + *text + "'");
  return static_cast<std::uint64_t>(parsed);
}

Expected<double> ArgParser::doubleValue() {
  Expected<std::string> text = value();
  if (!text.ok())
    return text.status();
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(text->c_str(), &end);
  if (end == text->c_str() || *end != '\0' || errno == ERANGE)
    return Status::error(ErrorCode::InvalidArgument,
                         "bad number for " + flagName_ + ": '" + *text + "'");
  return parsed;
}

Status ArgParser::unknown() const {
  return Status::error(ErrorCode::InvalidArgument,
                       "unknown argument: " + peek());
}

} // namespace cgpa::support
