#include "support/diag.hpp"

#include <cstdlib>

namespace cgpa {

void fatalError(const std::string& message, const char* file, int line) {
  std::fprintf(stderr, "cgpa fatal error: %s (%s:%d)\n", message.c_str(), file,
               line);
  std::abort();
}

void assertFail(const char* condition, const std::string& message,
                const char* file, int line) {
  std::fprintf(stderr, "cgpa assertion failed: %s — %s (%s:%d)\n", condition,
               message.c_str(), file, line);
  std::abort();
}

} // namespace cgpa
