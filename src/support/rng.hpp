// Deterministic pseudo-random number generation for workload synthesis.
// All workload generators take an explicit seed so every experiment is
// exactly reproducible across runs and machines.
#pragma once

#include <cstdint>

namespace cgpa {

/// SplitMix64: tiny, deterministic, well-distributed 64-bit generator.
/// Used for all synthetic workloads (graphs, images, key streams).
class Rng {
public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound). `bound` must be nonzero.
  std::uint64_t nextBelow(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t nextInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double nextDouble();

private:
  std::uint64_t state_;
};

} // namespace cgpa
