// Pure evaluation semantics for IR instructions, shared by the reference
// interpreter and the cycle-level worker engines so that both execute
// exactly the same arithmetic.
//
// Register representation (uint64_t bit patterns):
//   I1  — 0 or 1
//   I32 — sign-extended to 64 bits
//   I64 — native
//   F32 — float bit pattern in the low 32 bits
//   F64 — double bit pattern
//   Ptr — zero-extended 32-bit address
#pragma once

#include <cstdint>

#include "ir/instruction.hpp"

namespace cgpa::interp {

/// Canonicalize a raw pattern to the register representation of `type`
/// (e.g. re-sign-extend an I32).
std::uint64_t canonicalize(ir::Type type, std::uint64_t pattern);

/// Bit pattern for a Constant.
std::uint64_t constantPattern(const ir::Constant& constant);

/// Evaluate a two-operand arithmetic/bitwise/compare opcode.
std::uint64_t evalBinary(ir::Opcode op, ir::Type operandType,
                         ir::CmpPred pred, std::uint64_t lhs,
                         std::uint64_t rhs);

/// Evaluate a conversion opcode from `fromType` to `toType`.
std::uint64_t evalCast(ir::Opcode op, ir::Type fromType, ir::Type toType,
                       std::uint64_t value);

/// Evaluate an intrinsic call.
std::uint64_t evalIntrinsic(ir::Intrinsic which, ir::Type type,
                            const std::uint64_t* args, int numArgs);

/// Address computed by a Gep: base + index * scale + offset.
std::uint64_t evalGep(std::uint64_t base, std::uint64_t index, bool hasIndex,
                      std::int64_t scale, std::int64_t offset);

// Pattern <-> native helpers.
double patternToDouble(ir::Type type, std::uint64_t pattern);
std::uint64_t doubleToPattern(ir::Type type, double value);
std::int64_t patternToInt(ir::Type type, std::uint64_t pattern);

} // namespace cgpa::interp
