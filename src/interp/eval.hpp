// Pure evaluation semantics for IR instructions, shared by the reference
// interpreter and the cycle-level worker engines so that both execute
// exactly the same arithmetic.
//
// Register representation (uint64_t bit patterns):
//   I1  — 0 or 1
//   I32 — sign-extended to 64 bits
//   I64 — native
//   F32 — float bit pattern in the low 32 bits
//   F64 — double bit pattern
//   Ptr — zero-extended 32-bit address
//
// The per-instruction evaluators are defined inline here: they sit on the
// innermost loop of both the interpreter and the simulator, and keeping
// them visible to the caller's translation unit lets the compiler fold the
// opcode/type switches into the surrounding dispatch.
#pragma once

#include <cstdint>
#include <cstring>

#include "ir/instruction.hpp"
#include "support/diag.hpp"

namespace cgpa::interp {

/// Canonicalize a raw pattern to the register representation of `type`
/// (e.g. re-sign-extend an I32).
inline std::uint64_t canonicalize(ir::Type type, std::uint64_t pattern) {
  switch (type) {
  case ir::Type::I1:
    return pattern & 1;
  case ir::Type::I32:
    return static_cast<std::uint64_t>(
        static_cast<std::int64_t>(static_cast<std::int32_t>(pattern)));
  case ir::Type::F32:
  case ir::Type::Ptr:
    return pattern & 0xffffffffULL;
  default:
    return pattern;
  }
}

/// Bit pattern for a Constant.
std::uint64_t constantPattern(const ir::Constant& constant);

// Pattern <-> native helpers.
inline double patternToDouble(ir::Type type, std::uint64_t pattern) {
  if (type == ir::Type::F32) {
    const std::uint32_t bits = static_cast<std::uint32_t>(pattern);
    float value;
    std::memcpy(&value, &bits, sizeof value);
    return value;
  }
  CGPA_ASSERT(type == ir::Type::F64, "patternToDouble on non-float");
  double value;
  std::memcpy(&value, &pattern, sizeof value);
  return value;
}

inline std::uint64_t doubleToPattern(ir::Type type, double value) {
  if (type == ir::Type::F32) {
    const float narrow = static_cast<float>(value);
    std::uint32_t bits;
    std::memcpy(&bits, &narrow, sizeof bits);
    return bits;
  }
  CGPA_ASSERT(type == ir::Type::F64, "doubleToPattern on non-float");
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  return bits;
}

inline std::int64_t patternToInt(ir::Type type, std::uint64_t pattern) {
  return static_cast<std::int64_t>(canonicalize(type, pattern));
}

// --- Per-opcode kernels -----------------------------------------------
// One inline function per opcode family, each taking canonical register
// patterns and returning the canonical result pattern. evalBinary below
// dispatches to them through its opcode switch; the threaded execution
// tier (sim/exec) binds them directly into its per-opcode handlers, so
// both tiers compute bit-identical results by construction.

/// Integer comparison (pointers compare as unsigned 32-bit; the canonical
/// form already zero-extends them, so signed comparison of the patterns
/// gives the right answer). Returns 0 or 1, never canonicalized further.
inline std::uint64_t evalICmp(ir::CmpPred pred, std::uint64_t lhs,
                              std::uint64_t rhs) {
  using ir::CmpPred;
  const std::int64_t a = static_cast<std::int64_t>(lhs);
  const std::int64_t b = static_cast<std::int64_t>(rhs);
  switch (pred) {
  case CmpPred::EQ:
    return a == b;
  case CmpPred::NE:
    return a != b;
  case CmpPred::SLT:
    return a < b;
  case CmpPred::SLE:
    return a <= b;
  case CmpPred::SGT:
    return a > b;
  case CmpPred::SGE:
    return a >= b;
  default:
    CGPA_UNREACHABLE("float predicate on icmp");
  }
}

/// Ordered float comparison on F32/F64 patterns. Returns 0 or 1.
inline std::uint64_t evalFCmp(ir::Type operandType, ir::CmpPred pred,
                              std::uint64_t lhs, std::uint64_t rhs) {
  using ir::CmpPred;
  const double a = patternToDouble(operandType, lhs);
  const double b = patternToDouble(operandType, rhs);
  switch (pred) {
  case CmpPred::OEQ:
    return a == b;
  case CmpPred::ONE:
    return a != b;
  case CmpPred::OLT:
    return a < b;
  case CmpPred::OLE:
    return a <= b;
  case CmpPred::OGT:
    return a > b;
  case CmpPred::OGE:
    return a >= b;
  default:
    CGPA_UNREACHABLE("integer predicate on fcmp");
  }
}

// Add/sub/mul wrap like the hardware datapath: compute in the unsigned
// domain (well-defined overflow) and re-canonicalize.
inline std::uint64_t evalAdd(ir::Type t, std::uint64_t a, std::uint64_t b) {
  return canonicalize(t, a + b);
}
inline std::uint64_t evalSub(ir::Type t, std::uint64_t a, std::uint64_t b) {
  return canonicalize(t, a - b);
}
inline std::uint64_t evalMul(ir::Type t, std::uint64_t a, std::uint64_t b) {
  return canonicalize(t, a * b);
}
inline std::uint64_t evalSDiv(ir::Type t, std::uint64_t a, std::uint64_t b) {
  CGPA_ASSERT(b != 0, "sdiv by zero");
  return canonicalize(t, static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(a) /
                             static_cast<std::int64_t>(b)));
}
inline std::uint64_t evalSRem(ir::Type t, std::uint64_t a, std::uint64_t b) {
  CGPA_ASSERT(b != 0, "srem by zero");
  return canonicalize(t, static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(a) %
                             static_cast<std::int64_t>(b)));
}
inline std::uint64_t evalAnd(ir::Type t, std::uint64_t a, std::uint64_t b) {
  return canonicalize(t, a & b);
}
inline std::uint64_t evalOr(ir::Type t, std::uint64_t a, std::uint64_t b) {
  return canonicalize(t, a | b);
}
inline std::uint64_t evalXor(ir::Type t, std::uint64_t a, std::uint64_t b) {
  return canonicalize(t, a ^ b);
}
inline std::uint64_t evalShl(ir::Type t, std::uint64_t a, std::uint64_t b) {
  return canonicalize(t, a << (b & 63));
}
/// Logical shift operates on the value's natural width.
inline std::uint64_t evalLShr(ir::Type t, std::uint64_t a, std::uint64_t b) {
  const std::uint64_t ua =
      t == ir::Type::I32
          ? static_cast<std::uint64_t>(static_cast<std::uint32_t>(a))
          : a;
  return canonicalize(t, ua >> (b & 63));
}
inline std::uint64_t evalAShr(ir::Type t, std::uint64_t a, std::uint64_t b) {
  return canonicalize(t, static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(a) >> (b & 63)));
}

/// Float arithmetic. F32 ops round through float, matching hardware
/// single-precision datapaths.
inline std::uint64_t evalFAdd(ir::Type t, std::uint64_t lhs,
                              std::uint64_t rhs) {
  double r = patternToDouble(t, lhs) + patternToDouble(t, rhs);
  if (t == ir::Type::F32)
    r = static_cast<float>(r);
  return doubleToPattern(t, r);
}
inline std::uint64_t evalFSub(ir::Type t, std::uint64_t lhs,
                              std::uint64_t rhs) {
  double r = patternToDouble(t, lhs) - patternToDouble(t, rhs);
  if (t == ir::Type::F32)
    r = static_cast<float>(r);
  return doubleToPattern(t, r);
}
inline std::uint64_t evalFMul(ir::Type t, std::uint64_t lhs,
                              std::uint64_t rhs) {
  double r = patternToDouble(t, lhs) * patternToDouble(t, rhs);
  if (t == ir::Type::F32)
    r = static_cast<float>(r);
  return doubleToPattern(t, r);
}
inline std::uint64_t evalFDiv(ir::Type t, std::uint64_t lhs,
                              std::uint64_t rhs) {
  double r = patternToDouble(t, lhs) / patternToDouble(t, rhs);
  if (t == ir::Type::F32)
    r = static_cast<float>(r);
  return doubleToPattern(t, r);
}

namespace detail {

inline std::uint64_t evalCmp(ir::Opcode op, ir::Type operandType,
                             ir::CmpPred pred, std::uint64_t lhs,
                             std::uint64_t rhs) {
  if (op == ir::Opcode::FCmp)
    return evalFCmp(operandType, pred, lhs, rhs);
  return evalICmp(pred, lhs, rhs);
}

} // namespace detail

/// Evaluate a two-operand arithmetic/bitwise/compare opcode.
inline std::uint64_t evalBinary(ir::Opcode op, ir::Type operandType,
                                ir::CmpPred pred, std::uint64_t lhs,
                                std::uint64_t rhs) {
  using ir::Opcode;
  using ir::Type;
  switch (op) {
  case Opcode::ICmp:
    return evalICmp(pred, lhs, rhs);
  case Opcode::FCmp:
    return evalFCmp(operandType, pred, lhs, rhs);
  case Opcode::FAdd:
    return evalFAdd(operandType, lhs, rhs);
  case Opcode::FSub:
    return evalFSub(operandType, lhs, rhs);
  case Opcode::FMul:
    return evalFMul(operandType, lhs, rhs);
  case Opcode::FDiv:
    return evalFDiv(operandType, lhs, rhs);
  case Opcode::Add:
    return evalAdd(operandType, lhs, rhs);
  case Opcode::Sub:
    return evalSub(operandType, lhs, rhs);
  case Opcode::Mul:
    return evalMul(operandType, lhs, rhs);
  case Opcode::SDiv:
    return evalSDiv(operandType, lhs, rhs);
  case Opcode::SRem:
    return evalSRem(operandType, lhs, rhs);
  case Opcode::And:
    return evalAnd(operandType, lhs, rhs);
  case Opcode::Or:
    return evalOr(operandType, lhs, rhs);
  case Opcode::Xor:
    return evalXor(operandType, lhs, rhs);
  case Opcode::Shl:
    return evalShl(operandType, lhs, rhs);
  case Opcode::LShr:
    return evalLShr(operandType, lhs, rhs);
  case Opcode::AShr:
    return evalAShr(operandType, lhs, rhs);
  default:
    CGPA_UNREACHABLE("evalBinary on non-binary opcode");
  }
}

/// Evaluate a conversion opcode from `fromType` to `toType`.
inline std::uint64_t evalCast(ir::Opcode op, ir::Type fromType,
                              ir::Type toType, std::uint64_t value) {
  using ir::Opcode;
  switch (op) {
  case Opcode::Trunc:
  case Opcode::SExt:
  case Opcode::ZExt:
  case Opcode::PtrToInt:
  case Opcode::IntToPtr: {
    std::uint64_t raw = value;
    if (op == Opcode::ZExt && fromType == ir::Type::I32)
      raw = value & 0xffffffffULL;
    return canonicalize(toType, raw);
  }
  case Opcode::SIToFP:
    return doubleToPattern(
        toType, static_cast<double>(patternToInt(fromType, value)));
  case Opcode::FPToSI:
    return canonicalize(toType, static_cast<std::uint64_t>(static_cast<std::int64_t>(
                                    patternToDouble(fromType, value))));
  case Opcode::FPExt:
  case Opcode::FPTrunc:
    return doubleToPattern(toType, patternToDouble(fromType, value));
  default:
    CGPA_UNREACHABLE("evalCast on non-cast opcode");
  }
}

/// Evaluate an intrinsic call.
std::uint64_t evalIntrinsic(ir::Intrinsic which, ir::Type type,
                            const std::uint64_t* args, int numArgs);

/// Address computed by a Gep: base + index * scale + offset.
inline std::uint64_t evalGep(std::uint64_t base, std::uint64_t index,
                             bool hasIndex, std::int64_t scale,
                             std::int64_t offset) {
  std::int64_t addr = static_cast<std::int64_t>(base) + offset;
  if (hasIndex)
    addr += static_cast<std::int64_t>(index) * scale;
  return canonicalize(ir::Type::Ptr, static_cast<std::uint64_t>(addr));
}

} // namespace cgpa::interp
