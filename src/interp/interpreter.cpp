#include "interp/interpreter.hpp"

#include <vector>

#include "interp/eval.hpp"
#include "ir/slots.hpp"
#include "support/diag.hpp"

namespace cgpa::interp {

using ir::Instruction;
using ir::Opcode;

InterpResult Interpreter::run(const ir::Function& function,
                              std::span<const std::uint64_t> args,
                              std::uint64_t maxSteps) {
  CGPA_ASSERT(static_cast<int>(args.size()) == function.numArguments(),
              "argument count mismatch calling @" + function.name());

  // Dense register file: one slot per argument/instruction plus preloaded
  // constant slots, so reading an operand is a single array index (see
  // ir/slots.hpp).
  const ir::SlotMap slots(function);
  std::vector<std::uint64_t> regs(static_cast<std::size_t>(slots.numSlots()),
                                  0);
  for (const auto& [slot, constant] : slots.constants())
    regs[static_cast<std::size_t>(slot)] = constantPattern(*constant);
  for (int i = 0; i < function.numArguments(); ++i)
    regs[static_cast<std::size_t>(i)] = canonicalize(
        function.argument(i)->type(), args[static_cast<std::size_t>(i)]);

  InterpResult result;
  const ir::BasicBlock* block = function.entry();
  const ir::BasicBlock* prevBlock = nullptr;
  CGPA_ASSERT(block != nullptr, "function has no entry block");

  while (true) {
    if (observer_ != nullptr)
      observer_->onBlockEnter(*block);

    // Phis evaluate atomically against the predecessor edge.
    std::vector<std::pair<std::size_t, std::uint64_t>> phiValues;
    int firstNonPhi = 0;
    while (firstNonPhi < block->size() &&
           block->instruction(firstNonPhi)->opcode() == Opcode::Phi) {
      const Instruction* phi = block->instruction(firstNonPhi);
      CGPA_ASSERT(prevBlock != nullptr, "phi in entry block");
      const int incoming = phi->incomingIndexFor(prevBlock);
      phiValues.emplace_back(
          static_cast<std::size_t>(phi->slot()),
          regs[static_cast<std::size_t>(slots.operandSlots(phi)[incoming])]);
      ++firstNonPhi;
    }
    for (const auto& [slot, value] : phiValues) {
      regs[slot] = value;
      ++result.instructionsExecuted;
    }

    for (int i = firstNonPhi; i < block->size(); ++i) {
      const Instruction* inst = block->instruction(i);
      const std::int32_t* ops = slots.operandSlots(inst);
      const std::size_t slot = static_cast<std::size_t>(inst->slot());
      ++result.instructionsExecuted;
      CGPA_ASSERT(result.instructionsExecuted <= maxSteps,
                  "interpreter exceeded step limit in @" + function.name());

      std::uint64_t memAddr = 0;
      switch (inst->opcode()) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::SDiv:
      case Opcode::SRem:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::LShr:
      case Opcode::AShr:
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv:
      case Opcode::ICmp:
      case Opcode::FCmp:
        regs[slot] =
            evalBinary(inst->opcode(), inst->operand(0)->type(),
                       inst->cmpPred(), regs[ops[0]], regs[ops[1]]);
        break;
      case Opcode::Trunc:
      case Opcode::SExt:
      case Opcode::ZExt:
      case Opcode::SIToFP:
      case Opcode::FPToSI:
      case Opcode::FPExt:
      case Opcode::FPTrunc:
      case Opcode::PtrToInt:
      case Opcode::IntToPtr:
        regs[slot] = evalCast(inst->opcode(), inst->operand(0)->type(),
                              inst->type(), regs[ops[0]]);
        break;
      case Opcode::Gep: {
        const bool hasIndex = inst->numOperands() == 2;
        regs[slot] = evalGep(regs[ops[0]], hasIndex ? regs[ops[1]] : 0,
                             hasIndex, inst->gepScale(), inst->gepOffset());
        break;
      }
      case Opcode::Load:
        memAddr = regs[ops[0]];
        regs[slot] = memory_->load(inst->type(), memAddr);
        break;
      case Opcode::Store:
        memAddr = regs[ops[1]];
        memory_->store(inst->operand(0)->type(), memAddr, regs[ops[0]]);
        break;
      case Opcode::Select:
        regs[slot] = regs[ops[0]] != 0 ? regs[ops[1]] : regs[ops[2]];
        break;
      case Opcode::Call: {
        std::vector<std::uint64_t> callArgs;
        callArgs.reserve(static_cast<std::size_t>(inst->numOperands()));
        for (int a = 0; a < inst->numOperands(); ++a)
          callArgs.push_back(regs[ops[a]]);
        regs[slot] =
            evalIntrinsic(inst->intrinsic(), inst->type(), callArgs.data(),
                          static_cast<int>(callArgs.size()));
        break;
      }
      case Opcode::Br:
        if (observer_ != nullptr)
          observer_->onExec(*inst, 0);
        prevBlock = block;
        block = inst->successors()[0];
        goto nextBlock;
      case Opcode::CondBr:
        if (observer_ != nullptr)
          observer_->onExec(*inst, 0);
        prevBlock = block;
        block = regs[ops[0]] != 0 ? inst->successors()[0]
                                  : inst->successors()[1];
        goto nextBlock;
      case Opcode::Ret:
        if (observer_ != nullptr)
          observer_->onExec(*inst, 0);
        if (inst->numOperands() == 1)
          result.returnValue = regs[ops[0]];
        return result;
      case Opcode::Produce:
        CGPA_ASSERT(handler_ != nullptr, "produce without handler");
        handler_->produce(*inst,
                          patternToInt(inst->operand(0)->type(), regs[ops[0]]),
                          regs[ops[1]]);
        break;
      case Opcode::ProduceBroadcast:
        CGPA_ASSERT(handler_ != nullptr, "produce_broadcast without handler");
        handler_->produceBroadcast(*inst, regs[ops[0]]);
        break;
      case Opcode::Consume:
        CGPA_ASSERT(handler_ != nullptr, "consume without handler");
        regs[slot] = canonicalize(
            inst->type(),
            handler_->consume(*inst, patternToInt(inst->operand(0)->type(),
                                                  regs[ops[0]])));
        break;
      case Opcode::ParallelFork: {
        CGPA_ASSERT(handler_ != nullptr, "parallel_fork without handler");
        std::vector<std::uint64_t> forkArgs;
        forkArgs.reserve(static_cast<std::size_t>(inst->numOperands()));
        for (int a = 0; a < inst->numOperands(); ++a)
          forkArgs.push_back(regs[ops[a]]);
        handler_->parallelFork(*inst, forkArgs);
        break;
      }
      case Opcode::ParallelJoin:
        CGPA_ASSERT(handler_ != nullptr, "parallel_join without handler");
        handler_->parallelJoin(*inst);
        break;
      case Opcode::StoreLiveout:
        CGPA_ASSERT(liveouts_ != nullptr, "store_liveout without liveout file");
        (*liveouts_)[{inst->loopId(), inst->liveoutId()}] = regs[ops[0]];
        break;
      case Opcode::RetrieveLiveout: {
        CGPA_ASSERT(liveouts_ != nullptr,
                    "retrieve_liveout without liveout file");
        const auto it = liveouts_->find({inst->loopId(), inst->liveoutId()});
        CGPA_ASSERT(it != liveouts_->end(), "retrieve of unset liveout");
        regs[slot] = canonicalize(inst->type(), it->second);
        break;
      }
      case Opcode::Phi:
        CGPA_UNREACHABLE("phi past block head");
      }

      if (observer_ != nullptr)
        observer_->onExec(*inst, memAddr);
    }
    CGPA_UNREACHABLE("block fell through without terminator");

  nextBlock:;
  }
}

} // namespace cgpa::interp
