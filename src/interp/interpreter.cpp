#include "interp/interpreter.hpp"

#include <vector>

#include "interp/eval.hpp"
#include "support/diag.hpp"

namespace cgpa::interp {

using ir::Instruction;
using ir::Opcode;

InterpResult Interpreter::run(const ir::Function& function,
                              std::span<const std::uint64_t> args,
                              std::uint64_t maxSteps) {
  CGPA_ASSERT(static_cast<int>(args.size()) == function.numArguments(),
              "argument count mismatch calling @" + function.name());

  std::unordered_map<const ir::Value*, std::uint64_t> registers;
  registers.reserve(static_cast<std::size_t>(function.instructionCount()));
  for (int i = 0; i < function.numArguments(); ++i)
    registers[function.argument(i)] =
        canonicalize(function.argument(i)->type(), args[static_cast<std::size_t>(i)]);

  auto valueOf = [&](const ir::Value* value) -> std::uint64_t {
    if (const ir::Constant* constant = ir::asConstant(value))
      return constantPattern(*constant);
    const auto it = registers.find(value);
    CGPA_ASSERT(it != registers.end(),
                "read of undefined value %" + value->name());
    return it->second;
  };

  InterpResult result;
  const ir::BasicBlock* block = function.entry();
  const ir::BasicBlock* prevBlock = nullptr;
  CGPA_ASSERT(block != nullptr, "function has no entry block");

  while (true) {
    if (observer_ != nullptr)
      observer_->onBlockEnter(*block);

    // Phis evaluate atomically against the predecessor edge.
    std::vector<std::pair<const ir::Value*, std::uint64_t>> phiValues;
    int firstNonPhi = 0;
    while (firstNonPhi < block->size() &&
           block->instruction(firstNonPhi)->opcode() == Opcode::Phi) {
      const Instruction* phi = block->instruction(firstNonPhi);
      CGPA_ASSERT(prevBlock != nullptr, "phi in entry block");
      phiValues.emplace_back(phi, valueOf(phi->incomingValueFor(prevBlock)));
      ++firstNonPhi;
    }
    for (const auto& [phi, value] : phiValues) {
      registers[phi] = value;
      ++result.instructionsExecuted;
    }

    for (int i = firstNonPhi; i < block->size(); ++i) {
      const Instruction* inst = block->instruction(i);
      ++result.instructionsExecuted;
      CGPA_ASSERT(result.instructionsExecuted <= maxSteps,
                  "interpreter exceeded step limit in @" + function.name());

      std::uint64_t memAddr = 0;
      switch (inst->opcode()) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::SDiv:
      case Opcode::SRem:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::LShr:
      case Opcode::AShr:
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv:
      case Opcode::ICmp:
      case Opcode::FCmp:
        registers[inst] =
            evalBinary(inst->opcode(), inst->operand(0)->type(),
                       inst->cmpPred(), valueOf(inst->operand(0)),
                       valueOf(inst->operand(1)));
        break;
      case Opcode::Trunc:
      case Opcode::SExt:
      case Opcode::ZExt:
      case Opcode::SIToFP:
      case Opcode::FPToSI:
      case Opcode::FPExt:
      case Opcode::FPTrunc:
      case Opcode::PtrToInt:
      case Opcode::IntToPtr:
        registers[inst] = evalCast(inst->opcode(), inst->operand(0)->type(),
                                   inst->type(), valueOf(inst->operand(0)));
        break;
      case Opcode::Gep: {
        const bool hasIndex = inst->numOperands() == 2;
        registers[inst] =
            evalGep(valueOf(inst->operand(0)),
                    hasIndex ? valueOf(inst->operand(1)) : 0, hasIndex,
                    inst->gepScale(), inst->gepOffset());
        break;
      }
      case Opcode::Load:
        memAddr = valueOf(inst->operand(0));
        registers[inst] = memory_->load(inst->type(), memAddr);
        break;
      case Opcode::Store:
        memAddr = valueOf(inst->operand(1));
        memory_->store(inst->operand(0)->type(), memAddr,
                       valueOf(inst->operand(0)));
        break;
      case Opcode::Select:
        registers[inst] = valueOf(inst->operand(0)) != 0
                              ? valueOf(inst->operand(1))
                              : valueOf(inst->operand(2));
        break;
      case Opcode::Call: {
        std::vector<std::uint64_t> callArgs;
        callArgs.reserve(static_cast<std::size_t>(inst->numOperands()));
        for (ir::Value* operand : inst->operands())
          callArgs.push_back(valueOf(operand));
        registers[inst] =
            evalIntrinsic(inst->intrinsic(), inst->type(), callArgs.data(),
                          static_cast<int>(callArgs.size()));
        break;
      }
      case Opcode::Br:
        if (observer_ != nullptr)
          observer_->onExec(*inst, 0);
        prevBlock = block;
        block = inst->successors()[0];
        goto nextBlock;
      case Opcode::CondBr:
        if (observer_ != nullptr)
          observer_->onExec(*inst, 0);
        prevBlock = block;
        block = valueOf(inst->operand(0)) != 0 ? inst->successors()[0]
                                               : inst->successors()[1];
        goto nextBlock;
      case Opcode::Ret:
        if (observer_ != nullptr)
          observer_->onExec(*inst, 0);
        if (inst->numOperands() == 1)
          result.returnValue = valueOf(inst->operand(0));
        return result;
      case Opcode::Produce:
        CGPA_ASSERT(handler_ != nullptr, "produce without handler");
        handler_->produce(*inst,
                          patternToInt(inst->operand(0)->type(),
                                       valueOf(inst->operand(0))),
                          valueOf(inst->operand(1)));
        break;
      case Opcode::ProduceBroadcast:
        CGPA_ASSERT(handler_ != nullptr, "produce_broadcast without handler");
        handler_->produceBroadcast(*inst, valueOf(inst->operand(0)));
        break;
      case Opcode::Consume:
        CGPA_ASSERT(handler_ != nullptr, "consume without handler");
        registers[inst] = canonicalize(
            inst->type(),
            handler_->consume(*inst, patternToInt(inst->operand(0)->type(),
                                                  valueOf(inst->operand(0)))));
        break;
      case Opcode::ParallelFork: {
        CGPA_ASSERT(handler_ != nullptr, "parallel_fork without handler");
        std::vector<std::uint64_t> forkArgs;
        for (ir::Value* operand : inst->operands())
          forkArgs.push_back(valueOf(operand));
        handler_->parallelFork(*inst, forkArgs);
        break;
      }
      case Opcode::ParallelJoin:
        CGPA_ASSERT(handler_ != nullptr, "parallel_join without handler");
        handler_->parallelJoin(*inst);
        break;
      case Opcode::StoreLiveout:
        CGPA_ASSERT(liveouts_ != nullptr, "store_liveout without liveout file");
        (*liveouts_)[{inst->loopId(), inst->liveoutId()}] =
            valueOf(inst->operand(0));
        break;
      case Opcode::RetrieveLiveout: {
        CGPA_ASSERT(liveouts_ != nullptr,
                    "retrieve_liveout without liveout file");
        const auto it = liveouts_->find({inst->loopId(), inst->liveoutId()});
        CGPA_ASSERT(it != liveouts_->end(), "retrieve of unset liveout");
        registers[inst] = canonicalize(inst->type(), it->second);
        break;
      }
      case Opcode::Phi:
        CGPA_UNREACHABLE("phi past block head");
      }

      if (observer_ != nullptr)
        observer_->onExec(*inst, memAddr);
    }
    CGPA_UNREACHABLE("block fell through without terminator");

  nextBlock:;
  }
}

} // namespace cgpa::interp
