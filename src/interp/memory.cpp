#include "interp/memory.hpp"

#include <cstring>

#include "support/diag.hpp"

namespace cgpa::interp {

namespace {

// Pointers occupy 4 bytes in target memory (32-bit system), even though the
// simulator carries them in 64-bit registers.
constexpr std::uint64_t kNullGuard = 64; // First 64 bytes stay unmapped-ish.

} // namespace

Memory::Memory(std::uint64_t sizeBytes)
    : bytes_(sizeBytes, 0), allocTop_(kNullGuard) {
  CGPA_ASSERT(sizeBytes > kNullGuard, "memory too small");
}

std::uint64_t Memory::allocate(std::uint64_t size, std::uint64_t align) {
  CGPA_ASSERT(align != 0 && (align & (align - 1)) == 0,
              "alignment must be a power of two");
  const std::uint64_t base = (allocTop_ + align - 1) & ~(align - 1);
  CGPA_ASSERT(base + size <= bytes_.size(), "out of simulated memory");
  allocTop_ = base + size;
  return base;
}

void Memory::checkRange(std::uint64_t addr, std::uint64_t size) const {
  CGPA_ASSERT(addr >= kNullGuard && addr + size <= bytes_.size(),
              "memory access out of range at address " + std::to_string(addr));
}

std::uint8_t Memory::readByte(std::uint64_t addr) const {
  checkRange(addr, 1);
  return bytes_[addr];
}

void Memory::writeByte(std::uint64_t addr, std::uint8_t value) {
  checkRange(addr, 1);
  bytes_[addr] = value;
}

std::uint64_t Memory::load(ir::Type type, std::uint64_t addr) const {
  switch (type) {
  case ir::Type::I1:
    return readByte(addr) != 0 ? 1 : 0;
  case ir::Type::I32:
    return static_cast<std::uint64_t>(static_cast<std::int64_t>(readI32(addr)));
  case ir::Type::I64:
    return static_cast<std::uint64_t>(readI64(addr));
  case ir::Type::F32: {
    float value = readF32(addr);
    std::uint32_t bits;
    std::memcpy(&bits, &value, sizeof bits);
    return bits;
  }
  case ir::Type::F64: {
    double value = readF64(addr);
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof bits);
    return bits;
  }
  case ir::Type::Ptr:
    return readPtr(addr);
  case ir::Type::Void:
    break;
  }
  CGPA_UNREACHABLE("bad load type");
}

void Memory::store(ir::Type type, std::uint64_t addr, std::uint64_t pattern) {
  switch (type) {
  case ir::Type::I1:
    writeByte(addr, pattern != 0 ? 1 : 0);
    return;
  case ir::Type::I32:
    writeI32(addr, static_cast<std::int32_t>(pattern));
    return;
  case ir::Type::I64:
    writeI64(addr, static_cast<std::int64_t>(pattern));
    return;
  case ir::Type::F32: {
    const std::uint32_t bits = static_cast<std::uint32_t>(pattern);
    float value;
    std::memcpy(&value, &bits, sizeof value);
    writeF32(addr, value);
    return;
  }
  case ir::Type::F64: {
    double value;
    std::memcpy(&value, &pattern, sizeof value);
    writeF64(addr, value);
    return;
  }
  case ir::Type::Ptr:
    writePtr(addr, pattern);
    return;
  case ir::Type::Void:
    break;
  }
  CGPA_UNREACHABLE("bad store type");
}

std::int32_t Memory::readI32(std::uint64_t addr) const {
  checkRange(addr, 4);
  std::int32_t value;
  std::memcpy(&value, bytes_.data() + addr, sizeof value);
  return value;
}

void Memory::writeI32(std::uint64_t addr, std::int32_t value) {
  checkRange(addr, 4);
  std::memcpy(bytes_.data() + addr, &value, sizeof value);
}

std::int64_t Memory::readI64(std::uint64_t addr) const {
  checkRange(addr, 8);
  std::int64_t value;
  std::memcpy(&value, bytes_.data() + addr, sizeof value);
  return value;
}

void Memory::writeI64(std::uint64_t addr, std::int64_t value) {
  checkRange(addr, 8);
  std::memcpy(bytes_.data() + addr, &value, sizeof value);
}

float Memory::readF32(std::uint64_t addr) const {
  checkRange(addr, 4);
  float value;
  std::memcpy(&value, bytes_.data() + addr, sizeof value);
  return value;
}

void Memory::writeF32(std::uint64_t addr, float value) {
  checkRange(addr, 4);
  std::memcpy(bytes_.data() + addr, &value, sizeof value);
}

double Memory::readF64(std::uint64_t addr) const {
  checkRange(addr, 8);
  double value;
  std::memcpy(&value, bytes_.data() + addr, sizeof value);
  return value;
}

void Memory::writeF64(std::uint64_t addr, double value) {
  checkRange(addr, 8);
  std::memcpy(bytes_.data() + addr, &value, sizeof value);
}

std::uint64_t Memory::readPtr(std::uint64_t addr) const {
  checkRange(addr, 4);
  std::uint32_t value;
  std::memcpy(&value, bytes_.data() + addr, sizeof value);
  return value;
}

void Memory::writePtr(std::uint64_t addr, std::uint64_t value) {
  checkRange(addr, 4);
  const std::uint32_t narrow = static_cast<std::uint32_t>(value);
  CGPA_ASSERT(narrow == value, "pointer does not fit in 32 bits");
  std::memcpy(bytes_.data() + addr, &narrow, sizeof narrow);
}

} // namespace cgpa::interp
