#include "interp/memory.hpp"

#include "support/diag.hpp"

namespace cgpa::interp {

Memory::Memory(std::uint64_t sizeBytes)
    : bytes_(sizeBytes, 0), allocTop_(kNullGuard) {
  CGPA_ASSERT(sizeBytes > kNullGuard, "memory too small");
}

std::uint64_t Memory::allocate(std::uint64_t size, std::uint64_t align) {
  CGPA_ASSERT(align != 0 && (align & (align - 1)) == 0,
              "alignment must be a power of two");
  const std::uint64_t base = (allocTop_ + align - 1) & ~(align - 1);
  CGPA_ASSERT(base + size <= bytes_.size(), "out of simulated memory");
  allocTop_ = base + size;
  return base;
}

} // namespace cgpa::interp
