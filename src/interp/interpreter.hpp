// Reference interpreter for the CGPA IR.
//
// Serves three roles:
//  1. Golden functional model: a kernel run here must produce the same
//     memory state as the native C++ reference, and later the same state as
//     the pipelined accelerator simulation.
//  2. Profiling substrate: an ExecObserver sees every executed instruction
//     (hotspot identification, MIPS-core timing model).
//  3. Building block for the functional pipeline executor, which runs the
//     transformed tasks with unbounded queues via a PrimitiveHandler.
#pragma once

#include <cstdint>
#include <map>
#include <span>

#include "interp/memory.hpp"
#include "ir/module.hpp"

namespace cgpa::interp {

/// Observes each executed instruction. `memAddr` is the effective address
/// for loads/stores and 0 otherwise.
class ExecObserver {
public:
  virtual ~ExecObserver() = default;
  virtual void onExec(const ir::Instruction& inst, std::uint64_t memAddr) = 0;
  virtual void onBlockEnter(const ir::BasicBlock& block) { (void)block; }
};

/// Supplies semantics for the CGPA communication/invocation primitives.
/// The plain interpreter aborts on them unless a handler is installed.
class PrimitiveHandler {
public:
  virtual ~PrimitiveHandler() = default;
  virtual void produce(const ir::Instruction& inst, std::int64_t lane,
                       std::uint64_t value) = 0;
  virtual void produceBroadcast(const ir::Instruction& inst,
                                std::uint64_t value) = 0;
  virtual std::uint64_t consume(const ir::Instruction& inst,
                                std::int64_t lane) = 0;
  virtual void parallelFork(const ir::Instruction& inst,
                            std::span<const std::uint64_t> args) = 0;
  virtual void parallelJoin(const ir::Instruction& inst) = 0;
};

/// Live-out register file shared between tasks and the wrapper
/// (paper Table 1, class 3 primitives). Keyed by (loopId, liveoutId).
using LiveoutFile = std::map<std::pair<int, int>, std::uint64_t>;

struct InterpResult {
  std::uint64_t returnValue = 0;
  std::uint64_t instructionsExecuted = 0;
};

class Interpreter {
public:
  explicit Interpreter(Memory& memory) : memory_(&memory) {}

  void setObserver(ExecObserver* observer) { observer_ = observer; }
  void setPrimitiveHandler(PrimitiveHandler* handler) { handler_ = handler; }
  void setLiveoutFile(LiveoutFile* liveouts) { liveouts_ = liveouts; }

  /// Execute `function` with `args` (canonical bit patterns). Aborts after
  /// `maxSteps` executed instructions (runaway-loop guard).
  InterpResult run(const ir::Function& function,
                   std::span<const std::uint64_t> args,
                   std::uint64_t maxSteps = 2'000'000'000ULL);

private:
  Memory* memory_;
  ExecObserver* observer_ = nullptr;
  PrimitiveHandler* handler_ = nullptr;
  LiveoutFile* liveouts_ = nullptr;
};

} // namespace cgpa::interp
