#include "interp/eval.hpp"

#include <cmath>

namespace cgpa::interp {

using ir::Type;

std::uint64_t constantPattern(const ir::Constant& constant) {
  if (isFloatType(constant.type()))
    return doubleToPattern(constant.type(), constant.floatValue());
  return canonicalize(constant.type(),
                      static_cast<std::uint64_t>(constant.intValue()));
}

std::uint64_t evalIntrinsic(ir::Intrinsic which, Type type,
                            const std::uint64_t* args, int numArgs) {
  switch (which) {
  case ir::Intrinsic::Sqrt:
    CGPA_ASSERT(numArgs == 1, "sqrt takes one argument");
    return doubleToPattern(type, std::sqrt(patternToDouble(type, args[0])));
  case ir::Intrinsic::FAbs:
    CGPA_ASSERT(numArgs == 1, "fabs takes one argument");
    return doubleToPattern(type, std::fabs(patternToDouble(type, args[0])));
  case ir::Intrinsic::SMin: {
    CGPA_ASSERT(numArgs == 2, "smin takes two arguments");
    const std::int64_t a = patternToInt(type, args[0]);
    const std::int64_t b = patternToInt(type, args[1]);
    return canonicalize(type, static_cast<std::uint64_t>(a < b ? a : b));
  }
  case ir::Intrinsic::SMax: {
    CGPA_ASSERT(numArgs == 2, "smax takes two arguments");
    const std::int64_t a = patternToInt(type, args[0]);
    const std::int64_t b = patternToInt(type, args[1]);
    return canonicalize(type, static_cast<std::uint64_t>(a > b ? a : b));
  }
  }
  CGPA_UNREACHABLE("bad intrinsic");
}

} // namespace cgpa::interp
