#include "interp/eval.hpp"

#include <cmath>
#include <cstring>

#include "support/diag.hpp"

namespace cgpa::interp {

using ir::CmpPred;
using ir::Opcode;
using ir::Type;

std::uint64_t canonicalize(Type type, std::uint64_t pattern) {
  switch (type) {
  case Type::I1:
    return pattern & 1;
  case Type::I32:
    return static_cast<std::uint64_t>(
        static_cast<std::int64_t>(static_cast<std::int32_t>(pattern)));
  case Type::F32:
  case Type::Ptr:
    return pattern & 0xffffffffULL;
  default:
    return pattern;
  }
}

std::uint64_t constantPattern(const ir::Constant& constant) {
  if (isFloatType(constant.type()))
    return doubleToPattern(constant.type(), constant.floatValue());
  return canonicalize(constant.type(),
                      static_cast<std::uint64_t>(constant.intValue()));
}

double patternToDouble(Type type, std::uint64_t pattern) {
  if (type == Type::F32) {
    const std::uint32_t bits = static_cast<std::uint32_t>(pattern);
    float value;
    std::memcpy(&value, &bits, sizeof value);
    return value;
  }
  CGPA_ASSERT(type == Type::F64, "patternToDouble on non-float");
  double value;
  std::memcpy(&value, &pattern, sizeof value);
  return value;
}

std::uint64_t doubleToPattern(Type type, double value) {
  if (type == Type::F32) {
    const float narrow = static_cast<float>(value);
    std::uint32_t bits;
    std::memcpy(&bits, &narrow, sizeof bits);
    return bits;
  }
  CGPA_ASSERT(type == Type::F64, "doubleToPattern on non-float");
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  return bits;
}

std::int64_t patternToInt(Type type, std::uint64_t pattern) {
  return static_cast<std::int64_t>(canonicalize(type, pattern));
}

namespace {

std::uint64_t evalCmp(Opcode op, Type operandType, CmpPred pred,
                      std::uint64_t lhs, std::uint64_t rhs) {
  if (op == Opcode::FCmp) {
    const double a = patternToDouble(operandType, lhs);
    const double b = patternToDouble(operandType, rhs);
    switch (pred) {
    case CmpPred::OEQ:
      return a == b;
    case CmpPred::ONE:
      return a != b;
    case CmpPred::OLT:
      return a < b;
    case CmpPred::OLE:
      return a <= b;
    case CmpPred::OGT:
      return a > b;
    case CmpPred::OGE:
      return a >= b;
    default:
      CGPA_UNREACHABLE("integer predicate on fcmp");
    }
  }
  // Pointers compare as unsigned 32-bit; the canonical form already
  // zero-extends them, and signed comparison of zero-extended values gives
  // the right answer.
  const std::int64_t a = static_cast<std::int64_t>(lhs);
  const std::int64_t b = static_cast<std::int64_t>(rhs);
  switch (pred) {
  case CmpPred::EQ:
    return a == b;
  case CmpPred::NE:
    return a != b;
  case CmpPred::SLT:
    return a < b;
  case CmpPred::SLE:
    return a <= b;
  case CmpPred::SGT:
    return a > b;
  case CmpPred::SGE:
    return a >= b;
  default:
    CGPA_UNREACHABLE("float predicate on icmp");
  }
}

} // namespace

std::uint64_t evalBinary(Opcode op, Type operandType, CmpPred pred,
                         std::uint64_t lhs, std::uint64_t rhs) {
  switch (op) {
  case Opcode::ICmp:
  case Opcode::FCmp:
    return evalCmp(op, operandType, pred, lhs, rhs);
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv: {
    const double a = patternToDouble(operandType, lhs);
    const double b = patternToDouble(operandType, rhs);
    double result = 0.0;
    switch (op) {
    case Opcode::FAdd:
      result = a + b;
      break;
    case Opcode::FSub:
      result = a - b;
      break;
    case Opcode::FMul:
      result = a * b;
      break;
    case Opcode::FDiv:
      result = a / b;
      break;
    default:
      break;
    }
    // F32 ops round through float, matching hardware single-precision
    // datapaths.
    if (operandType == Type::F32)
      result = static_cast<float>(result);
    return doubleToPattern(operandType, result);
  }
  default:
    break;
  }

  const std::int64_t a = static_cast<std::int64_t>(lhs);
  const std::int64_t b = static_cast<std::int64_t>(rhs);
  std::int64_t result = 0;
  switch (op) {
  case Opcode::Add:
    result = a + b;
    break;
  case Opcode::Sub:
    result = a - b;
    break;
  case Opcode::Mul:
    result = a * b;
    break;
  case Opcode::SDiv:
    CGPA_ASSERT(b != 0, "sdiv by zero");
    result = a / b;
    break;
  case Opcode::SRem:
    CGPA_ASSERT(b != 0, "srem by zero");
    result = a % b;
    break;
  case Opcode::And:
    result = a & b;
    break;
  case Opcode::Or:
    result = a | b;
    break;
  case Opcode::Xor:
    result = a ^ b;
    break;
  case Opcode::Shl:
    result = static_cast<std::int64_t>(static_cast<std::uint64_t>(a)
                                       << (b & 63));
    break;
  case Opcode::LShr: {
    // Logical shift operates on the value's natural width.
    std::uint64_t ua =
        operandType == Type::I32
            ? static_cast<std::uint64_t>(static_cast<std::uint32_t>(a))
            : static_cast<std::uint64_t>(a);
    result = static_cast<std::int64_t>(ua >> (b & 63));
    break;
  }
  case Opcode::AShr:
    result = a >> (b & 63);
    break;
  default:
    CGPA_UNREACHABLE("evalBinary on non-binary opcode");
  }
  return canonicalize(operandType, static_cast<std::uint64_t>(result));
}

std::uint64_t evalCast(Opcode op, Type fromType, Type toType,
                       std::uint64_t value) {
  switch (op) {
  case Opcode::Trunc:
  case Opcode::SExt:
  case Opcode::ZExt:
  case Opcode::PtrToInt:
  case Opcode::IntToPtr: {
    std::uint64_t raw = value;
    if (op == Opcode::ZExt && fromType == Type::I32)
      raw = value & 0xffffffffULL;
    return canonicalize(toType, raw);
  }
  case Opcode::SIToFP:
    return doubleToPattern(
        toType, static_cast<double>(patternToInt(fromType, value)));
  case Opcode::FPToSI:
    return canonicalize(toType, static_cast<std::uint64_t>(static_cast<std::int64_t>(
                                    patternToDouble(fromType, value))));
  case Opcode::FPExt:
  case Opcode::FPTrunc:
    return doubleToPattern(toType, patternToDouble(fromType, value));
  default:
    CGPA_UNREACHABLE("evalCast on non-cast opcode");
  }
}

std::uint64_t evalIntrinsic(ir::Intrinsic which, Type type,
                            const std::uint64_t* args, int numArgs) {
  switch (which) {
  case ir::Intrinsic::Sqrt:
    CGPA_ASSERT(numArgs == 1, "sqrt takes one argument");
    return doubleToPattern(type, std::sqrt(patternToDouble(type, args[0])));
  case ir::Intrinsic::FAbs:
    CGPA_ASSERT(numArgs == 1, "fabs takes one argument");
    return doubleToPattern(type, std::fabs(patternToDouble(type, args[0])));
  case ir::Intrinsic::SMin: {
    CGPA_ASSERT(numArgs == 2, "smin takes two arguments");
    const std::int64_t a = patternToInt(type, args[0]);
    const std::int64_t b = patternToInt(type, args[1]);
    return canonicalize(type, static_cast<std::uint64_t>(a < b ? a : b));
  }
  case ir::Intrinsic::SMax: {
    CGPA_ASSERT(numArgs == 2, "smax takes two arguments");
    const std::int64_t a = patternToInt(type, args[0]);
    const std::int64_t b = patternToInt(type, args[1]);
    return canonicalize(type, static_cast<std::uint64_t>(a > b ? a : b));
  }
  }
  CGPA_UNREACHABLE("bad intrinsic");
}

std::uint64_t evalGep(std::uint64_t base, std::uint64_t index, bool hasIndex,
                      std::int64_t scale, std::int64_t offset) {
  std::int64_t addr = static_cast<std::int64_t>(base) + offset;
  if (hasIndex)
    addr += static_cast<std::int64_t>(index) * scale;
  return canonicalize(Type::Ptr, static_cast<std::uint64_t>(addr));
}

} // namespace cgpa::interp
