// Flat byte-addressable memory shared by the interpreter, the workload
// generators, and the cycle simulator. Address 0 is reserved as the null
// pointer; a bump allocator hands out aligned blocks for workload layout.
//
// The typed accessors are defined inline: every simulated load/store and
// every interpreted memory instruction funnels through them, so they must
// compile down to a bounds check plus a memcpy in the caller.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "ir/type.hpp"
#include "support/diag.hpp"

namespace cgpa::interp {

class Memory {
public:
  /// Create a memory of `sizeBytes` bytes, zero-initialized.
  explicit Memory(std::uint64_t sizeBytes);

  std::uint64_t size() const { return bytes_.size(); }

  /// Bump-allocate `size` bytes aligned to `align` (power of two).
  /// Returns the base address; aborts if memory is exhausted.
  std::uint64_t allocate(std::uint64_t size, std::uint64_t align = 8);

  /// Raw byte accessors (bounds-checked).
  std::uint8_t readByte(std::uint64_t addr) const {
    checkRange(addr, 1);
    return bytes_[addr];
  }
  void writeByte(std::uint64_t addr, std::uint8_t value) {
    checkRange(addr, 1);
    bytes_[addr] = value;
  }

  /// Whole backing store (for memory-image comparisons in tests/benches).
  const std::vector<std::uint8_t>& raw() const { return bytes_; }

  /// Load/store a value of IR type `type` at `addr`. The returned/stored
  /// pattern uses the canonical register representation: integers
  /// sign-extended to 64 bits, F32 as the float's bit pattern in the low 32
  /// bits, F64 as the double's bit pattern, Ptr zero-extended.
  std::uint64_t load(ir::Type type, std::uint64_t addr) const {
    switch (type) {
    case ir::Type::I1:
      return readByte(addr) != 0 ? 1 : 0;
    case ir::Type::I32:
      return static_cast<std::uint64_t>(
          static_cast<std::int64_t>(readI32(addr)));
    case ir::Type::I64:
      return static_cast<std::uint64_t>(readI64(addr));
    case ir::Type::F32: {
      float value = readF32(addr);
      std::uint32_t bits;
      std::memcpy(&bits, &value, sizeof bits);
      return bits;
    }
    case ir::Type::F64: {
      double value = readF64(addr);
      std::uint64_t bits;
      std::memcpy(&bits, &value, sizeof bits);
      return bits;
    }
    case ir::Type::Ptr:
      return readPtr(addr);
    case ir::Type::Void:
      break;
    }
    CGPA_UNREACHABLE("bad load type");
  }
  void store(ir::Type type, std::uint64_t addr, std::uint64_t pattern) {
    switch (type) {
    case ir::Type::I1:
      writeByte(addr, pattern != 0 ? 1 : 0);
      return;
    case ir::Type::I32:
      writeI32(addr, static_cast<std::int32_t>(pattern));
      return;
    case ir::Type::I64:
      writeI64(addr, static_cast<std::int64_t>(pattern));
      return;
    case ir::Type::F32: {
      const std::uint32_t bits = static_cast<std::uint32_t>(pattern);
      float value;
      std::memcpy(&value, &bits, sizeof value);
      writeF32(addr, value);
      return;
    }
    case ir::Type::F64: {
      double value;
      std::memcpy(&value, &pattern, sizeof value);
      writeF64(addr, value);
      return;
    }
    case ir::Type::Ptr:
      writePtr(addr, pattern);
      return;
    case ir::Type::Void:
      break;
    }
    CGPA_UNREACHABLE("bad store type");
  }

  // Typed convenience accessors for workload generators and checks.
  std::int32_t readI32(std::uint64_t addr) const {
    checkRange(addr, 4);
    std::int32_t value;
    std::memcpy(&value, bytes_.data() + addr, sizeof value);
    return value;
  }
  void writeI32(std::uint64_t addr, std::int32_t value) {
    checkRange(addr, 4);
    std::memcpy(bytes_.data() + addr, &value, sizeof value);
  }
  std::int64_t readI64(std::uint64_t addr) const {
    checkRange(addr, 8);
    std::int64_t value;
    std::memcpy(&value, bytes_.data() + addr, sizeof value);
    return value;
  }
  void writeI64(std::uint64_t addr, std::int64_t value) {
    checkRange(addr, 8);
    std::memcpy(bytes_.data() + addr, &value, sizeof value);
  }
  float readF32(std::uint64_t addr) const {
    checkRange(addr, 4);
    float value;
    std::memcpy(&value, bytes_.data() + addr, sizeof value);
    return value;
  }
  void writeF32(std::uint64_t addr, float value) {
    checkRange(addr, 4);
    std::memcpy(bytes_.data() + addr, &value, sizeof value);
  }
  double readF64(std::uint64_t addr) const {
    checkRange(addr, 8);
    double value;
    std::memcpy(&value, bytes_.data() + addr, sizeof value);
    return value;
  }
  void writeF64(std::uint64_t addr, double value) {
    checkRange(addr, 8);
    std::memcpy(bytes_.data() + addr, &value, sizeof value);
  }
  std::uint64_t readPtr(std::uint64_t addr) const {
    checkRange(addr, 4);
    std::uint32_t value;
    std::memcpy(&value, bytes_.data() + addr, sizeof value);
    return value;
  }
  void writePtr(std::uint64_t addr, std::uint64_t value) {
    checkRange(addr, 4);
    const std::uint32_t narrow = static_cast<std::uint32_t>(value);
    CGPA_ASSERT(narrow == value, "pointer does not fit in 32 bits");
    std::memcpy(bytes_.data() + addr, &narrow, sizeof narrow);
  }

private:
  // Pointers occupy 4 bytes in target memory (32-bit system), even though
  // the simulator carries them in 64-bit registers. The first 64 bytes
  // stay unmapped-ish so address 0 reads as a fault, not as data.
  static constexpr std::uint64_t kNullGuard = 64;

  void checkRange(std::uint64_t addr, std::uint64_t size) const {
    CGPA_ASSERT(addr >= kNullGuard && addr + size <= bytes_.size(),
                "memory access out of range at address " +
                    std::to_string(addr));
  }

  std::vector<std::uint8_t> bytes_;
  std::uint64_t allocTop_;
};

} // namespace cgpa::interp
