// Flat byte-addressable memory shared by the interpreter, the workload
// generators, and the cycle simulator. Address 0 is reserved as the null
// pointer; a bump allocator hands out aligned blocks for workload layout.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/type.hpp"

namespace cgpa::interp {

class Memory {
public:
  /// Create a memory of `sizeBytes` bytes, zero-initialized.
  explicit Memory(std::uint64_t sizeBytes);

  std::uint64_t size() const { return bytes_.size(); }

  /// Bump-allocate `size` bytes aligned to `align` (power of two).
  /// Returns the base address; aborts if memory is exhausted.
  std::uint64_t allocate(std::uint64_t size, std::uint64_t align = 8);

  /// Raw byte accessors (bounds-checked).
  std::uint8_t readByte(std::uint64_t addr) const;
  void writeByte(std::uint64_t addr, std::uint8_t value);

  /// Whole backing store (for memory-image comparisons in tests/benches).
  const std::vector<std::uint8_t>& raw() const { return bytes_; }

  /// Load/store a value of IR type `type` at `addr`. The returned/stored
  /// pattern uses the canonical register representation: integers
  /// sign-extended to 64 bits, F32 as the float's bit pattern in the low 32
  /// bits, F64 as the double's bit pattern, Ptr zero-extended.
  std::uint64_t load(ir::Type type, std::uint64_t addr) const;
  void store(ir::Type type, std::uint64_t addr, std::uint64_t pattern);

  // Typed convenience accessors for workload generators and checks.
  std::int32_t readI32(std::uint64_t addr) const;
  void writeI32(std::uint64_t addr, std::int32_t value);
  std::int64_t readI64(std::uint64_t addr) const;
  void writeI64(std::uint64_t addr, std::int64_t value);
  float readF32(std::uint64_t addr) const;
  void writeF32(std::uint64_t addr, float value);
  double readF64(std::uint64_t addr) const;
  void writeF64(std::uint64_t addr, double value);
  std::uint64_t readPtr(std::uint64_t addr) const;
  void writePtr(std::uint64_t addr, std::uint64_t value);

private:
  void checkRange(std::uint64_t addr, std::uint64_t size) const;

  std::vector<std::uint8_t> bytes_;
  std::uint64_t allocTop_;
};

} // namespace cgpa::interp
