#include "trace/run_record.hpp"

#include <fstream>

#include "pipeline/transform.hpp"
#include "sim/system.hpp"
#include "trace/bottleneck.hpp"
#include "trace/metrics.hpp"
#include "trace/remarks.hpp"
#include "trace/remarks_json.hpp"

namespace cgpa::trace {

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string hashHex(std::uint64_t hash) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

namespace {

JsonValue healthJson(const PipelineHealthReport& report) {
  JsonValue health = JsonValue::object();
  health.set("limitingStage", report.limitingStage);
  health.set("limitingParallel", report.limitingParallel);
  health.set("limitingReason", report.limitingReason);
  health.set("amdahlCeiling", report.amdahlCeiling);
  JsonValue& stages = health.set("stages", JsonValue::array());
  for (const StageHealth& stage : report.stages) {
    JsonValue entry = JsonValue::object();
    entry.set("stage", stage.stageIndex);
    entry.set("parallel", stage.parallel);
    entry.set("engines", stage.engines);
    entry.set("active", stage.active);
    entry.set("stalled", stage.stalled);
    entry.set("utilization", stage.utilization());
    stages.push(std::move(entry));
  }
  JsonValue& suggestions = health.set("suggestions", JsonValue::array());
  for (const Suggestion& s : report.suggestions) {
    JsonValue entry = JsonValue::object();
    entry.set("what", s.what);
    entry.set("why", s.why);
    entry.set("score", s.score);
    suggestions.push(std::move(entry));
  }
  return health;
}

JsonValue remarksDigestJson(const RemarkCollector& remarks) {
  JsonValue digest = JsonValue::object();
  digest.set("count", static_cast<unsigned long long>(remarks.size()));
  // Digest over the canonical cgpa.remarks.v1 rendering: two runs whose
  // compilers made the same decisions hash identically, so cgpa_diff can
  // flag "same config, different compilation" at a glance.
  digest.set("digest", hashHex(fnv1a64(remarksJson(remarks).dump(0))));
  JsonValue& entries = digest.set("entries", JsonValue::array());
  for (const Remark& remark : remarks.remarks()) {
    entries.push(remark.pass + "/" + remark.rule + " " + remark.subject +
                 ": " + remark.message);
  }
  return digest;
}

} // namespace

JsonValue buildRunRecord(const RunRecordInputs& in) {
  JsonValue record = JsonValue::object();
  record.set("schema", "cgpa.run.v1");
  record.set("kernel", in.kernel);
  record.set("flow", in.flow);
  JsonValue& config = record.set("config", JsonValue::object());
  config.set("workers", in.workers);
  config.set("fifoDepth", in.fifoDepth);
  config.set("scale", in.scale);
  config.set("seed", in.seed);
  config.set("backend",
             in.result != nullptr
                 ? std::string(sim::toString(in.result->backend))
                 : std::string("unknown"));
  record.set("correct", in.correct);
  if (!in.irText.empty())
    record.set("irHash", hashHex(fnv1a64(in.irText)));
  if (in.result != nullptr && in.simWallMicros > 0.0) {
    JsonValue& wall = record.set("wall", JsonValue::object());
    wall.set("simMicros", in.simWallMicros);
    wall.set("cyclesPerSec", static_cast<double>(in.result->cycles) /
                                 (in.simWallMicros / 1e6));
  }
  if (in.remarks != nullptr && !in.remarks->empty())
    record.set("remarks", remarksDigestJson(*in.remarks));
  if (in.result != nullptr && in.pipeline != nullptr) {
    record.set("health",
               healthJson(buildHealthReport(*in.result, *in.pipeline,
                                            in.remarks)));
  }
  if (in.result != nullptr) {
    MetricsRegistry registry;
    registry.addSimResult(*in.result, in.pipeline, in.freqMHz);
    record.set("stats", std::move(registry.root()));
  }
  return record;
}

std::string runRecordFileName(const JsonValue& record) {
  auto text = [&record](const char* key, const char* fallback) {
    const JsonValue* v = record.find(key);
    return v != nullptr && v->isString() ? v->asString()
                                         : std::string(fallback);
  };
  auto configInt = [&record](const char* key) -> unsigned long long {
    const JsonValue* config = record.find("config");
    if (config == nullptr)
      return 0;
    const JsonValue* v = config->find(key);
    return v != nullptr ? v->asUint() : 0;
  };
  std::string backend = "unknown";
  if (const JsonValue* config = record.find("config")) {
    if (const JsonValue* v = config->find("backend"); v != nullptr)
      backend = v->asString();
  }
  return text("kernel", "unknown") + "-" + text("flow", "p1") + "-w" +
         std::to_string(configInt("workers")) + "-f" +
         std::to_string(configInt("fifoDepth")) + "-s" +
         std::to_string(configInt("scale")) + "-" + backend + ".run.json";
}

bool writeRunRecordFile(const std::string& path, const JsonValue& record) {
  std::ofstream out(path);
  if (!out)
    return false;
  record.dump(out, 2);
  out << "\n";
  return static_cast<bool>(out);
}

bool appendRunRecordLine(const std::string& path, const JsonValue& record) {
  std::ofstream out(path, std::ios::app);
  if (!out)
    return false;
  record.dump(out, 0);
  out << "\n";
  return static_cast<bool>(out);
}

} // namespace cgpa::trace
