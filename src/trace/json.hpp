// Minimal JSON document model shared by the trace backends: an ordered
// value tree with a writer (stable key order — the machine-readable stats
// schema must not reorder between runs) and a validating parser used by
// tests and the trace-smoke checker to verify emitted documents.
//
// Deliberately small: no external dependency, no SAX interface, no
// number-roundtrip guarantees beyond what the backends need.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace cgpa::trace {

class JsonValue {
public:
  enum class Kind { Null, Bool, Int, Uint, Double, String, Array, Object };

  JsonValue() : kind_(Kind::Null) {}
  JsonValue(bool value) : kind_(Kind::Bool), bool_(value) {}
  JsonValue(int value) : kind_(Kind::Int), int_(value) {}
  JsonValue(long value) : kind_(Kind::Int), int_(value) {}
  JsonValue(long long value) : kind_(Kind::Int), int_(value) {}
  JsonValue(unsigned value) : kind_(Kind::Uint), uint_(value) {}
  JsonValue(unsigned long value) : kind_(Kind::Uint), uint_(value) {}
  JsonValue(unsigned long long value) : kind_(Kind::Uint), uint_(value) {}
  JsonValue(double value) : kind_(Kind::Double), double_(value) {}
  JsonValue(const char* value) : kind_(Kind::String), string_(value) {}
  JsonValue(std::string value)
      : kind_(Kind::String), string_(std::move(value)) {}

  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
  }

  Kind kind() const { return kind_; }
  bool isArray() const { return kind_ == Kind::Array; }
  bool isObject() const { return kind_ == Kind::Object; }
  bool isNumber() const {
    return kind_ == Kind::Int || kind_ == Kind::Uint || kind_ == Kind::Double;
  }
  bool isString() const { return kind_ == Kind::String; }

  /// Numeric value as a double (0.0 for non-numbers).
  double asDouble() const;
  /// Numeric value as an unsigned integer (0 for non-numbers / negatives).
  std::uint64_t asUint() const;
  bool asBool() const { return kind_ == Kind::Bool && bool_; }
  const std::string& asString() const { return string_; }

  /// Array append; returns a reference to the stored element.
  JsonValue& push(JsonValue value);
  /// Object insert (overwrites an existing key in place, preserving its
  /// position); returns a reference to the stored element.
  JsonValue& set(const std::string& key, JsonValue value);
  /// Object lookup; nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const;

  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Serialize. indent > 0 pretty-prints with that many spaces per level.
  void dump(std::ostream& os, int indent = 0) const;
  std::string dump(int indent = 0) const;

private:
  void dumpImpl(std::ostream& os, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parse a complete JSON document. Returns nullopt and sets `error` (when
/// non-null) on malformed input or trailing garbage.
std::optional<JsonValue> parseJson(const std::string& text,
                                   std::string* error = nullptr);

/// Escape a string for embedding in a JSON document (no surrounding
/// quotes).
std::string jsonEscape(const std::string& text);

} // namespace cgpa::trace
