// Compiler decision provenance: a collector for structured remarks emitted
// by the compile pipeline (PDG construction, SCC classification, partition,
// MTCG transform, SDC scheduling).
//
// Like sim::Tracer, this header is dependency-free so the analysis /
// pipeline / hls layers can accept a `RemarkCollector*` without linking
// against cgpa_trace: a null collector means "record nothing" and every
// emission site guards on the pointer, so the disabled path costs one
// branch. Serialization to the stable `cgpa.remarks.v1` JSON document
// lives in remarks.cpp (cgpa_trace).
//
// A remark is (pass, rule, subject, message, args): `pass` names the
// compiler stage (pdg, scc, partition, transform, sdc), `rule` is a stable
// machine-matchable identifier within the pass (e.g. "mem-dep-pruned",
// "classified", "channel"), `subject` names the IR entity the decision is
// about, and `args` carries the typed evidence (counts, flags, operand
// names) in emission order.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace cgpa::trace {

struct RemarkArg {
  enum class Kind { Text, Int, Float, Bool };
  std::string key;
  Kind kind = Kind::Text;
  std::string text;
  std::int64_t intValue = 0;
  double floatValue = 0.0;
  bool boolValue = false;
};

struct Remark {
  std::string pass;
  std::string rule;
  std::string subject;
  std::string message;
  std::vector<RemarkArg> args;

  /// First arg with the given key, or nullptr.
  const RemarkArg* findArg(const std::string& key) const {
    for (const RemarkArg& arg : args)
      if (arg.key == key)
        return &arg;
    return nullptr;
  }
};

/// Accumulates remarks in emission order. Emission sites use the fluent
/// builder:
///
///   if (remarks)
///     remarks->add("scc", "classified", "scc3")
///         .note("carried dependence; has side effects")
///         .arg("class", "sequential")
///         .arg("weight", scc.weight);
class RemarkCollector {
public:
  /// Builder for one remark; appends eagerly and mutates in place, so the
  /// chain can be dropped at any point and the remark is still recorded.
  ///
  /// The builder addresses its remark as (collector, index), never by
  /// reference or pointer: another add() on the same collector mid-chain
  /// (e.g. from a helper called while computing an arg) may reallocate the
  /// remark vector, and a held `Remark&` would dangle.
  class Builder {
  public:
    Builder(RemarkCollector& collector, std::size_t index)
        : collector_(&collector), index_(index) {}

    Builder& note(std::string message) {
      remark().message = std::move(message);
      return *this;
    }

    Builder& arg(std::string key, std::string value) {
      RemarkArg a;
      a.key = std::move(key);
      a.kind = RemarkArg::Kind::Text;
      a.text = std::move(value);
      remark().args.push_back(std::move(a));
      return *this;
    }
    // Explicit const char* overload so string literals don't decay to the
    // bool overload.
    Builder& arg(std::string key, const char* value) {
      return arg(std::move(key), std::string(value));
    }
    Builder& arg(std::string key, bool value) {
      RemarkArg a;
      a.key = std::move(key);
      a.kind = RemarkArg::Kind::Bool;
      a.boolValue = value;
      remark().args.push_back(std::move(a));
      return *this;
    }
    Builder& arg(std::string key, double value) {
      RemarkArg a;
      a.key = std::move(key);
      a.kind = RemarkArg::Kind::Float;
      a.floatValue = value;
      remark().args.push_back(std::move(a));
      return *this;
    }
    // One constrained template covers every integer width (int, unsigned,
    // std::size_t, std::uint64_t, ...) without platform-dependent overload
    // clashes; bool is carved out for the Bool overload above.
    template <typename T,
              typename = std::enable_if_t<std::is_integral_v<T> &&
                                          !std::is_same_v<T, bool>>>
    Builder& arg(std::string key, T value) {
      RemarkArg a;
      a.key = std::move(key);
      a.kind = RemarkArg::Kind::Int;
      a.intValue = static_cast<std::int64_t>(value);
      remark().args.push_back(std::move(a));
      return *this;
    }

  private:
    Remark& remark() { return collector_->remarks_[index_]; }

    RemarkCollector* collector_;
    std::size_t index_;
  };

  Builder add(std::string pass, std::string rule, std::string subject) {
    remarks_.emplace_back();
    Remark& remark = remarks_.back();
    remark.pass = std::move(pass);
    remark.rule = std::move(rule);
    remark.subject = std::move(subject);
    return Builder(*this, remarks_.size() - 1);
  }

  const std::vector<Remark>& remarks() const { return remarks_; }
  bool empty() const { return remarks_.empty(); }
  std::size_t size() const { return remarks_.size(); }
  void clear() { remarks_.clear(); }

private:
  std::vector<Remark> remarks_;
};

} // namespace cgpa::trace
