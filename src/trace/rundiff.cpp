#include "trace/rundiff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

namespace cgpa::trace {

namespace {

/// The six ledger causes, in schema order. Every engine-cycle of a run is
/// attributed to exactly one of these (fuzz/invariants.cpp enforces it),
/// so the per-cause deltas below partition the engine-cycle delta.
constexpr const char* kCauses[] = {"busy",          "stallMem",
                                   "stallFifoFull", "stallFifoEmpty",
                                   "stallDep",      "idle"};

const JsonValue* findPath(const JsonValue& root,
                          std::initializer_list<const char*> path) {
  const JsonValue* v = &root;
  for (const char* key : path) {
    v = v->find(key);
    if (v == nullptr)
      return nullptr;
  }
  return v;
}

std::uint64_t uintAt(const JsonValue& root,
                     std::initializer_list<const char*> path) {
  const JsonValue* v = findPath(root, path);
  return v != nullptr ? v->asUint() : 0;
}

std::string stringAt(const JsonValue& root, const char* key) {
  const JsonValue* v = root.find(key);
  return v != nullptr && v->isString() ? v->asString() : std::string();
}

long long delta64(std::uint64_t a, std::uint64_t b) {
  return static_cast<long long>(b) - static_cast<long long>(a);
}

/// Aggregate per-cause cycles of one record, schema order.
std::vector<std::uint64_t> causeTotals(const JsonValue& record) {
  return {uintAt(record, {"stats", "engineCycles", "busy"}),
          uintAt(record, {"stats", "stalls", "mem"}),
          uintAt(record, {"stats", "stalls", "fifoFull"}),
          uintAt(record, {"stats", "stalls", "fifoEmpty"}),
          uintAt(record, {"stats", "stalls", "dep"}),
          uintAt(record, {"stats", "engineCycles", "idle"})};
}

struct StageTotals {
  int engines = 0;
  std::uint64_t causes[6] = {0, 0, 0, 0, 0, 0};
};

/// Sum stats.engines[] ledgers by stageIndex (-1 = wrapper).
std::map<int, StageTotals> stageTotals(const JsonValue& record) {
  std::map<int, StageTotals> stages;
  const JsonValue* engines = findPath(record, {"stats", "engines"});
  if (engines == nullptr || !engines->isArray())
    return stages;
  for (const JsonValue& engine : engines->items()) {
    const JsonValue* stage = engine.find("stageIndex");
    StageTotals& totals =
        stages[stage != nullptr ? static_cast<int>(stage->asDouble()) : -1];
    ++totals.engines;
    static const char* kKeys[] = {"busy",          "stallMem",
                                  "stallFifoFull", "stallFifoEmpty",
                                  "stallDep",      "idle"};
    for (int c = 0; c < 6; ++c) {
      const JsonValue* v = engine.find(kKeys[c]);
      if (v != nullptr)
        totals.causes[c] += v->asUint();
    }
  }
  return stages;
}

struct ChannelTotals {
  std::string name;
  std::uint64_t full = 0;
  std::uint64_t empty = 0;
};

/// Attributed stall cycles per channel from stats.channels[].
std::map<int, ChannelTotals> channelTotals(const JsonValue& record) {
  std::map<int, ChannelTotals> channels;
  const JsonValue* list = findPath(record, {"stats", "channels"});
  if (list == nullptr || !list->isArray())
    return channels;
  for (const JsonValue& channel : list->items()) {
    const JsonValue* id = channel.find("id");
    if (id == nullptr)
      continue;
    ChannelTotals& totals = channels[static_cast<int>(id->asUint())];
    totals.name = stringAt(channel, "name");
    if (const JsonValue* v = channel.find("stallFullCycles"))
      totals.full = v->asUint();
    if (const JsonValue* v = channel.find("stallEmptyCycles"))
      totals.empty = v->asUint();
  }
  return channels;
}

std::vector<std::string> remarkEntries(const JsonValue& record) {
  std::vector<std::string> entries;
  const JsonValue* list = findPath(record, {"remarks", "entries"});
  if (list == nullptr || !list->isArray())
    return entries;
  for (const JsonValue& entry : list->items())
    if (entry.isString())
      entries.push_back(entry.asString());
  return entries;
}

JsonValue summarize(const JsonValue& record) {
  JsonValue summary = JsonValue::object();
  summary.set("kernel", stringAt(record, "kernel"));
  summary.set("flow", stringAt(record, "flow"));
  if (const JsonValue* config = record.find("config"))
    summary.set("config", *config);
  summary.set("cycles", uintAt(record, {"stats", "cycles"}));
  if (const JsonValue* hash = record.find("irHash"))
    summary.set("irHash", *hash);
  return summary;
}

Status checkRecord(const JsonValue& record, const char* which) {
  if (!record.isObject() || stringAt(record, "schema") != "cgpa.run.v1") {
    return Status::error(ErrorCode::InvalidArgument,
                         std::string(which) +
                             " is not a cgpa.run.v1 record (bad or missing "
                             "schema tag)");
  }
  const JsonValue* stats = record.find("stats");
  if (stats == nullptr || !stats->isObject()) {
    return Status::error(ErrorCode::InvalidArgument,
                         std::string(which) + " has no stats section");
  }
  return Status::success();
}

/// Rank rows in place by |delta| descending (stable for equal magnitudes
/// so the report order is deterministic).
void rankByDelta(std::vector<JsonValue>& rows) {
  std::stable_sort(rows.begin(), rows.end(),
                   [](const JsonValue& x, const JsonValue& y) {
                     const JsonValue* dx = x.find("delta");
                     const JsonValue* dy = y.find("delta");
                     const double mx =
                         dx != nullptr ? std::fabs(dx->asDouble()) : 0.0;
                     const double my =
                         dy != nullptr ? std::fabs(dy->asDouble()) : 0.0;
                     return mx > my;
                   });
}

} // namespace

Expected<JsonValue> buildRunDiff(const JsonValue& a, const JsonValue& b,
                                 const RunDiffOptions& options) {
  if (Status status = checkRecord(a, "baseline (a)"); !status.ok())
    return status;
  if (Status status = checkRecord(b, "candidate (b)"); !status.ok())
    return status;

  JsonValue diff = JsonValue::object();
  diff.set("schema", "cgpa.rundiff.v1");
  diff.set("threshold", options.threshold);
  diff.set("a", summarize(a));
  diff.set("b", summarize(b));
  const std::string hashA = stringAt(a, "irHash");
  const std::string hashB = stringAt(b, "irHash");
  if (!hashA.empty() && !hashB.empty())
    diff.set("irChanged", hashA != hashB);

  const std::uint64_t cyclesA = uintAt(a, {"stats", "cycles"});
  const std::uint64_t cyclesB = uintAt(b, {"stats", "cycles"});
  JsonValue& cycles = diff.set("cycles", JsonValue::object());
  cycles.set("a", cyclesA);
  cycles.set("b", cyclesB);
  cycles.set("delta", delta64(cyclesA, cyclesB));
  cycles.set("ratio", cyclesA == 0
                          ? (cyclesB == 0 ? 1.0 : 0.0)
                          : static_cast<double>(cyclesB) /
                                static_cast<double>(cyclesA));
  const bool regressed =
      cyclesA == 0
          ? cyclesB != 0
          : static_cast<double>(cyclesB) >
                static_cast<double>(cyclesA) * (1.0 + options.threshold);
  diff.set("regressed", regressed);

  // Per-cause deltas over the whole engine set. All six rows are always
  // present (an identical pair reports six zero deltas), ranked by
  // magnitude so the dominant cause is causes[0].
  const std::vector<std::uint64_t> causesA = causeTotals(a);
  const std::vector<std::uint64_t> causesB = causeTotals(b);
  std::vector<JsonValue> causeRows;
  for (int c = 0; c < 6; ++c) {
    JsonValue row = JsonValue::object();
    row.set("cause", kCauses[c]);
    row.set("a", causesA[static_cast<std::size_t>(c)]);
    row.set("b", causesB[static_cast<std::size_t>(c)]);
    row.set("delta", delta64(causesA[static_cast<std::size_t>(c)],
                             causesB[static_cast<std::size_t>(c)]));
    causeRows.push_back(std::move(row));
  }
  rankByDelta(causeRows);
  JsonValue& causes = diff.set("causes", JsonValue::array());
  for (JsonValue& row : causeRows)
    causes.push(std::move(row));

  // Per-stage deltas (union of stages seen on either side).
  const std::map<int, StageTotals> stagesA = stageTotals(a);
  const std::map<int, StageTotals> stagesB = stageTotals(b);
  std::map<int, bool> stageIds;
  for (const auto& [id, totals] : stagesA)
    stageIds[id] = true;
  for (const auto& [id, totals] : stagesB)
    stageIds[id] = true;
  std::vector<JsonValue> stageRows;
  for (const auto& [id, present] : stageIds) {
    static const StageTotals kEmpty;
    auto itA = stagesA.find(id);
    auto itB = stagesB.find(id);
    const StageTotals& ta = itA != stagesA.end() ? itA->second : kEmpty;
    const StageTotals& tb = itB != stagesB.end() ? itB->second : kEmpty;
    JsonValue row = JsonValue::object();
    row.set("stage", id);
    row.set("enginesA", ta.engines);
    row.set("enginesB", tb.engines);
    long long total = 0;
    std::vector<JsonValue> rows;
    for (int c = 0; c < 6; ++c) {
      const long long d = delta64(ta.causes[c], tb.causes[c]);
      // The stage's headline delta excludes idle: idle swings with the
      // other stages' run length, not with this stage's own behavior.
      if (std::string(kCauses[c]) != "idle")
        total += d;
      if (d == 0)
        continue;
      JsonValue cause = JsonValue::object();
      cause.set("cause", kCauses[c]);
      cause.set("a", ta.causes[c]);
      cause.set("b", tb.causes[c]);
      cause.set("delta", d);
      rows.push_back(std::move(cause));
    }
    row.set("delta", total);
    rankByDelta(rows);
    JsonValue& causeList = row.set("causes", JsonValue::array());
    for (JsonValue& cause : rows)
      causeList.push(std::move(cause));
    stageRows.push_back(std::move(row));
  }
  rankByDelta(stageRows);
  JsonValue& stages = diff.set("stages", JsonValue::array());
  for (JsonValue& row : stageRows)
    stages.push(std::move(row));

  // Per-channel backpressure deltas: one row per channel × cause with a
  // nonzero attributed-stall delta. This is the section that names which
  // FIFO moved — empty for an identical pair.
  const std::map<int, ChannelTotals> channelsA = channelTotals(a);
  const std::map<int, ChannelTotals> channelsB = channelTotals(b);
  std::map<int, bool> channelIds;
  for (const auto& [id, totals] : channelsA)
    channelIds[id] = true;
  for (const auto& [id, totals] : channelsB)
    channelIds[id] = true;
  std::vector<JsonValue> channelRows;
  for (const auto& [id, present] : channelIds) {
    static const ChannelTotals kNone;
    auto itA = channelsA.find(id);
    auto itB = channelsB.find(id);
    const ChannelTotals& ta = itA != channelsA.end() ? itA->second : kNone;
    const ChannelTotals& tb = itB != channelsB.end() ? itB->second : kNone;
    const std::string& name = !ta.name.empty() ? ta.name : tb.name;
    auto addRow = [&channelRows, id, &name](const char* cause,
                                            std::uint64_t va,
                                            std::uint64_t vb) {
      if (va == vb)
        return;
      JsonValue row = JsonValue::object();
      row.set("id", id);
      if (!name.empty())
        row.set("name", name);
      row.set("cause", cause);
      row.set("a", va);
      row.set("b", vb);
      row.set("delta", delta64(va, vb));
      channelRows.push_back(std::move(row));
    };
    addRow("stallFifoFull", ta.full, tb.full);
    addRow("stallFifoEmpty", ta.empty, tb.empty);
  }
  rankByDelta(channelRows);
  JsonValue& channels = diff.set("channels", JsonValue::array());
  for (JsonValue& row : channelRows)
    channels.push(std::move(row));

  // Remarks join: compact remark strings present on one side only — the
  // "what did the compiler decide differently" view next to irChanged.
  const std::vector<std::string> remarksA = remarkEntries(a);
  const std::vector<std::string> remarksB = remarkEntries(b);
  std::map<std::string, int> counts;
  for (const std::string& entry : remarksA)
    ++counts[entry];
  for (const std::string& entry : remarksB)
    --counts[entry];
  JsonValue onlyInA = JsonValue::array();
  JsonValue onlyInB = JsonValue::array();
  for (const auto& [entry, count] : counts) {
    if (count > 0)
      onlyInA.push(entry);
    else if (count < 0)
      onlyInB.push(entry);
  }
  if (!onlyInA.items().empty() || !onlyInB.items().empty()) {
    JsonValue& remarks = diff.set("remarks", JsonValue::object());
    remarks.set("onlyInA", std::move(onlyInA));
    remarks.set("onlyInB", std::move(onlyInB));
  }

  return diff;
}

std::string renderRunDiff(const JsonValue& diff) {
  std::ostringstream out;
  auto text = [](const JsonValue* v) -> std::string {
    if (v != nullptr && v->isString())
      return v->asString();
    return "?";
  };
  auto number = [](const JsonValue* v) {
    return v != nullptr ? v->asDouble() : 0.0;
  };
  const JsonValue* a = diff.find("a");
  const JsonValue* b = diff.find("b");
  out << "run diff: "
      << (a != nullptr ? text(a->find("kernel")) : std::string("?")) << " "
      << (a != nullptr ? text(a->find("flow")) : std::string("?"));
  auto configLine = [&text](const JsonValue* side) {
    if (side == nullptr)
      return std::string("?");
    const JsonValue* config = side->find("config");
    if (config == nullptr)
      return std::string("?");
    auto get = [&config](const char* key) {
      const JsonValue* v = config->find(key);
      return v != nullptr ? v->dump(0) : std::string("?");
    };
    return "w" + get("workers") + " f" + get("fifoDepth") + " s" +
           get("scale") + " " + text(config->find("backend"));
  };
  out << " (" << configLine(a) << ") vs (" << configLine(b) << ")\n";

  const JsonValue* cycles = diff.find("cycles");
  if (cycles != nullptr) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "cycles: %.0f -> %.0f (%+.0f, %.3fx)",
                  number(cycles->find("a")), number(cycles->find("b")),
                  number(cycles->find("delta")),
                  number(cycles->find("ratio")));
    out << line;
  }
  const JsonValue* regressed = diff.find("regressed");
  if (regressed != nullptr && regressed->asBool()) {
    char line[64];
    std::snprintf(line, sizeof(line), "  REGRESSION (threshold %.0f%%)",
                  number(diff.find("threshold")) * 100.0);
    out << line;
  }
  out << "\n";
  const JsonValue* irChanged = diff.find("irChanged");
  if (irChanged != nullptr && irChanged->asBool())
    out << "note: IR hash differs — the two runs executed different "
           "compilations\n";

  const JsonValue* causes = diff.find("causes");
  if (causes != nullptr && causes->isArray()) {
    out << "causes (engine-cycle delta, b - a):\n";
    for (const JsonValue& row : causes->items()) {
      char line[160];
      std::snprintf(line, sizeof(line), "  %-14s %+12.0f  (%.0f -> %.0f)\n",
                    text(row.find("cause")).c_str(),
                    number(row.find("delta")), number(row.find("a")),
                    number(row.find("b")));
      out << line;
    }
  }

  const JsonValue* stages = diff.find("stages");
  if (stages != nullptr && stages->isArray()) {
    out << "stages (ranked by |delta|, idle excluded):\n";
    for (const JsonValue& row : stages->items()) {
      char line[160];
      std::snprintf(line, sizeof(line), "  stage %-3.0f %+12.0f",
                    number(row.find("stage")), number(row.find("delta")));
      out << line;
      const JsonValue* stageCauses = row.find("causes");
      if (stageCauses != nullptr && !stageCauses->items().empty()) {
        const JsonValue& top = stageCauses->items().front();
        std::snprintf(line, sizeof(line), "  (top cause %s %+.0f)",
                      text(top.find("cause")).c_str(),
                      number(top.find("delta")));
        out << line;
      }
      out << "\n";
    }
  }

  const JsonValue* channels = diff.find("channels");
  if (channels != nullptr && channels->isArray()) {
    if (channels->items().empty()) {
      out << "channels: no attributed-stall deltas\n";
    } else {
      out << "channels (attributed stall-cycle deltas):\n";
      for (const JsonValue& row : channels->items()) {
        char line[200];
        const std::string name = row.find("name") != nullptr
                                     ? text(row.find("name"))
                                     : std::string("?");
        std::snprintf(line, sizeof(line),
                      "  channel %-3.0f %-16s %-14s %+12.0f  (%.0f -> "
                      "%.0f)\n",
                      number(row.find("id")), name.c_str(),
                      text(row.find("cause")).c_str(),
                      number(row.find("delta")), number(row.find("a")),
                      number(row.find("b")));
        out << line;
      }
    }
  }

  const JsonValue* remarks = diff.find("remarks");
  if (remarks != nullptr) {
    auto listSide = [&out, &remarks](const char* key, const char* label) {
      const JsonValue* list = remarks->find(key);
      if (list == nullptr || list->items().empty())
        return;
      out << "remarks only in " << label << ":\n";
      for (const JsonValue& entry : list->items())
        out << "  " << entry.asString() << "\n";
    };
    listSide("onlyInA", "a");
    listSide("onlyInB", "b");
  }
  return out.str();
}

} // namespace cgpa::trace
