// Serialization of compiler remarks to the stable `cgpa.remarks.v1`
// document. Key order is fixed by construction (the ordered JsonValue
// model) so two compiles that make the same decisions produce
// byte-identical documents — the golden remarks test depends on this.
#include "trace/remarks_json.hpp"

#include <fstream>

#include "trace/json.hpp"
#include "trace/remarks.hpp"

namespace cgpa::trace {

JsonValue remarksJson(const RemarkCollector& collector) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", "cgpa.remarks.v1");
  doc.set("count", static_cast<std::uint64_t>(collector.size()));

  // Per-pass tallies in order of first appearance.
  JsonValue passes = JsonValue::object();
  for (const Remark& remark : collector.remarks()) {
    const JsonValue* existing = passes.find(remark.pass);
    const std::uint64_t count = existing ? existing->asUint() : 0;
    passes.set(remark.pass, count + 1);
  }
  doc.set("passes", std::move(passes));

  JsonValue list = JsonValue::array();
  for (const Remark& remark : collector.remarks()) {
    JsonValue entry = JsonValue::object();
    entry.set("pass", remark.pass);
    entry.set("rule", remark.rule);
    entry.set("subject", remark.subject);
    entry.set("message", remark.message);
    JsonValue args = JsonValue::object();
    for (const RemarkArg& arg : remark.args) {
      switch (arg.kind) {
      case RemarkArg::Kind::Text:
        args.set(arg.key, arg.text);
        break;
      case RemarkArg::Kind::Int:
        args.set(arg.key, static_cast<long long>(arg.intValue));
        break;
      case RemarkArg::Kind::Float:
        args.set(arg.key, arg.floatValue);
        break;
      case RemarkArg::Kind::Bool:
        args.set(arg.key, arg.boolValue);
        break;
      }
    }
    entry.set("args", std::move(args));
    list.push(std::move(entry));
  }
  doc.set("remarks", std::move(list));
  return doc;
}

bool writeRemarksFile(const std::string& path,
                      const RemarkCollector& collector) {
  std::ofstream os(path);
  if (!os)
    return false;
  remarksJson(collector).dump(os, 2);
  os << '\n';
  return os.good();
}

} // namespace cgpa::trace
