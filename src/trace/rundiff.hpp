// Differential performance reports (schema "cgpa.rundiff.v1"): given two
// cgpa.run.v1 records (trace/run_record.hpp), attribute the end-to-end
// cycle delta to ledger causes, pipeline stages, and FIFO channels, and
// join the compiler remarks from both sides. The report is machine-checked
// by tools/trace_check and gates CI through cgpa_diff's exit code.
//
// Schema v1 (deltas are b - a; a is the baseline):
//   schema     "cgpa.rundiff.v1"
//   threshold  fractional cycle regression that trips the gate
//   a, b       {kernel, flow, config{...}, cycles, irHash?} summaries
//   irChanged  both records carried irHash and they differ (compiler
//              drift, not just runtime/config drift)
//   cycles     {a, b, delta, ratio}
//   regressed  b.cycles > a.cycles * (1 + threshold)
//   causes     [{cause, a, b, delta}] over the six ledger causes (busy,
//              stallMem, stallFifoFull, stallFifoEmpty, stallDep, idle),
//              ranked by |delta|, zero-delta entries included (an
//              identical pair yields six all-zero rows)
//   stages     [{stage, enginesA, enginesB, delta, causes[]}] aggregated
//              from stats.engines by stageIndex (stage -1 = wrapper),
//              ranked by |delta|; causes[] holds that stage's nonzero
//              per-cause deltas ranked by |delta|
//   channels   [{id, name, cause, a, b, delta}] — one row per channel ×
//              {fifoFull, fifoEmpty} with a nonzero attributed-stall
//              delta, ranked by |delta| (names the backpressure shift)
//   remarks    {onlyInA[], onlyInB[]} compact remark strings present on
//              one side only (omitted when both sides match or neither
//              record carried remarks)
#pragma once

#include <string>

#include "support/status.hpp"
#include "trace/json.hpp"

namespace cgpa::trace {

struct RunDiffOptions {
  /// Fractional cycle growth (b over a) that marks the diff regressed:
  /// 0.10 means "fail if b is more than 10% slower than a".
  double threshold = 0.10;
};

/// Diff two cgpa.run.v1 documents into a cgpa.rundiff.v1 report. Fails
/// with InvalidArgument when either side is not a run record or lacks the
/// stats section.
Expected<JsonValue> buildRunDiff(const JsonValue& a, const JsonValue& b,
                                 const RunDiffOptions& options = {});

/// Human-readable rendering of a cgpa.rundiff.v1 document (ranked causes,
/// stages, channels, remark deltas).
std::string renderRunDiff(const JsonValue& diff);

} // namespace cgpa::trace
