// JSON rendering of structured failures (cgpa::Status and the
// sim::DeadlockReport forensic payload) — the machine-readable side of
// `cgpac --failure-json`. Lives in trace/ because trace already owns the
// JSON model and depends on sim (not vice versa).
//
// Schema "cgpa.failure.v1" (documented in docs/robustness.md):
//   { "schema": "cgpa.failure.v1",
//     "code": "sim-deadlock",            // errorCodeName()
//     "message": "...",
//     "deadlock": { ... } }              // present for sim failures only
// The "deadlock" object carries kind, cycle, maxCycles, engines[],
// lanes[], channels[], recentEvents[], blockingCycle[], wedgedChannel.
#pragma once

#include "sim/deadlock.hpp"
#include "support/status.hpp"
#include "trace/json.hpp"

namespace cgpa::trace {

/// The DeadlockReport as a JSON object (the "deadlock" member above).
JsonValue deadlockReportJson(const sim::DeadlockReport& report);

/// A failure Status as a complete "cgpa.failure.v1" document. An attached
/// DeadlockReport detail is embedded; other detail types contribute their
/// describe() text as "detail".
JsonValue failureJson(const Status& status);

} // namespace cgpa::trace
