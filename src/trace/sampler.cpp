#include "trace/sampler.hpp"

#include <fstream>
#include <ostream>

#include "pipeline/transform.hpp"

namespace cgpa::trace {

IntervalSampler::IntervalSampler(std::uint64_t interval,
                                 const pipeline::PipelineModule* pipeline)
    : interval_(interval == 0 ? 1 : interval), pipeline_(pipeline),
      nextSample_(interval_) {
  if (pipeline_ != nullptr) {
    channelOccupancy_.assign(pipeline_->channels.size(), 0);
    laneOccupancy_.resize(pipeline_->channels.size());
  }
}

IntervalSampler::EngineRec& IntervalSampler::engine(int engineId) {
  if (static_cast<std::size_t>(engineId) >= engines_.size())
    engines_.resize(static_cast<std::size_t>(engineId) + 1);
  return engines_[static_cast<std::size_t>(engineId)];
}

void IntervalSampler::closeActive(EngineRec& rec, std::uint64_t end) {
  if (!rec.active)
    return;
  const std::size_t column = static_cast<std::size_t>(rec.column);
  if (column >= columnActive_.size())
    columnActive_.resize(column + 1, 0);
  columnActive_[column] += end - rec.activeSince;
  rec.active = false;
}

std::uint64_t IntervalSampler::activeTotalAt(std::size_t column,
                                             std::uint64_t at) const {
  std::uint64_t total =
      column < columnActive_.size() ? columnActive_[column] : 0;
  for (const EngineRec& rec : engines_)
    if (rec.live && rec.active &&
        static_cast<std::size_t>(rec.column) == column)
      total += at - rec.activeSince;
  return total;
}

void IntervalSampler::emitRow(std::uint64_t cycle) {
  Row row;
  row.cycle = cycle;
  row.occupancy = channelOccupancy_;
  std::size_t columns = columnActive_.size();
  for (const EngineRec& rec : engines_)
    if (rec.live)
      columns = std::max(columns, static_cast<std::size_t>(rec.column) + 1);
  if (prevColumnTotal_.size() < columns)
    prevColumnTotal_.resize(columns, 0);
  row.activeDelta.resize(columns);
  for (std::size_t c = 0; c < columns; ++c) {
    const std::uint64_t total = activeTotalAt(c, cycle);
    row.activeDelta[c] = total - prevColumnTotal_[c];
    prevColumnTotal_[c] = total;
  }
  rows_.push_back(std::move(row));
  lastRowCycle_ = cycle;
}

void IntervalSampler::beginCycle(std::uint64_t now) {
  // Emit every boundary the clock passed before any of this cycle's
  // events apply: all state still reflects cycles < each boundary.
  while (nextSample_ <= now) {
    emitRow(nextSample_);
    nextSample_ += interval_;
  }
  Tracer::beginCycle(now);
}

void IntervalSampler::onEngineStart(int engineId, int /*taskIndex*/,
                                    int stageIndex) {
  EngineRec& rec = engine(engineId);
  rec.column = stageIndex < 0 ? 0 : 1 + stageIndex;
  rec.live = true;
  rec.active = true;
  rec.activeSince = now();
}

void IntervalSampler::onEngineActive(int engineId) {
  EngineRec& rec = engine(engineId);
  rec.active = true;
  rec.activeSince = now();
}

void IntervalSampler::onEngineStall(int engineId, sim::TraceStall /*cause*/,
                                    int /*channel*/, int /*lane*/) {
  closeActive(engine(engineId), now());
}

void IntervalSampler::onEngineFinish(int engineId) {
  EngineRec& rec = engine(engineId);
  closeActive(rec, now() + 1); // The finishing cycle counts as active.
  rec.live = false;
}

void IntervalSampler::updateOccupancy(int channel, int lane,
                                      int occupiedFlits) {
  if (static_cast<std::size_t>(channel) >= laneOccupancy_.size()) {
    laneOccupancy_.resize(static_cast<std::size_t>(channel) + 1);
    channelOccupancy_.resize(static_cast<std::size_t>(channel) + 1, 0);
  }
  auto& lanes = laneOccupancy_[static_cast<std::size_t>(channel)];
  if (static_cast<std::size_t>(lane) >= lanes.size())
    lanes.resize(static_cast<std::size_t>(lane) + 1, 0);
  const int delta = occupiedFlits - lanes[static_cast<std::size_t>(lane)];
  lanes[static_cast<std::size_t>(lane)] = occupiedFlits;
  channelOccupancy_[static_cast<std::size_t>(channel)] =
      static_cast<std::uint64_t>(
          static_cast<std::int64_t>(
              channelOccupancy_[static_cast<std::size_t>(channel)]) +
          delta);
}

void IntervalSampler::onFifoPush(int channel, int lane, int occupiedFlits) {
  updateOccupancy(channel, lane, occupiedFlits);
}

void IntervalSampler::onFifoPop(int channel, int lane, int occupiedFlits) {
  updateOccupancy(channel, lane, occupiedFlits);
}

void IntervalSampler::onRunEnd() {
  // Capture the tail interval so short runs still produce a row.
  if (now() > lastRowCycle_)
    emitRow(now());
}

void IntervalSampler::writeCsv(std::ostream& os) const {
  std::size_t channels = channelOccupancy_.size();
  std::size_t columns = 0;
  for (const Row& row : rows_) {
    channels = std::max(channels, row.occupancy.size());
    columns = std::max(columns, row.activeDelta.size());
  }
  os << "cycle";
  for (std::size_t c = 0; c < channels; ++c) {
    os << ",ch" << c << "_occ_flits";
    if (pipeline_ != nullptr && c < pipeline_->channels.size())
      os << "(" << pipeline_->channels[c].valueName << ")";
  }
  for (std::size_t c = 0; c < columns; ++c) {
    if (c == 0)
      os << ",wrapper_active_cycles";
    else
      os << ",stage" << (c - 1) << "_active_cycles";
  }
  os << '\n';
  for (const Row& row : rows_) {
    os << row.cycle;
    for (std::size_t c = 0; c < channels; ++c)
      os << ',' << (c < row.occupancy.size() ? row.occupancy[c] : 0);
    for (std::size_t c = 0; c < columns; ++c)
      os << ',' << (c < row.activeDelta.size() ? row.activeDelta[c] : 0);
    os << '\n';
  }
}

bool IntervalSampler::writeFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out)
    return false;
  writeCsv(out);
  return static_cast<bool>(out);
}

} // namespace cgpa::trace
