// Run archive records (schema "cgpa.run.v1"): one self-contained JSON
// document per simulated configuration, joining everything the toolchain
// knows about a run — the full cgpa.simstats.v1 counters, a digest of the
// compiler's cgpa.remarks.v1 decisions, the pipeline health report, the
// workload/config fingerprint, and a hash of the post-transform IR. The
// record is the unit of comparison for cgpa_diff (trace/rundiff.hpp):
// archive two runs (or two sweeps), diff them, and the report names which
// stage/channel/cause moved.
//
// Schema v1:
//   schema    "cgpa.run.v1"
//   kernel    kernel name
//   flow      "p1" | "p2" | "legup"
//   config    {workers, fifoDepth, scale, seed, backend}
//   correct   simulated result matched the reference run
//   irHash    FNV-1a-64 hex of the post-transform textual IR — two runs
//             with equal irHash executed the same program, so any cycle
//             delta is configuration/runtime, not compiler, drift
//   wall      {simMicros, cyclesPerSec}   (host wall clock; only when the
//             caller timed the run — omitted otherwise)
//   remarks   {count, digest, entries[]}  (digest: FNV-1a-64 hex of the
//             canonical cgpa.remarks.v1 JSON; entries: compact
//             "pass/rule subject: message" strings — omitted when the run
//             collected no remarks)
//   health    pipeline health summary {limitingStage, limitingParallel,
//             limitingReason, amdahlCeiling, stages[], suggestions[]}
//   stats     the full cgpa.simstats.v1 document (trace/metrics.hpp)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "trace/json.hpp"

namespace cgpa::sim {
struct SimResult;
}
namespace cgpa::pipeline {
struct PipelineModule;
}

namespace cgpa::trace {

class RemarkCollector;

/// FNV-1a 64-bit over `text` — the stable fingerprint used for irHash and
/// the remarks digest (stdlib-only, deterministic across platforms).
std::uint64_t fnv1a64(std::string_view text);

/// 16-digit lowercase hex spelling of `hash`.
std::string hashHex(std::uint64_t hash);

struct RunRecordInputs {
  std::string kernel;
  std::string flow = "p1";
  int workers = 0;
  int fifoDepth = 0;
  int scale = 1;
  std::uint64_t seed = 0;
  bool correct = false;
  double freqMHz = 0.0; ///< > 0 adds timeMicros inside stats.
  /// Host wall-clock of the simulate call in microseconds; > 0 adds the
  /// wall{simMicros, cyclesPerSec} section (bench_trend.py keys on it).
  double simWallMicros = 0.0;
  /// Post-transform textual IR (ir::printModule); hashed, never stored.
  std::string irText;
  const sim::SimResult* result = nullptr;             ///< Required.
  const pipeline::PipelineModule* pipeline = nullptr; ///< Optional.
  const RemarkCollector* remarks = nullptr;           ///< Optional.
};

/// Build the cgpa.run.v1 document for one run. `in.result` must be set.
JsonValue buildRunRecord(const RunRecordInputs& in);

/// Canonical file name for a record inside a --run-dir:
/// "<kernel>-<flow>-w<workers>-f<fifoDepth>-s<scale>-<backend>.run.json".
std::string runRecordFileName(const JsonValue& record);

/// Write `record` pretty-printed to `path` (single-record file).
bool writeRunRecordFile(const std::string& path, const JsonValue& record);

/// Append `record` as one compact line to a JSONL archive at `path`.
bool appendRunRecordLine(const std::string& path, const JsonValue& record);

} // namespace cgpa::trace
