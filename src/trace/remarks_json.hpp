// `cgpa.remarks.v1` serialization for RemarkCollector (see remarks.hpp for
// the collector itself — kept dependency-free so the compile pipeline can
// record remarks without linking cgpa_trace).
#pragma once

#include <string>

#include "trace/json.hpp"

namespace cgpa::trace {

class RemarkCollector;

/// Build the `cgpa.remarks.v1` document. Deterministic: byte-identical for
/// identical decision sequences.
JsonValue remarksJson(const RemarkCollector& collector);

/// Write the document (pretty-printed, trailing newline) to `path`.
/// Returns false on I/O failure.
bool writeRemarksFile(const std::string& path,
                      const RemarkCollector& collector);

} // namespace cgpa::trace
