// Chrome trace-event JSON backend: records engine spans, fork/join
// markers, per-channel occupancy counters, and cumulative cache-miss
// counters, then writes a `{"traceEvents": [...]}` document loadable in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
// Mapping: one thread track per engine (tid = engine id, named
// "wrapper" / "worker<n> task<t> stage<s>"); spans are complete events
// ("ph":"X") named "active" or "stall:<cause>"; channel occupancy and
// cache misses are counter events ("ph":"C"). Timestamps are simulated
// cycles used directly as the microsecond field — absolute wall time is
// meaningless in a cycle simulator, only relative alignment matters.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/tracer.hpp"

namespace cgpa::pipeline {
struct PipelineModule;
}

namespace cgpa::trace {

class ChromeTraceWriter : public sim::Tracer {
public:
  /// `pipeline` (optional) supplies channel/task names for track labels;
  /// it must outlive the writer.
  explicit ChromeTraceWriter(const pipeline::PipelineModule* pipeline = nullptr)
      : pipeline_(pipeline) {}

  void onEngineStart(int engineId, int taskIndex, int stageIndex) override;
  void onEngineActive(int engineId) override;
  void onEngineStall(int engineId, sim::TraceStall cause, int channel,
                     int lane) override;
  void onEngineFinish(int engineId) override;
  void onFork(int parentId, int childId, int taskIndex) override;
  void onJoinComplete(int engineId, int loopId) override;
  void onFifoPush(int channel, int lane, int occupiedFlits) override;
  void onFifoPop(int channel, int lane, int occupiedFlits) override;
  void onCacheAccess(int bank, bool hit, bool isWrite) override;
  void onRunEnd() override;

  /// Serialize the trace-event document. Valid after onRunEnd (write
  /// closes any still-open spans defensively).
  void write(std::ostream& os) const;
  /// Convenience: write to `path`; returns false on I/O failure.
  bool writeFile(const std::string& path) const;

  std::size_t numSpans() const { return spans_.size(); }

private:
  struct Span {
    int engineId;
    std::uint64_t begin;
    std::uint64_t end;
    bool active;
    sim::TraceStall cause; ///< Valid when !active.
    int channel = -1;      ///< Valid for fifo stalls.
    int lane = -1;
  };
  struct Track {
    int taskIndex = -1;
    int stageIndex = -1;
    std::uint64_t spanBegin = 0; ///< Start of the currently open span.
    bool spanActive = true;      ///< Kind of the currently open span.
    sim::TraceStall cause = sim::TraceStall::Dep;
    int channel = -1;
    int lane = -1;
    bool live = false;
  };
  struct CounterSample {
    std::uint64_t cycle;
    int id; ///< Channel id (occupancy) or 0 (cache misses).
    std::uint64_t value;
  };
  struct Marker {
    std::uint64_t cycle;
    enum class Kind : std::uint8_t { Fork, Join } kind;
    int engineId;
    int arg; ///< taskIndex (fork) / loopId (join).
  };

  Track& track(int engineId);
  void closeSpan(int engineId, std::uint64_t end);
  void channelSample(int channel, int lane, int occupiedFlits);

  const pipeline::PipelineModule* pipeline_;
  std::vector<Track> tracks_;
  std::vector<Span> spans_;
  std::vector<CounterSample> occupancy_;  ///< Per-channel flit counts.
  std::vector<CounterSample> missCount_;  ///< Cumulative cache misses.
  std::vector<Marker> markers_;
  /// Current occupancy per (channel, lane) and per channel, maintained
  /// from push/pop events so each counter sample is a channel total.
  std::vector<std::vector<int>> laneOccupancy_;
  std::vector<int> channelOccupancy_;
  std::uint64_t misses_ = 0;
};

} // namespace cgpa::trace
