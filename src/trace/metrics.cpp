#include "trace/metrics.hpp"

#include <fstream>

#include "ir/instruction.hpp"
#include "pipeline/transform.hpp"
#include "sim/system.hpp"

namespace cgpa::trace {

JsonValue buildStatsDocument(const StatsDocInputs& in) {
  MetricsRegistry registry;
  registry.addSimResult(*in.result, in.pipeline, in.freqMHz);
  JsonValue& root = registry.root();
  root.set("kernel", in.kernel);
  root.set("flow", in.flow);
  root.set("correct", in.correct);
  JsonValue config = JsonValue::object();
  config.set("workers", in.workers);
  config.set("fifoDepth", in.fifoDepth);
  config.set("scale", in.scale);
  config.set("seed", in.seed);
  root.set("config", std::move(config));
  return std::move(root);
}

void MetricsRegistry::addSimResult(const sim::SimResult& result,
                                   const pipeline::PipelineModule* pipeline,
                                   double freqMHz) {
  root_.set("schema", "cgpa.simstats.v1");
  // The resolved execution tier ("interp" / "threaded"); both tiers
  // produce identical stats, so this tag is the only field that differs
  // between same-config runs.
  root_.set("backend", std::string(sim::toString(result.backend)));
  root_.set("cycles", result.cycles);
  root_.set("returnValue", result.returnValue);
  root_.set("enginesSpawned", result.enginesSpawned);
  if (freqMHz > 0.0)
    root_.set("timeMicros", result.timeMicros(freqMHz));

  JsonValue& cache = root_.set("cache", JsonValue::object());
  cache.set("accesses", result.cache.accesses);
  cache.set("hits", result.cache.hits);
  cache.set("misses", result.cache.misses);
  cache.set("bankRejects", result.cache.bankRejects);
  cache.set("hitRate", result.cache.hitRate());

  JsonValue& fifo = root_.set("fifo", JsonValue::object());
  fifo.set("pushes", result.fifoPushes);
  fifo.set("pops", result.fifoPops);
  fifo.set("maxOccupancyFlits", result.fifoMaxOccupancyFlits);

  // fifo == fifoFull + fifoEmpty (the legacy sum is kept for readers
  // that predate the split).
  JsonValue& stalls = root_.set("stalls", JsonValue::object());
  stalls.set("mem", result.stallMem);
  stalls.set("fifo", result.stallFifo);
  stalls.set("fifoFull", result.stallFifoFull);
  stalls.set("fifoEmpty", result.stallFifoEmpty);
  stalls.set("dep", result.stallDep);

  JsonValue& engineCycles = root_.set("engineCycles", JsonValue::object());
  engineCycles.set("active", result.cyclesActive);
  engineCycles.set("stalled", result.cyclesStalled);
  // The ledger aggregates: busy + mem + fifoFull + fifoEmpty + dep ==
  // active + stalled, and adding idle covers cycles * engine count.
  engineCycles.set("busy", result.cyclesBusy);
  engineCycles.set("idle", result.cyclesIdle);

  root_.set("energy", JsonValue::object())
      .set("dynamicPj", result.dynamicEnergyPj);

  JsonValue& engines = root_.set("engines", JsonValue::array());
  for (std::size_t e = 0; e < result.engines.size(); ++e) {
    const sim::SimResult::EngineSummary& summary = result.engines[e];
    JsonValue entry = JsonValue::object();
    entry.set("id", static_cast<unsigned long long>(e));
    entry.set("taskIndex", summary.taskIndex);
    entry.set("stageIndex", summary.stageIndex);
    entry.set("active", summary.stats.cyclesActive);
    entry.set("stalled", summary.stats.cyclesStalled);
    entry.set("busy", summary.stats.cyclesBusy);
    entry.set("idle", summary.stats.cyclesIdle);
    entry.set("stallMem", summary.stats.stallMem);
    entry.set("stallFifo", summary.stats.stallFifo);
    entry.set("stallFifoFull", summary.stats.stallFifoFull);
    entry.set("stallFifoEmpty", summary.stats.stallFifoEmpty);
    entry.set("stallDep", summary.stats.stallDep);
    entry.set("energyPj", summary.stats.dynamicEnergyPj);
    // Per-channel ledger slices, emitted sparsely (only channels the
    // engine actually stalled on) as {"<channelId>": cycles} maps.
    auto setPerChannel = [&entry](const char* key,
                                  const std::vector<std::uint64_t>& slices) {
      JsonValue map = JsonValue::object();
      bool any = false;
      for (std::size_t c = 0; c < slices.size(); ++c)
        if (slices[c] != 0) {
          map.set(std::to_string(c), slices[c]);
          any = true;
        }
      if (any)
        entry.set(key, std::move(map));
    };
    setPerChannel("stallFifoFullByChannel",
                  summary.stats.stallFifoFullByChannel);
    setPerChannel("stallFifoEmptyByChannel",
                  summary.stats.stallFifoEmptyByChannel);
    std::uint64_t ops = 0;
    for (const auto& [op, count] : summary.stats.opCounts)
      ops += count;
    entry.set("ops", ops);
    engines.push(std::move(entry));
  }

  JsonValue& channels = root_.set("channels", JsonValue::array());
  for (std::size_t c = 0; c < result.channelStats.size(); ++c) {
    const sim::ChannelSet::ChannelStats& stats = result.channelStats[c];
    JsonValue entry = JsonValue::object();
    entry.set("id", static_cast<unsigned long long>(c));
    if (pipeline != nullptr && c < pipeline->channels.size()) {
      const pipeline::ChannelInfo& info = pipeline->channels[c];
      entry.set("name", info.valueName);
      entry.set("producerStage", info.producerStage);
      entry.set("consumerStage", info.consumerStage);
      entry.set("broadcast", info.broadcast);
      entry.set("lanes", info.lanes);
    }
    entry.set("pushes", stats.pushes);
    entry.set("pops", stats.pops);
    entry.set("maxOccupancyFlits", stats.maxOccupancyFlits);
    entry.set("capacityFlits", stats.capacityFlits);
    entry.set("parkFull", stats.parkFull);
    entry.set("parkEmpty", stats.parkEmpty);
    entry.set("stallFullCycles", stats.stallFullCycles);
    entry.set("stallEmptyCycles", stats.stallEmptyCycles);
    channels.push(std::move(entry));
  }

  JsonValue& opCounts = root_.set("opCounts", JsonValue::object());
  for (const auto& [op, count] : result.opCounts)
    opCounts.set(std::string(ir::opcodeName(op)), count);
}

bool MetricsRegistry::writeFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out)
    return false;
  out << render();
  return static_cast<bool>(out);
}

} // namespace cgpa::trace
