// Interval metrics sampler: integrates the tracer's event stream into
// fixed-interval time-series rows — per-channel FIFO occupancy (flits, at
// the sample instant) and per-stage active-cycle counts within each
// interval (utilization = active_cycles / (interval * engines_in_stage)).
// Rendered as CSV for plotting (gnuplot, pandas, spreadsheets).
//
// Sampling is event-driven: rows for every elapsed interval boundary are
// emitted when the trace clock advances past them, so fully-parked
// fast-forwarded stretches still produce (constant-valued) rows and the
// series stays uniformly spaced.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/tracer.hpp"

namespace cgpa::pipeline {
struct PipelineModule;
}

namespace cgpa::trace {

class IntervalSampler : public sim::Tracer {
public:
  /// Sample every `interval` cycles (clamped to >= 1). `pipeline`
  /// (optional) supplies channel names for the CSV header.
  explicit IntervalSampler(
      std::uint64_t interval,
      const pipeline::PipelineModule* pipeline = nullptr);

  void beginCycle(std::uint64_t now) override;
  void onEngineStart(int engineId, int taskIndex, int stageIndex) override;
  void onEngineActive(int engineId) override;
  void onEngineStall(int engineId, sim::TraceStall cause, int channel,
                     int lane) override;
  void onEngineFinish(int engineId) override;
  void onFifoPush(int channel, int lane, int occupiedFlits) override;
  void onFifoPop(int channel, int lane, int occupiedFlits) override;
  void onRunEnd() override;

  void writeCsv(std::ostream& os) const;
  bool writeFile(const std::string& path) const;

  std::size_t numRows() const { return rows_.size(); }
  std::uint64_t interval() const { return interval_; }

private:
  struct EngineRec {
    int column = 0; ///< 0 = wrapper, 1 + stageIndex for workers.
    bool live = false;
    bool active = false;
    std::uint64_t activeSince = 0;
  };
  struct Row {
    std::uint64_t cycle;
    std::vector<std::uint64_t> occupancy;   ///< Per channel, flits.
    std::vector<std::uint64_t> activeDelta; ///< Per column, cycles.
  };

  EngineRec& engine(int engineId);
  void updateOccupancy(int channel, int lane, int occupiedFlits);
  void closeActive(EngineRec& rec, std::uint64_t end);
  /// Cumulative active cycles of `column` as of cycle `at`.
  std::uint64_t activeTotalAt(std::size_t column, std::uint64_t at) const;
  void emitRow(std::uint64_t cycle);

  std::uint64_t interval_;
  const pipeline::PipelineModule* pipeline_;
  std::uint64_t nextSample_;
  std::uint64_t lastRowCycle_ = 0;
  std::vector<EngineRec> engines_;
  /// Closed (span-ended) active cycles per column.
  std::vector<std::uint64_t> columnActive_;
  /// Cumulative active cycles per column at the previous emitted row.
  std::vector<std::uint64_t> prevColumnTotal_;
  std::vector<std::vector<int>> laneOccupancy_;
  std::vector<std::uint64_t> channelOccupancy_;
  std::vector<Row> rows_;
};

} // namespace cgpa::trace
