#include "trace/chrome_trace.hpp"

#include <fstream>
#include <ostream>

#include "pipeline/transform.hpp"
#include "trace/json.hpp"

namespace cgpa::trace {

ChromeTraceWriter::Track& ChromeTraceWriter::track(int engineId) {
  if (static_cast<std::size_t>(engineId) >= tracks_.size())
    tracks_.resize(static_cast<std::size_t>(engineId) + 1);
  return tracks_[static_cast<std::size_t>(engineId)];
}

void ChromeTraceWriter::closeSpan(int engineId, std::uint64_t end) {
  Track& t = track(engineId);
  if (end > t.spanBegin)
    spans_.push_back({engineId, t.spanBegin, end, t.spanActive, t.cause,
                      t.channel, t.lane});
}

void ChromeTraceWriter::onEngineStart(int engineId, int taskIndex,
                                      int stageIndex) {
  Track& t = track(engineId);
  t.taskIndex = taskIndex;
  t.stageIndex = stageIndex;
  t.spanBegin = now();
  t.spanActive = true;
  t.live = true;
}

void ChromeTraceWriter::onEngineActive(int engineId) {
  closeSpan(engineId, now());
  Track& t = track(engineId);
  t.spanBegin = now();
  t.spanActive = true;
}

void ChromeTraceWriter::onEngineStall(int engineId, sim::TraceStall cause,
                                      int channel, int lane) {
  closeSpan(engineId, now());
  Track& t = track(engineId);
  t.spanBegin = now();
  t.spanActive = false;
  t.cause = cause;
  t.channel = channel;
  t.lane = lane;
}

void ChromeTraceWriter::onEngineFinish(int engineId) {
  // The finishing cycle counts as live: close at now() + 1.
  closeSpan(engineId, now() + 1);
  track(engineId).live = false;
}

void ChromeTraceWriter::onFork(int /*parentId*/, int childId, int taskIndex) {
  markers_.push_back(
      {now(), Marker::Kind::Fork, childId, taskIndex});
}

void ChromeTraceWriter::onJoinComplete(int engineId, int loopId) {
  markers_.push_back({now(), Marker::Kind::Join, engineId, loopId});
}

void ChromeTraceWriter::channelSample(int channel, int lane,
                                      int occupiedFlits) {
  if (static_cast<std::size_t>(channel) >= laneOccupancy_.size()) {
    laneOccupancy_.resize(static_cast<std::size_t>(channel) + 1);
    channelOccupancy_.resize(static_cast<std::size_t>(channel) + 1, 0);
  }
  auto& lanes = laneOccupancy_[static_cast<std::size_t>(channel)];
  if (static_cast<std::size_t>(lane) >= lanes.size())
    lanes.resize(static_cast<std::size_t>(lane) + 1, 0);
  const int delta = occupiedFlits - lanes[static_cast<std::size_t>(lane)];
  lanes[static_cast<std::size_t>(lane)] = occupiedFlits;
  channelOccupancy_[static_cast<std::size_t>(channel)] += delta;
  const std::uint64_t total = static_cast<std::uint64_t>(
      channelOccupancy_[static_cast<std::size_t>(channel)]);
  // Coalesce samples within a cycle: only the cycle-final value renders.
  if (!occupancy_.empty() && occupancy_.back().cycle == now() &&
      occupancy_.back().id == channel) {
    occupancy_.back().value = total;
    return;
  }
  occupancy_.push_back({now(), channel, total});
}

void ChromeTraceWriter::onFifoPush(int channel, int lane, int occupiedFlits) {
  channelSample(channel, lane, occupiedFlits);
}

void ChromeTraceWriter::onFifoPop(int channel, int lane, int occupiedFlits) {
  channelSample(channel, lane, occupiedFlits);
}

void ChromeTraceWriter::onCacheAccess(int /*bank*/, bool hit,
                                      bool /*isWrite*/) {
  if (hit)
    return;
  ++misses_;
  if (!missCount_.empty() && missCount_.back().cycle == now()) {
    missCount_.back().value = misses_;
    return;
  }
  missCount_.push_back({now(), 0, misses_});
}

void ChromeTraceWriter::onRunEnd() {
  for (std::size_t id = 0; id < tracks_.size(); ++id)
    if (tracks_[id].live) {
      closeSpan(static_cast<int>(id), now());
      tracks_[id].live = false;
    }
}

void ChromeTraceWriter::write(std::ostream& os) const {
  JsonValue doc = JsonValue::object();
  JsonValue& events = doc.set("traceEvents", JsonValue::array());

  auto baseEvent = [](const char* ph, std::uint64_t ts) {
    JsonValue e = JsonValue::object();
    e.set("ph", ph);
    e.set("ts", ts);
    e.set("pid", 0);
    return e;
  };

  // Track names.
  for (std::size_t id = 0; id < tracks_.size(); ++id) {
    const Track& t = tracks_[id];
    std::string name;
    if (t.taskIndex < 0) {
      name = "wrapper";
    } else {
      name = "worker" + std::to_string(id - 1) + " task" +
             std::to_string(t.taskIndex) + " stage" +
             std::to_string(t.stageIndex);
    }
    JsonValue e = JsonValue::object();
    e.set("ph", "M");
    e.set("name", "thread_name");
    e.set("pid", 0);
    e.set("tid", static_cast<unsigned long long>(id));
    e.set("args", JsonValue::object()).set("name", name);
    events.push(std::move(e));
    // Keep Perfetto's track order equal to engine id order.
    JsonValue sort = JsonValue::object();
    sort.set("ph", "M");
    sort.set("name", "thread_sort_index");
    sort.set("pid", 0);
    sort.set("tid", static_cast<unsigned long long>(id));
    sort.set("args", JsonValue::object())
        .set("sort_index", static_cast<unsigned long long>(id));
    events.push(std::move(sort));
  }
  {
    JsonValue e = JsonValue::object();
    e.set("ph", "M");
    e.set("name", "process_name");
    e.set("pid", 0);
    e.set("args", JsonValue::object()).set("name", "cgpa-sim");
    events.push(std::move(e));
  }

  // Engine spans (defensively include any span still open: write() may be
  // called without onRunEnd having fired).
  auto emitSpan = [&](const Span& span) {
    JsonValue e = baseEvent("X", span.begin);
    std::string name;
    if (span.active) {
      name = "active";
    } else {
      name = std::string("stall:") + sim::traceStallName(span.cause);
      if (span.channel >= 0)
        name += " ch" + std::to_string(span.channel);
    }
    e.set("name", name);
    e.set("tid", span.engineId);
    e.set("dur", span.end - span.begin);
    if (!span.active && span.channel >= 0) {
      JsonValue& args = e.set("args", JsonValue::object());
      args.set("channel", span.channel);
      args.set("lane", span.lane);
    }
    events.push(std::move(e));
  };
  for (const Span& span : spans_)
    emitSpan(span);
  for (std::size_t id = 0; id < tracks_.size(); ++id) {
    const Track& t = tracks_[id];
    if (t.live && now() > t.spanBegin)
      emitSpan({static_cast<int>(id), t.spanBegin, now(), t.spanActive,
                t.cause, t.channel, t.lane});
  }

  // Fork/join markers as instant events on the involved engine's track.
  for (const Marker& marker : markers_) {
    JsonValue e = baseEvent("i", marker.cycle);
    e.set("s", "t"); // Thread-scoped instant.
    e.set("tid", marker.engineId);
    if (marker.kind == Marker::Kind::Fork) {
      e.set("name", "fork task" + std::to_string(marker.arg));
    } else {
      e.set("name", "join loop" + std::to_string(marker.arg));
    }
    events.push(std::move(e));
  }

  // Channel occupancy counters, one counter track per channel.
  for (const CounterSample& sample : occupancy_) {
    JsonValue e = baseEvent("C", sample.cycle);
    std::string name = "ch" + std::to_string(sample.id) + " occupancy";
    if (pipeline_ != nullptr &&
        static_cast<std::size_t>(sample.id) < pipeline_->channels.size()) {
      const pipeline::ChannelInfo& info =
          pipeline_->channels[static_cast<std::size_t>(sample.id)];
      name += " (" + info.valueName + ")";
    }
    e.set("name", name);
    e.set("args", JsonValue::object()).set("flits", sample.value);
    events.push(std::move(e));
  }

  // Cumulative cache misses (bursts show as steep slope).
  for (const CounterSample& sample : missCount_) {
    JsonValue e = baseEvent("C", sample.cycle);
    e.set("name", "cache misses (cum)");
    e.set("args", JsonValue::object()).set("misses", sample.value);
    events.push(std::move(e));
  }

  doc.set("displayTimeUnit", "ns");
  doc.set("otherData", JsonValue::object())
      .set("timeUnit", "cycles (rendered as us)");
  doc.dump(os);
  os << '\n';
}

bool ChromeTraceWriter::writeFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out)
    return false;
  write(out);
  return static_cast<bool>(out);
}

} // namespace cgpa::trace
