#include "trace/failure_json.hpp"

namespace cgpa::trace {

using sim::DeadlockReport;

JsonValue deadlockReportJson(const DeadlockReport& report) {
  JsonValue out = JsonValue::object();
  out.set("kind", DeadlockReport::kindName(report.kind));
  out.set("cycle", report.cycle);
  out.set("maxCycles", report.maxCycles);

  JsonValue engines = JsonValue::array();
  for (const DeadlockReport::EngineState& engine : report.engines) {
    JsonValue e = JsonValue::object();
    e.set("id", engine.id);
    e.set("taskIndex", engine.taskIndex);
    e.set("stageIndex", engine.stageIndex);
    e.set("wait", DeadlockReport::waitName(engine.wait));
    if (engine.channel >= 0)
      e.set("channel", engine.channel);
    if (engine.lane >= 0)
      e.set("lane", engine.lane);
    if (engine.loopId >= 0)
      e.set("loopId", engine.loopId);
    if (engine.memberLoopId >= 0)
      e.set("memberLoopId", engine.memberLoopId);
    e.set("parkedSince", engine.parkedSince);
    engines.push(std::move(e));
  }
  out.set("engines", std::move(engines));

  JsonValue channels = JsonValue::array();
  for (const DeadlockReport::ChannelMeta& meta : report.channels) {
    JsonValue c = JsonValue::object();
    c.set("id", meta.id);
    c.set("valueName", meta.valueName);
    c.set("producerStage", meta.producerStage);
    c.set("consumerStage", meta.consumerStage);
    c.set("lanes", meta.lanes);
    c.set("flitsPerValue", meta.flitsPerValue);
    channels.push(std::move(c));
  }
  out.set("channels", std::move(channels));

  JsonValue lanes = JsonValue::array();
  for (const DeadlockReport::LaneState& lane : report.lanes) {
    JsonValue l = JsonValue::object();
    l.set("channel", lane.channel);
    l.set("lane", lane.lane);
    l.set("occupiedFlits", lane.occupiedFlits);
    l.set("capacityFlits", lane.capacityFlits);
    l.set("pushes", lane.pushes);
    l.set("pops", lane.pops);
    lanes.push(std::move(l));
  }
  out.set("lanes", std::move(lanes));

  JsonValue events = JsonValue::array();
  for (const DeadlockReport::Event& event : report.recentEvents) {
    JsonValue e = JsonValue::object();
    e.set("cycle", event.cycle);
    e.set("kind", DeadlockReport::eventKindName(event.kind));
    e.set("engine", event.engine);
    if (event.kind == DeadlockReport::Event::Kind::Park)
      e.set("wait", DeadlockReport::waitName(event.wait));
    if (event.channel >= 0)
      e.set("channel", event.channel);
    if (event.lane >= 0)
      e.set("lane", event.lane);
    events.push(std::move(e));
  }
  out.set("recentEvents", std::move(events));

  JsonValue cycle = JsonValue::array();
  for (const int engineId : report.blockingCycle)
    cycle.push(engineId);
  out.set("blockingCycle", std::move(cycle));
  out.set("wedgedChannel", report.wedgedChannel);
  return out;
}

JsonValue failureJson(const Status& status) {
  JsonValue out = JsonValue::object();
  out.set("schema", "cgpa.failure.v1");
  out.set("code", errorCodeName(status.code()));
  out.set("message", status.message());
  if (const auto* report = status.detailAs<DeadlockReport>())
    out.set("deadlock", deadlockReportJson(*report));
  else if (status.detail() != nullptr)
    out.set("detail", status.detail()->describe());
  return out;
}

} // namespace cgpa::trace
