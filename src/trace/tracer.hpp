// Cycle-level observability hooks for the system simulator.
//
// The simulator's hot loops (engine issue, FIFO push/pop, cache submit)
// are instrumented with a single nullable `Tracer*`: with no tracer
// installed every hook site is one predictable branch, the simulated
// behavior is untouched, and cycle counts stay bit-identical to the
// untraced run (pinned by tests/regression_cycles_test.cpp and
// tests/trace_test.cpp). A tracer observes state transitions but never
// mutates simulator state, so enabling tracing cannot change timing
// either.
//
// Event taxonomy (timestamps come from now(), set once per simulated
// cycle by the system scheduler via beginCycle):
//   - Engine spans: onEngineStart / onEngineActive / onEngineStall /
//     onEngineFinish delimit alternating active and stalled spans per
//     engine, classified at the scheduler level: a cycle whose step ended
//     blocked belongs to the stall span even if instructions issued
//     earlier in that cycle. Spans tile [start, finish + 1) exactly, so
//     per-engine span lengths always sum to the engine's live cycles.
//   - Fork/join: onFork ties a spawned worker to the wrapper;
//     onJoinComplete marks a parallel_join retiring.
//   - FIFO fabric: onFifoPush / onFifoPop fire per flit-group transfer
//     with the lane's post-transfer occupancy (the data behind
//     back-pressure and occupancy time-series).
//   - Cache: onCacheAccess fires per accepted request with the bank and
//     hit/miss outcome (miss bursts show up as clustered miss events).
//
// Backends live in src/trace/: ChromeTraceWriter (Perfetto-loadable
// trace-event JSON), IntervalSampler (CSV time-series), MetricsRegistry
// (machine-readable end-of-run stats). This header stays dependency-free
// so sim/ can include it without linking the backends.
#pragma once

#include <cstdint>
#include <vector>

namespace cgpa::sim {

/// Stall classification carried on stall spans; mirrors
/// WorkerEngine::StepOutcome::Stall (Mem: cache port/response; Fifo:
/// channel full/empty; Dep: operand latency or join).
enum class TraceStall : std::uint8_t { Mem, Fifo, Dep };

inline const char* traceStallName(TraceStall cause) {
  switch (cause) {
  case TraceStall::Mem:
    return "mem";
  case TraceStall::Fifo:
    return "fifo";
  case TraceStall::Dep:
    return "dep";
  }
  return "?";
}

class Tracer {
public:
  virtual ~Tracer() = default;

  /// Advance the trace clock; called by the system scheduler once per
  /// simulated cycle (values are nondecreasing; fast-forwards over fully
  /// parked stretches appear as jumps). All hooks timestamp with now().
  virtual void beginCycle(std::uint64_t now) { now_ = now; }
  std::uint64_t now() const { return now_; }

  // --- engine scheduler hooks ---
  /// Engine came alive (wrapper at cycle 0, workers at their fork cycle);
  /// taskIndex/stageIndex are -1 for the wrapper. Starts an active span.
  virtual void onEngineStart(int /*engineId*/, int /*taskIndex*/,
                             int /*stageIndex*/) {}
  /// Engine resumed forward progress: closes the current stall span and
  /// opens an active one.
  virtual void onEngineActive(int /*engineId*/) {}
  /// Engine blocked: closes the current span and opens a stall span of
  /// `cause`. channel/lane identify the blocking FIFO lane for
  /// TraceStall::Fifo and are -1 otherwise.
  virtual void onEngineStall(int /*engineId*/, TraceStall /*cause*/,
                             int /*channel*/, int /*lane*/) {}
  /// Engine retired; its final span closes at now() + 1 (the finishing
  /// cycle counts as live).
  virtual void onEngineFinish(int /*engineId*/) {}
  /// Wrapper forked a worker running `taskIndex`.
  virtual void onFork(int /*parentId*/, int /*childId*/, int /*taskIndex*/) {}
  /// A parallel_join observed every worker of `loopId` finished.
  virtual void onJoinComplete(int /*engineId*/, int /*loopId*/) {}

  // --- FIFO fabric hooks (occupancy is the lane's flit count after the
  // transfer) ---
  virtual void onFifoPush(int /*channel*/, int /*lane*/,
                          int /*occupiedFlits*/) {}
  virtual void onFifoPop(int /*channel*/, int /*lane*/,
                         int /*occupiedFlits*/) {}

  // --- cache hooks ---
  virtual void onCacheAccess(int /*bank*/, bool /*hit*/, bool /*isWrite*/) {}

  /// Simulation finished; backends close open spans and finalize.
  virtual void onRunEnd() {}

private:
  std::uint64_t now_ = 0;
};

/// Fan-out tracer: forwards every hook to each registered sink, letting
/// one run feed several backends (e.g. a Chrome trace plus a CSV sampler).
class TeeTracer : public Tracer {
public:
  void add(Tracer* sink) {
    if (sink != nullptr)
      sinks_.push_back(sink);
  }
  bool empty() const { return sinks_.empty(); }

  void beginCycle(std::uint64_t now) override {
    Tracer::beginCycle(now);
    for (Tracer* sink : sinks_)
      sink->beginCycle(now);
  }
  void onEngineStart(int engineId, int taskIndex, int stageIndex) override {
    for (Tracer* sink : sinks_)
      sink->onEngineStart(engineId, taskIndex, stageIndex);
  }
  void onEngineActive(int engineId) override {
    for (Tracer* sink : sinks_)
      sink->onEngineActive(engineId);
  }
  void onEngineStall(int engineId, TraceStall cause, int channel,
                     int lane) override {
    for (Tracer* sink : sinks_)
      sink->onEngineStall(engineId, cause, channel, lane);
  }
  void onEngineFinish(int engineId) override {
    for (Tracer* sink : sinks_)
      sink->onEngineFinish(engineId);
  }
  void onFork(int parentId, int childId, int taskIndex) override {
    for (Tracer* sink : sinks_)
      sink->onFork(parentId, childId, taskIndex);
  }
  void onJoinComplete(int engineId, int loopId) override {
    for (Tracer* sink : sinks_)
      sink->onJoinComplete(engineId, loopId);
  }
  void onFifoPush(int channel, int lane, int occupiedFlits) override {
    for (Tracer* sink : sinks_)
      sink->onFifoPush(channel, lane, occupiedFlits);
  }
  void onFifoPop(int channel, int lane, int occupiedFlits) override {
    for (Tracer* sink : sinks_)
      sink->onFifoPop(channel, lane, occupiedFlits);
  }
  void onCacheAccess(int bank, bool hit, bool isWrite) override {
    for (Tracer* sink : sinks_)
      sink->onCacheAccess(bank, hit, isWrite);
  }
  void onRunEnd() override {
    for (Tracer* sink : sinks_)
      sink->onRunEnd();
  }

private:
  std::vector<Tracer*> sinks_;
};

} // namespace cgpa::sim
