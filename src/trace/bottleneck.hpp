// Cross-layer bottleneck attribution: joins a simulated run's counters
// (per-engine active/stall splits, per-channel pushes/occupancy/park
// events) with the compiler's decision provenance (trace/remarks.hpp) to
// answer "which stage limits this pipeline, and why" — the post-run half
// of the observability story whose compile-time half is the remarks
// subsystem. Surfaced through `cgpac --explain`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cgpa::pipeline {
struct PipelineModule;
}
namespace cgpa::sim {
struct SimResult;
}

namespace cgpa::trace {

class RemarkCollector;

/// Aggregated health of one pipeline stage (all engines running its task).
struct StageHealth {
  int stageIndex = -1; ///< -1 for the wrapper co-processor.
  bool parallel = false;
  int engines = 0;
  std::uint64_t active = 0;
  std::uint64_t stalled = 0;
  std::uint64_t stallMem = 0;
  std::uint64_t stallFifo = 0;
  std::uint64_t stallDep = 0;

  double utilization() const {
    const std::uint64_t total = active + stalled;
    return total == 0 ? 0.0
                      : static_cast<double>(active) / static_cast<double>(total);
  }
};

/// One channel's backpressure picture, joined with its compile-time
/// provenance (producing instruction, endpoint stages) when remarks are
/// available.
struct ChannelPressure {
  int id = -1;
  std::string name;          ///< Communicated value's name.
  std::string producerOp;    ///< From transform remarks; "" without them.
  int producerStage = -1;
  int consumerStage = -1;
  bool broadcast = false;
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  int maxOccupancyFlits = 0;
  int capacityFlits = 0;
  std::uint64_t parkFull = 0;  ///< Producer-side blocks (channel full).
  std::uint64_t parkEmpty = 0; ///< Consumer-side blocks (channel empty).

  /// The channel hit its per-lane capacity at least once.
  bool saturated() const {
    return capacityFlits > 0 && maxOccupancyFlits >= capacityFlits;
  }
};

/// A ranked what-if: highest score first after buildHealthReport().
struct Suggestion {
  std::string what;
  std::string why;
  double score = 0.0;
};

struct PipelineHealthReport {
  std::uint64_t cycles = 0;
  int numWorkers = 1;
  /// Stage with the highest utilization (the one the others wait on);
  /// -1 when the run produced no engine data.
  int limitingStage = -1;
  bool limitingParallel = false;
  std::string limitingReason;
  /// Classic Amdahl bound on further worker scaling: (seq + par) / seq
  /// active cycles, treating every non-parallel stage's work as serial.
  /// 0 when there is no sequential work to bound against.
  double amdahlCeiling = 0.0;
  std::vector<StageHealth> stages;      ///< Wrapper first, then by stage.
  std::vector<ChannelPressure> channels;
  std::vector<Suggestion> suggestions;  ///< Ranked, highest score first.
};

/// Build the report from a finished run. `remarks` (optional) is the
/// collector threaded through the compile that produced `pipeline`; it
/// adds source-instruction attribution to channels and partition-policy
/// awareness to the suggestions, but the report works without it.
PipelineHealthReport buildHealthReport(const sim::SimResult& result,
                                       const pipeline::PipelineModule& pipeline,
                                       const RemarkCollector* remarks = nullptr);

/// Human-readable rendering (the `cgpac --explain` output).
std::string renderHealthReport(const PipelineHealthReport& report);

} // namespace cgpa::trace
