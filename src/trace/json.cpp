#include "trace/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace cgpa::trace {

double JsonValue::asDouble() const {
  switch (kind_) {
  case Kind::Int:
    return static_cast<double>(int_);
  case Kind::Uint:
    return static_cast<double>(uint_);
  case Kind::Double:
    return double_;
  default:
    return 0.0;
  }
}

std::uint64_t JsonValue::asUint() const {
  switch (kind_) {
  case Kind::Int:
    return int_ < 0 ? 0 : static_cast<std::uint64_t>(int_);
  case Kind::Uint:
    return uint_;
  case Kind::Double:
    return double_ < 0.0 ? 0 : static_cast<std::uint64_t>(double_);
  default:
    return 0;
  }
}

JsonValue& JsonValue::push(JsonValue value) {
  kind_ = Kind::Array;
  items_.push_back(std::move(value));
  return items_.back();
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  kind_ = Kind::Object;
  for (auto& [k, v] : members_)
    if (k == key) {
      v = std::move(value);
      return v;
    }
  members_.emplace_back(key, std::move(value));
  return members_.back().second;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [k, v] : members_)
    if (k == key)
      return &v;
  return nullptr;
}

std::string jsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
    case '"':
      out += "\\\"";
      break;
    case '\\':
      out += "\\\\";
      break;
    case '\n':
      out += "\\n";
      break;
    case '\r':
      out += "\\r";
      break;
    case '\t':
      out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
  }
  return out;
}

namespace {

void writeIndent(std::ostream& os, int indent, int depth) {
  if (indent <= 0)
    return;
  os << '\n';
  for (int i = 0; i < indent * depth; ++i)
    os << ' ';
}

} // namespace

void JsonValue::dumpImpl(std::ostream& os, int indent, int depth) const {
  switch (kind_) {
  case Kind::Null:
    os << "null";
    break;
  case Kind::Bool:
    os << (bool_ ? "true" : "false");
    break;
  case Kind::Int:
    os << int_;
    break;
  case Kind::Uint:
    os << uint_;
    break;
  case Kind::Double: {
    if (std::isfinite(double_)) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", double_);
      os << buf;
    } else {
      os << "null"; // JSON has no Inf/NaN.
    }
    break;
  }
  case Kind::String:
    os << '"' << jsonEscape(string_) << '"';
    break;
  case Kind::Array: {
    os << '[';
    for (std::size_t i = 0; i < items_.size(); ++i) {
      if (i != 0)
        os << ',';
      writeIndent(os, indent, depth + 1);
      items_[i].dumpImpl(os, indent, depth + 1);
    }
    if (!items_.empty())
      writeIndent(os, indent, depth);
    os << ']';
    break;
  }
  case Kind::Object: {
    os << '{';
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (i != 0)
        os << ',';
      writeIndent(os, indent, depth + 1);
      os << '"' << jsonEscape(members_[i].first)
         << (indent > 0 ? "\": " : "\":");
      members_[i].second.dumpImpl(os, indent, depth + 1);
    }
    if (!members_.empty())
      writeIndent(os, indent, depth);
    os << '}';
    break;
  }
  }
}

void JsonValue::dump(std::ostream& os, int indent) const {
  dumpImpl(os, indent, 0);
}

std::string JsonValue::dump(int indent) const {
  std::ostringstream os;
  dump(os, indent);
  return os.str();
}

namespace {

/// Recursive-descent parser over full JSON syntax, including \uXXXX
/// escapes (UTF-16 surrogate pairs decode to the UTF-8 encoding of the
/// combined code point).
class Parser {
public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> parse() {
    skipWs();
    JsonValue value;
    if (!parseValue(value))
      return std::nullopt;
    skipWs();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return value;
  }

private:
  void fail(const std::string& message) {
    if (error_ != nullptr && error_->empty())
      *error_ = message + " at offset " + std::to_string(pos_);
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  bool literal(const char* word) {
    const std::size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) != 0) {
      fail(std::string("expected '") + word + "'");
      return false;
    }
    pos_ += n;
    return true;
  }

  bool parseString(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      fail("expected string");
      return false;
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        if (pos_ + 1 >= text_.size()) {
          fail("truncated escape");
          return false;
        }
        const char esc = text_[pos_ + 1];
        switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          pos_ += 2; // Consume the "\u"; parseUnicodeEscape eats the rest.
          if (!parseUnicodeEscape(out))
            return false;
          continue;
        }
        default:
          fail("bad escape");
          return false;
        }
        pos_ += 2;
      } else {
        out += text_[pos_++];
      }
    }
    if (pos_ >= text_.size()) {
      fail("unterminated string");
      return false;
    }
    ++pos_; // Closing quote.
    return true;
  }

  /// Four hex digits at pos_ → `unit`; advances past them.
  bool parseHex4(unsigned& unit) {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
      return false;
    }
    unit = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      unsigned digit = 0;
      if (c >= '0' && c <= '9')
        digit = static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        digit = static_cast<unsigned>(c - 'a') + 10;
      else if (c >= 'A' && c <= 'F')
        digit = static_cast<unsigned>(c - 'A') + 10;
      else {
        fail("bad hex digit in \\u escape");
        return false;
      }
      unit = unit * 16 + digit;
    }
    pos_ += 4;
    return true;
  }

  /// Decodes one \uXXXX escape (pos_ is just past the "\u"), combining a
  /// UTF-16 surrogate pair ("\\uD83D\\uDE00") into its supplementary code
  /// point, and appends the UTF-8 encoding. Lone or mismatched surrogates
  /// are malformed input and fail the parse.
  bool parseUnicodeEscape(std::string& out) {
    unsigned unit = 0;
    if (!parseHex4(unit))
      return false;
    std::uint32_t code = unit;
    if (unit >= 0xD800 && unit <= 0xDBFF) {
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        fail("high surrogate not followed by \\u low surrogate");
        return false;
      }
      pos_ += 2;
      unsigned low = 0;
      if (!parseHex4(low))
        return false;
      if (low < 0xDC00 || low > 0xDFFF) {
        fail("high surrogate followed by a non-low-surrogate");
        return false;
      }
      code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
    } else if (unit >= 0xDC00 && unit <= 0xDFFF) {
      fail("lone low surrogate");
      return false;
    }
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return true;
  }

  bool parseNumber(JsonValue& out) {
    const std::size_t begin = pos_;
    bool isFloat = false;
    if (pos_ < text_.size() && text_[pos_] == '-')
      ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        isFloat = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == begin) {
      fail("expected number");
      return false;
    }
    const std::string token = text_.substr(begin, pos_ - begin);
    if (isFloat) {
      out = JsonValue(std::strtod(token.c_str(), nullptr));
    } else if (token[0] == '-') {
      out = JsonValue(static_cast<long long>(
          std::strtoll(token.c_str(), nullptr, 10)));
    } else {
      out = JsonValue(static_cast<unsigned long long>(
          std::strtoull(token.c_str(), nullptr, 10)));
    }
    return true;
  }

  bool parseValue(JsonValue& out) {
    skipWs();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out = JsonValue::object();
      skipWs();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        skipWs();
        std::string key;
        if (!parseString(key))
          return false;
        skipWs();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          fail("expected ':'");
          return false;
        }
        ++pos_;
        JsonValue value;
        if (!parseValue(value))
          return false;
        out.set(key, std::move(value));
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        fail("expected ',' or '}'");
        return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out = JsonValue::array();
      skipWs();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue value;
        if (!parseValue(value))
          return false;
        out.push(std::move(value));
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        fail("expected ',' or ']'");
        return false;
      }
    }
    if (c == '"') {
      std::string value;
      if (!parseString(value))
        return false;
      out = JsonValue(std::move(value));
      return true;
    }
    if (c == 't') {
      if (!literal("true"))
        return false;
      out = JsonValue(true);
      return true;
    }
    if (c == 'f') {
      if (!literal("false"))
        return false;
      out = JsonValue(false);
      return true;
    }
    if (c == 'n') {
      if (!literal("null"))
        return false;
      out = JsonValue();
      return true;
    }
    return parseNumber(out);
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

} // namespace

std::optional<JsonValue> parseJson(const std::string& text,
                                   std::string* error) {
  if (error != nullptr)
    error->clear();
  return Parser(text, error).parse();
}

} // namespace cgpa::trace
