// MetricsRegistry: renders end-of-run simulator results as stable
// machine-readable JSON (schema "cgpa.simstats.v1"). Consumers — CI
// checks, sweep scripts, notebook analyses — key on the documented field
// names; adding fields is allowed, renaming or re-typing them is a schema
// bump.
//
// Schema v1 (all counters are cycle- or event-counts unless noted):
//   schema          "cgpa.simstats.v1"
//   cycles          total simulated cycles
//   returnValue     wrapper return value
//   enginesSpawned  workers forked (excludes the wrapper)
//   timeMicros      cycles / freqMHz (when a frequency was supplied)
//   cache           {accesses, hits, misses, bankRejects, hitRate}
//   fifo            {pushes, pops, maxOccupancyFlits}
//                   (maxOccupancyFlits: whole-fabric high-water mark)
//   stalls          {mem, fifo, dep}
//   engineCycles    {active, stalled}
//   energy          {dynamicPj}
//   engines         [{id, taskIndex, stageIndex, active, stalled,
//                     stallMem, stallFifo, stallDep, energyPj, ops}]
//                   (id 0 is the wrapper: taskIndex/stageIndex -1)
//   channels        [{id, name, producerStage, consumerStage, broadcast,
//                     lanes, pushes, pops, maxOccupancyFlits,
//                     capacityFlits, parkFull, parkEmpty}]
//                   (parkFull/parkEmpty: engine park events while pushing
//                   into a full / popping from an empty lane — the
//                   backpressure attribution the --explain report uses)
//   opCounts        {<opcode mnemonic>: count, ...}
#pragma once

#include <string>

#include "trace/json.hpp"

namespace cgpa::sim {
struct SimResult;
}
namespace cgpa::pipeline {
struct PipelineModule;
}

namespace cgpa::trace {

/// Inputs for the complete cgpac-style stats document: the registered
/// SimResult plus the run-identity fields cgpac attaches beside it.
struct StatsDocInputs {
  const sim::SimResult* result = nullptr;             ///< Required.
  const pipeline::PipelineModule* pipeline = nullptr; ///< Optional.
  double freqMHz = 0.0; ///< > 0 adds timeMicros.
  std::string kernel;   ///< Kernel name (or fuzz-spec line).
  std::string flow;     ///< Display name, e.g. driver::flowName().
  bool correct = false;
  int workers = 0;
  int fifoDepth = 0;
  int scale = 0;
  std::uint64_t seed = 0;
};

/// The full document `cgpac --stats-json` writes: cgpa.simstats.v1 fields
/// plus kernel/flow/correct/config. One builder shared by the CLI and the
/// cgpad service so a job produces a byte-identical stats document through
/// either path — the differential oracle tests/serve_determinism_test.cpp
/// pins.
JsonValue buildStatsDocument(const StatsDocInputs& in);

class MetricsRegistry {
public:
  MetricsRegistry() : root_(JsonValue::object()) {}

  /// The document root; callers may attach extra metrics beside the
  /// registered ones (e.g. kernel name, flow, configuration).
  JsonValue& root() { return root_; }
  const JsonValue& root() const { return root_; }

  /// Register the full SimResult under the root per schema v1. `pipeline`
  /// (optional) supplies channel names/topology; `freqMHz` > 0 adds
  /// timeMicros.
  void addSimResult(const sim::SimResult& result,
                    const pipeline::PipelineModule* pipeline = nullptr,
                    double freqMHz = 0.0);

  /// Pretty-printed JSON document.
  std::string render() const { return root_.dump(2) + "\n"; }
  bool writeFile(const std::string& path) const;

private:
  JsonValue root_;
};

} // namespace cgpa::trace
