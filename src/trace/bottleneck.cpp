#include "trace/bottleneck.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "pipeline/transform.hpp"
#include "sim/system.hpp"
#include "trace/remarks.hpp"

namespace cgpa::trace {

namespace {

std::string percent(double fraction) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.1f%%", fraction * 100.0);
  return buffer;
}

std::string ratio(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.2fx", value);
  return buffer;
}

std::string stageLabel(const StageHealth& stage) {
  if (stage.stageIndex < 0)
    return "wrapper";
  std::string label = "stage " + std::to_string(stage.stageIndex);
  label += stage.parallel ? " (parallel)" : " (sequential)";
  return label;
}

/// transform/channel remark for channel `id`, or nullptr.
const Remark* channelRemark(const RemarkCollector* remarks, int id) {
  if (remarks == nullptr)
    return nullptr;
  const std::string subject = "ch" + std::to_string(id);
  for (const Remark& remark : remarks->remarks())
    if (remark.pass == "transform" && remark.rule == "channel" &&
        remark.subject == subject)
      return &remark;
  return nullptr;
}

} // namespace

PipelineHealthReport buildHealthReport(const sim::SimResult& result,
                                       const pipeline::PipelineModule& pipeline,
                                       const RemarkCollector* remarks) {
  PipelineHealthReport report;
  report.cycles = result.cycles;
  report.numWorkers = pipeline.numWorkers;

  // Fold engines into stages (wrapper = stage -1; a parallel stage's
  // workers all share one StageHealth). std::map keeps stages ordered.
  std::map<int, StageHealth> byStage;
  for (const sim::SimResult::EngineSummary& engine : result.engines) {
    StageHealth& stage = byStage[engine.stageIndex];
    stage.stageIndex = engine.stageIndex;
    if (engine.taskIndex >= 0 &&
        engine.taskIndex < static_cast<int>(pipeline.tasks.size()))
      stage.parallel =
          pipeline.tasks[static_cast<std::size_t>(engine.taskIndex)].parallel;
    ++stage.engines;
    stage.active += engine.stats.cyclesActive;
    stage.stalled += engine.stats.cyclesStalled;
    stage.stallMem += engine.stats.stallMem;
    stage.stallFifo += engine.stats.stallFifo;
    stage.stallDep += engine.stats.stallDep;
  }
  for (const auto& [index, stage] : byStage)
    report.stages.push_back(stage);

  // Channels, joined with their compile-time provenance when available.
  for (std::size_t c = 0; c < result.channelStats.size(); ++c) {
    const sim::ChannelSet::ChannelStats& stats = result.channelStats[c];
    ChannelPressure pressure;
    pressure.id = static_cast<int>(c);
    if (c < pipeline.channels.size()) {
      const pipeline::ChannelInfo& info = pipeline.channels[c];
      pressure.name = info.valueName;
      pressure.producerStage = info.producerStage;
      pressure.consumerStage = info.consumerStage;
      pressure.broadcast = info.broadcast;
    }
    pressure.pushes = stats.pushes;
    pressure.pops = stats.pops;
    pressure.maxOccupancyFlits = stats.maxOccupancyFlits;
    pressure.capacityFlits = stats.capacityFlits;
    pressure.parkFull = stats.parkFull;
    pressure.parkEmpty = stats.parkEmpty;
    if (const Remark* remark = channelRemark(remarks, pressure.id))
      if (const RemarkArg* producerOp = remark->findArg("producer_op"))
        pressure.producerOp = producerOp->text;
    report.channels.push_back(std::move(pressure));
  }

  // Limiting stage: the busiest real stage — the one everyone else's
  // FIFO stalls trace back to. Ties break toward the earlier stage.
  const StageHealth* limiting = nullptr;
  for (const StageHealth& stage : report.stages) {
    if (stage.stageIndex < 0)
      continue;
    if (limiting == nullptr || stage.utilization() > limiting->utilization())
      limiting = &stage;
  }
  if (limiting != nullptr) {
    report.limitingStage = limiting->stageIndex;
    report.limitingParallel = limiting->parallel;

    // Evidence: channels this stage feeds that ran empty (starving its
    // consumers) and channels into it that ran full (backing up its
    // producers).
    std::uint64_t starvedDownstream = 0;
    std::uint64_t backedUpUpstream = 0;
    for (const ChannelPressure& channel : report.channels) {
      if (channel.producerStage == limiting->stageIndex)
        starvedDownstream += channel.parkEmpty;
      if (channel.consumerStage == limiting->stageIndex)
        backedUpUpstream += channel.parkFull;
    }
    std::ostringstream reason;
    reason << stageLabel(*limiting) << " is the busiest stage ("
           << percent(limiting->utilization()) << " of its engine cycles";
    if (limiting->engines > 1)
      reason << " across " << limiting->engines << " workers";
    reason << ")";
    if (starvedDownstream > 0)
      reason << "; its output channels ran empty " << starvedDownstream
             << " times (consumers starved)";
    if (backedUpUpstream > 0)
      reason << "; its input channels ran full " << backedUpUpstream
             << " times (producers backed up)";
    report.limitingReason = reason.str();
  }

  // Amdahl bound on adding workers: non-parallel stage work is serial.
  std::uint64_t seqActive = 0;
  std::uint64_t parActive = 0;
  for (const StageHealth& stage : report.stages) {
    if (stage.stageIndex < 0)
      continue;
    (stage.parallel ? parActive : seqActive) += stage.active;
  }
  if (seqActive > 0)
    report.amdahlCeiling = static_cast<double>(seqActive + parActive) /
                           static_cast<double>(seqActive);

  // What-if suggestions, ranked by the contention they address.
  for (const ChannelPressure& channel : report.channels) {
    if (!channel.saturated() || channel.parkFull == 0)
      continue;
    Suggestion s;
    s.what = "deepen the FIFO on channel ch" + std::to_string(channel.id) +
             (channel.name.empty() ? "" : " ('" + channel.name + "')");
    s.why = "it hit its capacity of " +
            std::to_string(channel.capacityFlits) +
            " flits and producers parked " + std::to_string(channel.parkFull) +
            " times pushing into it";
    if (!channel.producerOp.empty())
      s.why += " (fed by '" + channel.producerOp + "')";
    s.score = static_cast<double>(channel.parkFull);
    report.suggestions.push_back(std::move(s));
  }
  if (limiting != nullptr && limiting->parallel) {
    Suggestion s;
    s.what = "raise the worker count (currently W=" +
             std::to_string(report.numWorkers) + ")";
    s.why = "the limiting stage is the parallel stage at " +
            percent(limiting->utilization()) +
            " utilization, so more workers shorten it directly";
    s.score = static_cast<double>(limiting->active);
    report.suggestions.push_back(std::move(s));
  }
  if (limiting != nullptr && !limiting->parallel && remarks != nullptr) {
    // A heavyweight replicable SCC that P1 declined to duplicate is the
    // signature case where the P2 (force-parallel) policy moves work out
    // of a sequential stage.
    for (const Remark& remark : remarks->remarks()) {
      if (remark.pass != "partition" || remark.rule != "replication-candidate")
        continue;
      const RemarkArg* replicated = remark.findArg("replicated");
      if (replicated == nullptr || replicated->boolValue)
        continue;
      Suggestion s;
      s.what = "recompile with the P2 (force-parallel) partition policy";
      s.why = "the limiting stage is sequential and " + remark.subject +
              " is replicable but was left out of the parallel stage" +
              " by the P1 lightweight heuristic";
      s.score = static_cast<double>(limiting->active);
      report.suggestions.push_back(std::move(s));
      break;
    }
  }
  std::stable_sort(report.suggestions.begin(), report.suggestions.end(),
                   [](const Suggestion& a, const Suggestion& b) {
                     return a.score > b.score;
                   });
  return report;
}

std::string renderHealthReport(const PipelineHealthReport& report) {
  std::ostringstream out;
  out << "=== Pipeline health report ===\n";
  out << "cycles: " << report.cycles << "  workers: " << report.numWorkers
      << "\n";
  if (report.limitingStage >= 0) {
    out << "limiting stage: stage " << report.limitingStage << " ("
        << (report.limitingParallel ? "parallel" : "sequential") << ")\n";
    out << "  " << report.limitingReason << "\n";
  } else {
    out << "limiting stage: (no engine data)\n";
  }
  if (report.amdahlCeiling > 0.0)
    out << "amdahl ceiling: " << ratio(report.amdahlCeiling)
        << " speedup over the sequential stages if the parallel work were "
           "free\n";

  out << "\nstages:\n";
  for (const StageHealth& stage : report.stages) {
    out << "  " << stageLabel(stage);
    if (stage.engines > 1)
      out << " x" << stage.engines;
    out << ": util " << percent(stage.utilization()) << "  active "
        << stage.active << "  stalled " << stage.stalled << " (mem "
        << stage.stallMem << ", fifo " << stage.stallFifo << ", dep "
        << stage.stallDep << ")\n";
  }

  if (!report.channels.empty()) {
    out << "\nchannels:\n";
    for (const ChannelPressure& channel : report.channels) {
      out << "  ch" << channel.id;
      if (!channel.name.empty())
        out << " '" << channel.name << "'";
      out << " stage " << channel.producerStage << " -> "
          << channel.consumerStage;
      if (channel.broadcast)
        out << " (broadcast)";
      out << ": pushes " << channel.pushes << "  occ "
          << channel.maxOccupancyFlits << "/" << channel.capacityFlits
          << "  parkFull " << channel.parkFull << "  parkEmpty "
          << channel.parkEmpty;
      if (!channel.producerOp.empty())
        out << "  [from '" << channel.producerOp << "']";
      out << "\n";
    }
  }

  if (!report.suggestions.empty()) {
    out << "\nsuggestions:\n";
    for (std::size_t i = 0; i < report.suggestions.size(); ++i) {
      const Suggestion& s = report.suggestions[i];
      out << "  " << (i + 1) << ". " << s.what << "\n     why: " << s.why
          << "\n";
    }
  }
  return out.str();
}

} // namespace cgpa::trace
