#include "analysis/pdg.hpp"

#include <algorithm>

#include "support/diag.hpp"

namespace cgpa::analysis {

using ir::BasicBlock;
using ir::Instruction;
using ir::Opcode;

namespace {

std::string instLabel(const Instruction* inst) {
  if (!inst->name().empty())
    return inst->name();
  return std::string(ir::opcodeName(inst->opcode()));
}

} // namespace

Pdg::Pdg(const ir::Function& function, const Loop& loop,
         const AliasAnalysis& alias, const ControlDependence& controlDeps,
         trace::RemarkCollector* remarks)
    : loop_(&loop) {
  // Node set: every instruction of every block in the loop, in block order.
  for (BasicBlock* block : loop.blocks) {
    for (const auto& inst : block->instructions()) {
      index_[inst.get()] = static_cast<int>(nodes_.size());
      nodes_.push_back(inst.get());
    }
  }
  succ_.resize(nodes_.size());

  // Intra-iteration block reachability: nonempty paths that do not re-enter
  // the loop header (i.e. do not cross the target loop's back edge). Inner
  // loop back edges are kept, so wrap-around within an inner loop counts.
  const int numBlocks = static_cast<int>(loop.blocks.size());
  for (int i = 0; i < numBlocks; ++i)
    blockIndex_[loop.blocks[static_cast<std::size_t>(i)]] = i;
  reach_.assign(static_cast<std::size_t>(numBlocks),
                std::vector<bool>(static_cast<std::size_t>(numBlocks), false));
  for (int start = 0; start < numBlocks; ++start) {
    std::vector<const BasicBlock*> worklist = {
        loop.blocks[static_cast<std::size_t>(start)]};
    while (!worklist.empty()) {
      const BasicBlock* block = worklist.back();
      worklist.pop_back();
      for (const BasicBlock* next : block->successors()) {
        if (next == loop.header || !loop.contains(next))
          continue;
        const int ni = blockIndex_.at(next);
        if (reach_[static_cast<std::size_t>(start)][static_cast<std::size_t>(ni)])
          continue;
        reach_[static_cast<std::size_t>(start)][static_cast<std::size_t>(ni)] =
            true;
        worklist.push_back(next);
      }
    }
  }

  // --- Register dependences ---
  for (Instruction* user : nodes_) {
    for (int opIdx = 0; opIdx < user->numOperands(); ++opIdx) {
      Instruction* def = ir::asInstruction(user->operand(opIdx));
      if (def == nullptr || !loop.contains(def))
        continue;
      bool carried = false;
      if (user->opcode() == Opcode::Phi && user->parent() == loop.header) {
        const BasicBlock* incoming =
            user->incomingBlocks()[static_cast<std::size_t>(opIdx)];
        carried = loop.contains(incoming);
        if (carried) {
          // Loop-carried registers update simultaneously at the iteration
          // boundary: the old phi value must be consumed before the latch
          // value overwrites it (write-after-read). The reverse carried
          // edge fuses shift-register chains (the paper's R2 sections in
          // 1D-Gaussblur) into a single replicable SCC.
          addEdge(index_.at(user), index_.at(def), PdgEdge::Kind::Register,
                  true);
        }
      }
      addEdge(index_.at(def), index_.at(user), PdgEdge::Kind::Register,
              carried);
    }
  }

  // --- Memory dependences ---
  std::vector<Instruction*> memOps;
  for (Instruction* inst : nodes_)
    if (inst->isMemory())
      memOps.push_back(inst);
  for (std::size_t i = 0; i < memOps.size(); ++i) {
    for (std::size_t j = i + 1; j < memOps.size(); ++j) {
      Instruction* a = memOps[i];
      Instruction* b = memOps[j];
      if (a->opcode() == Opcode::Load && b->opcode() == Opcode::Load)
        continue;
      const MemDepResult dep = alias.memoryDep(a, b, &loop);
      if (dep.mayAliasIntra) {
        if (mayExecuteBefore(a, b))
          addEdge(index_.at(a), index_.at(b), PdgEdge::Kind::Memory, false);
        if (mayExecuteBefore(b, a))
          addEdge(index_.at(b), index_.at(a), PdgEdge::Kind::Memory, false);
      }
      if (dep.mayAliasCarried) {
        addEdge(index_.at(a), index_.at(b), PdgEdge::Kind::Memory, true);
        addEdge(index_.at(b), index_.at(a), PdgEdge::Kind::Memory, true);
      }
      if (remarks != nullptr) {
        // One remark per memory-op pair alias analysis looked at: pruned
        // pairs are the dependences the partitioner never has to respect.
        const bool kept = dep.mayAliasIntra || dep.mayAliasCarried;
        remarks
            ->add("pdg", kept ? "mem-dep-kept" : "mem-dep-pruned",
                  instLabel(a) + "," + instLabel(b))
            .note(kept ? "alias analysis kept a possible memory dependence"
                       : "alias analysis proved independence; no PDG edge")
            .arg("a", instLabel(a))
            .arg("a_op", std::string(ir::opcodeName(a->opcode())))
            .arg("b", instLabel(b))
            .arg("b_op", std::string(ir::opcodeName(b->opcode())))
            .arg("intra", dep.mayAliasIntra)
            .arg("carried", dep.mayAliasCarried);
      }
    }
  }

  // --- Control dependences ---
  for (Instruction* inst : nodes_) {
    for (Instruction* branch : controlDeps.controllers(inst->parent())) {
      if (!loop.contains(branch))
        continue;
      addEdge(index_.at(branch), index_.at(inst), PdgEdge::Kind::Control,
              false);
    }
  }
  // Loop-carried control: whether the next iteration executes at all
  // depends on every exiting branch.
  for (Instruction* branch : loop.exitingBranches) {
    const int from = index_.at(branch);
    for (int to = 0; to < numNodes(); ++to)
      addEdge(from, to, PdgEdge::Kind::Control, true);
    if (remarks != nullptr)
      remarks->add("pdg", "carried-control", instLabel(branch))
          .note("exiting branch controls whether the next iteration runs; "
                "carried control edge to every node")
          .arg("block", branch->parent()->name())
          .arg("targets", numNodes());
  }

  if (remarks != nullptr) {
    int memEdges = 0;
    int carriedEdges = 0;
    for (const PdgEdge& edge : edges_) {
      if (edge.kind == PdgEdge::Kind::Memory)
        ++memEdges;
      if (edge.loopCarried)
        ++carriedEdges;
    }
    remarks->add("pdg", "summary", function.name() + "/" + loop.header->name())
        .note("PDG built for the target loop")
        .arg("fn", function.name())
        .arg("header", loop.header->name())
        .arg("nodes", numNodes())
        .arg("edges", static_cast<int>(edges_.size()))
        .arg("mem_edges", memEdges)
        .arg("carried_edges", carriedEdges);
  }
}

void Pdg::addEdge(int from, int to, PdgEdge::Kind kind, bool carried) {
  for (const PdgEdge& edge : edges_)
    if (edge.from == from && edge.to == to && edge.kind == kind &&
        edge.loopCarried == carried)
      return;
  edges_.push_back({from, to, kind, carried});
  auto& list = succ_[static_cast<std::size_t>(from)];
  if (std::find(list.begin(), list.end(), to) == list.end())
    list.push_back(to);
}

int Pdg::indexOf(const Instruction* inst) const {
  const auto it = index_.find(inst);
  return it == index_.end() ? -1 : it->second;
}

bool Pdg::mayExecuteBefore(const Instruction* a, const Instruction* b) const {
  const BasicBlock* blockA = a->parent();
  const BasicBlock* blockB = b->parent();
  const int ia = blockIndex_.at(blockA);
  const int ib = blockIndex_.at(blockB);
  if (blockA == blockB) {
    if (blockA->indexOf(a) < blockA->indexOf(b))
      return true;
    // Wrap-around within an inner loop: the block can reach itself without
    // passing the target loop's header.
    return reach_[static_cast<std::size_t>(ia)][static_cast<std::size_t>(ia)];
  }
  return reach_[static_cast<std::size_t>(ia)][static_cast<std::size_t>(ib)];
}

} // namespace cgpa::analysis
