#include "analysis/control_dep.hpp"

#include <algorithm>

namespace cgpa::analysis {

ControlDependence::ControlDependence(const ir::Function& function,
                                     const DominatorTree& postDomTree) {
  // For each CFG edge A->S where S does not post-dominate A, every block on
  // the post-dominator-tree path from S up to (exclusive) ipostdom(A) is
  // control dependent on A's terminator.
  for (const auto& blockOwned : function.blocks()) {
    ir::BasicBlock* a = blockOwned.get();
    ir::Instruction* term = a->terminator();
    if (term == nullptr || term->successors().size() < 2)
      continue;
    const ir::BasicBlock* stop = postDomTree.idom(a);
    for (ir::BasicBlock* succ : a->successors()) {
      const ir::BasicBlock* runner = succ;
      while (runner != nullptr && runner != stop) {
        auto& list = controllers_[runner];
        if (std::find(list.begin(), list.end(), term) == list.end())
          list.push_back(term);
        runner = postDomTree.idom(runner);
      }
    }
  }
}

const std::vector<ir::Instruction*>&
ControlDependence::controllers(const ir::BasicBlock* block) const {
  const auto it = controllers_.find(block);
  return it == controllers_.end() ? empty_ : it->second;
}

} // namespace cgpa::analysis
