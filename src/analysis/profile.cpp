#include "analysis/profile.hpp"

namespace cgpa::analysis {

void ProfileCollector::onExec(const ir::Instruction& inst,
                              std::uint64_t memAddr) {
  (void)inst;
  (void)memAddr;
  ++data_.totalInstructions;
}

void ProfileCollector::onBlockEnter(const ir::BasicBlock& block) {
  ++data_.blockCount[&block];
}

ProfileData profileFunction(const ir::Function& function,
                            std::span<const std::uint64_t> args,
                            interp::Memory& memory) {
  interp::Interpreter interp(memory);
  ProfileCollector collector;
  interp.setObserver(&collector);
  interp::LiveoutFile liveouts;
  interp.setLiveoutFile(&liveouts);
  interp.run(function, args);
  return collector.take();
}

std::uint64_t loopWeight(const Loop& loop, const ProfileData& profile) {
  std::uint64_t weight = 0;
  for (const ir::BasicBlock* block : loop.blocks)
    weight += profile.countOf(block) *
              static_cast<std::uint64_t>(block->size());
  return weight;
}

Loop* hottestLoop(const LoopInfo& loopInfo, const ProfileData& profile) {
  Loop* best = nullptr;
  std::uint64_t bestWeight = 0;
  for (Loop* loop : loopInfo.topLevelLoops()) {
    const std::uint64_t weight = loopWeight(*loop, profile);
    if (best == nullptr || weight > bestWeight) {
      best = loop;
      bestWeight = weight;
    }
  }
  return best;
}

} // namespace cgpa::analysis
