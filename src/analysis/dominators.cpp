#include "analysis/dominators.hpp"

#include <algorithm>

#include "support/diag.hpp"

namespace cgpa::analysis {

namespace {

using ir::BasicBlock;

/// Neighbors in the direction of the walk: successors for forward
/// dominance, predecessors for post-dominance (reverse CFG).
std::vector<const BasicBlock*> walkSuccessors(const ir::Function& function,
                                              const BasicBlock* block,
                                              bool postDom) {
  if (!postDom) {
    const auto succs = block->successors();
    return {succs.begin(), succs.end()};
  }
  std::vector<const BasicBlock*> preds;
  for (BasicBlock* pred : function.predecessorsOf(block))
    preds.push_back(pred);
  return preds;
}

std::vector<const BasicBlock*> walkPredecessors(const ir::Function& function,
                                                const BasicBlock* block,
                                                bool postDom) {
  if (postDom) {
    const auto succs = block->successors();
    return {succs.begin(), succs.end()};
  }
  std::vector<const BasicBlock*> preds;
  for (BasicBlock* pred : function.predecessorsOf(block))
    preds.push_back(pred);
  return preds;
}

} // namespace

DominatorTree::DominatorTree(const ir::Function& function, bool postDom)
    : postDom_(postDom) {
  // Roots: entry for forward dominance; every Ret block for post-dominance
  // (all attached to a virtual root).
  std::vector<const BasicBlock*> roots;
  if (!postDom) {
    roots.push_back(function.entry());
  } else {
    for (const auto& block : function.blocks()) {
      const ir::Instruction* term = block->terminator();
      if (term != nullptr && term->opcode() == ir::Opcode::Ret)
        roots.push_back(block.get());
    }
  }

  // Postorder DFS from the roots over the walk direction, then reverse.
  std::unordered_map<const BasicBlock*, bool> visited;
  std::vector<const BasicBlock*> postorder;
  for (const BasicBlock* root : roots) {
    if (visited[root])
      continue;
    // Iterative DFS.
    std::vector<std::pair<const BasicBlock*, std::size_t>> stack;
    stack.emplace_back(root, 0);
    visited[root] = true;
    while (!stack.empty()) {
      auto& [block, next] = stack.back();
      const auto succs = walkSuccessors(function, block, postDom);
      if (next < succs.size()) {
        const BasicBlock* succ = succs[next++];
        if (!visited[succ]) {
          visited[succ] = true;
          stack.emplace_back(succ, 0);
        }
      } else {
        postorder.push_back(block);
        stack.pop_back();
      }
    }
  }
  rpo_.assign(postorder.rbegin(), postorder.rend());
  for (std::size_t i = 0; i < rpo_.size(); ++i)
    rpoIndex_[rpo_[i]] = static_cast<int>(i);

  const int n = static_cast<int>(rpo_.size());
  idom_.assign(static_cast<std::size_t>(n), -2); // -2 = unset, -1 = virtual root.
  depth_.assign(static_cast<std::size_t>(n), 0);

  std::unordered_map<const BasicBlock*, bool> isRoot;
  for (const BasicBlock* root : roots)
    isRoot[root] = true;

  // Cooper–Harvey–Kennedy fixed point.
  auto intersect = [&](int a, int b) -> int {
    // -1 is the virtual root, ancestor of everything.
    while (a != b) {
      if (a == -1 || b == -1)
        return -1;
      while (a > b) {
        a = idom_[static_cast<std::size_t>(a)];
        if (a == -1)
          return -1;
      }
      while (b > a) {
        b = idom_[static_cast<std::size_t>(b)];
        if (b == -1)
          return -1;
      }
    }
    return a;
  };

  for (int i = 0; i < n; ++i)
    if (isRoot.count(rpo_[static_cast<std::size_t>(i)]) != 0)
      idom_[static_cast<std::size_t>(i)] = -1;

  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = 0; i < n; ++i) {
      const BasicBlock* block = rpo_[static_cast<std::size_t>(i)];
      if (isRoot.count(block) != 0)
        continue;
      int newIdom = -2;
      for (const BasicBlock* pred : walkPredecessors(function, block, postDom)) {
        const auto it = rpoIndex_.find(pred);
        if (it == rpoIndex_.end())
          continue; // Unreachable predecessor.
        const int p = it->second;
        if (idom_[static_cast<std::size_t>(p)] == -2)
          continue; // Not processed yet.
        newIdom = newIdom == -2 ? p : intersect(newIdom, p);
      }
      if (newIdom != -2 && idom_[static_cast<std::size_t>(i)] != newIdom) {
        idom_[static_cast<std::size_t>(i)] = newIdom;
        changed = true;
      }
    }
  }

  for (int i = 0; i < n; ++i) {
    int node = i;
    int depth = 0;
    while (idom_[static_cast<std::size_t>(node)] >= 0) {
      node = idom_[static_cast<std::size_t>(node)];
      ++depth;
      CGPA_ASSERT(depth <= n, "dominator tree cycle");
    }
    depth_[static_cast<std::size_t>(i)] = depth;
  }
}

int DominatorTree::indexOf(const ir::BasicBlock* block) const {
  const auto it = rpoIndex_.find(block);
  return it == rpoIndex_.end() ? -1 : it->second;
}

const ir::BasicBlock* DominatorTree::idom(const ir::BasicBlock* block) const {
  const int i = indexOf(block);
  if (i < 0)
    return nullptr;
  const int parent = idom_[static_cast<std::size_t>(i)];
  return parent < 0 ? nullptr : rpo_[static_cast<std::size_t>(parent)];
}

bool DominatorTree::dominates(const ir::BasicBlock* a,
                              const ir::BasicBlock* b) const {
  int ia = indexOf(a);
  int ib = indexOf(b);
  if (ia < 0 || ib < 0)
    return false;
  while (depth_[static_cast<std::size_t>(ib)] >
         depth_[static_cast<std::size_t>(ia)]) {
    ib = idom_[static_cast<std::size_t>(ib)];
    if (ib < 0)
      return false;
  }
  return ia == ib;
}

} // namespace cgpa::analysis
