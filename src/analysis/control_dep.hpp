// Control-dependence computation (Ferrante–Ottenstein–Warren) from the
// post-dominator tree: block B is control dependent on branch A when A has
// one successor through which B always executes and another through which B
// may be skipped.
#pragma once

#include <unordered_map>
#include <vector>

#include "analysis/dominators.hpp"
#include "ir/function.hpp"

namespace cgpa::analysis {

class ControlDependence {
public:
  ControlDependence(const ir::Function& function,
                    const DominatorTree& postDomTree);

  /// Terminator instructions (branches) that `block` is control dependent
  /// on. Deduplicated, in deterministic order.
  const std::vector<ir::Instruction*>&
  controllers(const ir::BasicBlock* block) const;

private:
  std::unordered_map<const ir::BasicBlock*, std::vector<ir::Instruction*>>
      controllers_;
  std::vector<ir::Instruction*> empty_;
};

} // namespace cgpa::analysis
