#include "analysis/scc.hpp"

#include <algorithm>

#include "support/diag.hpp"

namespace cgpa::analysis {

using ir::Instruction;
using ir::Opcode;

const char* sccClassName(SccClass cls) {
  switch (cls) {
  case SccClass::Parallel:
    return "parallel";
  case SccClass::Replicable:
    return "replicable";
  case SccClass::Sequential:
    return "sequential";
  }
  return "?";
}

namespace {

/// Iterative Tarjan SCC. Returns the component id per node; components are
/// numbered in reverse topological order of the condensation (successors
/// get smaller ids), which we then flip so ids are in topological order.
std::vector<int> tarjan(const std::vector<std::vector<int>>& succ,
                        int& numComponents) {
  const int n = static_cast<int>(succ.size());
  std::vector<int> indexOf(static_cast<std::size_t>(n), -1);
  std::vector<int> lowlink(static_cast<std::size_t>(n), 0);
  std::vector<bool> onStack(static_cast<std::size_t>(n), false);
  std::vector<int> stack;
  std::vector<int> component(static_cast<std::size_t>(n), -1);
  int nextIndex = 0;
  numComponents = 0;

  struct Frame {
    int node;
    std::size_t child;
  };
  for (int root = 0; root < n; ++root) {
    if (indexOf[static_cast<std::size_t>(root)] != -1)
      continue;
    std::vector<Frame> frames;
    frames.push_back({root, 0});
    indexOf[static_cast<std::size_t>(root)] = lowlink[static_cast<std::size_t>(root)] =
        nextIndex++;
    stack.push_back(root);
    onStack[static_cast<std::size_t>(root)] = true;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      const int v = frame.node;
      if (frame.child < succ[static_cast<std::size_t>(v)].size()) {
        const int w = succ[static_cast<std::size_t>(v)][frame.child++];
        if (indexOf[static_cast<std::size_t>(w)] == -1) {
          indexOf[static_cast<std::size_t>(w)] =
              lowlink[static_cast<std::size_t>(w)] = nextIndex++;
          stack.push_back(w);
          onStack[static_cast<std::size_t>(w)] = true;
          frames.push_back({w, 0});
        } else if (onStack[static_cast<std::size_t>(w)]) {
          lowlink[static_cast<std::size_t>(v)] =
              std::min(lowlink[static_cast<std::size_t>(v)],
                       indexOf[static_cast<std::size_t>(w)]);
        }
      } else {
        if (lowlink[static_cast<std::size_t>(v)] ==
            indexOf[static_cast<std::size_t>(v)]) {
          while (true) {
            const int w = stack.back();
            stack.pop_back();
            onStack[static_cast<std::size_t>(w)] = false;
            component[static_cast<std::size_t>(w)] = numComponents;
            if (w == v)
              break;
          }
          ++numComponents;
        }
        frames.pop_back();
        if (!frames.empty()) {
          const int parent = frames.back().node;
          lowlink[static_cast<std::size_t>(parent)] =
              std::min(lowlink[static_cast<std::size_t>(parent)],
                       lowlink[static_cast<std::size_t>(v)]);
        }
      }
    }
  }

  // Tarjan emits components in reverse topological order; flip so that
  // edges go from lower to higher component ids.
  for (int& c : component)
    c = numComponents - 1 - c;
  return component;
}

} // namespace

SccGraph::SccGraph(
    const Pdg& pdg,
    const std::function<double(const ir::Instruction*)>& instWeight,
    trace::RemarkCollector* remarks)
    : pdg_(&pdg) {
  int numComponents = 0;
  sccOfNode_ = tarjan(pdg.successors(), numComponents);

  sccs_.resize(static_cast<std::size_t>(numComponents));
  for (int i = 0; i < numComponents; ++i)
    sccs_[static_cast<std::size_t>(i)].id = i;
  for (int node = 0; node < pdg.numNodes(); ++node) {
    Scc& scc = sccs_[static_cast<std::size_t>(sccOfNode_[static_cast<std::size_t>(node)])];
    Instruction* inst = pdg.node(node);
    scc.members.push_back(inst);
    scc.hasLoad |= inst->opcode() == Opcode::Load;
    scc.hasMul |= inst->opcode() == Opcode::Mul ||
                  inst->opcode() == Opcode::FMul ||
                  inst->opcode() == Opcode::SDiv ||
                  inst->opcode() == Opcode::FDiv;
    scc.sideEffects |= ir::hasSideEffects(inst->opcode());
    scc.weight += instWeight(inst);
  }

  // Condensation edges + internal-carried detection.
  for (const PdgEdge& edge : pdg.edges()) {
    const int from = sccOfNode_[static_cast<std::size_t>(edge.from)];
    const int to = sccOfNode_[static_cast<std::size_t>(edge.to)];
    if (from == to) {
      sccs_[static_cast<std::size_t>(from)].hasInternalCarried |=
          edge.loopCarried;
      continue;
    }
    bool found = false;
    for (SccEdge& existing : edges_)
      if (existing.from == from && existing.to == to) {
        existing.loopCarried |= edge.loopCarried;
        found = true;
        break;
      }
    if (!found)
      edges_.push_back({from, to, edge.loopCarried});
  }

  // Classification (paper Section 3.3).
  for (Scc& scc : sccs_) {
    if (!scc.hasInternalCarried)
      scc.cls = SccClass::Parallel;
    else if (!scc.sideEffects)
      scc.cls = SccClass::Replicable;
    else
      scc.cls = SccClass::Sequential;

    if (remarks != nullptr) {
      // Evidence for the verdict: the carried-dependence and side-effect
      // tests that drive the 3-way split, plus the load/multiply facts the
      // partitioner's lightweight rule will consult.
      std::string why;
      if (!scc.hasInternalCarried)
        why = "no internal loop-carried dependence";
      else if (!scc.sideEffects)
        why = "loop-carried but side-effect free; safe to duplicate";
      else
        why = "loop-carried dependence with side effects";
      std::string memberNames;
      const std::size_t shown = std::min<std::size_t>(scc.members.size(), 3);
      for (std::size_t m = 0; m < shown; ++m) {
        if (!memberNames.empty())
          memberNames += ',';
        const Instruction* inst = scc.members[m];
        memberNames += !inst->name().empty()
                           ? inst->name()
                           : std::string(ir::opcodeName(inst->opcode()));
      }
      if (scc.members.size() > shown)
        memberNames += ",...";
      remarks->add("scc", "classified", "scc" + std::to_string(scc.id))
          .note(std::string("classified ") + sccClassName(scc.cls) + ": " +
                why)
          .arg("class", sccClassName(scc.cls))
          .arg("carried", scc.hasInternalCarried)
          .arg("side_effects", scc.sideEffects)
          .arg("has_load", scc.hasLoad)
          .arg("has_mul", scc.hasMul)
          .arg("lightweight", scc.lightweight())
          .arg("weight", scc.weight)
          .arg("size", static_cast<int>(scc.members.size()))
          .arg("members", memberNames);
    }
  }

  // Transitive reachability over the DAG.
  std::vector<std::vector<int>> succ(static_cast<std::size_t>(numComponents));
  for (const SccEdge& edge : edges_)
    succ[static_cast<std::size_t>(edge.from)].push_back(edge.to);
  reach_.assign(static_cast<std::size_t>(numComponents),
                std::vector<bool>(static_cast<std::size_t>(numComponents),
                                  false));
  // Ids are topologically ordered, so one reverse sweep suffices.
  for (int from = numComponents - 1; from >= 0; --from) {
    for (int to : succ[static_cast<std::size_t>(from)]) {
      reach_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)] =
          true;
      for (int k = 0; k < numComponents; ++k)
        if (reach_[static_cast<std::size_t>(to)][static_cast<std::size_t>(k)])
          reach_[static_cast<std::size_t>(from)][static_cast<std::size_t>(k)] =
              true;
    }
  }
}

int SccGraph::sccOf(const Instruction* inst) const {
  const int node = pdg_->indexOf(inst);
  return node < 0 ? -1 : sccOfNode_[static_cast<std::size_t>(node)];
}

} // namespace cgpa::analysis
