// Program Dependence Graph for a target loop (paper Section 3.3, "Building
// the PDG").
//
// Nodes are the instructions of the loop (including nested-loop blocks).
// Edges carry a kind (register / memory / control) and a loop-carried flag
// *relative to the target loop*:
//   * register: def -> use; carried iff the use is a header phi fed through
//     a latch edge of the target loop;
//   * memory: store/load pairs that may alias (region/shape AA), with
//     same-iteration edges following possible execution order (including
//     wrap-around through inner loops) and carried edges in both directions;
//   * control: Ferrante-style control dependence inside the loop, plus
//     carried control edges from every exiting branch to every node (the
//     next iteration only runs if the loop does not exit).
#pragma once

#include <unordered_map>
#include <vector>

#include "analysis/alias.hpp"
#include "analysis/control_dep.hpp"
#include "analysis/loops.hpp"
#include "trace/remarks.hpp"

namespace cgpa::analysis {

struct PdgEdge {
  int from = 0;
  int to = 0;
  enum class Kind { Register, Memory, Control } kind = Kind::Register;
  bool loopCarried = false;
};

class Pdg {
public:
  /// `remarks`, when non-null, records which memory dependences alias
  /// analysis pruned vs. kept ("pdg" pass); never affects the graph.
  Pdg(const ir::Function& function, const Loop& loop,
      const AliasAnalysis& alias, const ControlDependence& controlDeps,
      trace::RemarkCollector* remarks = nullptr);

  const Loop& loop() const { return *loop_; }

  int numNodes() const { return static_cast<int>(nodes_.size()); }
  ir::Instruction* node(int index) const {
    return nodes_.at(static_cast<std::size_t>(index));
  }
  /// Index of `inst`, or -1 if it is not in the target loop.
  int indexOf(const ir::Instruction* inst) const;

  const std::vector<PdgEdge>& edges() const { return edges_; }

  /// Successor node indices (deduplicated).
  const std::vector<std::vector<int>>& successors() const { return succ_; }

  /// May instruction `a` execute before `b` within a single iteration of
  /// the target loop (including wrap-around through inner loops)?
  bool mayExecuteBefore(const ir::Instruction* a,
                        const ir::Instruction* b) const;

private:
  void addEdge(int from, int to, PdgEdge::Kind kind, bool carried);

  const Loop* loop_;
  std::vector<ir::Instruction*> nodes_;
  std::unordered_map<const ir::Instruction*, int> index_;
  std::vector<PdgEdge> edges_;
  std::vector<std::vector<int>> succ_;
  /// reach_[i][j]: block j reachable from block i by a nonempty path that
  /// does not re-enter the loop header (intra-iteration execution order).
  std::unordered_map<const ir::BasicBlock*, int> blockIndex_;
  std::vector<std::vector<bool>> reach_;
};

} // namespace cgpa::analysis
