#include "analysis/alias.hpp"

#include <algorithm>

#include "support/diag.hpp"

namespace cgpa::analysis {

using ir::Instruction;
using ir::Opcode;
using ir::Region;
using ir::RegionShape;

namespace {

bool rangesOverlap(std::int64_t offA, std::int64_t sizeA, std::int64_t offB,
                   std::int64_t sizeB) {
  return offA < offB + sizeB && offB < offA + sizeA;
}

ir::Type accessType(const Instruction* memInst) {
  return memInst->opcode() == Opcode::Load ? memInst->type()
                                           : memInst->operand(0)->type();
}

bool samePtrClass(const PtrClass& a, const PtrClass& b) {
  return a.kind == b.kind && a.region == b.region && a.base == b.base &&
         a.index == b.index && a.scale == b.scale && a.offset == b.offset &&
         a.exactOffset == b.exactOffset;
}

} // namespace

AliasAnalysis::AliasAnalysis(const ir::Function& function,
                             const ir::Module& module,
                             const LoopInfo& loopInfo)
    : function_(&function), module_(&module), loopInfo_(&loopInfo) {
  // Seed: region-annotated pointer arguments.
  for (const auto& arg : function.arguments()) {
    if (arg->type() != ir::Type::Ptr || arg->regionId() < 0)
      continue;
    const Region* region = module.region(arg->regionId());
    CGPA_ASSERT(region != nullptr, "argument references unknown region");
    PtrClass cls;
    cls.region = region->id;
    cls.base = arg.get();
    if (region->shape == RegionShape::AcyclicList) {
      cls.kind = PtrClass::Kind::Node;
    } else {
      cls.kind = PtrClass::Kind::Array;
      cls.index = nullptr;
      cls.scale = 0;
    }
    classes_[arg.get()] = cls;
  }

  // Forward dataflow to a fixed point. Blocks are visited in reverse
  // postorder so non-phi operands are classified before their users; values
  // not yet visited (reachable only through loop back edges) are treated
  // optimistically in phi meets.
  std::vector<const ir::BasicBlock*> rpo;
  {
    std::unordered_map<const ir::BasicBlock*, bool> visited;
    std::vector<std::pair<const ir::BasicBlock*, std::size_t>> stack;
    std::vector<const ir::BasicBlock*> postorder;
    if (function.entry() != nullptr) {
      stack.emplace_back(function.entry(), 0);
      visited[function.entry()] = true;
    }
    while (!stack.empty()) {
      auto& [block, next] = stack.back();
      const auto succs = block->successors();
      if (next < succs.size()) {
        const ir::BasicBlock* succ = succs[next++];
        if (!visited[succ]) {
          visited[succ] = true;
          stack.emplace_back(succ, 0);
        }
      } else {
        postorder.push_back(block);
        stack.pop_back();
      }
    }
    rpo.assign(postorder.rbegin(), postorder.rend());
  }

  for (int pass = 0; pass < 16; ++pass) {
    bool changed = false;
    for (const ir::BasicBlock* block : rpo) {
      for (const auto& inst : block->instructions()) {
        if (inst->type() != ir::Type::Ptr)
          continue;
        PtrClass next = classifyImpl(inst.get());
        const auto it = classes_.find(inst.get());
        if (it == classes_.end() || !samePtrClass(it->second, next)) {
          classes_[inst.get()] = next;
          changed = true;
        }
      }
    }
    if (!changed)
      break;
  }

  // List-walk phis: ptr phi in a loop header whose latch incoming is a load
  // of the region's next field off the phi itself, over an acyclic list.
  for (const auto& loopOwned : loopInfo.loops()) {
    const Loop* loop = loopOwned.get();
    for (const auto& instOwned : loop->header->instructions()) {
      Instruction* phi = instOwned.get();
      if (phi->opcode() != Opcode::Phi)
        break;
      if (phi->type() != ir::Type::Ptr)
        continue;
      const PtrClass& phiCls = classify(phi);
      if (phiCls.kind != PtrClass::Kind::Node || phiCls.region < 0)
        continue;
      const Region* region = module.region(phiCls.region);
      if (region->shape != RegionShape::AcyclicList || region->nextOffset < 0)
        continue;
      bool isWalk = true;
      for (int i = 0; i < phi->numOperands(); ++i) {
        const ir::BasicBlock* incoming =
            phi->incomingBlocks()[static_cast<std::size_t>(i)];
        if (!loop->contains(incoming))
          continue; // Entry edge: any node pointer is fine.
        const Instruction* latchLoad = ir::asInstruction(phi->operand(i));
        if (latchLoad == nullptr || latchLoad->opcode() != Opcode::Load) {
          isWalk = false;
          break;
        }
        const PtrClass addr = classify(latchLoad->operand(0));
        if (addr.kind != PtrClass::Kind::Node || addr.region != region->id ||
            addr.base != phi || !addr.exactOffset ||
            addr.offset != region->nextOffset) {
          isWalk = false;
          break;
        }
      }
      if (isWalk)
        listWalks_[phi] = loop;
    }
  }
}

const PtrClass& AliasAnalysis::classify(const ir::Value* pointer) const {
  const auto it = classes_.find(pointer);
  return it == classes_.end() ? unknown_ : it->second;
}

PtrClass AliasAnalysis::classifyImpl(const ir::Value* value) const {
  const Instruction* inst = ir::asInstruction(value);
  if (inst == nullptr)
    return classify(value);

  switch (inst->opcode()) {
  case Opcode::Gep: {
    const PtrClass base = classify(inst->operand(0));
    const bool hasIndex = inst->numOperands() == 2;
    PtrClass result = base;
    switch (base.kind) {
    case PtrClass::Kind::Unknown:
      return base;
    case PtrClass::Kind::Node:
      if (!hasIndex) {
        result.offset += inst->gepOffset();
      } else {
        result.offset = 0;
        result.exactOffset = false;
      }
      return result;
    case PtrClass::Kind::Array:
      if (!base.exactOffset)
        return base;
      if (!hasIndex) {
        result.offset += inst->gepOffset();
        return result;
      }
      if (base.index != nullptr) {
        // Double indexing through separate geps: give up on precision.
        result.exactOffset = false;
        result.index = nullptr;
        return result;
      }
      result.index = inst->operand(1);
      result.scale = inst->gepScale();
      result.offset += inst->gepOffset();
      return result;
    }
    return base;
  }
  case Opcode::Load: {
    const PtrClass addr = classify(inst->operand(0));
    int target = -1;
    if (addr.kind == PtrClass::Kind::Node && addr.exactOffset) {
      const Region* region = module_->region(addr.region);
      if (region->shape == RegionShape::AcyclicList &&
          addr.offset == region->nextOffset)
        target = region->id; // The next pointer stays in this list.
      else if (const ir::RegionPointerField* field =
                   region->fieldAt(addr.offset))
        target = field->targetRegion;
    } else if (addr.kind == PtrClass::Kind::Array) {
      target = module_->region(addr.region)->elemPointerTarget;
    }
    if (target < 0)
      return PtrClass{};
    PtrClass result;
    result.region = target;
    result.base = inst;
    result.kind = module_->region(target)->shape == RegionShape::AcyclicList
                      ? PtrClass::Kind::Node
                      : PtrClass::Kind::Array;
    return result;
  }
  case Opcode::Phi:
  case Opcode::Select: {
    // Meet of classified incoming values; the phi becomes the new node
    // identity.
    PtrClass merged;
    bool first = true;
    const int begin = inst->opcode() == Opcode::Select ? 1 : 0;
    for (int i = begin; i < inst->numOperands(); ++i) {
      const ir::Value* operand = inst->operand(i);
      // Optimistic treatment of not-yet-visited pointer instructions
      // (reached through a back edge): skip them this pass; the fixed-point
      // iteration revisits this phi after they are classified.
      if (ir::isa<ir::Instruction>(operand) &&
          classes_.find(operand) == classes_.end())
        continue;
      const PtrClass incoming = classify(operand);
      if (incoming.kind == PtrClass::Kind::Unknown) {
        // Null-pointer constants are compatible with any class (they are
        // never dereferenced on the taken path).
        const ir::Constant* c = ir::asConstant(operand);
        if (c != nullptr && c->intValue() == 0)
          continue;
        return PtrClass{};
      }
      if (first) {
        merged = incoming;
        first = false;
        continue;
      }
      if (merged.kind != incoming.kind || merged.region != incoming.region)
        return PtrClass{};
      if (merged.kind == PtrClass::Kind::Node) {
        if (merged.offset != incoming.offset || !merged.exactOffset ||
            !incoming.exactOffset) {
          merged.offset = 0;
          merged.exactOffset = false;
        }
      } else {
        // Array values merging: keep only the region.
        merged.index = nullptr;
        merged.scale = 0;
        merged.offset = 0;
        merged.exactOffset = false;
      }
    }
    if (first)
      return PtrClass{};
    merged.base = inst;
    return merged;
  }
  default:
    return PtrClass{};
  }
}

PtrClass AliasAnalysis::accessPath(const Instruction* memInst) const {
  CGPA_ASSERT(memInst->isMemory(), "accessPath on non-memory instruction");
  const ir::Value* addr = memInst->opcode() == Opcode::Load
                              ? memInst->operand(0)
                              : memInst->operand(1);
  return classify(addr);
}

int AliasAnalysis::regionOf(const Instruction* memInst) const {
  return accessPath(memInst).region;
}

bool AliasAnalysis::isIterationDistinct(const ir::Value* base,
                                        const Loop* loop) const {
  const auto it = listWalks_.find(base);
  return it != listWalks_.end() && it->second == loop;
}

namespace {

/// One linear term of an affine index expression.
struct LinearTerm {
  enum class Kind { TargetIV, InnerIV, Invariant } kind;
  const ir::Value* value = nullptr;    // The induction phi / invariant value.
  std::int64_t coeff = 1;              // Constant coefficient.
  const ir::Value* symCoeff = nullptr; // Symbolic coefficient (or nullptr).
};

struct LinearForm {
  bool valid = false;
  std::int64_t constant = 0;
  std::vector<LinearTerm> terms;
};

/// Find the loop (within or equal to `target`) whose header owns `phi` as
/// an induction variable.
const InductionVar* inductionOwner(const ir::Value* phi, const Loop* target,
                                   const LoopInfo& loopInfo,
                                   const Loop** owner) {
  const Instruction* inst = ir::asInstruction(phi);
  if (inst == nullptr || inst->opcode() != Opcode::Phi)
    return nullptr;
  Loop* loop = loopInfo.loopWithHeader(inst->parent());
  if (loop == nullptr)
    return nullptr;
  // The owning loop must be the target loop or nested inside it.
  bool inside = false;
  for (const Loop* walk = loop; walk != nullptr; walk = walk->parent)
    if (walk == target)
      inside = true;
  if (!inside)
    return nullptr;
  *owner = loop;
  return loop->inductionFor(phi);
}

bool isInvariantIn(const ir::Value* value, const Loop* loop) {
  const Instruction* inst = ir::asInstruction(value);
  if (inst == nullptr)
    return true; // Arguments and constants are invariant.
  return !loop->contains(inst);
}

LinearForm decompose(const ir::Value* value, const Loop* target,
                     const LoopInfo& loopInfo, int depth = 0);

LinearForm scaleForm(LinearForm form, std::int64_t factor) {
  if (!form.valid)
    return form;
  form.constant *= factor;
  for (LinearTerm& term : form.terms) {
    if (term.symCoeff != nullptr && factor != 1) {
      form.valid = false;
      return form;
    }
    term.coeff *= factor;
  }
  return form;
}

LinearForm addForms(LinearForm a, const LinearForm& b) {
  if (!a.valid || !b.valid) {
    a.valid = false;
    return a;
  }
  a.constant += b.constant;
  a.terms.insert(a.terms.end(), b.terms.begin(), b.terms.end());
  return a;
}

LinearForm decompose(const ir::Value* value, const Loop* target,
                     const LoopInfo& loopInfo, int depth) {
  LinearForm form;
  if (depth > 8)
    return form;
  if (const ir::Constant* c = ir::asConstant(value)) {
    form.valid = true;
    form.constant = c->intValue();
    return form;
  }
  // Induction variable of the target loop or a nested loop.
  const Loop* owner = nullptr;
  if (const InductionVar* iv = inductionOwner(value, target, loopInfo, &owner)) {
    form.valid = true;
    LinearTerm term;
    term.kind = owner == target ? LinearTerm::Kind::TargetIV
                                : LinearTerm::Kind::InnerIV;
    term.value = value;
    form.terms.push_back(term);
    (void)iv;
    return form;
  }
  if (isInvariantIn(value, target)) {
    form.valid = true;
    LinearTerm term;
    term.kind = LinearTerm::Kind::Invariant;
    term.value = value;
    form.terms.push_back(term);
    return form;
  }
  const Instruction* inst = ir::asInstruction(value);
  if (inst == nullptr)
    return form;
  switch (inst->opcode()) {
  case Opcode::Add:
    return addForms(decompose(inst->operand(0), target, loopInfo, depth + 1),
                    decompose(inst->operand(1), target, loopInfo, depth + 1));
  case Opcode::Sub:
    return addForms(
        decompose(inst->operand(0), target, loopInfo, depth + 1),
        scaleForm(decompose(inst->operand(1), target, loopInfo, depth + 1),
                  -1));
  case Opcode::Mul: {
    for (int side = 0; side < 2; ++side) {
      const ir::Value* lhs = inst->operand(side);
      const ir::Value* rhs = inst->operand(1 - side);
      if (const ir::Constant* c = ir::asConstant(rhs))
        return scaleForm(decompose(lhs, target, loopInfo, depth + 1),
                         c->intValue());
      // Symbolic coefficient: invariant * induction-variable.
      const Loop* owner = nullptr;
      if (isInvariantIn(rhs, target) && ir::asConstant(rhs) == nullptr &&
          inductionOwner(lhs, target, loopInfo, &owner) != nullptr) {
        LinearForm result;
        result.valid = true;
        LinearTerm term;
        term.kind = owner == target ? LinearTerm::Kind::TargetIV
                                    : LinearTerm::Kind::InnerIV;
        term.value = lhs;
        term.symCoeff = rhs;
        result.terms.push_back(term);
        return result;
      }
    }
    return form;
  }
  case Opcode::SExt:
  case Opcode::ZExt:
  case Opcode::Trunc:
    return decompose(inst->operand(0), target, loopInfo, depth + 1);
  default:
    return form;
  }
}

} // namespace

bool AliasAnalysis::indexCarriedDisjoint(const PtrClass& a, const PtrClass& b,
                                         std::int64_t sizeA,
                                         std::int64_t sizeB,
                                         const Loop* loop) const {
  // Same index SSA value and scale on both accesses (checked by caller).
  const std::int64_t window = std::max(a.offset + sizeA, b.offset + sizeB) -
                              std::min(a.offset, b.offset);
  const std::int64_t scale = a.scale;
  if (scale <= 0)
    return false;

  const LinearForm form = decompose(a.index, loop, *loopInfo_);
  if (!form.valid)
    return false;

  const LinearTerm* targetTerm = nullptr;
  std::vector<const LinearTerm*> innerTerms;
  for (const LinearTerm& term : form.terms) {
    switch (term.kind) {
    case LinearTerm::Kind::TargetIV:
      if (targetTerm != nullptr)
        return false; // Two outer terms: unsupported.
      targetTerm = &term;
      break;
    case LinearTerm::Kind::InnerIV:
      innerTerms.push_back(&term);
      break;
    case LinearTerm::Kind::Invariant:
      if (term.symCoeff != nullptr)
        return false;
      break; // Constant shift per loop activation; same on both sides.
    }
  }
  if (targetTerm == nullptr)
    return false; // Index does not advance with the target loop.

  const Loop* owner = nullptr;
  const InductionVar* outerIv =
      inductionOwner(targetTerm->value, loop, *loopInfo_, &owner);
  if (outerIv == nullptr || outerIv->step == 0)
    return false;

  if (targetTerm->symCoeff == nullptr) {
    // Constant outer stride: need stride >= inner span + access window.
    const std::int64_t stride =
        std::abs(targetTerm->coeff * outerIv->step) * scale;
    std::int64_t innerSpan = 0;
    for (const LinearTerm* term : innerTerms) {
      if (term->symCoeff != nullptr)
        return false;
      const Loop* innerOwner = nullptr;
      const InductionVar* innerIv =
          inductionOwner(term->value, loop, *loopInfo_, &innerOwner);
      if (innerIv == nullptr || !innerIv->isCanonical() ||
          innerIv->bound == nullptr)
        return false;
      const ir::Constant* boundC = ir::asConstant(innerIv->bound);
      if (boundC == nullptr ||
          (innerIv->boundPred != ir::CmpPred::SLT &&
           innerIv->boundPred != ir::CmpPred::NE))
        return false;
      innerSpan += std::abs(term->coeff) * (boundC->intValue() - 1) * scale;
    }
    return stride >= innerSpan + window;
  }

  // Symbolic outer coefficient V: support the canonical tiling pattern
  // i*V + j with 0 <= j < V (same SSA value V as bound), unit steps.
  if (std::abs(outerIv->step) != 1 || targetTerm->coeff != 1)
    return false;
  if (innerTerms.size() > 1)
    return false;
  if (innerTerms.size() == 1) {
    const LinearTerm* inner = innerTerms.front();
    if (inner->symCoeff != nullptr || inner->coeff != 1)
      return false;
    const Loop* innerOwner = nullptr;
    const InductionVar* innerIv =
        inductionOwner(inner->value, loop, *loopInfo_, &innerOwner);
    if (innerIv == nullptr || !innerIv->isCanonical() ||
        innerIv->bound != targetTerm->symCoeff ||
        innerIv->boundPred != ir::CmpPred::SLT)
      return false;
  }
  return window <= scale;
}

MemDepResult AliasAnalysis::memoryDep(const Instruction* a,
                                      const Instruction* b,
                                      const Loop* loop) const {
  const PtrClass clsA = accessPath(a);
  const PtrClass clsB = accessPath(b);
  const std::int64_t sizeA = typeBytes(accessType(a));
  const std::int64_t sizeB = typeBytes(accessType(b));

  if (clsA.region >= 0 && clsB.region >= 0 && clsA.region != clsB.region)
    return {false, false};
  if (clsA.kind == PtrClass::Kind::Unknown ||
      clsB.kind == PtrClass::Kind::Unknown)
    return {true, true};

  // Same known region from here on.
  const Region* region = module_->region(clsA.region);
  if (region->readOnly)
    return {false, false};

  if (clsA.kind == PtrClass::Kind::Node && clsB.kind == PtrClass::Kind::Node) {
    const bool offsetsDisjoint =
        clsA.exactOffset && clsB.exactOffset &&
        !rangesOverlap(clsA.offset, sizeA, clsB.offset, sizeB);
    if (offsetsDisjoint) {
      // Distinct fields never overlap, in any pair of nodes. (Field offsets
      // are within one element; nodes are disjoint by construction.)
      return {false, false};
    }
    if (clsA.base == clsB.base) {
      const bool distinct = isIterationDistinct(clsA.base, loop);
      return {true, !distinct};
    }
    return {true, true};
  }

  if (clsA.kind == PtrClass::Kind::Array &&
      clsB.kind == PtrClass::Kind::Array) {
    if (!clsA.exactOffset || !clsB.exactOffset)
      return {true, true};
    if (clsA.index == clsB.index &&
        (clsA.index == nullptr || clsA.scale == clsB.scale)) {
      const bool overlap =
          rangesOverlap(clsA.offset, sizeA, clsB.offset, sizeB);
      if (!overlap)
        return {false, false};
      if (clsA.index == nullptr)
        return {true, true}; // Same fixed address every iteration.
      const bool disjoint =
          indexCarriedDisjoint(clsA, clsB, sizeA, sizeB, loop);
      return {true, !disjoint};
    }
    return {true, true};
  }

  return {true, true};
}

} // namespace cgpa::analysis
