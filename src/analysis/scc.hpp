// SCC condensation of the PDG and CGPA's three-way classification
// (paper Section 3.3):
//   Parallel    — no loop-carried dependence inside the SCC;
//   Replicable  — loop-carried but side-effect free (safe to execute
//                 redundantly in multiple workers);
//   Sequential  — loop-carried with side effects.
//
// The paper's placement heuristic additionally distinguishes *lightweight*
// replicable SCCs (no load and no multiply), the only ones duplicated into
// other stages by default.
#pragma once

#include <functional>
#include <vector>

#include "analysis/pdg.hpp"

namespace cgpa::analysis {

enum class SccClass { Parallel, Replicable, Sequential };

const char* sccClassName(SccClass cls);

struct Scc {
  int id = -1;
  std::vector<ir::Instruction*> members;
  SccClass cls = SccClass::Sequential;
  bool hasInternalCarried = false;
  bool hasLoad = false;
  bool hasMul = false;
  bool sideEffects = false;
  /// Profile-weighted cost of one loop iteration's worth of this SCC.
  double weight = 0.0;

  /// Paper's duplication rule: replicable sections without loads or
  /// multiplies are cheap enough to replicate.
  bool lightweight() const { return !hasLoad && !hasMul; }
};

struct SccEdge {
  int from = 0;
  int to = 0;
  bool loopCarried = false;
};

class SccGraph {
public:
  /// `instWeight` gives the profile-weighted cost of one instruction
  /// (executions within one loop invocation x per-op latency).
  /// `remarks`, when non-null, records every SCC's classification verdict
  /// and its evidence ("scc" pass); never affects the graph.
  SccGraph(const Pdg& pdg,
           const std::function<double(const ir::Instruction*)>& instWeight,
           trace::RemarkCollector* remarks = nullptr);

  const std::vector<Scc>& sccs() const { return sccs_; }
  const std::vector<SccEdge>& edges() const { return edges_; }

  int sccOf(const ir::Instruction* inst) const;

  /// Transitive reachability in the condensation DAG (strict: a SCC does
  /// not reach itself).
  bool reaches(int from, int to) const {
    return reach_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
  }

  const Pdg& pdg() const { return *pdg_; }

private:
  const Pdg* pdg_;
  std::vector<Scc> sccs_;
  std::vector<int> sccOfNode_;
  std::vector<SccEdge> edges_;
  std::vector<std::vector<bool>> reach_;
};

} // namespace cgpa::analysis
