// Dominator and post-dominator trees (Cooper–Harvey–Kennedy iterative
// algorithm over a reverse-postorder numbering).
//
// The post-dominator tree uses a virtual exit node that every Ret block
// (and only Ret blocks) is attached to, so functions with multiple returns
// and loops are handled uniformly.
#pragma once

#include <unordered_map>
#include <vector>

#include "ir/function.hpp"

namespace cgpa::analysis {

class DominatorTree {
public:
  /// Build the dominator tree (`postDom = false`) or post-dominator tree
  /// (`postDom = true`) of `function`.
  explicit DominatorTree(const ir::Function& function, bool postDom = false);

  /// Immediate dominator, or nullptr for the root (entry / virtual exit).
  const ir::BasicBlock* idom(const ir::BasicBlock* block) const;

  /// Does `a` (post-)dominate `b`? A block dominates itself.
  bool dominates(const ir::BasicBlock* a, const ir::BasicBlock* b) const;

  /// Blocks in reverse postorder of the (forward or reverse) CFG.
  const std::vector<const ir::BasicBlock*>& reversePostOrder() const {
    return rpo_;
  }

  bool isPostDom() const { return postDom_; }

private:
  int indexOf(const ir::BasicBlock* block) const;

  bool postDom_;
  std::vector<const ir::BasicBlock*> rpo_; // rpo_[0] is the root.
  std::unordered_map<const ir::BasicBlock*, int> rpoIndex_;
  std::vector<int> idom_;  // Index into rpo_, -1 for root/unreachable.
  std::vector<int> depth_; // Tree depth for fast dominance queries.
};

} // namespace cgpa::analysis
