// Profiling support (paper Section 3.2: "The compiler identifies hotspots
// in the code via a simple profiling step").
//
// Profiles are collected by running the reference interpreter with an
// observer; the result feeds hotspot (target-loop) selection and the
// SCC weights used by the pipeline partitioner.
#pragma once

#include <unordered_map>

#include "analysis/loops.hpp"
#include "interp/interpreter.hpp"

namespace cgpa::analysis {

struct ProfileData {
  std::unordered_map<const ir::BasicBlock*, std::uint64_t> blockCount;
  std::uint64_t totalInstructions = 0;

  std::uint64_t countOf(const ir::BasicBlock* block) const {
    const auto it = blockCount.find(block);
    return it == blockCount.end() ? 0 : it->second;
  }
};

/// ExecObserver that accumulates a ProfileData.
class ProfileCollector : public interp::ExecObserver {
public:
  void onExec(const ir::Instruction& inst, std::uint64_t memAddr) override;
  void onBlockEnter(const ir::BasicBlock& block) override;

  ProfileData take() { return std::move(data_); }

private:
  ProfileData data_;
};

/// Run `function` under the interpreter and collect a profile.
ProfileData profileFunction(const ir::Function& function,
                            std::span<const std::uint64_t> args,
                            interp::Memory& memory);

/// Dynamic instruction count attributable to `loop` (all blocks, including
/// nested loops).
std::uint64_t loopWeight(const Loop& loop, const ProfileData& profile);

/// The hottest top-level loop (profile-weighted), or nullptr if no loops.
Loop* hottestLoop(const LoopInfo& loopInfo, const ProfileData& profile);

} // namespace cgpa::analysis
