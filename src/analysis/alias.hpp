// Region/shape-based alias analysis.
//
// This is the reproduction's stand-in for the alias and shape analyses
// (Ghiya–Hendren style) that the CGPA paper's LLVM pipeline applies while
// building the PDG. Pointer values are classified by a forward dataflow
// over the SSA graph into:
//
//   Node(R, base, offset)      — a field address inside one node of region
//                                R; `base` is the SSA value identifying the
//                                node (a phi, load, or argument).
//   Array(R, index, scale,
//         offset)              — base-plus-affine-index address into an
//                                array region (index == nullptr means a
//                                constant address).
//   Unknown                    — anything else (treated conservatively).
//
// Two facts the partitioner needs are derived on top:
//   * distinct regions never alias;
//   * a list-walk phi over an AcyclicList region, and affine array indices
//     whose per-iteration stride covers the access window, touch disjoint
//     memory on distinct iterations of the target loop (no loop-carried
//     memory dependence).
#pragma once

#include <unordered_map>

#include "analysis/loops.hpp"
#include "ir/module.hpp"

namespace cgpa::analysis {

struct PtrClass {
  enum class Kind { Unknown, Node, Array };
  Kind kind = Kind::Unknown;
  int region = -1;
  /// Node: SSA value identifying the node. Array: SSA value of the root.
  const ir::Value* base = nullptr;
  /// Array only: affine index value (nullptr = constant address).
  ir::Value* index = nullptr;
  std::int64_t scale = 0;
  std::int64_t offset = 0;
  /// Node only: false when an in-node offset is not a compile-time constant.
  bool exactOffset = true;
};

/// Result of a loop-aware memory dependence query.
struct MemDepResult {
  bool mayAliasIntra = true;   ///< Same-iteration overlap possible.
  bool mayAliasCarried = true; ///< Cross-iteration overlap possible.
};

class AliasAnalysis {
public:
  AliasAnalysis(const ir::Function& function, const ir::Module& module,
                const LoopInfo& loopInfo);

  /// Classification of a pointer-typed value.
  const PtrClass& classify(const ir::Value* pointer) const;

  /// Address classification of a Load/Store instruction.
  PtrClass accessPath(const ir::Instruction* memInst) const;

  /// Region accessed by a Load/Store, or -1.
  int regionOf(const ir::Instruction* memInst) const;

  /// Is `base` a list-walk phi of `loop` visiting pairwise-distinct nodes
  /// on distinct iterations (acyclic-list traversal)?
  bool isIterationDistinct(const ir::Value* base, const Loop* loop) const;

  /// May the accesses of `a` and `b` overlap within one iteration of
  /// `loop` / across different iterations of `loop`? At least one of the
  /// two should be a store for the result to be meaningful.
  MemDepResult memoryDep(const ir::Instruction* a, const ir::Instruction* b,
                         const Loop* loop) const;

private:
  PtrClass classifyImpl(const ir::Value* value) const;
  bool indexCarriedDisjoint(const PtrClass& a, const PtrClass& b,
                            std::int64_t sizeA, std::int64_t sizeB,
                            const Loop* loop) const;

  const ir::Function* function_;
  const ir::Module* module_;
  const LoopInfo* loopInfo_;
  std::unordered_map<const ir::Value*, PtrClass> classes_;
  /// (phi, loop) pairs proven to be acyclic-list walks.
  std::unordered_map<const ir::Value*, const Loop*> listWalks_;
  PtrClass unknown_;
};

} // namespace cgpa::analysis
