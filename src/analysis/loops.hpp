// Natural-loop detection and simple induction-variable recognition.
#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "analysis/dominators.hpp"
#include "ir/function.hpp"

namespace cgpa::analysis {

/// An integer induction variable: phi = [init, phi + step].
struct InductionVar {
  ir::Instruction* phi = nullptr;
  ir::Value* init = nullptr;
  std::int64_t step = 0;
  ir::Instruction* update = nullptr; // The add feeding the latch edge.
  /// Loop bound, if an exiting compare `icmp pred (phi|update), bound`
  /// exists; nullptr otherwise.
  ir::Value* bound = nullptr;
  ir::CmpPred boundPred = ir::CmpPred::SLT;
  /// True when the compared value is `update` (i+step) rather than the phi.
  bool boundOnUpdate = false;

  bool isCanonical() const; // init == 0 constant, step == 1.
};

struct Loop {
  ir::BasicBlock* header = nullptr;
  Loop* parent = nullptr;
  std::vector<Loop*> children;
  int depth = 1;

  std::vector<ir::BasicBlock*> blocks; // Header first.
  std::unordered_set<const ir::BasicBlock*> blockSet;

  std::vector<ir::BasicBlock*> latches;
  /// Unique out-of-loop predecessor of the header, or nullptr.
  ir::BasicBlock* preheader = nullptr;
  /// Branches inside the loop with at least one successor outside.
  std::vector<ir::Instruction*> exitingBranches;
  /// Out-of-loop successor blocks of exiting branches (deduplicated).
  std::vector<ir::BasicBlock*> exitBlocks;

  std::vector<InductionVar> inductionVars;

  bool contains(const ir::BasicBlock* block) const {
    return blockSet.count(block) != 0;
  }
  bool contains(const ir::Instruction* inst) const {
    return inst->parent() != nullptr && contains(inst->parent());
  }
  /// The induction var for `phi`, or nullptr.
  const InductionVar* inductionFor(const ir::Value* phi) const;
};

class LoopInfo {
public:
  LoopInfo(const ir::Function& function, const DominatorTree& domTree);

  const std::vector<std::unique_ptr<Loop>>& loops() const { return loops_; }

  /// Innermost loop containing `block`, or nullptr.
  Loop* loopFor(const ir::BasicBlock* block) const;

  /// Loop whose header is `block`, or nullptr.
  Loop* loopWithHeader(const ir::BasicBlock* header) const;

  std::vector<Loop*> topLevelLoops() const;

private:
  std::vector<std::unique_ptr<Loop>> loops_;
  std::unordered_map<const ir::BasicBlock*, Loop*> innermost_;
};

} // namespace cgpa::analysis
