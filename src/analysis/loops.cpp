#include "analysis/loops.hpp"

#include <algorithm>

#include "support/diag.hpp"

namespace cgpa::analysis {

using ir::BasicBlock;
using ir::Instruction;
using ir::Opcode;

bool InductionVar::isCanonical() const {
  const ir::Constant* initConst = ir::asConstant(init);
  return initConst != nullptr && initConst->intValue() == 0 && step == 1;
}

const InductionVar* Loop::inductionFor(const ir::Value* phi) const {
  for (const InductionVar& iv : inductionVars)
    if (iv.phi == phi)
      return &iv;
  return nullptr;
}

namespace {

/// Detect induction variables of `loop` and the bound compares on its
/// exiting branches.
void findInductionVars(Loop& loop, const ir::Function& function) {
  for (const auto& instOwned : loop.header->instructions()) {
    Instruction* phi = instOwned.get();
    if (phi->opcode() != Opcode::Phi)
      break;
    if (!isIntType(phi->type()))
      continue;
    // Require exactly one latch incoming and one entry incoming.
    ir::Value* init = nullptr;
    ir::Value* latchValue = nullptr;
    for (int i = 0; i < phi->numOperands(); ++i) {
      const BasicBlock* incoming =
          phi->incomingBlocks()[static_cast<std::size_t>(i)];
      if (loop.contains(incoming))
        latchValue = phi->operand(i);
      else
        init = phi->operand(i);
    }
    if (init == nullptr || latchValue == nullptr)
      continue;
    Instruction* update = ir::asInstruction(latchValue);
    if (update == nullptr ||
        (update->opcode() != Opcode::Add && update->opcode() != Opcode::Sub) ||
        !loop.contains(update))
      continue;
    const ir::Constant* stepConst = nullptr;
    if (update->operand(0) == phi)
      stepConst = ir::asConstant(update->operand(1));
    else if (update->operand(1) == phi && update->opcode() == Opcode::Add)
      stepConst = ir::asConstant(update->operand(0));
    if (stepConst == nullptr)
      continue;

    InductionVar iv;
    iv.phi = phi;
    iv.init = init;
    iv.update = update;
    iv.step = update->opcode() == Opcode::Add ? stepConst->intValue()
                                              : -stepConst->intValue();

    // Find a bound: an exiting branch conditioned on icmp(phi|update, bound).
    for (Instruction* branch : loop.exitingBranches) {
      if (branch->opcode() != Opcode::CondBr)
        continue;
      const Instruction* cmp = ir::asInstruction(branch->operand(0));
      if (cmp == nullptr || cmp->opcode() != Opcode::ICmp)
        continue;
      for (int side = 0; side < 2; ++side) {
        const ir::Value* tested = cmp->operand(side);
        if (tested != phi && tested != update)
          continue;
        iv.bound = cmp->operand(1 - side);
        iv.boundPred = cmp->cmpPred();
        iv.boundOnUpdate = tested == update;
        break;
      }
      if (iv.bound != nullptr)
        break;
    }
    loop.inductionVars.push_back(iv);
  }
  (void)function;
}

} // namespace

LoopInfo::LoopInfo(const ir::Function& function, const DominatorTree& domTree) {
  // Find back edges (latch -> header where header dominates latch) and group
  // them by header.
  std::unordered_map<BasicBlock*, std::vector<BasicBlock*>> latchesByHeader;
  for (const auto& block : function.blocks())
    for (BasicBlock* succ : block->successors())
      if (domTree.dominates(succ, block.get()))
        latchesByHeader[succ].push_back(block.get());

  // Build a natural loop per header by walking predecessors from latches.
  for (auto& [header, latches] : latchesByHeader) {
    auto loop = std::make_unique<Loop>();
    loop->header = header;
    loop->latches = latches;
    loop->blockSet.insert(header);
    loop->blocks.push_back(header);
    std::vector<BasicBlock*> worklist = latches;
    while (!worklist.empty()) {
      BasicBlock* block = worklist.back();
      worklist.pop_back();
      if (loop->blockSet.count(block) != 0)
        continue;
      loop->blockSet.insert(block);
      loop->blocks.push_back(block);
      for (BasicBlock* pred : function.predecessorsOf(block))
        worklist.push_back(pred);
    }
    loops_.push_back(std::move(loop));
  }

  // Nesting: parent = smallest strictly containing loop.
  for (auto& loop : loops_) {
    Loop* best = nullptr;
    for (auto& candidate : loops_) {
      if (candidate.get() == loop.get())
        continue;
      if (candidate->blockSet.count(loop->header) == 0)
        continue;
      if (best == nullptr || candidate->blocks.size() < best->blocks.size())
        best = candidate.get();
    }
    loop->parent = best;
    if (best != nullptr)
      best->children.push_back(loop.get());
  }
  for (auto& loop : loops_) {
    int depth = 1;
    for (Loop* p = loop->parent; p != nullptr; p = p->parent)
      ++depth;
    loop->depth = depth;
  }

  // Innermost map: deeper loops win.
  for (auto& loop : loops_)
    for (BasicBlock* block : loop->blocks) {
      Loop*& slot = innermost_[block];
      if (slot == nullptr || loop->depth > slot->depth)
        slot = loop.get();
    }

  // Preheader, exits, induction variables.
  for (auto& loop : loops_) {
    std::vector<BasicBlock*> outsidePreds;
    for (BasicBlock* pred : function.predecessorsOf(loop->header))
      if (!loop->contains(pred))
        outsidePreds.push_back(pred);
    if (outsidePreds.size() == 1)
      loop->preheader = outsidePreds.front();

    for (BasicBlock* block : loop->blocks) {
      Instruction* term = block->terminator();
      if (term == nullptr)
        continue;
      bool exits = false;
      for (BasicBlock* succ : block->successors())
        if (!loop->contains(succ)) {
          exits = true;
          if (std::find(loop->exitBlocks.begin(), loop->exitBlocks.end(),
                        succ) == loop->exitBlocks.end())
            loop->exitBlocks.push_back(succ);
        }
      if (exits)
        loop->exitingBranches.push_back(term);
    }
    findInductionVars(*loop, function);
  }
}

Loop* LoopInfo::loopFor(const ir::BasicBlock* block) const {
  const auto it = innermost_.find(block);
  return it == innermost_.end() ? nullptr : it->second;
}

Loop* LoopInfo::loopWithHeader(const ir::BasicBlock* header) const {
  for (const auto& loop : loops_)
    if (loop->header == header)
      return loop.get();
  return nullptr;
}

std::vector<Loop*> LoopInfo::topLevelLoops() const {
  std::vector<Loop*> top;
  for (const auto& loop : loops_)
    if (loop->parent == nullptr)
      top.push_back(loop.get());
  return top;
}

} // namespace cgpa::analysis
