// Pipeline plan: the output of the CGPA partitioner — an ordered list of
// stages (at most one parallel), plus the set of replicable SCCs duplicated
// into every stage (paper Section 3.3, "Pipeline Partition").
#pragma once

#include <string>
#include <vector>

#include "analysis/scc.hpp"
#include "trace/remarks.hpp"

namespace cgpa::pipeline {

/// Placement policy for *heavyweight* replicable sections (those with
/// loads/multiplies). The paper evaluates both:
///   P1 (Heuristic)    — heavy replicables go into a sequential stage and
///                       their results are communicated (decoupled
///                       pipelining; the paper's default).
///   P2 (ForceParallel) — heavy replicables are duplicated into the
///                       parallel workers (replicated data-level
///                       parallelism; Table 3's "P2" rows).
enum class ReplicablePolicy { Heuristic, ForceParallel };

struct PartitionOptions {
  int numWorkers = 4; ///< Workers in the parallel stage (paper fixes 4).
  ReplicablePolicy policy = ReplicablePolicy::Heuristic;
  /// Execution frequency of a block per loop invocation (profile-derived);
  /// used by the communication-minimizing sink pass. Defaults to 1.0.
  std::function<double(const ir::BasicBlock*)> blockFreq;
  /// Enable the sink pass (moving parallel SCCs whose values only feed the
  /// later sequential stage, when that strictly reduces FIFO traffic).
  bool sinkCheapProducers = true;
  /// When non-null, record every partition decision — replication
  /// candidates, convexity drops, promotions/demotions, sinks, final
  /// placement ("partition" pass). Never affects the plan.
  trace::RemarkCollector* remarks = nullptr;
};

struct Stage {
  bool parallel = false;
  std::vector<int> sccIds;
  double weight = 0.0;
};

struct PipelinePlan {
  const analysis::SccGraph* sccs = nullptr;
  analysis::Loop* loop = nullptr;
  std::vector<Stage> stages;
  /// SCC ids duplicated into every stage (and into every parallel worker).
  std::vector<int> replicatedSccs;
  int numWorkers = 1;

  /// More than one stage, i.e. pipelining succeeded.
  bool pipelined() const { return stages.size() > 1; }

  /// "S-P-S", "P-S", "S" ... one letter per stage.
  std::string shapeString() const;

  /// Stage index of `inst`'s SCC, or -1 if the instruction is replicated.
  int stageOf(const ir::Instruction* inst) const;
  int stageOfScc(int scc) const;
  bool isReplicated(const ir::Instruction* inst) const;
  bool isReplicatedScc(int scc) const;
  int parallelStageIndex() const; // -1 if none.

  /// Human-readable dump (stages, classes, weights) for reports/debugging.
  std::string describe() const;
};

} // namespace cgpa::pipeline
