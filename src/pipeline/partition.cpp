#include "pipeline/partition.hpp"

#include <algorithm>
#include <numeric>

#include "support/diag.hpp"

namespace cgpa::pipeline {

using analysis::Scc;
using analysis::SccClass;
using analysis::SccEdge;
using analysis::SccGraph;

namespace {

double totalWeight(const SccGraph& sccs, const std::vector<int>& ids) {
  double weight = 0.0;
  for (int id : ids)
    weight += sccs.sccs()[static_cast<std::size_t>(id)].weight;
  return weight;
}

std::string sccSubject(int id) { return "scc" + std::to_string(id); }

std::string idListString(const std::vector<int>& ids) {
  std::string text;
  for (int id : ids) {
    if (!text.empty())
      text += ',';
    text += std::to_string(id);
  }
  return text;
}

int flitsOf(ir::Type type) {
  const int bits = typeBits(type) == 0 ? 1 : typeBits(type);
  return (bits + 31) / 32;
}

/// Communication-minimizing sink pass: a parallel-class SCC whose values
/// only feed the later sequential stage moves into that stage when doing so
/// strictly reduces per-invocation FIFO traffic (the paper's partitioner
/// "intelligently calculates the pipeline balance"; K-means' membership
/// update ends up in the sequential section this way).
void sinkCheapProducers(const SccGraph& sccs, std::vector<int>& parallelSet,
                        std::vector<int>& afterSet,
                        const std::vector<bool>& replicated,
                        const PartitionOptions& options) {
  if (afterSet.empty())
    return;
  const analysis::Pdg& pdg = sccs.pdg();
  auto freq = [&](const ir::BasicBlock* block) {
    return options.blockFreq ? options.blockFreq(block) : 1.0;
  };
  auto inSet = [](const std::vector<int>& set, int id) {
    return std::find(set.begin(), set.end(), id) != set.end();
  };

  // Register users of each PDG node, at SCC granularity.
  auto userSccsOf = [&](const ir::Instruction* def) {
    std::vector<int> users;
    const int node = pdg.indexOf(def);
    for (const analysis::PdgEdge& edge : pdg.edges()) {
      if (edge.from != node || edge.kind != analysis::PdgEdge::Kind::Register)
        continue;
      const int userScc = sccs.sccOf(pdg.node(edge.to));
      if (userScc != sccs.sccOf(def) && !inSet(users, userScc))
        users.push_back(userScc);
    }
    return users;
  };

  double parallelWeight = totalWeight(sccs, parallelSet);
  double afterWeight = totalWeight(sccs, afterSet);

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t pi = 0; pi < parallelSet.size(); ++pi) {
      const int p = parallelSet[pi];
      const Scc& scc = sccs.sccs()[static_cast<std::size_t>(p)];
      if (scc.cls != SccClass::Parallel)
        continue;

      // Pipeline balance: never let the sequential stage become the
      // bottleneck — its weight must stay below the per-worker share of
      // the parallel stage.
      if ((afterWeight + scc.weight) *
              static_cast<double>(options.numWorkers) >
          parallelWeight - scc.weight)
        continue;
      // Only sink per-iteration bookkeeping: an SCC executing inside an
      // inner loop (more often than the target header) would serialize
      // that whole inner loop (ks's gain scan must stay parallel).
      {
        const double headerFreq = freq(pdg.loop().header);
        bool innerLoopWork = false;
        for (const ir::Instruction* member : scc.members)
          if (freq(member->parent()) > headerFreq)
            innerLoopWork = true;
        if (innerLoopWork)
          continue;
      }

      // Every non-replicated consumer SCC must already be in the after set.
      bool eligible = true;
      double saved = 0.0;
      for (const ir::Instruction* def : scc.members) {
        if (def->type() == ir::Type::Void)
          continue;
        bool usedByAfter = false;
        for (int user : userSccsOf(def)) {
          if (replicated[static_cast<std::size_t>(user)])
            continue;
          if (inSet(afterSet, user)) {
            usedByAfter = true;
          } else if (user != p) {
            eligible = false;
          }
        }
        if (usedByAfter)
          saved += freq(def->parent()) * flitsOf(def->type());
      }
      if (!eligible)
        continue;

      // Added traffic: parallel-stage values this SCC consumes that do not
      // already flow to the after stage.
      double added = 0.0;
      std::vector<const ir::Instruction*> counted;
      for (const ir::Instruction* member : scc.members) {
        for (const ir::Value* operand : member->operands()) {
          const ir::Instruction* def = ir::asInstruction(operand);
          if (def == nullptr || pdg.indexOf(def) < 0)
            continue;
          const int defScc = sccs.sccOf(def);
          if (defScc == p || replicated[static_cast<std::size_t>(defScc)] ||
              !inSet(parallelSet, defScc))
            continue;
          if (std::find(counted.begin(), counted.end(), def) != counted.end())
            continue;
          counted.push_back(def);
          bool alreadyFlows = false;
          for (int user : userSccsOf(def))
            if (inSet(afterSet, user))
              alreadyFlows = true;
          if (!alreadyFlows)
            added += freq(def->parent()) * flitsOf(def->type());
        }
      }

      if (saved > added) {
        if (options.remarks != nullptr)
          options.remarks->add("partition", "sink", sccSubject(p))
              .note("parallel SCC sunk into the after stage: its values "
                    "only feed the later sequential stage and moving it "
                    "reduces FIFO traffic")
              .arg("saved_flits", saved)
              .arg("added_flits", added)
              .arg("weight", scc.weight);
        afterSet.push_back(p);
        parallelSet.erase(parallelSet.begin() + static_cast<std::ptrdiff_t>(pi));
        afterWeight += scc.weight;
        parallelWeight -= scc.weight;
        changed = true;
        break;
      }
    }
  }
}

} // namespace

PipelinePlan sequentialPlan(const SccGraph& sccs, analysis::Loop& loop,
                            trace::RemarkCollector* remarks) {
  PipelinePlan plan;
  plan.sccs = &sccs;
  plan.loop = &loop;
  plan.numWorkers = 1;
  Stage stage;
  stage.parallel = false;
  for (const Scc& scc : sccs.sccs())
    stage.sccIds.push_back(scc.id);
  stage.weight = totalWeight(sccs, stage.sccIds);
  plan.stages.push_back(std::move(stage));
  if (remarks != nullptr)
    remarks->add("partition", "sequential-plan", "loop")
        .note("single sequential stage: no parallel stage could be formed "
              "(or a sequential accelerator was requested)")
        .arg("sccs", static_cast<int>(sccs.sccs().size()))
        .arg("weight", plan.stages.front().weight);
  return plan;
}

PipelinePlan partitionLoop(const SccGraph& sccs, analysis::Loop& loop,
                           const PartitionOptions& options) {
  const int n = static_cast<int>(sccs.sccs().size());

  // --- Step 1: candidate sets -------------------------------------------
  // Parallel-stage candidates and the tentative replicated set.
  std::vector<bool> inParallel(static_cast<std::size_t>(n), false);
  std::vector<bool> replicated(static_cast<std::size_t>(n), false);
  for (const Scc& scc : sccs.sccs()) {
    if (scc.cls == SccClass::Parallel)
      inParallel[static_cast<std::size_t>(scc.id)] = true;
    else if (scc.cls == SccClass::Replicable) {
      // P1: duplicate only lightweight replicables (paper's heuristic).
      // P2: force every replicable into the workers (replicated data-level
      // parallelism), regardless of weight.
      if (options.policy == ReplicablePolicy::ForceParallel ||
          scc.lightweight())
        replicated[static_cast<std::size_t>(scc.id)] = true;
      if (options.remarks != nullptr) {
        const bool dup = replicated[static_cast<std::size_t>(scc.id)];
        options.remarks
            ->add("partition", "replication-candidate", sccSubject(scc.id))
            .note(dup ? (options.policy == ReplicablePolicy::ForceParallel
                             ? "replicable duplicated into every worker "
                               "(P2 forces all replicables)"
                             : "lightweight replicable (no load, no "
                               "multiply) duplicated into every stage (P1)")
                      : "heavyweight replicable (has load or multiply) "
                        "kept in a sequential stage under P1")
            .arg("policy",
                 options.policy == ReplicablePolicy::ForceParallel ? "P2"
                                                                   : "P1")
            .arg("lightweight", scc.lightweight())
            .arg("has_load", scc.hasLoad)
            .arg("has_mul", scc.hasMul)
            .arg("replicated", dup);
      }
    }
  }

  // Direct predecessors in the condensation DAG.
  std::vector<std::vector<int>> preds(static_cast<std::size_t>(n));
  for (const SccEdge& edge : sccs.edges())
    preds[static_cast<std::size_t>(edge.to)].push_back(edge.from);
  std::vector<bool> everDemoted(static_cast<std::size_t>(n), false);

  bool changed = true;
  while (changed) {
    changed = false;

    // --- Step 2: convexity of the parallel stage ------------------------
    // No non-replicated SCC may sit on a path between two parallel-stage
    // members; drop the lighter side of any such split.
    for (int s = 0; s < n && !changed; ++s) {
      if (inParallel[static_cast<std::size_t>(s)] ||
          replicated[static_cast<std::size_t>(s)])
        continue;
      std::vector<int> above; // Parallel members that reach s.
      std::vector<int> below; // Parallel members reachable from s.
      for (int p = 0; p < n; ++p) {
        if (!inParallel[static_cast<std::size_t>(p)])
          continue;
        if (sccs.reaches(p, s))
          above.push_back(p);
        if (sccs.reaches(s, p))
          below.push_back(p);
      }
      if (above.empty() || below.empty())
        continue;
      const bool dropAbove =
          totalWeight(sccs, above) < totalWeight(sccs, below);
      const std::vector<int>& drop = dropAbove ? above : below;
      if (options.remarks != nullptr)
        options.remarks->add("partition", "convexity-drop", sccSubject(s))
            .note("sequential SCC sits on a path between parallel-stage "
                  "members; the lighter side leaves the parallel stage")
            .arg("dropped", idListString(drop))
            .arg("dropped_side", dropAbove ? "above" : "below")
            .arg("dropped_weight", totalWeight(sccs, drop))
            .arg("kept_weight",
                 totalWeight(sccs, dropAbove ? below : above));
      for (int p : drop)
        inParallel[static_cast<std::size_t>(p)] = false;
      changed = true;
    }
    if (changed)
      continue;

    // --- Step 3: replication validity -----------------------------------
    // A replicated SCC may only depend on other replicated SCCs or on SCCs
    // placed before the parallel stage (whose values are broadcastable).
    // A pure (side-effect-free) parallel-class predecessor can instead be
    // *promoted* into the replicated set when cheap enough — this is how
    // the address computation feeding a replicated image-fetch section
    // (Gaussblur's R3 under P2) gets duplicated across workers. SCCs that
    // were ever demoted are never re-promoted (termination).
    for (int r = 0; r < n && !changed; ++r) {
      if (!replicated[static_cast<std::size_t>(r)])
        continue;
      for (int pred : preds[static_cast<std::size_t>(r)]) {
        if (pred == r || replicated[static_cast<std::size_t>(pred)])
          continue;
        bool predBeforeParallel = true;
        if (inParallel[static_cast<std::size_t>(pred)]) {
          predBeforeParallel = false;
        } else {
          for (int p = 0; p < n; ++p)
            if (inParallel[static_cast<std::size_t>(p)] &&
                sccs.reaches(p, pred)) {
              predBeforeParallel = false;
              break;
            }
        }
        if (predBeforeParallel)
          continue;
        const Scc& predScc = sccs.sccs()[static_cast<std::size_t>(pred)];
        const bool promotable =
            !predScc.sideEffects &&
            !everDemoted[static_cast<std::size_t>(pred)] &&
            (predScc.lightweight() ||
             options.policy == ReplicablePolicy::ForceParallel);
        if (promotable) {
          if (options.remarks != nullptr)
            options.remarks
                ->add("partition", "promoted", sccSubject(pred))
                .note("pure predecessor promoted into the replicated set so "
                      "its replicated consumer stays duplicable")
                .arg("consumer", sccSubject(r));
          replicated[static_cast<std::size_t>(pred)] = true;
          inParallel[static_cast<std::size_t>(pred)] = false;
        } else {
          if (options.remarks != nullptr)
            options.remarks->add("partition", "demoted", sccSubject(r))
                .note("replication invalid: depends on a value produced in "
                      "or after the parallel stage that cannot be broadcast "
                      "to every worker")
                .arg("blocking_pred", sccSubject(pred))
                .arg("returns_to_parallel",
                     sccs.sccs()[static_cast<std::size_t>(r)].cls ==
                         SccClass::Parallel);
          replicated[static_cast<std::size_t>(r)] = false;
          everDemoted[static_cast<std::size_t>(r)] = true;
          // A parallel-class SCC that had been promoted returns to the
          // parallel stage (never re-promoted, so this terminates).
          if (sccs.sccs()[static_cast<std::size_t>(r)].cls ==
              SccClass::Parallel)
            inParallel[static_cast<std::size_t>(r)] = true;
        }
        changed = true;
        break;
      }
    }
  }

  // --- Step 4: stage assignment ------------------------------------------
  std::vector<int> parallelSet;
  for (int p = 0; p < n; ++p)
    if (inParallel[static_cast<std::size_t>(p)])
      parallelSet.push_back(p);

  PipelinePlan plan;
  plan.sccs = &sccs;
  plan.loop = &loop;

  if (parallelSet.empty()) {
    // Nothing to pipeline: one sequential stage holding everything.
    return sequentialPlan(sccs, loop, options.remarks);
  }

  plan.numWorkers = options.numWorkers;
  for (int r = 0; r < n; ++r)
    if (replicated[static_cast<std::size_t>(r)])
      plan.replicatedSccs.push_back(r);

  std::vector<int> beforeSet;
  std::vector<int> afterSet;
  for (int s = 0; s < n; ++s) {
    if (inParallel[static_cast<std::size_t>(s)] ||
        replicated[static_cast<std::size_t>(s)])
      continue;
    bool reachedFromParallel = false;
    for (int p : parallelSet)
      if (sccs.reaches(p, s)) {
        reachedFromParallel = true;
        break;
      }
    if (reachedFromParallel)
      afterSet.push_back(s);
    else
      beforeSet.push_back(s); // Ancestors and unrelated SCCs.
  }

  if (options.sinkCheapProducers)
    sinkCheapProducers(sccs, parallelSet, afterSet, replicated, options);
  if (parallelSet.empty())
    return sequentialPlan(sccs, loop, options.remarks);

  Stage before;
  before.sccIds = beforeSet;
  Stage parallel;
  parallel.parallel = true;
  parallel.sccIds = parallelSet;
  Stage after;
  after.sccIds = afterSet;

  if (!before.sccIds.empty()) {
    before.weight = totalWeight(sccs, before.sccIds);
    plan.stages.push_back(std::move(before));
  }
  parallel.weight = totalWeight(sccs, parallel.sccIds);
  plan.stages.push_back(std::move(parallel));
  if (!after.sccIds.empty()) {
    after.weight = totalWeight(sccs, after.sccIds);
    plan.stages.push_back(std::move(after));
  }

  if (options.remarks != nullptr) {
    // Final placement: one remark per SCC naming where it ended up, and a
    // per-stage summary with the weights the balance heuristics compared.
    for (int id : plan.replicatedSccs)
      options.remarks->add("partition", "placement", sccSubject(id))
          .note("duplicated into every stage and every parallel worker")
          .arg("stage", "replicated")
          .arg("class",
               analysis::sccClassName(
                   sccs.sccs()[static_cast<std::size_t>(id)].cls))
          .arg("weight", sccs.sccs()[static_cast<std::size_t>(id)].weight);
    for (std::size_t si = 0; si < plan.stages.size(); ++si) {
      const Stage& stage = plan.stages[si];
      for (int id : stage.sccIds)
        options.remarks->add("partition", "placement", sccSubject(id))
            .note(stage.parallel
                      ? "assigned to the parallel stage"
                      : "assigned to a sequential stage")
            .arg("stage", static_cast<int>(si))
            .arg("parallel", stage.parallel)
            .arg("class",
                 analysis::sccClassName(
                     sccs.sccs()[static_cast<std::size_t>(id)].cls))
            .arg("weight", sccs.sccs()[static_cast<std::size_t>(id)].weight);
      options.remarks
          ->add("partition", "stage", "stage" + std::to_string(si))
          .note(stage.parallel ? "parallel stage (round-robin workers)"
                               : "sequential stage")
          .arg("parallel", stage.parallel)
          .arg("sccs", idListString(stage.sccIds))
          .arg("weight", stage.weight)
          .arg("workers", stage.parallel ? plan.numWorkers : 1);
    }
    options.remarks->add("partition", "plan", "loop")
        .note("pipeline plan " + plan.shapeString() + " with " +
              std::to_string(plan.numWorkers) + " workers")
        .arg("shape", plan.shapeString())
        .arg("policy",
             options.policy == ReplicablePolicy::ForceParallel ? "P2" : "P1")
        .arg("workers", plan.numWorkers)
        .arg("replicated", idListString(plan.replicatedSccs));
  }

  // --- Step 5: validity check --------------------------------------------
  // Every condensation edge must flow forward in the stage order.
  for (const SccEdge& edge : sccs.edges()) {
    const int fromStage = plan.stageOfScc(edge.from);
    const int toStage = plan.stageOfScc(edge.to);
    if (fromStage < 0 || toStage < 0)
      continue; // Replicated endpoints impose no ordering.
    CGPA_ASSERT(fromStage <= toStage,
                "partition produced a backward cross-stage dependence");
  }

  return plan;
}

Status checkPartitionOptions(const PartitionOptions& options) {
  if (options.numWorkers < 1)
    return Status::error(ErrorCode::PartitionError,
                         "numWorkers must be >= 1 (got " +
                             std::to_string(options.numWorkers) + ")");
  if ((options.numWorkers & (options.numWorkers - 1)) != 0)
    return Status::error(ErrorCode::PartitionError,
                         "numWorkers must be a power of two (got " +
                             std::to_string(options.numWorkers) + ")");
  return Status::success();
}

} // namespace cgpa::pipeline
