#include "pipeline/functional_exec.hpp"

#include <deque>
#include <vector>

#include "support/diag.hpp"

namespace cgpa::pipeline {

namespace {

using interp::Interpreter;
using interp::LiveoutFile;
using interp::Memory;
using interp::PrimitiveHandler;

/// Unbounded FIFO state for all channels of one pipeline invocation.
class QueueSet {
public:
  explicit QueueSet(const PipelineModule& pipeline) {
    for (const ChannelInfo& channel : pipeline.channels)
      lanes_.emplace_back(static_cast<std::size_t>(channel.lanes));
  }

  void push(int channel, std::int64_t lane, std::uint64_t value) {
    laneRef(channel, lane).push_back(value);
  }

  void pushAll(int channel, std::uint64_t value) {
    for (auto& lane : lanes_.at(static_cast<std::size_t>(channel)))
      lane.push_back(value);
  }

  std::uint64_t pop(int channel, std::int64_t lane) {
    auto& queue = laneRef(channel, lane);
    CGPA_ASSERT(!queue.empty(), "functional exec: consume from empty channel " +
                                    std::to_string(channel) + " lane " +
                                    std::to_string(lane));
    const std::uint64_t value = queue.front();
    queue.pop_front();
    return value;
  }

  void assertDrained() const {
    for (std::size_t c = 0; c < lanes_.size(); ++c)
      for (const auto& lane : lanes_[c])
        CGPA_ASSERT(lane.empty(), "functional exec: channel " +
                                      std::to_string(c) +
                                      " left values unconsumed at join");
  }

private:
  std::deque<std::uint64_t>& laneRef(int channel, std::int64_t lane) {
    auto& lanes = lanes_.at(static_cast<std::size_t>(channel));
    CGPA_ASSERT(lane >= 0 && lane < static_cast<std::int64_t>(lanes.size()),
                "functional exec: lane out of range");
    return lanes[static_cast<std::size_t>(lane)];
  }

  std::vector<std::vector<std::deque<std::uint64_t>>> lanes_;
};

/// Primitive handler used inside task functions.
class TaskHandler : public PrimitiveHandler {
public:
  explicit TaskHandler(QueueSet& queues) : queues_(&queues) {}

  void produce(const ir::Instruction& inst, std::int64_t lane,
               std::uint64_t value) override {
    queues_->push(inst.channelId(), lane, value);
  }
  void produceBroadcast(const ir::Instruction& inst,
                        std::uint64_t value) override {
    queues_->pushAll(inst.channelId(), value);
  }
  std::uint64_t consume(const ir::Instruction& inst,
                        std::int64_t lane) override {
    return queues_->pop(inst.channelId(), lane);
  }
  void parallelFork(const ir::Instruction&,
                    std::span<const std::uint64_t>) override {
    CGPA_UNREACHABLE("nested parallel_fork inside a task");
  }
  void parallelJoin(const ir::Instruction&) override {
    CGPA_UNREACHABLE("parallel_join inside a task");
  }

private:
  QueueSet* queues_;
};

/// Primitive handler for the wrapper: records forks, runs tasks at join.
class WrapperHandler : public PrimitiveHandler {
public:
  WrapperHandler(const PipelineModule& pipeline, Memory& memory,
                 LiveoutFile& liveouts, interp::ExecObserver* observer)
      : pipeline_(&pipeline), memory_(&memory), liveouts_(&liveouts),
        observer_(observer) {}

  void produce(const ir::Instruction&, std::int64_t, std::uint64_t) override {
    CGPA_UNREACHABLE("produce in wrapper");
  }
  void produceBroadcast(const ir::Instruction&, std::uint64_t) override {
    CGPA_UNREACHABLE("produce_broadcast in wrapper");
  }
  std::uint64_t consume(const ir::Instruction&, std::int64_t) override {
    CGPA_UNREACHABLE("consume in wrapper");
  }

  void parallelFork(const ir::Instruction& inst,
                    std::span<const std::uint64_t> args) override {
    pending_.push_back(
        {inst.taskIndex(), {args.begin(), args.end()}});
  }

  void parallelJoin(const ir::Instruction&) override {
    QueueSet queues(*pipeline_);
    TaskHandler handler(queues);
    for (const auto& [taskIndex, args] : pending_) {
      const TaskInfo& task =
          pipeline_->tasks.at(static_cast<std::size_t>(taskIndex));
      Interpreter interp(*memory_);
      interp.setPrimitiveHandler(&handler);
      interp.setLiveoutFile(liveouts_);
      interp.setObserver(observer_);
      const interp::InterpResult result = interp.run(*task.fn, args);
      instructionsExecuted += result.instructionsExecuted;
    }
    pending_.clear();
    queues.assertDrained();
  }

  std::uint64_t instructionsExecuted = 0;

private:
  const PipelineModule* pipeline_;
  Memory* memory_;
  LiveoutFile* liveouts_;
  interp::ExecObserver* observer_;
  std::vector<std::pair<int, std::vector<std::uint64_t>>> pending_;
};

} // namespace

FunctionalRunResult runPipelineFunctional(const PipelineModule& pipeline,
                                          Memory& memory,
                                          std::span<const std::uint64_t> args,
                                          interp::ExecObserver* observer) {
  FunctionalRunResult result;
  WrapperHandler handler(pipeline, memory, result.liveouts, observer);
  Interpreter interp(memory);
  interp.setPrimitiveHandler(&handler);
  interp.setLiveoutFile(&result.liveouts);
  interp.setObserver(observer);
  const interp::InterpResult wrapperResult =
      interp.run(*pipeline.wrapper, args);
  result.wrapperReturn = wrapperResult.returnValue;
  result.instructionsExecuted =
      wrapperResult.instructionsExecuted + handler.instructionsExecuted;
  return result;
}

} // namespace cgpa::pipeline
