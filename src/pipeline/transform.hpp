// Pipeline transform (paper Section 3.3, "Pipeline Transform"): MTCG-style
// multi-task code generation for a partitioned loop.
//
// For every stage the transform emits a task function with a
// control-equivalent copy of the loop:
//   * the loop skeleton is reduced to the blocks relevant to the stage
//     (blocks holding assigned/replicated instructions or consume
//     positions, closed under control dependence), with branches re-routed
//     through post-dominators past skipped regions;
//   * cross-stage register dependences become produce/consume pairs, with
//     the consume at the position of the original definition so that
//     per-lane FIFO orders match;
//   * cross-stage control dependences (the loop-exit condition) are
//     broadcast to all later stages;
//   * the parallel-stage task has two loop bodies (paper Fig. 1e): the real
//     body for iterations where (it & MASK) == WorkerID and a replica-only
//     body that keeps replicated state and broadcast queues in sync;
//   * live-outs are stored via store_liveout before task exit and fetched
//     by the rewritten wrapper with retrieve_liveout after parallel_join.
#pragma once

#include <string>
#include <vector>

#include "pipeline/plan.hpp"
#include "support/status.hpp"

namespace cgpa::pipeline {

struct ChannelInfo {
  int id = -1;
  int producerStage = -1;
  int consumerStage = -1;
  /// Broadcast channels deliver every value to every consumer lane;
  /// non-broadcast channels are round-robin distributed / collected.
  bool broadcast = false;
  /// Number of queues (lanes): numWorkers when either endpoint is the
  /// parallel stage, else 1.
  int lanes = 1;
  ir::Type type = ir::Type::I64;
  std::string valueName; ///< Debug: name of the communicated value.
};

struct TaskInfo {
  int stageIndex = -1;
  bool parallel = false;
  ir::Function* fn = nullptr; ///< Params: live-ins... [+ workerId if parallel].
};

struct LiveoutInfo {
  int id = -1;
  ir::Type type = ir::Type::I64;
  int ownerStage = -1;
  std::string valueName;
};

struct PipelineModule {
  ir::Module* module = nullptr;
  ir::Function* wrapper = nullptr; ///< The rewritten original function.
  int loopId = 0;
  int numWorkers = 1;
  std::vector<TaskInfo> tasks;
  std::vector<ChannelInfo> channels;
  std::vector<LiveoutInfo> liveouts;
  std::vector<ir::Value*> liveins; ///< Original live-in values, param order.
  /// The original loop's blocks, detached from the wrapper but kept alive
  /// so analyses (PDG, SCC graph, plan) built before the transform remain
  /// valid. PipelineModule is therefore move-only.
  std::vector<std::unique_ptr<ir::BasicBlock>> retiredBlocks;

  const TaskInfo* parallelTask() const {
    for (const TaskInfo& task : tasks)
      if (task.parallel)
        return &task;
    return nullptr;
  }
};

/// Precondition check for transformLoop on `plan` (and its loop): exactly
/// one exiting branch (in the header), one latch (not the header), one
/// exit block, a preheader, and an exit condition not computed in the
/// parallel stage. Returns Ok or ErrorCode::TransformError naming the
/// violated requirement, so drivers can reject unsupported loop shapes
/// without dying; transformLoop itself still CGPA_ASSERTs the same facts.
Status checkTransformPreconditions(const PipelinePlan& plan);

/// Apply the pipeline transform for `plan` to the function containing the
/// plan's loop. New task functions are added to the function's module and
/// the original loop is replaced by fork/join primitives.
///
/// Requirements (checked): the loop has exactly one exiting branch, one
/// latch, and one exit block.
///
/// `remarks`, when non-null, records per-channel provenance (producing
/// instruction, endpoint stages, register vs. control dependence,
/// broadcast verdict) and per-liveout routing ("transform" pass); never
/// affects the generated code.
PipelineModule transformLoop(ir::Function& function, const PipelinePlan& plan,
                             int loopId,
                             trace::RemarkCollector* remarks = nullptr);

} // namespace cgpa::pipeline
