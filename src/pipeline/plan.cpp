#include "pipeline/plan.hpp"

#include <algorithm>
#include <sstream>

#include "support/strings.hpp"

namespace cgpa::pipeline {

std::string PipelinePlan::shapeString() const {
  std::string shape;
  for (const Stage& stage : stages) {
    if (!shape.empty())
      shape += "-";
    shape += stage.parallel ? "P" : "S";
  }
  return shape;
}

int PipelinePlan::stageOfScc(int scc) const {
  if (isReplicatedScc(scc))
    return -1;
  for (std::size_t i = 0; i < stages.size(); ++i)
    if (std::find(stages[i].sccIds.begin(), stages[i].sccIds.end(), scc) !=
        stages[i].sccIds.end())
      return static_cast<int>(i);
  return -1;
}

int PipelinePlan::stageOf(const ir::Instruction* inst) const {
  const int scc = sccs->sccOf(inst);
  return scc < 0 ? -1 : stageOfScc(scc);
}

bool PipelinePlan::isReplicatedScc(int scc) const {
  return std::find(replicatedSccs.begin(), replicatedSccs.end(), scc) !=
         replicatedSccs.end();
}

bool PipelinePlan::isReplicated(const ir::Instruction* inst) const {
  const int scc = sccs->sccOf(inst);
  return scc >= 0 && isReplicatedScc(scc);
}

int PipelinePlan::parallelStageIndex() const {
  for (std::size_t i = 0; i < stages.size(); ++i)
    if (stages[i].parallel)
      return static_cast<int>(i);
  return -1;
}

std::string PipelinePlan::describe() const {
  std::ostringstream out;
  out << "pipeline " << shapeString() << " (" << numWorkers
      << " workers in parallel stage)\n";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const Stage& stage = stages[i];
    out << "  stage " << i << (stage.parallel ? " [parallel]" : " [sequential]")
        << " weight=" << formatFixed(stage.weight, 1) << " sccs:";
    for (int scc : stage.sccIds)
      out << " " << scc << "("
          << analysis::sccClassName(
                 sccs->sccs()[static_cast<std::size_t>(scc)].cls)
          << ")";
    out << "\n";
  }
  out << "  replicated sccs:";
  for (int scc : replicatedSccs)
    out << " " << scc;
  out << "\n";
  return out.str();
}

} // namespace cgpa::pipeline
