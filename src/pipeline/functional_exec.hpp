// Functional (untimed) execution of a transformed pipeline.
//
// Runs the rewritten wrapper under the reference interpreter; each
// parallel_fork records a task invocation, and parallel_join executes the
// recorded tasks to completion in stage order with unbounded FIFO queues.
// Because channels only flow forward through the stage order, this
// topological schedule is equivalent to any interleaved execution — it
// validates the *transform* independently of the cycle-level timing model.
#pragma once

#include "interp/interpreter.hpp"
#include "pipeline/transform.hpp"

namespace cgpa::pipeline {

struct FunctionalRunResult {
  std::uint64_t wrapperReturn = 0;
  interp::LiveoutFile liveouts;
  /// Total instructions executed across wrapper and all tasks.
  std::uint64_t instructionsExecuted = 0;
};

/// Execute the wrapper of `pipeline` with `args` against `memory`.
/// Aborts (with a diagnostic) on FIFO protocol violations: consuming from
/// an empty queue or leaving values unconsumed at a join.
/// `observer` (optional) sees every instruction executed by the wrapper
/// and by each task, in execution order — the differential fuzzing oracle
/// uses it to capture per-address store sequences.
FunctionalRunResult runPipelineFunctional(const PipelineModule& pipeline,
                                          interp::Memory& memory,
                                          std::span<const std::uint64_t> args,
                                          interp::ExecObserver* observer = nullptr);

} // namespace cgpa::pipeline
