#include "pipeline/transform.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "analysis/control_dep.hpp"
#include "analysis/dominators.hpp"
#include "ir/builder.hpp"
#include "support/diag.hpp"

namespace cgpa::pipeline {

using analysis::Loop;
using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::Opcode;
using ir::Type;
using ir::Value;

namespace {

constexpr int kReplicated = -1;

/// Per-cross-stage-value communication record.
struct CrossValue {
  Instruction* def = nullptr;
  int producerStage = -1;
  std::set<int> consumerStages;
  /// Consumers that need the value in the replica body too (used by a
  /// replicated instruction or by a branch retained in the replica body).
  bool neededByReplica = false;
  /// Some cross-stage use is a branch condition (control dependence, e.g.
  /// the loop-exit decision) rather than a plain register use.
  bool usedByBranch = false;
  /// Channel id per consumer stage.
  std::map<int, int> channelOf;
};

class Transformer {
public:
  Transformer(Function& fn, const PipelinePlan& plan, int loopId,
              trace::RemarkCollector* remarks)
      : fn_(fn), module_(*fn.parent()), plan_(plan), loop_(*plan.loop),
        loopId_(loopId), postDom_(fn, /*postDom=*/true),
        controlDeps_(fn, postDom_), remarks_(remarks) {}

  PipelineModule run();

private:
  // --- Setup and classification ---
  void validateLoopShape();
  int placeOf(const Instruction* inst) const;
  void collectLiveins();
  void collectLiveouts();
  void computeCrossValues();
  void buildChannels();

  // --- Task generation ---
  void generateTask(int stage);
  void rewriteWrapper();

  /// Stages where branch `term` must be retained, given current needs.
  std::set<int> branchStages(const Instruction* term, int depth = 0) const;

  Function& fn_;
  ir::Module& module_;
  const PipelinePlan& plan_;
  Loop& loop_;
  int loopId_;
  analysis::DominatorTree postDom_;
  analysis::ControlDependence controlDeps_;

  int numStages_ = 0;
  int parallelStage_ = -1;
  int workers_ = 1;
  Instruction* exitBranch_ = nullptr;
  BasicBlock* exitTarget_ = nullptr; // Out-of-loop successor.
  BasicBlock* latch_ = nullptr;

  std::vector<Value*> liveins_;
  std::vector<LiveoutInfo> liveoutInfos_;
  std::vector<Instruction*> liveoutDefs_;
  std::unordered_map<const Instruction*, CrossValue> crossValues_;
  PipelineModule result_;
  trace::RemarkCollector* remarks_ = nullptr;
};

void Transformer::validateLoopShape() {
  CGPA_ASSERT(loop_.exitingBranches.size() == 1,
              "transform requires exactly one exiting branch");
  CGPA_ASSERT(loop_.latches.size() == 1, "transform requires a single latch");
  CGPA_ASSERT(loop_.exitBlocks.size() == 1,
              "transform requires a single exit block");
  exitBranch_ = loop_.exitingBranches.front();
  CGPA_ASSERT(exitBranch_->parent() == loop_.header,
              "transform requires the exiting branch in the loop header");
  latch_ = loop_.latches.front();
  CGPA_ASSERT(latch_ != loop_.header,
              "single-block loops unsupported (latch == header)");
  exitTarget_ = loop_.exitBlocks.front();
  CGPA_ASSERT(loop_.preheader != nullptr, "loop needs a preheader");

  // The exit condition must not be computed in the parallel stage: a
  // sequential later stage could not learn termination otherwise.
  if (exitBranch_->numOperands() == 1) {
    const Instruction* cond = ir::asInstruction(exitBranch_->operand(0));
    if (cond != nullptr && loop_.contains(cond))
      CGPA_ASSERT(placeOf(cond) == kReplicated ||
                      !plan_.stages[static_cast<std::size_t>(placeOf(cond))]
                           .parallel,
                  "exit condition computed in the parallel stage");
  }
}

int Transformer::placeOf(const Instruction* inst) const {
  if (plan_.isReplicated(inst))
    return kReplicated;
  const int stage = plan_.stageOf(inst);
  CGPA_ASSERT(stage >= 0, "loop instruction missing from plan: " +
                              std::string(ir::opcodeName(inst->opcode())));
  return stage;
}

void Transformer::collectLiveins() {
  auto isInLoop = [&](const Value* value) {
    const Instruction* inst = ir::asInstruction(value);
    return inst != nullptr && loop_.contains(inst);
  };
  for (BasicBlock* block : loop_.blocks) {
    for (const auto& inst : block->instructions()) {
      for (Value* operand : inst->operands()) {
        if (ir::isa<ir::Constant>(operand) || isInLoop(operand))
          continue;
        if (std::find(liveins_.begin(), liveins_.end(), operand) ==
            liveins_.end())
          liveins_.push_back(operand);
      }
    }
  }
}

void Transformer::collectLiveouts() {
  int nextId = 0;
  for (const auto& block : fn_.blocks()) {
    if (loop_.contains(block.get()))
      continue;
    for (const auto& inst : block->instructions()) {
      for (Value* operand : inst->operands()) {
        Instruction* def = ir::asInstruction(operand);
        if (def == nullptr || !loop_.contains(def))
          continue;
        if (std::find(liveoutDefs_.begin(), liveoutDefs_.end(), def) !=
            liveoutDefs_.end())
          continue;
        CGPA_ASSERT(def->opcode() == Opcode::Phi &&
                        def->parent() == loop_.header,
                    "live-out values must be loop-header phis (LCSSA-like "
                    "form); got %" +
                        def->name());
        LiveoutInfo info;
        info.id = nextId++;
        info.type = def->type();
        const int place = placeOf(def);
        info.ownerStage = place == kReplicated ? numStages_ - 1 : place;
        info.valueName = def->name();
        liveoutDefs_.push_back(def);
        liveoutInfos_.push_back(info);
      }
    }
  }
}

std::set<int> Transformer::branchStages(const Instruction* term,
                                        int depth) const {
  std::set<int> stages;
  if (term == exitBranch_) {
    for (int s = 0; s < numStages_; ++s)
      stages.insert(s);
    return stages;
  }
  if (depth > 8)
    return stages;
  // Stages holding an instruction control-dependent on this branch, or a
  // consume position inside a control-dependent block, or a retained
  // nested branch.
  for (BasicBlock* block : loop_.blocks) {
    const auto& ctl = controlDeps_.controllers(block);
    if (std::find(ctl.begin(), ctl.end(), term) == ctl.end())
      continue;
    for (const auto& inst : block->instructions()) {
      if (inst->isTerminator()) {
        if (inst->opcode() == Opcode::CondBr && inst.get() != term)
          for (int s : branchStages(inst.get(), depth + 1))
            stages.insert(s);
        continue;
      }
      const int place = placeOf(inst.get());
      if (place == kReplicated) {
        for (int s = 0; s < numStages_; ++s)
          stages.insert(s);
      } else {
        stages.insert(place);
      }
      const auto it = crossValues_.find(inst.get());
      if (it != crossValues_.end())
        for (int s : it->second.consumerStages)
          stages.insert(s);
    }
  }
  return stages;
}

void Transformer::computeCrossValues() {
  // Fixed point: needs can grow when branch retention pulls a condition
  // into more stages.
  bool changed = true;
  while (changed) {
    changed = false;
    for (BasicBlock* block : loop_.blocks) {
      for (const auto& user : block->instructions()) {
        std::set<int> userStages;
        if (user->isTerminator()) {
          if (user->opcode() != Opcode::CondBr)
            continue;
          userStages = branchStages(user.get());
        } else {
          const int place = placeOf(user.get());
          if (place == kReplicated) {
            for (int s = 0; s < numStages_; ++s)
              userStages.insert(s);
          } else {
            userStages.insert(place);
          }
        }
        for (Value* operand : user->operands()) {
          Instruction* def = ir::asInstruction(operand);
          if (def == nullptr || !loop_.contains(def))
            continue;
          if (placeOf(def) == kReplicated)
            continue; // Recomputed locally everywhere.
          const int producer = placeOf(def);
          CrossValue& cross = crossValues_[def];
          cross.def = def;
          cross.producerStage = producer;
          for (int s : userStages) {
            if (s == producer)
              continue;
            if (cross.consumerStages.insert(s).second)
              changed = true;
            const bool replicaUse =
                !user->isTerminator() && placeOf(user.get()) == kReplicated;
            const bool branchUse = user->isTerminator();
            cross.usedByBranch |= branchUse;
            if (s == parallelStage_ && (replicaUse || branchUse) &&
                !cross.neededByReplica) {
              cross.neededByReplica = true;
              changed = true;
            }
          }
        }
      }
    }
  }
  // Remove entries that gained no consumers.
  for (auto it = crossValues_.begin(); it != crossValues_.end();) {
    if (it->second.consumerStages.empty())
      it = crossValues_.erase(it);
    else
      ++it;
  }
  // Validity: a value produced by the parallel stage cannot be broadcast.
  for (const auto& [def, cross] : crossValues_) {
    (void)def;
    CGPA_ASSERT(!(cross.producerStage == parallelStage_ &&
                  cross.neededByReplica),
                "replica body needs a value computed in the parallel stage");
  }
}

void Transformer::buildChannels() {
  int nextChannel = 0;
  // Deterministic order: loop block/instruction order, then consumer stage.
  for (BasicBlock* block : loop_.blocks) {
    for (const auto& inst : block->instructions()) {
      const auto it = crossValues_.find(inst.get());
      if (it == crossValues_.end())
        continue;
      CrossValue& cross = it->second;
      for (int consumer : cross.consumerStages) {
        ChannelInfo channel;
        channel.id = nextChannel++;
        channel.producerStage = cross.producerStage;
        channel.consumerStage = consumer;
        const bool producerParallel = cross.producerStage == parallelStage_;
        const bool consumerParallel = consumer == parallelStage_;
        channel.broadcast = consumerParallel && cross.neededByReplica;
        channel.lanes = (producerParallel || consumerParallel) ? workers_ : 1;
        channel.type = cross.def->type();
        channel.valueName = cross.def->name();
        cross.channelOf[consumer] = channel.id;
        if (remarks_ != nullptr) {
          const std::string label =
              !cross.def->name().empty()
                  ? cross.def->name()
                  : std::string(ir::opcodeName(cross.def->opcode()));
          const int bits = ir::typeBits(channel.type) == 0
                               ? 1
                               : ir::typeBits(channel.type);
          remarks_
              ->add("transform", "channel",
                    "ch" + std::to_string(channel.id))
              .note(std::string(channel.broadcast
                                    ? "broadcast channel"
                                    : "round-robin channel") +
                    " for '" + label + "': stage " +
                    std::to_string(channel.producerStage) + " -> stage " +
                    std::to_string(consumer))
              .arg("value", label)
              .arg("producer_op",
                   std::string(ir::opcodeName(cross.def->opcode())))
              .arg("producer_stage", channel.producerStage)
              .arg("consumer_stage", consumer)
              .arg("dep_kind", cross.usedByBranch ? "control" : "register")
              .arg("broadcast", channel.broadcast)
              .arg("broadcast_reason",
                   channel.broadcast
                       ? "replica body of every worker consumes the value"
                       : "")
              .arg("lanes", channel.lanes)
              .arg("flits", (bits + 31) / 32);
        }
        result_.channels.push_back(channel);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Task generation
// ---------------------------------------------------------------------------

/// Clone context for one body copy (or the whole task for sequential
/// stages): maps original values/blocks to their clones.
struct CloneMap {
  std::unordered_map<const Value*, Value*> values;
  std::unordered_map<const BasicBlock*, BasicBlock*> blocks;
};

void Transformer::generateTask(int stage) {
  const bool parallel = plan_.stages[static_cast<std::size_t>(stage)].parallel;
  const int mask = workers_ - 1;

  Function* task = module_.addFunction(
      fn_.name() + "_stage" + std::to_string(stage), Type::Void);
  std::unordered_map<const Value*, Value*> liveinMap;
  for (Value* livein : liveins_) {
    ir::Argument* param = task->addArgument(
        livein->type(), livein->name().empty() ? "in" : livein->name());
    if (const ir::Argument* origArg = ir::asArgument(livein))
      param->setRegionId(origArg->regionId());
    liveinMap[livein] = param;
  }
  ir::Argument* widArg =
      parallel ? task->addArgument(Type::I32, "wid") : nullptr;

  // Does this stage need a synthetic iteration counter? Parallel stages
  // always do (work dispatch); sequential stages do when they exchange
  // values with the parallel stage over round-robin lanes.
  bool needsCounter = parallel;
  for (const auto& [def, cross] : crossValues_) {
    (void)def;
    if (cross.producerStage == stage &&
        cross.consumerStages.count(parallelStage_) != 0 &&
        !cross.neededByReplica)
      needsCounter = true;
    if (cross.producerStage == parallelStage_ &&
        cross.consumerStages.count(stage) != 0)
      needsCounter = true;
  }

  // --- Relevance -----------------------------------------------------------
  // keptInMain: instructions appearing in the stage's main (real) body.
  // keptInReplica: instructions appearing in the replica body (parallel
  // stages only).
  auto keptInMain = [&](const Instruction* inst) {
    if (inst->isTerminator())
      return false;
    const int place = placeOf(inst);
    return place == kReplicated || place == stage;
  };
  auto keptInReplica = [&](const Instruction* inst) {
    if (inst->isTerminator())
      return false;
    return placeOf(inst) == kReplicated;
  };
  auto consumedHere = [&](const Instruction* def) {
    const auto it = crossValues_.find(def);
    return it != crossValues_.end() &&
           it->second.consumerStages.count(stage) != 0;
  };
  auto consumeIsBroadcast = [&](const Instruction* def) {
    const auto it = crossValues_.find(def);
    return it != crossValues_.end() && it->second.neededByReplica &&
           stage == parallelStage_;
  };

  auto computeRelevant = [&](bool replicaBody) {
    std::set<const BasicBlock*> relevant;
    relevant.insert(loop_.header);
    relevant.insert(latch_);
    for (BasicBlock* block : loop_.blocks) {
      for (const auto& inst : block->instructions()) {
        const bool kept =
            replicaBody ? keptInReplica(inst.get()) : keptInMain(inst.get());
        const bool consumed =
            consumedHere(inst.get()) &&
            (!replicaBody || consumeIsBroadcast(inst.get()));
        if (kept || consumed)
          relevant.insert(block);
      }
    }
    // Close over (a) control dependence and (b) predecessors of blocks
    // whose clone will contain phis — inner-loop headers need all their
    // incoming edges preserved for phi wiring.
    bool grew = true;
    while (grew) {
      grew = false;
      std::vector<const BasicBlock*> current(relevant.begin(), relevant.end());
      for (const BasicBlock* block : current) {
        for (Instruction* branch : controlDeps_.controllers(block))
          if (loop_.contains(branch) &&
              relevant.insert(branch->parent()).second)
            grew = true;
        if (block == loop_.header)
          continue;
        bool hasClonedPhi = false;
        for (const auto& inst : block->instructions()) {
          if (inst->opcode() != Opcode::Phi)
            break;
          if (replicaBody ? keptInReplica(inst.get()) : keptInMain(inst.get()))
            hasClonedPhi = true;
        }
        if (hasClonedPhi)
          for (BasicBlock* pred : fn_.predecessorsOf(block))
            if (loop_.contains(pred) && relevant.insert(pred).second)
              grew = true;
      }
    }
    return relevant;
  };

  const std::set<const BasicBlock*> relevantMain = computeRelevant(false);
  const std::set<const BasicBlock*> relevantReplica =
      parallel ? computeRelevant(true) : std::set<const BasicBlock*>{};

  // --- Skeleton blocks -----------------------------------------------------
  BasicBlock* entry = task->addBlock("entry");
  BasicBlock* headerClone = task->addBlock("header");
  BasicBlock* exitClone = task->addBlock("task_exit");
  BasicBlock* dispatch = parallel ? task->addBlock("dispatch") : nullptr;

  CloneMap mainMap;    // Sequential task body, or the parallel real body.
  CloneMap replicaMap; // Parallel replica body.
  CloneMap sharedMap;  // Header-resident clones (visible to both bodies).
  sharedMap.blocks[loop_.header] = headerClone;

  for (BasicBlock* block : loop_.blocks) {
    if (block == loop_.header)
      continue;
    if (relevantMain.count(block) != 0)
      mainMap.blocks[block] =
          task->addBlock(block->name() + (parallel ? ".rb" : ""));
    if (parallel && relevantReplica.count(block) != 0)
      replicaMap.blocks[block] = task->addBlock(block->name() + ".pb");
  }

  // resolve(): the nearest relevant block at-or-after `target` following
  // immediate post-dominators; nullptr means "loop exit".
  auto resolve = [&](const BasicBlock* target,
                     const std::set<const BasicBlock*>& relevant,
                     CloneMap& map) -> BasicBlock* {
    const BasicBlock* walk = target;
    while (true) {
      if (!loop_.contains(walk))
        return exitClone;
      if (walk == loop_.header)
        return headerClone;
      if (relevant.count(walk) != 0) {
        const auto it = map.blocks.find(walk);
        CGPA_ASSERT(it != map.blocks.end(), "relevant block has no clone");
        return it->second;
      }
      const BasicBlock* next = postDom_.idom(walk);
      CGPA_ASSERT(next != nullptr, "post-dominator walk escaped");
      walk = next;
    }
  };

  ir::IRBuilder b(&module_);

  // Operand remapper. Lookup order: body map, shared map, live-ins,
  // constants.
  auto remap = [&](Value* value, CloneMap* bodyMap) -> Value* {
    if (bodyMap != nullptr) {
      const auto it = bodyMap->values.find(value);
      if (it != bodyMap->values.end())
        return it->second;
    }
    const auto shared = sharedMap.values.find(value);
    if (shared != sharedMap.values.end())
      return shared->second;
    const auto livein = liveinMap.find(value);
    if (livein != liveinMap.end())
      return livein->second;
    CGPA_ASSERT(ir::isa<ir::Constant>(value),
                "transform: unmapped operand %" + value->name());
    return value;
  };

  // --- Header --------------------------------------------------------------
  b.setInsertPoint(headerClone);

  struct PendingPhi {
    Instruction* original;
    Instruction* clone;
  };
  std::vector<PendingPhi> pendingPhis;
  std::vector<Instruction*> headerRest; // Non-phi header instructions.
  std::vector<Instruction*> phiDefs;    // Header phis in order.
  for (const auto& inst : loop_.header->instructions()) {
    if (inst->opcode() == Opcode::Phi)
      phiDefs.push_back(inst.get());
    else if (!inst->isTerminator())
      headerRest.push_back(inst.get());
  }

  // Kept phis.
  for (Instruction* phi : phiDefs) {
    if (!keptInMain(phi))
      continue;
    Instruction* clone = b.phi(phi->type(), phi->name());
    sharedMap.values[phi] = clone;
    pendingPhis.push_back({phi, clone});
  }

  // Synthetic iteration counter.
  Instruction* itPhi = nullptr;
  Value* itNext = nullptr;
  Value* laneValue = nullptr; // it & MASK, for round-robin lanes.
  if (needsCounter) {
    itPhi = b.phi(Type::I32, "it");
    itNext = b.add(itPhi, b.i32(1), "it.next");
    laneValue = b.bitAnd(itPhi, b.i32(mask), "it.lane");
  }

  // A channel is "body-placed" when it touches the parallel stage without
  // being a broadcast: its produce/consume fire once per *body* iteration
  // (paper Fig. 1e places produce(Qs, i&MASK, ...) inside the loop body),
  // never on the final header execution that exits the loop. Broadcast
  // channels and sequential-sequential channels are position-faithful.
  auto bodyPlaced = [&](const ChannelInfo& info) {
    return !info.broadcast && (info.producerStage == parallelStage_ ||
                               info.consumerStage == parallelStage_);
  };

  // Consume / produce insertion helpers.
  auto insertConsume = [&](Instruction* def, CloneMap* bodyMap) -> Value* {
    const CrossValue& cross = crossValues_.at(def);
    const int channel = cross.channelOf.at(stage);
    const ChannelInfo& info =
        result_.channels[static_cast<std::size_t>(channel)];
    Value* lane = nullptr;
    if (parallel)
      lane = widArg;
    else if (info.lanes > 1)
      lane = laneValue;
    else
      lane = b.i32(0);
    Value* got = b.consume(channel, lane, def->type(), def->name() + ".c");
    if (bodyMap != nullptr)
      bodyMap->values[def] = got;
    else
      sharedMap.values[def] = got;
    return got;
  };
  enum class ProduceFilter { All, HeaderPlacedOnly, BodyPlacedOnly };
  auto insertProduces = [&](Instruction* def, CloneMap* bodyMap,
                            ProduceFilter filter = ProduceFilter::All) {
    const auto it = crossValues_.find(def);
    if (it == crossValues_.end() || it->second.producerStage != stage)
      return;
    for (int consumer : it->second.consumerStages) {
      const int channel = it->second.channelOf.at(consumer);
      const ChannelInfo& info =
          result_.channels[static_cast<std::size_t>(channel)];
      if (filter == ProduceFilter::HeaderPlacedOnly && bodyPlaced(info))
        continue;
      if (filter == ProduceFilter::BodyPlacedOnly && !bodyPlaced(info))
        continue;
      Value* value = remap(def, bodyMap);
      if (info.broadcast) {
        b.produceBroadcast(channel, value);
      } else {
        Value* lane = nullptr;
        if (parallel)
          lane = widArg;
        else if (info.lanes > 1)
          lane = laneValue;
        else
          lane = b.i32(0);
        b.produce(channel, lane, value);
      }
    }
  };
  // Does `def` (placed in this stage) feed any body-placed channel?
  auto hasBodyPlacedProduce = [&](const Instruction* def) {
    const auto it = crossValues_.find(def);
    if (it == crossValues_.end() || it->second.producerStage != stage)
      return false;
    for (const auto& [consumer, channel] : it->second.channelOf) {
      (void)consumer;
      if (bodyPlaced(result_.channels[static_cast<std::size_t>(channel)]))
        return true;
    }
    return false;
  };
  // Is this stage's consume of `def` body-placed?
  auto consumeBodyPlaced = [&](const Instruction* def) {
    const auto it = crossValues_.find(def);
    if (it == crossValues_.end())
      return false;
    const auto ch = it->second.channelOf.find(stage);
    if (ch == it->second.channelOf.end())
      return false;
    return bodyPlaced(result_.channels[static_cast<std::size_t>(ch->second)]);
  };

  // Header-position communication for body-placed channels moves to the
  // top of the (real) body: it fires once per body iteration, never on the
  // final header execution that exits the loop.
  std::vector<Instruction*> bodyPendingConsumes;
  std::vector<Instruction*> rbPendingHeaderInstrs;
  std::vector<Instruction*> bodyPendingProduces;

  for (Instruction* phi : phiDefs) {
    if (keptInMain(phi)) {
      insertProduces(phi, nullptr, ProduceFilter::HeaderPlacedOnly);
      if (hasBodyPlacedProduce(phi))
        bodyPendingProduces.push_back(phi);
      continue;
    }
    if (!consumedHere(phi))
      continue;
    if (consumeBodyPlaced(phi))
      bodyPendingConsumes.push_back(phi);
    else
      insertConsume(phi, nullptr);
  }

  // Non-phi header instructions.
  for (Instruction* inst : headerRest) {
    const int place = placeOf(inst);
    const bool keepShared =
        place == kReplicated || (!parallel && place == stage);
    if (keepShared) {
      Instruction* clone = b.insertBlock()->append(
          std::make_unique<Instruction>(inst->opcode(), inst->type(),
                                        inst->name()));
      clone->setImms(inst->immA(), inst->immB());
      clone->setCmpPred(inst->cmpPred());
      for (Value* operand : inst->operands())
        clone->addOperand(remap(operand, nullptr));
      sharedMap.values[inst] = clone;
      insertProduces(inst, nullptr, ProduceFilter::HeaderPlacedOnly);
      if (hasBodyPlacedProduce(inst))
        bodyPendingProduces.push_back(inst);
      continue;
    }
    if (parallel && place == stage) {
      // Parallel-assigned header instruction: runs only in the real body.
      rbPendingHeaderInstrs.push_back(inst);
      continue;
    }
    if (consumedHere(inst)) {
      if (consumeBodyPlaced(inst))
        bodyPendingConsumes.push_back(inst);
      else
        insertConsume(inst, nullptr);
    }
  }

  // Header terminator: the exit branch.
  Value* exitCond = nullptr;
  {
    Instruction* condDef = ir::asInstruction(exitBranch_->operand(0));
    if (condDef != nullptr && loop_.contains(condDef) &&
        sharedMap.values.count(condDef) == 0) {
      // Condition is neither kept nor replicated here: consume it.
      CGPA_ASSERT(consumedHere(condDef), "exit condition unavailable");
      exitCond = insertConsume(condDef, nullptr);
    } else {
      exitCond = remap(exitBranch_->operand(0), nullptr);
    }
  }
  const BasicBlock* exitSucc = exitBranch_->successors()[0];
  const BasicBlock* bodySucc = exitBranch_->successors()[1];
  if (loop_.contains(exitSucc))
    std::swap(exitSucc, bodySucc); // Normalize: successor 0 exits.
  const bool trueExits = exitSucc == exitBranch_->successors()[0];

  BasicBlock* mainEntry =
      parallel ? dispatch : resolve(bodySucc, relevantMain, mainMap);
  if (trueExits)
    b.condBr(exitCond, exitClone, mainEntry);
  else
    b.condBr(exitCond, mainEntry, exitClone);

  // --- Dispatch (parallel only) ---------------------------------------------
  if (parallel) {
    b.setInsertPoint(dispatch);
    Value* myTurn = b.icmp(ir::CmpPred::EQ, laneValue, widArg, "my.turn");
    BasicBlock* rbEntry = resolve(bodySucc, relevantMain, mainMap);
    BasicBlock* pbEntry = resolve(bodySucc, relevantReplica, replicaMap);
    CGPA_ASSERT(rbEntry != exitClone && pbEntry != exitClone,
                "loop body entry resolves to exit");
    b.condBr(myTurn, rbEntry, pbEntry);
  }

  // Reverse postorder over the loop body so that every non-phi definition
  // is cloned before its uses (phis are pre-created in a separate pass).
  std::vector<BasicBlock*> bodyRpo;
  {
    std::unordered_map<const BasicBlock*, bool> visited;
    std::vector<std::pair<BasicBlock*, std::size_t>> stack;
    std::vector<BasicBlock*> postorder;
    stack.emplace_back(loop_.header, 0);
    visited[loop_.header] = true;
    while (!stack.empty()) {
      auto& [block, next] = stack.back();
      const auto succs = block->successors();
      if (next < succs.size()) {
        BasicBlock* succ = succs[next++];
        if (loop_.contains(succ) && !visited[succ]) {
          visited[succ] = true;
          stack.emplace_back(succ, 0);
        }
      } else {
        postorder.push_back(block);
        stack.pop_back();
      }
    }
    bodyRpo.assign(postorder.rbegin(), postorder.rend());
  }

  // --- Body population -------------------------------------------------------
  auto populateBody = [&](const std::set<const BasicBlock*>& relevant,
                          CloneMap& map, bool replicaBody) {
    struct BodyPhi {
      Instruction* original;
      Instruction* clone;
    };
    std::vector<BodyPhi> bodyPhis;
    std::unordered_map<const BasicBlock*, std::vector<Instruction*>>
        phiProduceQueues;
    std::unordered_map<const BasicBlock*, std::vector<Instruction*>>
        phiConsumeQueues;

    // Pre-pass: create every relevant phi clone so any use order works.
    // Consumed (not kept) phis become consumes placed right after the
    // block's phi group — both sides visit phi positions in the same
    // order, so per-lane FIFO ordering is preserved.
    for (BasicBlock* block : bodyRpo) {
      if (block == loop_.header || relevant.count(block) == 0)
        continue;
      b.setInsertPoint(map.blocks.at(block));
      for (const auto& inst : block->instructions()) {
        if (inst->opcode() != Opcode::Phi)
          break;
        const bool kept = replicaBody ? keptInReplica(inst.get())
                                      : keptInMain(inst.get());
        if (!kept) {
          if (consumedHere(inst.get()) &&
              (!replicaBody || consumeIsBroadcast(inst.get())))
            phiConsumeQueues[block].push_back(inst.get());
          continue;
        }
        Instruction* phiClone = b.phi(inst->type(), inst->name());
        map.values[inst.get()] = phiClone;
        bodyPhis.push_back({inst.get(), phiClone});
        if (!replicaBody)
          phiProduceQueues[block].push_back(inst.get());
      }
    }

    // First pass: non-phi instructions, in reverse postorder.
    for (BasicBlock* block : bodyRpo) {
      if (block == loop_.header || relevant.count(block) == 0)
        continue;
      BasicBlock* clone = map.blocks.at(block);
      b.setInsertPoint(clone);

      for (Instruction* phiDef : phiConsumeQueues[block])
        insertConsume(phiDef, &map);
      for (Instruction* phiDef : phiProduceQueues[block])
        insertProduces(phiDef, &map);

      // Pending header-position consumes / instructions / produces land at
      // the top of the (real) body's entry block (after any phis).
      if (!replicaBody && clone == resolve(bodySucc, relevant, map)) {
        for (Instruction* def : bodyPendingConsumes)
          insertConsume(def, &map);
        for (Instruction* inst : rbPendingHeaderInstrs) {
          Instruction* instClone = clone->append(std::make_unique<Instruction>(
              inst->opcode(), inst->type(), inst->name()));
          instClone->setImms(inst->immA(), inst->immB());
          instClone->setCmpPred(inst->cmpPred());
          for (Value* operand : inst->operands())
            instClone->addOperand(remap(operand, &map));
          map.values[inst] = instClone;
          insertProduces(inst, &map);
        }
        for (Instruction* def : bodyPendingProduces)
          insertProduces(def, &map, ProduceFilter::BodyPlacedOnly);
      }

      for (const auto& inst : block->instructions()) {
        if (inst->isTerminator() || inst->opcode() == Opcode::Phi)
          continue;
        const bool kept = replicaBody ? keptInReplica(inst.get())
                                      : keptInMain(inst.get());
        if (kept) {
          Instruction* clone2 = b.insertBlock()->append(
              std::make_unique<Instruction>(inst->opcode(), inst->type(),
                                            inst->name()));
          clone2->setImms(inst->immA(), inst->immB());
          clone2->setCmpPred(inst->cmpPred());
          for (Value* operand : inst->operands())
            clone2->addOperand(remap(operand, &map));
          map.values[inst.get()] = clone2;
          if (!replicaBody)
            insertProduces(inst.get(), &map);
          continue;
        }
        const bool consumed =
            consumedHere(inst.get()) &&
            (!replicaBody || consumeIsBroadcast(inst.get()));
        if (consumed)
          insertConsume(inst.get(), &map);
      }
    }

    // Wire body phis: every incoming block must itself be relevant (the
    // relevance closure keeps predecessors of phi blocks). An incoming edge
    // from the target loop's header maps to the dispatch block (parallel)
    // or the cloned header (sequential).
    for (BodyPhi& pending : bodyPhis) {
      for (int i = 0; i < pending.original->numOperands(); ++i) {
        const BasicBlock* incoming =
            pending.original->incomingBlocks()[static_cast<std::size_t>(i)];
        CGPA_ASSERT(loop_.contains(incoming), "inner phi fed from outside loop");
        BasicBlock* incomingClone = nullptr;
        if (incoming == loop_.header) {
          incomingClone = parallel ? dispatch : headerClone;
        } else {
          CGPA_ASSERT(relevant.count(incoming) != 0,
                      "inner phi incoming block not preserved");
          incomingClone = map.blocks.at(incoming);
        }
        pending.clone->addIncoming(remap(pending.original->operand(i), &map),
                                   incomingClone);
      }
    }

    // Second pass: terminators.
    for (BasicBlock* block : loop_.blocks) {
      if (block == loop_.header || relevant.count(block) == 0)
        continue;
      BasicBlock* clone = map.blocks.at(block);
      b.setInsertPoint(clone);
      Instruction* term = block->terminator();
      CGPA_ASSERT(term != nullptr, "loop block without terminator");
      if (term->opcode() == Opcode::Br) {
        b.br(resolve(term->successors()[0], relevant, map));
        continue;
      }
      CGPA_ASSERT(term->opcode() == Opcode::CondBr,
                  "unexpected terminator in loop body");
      BasicBlock* succ0 = resolve(term->successors()[0], relevant, map);
      BasicBlock* succ1 = resolve(term->successors()[1], relevant, map);
      if (succ0 == succ1) {
        b.br(succ0);
        continue;
      }
      b.condBr(remap(term->operand(0), &map), succ0, succ1);
    }
  };

  populateBody(relevantMain, mainMap, false);
  if (parallel)
    populateBody(relevantReplica, replicaMap, true);

  // --- Entry and exit --------------------------------------------------------
  b.setInsertPoint(entry);
  b.br(headerClone);

  b.setInsertPoint(exitClone);
  for (std::size_t i = 0; i < liveoutDefs_.size(); ++i) {
    if (liveoutInfos_[i].ownerStage != stage)
      continue;
    b.storeLiveout(loopId_, liveoutInfos_[i].id,
                   remap(liveoutDefs_[i], nullptr));
  }
  b.ret();

  // --- Phi wiring -------------------------------------------------------------
  const BasicBlock* latchMain =
      relevantMain.count(latch_) != 0 ? mainMap.blocks.at(latch_) : nullptr;
  CGPA_ASSERT(latchMain != nullptr, "latch missing from main body");
  const BasicBlock* latchReplica =
      parallel ? replicaMap.blocks.at(latch_) : nullptr;

  for (PendingPhi& pending : pendingPhis) {
    for (int i = 0; i < pending.original->numOperands(); ++i) {
      const BasicBlock* incoming =
          pending.original->incomingBlocks()[static_cast<std::size_t>(i)];
      Value* incomingValue = pending.original->operand(i);
      if (!loop_.contains(incoming)) {
        pending.clone->addIncoming(remap(incomingValue, nullptr), entry);
      } else {
        CGPA_ASSERT(incoming == latch_, "phi incoming from non-latch block");
        pending.clone->addIncoming(remap(incomingValue, &mainMap),
                                   const_cast<BasicBlock*>(latchMain));
        if (parallel)
          pending.clone->addIncoming(remap(incomingValue, &replicaMap),
                                     const_cast<BasicBlock*>(latchReplica));
      }
    }
  }
  if (itPhi != nullptr) {
    itPhi->addIncoming(b.i32(0), entry);
    itPhi->addIncoming(itNext, const_cast<BasicBlock*>(latchMain));
    if (parallel)
      itPhi->addIncoming(itNext, const_cast<BasicBlock*>(latchReplica));
  }

  TaskInfo info;
  info.stageIndex = stage;
  info.parallel = parallel;
  info.fn = task;
  result_.tasks.push_back(info);
}

void Transformer::rewriteWrapper() {
  // New fork block replacing the loop.
  BasicBlock* forkBlock = fn_.addBlock("fork." + std::to_string(loopId_));
  ir::IRBuilder b(&module_);
  b.setInsertPoint(forkBlock);

  for (std::size_t t = 0; t < result_.tasks.size(); ++t) {
    const TaskInfo& task = result_.tasks[t];
    if (task.parallel) {
      for (int w = 0; w < workers_; ++w) {
        std::vector<Value*> args = liveins_;
        args.push_back(module_.constInt(Type::I32, w));
        b.parallelForkVec(loopId_, static_cast<int>(t), args);
      }
    } else {
      b.parallelForkVec(loopId_, static_cast<int>(t), liveins_);
    }
  }
  b.parallelJoin(loopId_);

  // Retrieve live-outs and rewrite external uses.
  for (std::size_t i = 0; i < liveoutDefs_.size(); ++i) {
    Value* retrieved =
        b.retrieveLiveout(loopId_, liveoutInfos_[i].id, liveoutInfos_[i].type,
                          liveoutDefs_[i]->name() + ".lo");
    for (const auto& block : fn_.blocks()) {
      if (loop_.contains(block.get()) || block.get() == forkBlock)
        continue;
      for (const auto& inst : block->instructions())
        inst->replaceUsesOfWith(liveoutDefs_[i], retrieved);
    }
  }
  b.br(exitTarget_);

  // Re-route the preheader into the fork block.
  Instruction* preTerm = loop_.preheader->terminator();
  for (std::size_t i = 0; i < preTerm->successors().size(); ++i)
    if (preTerm->successors()[i] == loop_.header)
      preTerm->setSuccessor(static_cast<int>(i), forkBlock);

  // Fix phis in the exit target: their loop predecessors become forkBlock.
  for (const auto& inst : exitTarget_->instructions()) {
    if (inst->opcode() != Opcode::Phi)
      break;
    for (std::size_t i = 0; i < inst->incomingBlocks().size(); ++i)
      if (loop_.contains(inst->incomingBlocks()[i]))
        inst->setIncomingBlock(static_cast<int>(i), forkBlock);
  }

  // Detach the loop blocks from the wrapper, keeping them alive: the PDG,
  // SCC graph, and plan all point into them.
  for (BasicBlock* block : loop_.blocks)
    result_.retiredBlocks.push_back(fn_.detachBlock(block));
}

PipelineModule Transformer::run() {
  numStages_ = static_cast<int>(plan_.stages.size());
  parallelStage_ = plan_.parallelStageIndex();
  workers_ = parallelStage_ >= 0 ? plan_.numWorkers : 1;
  CGPA_ASSERT((workers_ & (workers_ - 1)) == 0,
              "worker count must be a power of two (round-robin masking)");

  result_.module = &module_;
  result_.wrapper = &fn_;
  result_.loopId = loopId_;
  result_.numWorkers = workers_;

  validateLoopShape();
  collectLiveins();
  collectLiveouts();
  computeCrossValues();
  buildChannels();

  if (remarks_ != nullptr)
    for (const LiveoutInfo& info : liveoutInfos_)
      remarks_->add("transform", "liveout", "lo" + std::to_string(info.id))
          .note("live-out '" + info.valueName + "' stored by stage " +
                std::to_string(info.ownerStage) +
                " via store_liveout and fetched by the wrapper after join")
          .arg("value", info.valueName)
          .arg("owner_stage", info.ownerStage);

  for (int stage = 0; stage < numStages_; ++stage)
    generateTask(stage);
  rewriteWrapper();

  result_.liveins = liveins_;
  result_.liveouts = liveoutInfos_;
  return std::move(result_);
}

} // namespace

PipelineModule transformLoop(Function& function, const PipelinePlan& plan,
                             int loopId, trace::RemarkCollector* remarks) {
  return Transformer(function, plan, loopId, remarks).run();
}

Status checkTransformPreconditions(const PipelinePlan& plan) {
  // Mirrors Transformer::validateLoopShape() as a recoverable check.
  const analysis::Loop* loop = plan.loop;
  if (loop == nullptr)
    return Status::error(ErrorCode::TransformError, "plan has no loop");
  const auto fail = [](const char* why) {
    return Status::error(ErrorCode::TransformError, why);
  };
  if (loop->exitingBranches.size() != 1)
    return fail("transform requires exactly one exiting branch");
  if (loop->latches.size() != 1)
    return fail("transform requires a single latch");
  if (loop->exitBlocks.size() != 1)
    return fail("transform requires a single exit block");
  const Instruction* exitBranch = loop->exitingBranches.front();
  if (exitBranch->parent() != loop->header)
    return fail("transform requires the exiting branch in the loop header");
  if (loop->latches.front() == loop->header)
    return fail("single-block loops unsupported (latch == header)");
  if (loop->preheader == nullptr)
    return fail("loop needs a preheader");
  if (exitBranch->numOperands() == 1) {
    const Instruction* cond = ir::asInstruction(exitBranch->operand(0));
    if (cond != nullptr && loop->contains(cond) && !plan.isReplicated(cond)) {
      const int stage = plan.stageOf(cond);
      if (stage >= 0 && plan.stages[static_cast<std::size_t>(stage)].parallel)
        return fail("exit condition computed in the parallel stage");
    }
  }
  return Status::success();
}

} // namespace cgpa::pipeline
