// CGPA pipeline partitioner (paper Section 3.3, "Pipeline Partition").
//
// Adapted from PS-DSWP: SCCs of the PDG are assigned to an ordered list of
// stages with at most one parallel stage. CGPA's twist over PS-DSWP is the
// treatment of replicable SCCs: lightweight ones (no load, no multiply) are
// duplicated into every stage; heavyweight ones go into a sequential stage
// under policy P1 or are forced into the parallel workers under policy P2.
//
// Replication is additionally validity-checked (beyond the paper's informal
// description): a replicable SCC can only be duplicated if each of its
// dependence predecessors is itself replicated or lives in a stage whose
// values can be broadcast to every worker — i.e. a stage before the
// parallel stage. A scalar reduction over parallel-stage values (e.g. the
// `delta` accumulator in K-means) is therefore demoted to a sequential
// stage even though its SCC is side-effect free.
#pragma once

#include "pipeline/plan.hpp"
#include "support/status.hpp"

namespace cgpa::pipeline {

/// Legality check for a partition request: numWorkers must be a positive
/// power of two (the round-robin distribution and Verilog fan-out assume
/// it). Returns Ok or ErrorCode::PartitionError; callers (cgpac, the fuzz
/// harness) verify before partitionLoop, which still CGPA_ASSERTs.
Status checkPartitionOptions(const PartitionOptions& options);

/// Partition `loop` into pipeline stages. Always succeeds; if no parallel
/// stage can be formed, the result is a single sequential stage
/// (pipelined() == false).
PipelinePlan partitionLoop(const analysis::SccGraph& sccs,
                           analysis::Loop& loop,
                           const PartitionOptions& options);

/// A single-sequential-stage plan over the same SCC graph (the shape a
/// Legup-style tool uses: the whole loop as one accelerator).
PipelinePlan sequentialPlan(const analysis::SccGraph& sccs,
                            analysis::Loop& loop,
                            trace::RemarkCollector* remarks = nullptr);

} // namespace cgpa::pipeline
