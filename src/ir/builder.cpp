#include "ir/builder.hpp"

#include "support/diag.hpp"

namespace cgpa::ir {

Instruction* IRBuilder::insert(Opcode op, Type type, std::string name) {
  CGPA_ASSERT(block_ != nullptr, "builder has no insertion point");
  return block_->append(
      std::make_unique<Instruction>(op, type, std::move(name)));
}

Value* IRBuilder::binary(Opcode op, Value* lhs, Value* rhs, std::string name,
                         bool wantFloat) {
  CGPA_ASSERT(lhs->type() == rhs->type(),
              "binary operand type mismatch for " +
                  std::string(opcodeName(op)));
  CGPA_ASSERT(isFloatType(lhs->type()) == wantFloat,
              "operand float-ness mismatch for " +
                  std::string(opcodeName(op)));
  Instruction* inst = insert(op, lhs->type(), std::move(name));
  inst->addOperand(lhs);
  inst->addOperand(rhs);
  return inst;
}

#define CGPA_BINARY_INT(method, OP)                                           \
  Value* IRBuilder::method(Value* lhs, Value* rhs, std::string name) {        \
    return binary(Opcode::OP, lhs, rhs, std::move(name), false);              \
  }
#define CGPA_BINARY_FP(method, OP)                                            \
  Value* IRBuilder::method(Value* lhs, Value* rhs, std::string name) {        \
    return binary(Opcode::OP, lhs, rhs, std::move(name), true);               \
  }

CGPA_BINARY_INT(add, Add)
CGPA_BINARY_INT(sub, Sub)
CGPA_BINARY_INT(mul, Mul)
CGPA_BINARY_INT(sdiv, SDiv)
CGPA_BINARY_INT(srem, SRem)
CGPA_BINARY_INT(bitAnd, And)
CGPA_BINARY_INT(bitOr, Or)
CGPA_BINARY_INT(bitXor, Xor)
CGPA_BINARY_INT(shl, Shl)
CGPA_BINARY_INT(lshr, LShr)
CGPA_BINARY_INT(ashr, AShr)
CGPA_BINARY_FP(fadd, FAdd)
CGPA_BINARY_FP(fsub, FSub)
CGPA_BINARY_FP(fmul, FMul)
CGPA_BINARY_FP(fdiv, FDiv)

#undef CGPA_BINARY_INT
#undef CGPA_BINARY_FP

Value* IRBuilder::icmp(CmpPred pred, Value* lhs, Value* rhs,
                       std::string name) {
  CGPA_ASSERT(lhs->type() == rhs->type(), "icmp operand type mismatch");
  Instruction* inst = insert(Opcode::ICmp, Type::I1, std::move(name));
  inst->setCmpPred(pred);
  inst->addOperand(lhs);
  inst->addOperand(rhs);
  return inst;
}

Value* IRBuilder::fcmp(CmpPred pred, Value* lhs, Value* rhs,
                       std::string name) {
  CGPA_ASSERT(lhs->type() == rhs->type(), "fcmp operand type mismatch");
  CGPA_ASSERT(isFloatType(lhs->type()), "fcmp requires float operands");
  Instruction* inst = insert(Opcode::FCmp, Type::I1, std::move(name));
  inst->setCmpPred(pred);
  inst->addOperand(lhs);
  inst->addOperand(rhs);
  return inst;
}

Value* IRBuilder::cast(Opcode op, Value* value, Type to, std::string name) {
  Instruction* inst = insert(op, to, std::move(name));
  inst->addOperand(value);
  return inst;
}

Value* IRBuilder::sitofp(Value* value, Type to, std::string name) {
  return cast(Opcode::SIToFP, value, to, std::move(name));
}

Value* IRBuilder::select(Value* cond, Value* ifTrue, Value* ifFalse,
                         std::string name) {
  CGPA_ASSERT(cond->type() == Type::I1, "select condition must be i1");
  CGPA_ASSERT(ifTrue->type() == ifFalse->type(),
              "select arm type mismatch");
  Instruction* inst = insert(Opcode::Select, ifTrue->type(), std::move(name));
  inst->addOperand(cond);
  inst->addOperand(ifTrue);
  inst->addOperand(ifFalse);
  return inst;
}

Value* IRBuilder::gep(Value* base, Value* index, std::int64_t scale,
                      std::int64_t offset, std::string name) {
  CGPA_ASSERT(base->type() == Type::Ptr, "gep base must be a pointer");
  Instruction* inst = insert(Opcode::Gep, Type::Ptr, std::move(name));
  inst->setImms(scale, offset);
  inst->addOperand(base);
  if (index != nullptr) {
    CGPA_ASSERT(isIntType(index->type()), "gep index must be an integer");
    inst->addOperand(index);
  }
  return inst;
}

Value* IRBuilder::load(Type type, Value* ptr, std::string name) {
  CGPA_ASSERT(ptr->type() == Type::Ptr, "load address must be a pointer");
  Instruction* inst = insert(Opcode::Load, type, std::move(name));
  inst->addOperand(ptr);
  return inst;
}

void IRBuilder::store(Value* value, Value* ptr) {
  CGPA_ASSERT(ptr->type() == Type::Ptr, "store address must be a pointer");
  Instruction* inst = insert(Opcode::Store, Type::Void, "");
  inst->addOperand(value);
  inst->addOperand(ptr);
}

Instruction* IRBuilder::phi(Type type, std::string name) {
  return insert(Opcode::Phi, type, std::move(name));
}

Value* IRBuilder::call(Intrinsic which, Type type,
                       std::initializer_list<Value*> args, std::string name) {
  Instruction* inst = insert(Opcode::Call, type, std::move(name));
  inst->setImms(static_cast<std::int64_t>(which), 0);
  for (Value* arg : args)
    inst->addOperand(arg);
  return inst;
}

void IRBuilder::br(BasicBlock* target) {
  Instruction* inst = insert(Opcode::Br, Type::Void, "");
  inst->addSuccessor(target);
}

void IRBuilder::condBr(Value* cond, BasicBlock* ifTrue, BasicBlock* ifFalse) {
  CGPA_ASSERT(cond->type() == Type::I1, "condbr condition must be i1");
  Instruction* inst = insert(Opcode::CondBr, Type::Void, "");
  inst->addOperand(cond);
  inst->addSuccessor(ifTrue);
  inst->addSuccessor(ifFalse);
}

void IRBuilder::ret(Value* value) {
  Instruction* inst = insert(Opcode::Ret, Type::Void, "");
  if (value != nullptr)
    inst->addOperand(value);
}

void IRBuilder::produce(int channel, Value* lane, Value* value) {
  CGPA_ASSERT(isIntType(lane->type()), "produce lane must be an integer");
  Instruction* inst = insert(Opcode::Produce, Type::Void, "");
  inst->setImms(channel, 0);
  inst->addOperand(lane);
  inst->addOperand(value);
}

void IRBuilder::produceBroadcast(int channel, Value* value) {
  Instruction* inst = insert(Opcode::ProduceBroadcast, Type::Void, "");
  inst->setImms(channel, 0);
  inst->addOperand(value);
}

Value* IRBuilder::consume(int channel, Value* lane, Type type,
                          std::string name) {
  CGPA_ASSERT(isIntType(lane->type()), "consume lane must be an integer");
  Instruction* inst = insert(Opcode::Consume, type, std::move(name));
  inst->setImms(channel, 0);
  inst->addOperand(lane);
  return inst;
}

Instruction* IRBuilder::parallelFork(int loopId, int taskIndex,
                                     std::initializer_list<Value*> args) {
  return parallelForkVec(loopId, taskIndex, std::vector<Value*>(args));
}

Instruction* IRBuilder::parallelForkVec(int loopId, int taskIndex,
                                        const std::vector<Value*>& args) {
  Instruction* inst = insert(Opcode::ParallelFork, Type::Void, "");
  inst->setImms(loopId, taskIndex);
  for (Value* arg : args)
    inst->addOperand(arg);
  return inst;
}

void IRBuilder::parallelJoin(int loopId) {
  Instruction* inst = insert(Opcode::ParallelJoin, Type::Void, "");
  inst->setImms(loopId, 0);
}

void IRBuilder::storeLiveout(int loopId, int liveoutId, Value* value) {
  Instruction* inst = insert(Opcode::StoreLiveout, Type::Void, "");
  inst->setImms(loopId, liveoutId);
  inst->addOperand(value);
}

Value* IRBuilder::retrieveLiveout(int loopId, int liveoutId, Type type,
                                  std::string name) {
  Instruction* inst = insert(Opcode::RetrieveLiveout, type, std::move(name));
  inst->setImms(loopId, liveoutId);
  return inst;
}

} // namespace cgpa::ir
