// Value hierarchy of the CGPA IR: constants, function arguments, and
// instructions (declared in instruction.hpp) are all Values.
//
// Values are identified by pointer; ownership follows the container
// hierarchy (Module owns Constants and Functions, Function owns Arguments
// and BasicBlocks, BasicBlock owns Instructions). Values never own their
// operands.
#pragma once

#include <cstdint>
#include <string>

#include "ir/type.hpp"

namespace cgpa::ir {

enum class ValueKind { Constant, Argument, Instruction };

class Value {
public:
  Value(ValueKind kind, Type type, std::string name)
      : kind_(kind), type_(type), name_(std::move(name)) {}
  virtual ~Value() = default;

  Value(const Value&) = delete;
  Value& operator=(const Value&) = delete;

  ValueKind kind() const { return kind_; }
  Type type() const { return type_; }
  const std::string& name() const { return name_; }
  void setName(std::string name) { name_ = std::move(name); }

  /// Dense per-function register-file index assigned by
  /// Function::finalizeSlots(); -1 until numbered. Only Arguments and
  /// Instructions are numbered — Constants are shared across functions and
  /// receive per-consumer slots from ir::SlotMap instead.
  int slot() const { return slot_; }
  void setSlot(int slot) { slot_ = slot; }

private:
  ValueKind kind_;
  Type type_;
  std::string name_;
  int slot_ = -1;
};

/// An immutable literal. Integer-typed constants store a sign-extended
/// 64-bit payload; float-typed constants store a double payload (F32
/// constants are rounded on materialization).
class Constant : public Value {
public:
  Constant(Type type, std::int64_t intValue)
      : Value(ValueKind::Constant, type, ""), intValue_(intValue) {}
  Constant(Type type, double floatValue)
      : Value(ValueKind::Constant, type, ""), floatValue_(floatValue) {}

  std::int64_t intValue() const { return intValue_; }
  double floatValue() const { return floatValue_; }

private:
  std::int64_t intValue_ = 0;
  double floatValue_ = 0.0;
};

/// A formal parameter of a Function. Pointer arguments may carry a region
/// id that feeds the region-based alias analysis (see Module::regions).
class Argument : public Value {
public:
  Argument(Type type, std::string name, int index)
      : Value(ValueKind::Argument, type, std::move(name)), index_(index) {}

  int index() const { return index_; }

  /// Region this pointer argument points into, or -1 if unknown.
  int regionId() const { return regionId_; }
  void setRegionId(int id) { regionId_ = id; }

private:
  int index_;
  int regionId_ = -1;
};

/// Checked downcasts (the hierarchy is closed, so a kind tag suffices).
template <typename T> bool isa(const Value* value);
template <> inline bool isa<Constant>(const Value* value) {
  return value != nullptr && value->kind() == ValueKind::Constant;
}
template <> inline bool isa<Argument>(const Value* value) {
  return value != nullptr && value->kind() == ValueKind::Argument;
}

inline const Constant* asConstant(const Value* value) {
  return isa<Constant>(value) ? static_cast<const Constant*>(value) : nullptr;
}
inline const Argument* asArgument(const Value* value) {
  return isa<Argument>(value) ? static_cast<const Argument*>(value) : nullptr;
}

} // namespace cgpa::ir
