#include "ir/parser.hpp"

#include <cstdlib>
#include <optional>
#include <unordered_map>
#include <vector>

#include "support/strings.hpp"

namespace cgpa::ir {

namespace {

/// One operand as written in the text, before name resolution.
struct OperandToken {
  enum class Kind { Name, IntLiteral, FloatLiteral, Null } kind;
  std::string name;       // Kind::Name.
  std::int64_t intValue = 0;
  double floatValue = 0.0;
  Type literalType = Type::I32;
};

/// One parsed-but-unresolved instruction.
struct PendingInstruction {
  Instruction* inst = nullptr;
  std::vector<OperandToken> operands;
  std::vector<std::string> successorNames;
  std::vector<std::pair<OperandToken, std::string>> phiIncoming;
  int line = 0;
};

/// Character-level cursor over one line.
class LineCursor {
public:
  explicit LineCursor(std::string_view text) : text_(text) {}

  void skipSpace() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t'))
      ++pos_;
  }
  bool atEnd() {
    skipSpace();
    return pos_ >= text_.size() || text_[pos_] == ';';
  }
  char peek() {
    skipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  bool consume(char c) {
    skipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool consumeWord(std::string_view word) {
    skipSpace();
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }
  /// Read an identifier-ish token: [A-Za-z0-9_.+-]* (covers numbers too).
  std::string word() {
    skipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if ((std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_' ||
          c == '.' || c == '+' || c == '-')
        ++pos_;
      else
        break;
    }
    return std::string(text_.substr(start, pos_ - start));
  }
  /// Read a double-quoted string.
  std::optional<std::string> quoted() {
    skipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"')
      return std::nullopt;
    ++pos_;
    std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"')
      ++pos_;
    if (pos_ >= text_.size())
      return std::nullopt;
    std::string value(text_.substr(start, pos_ - start));
    ++pos_;
    return value;
  }

private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

class Parser {
public:
  explicit Parser(std::string_view text) : lines_(splitString(text, '\n')) {}

  ParseResult run() {
    while (lineIndex_ < lines_.size() && error_.empty()) {
      std::string_view line = trimString(lines_[lineIndex_]);
      ++lineIndex_;
      if (line.empty() || line[0] == ';')
        continue;
      if (startsWith(line, "module "))
        parseModuleHeader(line);
      else if (startsWith(line, "region "))
        parseRegion(line);
      else if (startsWith(line, "func "))
        parseFunction(line);
      else
        fail("unexpected top-level line");
    }
    ParseResult result;
    result.error = error_;
    if (error_.empty())
      result.module = std::move(module_);
    return result;
  }

private:
  void fail(const std::string& message) {
    if (error_.empty())
      error_ = "line " + std::to_string(lineIndex_) + ": " + message;
  }

  void parseModuleHeader(std::string_view line) {
    LineCursor cursor(line);
    cursor.consumeWord("module");
    const auto name = cursor.quoted();
    if (!name) {
      fail("expected module name string");
      return;
    }
    module_ = std::make_unique<Module>(*name);
  }

  void parseRegion(std::string_view line) {
    if (module_ == nullptr) {
      fail("region before module header");
      return;
    }
    LineCursor cursor(line);
    cursor.consumeWord("region");
    const auto name = cursor.quoted();
    if (!name) {
      fail("expected region name string");
      return;
    }
    RegionShape shape = RegionShape::Array;
    std::int64_t elem = 0;
    bool readOnly = false;
    std::int64_t next = -1;
    int elemPtr = -1;
    std::vector<RegionPointerField> fields;
    while (!cursor.atEnd()) {
      if (cursor.consumeWord("shape=")) {
        const std::string value = cursor.word();
        if (value == "array")
          shape = RegionShape::Array;
        else if (value == "list")
          shape = RegionShape::AcyclicList;
        else {
          fail("unknown region shape: " + value);
          return;
        }
      } else if (cursor.consumeWord("elem=")) {
        elem = std::atoll(cursor.word().c_str());
      } else if (cursor.consumeWord("readonly=")) {
        readOnly = cursor.word() == "1";
      } else if (cursor.consumeWord("next=")) {
        next = std::atoll(cursor.word().c_str());
      } else if (cursor.consumeWord("elemptr=")) {
        elemPtr = static_cast<int>(std::atoll(cursor.word().c_str()));
      } else if (cursor.consumeWord("ptrfield")) {
        RegionPointerField field;
        field.offset = std::atoll(cursor.word().c_str());
        if (!cursor.consumeWord("->")) {
          fail("expected -> in ptrfield");
          return;
        }
        field.targetRegion = static_cast<int>(std::atoll(cursor.word().c_str()));
        fields.push_back(field);
      } else {
        fail("unexpected token in region line");
        return;
      }
    }
    Region* region = module_->addRegion(*name, shape, elem);
    region->readOnly = readOnly;
    region->nextOffset = next;
    region->elemPointerTarget = elemPtr;
    region->pointerFields = std::move(fields);
  }

  std::optional<Type> parseTypeWord(LineCursor& cursor) {
    const std::string word = cursor.word();
    if (word != "void" && word != "i1" && word != "i32" && word != "i64" &&
        word != "f32" && word != "f64" && word != "ptr") {
      fail("expected type, got '" + word + "'");
      return std::nullopt;
    }
    return typeFromName(word);
  }

  std::optional<OperandToken> parseOperand(LineCursor& cursor) {
    OperandToken token;
    if (cursor.consume('%')) {
      token.kind = OperandToken::Kind::Name;
      token.name = cursor.word();
      return token;
    }
    if (cursor.consumeWord("null")) {
      token.kind = OperandToken::Kind::Null;
      return token;
    }
    // Literal: value:type.
    const std::string value = cursor.word();
    if (value.empty() || !cursor.consume(':')) {
      fail("expected operand");
      return std::nullopt;
    }
    const auto type = parseTypeWord(cursor);
    if (!type)
      return std::nullopt;
    token.literalType = *type;
    if (isFloatType(*type)) {
      token.kind = OperandToken::Kind::FloatLiteral;
      token.floatValue = std::strtod(value.c_str(), nullptr);
    } else {
      token.kind = OperandToken::Kind::IntLiteral;
      token.intValue = std::atoll(value.c_str());
    }
    return token;
  }

  void parseFunction(std::string_view header) {
    if (module_ == nullptr) {
      fail("func before module header");
      return;
    }
    LineCursor cursor(header);
    cursor.consumeWord("func");
    if (!cursor.consume('@')) {
      fail("expected @name");
      return;
    }
    const std::string name = cursor.word();
    if (!cursor.consume('(')) {
      fail("expected ( after function name");
      return;
    }

    struct ArgSpec {
      std::string name;
      Type type;
      int region = -1;
    };
    std::vector<ArgSpec> args;
    if (!cursor.consume(')')) {
      while (true) {
        ArgSpec arg;
        if (!cursor.consume('%')) {
          fail("expected %arg");
          return;
        }
        arg.name = cursor.word();
        if (!cursor.consume(':')) {
          fail("expected : after arg name");
          return;
        }
        const auto type = parseTypeWord(cursor);
        if (!type)
          return;
        arg.type = *type;
        if (cursor.consumeWord("region="))
          arg.region = static_cast<int>(std::atoll(cursor.word().c_str()));
        args.push_back(arg);
        if (cursor.consume(')'))
          break;
        if (!cursor.consume(',')) {
          fail("expected , or ) in arg list");
          return;
        }
      }
    }
    if (!cursor.consumeWord("->")) {
      fail("expected -> return type");
      return;
    }
    const auto returnType = parseTypeWord(cursor);
    if (!returnType)
      return;
    if (!cursor.consume('{')) {
      fail("expected {");
      return;
    }

    Function* function = module_->addFunction(name, *returnType);
    values_.clear();
    blocks_.clear();
    pending_.clear();
    for (const ArgSpec& arg : args) {
      Argument* argument = function->addArgument(arg.type, arg.name);
      argument->setRegionId(arg.region);
      values_[arg.name] = argument;
    }

    // Pass A: find block labels and collect instruction lines.
    std::vector<std::pair<std::string_view, int>> body;
    while (lineIndex_ < lines_.size()) {
      std::string_view line = trimString(lines_[lineIndex_]);
      ++lineIndex_;
      if (line == "}")
        break;
      if (line.empty() || line[0] == ';')
        continue;
      body.emplace_back(line, static_cast<int>(lineIndex_));
      if (line.back() == ':') {
        std::string label(line.substr(0, line.size() - 1));
        if (blocks_.count(label) != 0) {
          fail("duplicate block label: " + label);
          return;
        }
        blocks_[label] = function->addBlock(label);
      }
    }

    // Pass B: create instructions (recording operand tokens).
    BasicBlock* current = nullptr;
    for (const auto& [line, lineNo] : body) {
      if (line.back() == ':') {
        current = blocks_[std::string(line.substr(0, line.size() - 1))];
        continue;
      }
      if (current == nullptr) {
        error_ = "line " + std::to_string(lineNo) + ": instruction before label";
        return;
      }
      if (!parseInstruction(line, lineNo, current))
        return;
    }

    // Pass C: resolve operands.
    for (PendingInstruction& pend : pending_) {
      for (const OperandToken& token : pend.operands) {
        Value* value = resolveOperand(token, pend.line);
        if (value == nullptr)
          return;
        pend.inst->addOperand(value);
      }
      for (const auto& [valueTok, blockName] : pend.phiIncoming) {
        Value* value = resolveOperand(valueTok, pend.line);
        BasicBlock* block = resolveBlock(blockName, pend.line);
        if (value == nullptr || block == nullptr)
          return;
        pend.inst->addIncoming(value, block);
      }
      for (const std::string& succName : pend.successorNames) {
        BasicBlock* block = resolveBlock(succName, pend.line);
        if (block == nullptr)
          return;
        pend.inst->addSuccessor(block);
      }
    }
  }

  bool parseInstruction(std::string_view line, int lineNo, BasicBlock* block) {
    LineCursor cursor(line);
    std::string resultName;
    Type resultType = Type::Void;
    if (cursor.peek() == '%') {
      cursor.consume('%');
      resultName = cursor.word();
      if (!cursor.consume(':')) {
        error_ = "line " + std::to_string(lineNo) + ": expected :type";
        return false;
      }
      const auto type = parseTypeWord(cursor);
      if (!type)
        return false;
      resultType = *type;
      if (!cursor.consume('=')) {
        error_ = "line " + std::to_string(lineNo) + ": expected =";
        return false;
      }
    }

    const std::string mnemonic = cursor.word();
    Opcode op;
    // opcodeFromName aborts on bad names; validate first.
    {
      bool known = true;
      static const char* all[] = {
          "add", "sub", "mul", "sdiv", "srem", "and", "or", "xor", "shl",
          "lshr", "ashr", "fadd", "fsub", "fmul", "fdiv", "icmp", "fcmp",
          "trunc", "sext", "zext", "sitofp", "fptosi", "fpext", "fptrunc",
          "ptrtoint", "inttoptr", "load", "store", "gep", "select", "phi",
          "call", "br", "condbr", "ret", "produce", "produce_broadcast",
          "consume", "parallel_fork", "parallel_join", "store_liveout",
          "retrieve_liveout"};
      known = false;
      for (const char* candidate : all)
        if (mnemonic == candidate)
          known = true;
      if (!known) {
        error_ =
            "line " + std::to_string(lineNo) + ": unknown opcode " + mnemonic;
        return false;
      }
      op = opcodeFromName(mnemonic);
    }

    auto owned = std::make_unique<Instruction>(op, resultType, resultName);
    Instruction* inst = block->append(std::move(owned));
    if (!resultName.empty()) {
      if (values_.count(resultName) != 0) {
        error_ = "line " + std::to_string(lineNo) + ": redefinition of %" +
                 resultName;
        return false;
      }
      values_[resultName] = inst;
    }

    PendingInstruction pend;
    pend.inst = inst;
    pend.line = lineNo;

    // Attributes.
    std::int64_t immA = 0;
    std::int64_t immB = 0;
    while (cursor.peek() == '!') {
      cursor.consume('!');
      if (cursor.consumeWord("pred=")) {
        inst->setCmpPred(cmpPredFromName(cursor.word()));
      } else if (cursor.consumeWord("intr=")) {
        immA = static_cast<std::int64_t>(intrinsicFromName(cursor.word()));
      } else if (cursor.consumeWord("a=")) {
        immA = std::atoll(cursor.word().c_str());
      } else if (cursor.consumeWord("b=")) {
        immB = std::atoll(cursor.word().c_str());
      } else {
        error_ = "line " + std::to_string(lineNo) + ": bad attribute";
        return false;
      }
    }
    inst->setImms(immA, immB);

    // Phi incoming pairs.
    if (op == Opcode::Phi) {
      while (cursor.consume('[')) {
        const auto token = parseOperand(cursor);
        if (!token)
          return propagate(lineNo);
        if (!cursor.consumeWord("from") || !cursor.consume('%')) {
          error_ = "line " + std::to_string(lineNo) + ": expected from %block";
          return false;
        }
        pend.phiIncoming.emplace_back(*token, cursor.word());
        if (!cursor.consume(']')) {
          error_ = "line " + std::to_string(lineNo) + ": expected ]";
          return false;
        }
        cursor.consume(',');
      }
      pending_.push_back(std::move(pend));
      return true;
    }

    // Plain operands until "->" or end of line. (The arrow check must come
    // first: negative literals also begin with '-'.)
    bool sawArrow = false;
    while (!cursor.atEnd()) {
      if (cursor.consumeWord("->")) {
        sawArrow = true;
        break;
      }
      const auto token = parseOperand(cursor);
      if (!token)
        return propagate(lineNo);
      pend.operands.push_back(*token);
      if (!cursor.consume(','))
        break;
    }

    // Successors.
    if (sawArrow || cursor.consumeWord("->")) {
      while (cursor.consume('%')) {
        pend.successorNames.push_back(cursor.word());
        if (!cursor.consume(','))
          break;
      }
    }

    pending_.push_back(std::move(pend));
    return true;
  }

  bool propagate(int lineNo) {
    if (error_.empty())
      error_ = "line " + std::to_string(lineNo) + ": bad operand";
    return false;
  }

  Value* resolveOperand(const OperandToken& token, int lineNo) {
    switch (token.kind) {
    case OperandToken::Kind::Name: {
      const auto it = values_.find(token.name);
      if (it == values_.end()) {
        error_ = "line " + std::to_string(lineNo) + ": unknown value %" +
                 token.name;
        return nullptr;
      }
      return it->second;
    }
    case OperandToken::Kind::Null:
      return module_->nullPtr();
    case OperandToken::Kind::IntLiteral:
      return module_->constInt(token.literalType, token.intValue);
    case OperandToken::Kind::FloatLiteral:
      return module_->constFloat(token.literalType, token.floatValue);
    }
    return nullptr;
  }

  BasicBlock* resolveBlock(const std::string& name, int lineNo) {
    const auto it = blocks_.find(name);
    if (it == blocks_.end()) {
      error_ = "line " + std::to_string(lineNo) + ": unknown block %" + name;
      return nullptr;
    }
    return it->second;
  }

  std::vector<std::string_view> lines_;
  std::size_t lineIndex_ = 0;
  std::unique_ptr<Module> module_;
  std::string error_;
  std::unordered_map<std::string, Value*> values_;
  std::unordered_map<std::string, BasicBlock*> blocks_;
  std::vector<PendingInstruction> pending_;
};

} // namespace

ParseResult parseModule(std::string_view text) { return Parser(text).run(); }

Status parseStatus(const ParseResult& result) {
  if (result.ok())
    return Status::success();
  return Status::error(ErrorCode::ParseError, result.error.empty()
                                                  ? "parse failed"
                                                  : result.error);
}

Expected<std::unique_ptr<Module>> parseModuleChecked(std::string_view text) {
  ParseResult result = parseModule(text);
  if (!result.ok())
    return parseStatus(result);
  return std::move(result.module);
}

} // namespace cgpa::ir
