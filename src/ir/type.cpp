#include "ir/type.hpp"

#include "support/diag.hpp"

namespace cgpa::ir {

int typeBits(Type type) {
  switch (type) {
  case Type::Void:
    return 0;
  case Type::I1:
    return 1;
  case Type::I32:
    return 32;
  case Type::I64:
    return 64;
  case Type::F32:
    return 32;
  case Type::F64:
    return 64;
  case Type::Ptr:
    return 32;
  }
  CGPA_UNREACHABLE("bad type");
}

int typeBytes(Type type) {
  switch (type) {
  case Type::Void:
    return 0;
  case Type::I1:
    return 1;
  case Type::I32:
    return 4;
  case Type::I64:
    return 8;
  case Type::F32:
    return 4;
  case Type::F64:
    return 8;
  case Type::Ptr:
    return 4;
  }
  CGPA_UNREACHABLE("bad type");
}

bool isFloatType(Type type) { return type == Type::F32 || type == Type::F64; }

bool isIntType(Type type) {
  return type == Type::I1 || type == Type::I32 || type == Type::I64;
}

std::string_view typeName(Type type) {
  switch (type) {
  case Type::Void:
    return "void";
  case Type::I1:
    return "i1";
  case Type::I32:
    return "i32";
  case Type::I64:
    return "i64";
  case Type::F32:
    return "f32";
  case Type::F64:
    return "f64";
  case Type::Ptr:
    return "ptr";
  }
  CGPA_UNREACHABLE("bad type");
}

Type typeFromName(std::string_view name) {
  if (name == "void")
    return Type::Void;
  if (name == "i1")
    return Type::I1;
  if (name == "i32")
    return Type::I32;
  if (name == "i64")
    return Type::I64;
  if (name == "f32")
    return Type::F32;
  if (name == "f64")
    return Type::F64;
  if (name == "ptr")
    return Type::Ptr;
  CGPA_UNREACHABLE("unknown type name: " + std::string(name));
}

} // namespace cgpa::ir
