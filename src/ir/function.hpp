// Functions: argument lists plus a list of basic blocks (first = entry).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/basic_block.hpp"
#include "ir/value.hpp"

namespace cgpa::ir {

class Module;

class Function {
public:
  Function(std::string name, Type returnType, Module* parent)
      : name_(std::move(name)), returnType_(returnType), parent_(parent) {}

  Function(const Function&) = delete;
  Function& operator=(const Function&) = delete;

  const std::string& name() const { return name_; }
  Type returnType() const { return returnType_; }
  Module* parent() const { return parent_; }

  // Arguments.
  Argument* addArgument(Type type, std::string name);
  int numArguments() const { return static_cast<int>(arguments_.size()); }
  Argument* argument(int index) const { return arguments_.at(index).get(); }
  const std::vector<std::unique_ptr<Argument>>& arguments() const {
    return arguments_;
  }

  // Blocks.
  BasicBlock* addBlock(std::string name);
  const std::vector<std::unique_ptr<BasicBlock>>& blocks() const {
    return blocks_;
  }
  BasicBlock* entry() const {
    return blocks_.empty() ? nullptr : blocks_.front().get();
  }
  BasicBlock* findBlock(const std::string& name) const;
  /// Remove and destroy `block` (must contain no instructions used
  /// elsewhere; callers are responsible for rewiring control flow first).
  void eraseBlock(BasicBlock* block);
  /// Remove `block` from the function but keep it (and its instructions)
  /// alive — used by the pipeline transform so analyses built over the
  /// original loop stay valid after the loop is replaced by fork/join.
  std::unique_ptr<BasicBlock> detachBlock(BasicBlock* block);
  /// Index of `block` in the block list, or -1.
  int indexOfBlock(const BasicBlock* block) const;

  // Use scanning. The IR keeps no use lists (functions here are small);
  // these helpers scan the whole function.
  std::vector<Instruction*> usersOf(const Value* value) const;
  void replaceAllUsesWith(Value* from, Value* to);

  /// Predecessor map for all blocks (recomputed on each call).
  std::vector<BasicBlock*> predecessorsOf(const BasicBlock* block) const;

  /// Total instruction count.
  int instructionCount() const;

  /// Assign a contiguous slot index to every Argument (0..numArguments-1)
  /// and Instruction (block order, after the arguments) for dense
  /// register files (see ir/slots.hpp). Returns the number of slots.
  /// Cheap O(instructions); re-run after any IR mutation. Const because it
  /// only renumbers values the function owns.
  int finalizeSlots() const;

private:
  std::string name_;
  Type returnType_;
  Module* parent_;
  std::vector<std::unique_ptr<Argument>> arguments_;
  std::vector<std::unique_ptr<BasicBlock>> blocks_;
};

} // namespace cgpa::ir
