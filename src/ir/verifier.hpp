// IR verifier: structural and SSA well-formedness checks.
//
// Run after kernel construction and after every transform; a transform bug
// caught here is vastly cheaper than one chased through the cycle simulator.
#pragma once

#include <string>

#include "ir/module.hpp"
#include "support/status.hpp"

namespace cgpa::ir {

/// Returns an empty string if `function` is well-formed, else a diagnostic.
/// Checks: entry block exists, every block ends in exactly one terminator,
/// phis lead their block and match predecessors, operand counts and types
/// fit the opcode, and every use is dominated by its definition.
std::string verifyFunction(const Function& function);

/// Verify every function; returns the first diagnostic or empty string.
std::string verifyModule(const Module& module);

/// Status bridges: Ok, or ErrorCode::VerifyError carrying the diagnostic.
Status verifyFunctionStatus(const Function& function);
Status verifyModuleStatus(const Module& module);

} // namespace cgpa::ir
