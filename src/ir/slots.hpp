// Dense operand resolution for the execution hot loops.
//
// The interpreter and the cycle-level worker engines used to keep their
// register files in pointer-keyed hash maps, paying a hash probe for every
// operand of every instruction on every step. A SlotMap numbers every
// Argument and Instruction of one function contiguously (via
// Function::finalizeSlots), appends one extra slot per distinct Constant
// operand, and pre-resolves each instruction's operand list into an array
// of slot indices. An executor then keeps its registers in a plain
// std::vector<uint64_t> and reads an operand with a single array index —
// constants are folded into preloaded register slots, so the hot path has
// no branches on value kind and no hashing at all.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ir/function.hpp"

namespace cgpa::ir {

class SlotMap {
public:
  /// Builds the numbering for `fn` (calls fn.finalizeSlots()). The map is
  /// invalidated by any subsequent IR mutation of the function.
  explicit SlotMap(const Function& fn);

  /// Value slots (arguments + instructions) followed by constant slots.
  int numSlots() const { return numSlots_; }
  /// Arguments + instructions only.
  int numValueSlots() const { return numValueSlots_; }
  int numArguments() const { return numArgs_; }

  /// Pre-resolved operand slots of `inst`, parallel to inst->operands().
  const std::int32_t* operandSlots(const Instruction* inst) const {
    return opSlots_.data() +
           opBegin_[static_cast<std::size_t>(inst->slot() - numArgs_)];
  }

  /// Slot of any value under this map, including constants. Not for the
  /// per-step hot path (constants need a linear lookup).
  int slotOf(const Value* value) const;

  /// Distinct constants referenced by the function, with the slot each was
  /// assigned. Executors preload `regs[slot] = constantPattern(*constant)`.
  const std::vector<std::pair<std::int32_t, const Constant*>>&
  constants() const {
    return constants_;
  }

private:
  int numArgs_ = 0;
  int numValueSlots_ = 0;
  int numSlots_ = 0;
  /// Flat operand-slot storage; instruction i (slot numArgs_+i) owns the
  /// range [opBegin_[i], opBegin_[i+1]).
  std::vector<std::int32_t> opSlots_;
  std::vector<std::int32_t> opBegin_;
  std::vector<std::pair<std::int32_t, const Constant*>> constants_;
};

} // namespace cgpa::ir
