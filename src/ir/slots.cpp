#include "ir/slots.hpp"

#include <unordered_map>

#include "support/diag.hpp"

namespace cgpa::ir {

SlotMap::SlotMap(const Function& fn) {
  numArgs_ = fn.numArguments();
  numValueSlots_ = fn.finalizeSlots();

  // Count operands to size the flat table in one pass.
  const int numInsts = numValueSlots_ - numArgs_;
  opBegin_.reserve(static_cast<std::size_t>(numInsts) + 1);
  opBegin_.push_back(0);

  std::unordered_map<const Constant*, std::int32_t> constantSlots;
  std::int32_t nextConstant = static_cast<std::int32_t>(numValueSlots_);

  for (const auto& block : fn.blocks()) {
    for (const auto& inst : block->instructions()) {
      for (const Value* operand : inst->operands()) {
        std::int32_t slot;
        if (const Constant* constant = asConstant(operand)) {
          auto [it, inserted] = constantSlots.emplace(constant, nextConstant);
          if (inserted) {
            constants_.emplace_back(nextConstant, constant);
            ++nextConstant;
          }
          slot = it->second;
        } else {
          slot = static_cast<std::int32_t>(operand->slot());
          CGPA_ASSERT(slot >= 0, "operand %" + operand->name() +
                                     " not numbered by finalizeSlots");
        }
        opSlots_.push_back(slot);
      }
      opBegin_.push_back(static_cast<std::int32_t>(opSlots_.size()));
    }
  }
  numSlots_ = static_cast<int>(nextConstant);
}

int SlotMap::slotOf(const Value* value) const {
  if (const Constant* constant = asConstant(value)) {
    for (const auto& [slot, c] : constants_)
      if (c == constant)
        return slot;
    CGPA_ASSERT(false, "constant not referenced by this function");
  }
  return value->slot();
}

} // namespace cgpa::ir
