// Parser for the textual IR produced by printer.hpp.
//
// The parser exists so tests can write kernels as text, so dumps
// round-trip, and so example programs can load IR from files. It accepts
// exactly the printer's grammar; errors carry a line number.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "ir/module.hpp"
#include "support/status.hpp"

namespace cgpa::ir {

struct ParseResult {
  std::unique_ptr<Module> module;
  std::string error; ///< Empty on success; "line N: message" on failure.

  bool ok() const { return module != nullptr && error.empty(); }
};

ParseResult parseModule(std::string_view text);

/// Status view of a ParseResult: Ok, or ErrorCode::ParseError carrying the
/// "line N: message" diagnostic (structured-failure bridge for callers
/// that propagate cgpa::Status — see docs/robustness.md).
Status parseStatus(const ParseResult& result);

/// parseModule + parseStatus in one step: the module, or a ParseError.
Expected<std::unique_ptr<Module>> parseModuleChecked(std::string_view text);

} // namespace cgpa::ir
