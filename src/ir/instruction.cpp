#include "ir/instruction.hpp"

#include "ir/basic_block.hpp"

#include <algorithm>
#include <array>
#include <utility>

#include "support/diag.hpp"

namespace cgpa::ir {

namespace {

constexpr std::pair<Opcode, std::string_view> kOpcodeNames[] = {
    {Opcode::Add, "add"},
    {Opcode::Sub, "sub"},
    {Opcode::Mul, "mul"},
    {Opcode::SDiv, "sdiv"},
    {Opcode::SRem, "srem"},
    {Opcode::And, "and"},
    {Opcode::Or, "or"},
    {Opcode::Xor, "xor"},
    {Opcode::Shl, "shl"},
    {Opcode::LShr, "lshr"},
    {Opcode::AShr, "ashr"},
    {Opcode::FAdd, "fadd"},
    {Opcode::FSub, "fsub"},
    {Opcode::FMul, "fmul"},
    {Opcode::FDiv, "fdiv"},
    {Opcode::ICmp, "icmp"},
    {Opcode::FCmp, "fcmp"},
    {Opcode::Trunc, "trunc"},
    {Opcode::SExt, "sext"},
    {Opcode::ZExt, "zext"},
    {Opcode::SIToFP, "sitofp"},
    {Opcode::FPToSI, "fptosi"},
    {Opcode::FPExt, "fpext"},
    {Opcode::FPTrunc, "fptrunc"},
    {Opcode::PtrToInt, "ptrtoint"},
    {Opcode::IntToPtr, "inttoptr"},
    {Opcode::Load, "load"},
    {Opcode::Store, "store"},
    {Opcode::Gep, "gep"},
    {Opcode::Select, "select"},
    {Opcode::Phi, "phi"},
    {Opcode::Call, "call"},
    {Opcode::Br, "br"},
    {Opcode::CondBr, "condbr"},
    {Opcode::Ret, "ret"},
    {Opcode::Produce, "produce"},
    {Opcode::ProduceBroadcast, "produce_broadcast"},
    {Opcode::Consume, "consume"},
    {Opcode::ParallelFork, "parallel_fork"},
    {Opcode::ParallelJoin, "parallel_join"},
    {Opcode::StoreLiveout, "store_liveout"},
    {Opcode::RetrieveLiveout, "retrieve_liveout"},
};

constexpr std::pair<CmpPred, std::string_view> kPredNames[] = {
    {CmpPred::EQ, "eq"},   {CmpPred::NE, "ne"},   {CmpPred::SLT, "slt"},
    {CmpPred::SLE, "sle"}, {CmpPred::SGT, "sgt"}, {CmpPred::SGE, "sge"},
    {CmpPred::OEQ, "oeq"}, {CmpPred::ONE, "one"}, {CmpPred::OLT, "olt"},
    {CmpPred::OLE, "ole"}, {CmpPred::OGT, "ogt"}, {CmpPred::OGE, "oge"},
};

constexpr std::pair<Intrinsic, std::string_view> kIntrinsicNames[] = {
    {Intrinsic::Sqrt, "sqrt"},
    {Intrinsic::FAbs, "fabs"},
    {Intrinsic::SMin, "smin"},
    {Intrinsic::SMax, "smax"},
};

} // namespace

std::string_view opcodeName(Opcode op) {
  for (const auto& [code, name] : kOpcodeNames)
    if (code == op)
      return name;
  CGPA_UNREACHABLE("bad opcode");
}

Opcode opcodeFromName(std::string_view name) {
  for (const auto& [code, candidate] : kOpcodeNames)
    if (candidate == name)
      return code;
  CGPA_UNREACHABLE("unknown opcode: " + std::string(name));
}

std::string_view cmpPredName(CmpPred pred) {
  for (const auto& [code, name] : kPredNames)
    if (code == pred)
      return name;
  CGPA_UNREACHABLE("bad predicate");
}

CmpPred cmpPredFromName(std::string_view name) {
  for (const auto& [code, candidate] : kPredNames)
    if (candidate == name)
      return code;
  CGPA_UNREACHABLE("unknown predicate: " + std::string(name));
}

std::string_view intrinsicName(Intrinsic which) {
  for (const auto& [code, name] : kIntrinsicNames)
    if (code == which)
      return name;
  CGPA_UNREACHABLE("bad intrinsic");
}

Intrinsic intrinsicFromName(std::string_view name) {
  for (const auto& [code, candidate] : kIntrinsicNames)
    if (candidate == name)
      return code;
  CGPA_UNREACHABLE("unknown intrinsic: " + std::string(name));
}

bool isTerminatorOpcode(Opcode op) {
  return op == Opcode::Br || op == Opcode::CondBr || op == Opcode::Ret;
}

bool isMemoryOpcode(Opcode op) {
  return op == Opcode::Load || op == Opcode::Store;
}

bool hasSideEffects(Opcode op) {
  switch (op) {
  case Opcode::Store:
  case Opcode::Produce:
  case Opcode::ProduceBroadcast:
  case Opcode::Consume:
  case Opcode::ParallelFork:
  case Opcode::ParallelJoin:
  case Opcode::StoreLiveout:
    return true;
  default:
    return false;
  }
}

void Instruction::replaceUsesOfWith(Value* from, Value* to) {
  std::replace(operands_.begin(), operands_.end(), from, to);
}

Value* Instruction::incomingValueFor(const BasicBlock* block) const {
  return operands_[static_cast<std::size_t>(incomingIndexFor(block))];
}

int Instruction::incomingIndexFor(const BasicBlock* block) const {
  CGPA_ASSERT(op_ == Opcode::Phi, "incomingIndexFor on non-phi");
  for (std::size_t i = 0; i < incoming_.size(); ++i)
    if (incoming_[i] == block)
      return static_cast<int>(i);
  CGPA_UNREACHABLE("phi has no incoming value for block " + block->name());
}

} // namespace cgpa::ir
