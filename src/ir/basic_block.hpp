// Basic blocks: ordered lists of instructions ending in one terminator.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/instruction.hpp"

namespace cgpa::ir {

class Function;

class BasicBlock {
public:
  BasicBlock(std::string name, Function* parent)
      : name_(std::move(name)), parent_(parent) {}

  BasicBlock(const BasicBlock&) = delete;
  BasicBlock& operator=(const BasicBlock&) = delete;

  const std::string& name() const { return name_; }
  void setName(std::string name) { name_ = std::move(name); }
  Function* parent() const { return parent_; }

  const std::vector<std::unique_ptr<Instruction>>& instructions() const {
    return instructions_;
  }

  bool empty() const { return instructions_.empty(); }
  int size() const { return static_cast<int>(instructions_.size()); }
  Instruction* instruction(int index) const {
    return instructions_.at(index).get();
  }

  /// Append `inst` to the block (before the terminator position is the
  /// caller's responsibility; use insertBefore for mid-block insertion).
  Instruction* append(std::unique_ptr<Instruction> inst);

  /// Insert `inst` immediately before position `index`.
  Instruction* insertAt(int index, std::unique_ptr<Instruction> inst);

  /// Remove and destroy the instruction at `index`.
  void eraseAt(int index);

  /// Index of `inst` in this block, or -1.
  int indexOf(const Instruction* inst) const;

  /// Final instruction if it is a terminator, else nullptr.
  Instruction* terminator() const;

  /// Successor blocks (empty for Ret / unterminated blocks).
  std::vector<BasicBlock*> successors() const;

private:
  std::string name_;
  Function* parent_;
  std::vector<std::unique_ptr<Instruction>> instructions_;
};

} // namespace cgpa::ir
