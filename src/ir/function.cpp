#include "ir/function.hpp"

#include <algorithm>

#include "support/diag.hpp"

namespace cgpa::ir {

Argument* Function::addArgument(Type type, std::string name) {
  arguments_.push_back(std::make_unique<Argument>(
      type, std::move(name), static_cast<int>(arguments_.size())));
  return arguments_.back().get();
}

BasicBlock* Function::addBlock(std::string name) {
  blocks_.push_back(std::make_unique<BasicBlock>(std::move(name), this));
  return blocks_.back().get();
}

BasicBlock* Function::findBlock(const std::string& name) const {
  for (const auto& block : blocks_)
    if (block->name() == name)
      return block.get();
  return nullptr;
}

void Function::eraseBlock(BasicBlock* block) {
  const auto it =
      std::find_if(blocks_.begin(), blocks_.end(),
                   [block](const auto& owned) { return owned.get() == block; });
  CGPA_ASSERT(it != blocks_.end(), "eraseBlock: block not in function");
  blocks_.erase(it);
}

std::unique_ptr<BasicBlock> Function::detachBlock(BasicBlock* block) {
  const auto it =
      std::find_if(blocks_.begin(), blocks_.end(),
                   [block](const auto& owned) { return owned.get() == block; });
  CGPA_ASSERT(it != blocks_.end(), "detachBlock: block not in function");
  std::unique_ptr<BasicBlock> owned = std::move(*it);
  blocks_.erase(it);
  return owned;
}

int Function::indexOfBlock(const BasicBlock* block) const {
  for (std::size_t i = 0; i < blocks_.size(); ++i)
    if (blocks_[i].get() == block)
      return static_cast<int>(i);
  return -1;
}

std::vector<Instruction*> Function::usersOf(const Value* value) const {
  std::vector<Instruction*> users;
  for (const auto& block : blocks_)
    for (const auto& inst : block->instructions())
      for (Value* operand : inst->operands())
        if (operand == value) {
          users.push_back(inst.get());
          break;
        }
  return users;
}

void Function::replaceAllUsesWith(Value* from, Value* to) {
  for (const auto& block : blocks_)
    for (const auto& inst : block->instructions())
      inst->replaceUsesOfWith(from, to);
}

std::vector<BasicBlock*> Function::predecessorsOf(const BasicBlock* block) const {
  std::vector<BasicBlock*> preds;
  for (const auto& candidate : blocks_) {
    for (BasicBlock* succ : candidate->successors())
      if (succ == block) {
        preds.push_back(candidate.get());
        break;
      }
  }
  return preds;
}

int Function::instructionCount() const {
  int count = 0;
  for (const auto& block : blocks_)
    count += block->size();
  return count;
}

int Function::finalizeSlots() const {
  // Write-skipping: a value whose slot already matches the (deterministic)
  // numbering is left untouched. This keeps re-finalization of an
  // already-numbered function read-only, so immutable functions shared
  // across threads (the serve plan cache pre-finalizes at compile time)
  // can build SlotMaps concurrently without data races.
  int next = 0;
  for (const auto& argument : arguments_) {
    if (argument->slot() != next)
      argument->setSlot(next);
    ++next;
  }
  for (const auto& block : blocks_)
    for (const auto& inst : block->instructions()) {
      if (inst->slot() != next)
        inst->setSlot(next);
      ++next;
    }
  return next;
}

} // namespace cgpa::ir
