// Instructions of the CGPA IR.
//
// The opcode set is a pragmatic subset of LLVM IR plus the seven CGPA
// primitives of paper Table 1 (produce / produce_broadcast / consume /
// parallel_fork / parallel_join / store_liveout / retrieve_liveout), which
// the pipeline transform inserts and the HLS backend and simulator give
// hardware semantics.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "ir/value.hpp"

namespace cgpa::ir {

class BasicBlock;

enum class Opcode {
  // Integer arithmetic / bitwise.
  Add,
  Sub,
  Mul,
  SDiv,
  SRem,
  And,
  Or,
  Xor,
  Shl,
  LShr,
  AShr,
  // Floating point arithmetic.
  FAdd,
  FSub,
  FMul,
  FDiv,
  // Comparisons (predicate in cmpPred()).
  ICmp,
  FCmp,
  // Conversions.
  Trunc,
  SExt,
  ZExt,
  SIToFP,
  FPToSI,
  FPExt,
  FPTrunc,
  PtrToInt,
  IntToPtr,
  // Memory. Gep computes base + index * scale + offset (scale/offset are
  // immediates); it is the only address-arithmetic instruction, mirroring
  // LLVM's getelementptr after lowering of struct/array indices.
  Load,
  Store,
  Gep,
  // Misc.
  Select,
  Phi,
  Call,
  // Control.
  Br,
  CondBr,
  Ret,
  // --- CGPA primitives (paper Table 1) ---
  Produce,          ///< operands: lane, value; imm a: channel id.
  ProduceBroadcast, ///< operands: value; imm a: channel id.
  Consume,          ///< operands: lane; imm a: channel id; typed result.
  ParallelFork,     ///< operands: live-in args (worker id last for parallel
                    ///< tasks); imm a: loop id, imm b: task index.
  ParallelJoin,     ///< imm a: loop id.
  StoreLiveout,     ///< operands: value; imm a: loop id, imm b: liveout id.
  RetrieveLiveout,  ///< imm a: loop id, imm b: liveout id; typed result.
};

/// Number of opcodes, for dense per-opcode counter arrays.
inline constexpr int kNumOpcodes =
    static_cast<int>(Opcode::RetrieveLiveout) + 1;

enum class CmpPred { EQ, NE, SLT, SLE, SGT, SGE, OEQ, ONE, OLT, OLE, OGT, OGE };

enum class Intrinsic { Sqrt, FAbs, SMin, SMax };

/// Printable mnemonic for an opcode ("add", "parallel_fork", ...).
std::string_view opcodeName(Opcode op);

/// Inverse of opcodeName; aborts on unknown mnemonics.
Opcode opcodeFromName(std::string_view name);

std::string_view cmpPredName(CmpPred pred);
CmpPred cmpPredFromName(std::string_view name);

std::string_view intrinsicName(Intrinsic which);
Intrinsic intrinsicFromName(std::string_view name);

/// True for Br/CondBr/Ret.
bool isTerminatorOpcode(Opcode op);

/// True for Load/Store (cache-port users).
bool isMemoryOpcode(Opcode op);

/// True for instructions with externally visible effects (stores, FIFO
/// traffic, forks, live-out registers). Used by SCC classification: an SCC
/// containing a side-effecting instruction can never be replicable.
bool hasSideEffects(Opcode op);

class Instruction : public Value {
public:
  Instruction(Opcode op, Type type, std::string name)
      : Value(ValueKind::Instruction, type, std::move(name)), op_(op) {}

  Opcode opcode() const { return op_; }

  BasicBlock* parent() const { return parent_; }
  void setParent(BasicBlock* block) { parent_ = block; }

  // Operands.
  std::span<Value* const> operands() const { return operands_; }
  int numOperands() const { return static_cast<int>(operands_.size()); }
  Value* operand(int index) const { return operands_.at(index); }
  void setOperand(int index, Value* value) { operands_.at(index) = value; }
  void addOperand(Value* value) { operands_.push_back(value); }

  /// Replace every operand equal to `from` with `to`.
  void replaceUsesOfWith(Value* from, Value* to);

  // Phi incoming blocks (parallel to operands; only for Phi).
  std::span<BasicBlock* const> incomingBlocks() const { return incoming_; }
  void addIncoming(Value* value, BasicBlock* block) {
    operands_.push_back(value);
    incoming_.push_back(block);
  }
  void setIncomingBlock(int index, BasicBlock* block) {
    incoming_.at(index) = block;
  }
  /// Incoming value for `block`; aborts if absent.
  Value* incomingValueFor(const BasicBlock* block) const;
  /// Index within operands()/incomingBlocks() of the entry for `block`;
  /// aborts if absent.
  int incomingIndexFor(const BasicBlock* block) const;

  // Branch successors (Br: 1, CondBr: 2 [true, false]).
  std::span<BasicBlock* const> successors() const { return successors_; }
  void addSuccessor(BasicBlock* block) { successors_.push_back(block); }
  void setSuccessor(int index, BasicBlock* block) {
    successors_.at(index) = block;
  }

  // Immediates (meaning depends on opcode; see accessors below).
  std::int64_t immA() const { return immA_; }
  std::int64_t immB() const { return immB_; }
  void setImms(std::int64_t a, std::int64_t b) {
    immA_ = a;
    immB_ = b;
  }

  CmpPred cmpPred() const { return pred_; }
  void setCmpPred(CmpPred pred) { pred_ = pred; }

  Intrinsic intrinsic() const { return static_cast<Intrinsic>(immA_); }

  // Gep immediates.
  std::int64_t gepScale() const { return immA_; }
  std::int64_t gepOffset() const { return immB_; }

  // Channel / loop / liveout / task immediates for CGPA primitives.
  int channelId() const { return static_cast<int>(immA_); }
  int loopId() const { return static_cast<int>(immA_); }
  int taskIndex() const { return static_cast<int>(immB_); }
  int liveoutId() const { return static_cast<int>(immB_); }

  bool isTerminator() const { return isTerminatorOpcode(op_); }
  bool isMemory() const { return isMemoryOpcode(op_); }

private:
  Opcode op_;
  BasicBlock* parent_ = nullptr;
  std::vector<Value*> operands_;
  std::vector<BasicBlock*> incoming_;   // Phi only.
  std::vector<BasicBlock*> successors_; // Br/CondBr only.
  std::int64_t immA_ = 0;
  std::int64_t immB_ = 0;
  CmpPred pred_ = CmpPred::EQ;
};

template <> inline bool isa<Instruction>(const Value* value) {
  return value != nullptr && value->kind() == ValueKind::Instruction;
}
inline const Instruction* asInstruction(const Value* value) {
  return isa<Instruction>(value) ? static_cast<const Instruction*>(value)
                                 : nullptr;
}
inline Instruction* asInstruction(Value* value) {
  return isa<Instruction>(value) ? static_cast<Instruction*>(value) : nullptr;
}

} // namespace cgpa::ir
