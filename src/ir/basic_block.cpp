#include "ir/basic_block.hpp"

#include "support/diag.hpp"

namespace cgpa::ir {

Instruction* BasicBlock::append(std::unique_ptr<Instruction> inst) {
  inst->setParent(this);
  instructions_.push_back(std::move(inst));
  return instructions_.back().get();
}

Instruction* BasicBlock::insertAt(int index, std::unique_ptr<Instruction> inst) {
  CGPA_ASSERT(index >= 0 && index <= size(), "insertAt index out of range");
  inst->setParent(this);
  Instruction* raw = inst.get();
  instructions_.insert(instructions_.begin() + index, std::move(inst));
  return raw;
}

void BasicBlock::eraseAt(int index) {
  CGPA_ASSERT(index >= 0 && index < size(), "eraseAt index out of range");
  instructions_.erase(instructions_.begin() + index);
}

int BasicBlock::indexOf(const Instruction* inst) const {
  for (int i = 0; i < size(); ++i)
    if (instructions_[static_cast<std::size_t>(i)].get() == inst)
      return i;
  return -1;
}

Instruction* BasicBlock::terminator() const {
  if (instructions_.empty())
    return nullptr;
  Instruction* last = instructions_.back().get();
  return last->isTerminator() ? last : nullptr;
}

std::vector<BasicBlock*> BasicBlock::successors() const {
  const Instruction* term = terminator();
  if (term == nullptr)
    return {};
  return {term->successors().begin(), term->successors().end()};
}

} // namespace cgpa::ir
