#include "ir/value.hpp"

// Value is header-only today; this translation unit anchors the vtable.

namespace cgpa::ir {} // namespace cgpa::ir
