// Textual form of the CGPA IR. The format round-trips through the parser
// (see parser.hpp) and is used by tests, examples, and debugging dumps.
//
// Shape of the text:
//
//   module "em3d"
//   region "nodes" shape=list elem=40 readonly=0 next=0 ptrfield 24 -> "from"
//   func @kernel(%nodelist:ptr region="nodes", %n:i32) -> i32 {
//   entry:
//     br -> %header
//   header:
//     %node:ptr = phi [%nodelist from %entry], [%next from %latch]
//     %cond:i1 = icmp !pred=eq %node, null
//     condbr %cond -> %exit, %body
//   ...
//   }
//
// Operands are `%name`, integer literals `42:i32`, float literals
// `3.5:f64`, or `null`. Opcode immediates print as `!a=` / `!b=`,
// comparison predicates as `!pred=`, intrinsics as `!intr=`.
#pragma once

#include <string>

#include "ir/module.hpp"

namespace cgpa::ir {

/// Print a whole module (regions + all functions).
std::string printModule(const Module& module);

/// Print one function. Instruction result names are uniqued on the fly, so
/// the output always parses back.
std::string printFunction(const Function& function);

} // namespace cgpa::ir
