// Module: top-level IR container — functions, a deduplicated constant pool,
// and the memory-region table consumed by the region/shape alias analysis.
//
// Regions are this framework's stand-in for the allocation-site and shape
// information (Ghiya–Hendren style) the paper's LLVM-based alias analyses
// infer. A kernel's workload generator lays out each logical data structure
// (a linked list, an array of points, an image) in a distinct region and
// declares its shape; the alias analysis then proves exactly the facts CGPA
// needs: distinct regions never alias, and traversals of an acyclic list
// visit pairwise-distinct nodes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/function.hpp"
#include "ir/value.hpp"

namespace cgpa::ir {

enum class RegionShape {
  Array,       ///< Contiguous array of `elemSize`-byte elements.
  AcyclicList, ///< Singly/doubly linked list of distinct `elemSize`-byte
               ///< nodes; `nextOffset` holds the forward link.
};

/// A pointer-typed field inside a region's element and the region its
/// values point into (e.g. em3d's `from_nodes` entries point into the other
/// linked list's region).
struct RegionPointerField {
  std::int64_t offset = 0;
  int targetRegion = -1;
};

struct Region {
  int id = -1;
  std::string name;
  RegionShape shape = RegionShape::Array;
  std::int64_t elemSize = 0;
  /// True if the targeted loop only ever reads this region. Read-only
  /// regions generate no memory-dependence edges at all.
  bool readOnly = false;
  /// AcyclicList only: byte offset of the intra-region `next` pointer.
  std::int64_t nextOffset = -1;
  /// Array-of-pointers regions: the region every element points into
  /// (e.g. em3d's from_nodes arrays point into the other node list), or -1.
  int elemPointerTarget = -1;
  std::vector<RegionPointerField> pointerFields;

  const RegionPointerField* fieldAt(std::int64_t offset) const {
    for (const RegionPointerField& field : pointerFields)
      if (field.offset == offset)
        return &field;
    return nullptr;
  }
};

class Module {
public:
  explicit Module(std::string name) : name_(std::move(name)) {}

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }

  // Functions.
  Function* addFunction(std::string name, Type returnType);
  Function* findFunction(const std::string& name) const;
  const std::vector<std::unique_ptr<Function>>& functions() const {
    return functions_;
  }

  // Constants (deduplicated by type + bit pattern).
  Constant* constInt(Type type, std::int64_t value);
  Constant* constFloat(Type type, double value);
  Constant* nullPtr() { return constInt(Type::Ptr, 0); }
  Constant* constBool(bool value) { return constInt(Type::I1, value ? 1 : 0); }

  // Regions. Stored by pointer so Region* stays stable across addRegion.
  Region* addRegion(std::string name, RegionShape shape, std::int64_t elemSize);
  const std::vector<std::unique_ptr<Region>>& regions() const {
    return regions_;
  }
  Region* region(int id) const {
    return id >= 0 && id < static_cast<int>(regions_.size())
               ? regions_[static_cast<std::size_t>(id)].get()
               : nullptr;
  }
  Region* findRegion(const std::string& name);

private:
  std::string name_;
  std::vector<std::unique_ptr<Function>> functions_;
  std::vector<std::unique_ptr<Constant>> constants_;
  std::vector<std::unique_ptr<Region>> regions_;
};

} // namespace cgpa::ir
