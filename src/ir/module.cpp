#include "ir/module.hpp"

#include <cstring>

#include "support/diag.hpp"

namespace cgpa::ir {

Function* Module::addFunction(std::string name, Type returnType) {
  CGPA_ASSERT(findFunction(name) == nullptr,
              "duplicate function name: " + name);
  functions_.push_back(
      std::make_unique<Function>(std::move(name), returnType, this));
  return functions_.back().get();
}

Function* Module::findFunction(const std::string& name) const {
  for (const auto& fn : functions_)
    if (fn->name() == name)
      return fn.get();
  return nullptr;
}

Constant* Module::constInt(Type type, std::int64_t value) {
  CGPA_ASSERT(isIntType(type) || type == Type::Ptr,
              "constInt requires integer or pointer type");
  for (const auto& c : constants_)
    if (c->type() == type && !isFloatType(type) && c->intValue() == value)
      return c.get();
  constants_.push_back(std::make_unique<Constant>(type, value));
  return constants_.back().get();
}

Constant* Module::constFloat(Type type, double value) {
  CGPA_ASSERT(isFloatType(type), "constFloat requires float type");
  for (const auto& c : constants_) {
    if (c->type() != type)
      continue;
    // Compare bit patterns so 0.0 / -0.0 stay distinct and NaN dedups.
    double existing = c->floatValue();
    if (std::memcmp(&existing, &value, sizeof value) == 0)
      return c.get();
  }
  constants_.push_back(std::make_unique<Constant>(type, value));
  return constants_.back().get();
}

Region* Module::addRegion(std::string name, RegionShape shape,
                          std::int64_t elemSize) {
  auto region = std::make_unique<Region>();
  region->id = static_cast<int>(regions_.size());
  region->name = std::move(name);
  region->shape = shape;
  region->elemSize = elemSize;
  regions_.push_back(std::move(region));
  return regions_.back().get();
}

Region* Module::findRegion(const std::string& name) {
  for (const auto& region : regions_)
    if (region->name == name)
      return region.get();
  return nullptr;
}

} // namespace cgpa::ir
