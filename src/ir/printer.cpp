#include "ir/printer.hpp"

#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "support/diag.hpp"

namespace cgpa::ir {

namespace {

/// Assigns stable, unique textual names to every value and block in a
/// function, preferring user-provided names.
class NameTable {
public:
  explicit NameTable(const Function& function) {
    for (const auto& arg : function.arguments())
      assign(arg.get(), arg->name());
    for (const auto& block : function.blocks()) {
      assignBlock(block.get(), block->name());
      for (const auto& inst : block->instructions())
        if (inst->type() != Type::Void)
          assign(inst.get(), inst->name());
    }
  }

  std::string valueName(const Value* value) const {
    const auto it = names_.find(value);
    CGPA_ASSERT(it != names_.end(), "printer: value has no name");
    return it->second;
  }

  std::string blockName(const BasicBlock* block) const {
    const auto it = blockNames_.find(block);
    CGPA_ASSERT(it != blockNames_.end(), "printer: block has no name");
    return it->second;
  }

private:
  void assign(const Value* value, const std::string& hint) {
    names_[value] = unique(hint.empty() ? "t" : hint, used_);
  }
  void assignBlock(const BasicBlock* block, const std::string& hint) {
    blockNames_[block] = unique(hint.empty() ? "bb" : hint, usedBlocks_);
  }
  static std::string unique(const std::string& hint,
                            std::unordered_set<std::string>& used) {
    std::string candidate = hint;
    int suffix = 1;
    while (used.count(candidate) != 0)
      candidate = hint + "." + std::to_string(suffix++);
    used.insert(candidate);
    return candidate;
  }

  std::unordered_map<const Value*, std::string> names_;
  std::unordered_map<const BasicBlock*, std::string> blockNames_;
  std::unordered_set<std::string> used_;
  std::unordered_set<std::string> usedBlocks_;
};

std::string formatFloatExact(double value) {
  // %.17g preserves the exact double through a round-trip.
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  std::string text = buffer;
  // Ensure the literal is recognizably floating point.
  if (text.find_first_of(".eEnN") == std::string::npos)
    text += ".0";
  return text;
}

std::string operandText(const Value* value, const NameTable& names) {
  if (const Constant* constant = asConstant(value)) {
    if (constant->type() == Type::Ptr && constant->intValue() == 0)
      return "null";
    if (isFloatType(constant->type()))
      return formatFloatExact(constant->floatValue()) + ":" +
             std::string(typeName(constant->type()));
    return std::to_string(constant->intValue()) + ":" +
           std::string(typeName(constant->type()));
  }
  std::string text = names.valueName(value);
  text.insert(text.begin(), '%');
  return text;
}

void printInstruction(std::ostringstream& out, const Instruction& inst,
                      const NameTable& names) {
  out << "  ";
  if (inst.type() != Type::Void)
    out << "%" << names.valueName(&inst) << ":" << typeName(inst.type())
        << " = ";
  out << opcodeName(inst.opcode());

  switch (inst.opcode()) {
  case Opcode::ICmp:
  case Opcode::FCmp:
    out << " !pred=" << cmpPredName(inst.cmpPred());
    break;
  case Opcode::Call:
    out << " !intr=" << intrinsicName(inst.intrinsic());
    break;
  case Opcode::Gep:
  case Opcode::Produce:
  case Opcode::ProduceBroadcast:
  case Opcode::Consume:
  case Opcode::ParallelFork:
  case Opcode::ParallelJoin:
  case Opcode::StoreLiveout:
  case Opcode::RetrieveLiveout:
    out << " !a=" << inst.immA() << " !b=" << inst.immB();
    break;
  default:
    break;
  }

  if (inst.opcode() == Opcode::Phi) {
    for (int i = 0; i < inst.numOperands(); ++i) {
      out << (i == 0 ? " " : ", ");
      out << "[" << operandText(inst.operand(i), names) << " from %"
          << names.blockName(inst.incomingBlocks()[static_cast<std::size_t>(i)])
          << "]";
    }
    out << "\n";
    return;
  }

  for (int i = 0; i < inst.numOperands(); ++i)
    out << (i == 0 ? " " : ", ") << operandText(inst.operand(i), names);

  if (!inst.successors().empty()) {
    out << " ->";
    bool first = true;
    for (const BasicBlock* succ : inst.successors()) {
      out << (first ? " %" : ", %") << names.blockName(succ);
      first = false;
    }
  }
  out << "\n";
}

void printRegion(std::ostringstream& out, const Region& region) {
  out << "region \"" << region.name << "\" shape="
      << (region.shape == RegionShape::Array ? "array" : "list")
      << " elem=" << region.elemSize << " readonly=" << (region.readOnly ? 1 : 0)
      << " next=" << region.nextOffset << " elemptr=" << region.elemPointerTarget;
  for (const RegionPointerField& field : region.pointerFields)
    out << " ptrfield " << field.offset << " -> " << field.targetRegion;
  out << "\n";
}

void printFunctionInto(std::ostringstream& out, const Function& function) {
  const NameTable names(function);
  out << "func @" << function.name() << "(";
  for (int i = 0; i < function.numArguments(); ++i) {
    const Argument* arg = function.argument(i);
    if (i > 0)
      out << ", ";
    out << "%" << names.valueName(arg) << ":" << typeName(arg->type());
    if (arg->regionId() >= 0)
      out << " region=" << arg->regionId();
  }
  out << ") -> " << typeName(function.returnType()) << " {\n";
  for (const auto& block : function.blocks()) {
    out << names.blockName(block.get()) << ":\n";
    for (const auto& inst : block->instructions())
      printInstruction(out, *inst, names);
  }
  out << "}\n";
}

} // namespace

std::string printFunction(const Function& function) {
  std::ostringstream out;
  printFunctionInto(out, function);
  return out.str();
}

std::string printModule(const Module& module) {
  std::ostringstream out;
  out << "module \"" << module.name() << "\"\n";
  for (const auto& region : module.regions())
    printRegion(out, *region);
  for (const auto& function : module.functions()) {
    out << "\n";
    printFunctionInto(out, *function);
  }
  return out.str();
}

} // namespace cgpa::ir
