// Scalar type system for the CGPA IR.
//
// The IR deliberately uses a small closed set of scalar types: the CGPA
// passes (PDG construction, pipeline partitioning, FSM scheduling) only need
// value widths and float-ness, and the five evaluation kernels use nothing
// else. Aggregates are expressed through explicit address arithmetic (Gep),
// exactly as LLVM lowers them before the CGPA passes run.
#pragma once

#include <string_view>

namespace cgpa::ir {

enum class Type {
  Void, ///< No value (stores, branches, produce, ...).
  I1,   ///< Boolean / branch condition.
  I32,  ///< 32-bit signed integer.
  I64,  ///< 64-bit signed integer.
  F32,  ///< IEEE single.
  F64,  ///< IEEE double.
  Ptr,  ///< Hardware pointer. 32 bits wide on the target (32-bit system),
        ///< though simulator addresses are stored in 64-bit registers.
};

/// Width of a value of this type in hardware bits (Ptr = 32).
int typeBits(Type type);

/// Bytes occupied in memory by a value of this type (Ptr = 4).
int typeBytes(Type type);

/// True for F32/F64.
bool isFloatType(Type type);

/// True for I1/I32/I64.
bool isIntType(Type type);

/// Printable name ("i32", "f64", ...).
std::string_view typeName(Type type);

/// Inverse of typeName; aborts on unknown names.
Type typeFromName(std::string_view name);

} // namespace cgpa::ir
