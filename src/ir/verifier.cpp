#include "ir/verifier.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace cgpa::ir {

namespace {

std::string describe(const Instruction& inst) {
  std::string text(opcodeName(inst.opcode()));
  if (!inst.name().empty())
    text += " %" + inst.name();
  if (inst.parent() != nullptr)
    text += " in block " + inst.parent()->name();
  return text;
}

/// Simple iterative dominator computation (dense bitvector over block
/// indices). The verifier keeps its own copy rather than depending on the
/// analysis library so that `ir` stays the bottom layer.
class SimpleDominators {
public:
  explicit SimpleDominators(const Function& function) {
    const auto& blocks = function.blocks();
    const std::size_t n = blocks.size();
    for (std::size_t i = 0; i < n; ++i)
      index_[blocks[i].get()] = i;

    std::vector<std::vector<std::size_t>> preds(n);
    for (std::size_t i = 0; i < n; ++i)
      for (const BasicBlock* succ : blocks[i]->successors())
        preds[index_.at(succ)].push_back(i);

    dom_.assign(n, std::vector<bool>(n, true));
    if (n == 0)
      return;
    dom_[0].assign(n, false);
    dom_[0][0] = true;

    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t b = 1; b < n; ++b) {
        std::vector<bool> next(n, true);
        if (preds[b].empty()) {
          // Unreachable block: dominated only by itself.
          next.assign(n, false);
        } else {
          for (std::size_t p : preds[b])
            for (std::size_t i = 0; i < n; ++i)
              next[i] = next[i] && dom_[p][i];
        }
        next[b] = true;
        if (next != dom_[b]) {
          dom_[b] = std::move(next);
          changed = true;
        }
      }
    }
  }

  bool dominates(const BasicBlock* a, const BasicBlock* b) const {
    return dom_[index_.at(b)][index_.at(a)];
  }

private:
  std::unordered_map<const BasicBlock*, std::size_t> index_;
  std::vector<std::vector<bool>> dom_;
};

/// Does the definition of `def` dominate the use at `user` (operand slot
/// semantics: phi uses are checked at the incoming block's end)?
bool defDominatesUse(const SimpleDominators& doms, const Instruction* def,
                     const Instruction* user, const BasicBlock* useBlock) {
  const BasicBlock* defBlock = def->parent();
  if (user->opcode() == Opcode::Phi) {
    // A phi use occurs at the *end* of the incoming block (useBlock), so a
    // def anywhere in that block — including after the phi itself when the
    // loop is a single block — is fine.
    return defBlock == useBlock || doms.dominates(defBlock, useBlock);
  }
  if (defBlock != useBlock)
    return doms.dominates(defBlock, useBlock);
  return defBlock->indexOf(def) < useBlock->indexOf(user);
}

std::string checkOperandShapes(const Instruction& inst, Type returnType) {
  const Opcode op = inst.opcode();
  const int n = inst.numOperands();
  auto need = [&](int count) -> std::string {
    if (n != count)
      return "bad operand count for " + describe(inst);
    return "";
  };

  // Primitive immediates index channel/liveout tables; a negative id is
  // always a construction bug.
  switch (op) {
  case Opcode::Produce:
  case Opcode::ProduceBroadcast:
  case Opcode::Consume:
    if (inst.channelId() < 0)
      return "negative channel id on " + describe(inst);
    break;
  case Opcode::ParallelFork:
    if (inst.loopId() < 0 || inst.taskIndex() < 0)
      return "negative loop/task id on " + describe(inst);
    break;
  case Opcode::ParallelJoin:
    if (inst.loopId() < 0)
      return "negative loop id on " + describe(inst);
    break;
  case Opcode::StoreLiveout:
  case Opcode::RetrieveLiveout:
    if (inst.loopId() < 0 || inst.liveoutId() < 0)
      return "negative loop/liveout id on " + describe(inst);
    break;
  default:
    break;
  }

  switch (op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::SDiv:
  case Opcode::SRem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::LShr:
  case Opcode::AShr: {
    if (auto err = need(2); !err.empty())
      return err;
    if (!isIntType(inst.type()) || inst.operand(0)->type() != inst.type() ||
        inst.operand(1)->type() != inst.type())
      return "integer binary op type mismatch: " + describe(inst);
    return "";
  }
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv: {
    if (auto err = need(2); !err.empty())
      return err;
    if (!isFloatType(inst.type()) || inst.operand(0)->type() != inst.type() ||
        inst.operand(1)->type() != inst.type())
      return "float binary op type mismatch: " + describe(inst);
    return "";
  }
  case Opcode::ICmp:
  case Opcode::FCmp: {
    if (auto err = need(2); !err.empty())
      return err;
    if (inst.type() != Type::I1)
      return "cmp result must be i1: " + describe(inst);
    if (inst.operand(0)->type() != inst.operand(1)->type())
      return "cmp operand mismatch: " + describe(inst);
    return "";
  }
  case Opcode::Trunc:
  case Opcode::SExt:
  case Opcode::ZExt:
  case Opcode::SIToFP:
  case Opcode::FPToSI:
  case Opcode::FPExt:
  case Opcode::FPTrunc:
  case Opcode::PtrToInt:
  case Opcode::IntToPtr:
    return need(1);
  case Opcode::Load: {
    if (auto err = need(1); !err.empty())
      return err;
    if (inst.operand(0)->type() != Type::Ptr)
      return "load address must be ptr: " + describe(inst);
    if (inst.type() == Type::Void)
      return "load must produce a value: " + describe(inst);
    return "";
  }
  case Opcode::Store: {
    if (auto err = need(2); !err.empty())
      return err;
    if (inst.operand(1)->type() != Type::Ptr)
      return "store address must be ptr: " + describe(inst);
    return "";
  }
  case Opcode::Gep: {
    if (n != 1 && n != 2)
      return "gep takes base [, index]: " + describe(inst);
    if (inst.operand(0)->type() != Type::Ptr || inst.type() != Type::Ptr)
      return "gep base/result must be ptr: " + describe(inst);
    if (n == 2 && !isIntType(inst.operand(1)->type()))
      return "gep index must be integer: " + describe(inst);
    return "";
  }
  case Opcode::Select: {
    if (auto err = need(3); !err.empty())
      return err;
    if (inst.operand(0)->type() != Type::I1)
      return "select condition must be i1: " + describe(inst);
    if (inst.operand(1)->type() != inst.type() ||
        inst.operand(2)->type() != inst.type())
      return "select arm type mismatch: " + describe(inst);
    return "";
  }
  case Opcode::Phi: {
    if (n == 0)
      return "phi with no incoming values: " + describe(inst);
    if (static_cast<int>(inst.incomingBlocks().size()) != n)
      return "phi incoming-block list mismatch: " + describe(inst);
    for (int i = 0; i < n; ++i)
      if (inst.operand(i)->type() != inst.type())
        return "phi incoming type mismatch: " + describe(inst);
    return "";
  }
  case Opcode::Call:
    return "";
  case Opcode::Br:
    if (inst.successors().size() != 1)
      return "br needs exactly one successor: " + describe(inst);
    return need(0);
  case Opcode::CondBr: {
    if (auto err = need(1); !err.empty())
      return err;
    if (inst.operand(0)->type() != Type::I1)
      return "condbr condition must be i1: " + describe(inst);
    if (inst.successors().size() != 2)
      return "condbr needs two successors: " + describe(inst);
    return "";
  }
  case Opcode::Ret: {
    if (returnType == Type::Void)
      return need(0);
    if (auto err = need(1); !err.empty())
      return err;
    if (inst.operand(0)->type() != returnType)
      return "ret value type mismatch: " + describe(inst);
    return "";
  }
  case Opcode::Produce: {
    if (auto err = need(2); !err.empty())
      return err;
    if (!isIntType(inst.operand(0)->type()))
      return "produce lane must be integer: " + describe(inst);
    return "";
  }
  case Opcode::ProduceBroadcast:
    return need(1);
  case Opcode::Consume: {
    if (auto err = need(1); !err.empty())
      return err;
    if (inst.type() == Type::Void)
      return "consume must produce a value: " + describe(inst);
    return "";
  }
  case Opcode::ParallelFork:
    return "";
  case Opcode::ParallelJoin:
    return need(0);
  case Opcode::StoreLiveout:
    return need(1);
  case Opcode::RetrieveLiveout: {
    if (auto err = need(0); !err.empty())
      return err;
    if (inst.type() == Type::Void)
      return "retrieve_liveout must produce a value: " + describe(inst);
    return "";
  }
  }
  return "unknown opcode";
}

} // namespace

std::string verifyFunction(const Function& function) {
  if (function.blocks().empty())
    return "function @" + function.name() + " has no blocks";

  std::unordered_set<const BasicBlock*> owned;
  for (const auto& block : function.blocks())
    owned.insert(block.get());

  // Structural checks.
  for (const auto& block : function.blocks()) {
    if (block->empty())
      return "empty block " + block->name();
    for (int i = 0; i < block->size(); ++i) {
      const Instruction* inst = block->instruction(i);
      if (inst->parent() != block.get())
        return "parent link broken for " + describe(*inst) + " (listed in " +
               block->name() + ")";
      // Null operands would crash every later check; diagnose them first.
      for (int o = 0; o < inst->numOperands(); ++o)
        if (inst->operand(o) == nullptr)
          return "null operand " + std::to_string(o) + " on " +
                 describe(*inst);
      const bool last = i == block->size() - 1;
      if (inst->isTerminator() != last)
        return last ? "block " + block->name() + " lacks a terminator"
                    : "terminator mid-block in " + block->name();
      if (inst->opcode() == Opcode::Phi && i > 0 &&
          block->instruction(i - 1)->opcode() != Opcode::Phi)
        return "phi after non-phi in " + block->name();
      if (inst->opcode() == Opcode::Phi && block.get() == function.entry())
        return "phi in entry block: " + describe(*inst);
      if (!inst->successors().empty() && inst->opcode() != Opcode::Br &&
          inst->opcode() != Opcode::CondBr)
        return "successors on non-branch: " + describe(*inst);
      for (const BasicBlock* succ : inst->successors()) {
        if (succ == nullptr)
          return "null successor on " + describe(*inst);
        if (owned.count(succ) == 0)
          return "dangling branch target (block not in function): " +
                 describe(*inst);
      }
      if (auto err = checkOperandShapes(*inst, function.returnType());
          !err.empty())
        return err;
    }
  }

  // Phi incoming blocks must exactly match predecessors.
  for (const auto& block : function.blocks()) {
    std::vector<BasicBlock*> preds = function.predecessorsOf(block.get());
    std::sort(preds.begin(), preds.end());
    for (const auto& inst : block->instructions()) {
      if (inst->opcode() != Opcode::Phi)
        continue;
      std::vector<BasicBlock*> incoming(inst->incomingBlocks().begin(),
                                        inst->incomingBlocks().end());
      std::sort(incoming.begin(), incoming.end());
      if (incoming != preds)
        return "phi incoming blocks do not match predecessors: " +
               describe(*inst);
    }
  }

  // SSA dominance.
  const SimpleDominators doms(function);
  for (const auto& block : function.blocks()) {
    for (const auto& inst : block->instructions()) {
      for (int i = 0; i < inst->numOperands(); ++i) {
        const Instruction* def = asInstruction(inst->operand(i));
        if (def == nullptr)
          continue;
        const BasicBlock* useBlock =
            inst->opcode() == Opcode::Phi
                ? inst->incomingBlocks()[static_cast<std::size_t>(i)]
                : block.get();
        if (def->parent() == nullptr || owned.count(def->parent()) == 0)
          return "operand defined outside function: " + describe(*inst);
        if (!defDominatesUse(doms, def, inst.get(), useBlock))
          return "use not dominated by def of %" + def->name() + ": " +
                 describe(*inst);
      }
    }
  }

  return "";
}

std::string verifyModule(const Module& module) {
  for (const auto& function : module.functions())
    if (auto err = verifyFunction(*function); !err.empty())
      return "in @" + function->name() + ": " + err;
  return "";
}

Status verifyFunctionStatus(const Function& function) {
  if (auto err = verifyFunction(function); !err.empty())
    return Status::error(ErrorCode::VerifyError, std::move(err));
  return Status::success();
}

Status verifyModuleStatus(const Module& module) {
  if (auto err = verifyModule(module); !err.empty())
    return Status::error(ErrorCode::VerifyError, std::move(err));
  return Status::success();
}

} // namespace cgpa::ir
