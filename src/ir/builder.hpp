// IRBuilder: convenience API for constructing IR, used by the kernel
// library, the pipeline transform, and tests.
#pragma once

#include <string>

#include "ir/module.hpp"

namespace cgpa::ir {

class IRBuilder {
public:
  explicit IRBuilder(Module* module) : module_(module) {}

  Module* module() const { return module_; }

  void setInsertPoint(BasicBlock* block) { block_ = block; }
  BasicBlock* insertBlock() const { return block_; }

  // Integer / float arithmetic. Operand types must match; result has the
  // operand type.
  Value* add(Value* lhs, Value* rhs, std::string name = "");
  Value* sub(Value* lhs, Value* rhs, std::string name = "");
  Value* mul(Value* lhs, Value* rhs, std::string name = "");
  Value* sdiv(Value* lhs, Value* rhs, std::string name = "");
  Value* srem(Value* lhs, Value* rhs, std::string name = "");
  Value* bitAnd(Value* lhs, Value* rhs, std::string name = "");
  Value* bitOr(Value* lhs, Value* rhs, std::string name = "");
  Value* bitXor(Value* lhs, Value* rhs, std::string name = "");
  Value* shl(Value* lhs, Value* rhs, std::string name = "");
  Value* lshr(Value* lhs, Value* rhs, std::string name = "");
  Value* ashr(Value* lhs, Value* rhs, std::string name = "");
  Value* fadd(Value* lhs, Value* rhs, std::string name = "");
  Value* fsub(Value* lhs, Value* rhs, std::string name = "");
  Value* fmul(Value* lhs, Value* rhs, std::string name = "");
  Value* fdiv(Value* lhs, Value* rhs, std::string name = "");

  Value* icmp(CmpPred pred, Value* lhs, Value* rhs, std::string name = "");
  Value* fcmp(CmpPred pred, Value* lhs, Value* rhs, std::string name = "");

  Value* cast(Opcode op, Value* value, Type to, std::string name = "");
  Value* sitofp(Value* value, Type to, std::string name = "");

  Value* select(Value* cond, Value* ifTrue, Value* ifFalse,
                std::string name = "");

  // Memory. gep computes base + index * scale + offset; pass index =
  // nullptr for a constant-offset field access.
  Value* gep(Value* base, Value* index, std::int64_t scale,
             std::int64_t offset, std::string name = "");
  Value* load(Type type, Value* ptr, std::string name = "");
  void store(Value* value, Value* ptr);

  Instruction* phi(Type type, std::string name = "");

  Value* call(Intrinsic which, Type type, std::initializer_list<Value*> args,
              std::string name = "");

  // Control flow.
  void br(BasicBlock* target);
  void condBr(Value* cond, BasicBlock* ifTrue, BasicBlock* ifFalse);
  void ret(Value* value = nullptr);

  // CGPA primitives (paper Table 1).
  void produce(int channel, Value* lane, Value* value);
  void produceBroadcast(int channel, Value* value);
  Value* consume(int channel, Value* lane, Type type, std::string name = "");
  Instruction* parallelFork(int loopId, int taskIndex,
                            std::initializer_list<Value*> args);
  Instruction* parallelForkVec(int loopId, int taskIndex,
                               const std::vector<Value*>& args);
  void parallelJoin(int loopId);
  void storeLiveout(int loopId, int liveoutId, Value* value);
  Value* retrieveLiveout(int loopId, int liveoutId, Type type,
                         std::string name = "");

  // Constant shortcuts.
  Constant* i32(std::int64_t value) { return module_->constInt(Type::I32, value); }
  Constant* i64(std::int64_t value) { return module_->constInt(Type::I64, value); }
  Constant* f32(double value) { return module_->constFloat(Type::F32, value); }
  Constant* f64(double value) { return module_->constFloat(Type::F64, value); }
  Constant* boolean(bool value) { return module_->constBool(value); }
  Constant* nullPtr() { return module_->nullPtr(); }

private:
  Instruction* insert(Opcode op, Type type, std::string name);
  Value* binary(Opcode op, Value* lhs, Value* rhs, std::string name,
                bool wantFloat);

  Module* module_;
  BasicBlock* block_ = nullptr;
};

} // namespace cgpa::ir
