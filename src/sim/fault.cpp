#include "sim/fault.hpp"

namespace cgpa::sim {

FaultPlan FaultPlan::uniform(std::uint64_t seed, double prob) {
  FaultPlan plan;
  plan.seed = seed;
  plan.fifoStallProb = prob;
  plan.wakeDelayProb = prob;
  plan.cachePerturbProb = prob;
  return plan;
}

} // namespace cgpa::sim
