// System simulator: the wrapper co-processor plus the worker engines it
// forks, sharing the banked D-cache and the FIFO channel fabric — the
// dashed box of paper Figure 2.
#pragma once

#include <map>
#include <memory>
#include <string_view>

#include "pipeline/transform.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "support/status.hpp"
#include "trace/tracer.hpp"

namespace cgpa::sim {

namespace exec {
struct ThreadedProgram;
} // namespace exec

/// The single cycle-cap knob: every runner (cgpac --max-cycles, the fuzz
/// oracle, benches) derives its cap from this default unless overridden.
inline constexpr std::uint64_t kDefaultMaxCycles = 4'000'000'000ULL;

/// Execution tier of the cycle-level engines. Interp dispatches pre-decoded
/// MicroOps through the switch-based WorkerEngine (sim/engine.cpp);
/// Threaded lowers every ExecPlan once into threaded code and runs the
/// computed-goto dispatch core (sim/exec/threaded.hpp) — bit-identical
/// results, ~an order less dispatch overhead. Auto picks Threaded.
enum class SimBackend : std::uint8_t { Interp, Threaded, Auto };

/// "interp" / "threaded" / "auto" — the --sim-backend spelling.
const char* toString(SimBackend backend);
/// Parses a --sim-backend value into `out`; false on an unknown name.
bool parseSimBackend(std::string_view name, SimBackend& out);

struct SystemConfig {
  CacheConfig cache;
  int fifoDepth = 16;     ///< Entries per FIFO lane (paper: 16).
  int fifoWidthBits = 32; ///< FIFO width (paper: 32).
  hls::ScheduleOptions schedule;
  /// Execution tier; Auto resolves at SystemSimulator construction.
  SimBackend backend = SimBackend::Auto;
  double freqMHz = 200.0; ///< Target synthesis frequency (paper: 200 MHz).
  std::uint64_t maxCycles = kDefaultMaxCycles;
  /// Seeded timing-perturbation plan; default-disabled (zero overhead
  /// beyond a null-pointer branch on park/accept paths). See sim/fault.hpp.
  FaultPlan faults;
  /// TEST ONLY: skip the FIFO capacity clamp so a lane may be smaller
  /// than one value of its type — reproduces the depth-1 multi-flit
  /// deadlock against the forensics layer (tests/failure_paths_test.cpp).
  bool testOnlyNoCapacityClamp = false;
};

struct SimResult {
  std::uint64_t cycles = 0;
  std::uint64_t returnValue = 0;
  /// Execution tier that produced this run (never Auto — the resolved
  /// choice). Identical runs from both tiers differ only in this tag.
  SimBackend backend = SimBackend::Interp;
  CacheStats cache;
  /// Executed-operation counts summed over wrapper + all workers (activity
  /// for the power model).
  std::map<ir::Opcode, std::uint64_t> opCounts;
  std::uint64_t fifoPushes = 0;
  /// Total FIFO pops across all lanes; equals fifoPushes when every
  /// channel drained (asserted at parallel_join), so a mismatch in a
  /// partial/aborted run localizes the imbalance.
  std::uint64_t fifoPops = 0;
  /// Peak occupancy (flits) over every lane of every channel — the
  /// whole-fabric high-water mark next to the per-channel ones below.
  int fifoMaxOccupancyFlits = 0;
  std::uint64_t stallMem = 0;
  std::uint64_t stallFifo = 0;
  /// Full-vs-empty split of stallFifo (stallFifoFull + stallFifoEmpty ==
  /// stallFifo); per-channel slices live in channelStats and per-engine
  /// ones in engines[].stats.
  std::uint64_t stallFifoFull = 0;
  std::uint64_t stallFifoEmpty = 0;
  std::uint64_t stallDep = 0;
  /// Engine-cycles with / without forward progress, summed over wrapper +
  /// workers (a worker stalled for 10 cycles adds 10 to cyclesStalled).
  std::uint64_t cyclesActive = 0;
  std::uint64_t cyclesStalled = 0;
  /// Cycle-attribution ledger aggregates: cyclesBusy counts unblocked
  /// yields, cyclesIdle the engine-cycles outside each engine's live span
  /// (pre-spawn + post-retirement). Per engine,
  ///   busy + stallMem + stallFifoFull + stallFifoEmpty + stallDep + idle
  ///     == total run cycles
  /// — enforced by fuzz::invariants::checkSimResult.
  std::uint64_t cyclesBusy = 0;
  std::uint64_t cyclesIdle = 0;
  double dynamicEnergyPj = 0.0;
  int enginesSpawned = 0;
  /// Timing faults actually fired by SystemConfig::faults (0 when the plan
  /// is disabled). Faults perturb timing only, never values, so a faulted
  /// run must still produce golden-matching results.
  std::uint64_t faultsInjected = 0;
  interp::LiveoutFile liveouts;
  /// Per-channel push counts and high-water marks (flits), indexed by
  /// channel id.
  std::vector<ChannelSet::ChannelStats> channelStats;

  /// Per-engine breakdown (wrapper first, then workers in spawn order):
  /// which task each engine ran and its op/stall counters — the data
  /// behind per-stage utilization analyses.
  struct EngineSummary {
    int taskIndex = -1; ///< -1 for the wrapper.
    int stageIndex = -1;
    WorkerStats stats;
  };
  std::vector<EngineSummary> engines;

  double timeMicros(double freqMHz) const {
    return static_cast<double>(cycles) / freqMHz;
  }
};

/// Reusable system simulator: scheduling and MicroOp decoding of the
/// wrapper and every task (the ExecPlans) happen once, in the constructor;
/// each run() then simulates one wrapper invocation against a fresh cache,
/// FIFO fabric, and engine set. Amortizes plan construction when the same
/// accelerator is simulated across many workloads (sweeps, benchmarks).
class SystemSimulator {
public:
  SystemSimulator(const pipeline::PipelineModule& pipeline,
                  const SystemConfig& config);
  ~SystemSimulator();
  SystemSimulator(const SystemSimulator&) = delete;
  SystemSimulator& operator=(const SystemSimulator&) = delete;

  /// Simulate one wrapper invocation over `memory`/`args`. `tracer`
  /// (optional) observes the run cycle by cycle — see trace/tracer.hpp;
  /// tracing never changes simulated behavior or cycle counts.
  ///
  /// Recoverable failures (deadlock, cycle-cap) come back as a Status with
  /// code SimDeadlock / CycleCapExceeded carrying a DeadlockReport detail
  /// (sim/deadlock.hpp) — the run never aborts the process.
  Expected<SimResult> runChecked(interp::Memory& memory,
                                 std::span<const std::uint64_t> args,
                                 Tracer* tracer = nullptr);

  /// Legacy aborting wrapper over runChecked(): fatal-errors on any
  /// failure Status. Prefer runChecked in new code.
  SimResult run(interp::Memory& memory, std::span<const std::uint64_t> args,
                Tracer* tracer = nullptr);

  /// The resolved execution tier (config Auto already collapsed).
  SimBackend backend() const { return backend_; }

private:
  const pipeline::PipelineModule* pipeline_;
  SystemConfig config_;
  SimBackend backend_ = SimBackend::Interp;
  std::unique_ptr<ExecPlan> wrapperPlan_;
  std::vector<std::unique_ptr<ExecPlan>> taskPlans_;
  /// Raw-pointer view of taskPlans_ for the engine-templated runner.
  std::vector<const ExecPlan*> taskPlanPtrs_;
  /// Threaded-tier lowering of the plans above; built only when the
  /// resolved backend is Threaded (construction is one pass per plan).
  std::unique_ptr<exec::ThreadedProgram> wrapperCode_;
  std::vector<std::unique_ptr<exec::ThreadedProgram>> taskCodes_;
  std::vector<const exec::ThreadedProgram*> taskCodePtrs_;
};

/// Simulate the full accelerator system for one wrapper invocation.
/// Schedules every function internally with `config.schedule`; one-shot
/// convenience over SystemSimulator. Failure Statuses as runChecked.
Expected<SimResult> simulateSystemChecked(
    const pipeline::PipelineModule& pipeline, interp::Memory& memory,
    std::span<const std::uint64_t> args, const SystemConfig& config,
    Tracer* tracer = nullptr);

/// Legacy aborting wrapper over simulateSystemChecked().
SimResult simulateSystem(const pipeline::PipelineModule& pipeline,
                         interp::Memory& memory,
                         std::span<const std::uint64_t> args,
                         const SystemConfig& config,
                         Tracer* tracer = nullptr);

} // namespace cgpa::sim
