// System simulator: the wrapper co-processor plus the worker engines it
// forks, sharing the banked D-cache and the FIFO channel fabric — the
// dashed box of paper Figure 2.
#pragma once

#include <map>
#include <memory>

#include "pipeline/transform.hpp"
#include "sim/engine.hpp"

namespace cgpa::sim {

struct SystemConfig {
  CacheConfig cache;
  int fifoDepth = 16;     ///< Entries per FIFO lane (paper: 16).
  int fifoWidthBits = 32; ///< FIFO width (paper: 32).
  hls::ScheduleOptions schedule;
  double freqMHz = 200.0; ///< Target synthesis frequency (paper: 200 MHz).
  std::uint64_t maxCycles = 4'000'000'000ULL;
};

struct SimResult {
  std::uint64_t cycles = 0;
  std::uint64_t returnValue = 0;
  CacheStats cache;
  /// Executed-operation counts summed over wrapper + all workers (activity
  /// for the power model).
  std::map<ir::Opcode, std::uint64_t> opCounts;
  std::uint64_t fifoPushes = 0;
  std::uint64_t stallMem = 0;
  std::uint64_t stallFifo = 0;
  std::uint64_t stallDep = 0;
  double dynamicEnergyPj = 0.0;
  int enginesSpawned = 0;
  interp::LiveoutFile liveouts;
  /// Per-channel push counts and high-water marks (flits), indexed by
  /// channel id.
  std::vector<ChannelSet::ChannelStats> channelStats;

  /// Per-engine breakdown (wrapper first, then workers in spawn order):
  /// which task each engine ran and its op/stall counters — the data
  /// behind per-stage utilization analyses.
  struct EngineSummary {
    int taskIndex = -1; ///< -1 for the wrapper.
    int stageIndex = -1;
    WorkerStats stats;
  };
  std::vector<EngineSummary> engines;

  double timeMicros(double freqMHz) const {
    return static_cast<double>(cycles) / freqMHz;
  }
};

/// Simulate the full accelerator system for one wrapper invocation.
/// Schedules every function internally with `config.schedule`.
SimResult simulateSystem(const pipeline::PipelineModule& pipeline,
                         interp::Memory& memory,
                         std::span<const std::uint64_t> args,
                         const SystemConfig& config);

} // namespace cgpa::sim
