// Threaded-code execution tier for the cycle-level simulator.
//
// The interpreting WorkerEngine (sim/engine.cpp) re-decides everything on
// every issue: it loops over every operand's readiness word, then pushes
// the MicroOp through one big opcode switch. This tier lowers each
// ExecPlan once, at SystemSimulator construction, into a threaded-code
// stream (ThreadedProgram): one XOp per issue with
//
//   - a direct handler address (computed goto on GCC/Clang; a portable
//     switch dispatch otherwise — select with -DCGPA_THREADED_FORCE_SWITCH),
//   - the opcode's evaluation kernel specialized into the handler
//     ("eval+latch" fusion: evaluate and latch the result register in one
//     dispatch, per-predicate for compares),
//   - the operand readiness checks *statically elided* wherever the
//     schedule proves the producer ready (see ThreadedProgram), and
//   - superinstruction fusion of the dominant adjacent pairs:
//     gep+load ("load+addr-gen") and icmp+condbr ("cmp+branch").
//
// The tier shares the engine's register-file / FIFO / cache state machine:
// every architectural step (issue order, stall accounting, wakeup
// prediction, phi latching) mirrors WorkerEngine::step exactly, so a
// ThreadedEngine run is bit-identical to the interpreter tier in cycles,
// liveouts, memory, per-address store order, op counts, and energy. The
// PR-3 differential oracle pins this: its fifth leg re-runs every fuzz
// config under this tier and diffs against the interpreting leg.
//
// Readiness elision argument (why skipping the check cannot diverge):
// an operand's readiness word only matters if it can exceed `now` at the
// consumer's issue. That requires the producer to still be in flight,
// which the lowering rules out statically for
//   - arguments, constants, and phi results (ready at 0 / on block entry),
//   - zero-latency producers (ready the cycle they issue; SSA dominance
//     puts that issue at or before the consumer's),
//   - same-block producers whose FSM state distance covers their latency
//     (the scheduler's data-dependence constraint, re-derived here from
//     the actual schedule rather than assumed).
// Everything else — load results (cache latency is dynamic) and
// cross-block multi-cycle producers — keeps a runtime check, over exactly
// the subset whose readiness the interpreter could see as not-ready, so
// blocked wake-up cycles also match bit-for-bit.
#pragma once

#include "sim/engine.hpp"

#if !defined(CGPA_THREADED_FORCE_SWITCH) && \
    (defined(__GNUC__) || defined(__clang__))
#define CGPA_THREADED_COMPUTED_GOTO 1
#else
#define CGPA_THREADED_COMPUTED_GOTO 0
#endif

namespace cgpa::sim::exec {

struct XBlock;

/// Dispatch kinds of the threaded stream. Every kind has both a computed
/// goto label and a switch case; the lowering stores the label address in
/// XOp::handler, the kind drives the portable fallback (and debugging).
enum class XKind : std::uint8_t {
  EndState, ///< FSM state boundary: account the cycle and yield.
  EndBlock, ///< Block boundary: ret / phi-readiness check / block entry.
  // Specialized integer binaries (eval+latch fused).
  Add,
  Sub,
  Mul,
  And,
  Or,
  Xor,
  Shl,
  LShr,
  AShr,
  SDiv,
  SRem,
  // Per-predicate integer compares.
  ICmpEQ,
  ICmpNE,
  ICmpSLT,
  ICmpSLE,
  ICmpSGT,
  ICmpSGE,
  // Float arithmetic / compare (type read from the XOp).
  FAdd,
  FSub,
  FMul,
  FDiv,
  FCmp,
  Cast, ///< All conversion opcodes via interp::evalCast.
  Gep,
  Select,
  Load,
  Store,
  Produce,
  ProduceBroadcast,
  Consume,
  Fork,
  Join,
  StoreLiveout,
  RetrieveLiveout,
  Br,
  CondBr,
  Ret,
  Call,
  // Superinstructions.
  GepLoad, ///< Address generation fused with the dependent load.
  CmpBr,   ///< Integer compare fused with the conditional branch on it.
  kCount
};

inline constexpr int kNumXKinds = static_cast<int>(XKind::kCount);

/// Pre-resolved phi latches of one CFG edge, in threaded form: the latch
/// pairs plus the subset of source slots whose readiness must still be
/// checked at block entry (sources fed by loads or in-flight multi-cycle
/// producers; all other sources are statically ready).
struct XPhiEdge {
  const XBlock* pred = nullptr;
  std::vector<std::pair<std::int32_t, std::int32_t>> latches;
  std::vector<std::int32_t> checkedSrcs;
};

/// One threaded-code operation. Wider than a MicroOp because fused pairs
/// carry both halves, but the stream is walked strictly forward and each
/// handler touches only the fields it decoded at lowering time.
struct XOp {
  const void* handler = nullptr; ///< Computed-goto label address.
  XKind kind = XKind::EndState;
  std::uint8_t numChecked = 0; ///< Operands needing runtime readiness.
  std::uint8_t numOps = 0;     ///< Full operand count (wake fallback).
  std::uint8_t aux = 0;        ///< Gep/GepLoad: has an index operand.
  /// This op closes its FSM state: the cycle ends right after it, without
  /// a separate EndState dispatch (the boundary is folded into the op's
  /// dispatch tail; explicit EndState ops remain only for empty states).
  std::uint8_t endsState = 0;
  std::int32_t dst = -1;       ///< Result slot (primary op).
  std::int32_t a = -1;         ///< Operand slots (up to three inline).
  std::int32_t b = -1;
  std::int32_t c = -1;
  std::uint32_t latency = 0; ///< Result latency of the primary op.
  ir::Opcode op = ir::Opcode::Add; ///< Primary opcode (opCounts key).
  ir::Type type = ir::Type::I32;   ///< Result type.
  ir::Type opType = ir::Type::I32; ///< operand(0) type.
  ir::CmpPred pred = ir::CmpPred::EQ;
  std::int64_t immA = 0;
  std::int64_t immB = 0;
  double energyPj = 0.0;
  /// Runtime-checked operand slots (points into ThreadedProgram pool).
  const std::int32_t* checked = nullptr;
  /// Full operand slot list (SlotMap storage; Call/Fork varargs).
  const std::int32_t* ops = nullptr;
  const XBlock* succ0 = nullptr;
  const XBlock* succ1 = nullptr;
  /// Phi edges into succ0/succ1 from this block, resolved at lowering so
  /// taking a branch never searches the successor's edge list.
  const XPhiEdge* edge0 = nullptr;
  const XPhiEdge* edge1 = nullptr;
  ir::Instruction* inst = nullptr; ///< Fork hook only.
  // Fused second half (GepLoad: the load; CmpBr: the condbr).
  std::int32_t dst2 = -1;
  ir::Type type2 = ir::Type::I32;
  ir::Opcode op2 = ir::Opcode::Add;
  double energyPj2 = 0.0;
};

/// A basic block lowered to threaded code: the XOp stream (state
/// boundaries marked by EndState, the block boundary by EndBlock) and the
/// per-predecessor phi edges.
struct XBlock {
  const DecodedBlock* src = nullptr;
  std::vector<XOp> xops;
  std::vector<XPhiEdge> phiEdges;
};

/// An ExecPlan lowered to threaded code. Built once per plan at
/// SystemSimulator construction; immutable afterwards (XOps hold pointers
/// into this program and into the plan's SlotMap storage). The fusion /
/// elision counters summarize what the lowering achieved, for tests and
/// diagnostics.
struct ThreadedProgram {
  explicit ThreadedProgram(const ExecPlan& plan);
  ThreadedProgram(const ThreadedProgram&) = delete;
  ThreadedProgram& operator=(const ThreadedProgram&) = delete;

  const ExecPlan* plan;
  /// Parallel to plan->decoded; blocks.front() is the entry block.
  std::vector<XBlock> blocks;
  /// Backing store for every XOp::checked list.
  std::vector<std::int32_t> checkedPool;

  int fusedGepLoad = 0;
  int fusedCmpBr = 0;
  int operandsTotal = 0;   ///< Operand references lowered.
  int operandsChecked = 0; ///< ... of which kept a runtime check.
};

/// Handler label table of the dispatch core, indexed by XKind. Null when
/// the build uses the portable switch dispatch.
const void* const* threadedHandlerTable();

/// Cycle-level engine over a ThreadedProgram. Drop-in replacement for
/// WorkerEngine in the system scheduler: same construction signature
/// (modulo the plan type), same StepOutcome protocol, bit-identical
/// architectural behavior.
class ThreadedEngine {
public:
  using Plan = ThreadedProgram;

  ThreadedEngine(const ThreadedProgram& program, interp::Memory& memory,
                 DCache& cache, ChannelSet* channels,
                 interp::LiveoutFile& liveouts,
                 std::span<const std::uint64_t> args, SystemHooks* hooks);

  bool done() const { return done_; }
  std::uint64_t returnValue() const { return returnValue_; }
  WorkerStats stats() const;

  const StepOutcome& step(std::uint64_t now);
  void accountParked(StepOutcome::Stall stall, StepOutcome::Wait wait,
                     int channel, std::uint64_t cycles);

  /// step() without the done() guard, for callers that already know the
  /// engine is live (the system scheduler's threaded fast loop). Inline so
  /// the scheduler pays only the dispatch call per step.
  const StepOutcome& stepFast(std::uint64_t now) {
    // No stall reset: outcome_.stall is only read behind a non-Run wait,
    // and every blocking exit of dispatch writes both fields.
    outcome_.wait = StepOutcome::Wait::Run;
    if (now >= nextLoadDone_)
      resolveLoads(now);
    dispatch(this, now);
    return outcome_;
  }

private:
  /// readyCycle_ sentinel: result not produced yet (or load in flight).
  static constexpr std::uint64_t kNotReady = ~0ULL;

  /// The dispatch core. `self == nullptr` is the label-query mode used to
  /// populate XOp::handler at lowering time (computed-goto builds only).
  static const void* const* dispatch(ThreadedEngine* self, std::uint64_t now);
  friend const void* const* threadedHandlerTable();

  bool checkedReady(const std::int32_t* slots, int count,
                    std::uint64_t now) const {
    for (int k = 0; k < count; ++k)
      if (readyCycle_[static_cast<std::size_t>(slots[k])] > now)
        return false;
    return true;
  }
  std::uint64_t wakeCycleFor(const std::int32_t* slots, int count,
                             std::uint64_t now) const;
  void resolveLoads(std::uint64_t now);

  const ThreadedProgram* program_;
  interp::Memory* memory_;
  DCache* cache_;
  ChannelSet* channels_;
  interp::LiveoutFile* liveouts_;
  SystemHooks* hooks_;

  std::vector<std::uint64_t> regs_;
  std::vector<std::uint64_t> readyCycle_;

  struct PendingLoad {
    std::int32_t slot;
    std::uint64_t doneAt;
    std::uint64_t value; ///< Latched at submit (WAR correctness).
  };
  std::vector<PendingLoad> pendingLoads_;
  std::uint64_t nextLoadDone_ = kNotReady;

  const XOp* xp_ = nullptr; ///< Resume point in the current block.
  const XBlock* branchTarget_ = nullptr;
  const XPhiEdge* pendingEdge_ = nullptr; ///< Phi edge of branchTarget_.
  /// GepLoad blocked after its gep half issued: on retry, skip the half
  /// that already executed (mirrors the interpreter retrying the load
  /// MicroOp alone).
  bool fusedResume_ = false;
  bool retPending_ = false;
  bool done_ = false;
  std::uint64_t returnValue_ = 0;
  std::array<std::uint64_t, ir::kNumOpcodes> opCounts_{};
  WorkerStats stats_;
  StepOutcome outcome_;
  std::vector<std::pair<std::size_t, std::uint64_t>> phiScratch_;
};

} // namespace cgpa::sim::exec
