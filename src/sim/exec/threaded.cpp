// Threaded-code lowering and dispatch core (see threaded.hpp for the
// design and the bit-identity argument). The file has two halves:
//
//   1. ThreadedProgram: the per-plan lowering pass — readiness-check
//      elision, superinstruction fusion, phi-edge pre-resolution, and
//      handler-address binding.
//   2. ThreadedEngine::dispatch: the execution core. One function holding
//      every handler, so computed-goto builds thread directly from XOp to
//      XOp without returning to a dispatch loop.
//
// Every handler mirrors the corresponding WorkerEngine::tryIssue case and
// the surrounding step() accounting exactly — issue order, stall
// counters, wake-cycle prediction, phi latching, energy accumulation
// order. When changing either tier, change both (docs/simulator.md walks
// through adding an opcode); the differential oracle's fifth leg and
// tests/regression_cycles_test.cpp enforce the identity.
#include "sim/exec/threaded.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "interp/eval.hpp"
#include "support/diag.hpp"

namespace cgpa::sim::exec {

using ir::Opcode;

namespace {

/// Dispatch kind for a non-fused MicroOp.
XKind kindFor(const MicroOp& mop) {
  switch (mop.op) {
  case Opcode::Add:
    return XKind::Add;
  case Opcode::Sub:
    return XKind::Sub;
  case Opcode::Mul:
    return XKind::Mul;
  case Opcode::And:
    return XKind::And;
  case Opcode::Or:
    return XKind::Or;
  case Opcode::Xor:
    return XKind::Xor;
  case Opcode::Shl:
    return XKind::Shl;
  case Opcode::LShr:
    return XKind::LShr;
  case Opcode::AShr:
    return XKind::AShr;
  case Opcode::SDiv:
    return XKind::SDiv;
  case Opcode::SRem:
    return XKind::SRem;
  case Opcode::ICmp:
    switch (mop.pred) {
    case ir::CmpPred::EQ:
      return XKind::ICmpEQ;
    case ir::CmpPred::NE:
      return XKind::ICmpNE;
    case ir::CmpPred::SLT:
      return XKind::ICmpSLT;
    case ir::CmpPred::SLE:
      return XKind::ICmpSLE;
    case ir::CmpPred::SGT:
      return XKind::ICmpSGT;
    case ir::CmpPred::SGE:
      return XKind::ICmpSGE;
    default:
      CGPA_UNREACHABLE("float predicate on icmp");
    }
  case Opcode::FAdd:
    return XKind::FAdd;
  case Opcode::FSub:
    return XKind::FSub;
  case Opcode::FMul:
    return XKind::FMul;
  case Opcode::FDiv:
    return XKind::FDiv;
  case Opcode::FCmp:
    return XKind::FCmp;
  case Opcode::Trunc:
  case Opcode::SExt:
  case Opcode::ZExt:
  case Opcode::SIToFP:
  case Opcode::FPToSI:
  case Opcode::FPExt:
  case Opcode::FPTrunc:
  case Opcode::PtrToInt:
  case Opcode::IntToPtr:
    return XKind::Cast;
  case Opcode::Load:
    return XKind::Load;
  case Opcode::Store:
    return XKind::Store;
  case Opcode::Gep:
    return XKind::Gep;
  case Opcode::Select:
    return XKind::Select;
  case Opcode::Call:
    return XKind::Call;
  case Opcode::Br:
    return XKind::Br;
  case Opcode::CondBr:
    return XKind::CondBr;
  case Opcode::Ret:
    return XKind::Ret;
  case Opcode::Produce:
    return XKind::Produce;
  case Opcode::ProduceBroadcast:
    return XKind::ProduceBroadcast;
  case Opcode::Consume:
    return XKind::Consume;
  case Opcode::ParallelFork:
    return XKind::Fork;
  case Opcode::ParallelJoin:
    return XKind::Join;
  case Opcode::StoreLiveout:
    return XKind::StoreLiveout;
  case Opcode::RetrieveLiveout:
    return XKind::RetrieveLiveout;
  case Opcode::Phi:
    break; // Phis never appear in the issue stream.
  }
  CGPA_UNREACHABLE("unlowerable opcode in threaded tier");
}

/// Where a slot's value is produced, for the readiness-elision analysis.
/// Slots without an entry (block < 0) are arguments, constants, or phi
/// results — always ready when read.
struct DefSite {
  std::int32_t block = -1;
  std::int32_t state = -1;
  Opcode op = Opcode::Add;
};

} // namespace

ThreadedProgram::ThreadedProgram(const ExecPlan& execPlan) : plan(&execPlan) {
  const std::vector<DecodedBlock>& decoded = execPlan.decoded;
  blocks.resize(decoded.size());
  std::unordered_map<const DecodedBlock*, XBlock*> xof;
  xof.reserve(decoded.size());
  for (std::size_t b = 0; b < decoded.size(); ++b) {
    blocks[b].src = &decoded[b];
    xof.emplace(&decoded[b], &blocks[b]);
  }

  // Producer sites of every instruction slot that appears in the issue
  // stream (phis are absent by construction, so they fall into the
  // always-ready bucket together with arguments and constants).
  std::vector<DefSite> defs(
      static_cast<std::size_t>(execPlan.slots.numSlots()));
  for (std::size_t b = 0; b < decoded.size(); ++b) {
    const DecodedBlock& db = decoded[b];
    for (int s = 0; s < db.numStates(); ++s)
      for (std::uint32_t i = db.stateBegin[static_cast<std::size_t>(s)];
           i < db.stateBegin[static_cast<std::size_t>(s) + 1]; ++i) {
        DefSite& site = defs[static_cast<std::size_t>(db.microOps[i].slot)];
        site.block = static_cast<std::int32_t>(b);
        site.state = s;
        site.op = db.microOps[i].op;
      }
  }

  // A use of `slot` issued in (useBlock, useState) keeps its runtime
  // readiness check iff the producer can still be in flight there: load
  // results always (cache latency is dynamic), multi-cycle producers
  // unless they sit in the same block with an FSM state distance covering
  // their latency. Everything else is statically ready (see threaded.hpp).
  auto needsCheck = [&](std::int32_t slot, std::int32_t useBlock,
                        std::int32_t useState) {
    const DefSite& d = defs[static_cast<std::size_t>(slot)];
    if (d.block < 0)
      return false;
    if (d.op == Opcode::Load)
      return true;
    const std::uint32_t lat = execPlan.latency[static_cast<std::size_t>(slot)];
    if (lat == 0)
      return false;
    return d.block != useBlock ||
           useState - d.state < static_cast<std::int32_t>(lat);
  };

  // Phase 1: phi edges (branch lowering points at them, so they must all
  // exist — and stop growing — before any XOp is emitted). A latch source
  // is checked at block entry exactly when the interpreter's
  // phiInputsReady could see it not-ready: the check runs the cycle the
  // predecessor's last state completes.
  for (std::size_t b = 0; b < decoded.size(); ++b) {
    blocks[b].phiEdges.reserve(decoded[b].phiEdges.size());
    for (const PhiEdge& edge : decoded[b].phiEdges) {
      XPhiEdge xe;
      xe.pred = xof.at(edge.pred);
      xe.latches = edge.latches;
      const std::int32_t predBlock = static_cast<std::int32_t>(
          static_cast<std::size_t>(edge.pred - decoded.data()));
      const std::int32_t predLastState = edge.pred->numStates() - 1;
      for (const auto& [dst, src] : xe.latches)
        if (needsCheck(src, predBlock, predLastState))
          xe.checkedSrcs.push_back(src);
      blocks[b].phiEdges.push_back(std::move(xe));
    }
  }

  auto edgeInto = [&](const XBlock* succ, const XBlock* from) -> const
      XPhiEdge* {
        if (succ == nullptr || succ->phiEdges.empty())
          return nullptr;
        for (const XPhiEdge& edge : succ->phiEdges)
          if (edge.pred == from)
            return &edge;
        CGPA_ASSERT(false, "threaded lowering: CFG edge into a phi block "
                           "has no registered latch list");
        return nullptr;
      };

  // Phase 2: lower every block's MicroOp stream. Checked-operand lists
  // collect into per-XOp scratch first and flatten into checkedPool at the
  // end (XOp::checked pointers must not move afterwards).
  std::vector<std::vector<std::int32_t>> checkedLists;
  struct Fixup {
    std::size_t block;
    std::size_t xop;
    std::size_t list;
  };
  std::vector<Fixup> fixups;

  for (std::size_t b = 0; b < decoded.size(); ++b) {
    const DecodedBlock& db = decoded[b];
    XBlock& xb = blocks[b];
    const std::int32_t useBlock = static_cast<std::int32_t>(b);

    auto checkedOf = [&](const MicroOp& mop,
                         std::int32_t useState) {
      std::vector<std::int32_t> list;
      for (int k = 0; k < mop.numOps; ++k) {
        operandsTotal += 1;
        if (needsCheck(mop.ops[k], useBlock, useState)) {
          operandsChecked += 1;
          list.push_back(mop.ops[k]);
        }
      }
      return list;
    };

    auto emit = [&](XOp x, std::vector<std::int32_t> checkedSlots) {
      x.numChecked = static_cast<std::uint8_t>(checkedSlots.size());
      if (!checkedSlots.empty()) {
        fixups.push_back({b, xb.xops.size(), checkedLists.size()});
        checkedLists.push_back(std::move(checkedSlots));
      }
      xb.xops.push_back(x);
    };

    auto lowerSingle = [&](const MicroOp& m, std::int32_t state) {
      XOp x;
      x.kind = kindFor(m);
      x.numOps = m.numOps;
      x.dst = m.slot;
      x.a = m.numOps > 0 ? m.ops[0] : -1;
      x.b = m.numOps > 1 ? m.ops[1] : -1;
      x.c = m.numOps > 2 ? m.ops[2] : -1;
      x.latency = m.latency;
      x.op = m.op;
      x.type = m.type;
      x.opType = m.opType;
      x.pred = m.pred;
      x.immA = m.immA;
      x.immB = m.immB;
      x.energyPj = m.energyPj;
      x.ops = m.ops;
      x.inst = m.inst;
      x.aux = m.op == Opcode::Gep && m.numOps == 2 ? 1 : 0;
      if (m.succ0 != nullptr) {
        x.succ0 = xof.at(m.succ0);
        x.edge0 = edgeInto(x.succ0, &xb);
      }
      if (m.succ1 != nullptr) {
        x.succ1 = xof.at(m.succ1);
        x.edge1 = edgeInto(x.succ1, &xb);
      }
      emit(x, checkedOf(m, state));
    };

    for (int s = 0; s < db.numStates(); ++s) {
      const std::size_t stateFirstXop = xb.xops.size();
      std::uint32_t i = db.stateBegin[static_cast<std::size_t>(s)];
      const std::uint32_t end = db.stateBegin[static_cast<std::size_t>(s) + 1];
      while (i < end) {
        const MicroOp& m = db.microOps[i];
        const MicroOp* next = i + 1 < end ? &db.microOps[i + 1] : nullptr;
        // Fusion: gep feeding the immediately-following load of the same
        // state. The pair can never be split by the interpreter either —
        // the gep result is ready the cycle it issues — so fusing only
        // removes a dispatch, never a visible boundary.
        if (m.op == Opcode::Gep && next != nullptr &&
            next->op == Opcode::Load && next->numOps == 1 &&
            next->ops[0] == m.slot) {
          XOp x;
          x.kind = XKind::GepLoad;
          x.numOps = m.numOps;
          x.dst = m.slot;
          x.a = m.numOps > 0 ? m.ops[0] : -1;
          x.b = m.numOps > 1 ? m.ops[1] : -1;
          x.aux = m.numOps == 2 ? 1 : 0;
          x.latency = m.latency;
          x.op = m.op;
          x.type = m.type;
          x.opType = m.opType;
          x.immA = m.immA;
          x.immB = m.immB;
          x.energyPj = m.energyPj;
          x.ops = m.ops;
          x.dst2 = next->slot;
          x.type2 = next->type;
          x.op2 = next->op;
          x.energyPj2 = next->energyPj;
          ++fusedGepLoad;
          // The load's single operand is produced in-handler; its
          // lowering-time check set is empty by construction.
          emit(x, checkedOf(m, s));
          i += 2;
          continue;
        }
        // Fusion: zero-latency integer compare feeding the immediately-
        // following conditional branch on its result.
        if (m.op == Opcode::ICmp &&
            execPlan.latency[static_cast<std::size_t>(m.slot)] == 0 &&
            next != nullptr && next->op == Opcode::CondBr &&
            next->ops[0] == m.slot) {
          XOp x;
          x.kind = XKind::CmpBr;
          x.numOps = m.numOps;
          x.dst = m.slot;
          x.a = m.ops[0];
          x.b = m.ops[1];
          x.latency = 0;
          x.op = m.op;
          x.type = m.type;
          x.opType = m.opType;
          x.pred = m.pred;
          x.energyPj = m.energyPj;
          x.ops = m.ops;
          x.succ0 = xof.at(next->succ0);
          x.edge0 = edgeInto(x.succ0, &xb);
          x.succ1 = xof.at(next->succ1);
          x.edge1 = edgeInto(x.succ1, &xb);
          x.op2 = next->op;
          x.energyPj2 = next->energyPj;
          ++fusedCmpBr;
          emit(x, checkedOf(m, s));
          i += 2;
          continue;
        }
        lowerSingle(m, s);
        ++i;
      }
      // Fold the state boundary into the state's last op (its dispatch
      // tail accounts the cycle and yields); a standalone EndState marker
      // survives only for states that issue nothing. Branches never carry
      // the flag: they only appear in the final state, which ends in
      // EndBlock instead.
      if (s + 1 < db.numStates()) {
        if (xb.xops.size() > stateFirstXop) {
          xb.xops.back().endsState = 1;
        } else {
          XOp marker;
          marker.kind = XKind::EndState;
          xb.xops.push_back(marker);
        }
      }
    }
    XOp marker;
    marker.kind = XKind::EndBlock;
    xb.xops.push_back(marker);
  }

  // Phase 3: flatten the checked lists and bind handler addresses (the
  // XOp vectors are final now, so interior pointers are stable).
  std::size_t poolSize = 0;
  for (const auto& list : checkedLists)
    poolSize += list.size();
  checkedPool.reserve(poolSize);
  std::vector<std::size_t> listBegin(checkedLists.size());
  for (std::size_t l = 0; l < checkedLists.size(); ++l) {
    listBegin[l] = checkedPool.size();
    checkedPool.insert(checkedPool.end(), checkedLists[l].begin(),
                       checkedLists[l].end());
  }
  for (const Fixup& fix : fixups)
    blocks[fix.block].xops[fix.xop].checked =
        checkedPool.data() + listBegin[fix.list];

  const void* const* handlers = threadedHandlerTable();
  if (handlers != nullptr)
    for (XBlock& xb : blocks)
      for (XOp& x : xb.xops)
        x.handler = handlers[static_cast<int>(x.kind)];
}

ThreadedEngine::ThreadedEngine(const ThreadedProgram& program,
                               interp::Memory& memory, DCache& cache,
                               ChannelSet* channels,
                               interp::LiveoutFile& liveouts,
                               std::span<const std::uint64_t> args,
                               SystemHooks* hooks)
    : program_(&program), memory_(&memory), cache_(&cache),
      channels_(channels), liveouts_(&liveouts), hooks_(hooks),
      regs_(program.plan->initialRegs),
      readyCycle_(program.plan->initialRegs.size(), 0) {
  const ir::Function& fn = *program.plan->fn;
  CGPA_ASSERT(static_cast<int>(args.size()) == fn.numArguments(),
              "engine arg count mismatch for @" + fn.name());
  for (int i = 0; i < fn.numArguments(); ++i)
    regs_[static_cast<std::size_t>(i)] = interp::canonicalize(
        fn.argument(i)->type(), args[static_cast<std::size_t>(i)]);
  const ir::SlotMap& slots = program.plan->slots;
  for (int s = slots.numArguments(); s < slots.numValueSlots(); ++s)
    readyCycle_[static_cast<std::size_t>(s)] = kNotReady;
  xp_ = program.blocks.front().xops.data();
}

WorkerStats ThreadedEngine::stats() const {
  WorkerStats out = stats_;
  for (int op = 0; op < ir::kNumOpcodes; ++op)
    if (opCounts_[static_cast<std::size_t>(op)] != 0)
      out.opCounts[static_cast<Opcode>(op)] =
          opCounts_[static_cast<std::size_t>(op)];
  return out;
}

void ThreadedEngine::accountParked(StepOutcome::Stall stall,
                                   StepOutcome::Wait wait, int channel,
                                   std::uint64_t cycles) {
  stats_.cyclesStalled += cycles;
  switch (stall) {
  case StepOutcome::Stall::Mem:
    stats_.stallMem += cycles;
    break;
  case StepOutcome::Stall::Fifo:
    stats_.stallFifo += cycles;
    stats_.addFifoStall(wait == StepOutcome::Wait::FifoSpace, channel,
                        cycles);
    break;
  default:
    stats_.stallDep += cycles;
    break;
  }
}

std::uint64_t ThreadedEngine::wakeCycleFor(const std::int32_t* slots,
                                           int count,
                                           std::uint64_t now) const {
  // Mirrors WorkerEngine::operandWakeCycle over the checked subset; the
  // elided operands are provably ready, so they could never raise it.
  std::uint64_t wake = now + 1;
  for (int k = 0; k < count; ++k) {
    std::uint64_t ready = readyCycle_[static_cast<std::size_t>(slots[k])];
    if (ready <= now)
      continue;
    if (ready == kNotReady) {
      ready = now + 1;
      for (const PendingLoad& load : pendingLoads_)
        if (load.slot == slots[k]) {
          ready = std::max(ready, load.doneAt);
          break;
        }
    }
    wake = std::max(wake, ready);
  }
  return wake;
}

void ThreadedEngine::resolveLoads(std::uint64_t now) {
  std::uint64_t earliest = kNotReady;
  for (std::size_t i = 0; i < pendingLoads_.size();) {
    const PendingLoad& load = pendingLoads_[i];
    if (now >= load.doneAt) {
      regs_[static_cast<std::size_t>(load.slot)] = load.value;
      readyCycle_[static_cast<std::size_t>(load.slot)] = now;
      pendingLoads_[i] = pendingLoads_.back();
      pendingLoads_.pop_back();
    } else {
      earliest = std::min(earliest, load.doneAt);
      ++i;
    }
  }
  nextLoadDone_ = earliest;
}

const StepOutcome& ThreadedEngine::step(std::uint64_t now) {
  if (done_) {
    outcome_.wait = StepOutcome::Wait::Run;
    return outcome_;
  }
  return stepFast(now);
}

// The dispatch core. One handler per XKind; computed-goto builds jump
// straight from handler to handler, the portable build loops a switch.
// `self == nullptr` queries the label table without touching any state.
//
// noinline: with computed goto the label table is a function-local static;
// inlining the function into multiple callers could otherwise split the
// labels from the (shared) table that points at them.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
const void* const*
ThreadedEngine::dispatch(ThreadedEngine* self, std::uint64_t now) {
#if CGPA_THREADED_COMPUTED_GOTO
  // Order must match XKind exactly.
  static const void* const table[kNumXKinds] = {
      &&x_EndState, &&x_EndBlock, &&x_Add,     &&x_Sub,
      &&x_Mul,      &&x_And,      &&x_Or,      &&x_Xor,
      &&x_Shl,      &&x_LShr,     &&x_AShr,    &&x_SDiv,
      &&x_SRem,     &&x_ICmpEQ,   &&x_ICmpNE,  &&x_ICmpSLT,
      &&x_ICmpSLE,  &&x_ICmpSGT,  &&x_ICmpSGE, &&x_FAdd,
      &&x_FSub,     &&x_FMul,     &&x_FDiv,    &&x_FCmp,
      &&x_Cast,     &&x_Gep,      &&x_Select,  &&x_Load,
      &&x_Store,    &&x_Produce,  &&x_ProduceBroadcast,
      &&x_Consume,  &&x_Fork,     &&x_Join,    &&x_StoreLiveout,
      &&x_RetrieveLiveout,        &&x_Br,      &&x_CondBr,
      &&x_Ret,      &&x_Call,     &&x_GepLoad, &&x_CmpBr,
  };
  if (self == nullptr)
    return table;
#else
  if (self == nullptr)
    return nullptr;
#endif

  std::uint64_t* const regs = self->regs_.data();
  std::uint64_t* const ready = self->readyCycle_.data();
  const XOp* xp = self->xp_;
  bool progressed = false;

// REG: canonical register read/write. XCHECK: runtime readiness gate over
// the statically-kept subset. XCOUNT: the issue accounting the interpreter
// performs at the end of tryIssue (order of energy += matters: doubles).
#define REG(i) regs[static_cast<std::size_t>(i)]
#define RDY(i) ready[static_cast<std::size_t>(i)]
#define XCHECK()                                                            \
  if (xp->numChecked != 0 &&                                                \
      !self->checkedReady(xp->checked, xp->numChecked, now))                \
    goto blocked_dep;
#define XCOUNT(opcode, energy)                                              \
  ++self->opCounts_[static_cast<std::size_t>(opcode)];                      \
  self->stats_.dynamicEnergyPj += (energy);

// XNEXT: advance to the next XOp — unless this op closes its FSM state
// (endsState, set at lowering), in which case the cycle boundary folded
// into the op fires here: account the active cycle and yield.
#if CGPA_THREADED_COMPUTED_GOTO
#define XCASE(k) x_##k:
#define XNEXT                                                               \
  if (xp->endsState != 0) {                                                 \
    ++self->stats_.cyclesActive;                                            \
    ++self->stats_.cyclesBusy;                                              \
    self->xp_ = xp + 1;                                                     \
    return nullptr;                                                         \
  }                                                                         \
  ++xp;                                                                     \
  goto* xp->handler;
  goto* xp->handler;
#else
#define XCASE(k) case XKind::k:
#define XNEXT                                                               \
  if (xp->endsState != 0) {                                                 \
    ++self->stats_.cyclesActive;                                            \
    ++self->stats_.cyclesBusy;                                              \
    self->xp_ = xp + 1;                                                     \
    return nullptr;                                                         \
  }                                                                         \
  ++xp;                                                                     \
  break;
  for (;;) {
    switch (xp->kind) {
#endif

  // --- Specialized integer binaries (eval + latch in one dispatch). ----
  XCASE(Add) {
    XCHECK();
    REG(xp->dst) = interp::evalAdd(xp->opType, REG(xp->a), REG(xp->b));
    RDY(xp->dst) = now + xp->latency;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(Sub) {
    XCHECK();
    REG(xp->dst) = interp::evalSub(xp->opType, REG(xp->a), REG(xp->b));
    RDY(xp->dst) = now + xp->latency;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(Mul) {
    XCHECK();
    REG(xp->dst) = interp::evalMul(xp->opType, REG(xp->a), REG(xp->b));
    RDY(xp->dst) = now + xp->latency;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(And) {
    XCHECK();
    REG(xp->dst) = interp::evalAnd(xp->opType, REG(xp->a), REG(xp->b));
    RDY(xp->dst) = now + xp->latency;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(Or) {
    XCHECK();
    REG(xp->dst) = interp::evalOr(xp->opType, REG(xp->a), REG(xp->b));
    RDY(xp->dst) = now + xp->latency;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(Xor) {
    XCHECK();
    REG(xp->dst) = interp::evalXor(xp->opType, REG(xp->a), REG(xp->b));
    RDY(xp->dst) = now + xp->latency;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(Shl) {
    XCHECK();
    REG(xp->dst) = interp::evalShl(xp->opType, REG(xp->a), REG(xp->b));
    RDY(xp->dst) = now + xp->latency;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(LShr) {
    XCHECK();
    REG(xp->dst) = interp::evalLShr(xp->opType, REG(xp->a), REG(xp->b));
    RDY(xp->dst) = now + xp->latency;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(AShr) {
    XCHECK();
    REG(xp->dst) = interp::evalAShr(xp->opType, REG(xp->a), REG(xp->b));
    RDY(xp->dst) = now + xp->latency;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(SDiv) {
    XCHECK();
    REG(xp->dst) = interp::evalSDiv(xp->opType, REG(xp->a), REG(xp->b));
    RDY(xp->dst) = now + xp->latency;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(SRem) {
    XCHECK();
    REG(xp->dst) = interp::evalSRem(xp->opType, REG(xp->a), REG(xp->b));
    RDY(xp->dst) = now + xp->latency;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT

  // --- Per-predicate integer compares. ---------------------------------
  XCASE(ICmpEQ) {
    XCHECK();
    REG(xp->dst) = interp::evalICmp(ir::CmpPred::EQ, REG(xp->a), REG(xp->b));
    RDY(xp->dst) = now + xp->latency;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(ICmpNE) {
    XCHECK();
    REG(xp->dst) = interp::evalICmp(ir::CmpPred::NE, REG(xp->a), REG(xp->b));
    RDY(xp->dst) = now + xp->latency;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(ICmpSLT) {
    XCHECK();
    REG(xp->dst) = interp::evalICmp(ir::CmpPred::SLT, REG(xp->a), REG(xp->b));
    RDY(xp->dst) = now + xp->latency;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(ICmpSLE) {
    XCHECK();
    REG(xp->dst) = interp::evalICmp(ir::CmpPred::SLE, REG(xp->a), REG(xp->b));
    RDY(xp->dst) = now + xp->latency;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(ICmpSGT) {
    XCHECK();
    REG(xp->dst) = interp::evalICmp(ir::CmpPred::SGT, REG(xp->a), REG(xp->b));
    RDY(xp->dst) = now + xp->latency;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(ICmpSGE) {
    XCHECK();
    REG(xp->dst) = interp::evalICmp(ir::CmpPred::SGE, REG(xp->a), REG(xp->b));
    RDY(xp->dst) = now + xp->latency;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT

  // --- Float arithmetic / compare. -------------------------------------
  XCASE(FAdd) {
    XCHECK();
    REG(xp->dst) = interp::evalFAdd(xp->opType, REG(xp->a), REG(xp->b));
    RDY(xp->dst) = now + xp->latency;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(FSub) {
    XCHECK();
    REG(xp->dst) = interp::evalFSub(xp->opType, REG(xp->a), REG(xp->b));
    RDY(xp->dst) = now + xp->latency;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(FMul) {
    XCHECK();
    REG(xp->dst) = interp::evalFMul(xp->opType, REG(xp->a), REG(xp->b));
    RDY(xp->dst) = now + xp->latency;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(FDiv) {
    XCHECK();
    REG(xp->dst) = interp::evalFDiv(xp->opType, REG(xp->a), REG(xp->b));
    RDY(xp->dst) = now + xp->latency;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(FCmp) {
    XCHECK();
    REG(xp->dst) =
        interp::evalFCmp(xp->opType, xp->pred, REG(xp->a), REG(xp->b));
    RDY(xp->dst) = now + xp->latency;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT

  XCASE(Cast) {
    XCHECK();
    REG(xp->dst) = interp::evalCast(xp->op, xp->opType, xp->type, REG(xp->a));
    RDY(xp->dst) = now + xp->latency;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT

  // --- Address generation / select. ------------------------------------
  XCASE(Gep) {
    XCHECK();
    const bool hasIndex = xp->aux != 0;
    REG(xp->dst) = interp::evalGep(REG(xp->a), hasIndex ? REG(xp->b) : 0,
                                   hasIndex, xp->immA, xp->immB);
    RDY(xp->dst) = now;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(Select) {
    XCHECK();
    REG(xp->dst) = REG(xp->a) != 0 ? REG(xp->b) : REG(xp->c);
    RDY(xp->dst) = now;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT

  // --- Memory. ----------------------------------------------------------
  XCASE(Load) {
    XCHECK();
    const std::uint64_t addr = REG(xp->a);
    if (self->cache_->submit(addr, false) < 0) {
      self->outcome_.wait = StepOutcome::Wait::Timed;
      self->outcome_.stall = StepOutcome::Stall::Mem;
      self->outcome_.wakeAt = self->cache_->nextAcceptCycle(addr);
      ++self->stats_.stallMem;
      goto blocked_tail;
    }
    const std::uint64_t doneAt = self->cache_->lastAcceptDoneAt();
    self->pendingLoads_.push_back(
        {xp->dst, doneAt, self->memory_->load(xp->type, addr)});
    self->nextLoadDone_ = std::min(self->nextLoadDone_, doneAt);
    RDY(xp->dst) = kNotReady; // In flight until doneAt.
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(Store) {
    XCHECK();
    const std::uint64_t addr = REG(xp->b);
    if (self->cache_->submit(addr, true) < 0) {
      self->outcome_.wait = StepOutcome::Wait::Timed;
      self->outcome_.stall = StepOutcome::Stall::Mem;
      self->outcome_.wakeAt = self->cache_->nextAcceptCycle(addr);
      ++self->stats_.stallMem;
      goto blocked_tail;
    }
    // Fire-and-forget: the value is architecturally visible immediately;
    // the port/bank occupancy models the timing.
    self->memory_->store(xp->opType, addr, REG(xp->a));
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT

  // --- FIFO fabric. ------------------------------------------------------
  XCASE(Produce) {
    XCHECK();
    const int channel = static_cast<int>(xp->immA);
    const std::int64_t lane = interp::patternToInt(xp->opType, REG(xp->a));
    FifoLane& fifo = self->channels_->lane(channel, static_cast<int>(lane));
    const int flits = self->channels_->flitsOf(channel);
    if (!fifo.canPush(flits)) {
      self->outcome_.wait = StepOutcome::Wait::FifoSpace;
      self->outcome_.stall = StepOutcome::Stall::Fifo;
      self->outcome_.channel = channel;
      self->outcome_.lane = static_cast<int>(lane);
      ++self->stats_.stallFifo;
      self->stats_.addFifoStall(/*full=*/true, channel, 1);
      goto blocked_tail;
    }
    fifo.push(REG(xp->b), flits);
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(ProduceBroadcast) {
    XCHECK();
    const int channel = static_cast<int>(xp->immA);
    const int flits = self->channels_->flitsOf(channel);
    for (int l = 0; l < self->channels_->lanesOf(channel); ++l)
      if (!self->channels_->lane(channel, l).canPush(flits)) {
        self->outcome_.wait = StepOutcome::Wait::FifoSpace;
        self->outcome_.stall = StepOutcome::Stall::Fifo;
        self->outcome_.channel = channel;
        self->outcome_.lane = l;
        ++self->stats_.stallFifo;
        self->stats_.addFifoStall(/*full=*/true, channel, 1);
        goto blocked_tail;
      }
    const std::uint64_t value = REG(xp->a);
    for (int l = 0; l < self->channels_->lanesOf(channel); ++l)
      self->channels_->lane(channel, l).push(value, flits);
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(Consume) {
    XCHECK();
    const int channel = static_cast<int>(xp->immA);
    const std::int64_t lane = interp::patternToInt(xp->opType, REG(xp->a));
    FifoLane& fifo = self->channels_->lane(channel, static_cast<int>(lane));
    if (!fifo.canPop()) {
      self->outcome_.wait = StepOutcome::Wait::FifoData;
      self->outcome_.stall = StepOutcome::Stall::Fifo;
      self->outcome_.channel = channel;
      self->outcome_.lane = static_cast<int>(lane);
      ++self->stats_.stallFifo;
      self->stats_.addFifoStall(/*full=*/false, channel, 1);
      goto blocked_tail;
    }
    REG(xp->dst) = interp::canonicalize(xp->type, fifo.pop());
    RDY(xp->dst) = now;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT

  // --- Fork / join / liveouts. ------------------------------------------
  XCASE(Fork) {
    XCHECK();
    CGPA_ASSERT(self->hooks_ != nullptr, "fork outside wrapper");
    std::vector<std::uint64_t> forkArgs;
    forkArgs.reserve(static_cast<std::size_t>(xp->numOps));
    for (int a = 0; a < xp->numOps; ++a)
      forkArgs.push_back(REG(xp->ops[a]));
    self->hooks_->onFork(*xp->inst, forkArgs);
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(Join) {
    XCHECK();
    CGPA_ASSERT(self->hooks_ != nullptr, "join outside wrapper");
    if (!self->hooks_->joinReady(static_cast<int>(xp->immA))) {
      self->outcome_.wait = StepOutcome::Wait::Join;
      self->outcome_.stall = StepOutcome::Stall::Dep;
      self->outcome_.loopId = static_cast<int>(xp->immA);
      ++self->stats_.stallDep;
      goto blocked_tail;
    }
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(StoreLiveout) {
    XCHECK();
    (*self->liveouts_)[{static_cast<int>(xp->immA),
                        static_cast<int>(xp->immB)}] = REG(xp->a);
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(RetrieveLiveout) {
    XCHECK();
    const auto it = self->liveouts_->find(
        {static_cast<int>(xp->immA), static_cast<int>(xp->immB)});
    CGPA_ASSERT(it != self->liveouts_->end(), "retrieve of unset liveout");
    REG(xp->dst) = interp::canonicalize(xp->type, it->second);
    RDY(xp->dst) = now;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT

  // --- Control. ----------------------------------------------------------
  XCASE(Br) {
    self->branchTarget_ = xp->succ0;
    self->pendingEdge_ = xp->edge0;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(CondBr) {
    XCHECK();
    const bool taken = REG(xp->a) != 0;
    self->branchTarget_ = taken ? xp->succ0 : xp->succ1;
    self->pendingEdge_ = taken ? xp->edge0 : xp->edge1;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(Ret) {
    XCHECK();
    self->retPending_ = true;
    if (xp->numOps == 1)
      self->returnValue_ = REG(xp->a);
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT
  XCASE(Call) {
    XCHECK();
    std::vector<std::uint64_t> callArgs;
    callArgs.reserve(static_cast<std::size_t>(xp->numOps));
    for (int a = 0; a < xp->numOps; ++a)
      callArgs.push_back(REG(xp->ops[a]));
    REG(xp->dst) = interp::evalIntrinsic(
        static_cast<ir::Intrinsic>(xp->immA), xp->type, callArgs.data(),
        static_cast<int>(callArgs.size()));
    RDY(xp->dst) = now + xp->latency;
    XCOUNT(xp->op, xp->energyPj);
    progressed = true;
  }
  XNEXT

  // --- Superinstructions. ------------------------------------------------
  XCASE(GepLoad) {
    if (!self->fusedResume_) {
      XCHECK();
      const bool hasIndex = xp->aux != 0;
      REG(xp->dst) = interp::evalGep(REG(xp->a), hasIndex ? REG(xp->b) : 0,
                                     hasIndex, xp->immA, xp->immB);
      RDY(xp->dst) = now;
      XCOUNT(xp->op, xp->energyPj);
      progressed = true;
    }
    const std::uint64_t addr = REG(xp->dst);
    if (self->cache_->submit(addr, false) < 0) {
      // The gep half issued; on retry skip straight to the load, exactly
      // like the interpreter retrying the load MicroOp alone.
      self->fusedResume_ = true;
      self->outcome_.wait = StepOutcome::Wait::Timed;
      self->outcome_.stall = StepOutcome::Stall::Mem;
      self->outcome_.wakeAt = self->cache_->nextAcceptCycle(addr);
      ++self->stats_.stallMem;
      goto blocked_tail;
    }
    self->fusedResume_ = false;
    const std::uint64_t doneAt = self->cache_->lastAcceptDoneAt();
    self->pendingLoads_.push_back(
        {xp->dst2, doneAt, self->memory_->load(xp->type2, addr)});
    self->nextLoadDone_ = std::min(self->nextLoadDone_, doneAt);
    RDY(xp->dst2) = kNotReady;
    XCOUNT(xp->op2, xp->energyPj2);
    progressed = true;
  }
  XNEXT
  XCASE(CmpBr) {
    XCHECK();
    const std::uint64_t flag =
        interp::evalICmp(xp->pred, REG(xp->a), REG(xp->b));
    REG(xp->dst) = flag; // Other consumers may read the compare result.
    RDY(xp->dst) = now;
    XCOUNT(xp->op, xp->energyPj);
    self->branchTarget_ = flag != 0 ? xp->succ0 : xp->succ1;
    self->pendingEdge_ = flag != 0 ? xp->edge0 : xp->edge1;
    XCOUNT(xp->op2, xp->energyPj2);
    progressed = true;
  }
  XNEXT

  // --- FSM boundaries. ---------------------------------------------------
  XCASE(EndState) {
    // State complete: the transition is the cycle boundary.
    ++self->stats_.cyclesActive;
    ++self->stats_.cyclesBusy;
    self->xp_ = xp + 1;
    return nullptr;
  }
  XCASE(EndBlock) {
    if (self->retPending_) {
      self->done_ = true;
      ++self->stats_.cyclesActive;
      ++self->stats_.cyclesBusy;
      self->xp_ = xp;
      return nullptr;
    }
    CGPA_ASSERT(self->branchTarget_ != nullptr,
                "block ended without a branch target in @" +
                    self->program_->plan->fn->name());
    const XPhiEdge* edge = self->pendingEdge_;
    if (edge != nullptr && !edge->checkedSrcs.empty() &&
        !self->checkedReady(edge->checkedSrcs.data(),
                            static_cast<int>(edge->checkedSrcs.size()),
                            now)) {
      // An outstanding cache miss feeding a phi stalls the FSM here.
      ++self->stats_.stallMem;
      self->outcome_.wait = StepOutcome::Wait::Timed;
      self->outcome_.stall = StepOutcome::Stall::Mem;
      self->outcome_.wakeAt = self->wakeCycleFor(
          edge->checkedSrcs.data(),
          static_cast<int>(edge->checkedSrcs.size()), now);
      goto blocked_tail;
    }
    if (edge != nullptr) {
      // Atomic phi evaluation against the edge being taken: read every
      // incoming value before writing any destination.
      self->phiScratch_.clear();
      for (const auto& [dst, src] : edge->latches)
        self->phiScratch_.emplace_back(static_cast<std::size_t>(dst),
                                       REG(src));
      for (const auto& [slot, value] : self->phiScratch_) {
        regs[slot] = value;
        ready[slot] = 0; // Latched: usable immediately.
      }
      self->opCounts_[static_cast<std::size_t>(Opcode::Phi)] +=
          edge->latches.size();
    }
    self->xp_ = self->branchTarget_->xops.data();
    self->branchTarget_ = nullptr;
    self->pendingEdge_ = nullptr;
    ++self->stats_.cyclesActive;
    ++self->stats_.cyclesBusy;
    return nullptr;
  }

#if !CGPA_THREADED_COMPUTED_GOTO
    }
  }
#endif

blocked_dep:
  self->outcome_.wait = StepOutcome::Wait::Timed;
  self->outcome_.stall = StepOutcome::Stall::Dep;
  self->outcome_.wakeAt = self->wakeCycleFor(xp->checked, xp->numChecked, now);
  ++self->stats_.stallDep;
blocked_tail:
  if (progressed)
    ++self->stats_.cyclesActive;
  else
    ++self->stats_.cyclesStalled;
  self->xp_ = xp; // Retry the blocked XOp next step.
  return nullptr;

#undef REG
#undef RDY
#undef XCHECK
#undef XCOUNT
#undef XCASE
#undef XNEXT
}

const void* const* threadedHandlerTable() {
  return ThreadedEngine::dispatch(nullptr, 0);
}

} // namespace cgpa::sim::exec
