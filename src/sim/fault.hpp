// Seeded fault injection for the system simulator.
//
// A FaultPlan describes a deterministic stream of timing perturbations —
// transient FIFO-lane stalls, delayed timed wakeups, cache-latency
// spikes — that the system scheduler applies while simulating. Faults
// never corrupt data: every perturbation is a legal hardware timing (a
// lane that refuses service for a few cycles, a wakeup that arrives late,
// a DDR access that takes longer), so a *correct* pipeline must still
// produce golden results and terminate; only its cycle count moves. The
// fuzz harness uses this to stress the deadlock detector and the
// forward-progress / conservation invariants (docs/robustness.md).
//
// Determinism: decisions are drawn from one SplitMix64 stream per
// injector in scheduler-visit order, which is itself deterministic for a
// fixed configuration — the same (plan, pipeline, workload) always
// perturbs the same way. A default-constructed FaultPlan is disabled and
// the simulator skips every injection branch.
#pragma once

#include <cstdint>

#include "support/rng.hpp"

namespace cgpa::sim {

struct FaultPlan {
  std::uint64_t seed = 1;

  /// Per FIFO park: probability the blocked engine retries on a timer
  /// (modeling a lane that transiently refuses service) instead of
  /// parking on the lane's wakeup list.
  double fifoStallProb = 0.0;
  int fifoStallCycles = 3;

  /// Per timed park: probability the wakeup is delivered late.
  double wakeDelayProb = 0.0;
  int wakeDelayCycles = 2;

  /// Per accepted cache access: probability of extra latency (slow DDR).
  double cachePerturbProb = 0.0;
  int cacheExtraCycles = 8;

  bool enabled() const {
    return fifoStallProb > 0.0 || wakeDelayProb > 0.0 ||
           cachePerturbProb > 0.0;
  }

  /// All three fault classes at probability `prob` (the fuzz default).
  static FaultPlan uniform(std::uint64_t seed, double prob);
};

/// Draws the plan's decision stream. One injector per simulation run; the
/// system scheduler owns it and shares it with the D-cache.
class FaultInjector {
public:
  explicit FaultInjector(const FaultPlan& plan)
      : plan_(plan), rng_(plan.seed * 0x9E3779B97F4A7C15ULL + 1) {}

  /// Each call consumes one decision and counts an injection when it fires.
  bool fifoStall() { return decide(plan_.fifoStallProb); }
  bool wakeDelay() { return decide(plan_.wakeDelayProb); }
  bool cachePerturb() { return decide(plan_.cachePerturbProb); }

  int fifoStallCycles() const { return plan_.fifoStallCycles; }
  int wakeDelayCycles() const { return plan_.wakeDelayCycles; }
  int cacheExtraCycles() const { return plan_.cacheExtraCycles; }

  /// Total faults injected so far (reported in SimResult).
  std::uint64_t injected() const { return injected_; }

private:
  bool decide(double prob) {
    if (prob <= 0.0)
      return false;
    const bool fire = rng_.nextDouble() < prob;
    if (fire)
      ++injected_;
    return fire;
  }

  FaultPlan plan_;
  Rng rng_;
  std::uint64_t injected_ = 0;
};

} // namespace cgpa::sim
