#include "sim/mips.hpp"

#include "hls/ops.hpp"
#include "interp/interpreter.hpp"

namespace cgpa::sim {

namespace {

class MipsTimer : public interp::ExecObserver {
public:
  explicit MipsTimer(const CacheConfig& config) : cache_(config) {}

  void onExec(const ir::Instruction& inst, std::uint64_t memAddr) override {
    cycles += static_cast<std::uint64_t>(
        hls::mipsCycles(inst.opcode(), inst.type()));
    ++opCounts[inst.opcode()];
    if (inst.isMemory())
      cycles += static_cast<std::uint64_t>(
          cache_.blockingAccess(memAddr, inst.opcode() == ir::Opcode::Store));
  }

  std::uint64_t cycles = 0;
  std::map<ir::Opcode, std::uint64_t> opCounts;
  DCache cache_;
};

} // namespace

MipsResult runMipsModel(const ir::Function& function,
                        std::span<const std::uint64_t> args,
                        interp::Memory& memory, const CacheConfig& cacheCfg) {
  interp::Interpreter interp(memory);
  MipsTimer timer(cacheCfg);
  interp.setObserver(&timer);
  interp::LiveoutFile liveouts;
  interp.setLiveoutFile(&liveouts);
  const interp::InterpResult run = interp.run(function, args);

  MipsResult result;
  result.cycles = timer.cycles;
  result.returnValue = run.returnValue;
  result.cache = timer.cache_.stats();
  result.opCounts = std::move(timer.opCounts);
  return result;
}

} // namespace cgpa::sim
