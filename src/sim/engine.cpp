#include "sim/engine.hpp"

#include <algorithm>
#include <vector>

#include "interp/eval.hpp"
#include "support/diag.hpp"

namespace cgpa::sim {

using ir::Instruction;
using ir::Opcode;

namespace {

/// Result latency the engine applies at issue, per opcode — must mirror
/// tryIssue: latched results and control/effect ops are usable the same
/// cycle; arithmetic, casts, and calls take hls::opTiming.
std::uint32_t resultLatencyFor(Opcode op, ir::Type type) {
  switch (op) {
  case Opcode::Load: // Modeled through the cache, not this table.
  case Opcode::Store:
  case Opcode::Gep:
  case Opcode::Select:
  case Opcode::Phi:
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Ret:
  case Opcode::Produce:
  case Opcode::ProduceBroadcast:
  case Opcode::Consume:
  case Opcode::ParallelFork:
  case Opcode::ParallelJoin:
  case Opcode::StoreLiveout:
  case Opcode::RetrieveLiveout:
    return 0;
  default: // Arithmetic, comparisons, casts, calls.
    return static_cast<std::uint32_t>(hls::opTiming(op, type).latency);
  }
}

} // namespace

ExecPlan::ExecPlan(const ir::Function& function, hls::FunctionSchedule sched)
    : fn(&function), schedule(std::move(sched)), slots(function) {
  initialRegs.assign(static_cast<std::size_t>(slots.numSlots()), 0);
  for (const auto& [slot, constant] : slots.constants())
    initialRegs[static_cast<std::size_t>(slot)] =
        interp::constantPattern(*constant);
  latency.assign(static_cast<std::size_t>(slots.numSlots()), 0);
  energyPj.assign(static_cast<std::size_t>(slots.numSlots()), 0.0);
  for (const auto& block : function.blocks()) {
    for (const auto& inst : block->instructions()) {
      const std::size_t slot = static_cast<std::size_t>(inst->slot());
      latency[slot] = resultLatencyFor(inst->opcode(), inst->type());
      energyPj[slot] = hls::opEnergyPj(inst->opcode(), inst->type());
    }
  }

  // Decode every block's schedule into MicroOps and pre-resolve the phi
  // latch pairs of each incoming CFG edge. The vector is sized up front:
  // branch MicroOps and PhiEdges point at sibling DecodedBlocks.
  decoded.resize(function.blocks().size());
  std::unordered_map<const ir::BasicBlock*, DecodedBlock*> blockIndex;
  blockIndex.reserve(function.blocks().size());
  for (std::size_t b = 0; b < function.blocks().size(); ++b) {
    decoded[b].block = function.blocks()[b].get();
    blockIndex.emplace(function.blocks()[b].get(), &decoded[b]);
  }
  for (std::size_t b = 0; b < function.blocks().size(); ++b) {
    const auto& block = function.blocks()[b];
    DecodedBlock& db = decoded[b];
    const hls::BlockSchedule& blockSched = schedule.of(block.get());
    db.stateBegin.reserve(blockSched.states.size() + 1);
    for (std::size_t s = 0; s < blockSched.states.size(); ++s) {
      db.stateBegin.push_back(static_cast<std::uint32_t>(db.microOps.size()));
      for (ir::Instruction* inst : blockSched.states[s]) {
        // Phis never appear in the issue stream: they are latched (and
        // counted) on block entry, and issuing one is a free no-op, so
        // dropping them cannot change cycle counts.
        if (inst->opcode() == Opcode::Phi)
          continue;
        MicroOp m;
        m.inst = inst;
        m.ops = slots.operandSlots(inst);
        m.slot = inst->slot();
        m.op = inst->opcode();
        m.type = inst->type();
        m.numOps = static_cast<std::uint8_t>(inst->numOperands());
        m.opType =
            inst->numOperands() > 0 ? inst->operand(0)->type() : m.type;
        m.pred = inst->cmpPred();
        m.immA = inst->immA();
        m.immB = inst->immB();
        m.latency = latency[static_cast<std::size_t>(inst->slot())];
        m.energyPj = energyPj[static_cast<std::size_t>(inst->slot())];
        const auto succs = inst->successors();
        if (!succs.empty())
          m.succ0 = blockIndex.at(succs[0]);
        if (succs.size() > 1)
          m.succ1 = blockIndex.at(succs[1]);
        db.microOps.push_back(m);
      }
    }
    db.stateBegin.push_back(static_cast<std::uint32_t>(db.microOps.size()));
    for (const auto& inst : block->instructions()) {
      if (inst->opcode() != Opcode::Phi)
        break;
      const std::int32_t* ops = slots.operandSlots(inst.get());
      const auto incoming = inst->incomingBlocks();
      for (int i = 0; i < inst->numOperands(); ++i) {
        const DecodedBlock* pred =
            blockIndex.at(incoming[static_cast<std::size_t>(i)]);
        PhiEdge* edge = nullptr;
        for (PhiEdge& candidate : db.phiEdges)
          if (candidate.pred == pred) {
            edge = &candidate;
            break;
          }
        if (edge == nullptr) {
          db.phiEdges.push_back({pred, {}});
          edge = &db.phiEdges.back();
        }
        // First entry wins if a phi lists the same predecessor twice,
        // matching incomingIndexFor's first-match behavior.
        bool seen = false;
        for (const auto& [dst, src] : edge->latches)
          if (dst == inst->slot())
            seen = true;
        if (!seen)
          edge->latches.emplace_back(inst->slot(), ops[i]);
      }
    }
  }
}

WorkerEngine::WorkerEngine(const ExecPlan& plan, interp::Memory& memory,
                           DCache& cache, ChannelSet* channels,
                           interp::LiveoutFile& liveouts,
                           std::span<const std::uint64_t> args,
                           SystemHooks* hooks)
    : plan_(&plan), memory_(&memory), cache_(&cache), channels_(channels),
      liveouts_(&liveouts), hooks_(hooks), regs_(plan.initialRegs),
      readyCycle_(plan.initialRegs.size(), 0) {
  const ir::Function& fn = *plan.fn;
  CGPA_ASSERT(static_cast<int>(args.size()) == fn.numArguments(),
              "engine arg count mismatch for @" + fn.name());
  for (int i = 0; i < fn.numArguments(); ++i)
    regs_[static_cast<std::size_t>(i)] = interp::canonicalize(
        fn.argument(i)->type(), args[static_cast<std::size_t>(i)]);
  // Arguments and constants are always ready; instruction results are not
  // until produced.
  for (int s = plan.slots.numArguments(); s < plan.slots.numValueSlots(); ++s)
    readyCycle_[static_cast<std::size_t>(s)] = kNotReady;
  decoded_ = &plan.decoded.front(); // Parallel to blocks(): the entry.
  stateEnd_ = decoded_->stateBegin[1];
  mops_ = decoded_->microOps.data();
}

WorkerStats WorkerEngine::stats() const {
  WorkerStats out = stats_;
  for (int op = 0; op < ir::kNumOpcodes; ++op)
    if (opCounts_[static_cast<std::size_t>(op)] != 0)
      out.opCounts[static_cast<Opcode>(op)] =
          opCounts_[static_cast<std::size_t>(op)];
  return out;
}

void WorkerEngine::accountParked(StepOutcome::Stall stall,
                                 StepOutcome::Wait wait, int channel,
                                 std::uint64_t cycles) {
  stats_.cyclesStalled += cycles;
  switch (stall) {
  case StepOutcome::Stall::Mem:
    stats_.stallMem += cycles;
    break;
  case StepOutcome::Stall::Fifo:
    stats_.stallFifo += cycles;
    stats_.addFifoStall(wait == StepOutcome::Wait::FifoSpace, channel,
                        cycles);
    break;
  default:
    stats_.stallDep += cycles;
    break;
  }
}

bool WorkerEngine::operandsReady(const MicroOp& mop,
                                 std::uint64_t now) const {
  for (int k = 0, n = mop.numOps; k < n; ++k)
    if (readyCycle_[static_cast<std::size_t>(mop.ops[k])] > now)
      return false;
  return true;
}

std::uint64_t WorkerEngine::operandWakeCycle(const std::int32_t* slots,
                                             int count,
                                             std::uint64_t now) const {
  std::uint64_t wake = now + 1;
  for (int k = 0; k < count; ++k) {
    std::uint64_t ready = readyCycle_[static_cast<std::size_t>(slots[k])];
    if (ready <= now)
      continue;
    if (ready == kNotReady) {
      // In flight through the cache: completion cycle was fixed at submit.
      // (A never-issued producer cannot block a reachable consumer — SSA
      // dominance plus in-order issue — but now+1 stays safe regardless.)
      ready = now + 1;
      for (const PendingLoad& load : pendingLoads_)
        if (load.slot == slots[k]) {
          ready = std::max(ready, load.doneAt);
          break;
        }
    }
    wake = std::max(wake, ready);
  }
  return wake;
}

const PhiEdge* WorkerEngine::phiEdgeInto(const DecodedBlock& decoded) const {
  if (decoded.phiEdges.empty())
    return nullptr;
  for (const PhiEdge& edge : decoded.phiEdges)
    if (edge.pred == decoded_)
      return &edge;
  CGPA_ASSERT(false, "branch into phi block along an unregistered edge");
  return nullptr;
}

bool WorkerEngine::phiInputsReady(const PhiEdge* edge,
                                  std::uint64_t now) const {
  if (edge == nullptr)
    return true;
  for (const auto& [dst, src] : edge->latches)
    if (readyCycle_[static_cast<std::size_t>(src)] > now)
      return false;
  return true;
}

std::uint64_t WorkerEngine::phiWakeCycle(const PhiEdge* edge,
                                         std::uint64_t now) const {
  std::uint64_t wake = now + 1;
  if (edge == nullptr)
    return wake;
  for (const auto& [dst, src] : edge->latches)
    wake = std::max(wake, operandWakeCycle(&src, 1, now));
  return wake;
}

void WorkerEngine::enterBlock(const DecodedBlock& decoded,
                              const PhiEdge* edge) {
  // Atomic phi evaluation against the edge being taken: read every
  // incoming value before writing any destination (a phi may feed another
  // phi of the same block).
  if (edge != nullptr) {
    phiScratch_.clear();
    for (const auto& [dst, src] : edge->latches)
      phiScratch_.emplace_back(static_cast<std::size_t>(dst),
                               regs_[static_cast<std::size_t>(src)]);
    for (const auto& [slot, value] : phiScratch_) {
      regs_[slot] = value;
      readyCycle_[slot] = 0; // Latched: usable immediately.
    }
    opCounts_[static_cast<std::size_t>(Opcode::Phi)] += edge->latches.size();
  }
  decoded_ = &decoded;
  state_ = 0;
  idxInState_ = 0;
  stateEnd_ = decoded.stateBegin[1];
  mops_ = decoded.microOps.data();
  branchTarget_ = nullptr;
}

WorkerEngine::Blocked WorkerEngine::tryIssue(const MicroOp& mop,
                                             std::uint64_t now) {
  const Opcode op = mop.op; // Never Phi: phis are dropped at decode.
  const std::int32_t* ops = mop.ops;
  if (!operandsReady(mop, now)) {
    outcome_.wait = StepOutcome::Wait::Timed;
    outcome_.stall = StepOutcome::Stall::Dep;
    outcome_.wakeAt = operandWakeCycle(ops, mop.numOps, now);
    return Blocked::Dep;
  }
  const std::size_t slot = static_cast<std::size_t>(mop.slot);

  switch (op) {
  case Opcode::Load: {
    const std::uint64_t addr = regs_[static_cast<std::size_t>(ops[0])];
    if (cache_->submit(addr, false) < 0) {
      outcome_.wait = StepOutcome::Wait::Timed;
      outcome_.stall = StepOutcome::Stall::Mem;
      outcome_.wakeAt = cache_->nextAcceptCycle(addr);
      return Blocked::Mem;
    }
    const std::uint64_t doneAt = cache_->lastAcceptDoneAt();
    pendingLoads_.push_back({static_cast<std::int32_t>(slot), doneAt,
                             memory_->load(mop.type, addr)});
    nextLoadDone_ = std::min(nextLoadDone_, doneAt);
    readyCycle_[slot] = kNotReady; // In flight until doneAt.
    break;
  }
  case Opcode::Store: {
    const std::uint64_t addr = regs_[static_cast<std::size_t>(ops[1])];
    if (cache_->submit(addr, true) < 0) {
      outcome_.wait = StepOutcome::Wait::Timed;
      outcome_.stall = StepOutcome::Stall::Mem;
      outcome_.wakeAt = cache_->nextAcceptCycle(addr);
      return Blocked::Mem;
    }
    // Fire-and-forget: the value is architecturally visible immediately;
    // the port/bank occupancy models the timing.
    memory_->store(mop.opType, addr, regs_[static_cast<std::size_t>(ops[0])]);
    break;
  }
  case Opcode::Produce: {
    CGPA_ASSERT(channels_ != nullptr, "produce without channels");
    const int channel = static_cast<int>(mop.immA);
    const std::int64_t lane = interp::patternToInt(
        mop.opType, regs_[static_cast<std::size_t>(ops[0])]);
    FifoLane& fifo = channels_->lane(channel, static_cast<int>(lane));
    const int flits = channels_->flitsOf(channel);
    if (!fifo.canPush(flits)) {
      outcome_.wait = StepOutcome::Wait::FifoSpace;
      outcome_.stall = StepOutcome::Stall::Fifo;
      outcome_.channel = channel;
      outcome_.lane = static_cast<int>(lane);
      return Blocked::Fifo;
    }
    fifo.push(regs_[static_cast<std::size_t>(ops[1])], flits);
    break;
  }
  case Opcode::ProduceBroadcast: {
    CGPA_ASSERT(channels_ != nullptr, "broadcast without channels");
    const int channel = static_cast<int>(mop.immA);
    const int flits = channels_->flitsOf(channel);
    for (int l = 0; l < channels_->lanesOf(channel); ++l)
      if (!channels_->lane(channel, l).canPush(flits)) {
        outcome_.wait = StepOutcome::Wait::FifoSpace;
        outcome_.stall = StepOutcome::Stall::Fifo;
        outcome_.channel = channel;
        outcome_.lane = l;
        return Blocked::Fifo;
      }
    const std::uint64_t value = regs_[static_cast<std::size_t>(ops[0])];
    for (int l = 0; l < channels_->lanesOf(channel); ++l)
      channels_->lane(channel, l).push(value, flits);
    break;
  }
  case Opcode::Consume: {
    CGPA_ASSERT(channels_ != nullptr, "consume without channels");
    const int channel = static_cast<int>(mop.immA);
    const std::int64_t lane = interp::patternToInt(
        mop.opType, regs_[static_cast<std::size_t>(ops[0])]);
    FifoLane& fifo = channels_->lane(channel, static_cast<int>(lane));
    if (!fifo.canPop()) {
      outcome_.wait = StepOutcome::Wait::FifoData;
      outcome_.stall = StepOutcome::Stall::Fifo;
      outcome_.channel = channel;
      outcome_.lane = static_cast<int>(lane);
      return Blocked::Fifo;
    }
    regs_[slot] = interp::canonicalize(mop.type, fifo.pop());
    readyCycle_[slot] = now;
    break;
  }
  case Opcode::ParallelFork: {
    CGPA_ASSERT(hooks_ != nullptr, "fork outside wrapper");
    std::vector<std::uint64_t> args;
    args.reserve(static_cast<std::size_t>(mop.numOps));
    for (int a = 0; a < mop.numOps; ++a)
      args.push_back(regs_[static_cast<std::size_t>(ops[a])]);
    hooks_->onFork(*mop.inst, args);
    break;
  }
  case Opcode::ParallelJoin:
    CGPA_ASSERT(hooks_ != nullptr, "join outside wrapper");
    if (!hooks_->joinReady(static_cast<int>(mop.immA))) {
      outcome_.wait = StepOutcome::Wait::Join;
      outcome_.stall = StepOutcome::Stall::Dep;
      outcome_.loopId = static_cast<int>(mop.immA);
      return Blocked::Dep;
    }
    break;
  case Opcode::StoreLiveout:
    (*liveouts_)[{static_cast<int>(mop.immA), static_cast<int>(mop.immB)}] =
        regs_[static_cast<std::size_t>(ops[0])];
    break;
  case Opcode::RetrieveLiveout: {
    const auto it = liveouts_->find(
        {static_cast<int>(mop.immA), static_cast<int>(mop.immB)});
    CGPA_ASSERT(it != liveouts_->end(), "retrieve of unset liveout");
    regs_[slot] = interp::canonicalize(mop.type, it->second);
    readyCycle_[slot] = now;
    break;
  }
  case Opcode::Br:
    branchTarget_ = mop.succ0;
    break;
  case Opcode::CondBr:
    branchTarget_ =
        regs_[static_cast<std::size_t>(ops[0])] != 0 ? mop.succ0 : mop.succ1;
    break;
  case Opcode::Ret:
    retPending_ = true;
    if (mop.numOps == 1)
      returnValue_ = regs_[static_cast<std::size_t>(ops[0])];
    break;
  case Opcode::Gep: {
    const bool hasIndex = mop.numOps == 2;
    regs_[slot] = interp::evalGep(
        regs_[static_cast<std::size_t>(ops[0])],
        hasIndex ? regs_[static_cast<std::size_t>(ops[1])] : 0, hasIndex,
        mop.immA, mop.immB);
    readyCycle_[slot] = now;
    break;
  }
  case Opcode::Select:
    regs_[slot] = regs_[static_cast<std::size_t>(ops[0])] != 0
                      ? regs_[static_cast<std::size_t>(ops[1])]
                      : regs_[static_cast<std::size_t>(ops[2])];
    readyCycle_[slot] = now;
    break;
  case Opcode::Call: {
    std::vector<std::uint64_t> args;
    args.reserve(static_cast<std::size_t>(mop.numOps));
    for (int a = 0; a < mop.numOps; ++a)
      args.push_back(regs_[static_cast<std::size_t>(ops[a])]);
    regs_[slot] = interp::evalIntrinsic(static_cast<ir::Intrinsic>(mop.immA),
                                        mop.type, args.data(),
                                        static_cast<int>(args.size()));
    readyCycle_[slot] = now + mop.latency;
    break;
  }
  case Opcode::Trunc:
  case Opcode::SExt:
  case Opcode::ZExt:
  case Opcode::SIToFP:
  case Opcode::FPToSI:
  case Opcode::FPExt:
  case Opcode::FPTrunc:
  case Opcode::PtrToInt:
  case Opcode::IntToPtr:
    regs_[slot] = interp::evalCast(op, mop.opType, mop.type,
                                   regs_[static_cast<std::size_t>(ops[0])]);
    readyCycle_[slot] = now + mop.latency;
    break;
  default:
    // Two-operand arithmetic / comparisons.
    regs_[slot] = interp::evalBinary(op, mop.opType, mop.pred,
                                     regs_[static_cast<std::size_t>(ops[0])],
                                     regs_[static_cast<std::size_t>(ops[1])]);
    readyCycle_[slot] = now + mop.latency;
    break;
  }

  ++opCounts_[static_cast<std::size_t>(op)];
  stats_.dynamicEnergyPj += mop.energyPj;
  return Blocked::No;
}

const WorkerEngine::StepOutcome& WorkerEngine::step(std::uint64_t now) {
  // Reset only the fields every consumer reads; the channel/lane/loopId
  // details are meaningful solely under the matching wait kind, which
  // tryIssue fills in whenever it reports one.
  outcome_.wait = StepOutcome::Wait::Run;
  outcome_.stall = StepOutcome::Stall::None;
  if (done_)
    return outcome_;

  // Resolve completed loads (swap-erase; slots are disjoint so order does
  // not matter). nextLoadDone_ caches the earliest outstanding completion
  // so cycles with nothing to resolve skip the scan entirely.
  if (now >= nextLoadDone_) {
    std::uint64_t earliest = kNotReady;
    for (std::size_t i = 0; i < pendingLoads_.size();) {
      const PendingLoad& load = pendingLoads_[i];
      if (now >= load.doneAt) {
        regs_[static_cast<std::size_t>(load.slot)] = load.value;
        readyCycle_[static_cast<std::size_t>(load.slot)] = now;
        pendingLoads_[i] = pendingLoads_.back();
        pendingLoads_.pop_back();
      } else {
        earliest = std::min(earliest, load.doneAt);
        ++i;
      }
    }
    nextLoadDone_ = earliest;
  }

  bool progressed = false;
  Blocked blockedReason = Blocked::No;
  while (idxInState_ < stateEnd_) {
    blockedReason = tryIssue(mops_[idxInState_], now);
    if (blockedReason != Blocked::No)
      break;
    progressed = true;
    ++idxInState_;
  }

  if (idxInState_ < stateEnd_) {
    switch (blockedReason) {
    case Blocked::Mem:
      ++stats_.stallMem;
      break;
    case Blocked::Fifo:
      ++stats_.stallFifo;
      // tryIssue filled the outcome: FifoSpace = push into a full lane,
      // FifoData = pop from an empty one, channel identifies the culprit.
      stats_.addFifoStall(outcome_.wait == StepOutcome::Wait::FifoSpace,
                          outcome_.channel, 1);
      break;
    default:
      ++stats_.stallDep;
      break;
    }
    if (progressed)
      ++stats_.cyclesActive;
    else
      ++stats_.cyclesStalled;
    return outcome_; // Retry the remaining instructions next cycle.
  }

  // State complete: advance (the transition itself is the cycle boundary;
  // idxInState_ already sits at the next state's first instruction).
  if (state_ + 1 < decoded_->numStates()) {
    ++state_;
    stateEnd_ = decoded_->stateBegin[static_cast<std::size_t>(state_) + 1];
    ++stats_.cyclesActive;
    ++stats_.cyclesBusy;
    return outcome_;
  }
  if (retPending_) {
    done_ = true;
    ++stats_.cyclesActive;
    ++stats_.cyclesBusy;
    return outcome_;
  }
  CGPA_ASSERT(branchTarget_ != nullptr,
              "block ended without a branch target in @" + plan_->fn->name());
  // The edge latches the successor's phi registers: their inputs must be
  // valid (an outstanding cache miss feeding a phi stalls the FSM here).
  const DecodedBlock& nextDecoded = *branchTarget_;
  const PhiEdge* edge = phiEdgeInto(nextDecoded);
  if (!phiInputsReady(edge, now)) {
    ++stats_.stallMem;
    if (progressed)
      ++stats_.cyclesActive;
    else
      ++stats_.cyclesStalled;
    outcome_.wait = StepOutcome::Wait::Timed;
    outcome_.stall = StepOutcome::Stall::Mem;
    outcome_.wakeAt = phiWakeCycle(edge, now);
    return outcome_;
  }
  enterBlock(nextDecoded, edge);
  ++stats_.cyclesActive;
  ++stats_.cyclesBusy;
  return outcome_;
}

} // namespace cgpa::sim
