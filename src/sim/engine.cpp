#include "sim/engine.hpp"

#include <vector>

#include "interp/eval.hpp"
#include "support/diag.hpp"

namespace cgpa::sim {

using ir::Instruction;
using ir::Opcode;

WorkerEngine::WorkerEngine(const ir::Function& fn,
                           const hls::FunctionSchedule& schedule,
                           interp::Memory& memory, DCache& cache,
                           ChannelSet* channels,
                           interp::LiveoutFile& liveouts,
                           std::span<const std::uint64_t> args,
                           SystemHooks* hooks)
    : fn_(&fn), schedule_(&schedule), memory_(&memory), cache_(&cache),
      channels_(channels), liveouts_(&liveouts), hooks_(hooks) {
  CGPA_ASSERT(static_cast<int>(args.size()) == fn.numArguments(),
              "engine arg count mismatch for @" + fn.name());
  for (int i = 0; i < fn.numArguments(); ++i)
    registers_[fn.argument(i)] = interp::canonicalize(
        fn.argument(i)->type(), args[static_cast<std::size_t>(i)]);
  block_ = fn.entry();
}

std::uint64_t WorkerEngine::valueOf(const ir::Value* value) const {
  if (const ir::Constant* constant = ir::asConstant(value))
    return interp::constantPattern(*constant);
  const auto it = registers_.find(value);
  CGPA_ASSERT(it != registers_.end(),
              "engine: read of undefined value %" + value->name());
  return it->second;
}

bool WorkerEngine::valueReady(const ir::Value* value,
                              std::uint64_t now) const {
  const Instruction* def = ir::asInstruction(value);
  if (def == nullptr)
    return true; // Constants and arguments.
  if (pendingLoads_.count(def) != 0)
    return false;
  const auto it = readyCycle_.find(def);
  if (it != readyCycle_.end() && it->second > now)
    return false;
  return registers_.count(def) != 0;
}

bool WorkerEngine::operandsReady(const Instruction* inst,
                                 std::uint64_t now) const {
  for (const ir::Value* operand : inst->operands())
    if (!valueReady(operand, now))
      return false;
  return true;
}

bool WorkerEngine::phiInputsReady(const ir::BasicBlock* next,
                                  std::uint64_t now) const {
  for (const auto& inst : next->instructions()) {
    if (inst->opcode() != Opcode::Phi)
      break;
    if (!valueReady(inst->incomingValueFor(block_), now))
      return false;
  }
  return true;
}

void WorkerEngine::enterBlock(const ir::BasicBlock* next) {
  // Atomic phi evaluation against the edge being taken.
  std::vector<std::pair<const ir::Value*, std::uint64_t>> phiValues;
  for (const auto& inst : next->instructions()) {
    if (inst->opcode() != Opcode::Phi)
      break;
    phiValues.emplace_back(inst.get(),
                           valueOf(inst->incomingValueFor(block_)));
  }
  for (const auto& [phi, value] : phiValues) {
    registers_[phi] = value;
    ++stats_.opCounts[Opcode::Phi];
  }
  block_ = next;
  state_ = 0;
  idxInState_ = 0;
  branchTarget_ = nullptr;
}

WorkerEngine::Blocked WorkerEngine::tryIssue(Instruction* inst,
                                             std::uint64_t now) {
  const Opcode op = inst->opcode();
  if (op == Opcode::Phi)
    return Blocked::No; // Evaluated on block entry.

  if (!operandsReady(inst, now))
    return Blocked::Dep;

  switch (op) {
  case Opcode::Load: {
    const std::uint64_t addr = valueOf(inst->operand(0));
    const int ticket = cache_->submit(addr, false);
    if (ticket < 0)
      return Blocked::Mem;
    pendingLoads_[inst] = {ticket, addr, memory_->load(inst->type(), addr)};
    break;
  }
  case Opcode::Store: {
    const std::uint64_t addr = valueOf(inst->operand(1));
    const int ticket = cache_->submit(addr, true);
    if (ticket < 0)
      return Blocked::Mem;
    // Fire-and-forget: the value is architecturally visible immediately;
    // the port/bank occupancy models the timing.
    memory_->store(inst->operand(0)->type(), addr, valueOf(inst->operand(0)));
    (void)ticket;
    break;
  }
  case Opcode::Produce: {
    CGPA_ASSERT(channels_ != nullptr, "produce without channels");
    const int channel = inst->channelId();
    const std::int64_t lane = interp::patternToInt(
        inst->operand(0)->type(), valueOf(inst->operand(0)));
    FifoLane& fifo = channels_->lane(channel, static_cast<int>(lane));
    const int flits = channels_->flitsOf(channel);
    if (!fifo.canPush(flits))
      return Blocked::Fifo;
    fifo.push(valueOf(inst->operand(1)), flits);
    break;
  }
  case Opcode::ProduceBroadcast: {
    CGPA_ASSERT(channels_ != nullptr, "broadcast without channels");
    const int channel = inst->channelId();
    const int flits = channels_->flitsOf(channel);
    for (int l = 0; l < channels_->lanesOf(channel); ++l)
      if (!channels_->lane(channel, l).canPush(flits))
        return Blocked::Fifo;
    const std::uint64_t value = valueOf(inst->operand(0));
    for (int l = 0; l < channels_->lanesOf(channel); ++l)
      channels_->lane(channel, l).push(value, flits);
    break;
  }
  case Opcode::Consume: {
    CGPA_ASSERT(channels_ != nullptr, "consume without channels");
    const int channel = inst->channelId();
    const std::int64_t lane = interp::patternToInt(
        inst->operand(0)->type(), valueOf(inst->operand(0)));
    FifoLane& fifo = channels_->lane(channel, static_cast<int>(lane));
    if (!fifo.canPop())
      return Blocked::Fifo;
    registers_[inst] = interp::canonicalize(inst->type(), fifo.pop());
    readyCycle_[inst] = now;
    break;
  }
  case Opcode::ParallelFork: {
    CGPA_ASSERT(hooks_ != nullptr, "fork outside wrapper");
    std::vector<std::uint64_t> args;
    args.reserve(static_cast<std::size_t>(inst->numOperands()));
    for (ir::Value* operand : inst->operands())
      args.push_back(valueOf(operand));
    hooks_->onFork(*inst, args);
    break;
  }
  case Opcode::ParallelJoin:
    CGPA_ASSERT(hooks_ != nullptr, "join outside wrapper");
    if (!hooks_->joinReady(inst->loopId()))
      return Blocked::Dep;
    break;
  case Opcode::StoreLiveout:
    (*liveouts_)[{inst->loopId(), inst->liveoutId()}] =
        valueOf(inst->operand(0));
    break;
  case Opcode::RetrieveLiveout: {
    const auto it = liveouts_->find({inst->loopId(), inst->liveoutId()});
    CGPA_ASSERT(it != liveouts_->end(), "retrieve of unset liveout");
    registers_[inst] = interp::canonicalize(inst->type(), it->second);
    readyCycle_[inst] = now;
    break;
  }
  case Opcode::Br:
    branchTarget_ = inst->successors()[0];
    break;
  case Opcode::CondBr:
    branchTarget_ = valueOf(inst->operand(0)) != 0 ? inst->successors()[0]
                                                   : inst->successors()[1];
    break;
  case Opcode::Ret:
    retPending_ = true;
    if (inst->numOperands() == 1)
      returnValue_ = valueOf(inst->operand(0));
    break;
  case Opcode::Gep: {
    const bool hasIndex = inst->numOperands() == 2;
    registers_[inst] = interp::evalGep(
        valueOf(inst->operand(0)), hasIndex ? valueOf(inst->operand(1)) : 0,
        hasIndex, inst->gepScale(), inst->gepOffset());
    readyCycle_[inst] = now;
    break;
  }
  case Opcode::Select:
    registers_[inst] = valueOf(inst->operand(0)) != 0
                           ? valueOf(inst->operand(1))
                           : valueOf(inst->operand(2));
    readyCycle_[inst] = now;
    break;
  case Opcode::Call: {
    std::vector<std::uint64_t> args;
    for (ir::Value* operand : inst->operands())
      args.push_back(valueOf(operand));
    registers_[inst] =
        interp::evalIntrinsic(inst->intrinsic(), inst->type(), args.data(),
                              static_cast<int>(args.size()));
    readyCycle_[inst] =
        now + static_cast<std::uint64_t>(
                  hls::opTiming(op, inst->type()).latency);
    break;
  }
  case Opcode::Trunc:
  case Opcode::SExt:
  case Opcode::ZExt:
  case Opcode::SIToFP:
  case Opcode::FPToSI:
  case Opcode::FPExt:
  case Opcode::FPTrunc:
  case Opcode::PtrToInt:
  case Opcode::IntToPtr:
    registers_[inst] = interp::evalCast(op, inst->operand(0)->type(),
                                        inst->type(), valueOf(inst->operand(0)));
    readyCycle_[inst] =
        now + static_cast<std::uint64_t>(
                  hls::opTiming(op, inst->type()).latency);
    break;
  default: {
    // Two-operand arithmetic / comparisons.
    registers_[inst] = interp::evalBinary(op, inst->operand(0)->type(),
                                          inst->cmpPred(),
                                          valueOf(inst->operand(0)),
                                          valueOf(inst->operand(1)));
    readyCycle_[inst] =
        now + static_cast<std::uint64_t>(
                  hls::opTiming(op, inst->type()).latency);
    break;
  }
  }

  ++stats_.opCounts[op];
  stats_.dynamicEnergyPj += hls::opEnergyPj(op, inst->type());
  return Blocked::No;
}

void WorkerEngine::step(std::uint64_t now) {
  if (done_)
    return;
  ++stats_.cyclesActive;

  // Resolve completed loads.
  for (auto it = pendingLoads_.begin(); it != pendingLoads_.end();) {
    if (cache_->pollDone(it->second.ticket, now)) {
      registers_[it->first] = it->second.value;
      readyCycle_[it->first] = now;
      it = pendingLoads_.erase(it);
    } else {
      ++it;
    }
  }

  const hls::BlockSchedule& blockSchedule = schedule_->of(block_);
  const auto& state = blockSchedule.states[static_cast<std::size_t>(state_)];

  Blocked blockedReason = Blocked::No;
  while (idxInState_ < state.size()) {
    Instruction* inst = state[idxInState_];
    blockedReason = tryIssue(inst, now);
    if (blockedReason != Blocked::No)
      break;
    ++idxInState_;
  }

  if (idxInState_ < state.size()) {
    switch (blockedReason) {
    case Blocked::Mem:
      ++stats_.stallMem;
      break;
    case Blocked::Fifo:
      ++stats_.stallFifo;
      break;
    default:
      ++stats_.stallDep;
      break;
    }
    return; // Retry the remaining instructions next cycle.
  }

  // State complete: advance (the transition itself is the cycle boundary).
  if (state_ + 1 < blockSchedule.numStates()) {
    ++state_;
    idxInState_ = 0;
    return;
  }
  if (retPending_) {
    done_ = true;
    return;
  }
  CGPA_ASSERT(branchTarget_ != nullptr,
              "block ended without a branch target in @" + fn_->name());
  // The edge latches the successor's phi registers: their inputs must be
  // valid (an outstanding cache miss feeding a phi stalls the FSM here).
  if (!phiInputsReady(branchTarget_, now)) {
    ++stats_.stallMem;
    return;
  }
  enterBlock(branchTarget_);
}

} // namespace cgpa::sim
