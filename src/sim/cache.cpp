#include "sim/cache.hpp"

#include "support/diag.hpp"

namespace cgpa::sim {

DCache::DCache(const CacheConfig& config) : config_(config) {
  CGPA_ASSERT(config.banks > 0 && config.lines % config.banks == 0,
              "lines must divide evenly across banks");
  setsPerBank_ = config.lines / config.banks;
  banks_.resize(static_cast<std::size_t>(config.banks));
  for (Bank& bank : banks_)
    bank.tags.assign(static_cast<std::size_t>(setsPerBank_), 0);
}

void DCache::beginCycle(std::uint64_t now) {
  now_ = now;
  for (Bank& bank : banks_)
    bank.acceptedThisCycle = false;
}

int DCache::bankOf(std::uint64_t addr) const {
  return static_cast<int>((addr / static_cast<std::uint64_t>(config_.blockBytes)) %
                          static_cast<std::uint64_t>(config_.banks));
}

bool DCache::lookup(std::uint64_t addr) {
  const std::uint64_t blockAddr =
      addr / static_cast<std::uint64_t>(config_.blockBytes);
  const int bank = bankOf(addr);
  const std::uint64_t setIndex =
      (blockAddr / static_cast<std::uint64_t>(config_.banks)) %
      static_cast<std::uint64_t>(setsPerBank_);
  const std::uint64_t tag = blockAddr + 1; // +1 so 0 stays "invalid".
  std::uint64_t& slot =
      banks_[static_cast<std::size_t>(bank)].tags[static_cast<std::size_t>(setIndex)];
  if (slot == tag)
    return true;
  slot = tag; // Allocate on read and write misses.
  return false;
}

int DCache::submit(std::uint64_t addr, bool isWrite) {
  (void)isWrite;
  Bank& bank = banks_[static_cast<std::size_t>(bankOf(addr))];
  if (bank.acceptedThisCycle || bank.busyUntil > now_) {
    ++stats_.bankRejects;
    return -1;
  }
  bank.acceptedThisCycle = true;
  ++stats_.accesses;
  const bool hit = lookup(addr);
  std::uint64_t done = now_ + static_cast<std::uint64_t>(config_.hitLatency);
  if (hit) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
    done += static_cast<std::uint64_t>(config_.missPenalty);
    bank.busyUntil = done; // Blocking bank: one outstanding miss.
  }
  const int ticket = nextTicket_++;
  ticketDone_[ticket] = done;
  return ticket;
}

bool DCache::pollDone(int ticket, std::uint64_t now) {
  const auto it = ticketDone_.find(ticket);
  CGPA_ASSERT(it != ticketDone_.end(), "unknown cache ticket");
  if (now < it->second)
    return false;
  ticketDone_.erase(it);
  return true;
}

int DCache::blockingAccess(std::uint64_t addr, bool isWrite) {
  (void)isWrite;
  ++stats_.accesses;
  if (lookup(addr)) {
    ++stats_.hits;
    return config_.hitLatency;
  }
  ++stats_.misses;
  return config_.hitLatency + config_.missPenalty;
}

} // namespace cgpa::sim
