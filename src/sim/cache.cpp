#include "sim/cache.hpp"

#include "sim/fault.hpp"
#include "support/diag.hpp"

namespace cgpa::sim {

namespace {

bool isPow2(int v) { return v > 0 && (v & (v - 1)) == 0; }

int log2Of(int v) {
  int shift = 0;
  while ((1 << shift) < v)
    ++shift;
  return shift;
}

} // namespace

DCache::DCache(const CacheConfig& config) : config_(config) {
  CGPA_ASSERT(config.banks > 0 && config.lines % config.banks == 0,
              "lines must divide evenly across banks");
  setsPerBank_ = config.lines / config.banks;
  banks_.resize(static_cast<std::size_t>(config.banks));
  for (Bank& bank : banks_)
    bank.tags.assign(static_cast<std::size_t>(setsPerBank_), 0);
  shifts_ =
      isPow2(config.blockBytes) && isPow2(config.banks) && isPow2(setsPerBank_);
  if (shifts_) {
    blockShift_ = log2Of(config.blockBytes);
    bankShift_ = log2Of(config.banks);
    bankMask_ = static_cast<std::uint64_t>(config.banks) - 1;
    setMask_ = static_cast<std::uint64_t>(setsPerBank_) - 1;
  }
}

bool DCache::lookup(std::uint64_t addr) {
  std::uint64_t blockAddr;
  std::uint64_t setIndex;
  const int bank = bankOf(addr);
  if (shifts_) {
    blockAddr = addr >> blockShift_;
    setIndex = (blockAddr >> bankShift_) & setMask_;
  } else {
    blockAddr = addr / static_cast<std::uint64_t>(config_.blockBytes);
    setIndex = (blockAddr / static_cast<std::uint64_t>(config_.banks)) %
               static_cast<std::uint64_t>(setsPerBank_);
  }
  const std::uint64_t tag = blockAddr + 1; // +1 so 0 stays "invalid".
  std::uint64_t& slot =
      banks_[static_cast<std::size_t>(bank)].tags[static_cast<std::size_t>(setIndex)];
  if (slot == tag)
    return true;
  slot = tag; // Allocate on read and write misses.
  return false;
}

int DCache::submit(std::uint64_t addr, bool isWrite) {
  const int bankIndex = bankOf(addr);
  Bank& bank = banks_[static_cast<std::size_t>(bankIndex)];
  if (bank.lastAcceptCycle == now_ + 1 || bank.busyUntil > now_) {
    ++stats_.bankRejects;
    return -1;
  }
  bank.lastAcceptCycle = now_ + 1;
  ++stats_.accesses;
  const bool hit = lookup(addr);
  if (tracer_ != nullptr)
    tracer_->onCacheAccess(bankIndex, hit, isWrite);
  std::uint64_t done = now_ + static_cast<std::uint64_t>(config_.hitLatency);
  if (faults_ != nullptr && faults_->cachePerturb())
    done += static_cast<std::uint64_t>(faults_->cacheExtraCycles());
  if (hit) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
    done += static_cast<std::uint64_t>(config_.missPenalty);
    bank.busyUntil = done; // Blocking bank: one outstanding miss.
  }
  lastAcceptDoneAt_ = done;
  return nextTicket_++;
}

std::uint64_t DCache::nextAcceptCycle(std::uint64_t addr) const {
  const Bank& bank = banks_[static_cast<std::size_t>(bankOf(addr))];
  return bank.busyUntil > now_ + 1 ? bank.busyUntil : now_ + 1;
}

int DCache::blockingAccess(std::uint64_t addr, bool isWrite) {
  ++stats_.accesses;
  const bool hit = lookup(addr);
  if (tracer_ != nullptr)
    tracer_->onCacheAccess(bankOf(addr), hit, isWrite);
  if (hit) {
    ++stats_.hits;
    return config_.hitLatency;
  }
  ++stats_.misses;
  return config_.hitLatency + config_.missPenalty;
}

} // namespace cgpa::sim
