// Banked, direct-mapped data cache with a request/response crossbar — the
// memory system of the paper's evaluation platform (512 lines, 128-byte
// blocks, 8 ports into 8 banks, shared by every worker and the CPU core).
//
// Each bank accepts one request per cycle (crossbar arbitration is
// first-come within a cycle; the system rotates worker step order for
// round-robin fairness) and blocks for the miss penalty on a miss.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/tracer.hpp"

namespace cgpa::sim {

class FaultInjector;

struct CacheConfig {
  int lines = 512;      ///< Total direct-mapped lines across all banks.
  int blockBytes = 128; ///< Line size.
  int banks = 8;        ///< One port per bank.
  int hitLatency = 2;   ///< Cycles from accept to data.
  int missPenalty = 24; ///< Extra cycles on a miss (DDR access).
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t bankRejects = 0; ///< Requests refused by a busy bank/port.

  double hitRate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(accesses);
  }
};

class DCache {
public:
  explicit DCache(const CacheConfig& config);

  /// Start a new cycle; re-arms each bank's accept port.
  void beginCycle(std::uint64_t now) { now_ = now; }

  /// Try to submit a request. Returns a ticket id (>= 0) when the bank
  /// accepted it this cycle, or -1 (caller retries next cycle). Latencies
  /// are determinate at accept time: the completion cycle of an accepted
  /// request is read back with lastAcceptDoneAt(), so callers track their
  /// own outstanding requests without per-access map churn here.
  int submit(std::uint64_t addr, bool isWrite);

  /// Completion cycle of the most recently accepted request.
  std::uint64_t lastAcceptDoneAt() const { return lastAcceptDoneAt_; }

  /// Earliest future cycle at which the bank serving `addr` could accept a
  /// new request (exact when the bank is mid-miss, next cycle otherwise).
  /// Lets the wakeup scheduler park an engine whose submit was rejected.
  std::uint64_t nextAcceptCycle(std::uint64_t addr) const;

  const CacheStats& stats() const { return stats_; }
  const CacheConfig& config() const { return config_; }

  /// Install an observability tracer (nullptr disables; default). The
  /// tracer sees every accepted access with its bank and hit/miss outcome.
  void setTracer(Tracer* tracer) { tracer_ = tracer; }

  /// Install a seeded fault injector (nullptr disables; default). Fired
  /// faults add extra latency to an accepted access — the bank behaves as
  /// if the DDR response were slow (sim/fault.hpp).
  void setFaultInjector(FaultInjector* faults) { faults_ = faults; }

  /// One-shot timed access for the sequential MIPS-core model: returns the
  /// access latency in cycles (hit or miss) and updates tags/stats.
  int blockingAccess(std::uint64_t addr, bool isWrite);

private:
  struct Bank {
    std::vector<std::uint64_t> tags; // tag+1, 0 = invalid.
    /// Cycle stamp of the last accepted request + 1 (0 = never): compares
    /// against now_ so beginCycle need not touch every bank.
    std::uint64_t lastAcceptCycle = 0;
    std::uint64_t busyUntil = 0; ///< Bank blocked during a miss.
  };

  // The default geometry (128B blocks, 8 banks, 64 sets/bank) is all
  // powers of two, so the per-access address math reduces to shifts and
  // masks; shifts_ stays false for odd geometries and we divide instead.
  int bankOf(std::uint64_t addr) const {
    if (shifts_)
      return static_cast<int>((addr >> blockShift_) & bankMask_);
    return static_cast<int>(
        (addr / static_cast<std::uint64_t>(config_.blockBytes)) %
        static_cast<std::uint64_t>(config_.banks));
  }
  bool lookup(std::uint64_t addr); // Updates tags; returns hit.

  CacheConfig config_;
  int setsPerBank_;
  bool shifts_ = false;
  int blockShift_ = 0;
  int bankShift_ = 0;
  std::uint64_t bankMask_ = 0;
  std::uint64_t setMask_ = 0;
  std::vector<Bank> banks_;
  std::uint64_t now_ = 0;
  int nextTicket_ = 0;
  std::uint64_t lastAcceptDoneAt_ = 0;
  CacheStats stats_;
  Tracer* tracer_ = nullptr;
  FaultInjector* faults_ = nullptr;
};

} // namespace cgpa::sim
