// Timing model of the baseline 32-bit MIPS software core (the paper's CPU
// reference point): single-issue in-order execution over the reference
// interpreter, with per-op latencies and a single blocking port into the
// shared data cache.
#pragma once

#include <map>

#include "interp/memory.hpp"
#include "ir/function.hpp"
#include "sim/cache.hpp"

namespace cgpa::sim {

struct MipsResult {
  std::uint64_t cycles = 0;
  std::uint64_t returnValue = 0;
  CacheStats cache;
  std::map<ir::Opcode, std::uint64_t> opCounts;

  double timeMicros(double freqMHz) const {
    return static_cast<double>(cycles) / freqMHz;
  }
};

/// Execute `function` functionally while charging MIPS-core cycle costs.
MipsResult runMipsModel(const ir::Function& function,
                        std::span<const std::uint64_t> args,
                        interp::Memory& memory, const CacheConfig& cacheCfg);

} // namespace cgpa::sim
