// Cycle-level execution engine for one hardware worker (or the wrapper
// co-processor): walks the worker's FSM schedule state by state, executing
// instructions functionally while modeling cache latency, FIFO
// backpressure, and multi-cycle operator latencies.
#pragma once

#include <map>
#include <span>
#include <unordered_map>

#include "hls/schedule.hpp"
#include "interp/interpreter.hpp"
#include "interp/memory.hpp"
#include "sim/cache.hpp"
#include "sim/fifo.hpp"

namespace cgpa::sim {

struct WorkerStats {
  std::map<ir::Opcode, std::uint64_t> opCounts;
  std::uint64_t stallMem = 0;  ///< Cycles blocked on cache port/response.
  std::uint64_t stallFifo = 0; ///< Cycles blocked on FIFO full/empty.
  std::uint64_t stallDep = 0;  ///< Cycles blocked on operand latency / join.
  std::uint64_t cyclesActive = 0;
  double dynamicEnergyPj = 0.0; ///< Accumulated datapath switching energy.
};

/// Fork/join callbacks implemented by the system simulator; only the
/// wrapper engine invokes them.
class SystemHooks {
public:
  virtual ~SystemHooks() = default;
  virtual void onFork(const ir::Instruction& inst,
                      std::span<const std::uint64_t> args) = 0;
  virtual bool joinReady(int loopId) = 0;
};

class WorkerEngine {
public:
  WorkerEngine(const ir::Function& fn, const hls::FunctionSchedule& schedule,
               interp::Memory& memory, DCache& cache, ChannelSet* channels,
               interp::LiveoutFile& liveouts,
               std::span<const std::uint64_t> args, SystemHooks* hooks);

  bool done() const { return done_; }
  std::uint64_t returnValue() const { return returnValue_; }
  const WorkerStats& stats() const { return stats_; }

  /// Advance one cycle.
  void step(std::uint64_t now);

private:
  enum class Blocked { No, Mem, Fifo, Dep };

  std::uint64_t valueOf(const ir::Value* value) const;
  bool operandsReady(const ir::Instruction* inst, std::uint64_t now) const;
  bool valueReady(const ir::Value* value, std::uint64_t now) const;
  bool phiInputsReady(const ir::BasicBlock* next, std::uint64_t now) const;
  Blocked tryIssue(ir::Instruction* inst, std::uint64_t now);
  void enterBlock(const ir::BasicBlock* next);

  const ir::Function* fn_;
  const hls::FunctionSchedule* schedule_;
  interp::Memory* memory_;
  DCache* cache_;
  ChannelSet* channels_;
  interp::LiveoutFile* liveouts_;
  SystemHooks* hooks_;

  std::unordered_map<const ir::Value*, std::uint64_t> registers_;
  std::unordered_map<const ir::Value*, std::uint64_t> readyCycle_;
  struct PendingLoad {
    int ticket;
    std::uint64_t addr;
    /// Value latched when the request entered the memory system (issue
    /// order equals program order per worker, so later stores must not be
    /// observed — WAR correctness).
    std::uint64_t value;
  };
  std::unordered_map<const ir::Instruction*, PendingLoad> pendingLoads_;

  const ir::BasicBlock* block_ = nullptr;
  int state_ = 0;
  std::size_t idxInState_ = 0;
  const ir::BasicBlock* branchTarget_ = nullptr;
  bool retPending_ = false;
  bool done_ = false;
  std::uint64_t returnValue_ = 0;
  WorkerStats stats_;
};

} // namespace cgpa::sim
