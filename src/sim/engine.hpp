// Cycle-level execution engine for one hardware worker (or the wrapper
// co-processor): walks the worker's FSM schedule state by state, executing
// instructions functionally while modeling cache latency, FIFO
// backpressure, and multi-cycle operator latencies.
//
// The register file is a dense std::vector indexed by ir::SlotMap slots
// (constants folded into preloaded slots), so reading an operand on the
// per-cycle hot path is a single array load — no hashing, no allocation.
// step() reports a StepOutcome describing the exact wakeup condition of a
// blocked engine, which lets the system scheduler park it instead of
// busy-polling (see sim/system.cpp).
#pragma once

#include <array>
#include <map>
#include <span>
#include <unordered_map>
#include <vector>

#include "hls/schedule.hpp"
#include "interp/interpreter.hpp"
#include "interp/memory.hpp"
#include "ir/slots.hpp"
#include "sim/cache.hpp"
#include "sim/fifo.hpp"

namespace cgpa::sim {

/// Per-engine counters, including the cycle-attribution ledger: every
/// live engine-cycle ends in exactly one of {busy, stallMem,
/// stallFifoFull, stallFifoEmpty, stallDep}, so
///   cyclesBusy + stallMem + stallFifoFull + stallFifoEmpty + stallDep
///     == cyclesActive + cyclesStalled
/// holds as an invariant (enforced by fuzz::invariants::checkSimResult),
/// and adding cyclesIdle (filled at SimResult assembly) extends the
/// partition to the full run: Σ causes + idle == total run cycles.
struct WorkerStats {
  std::map<ir::Opcode, std::uint64_t> opCounts;
  std::uint64_t stallMem = 0;  ///< Cycles blocked on cache port/response.
  /// Cycles blocked on FIFO full/empty; always stallFifoFull +
  /// stallFifoEmpty (kept as its own tally for compatibility).
  std::uint64_t stallFifo = 0;
  std::uint64_t stallFifoFull = 0;  ///< Push blocked: consumer back-pressure.
  std::uint64_t stallFifoEmpty = 0; ///< Pop blocked: producer starvation.
  std::uint64_t stallDep = 0;  ///< Cycles blocked on operand latency / join.
  /// Cycles in which the engine made forward progress (issued at least one
  /// instruction, advanced an FSM state, or took a branch).
  std::uint64_t cyclesActive = 0;
  /// Fully-stalled cycles: stepped (or parked) without issuing anything.
  /// cyclesActive + cyclesStalled = total cycles the engine was live.
  std::uint64_t cyclesStalled = 0;
  /// Cycles whose step ended unblocked (a clean FSM-state yield) — the
  /// "busy" cause of the ledger. Disjoint from every stall cause; note a
  /// blocked-ending cycle that still issued instructions counts toward
  /// cyclesActive but NOT cyclesBusy (its cause is the stall that ended it).
  std::uint64_t cyclesBusy = 0;
  /// Cycles the engine was not live (pre-spawn + post-retirement tail for
  /// workers; 0 while running). Computed at SimResult assembly.
  std::uint64_t cyclesIdle = 0;
  /// Per-channel split of stallFifoFull / stallFifoEmpty, indexed by
  /// channel id (lazily sized — growth happens on the already-slow stall
  /// path). Each vector sums to its total.
  std::vector<std::uint64_t> stallFifoFullByChannel;
  std::vector<std::uint64_t> stallFifoEmptyByChannel;
  double dynamicEnergyPj = 0.0; ///< Accumulated datapath switching energy.

  /// Attribute `cycles` FIFO-blocked cycles to (full/empty, channel).
  /// Shared by both execution tiers so the split stays bit-identical.
  void addFifoStall(bool full, int channel, std::uint64_t cycles) {
    std::uint64_t& total = full ? stallFifoFull : stallFifoEmpty;
    total += cycles;
    if (channel < 0)
      return;
    std::vector<std::uint64_t>& perChannel =
        full ? stallFifoFullByChannel : stallFifoEmptyByChannel;
    if (perChannel.size() <= static_cast<std::size_t>(channel))
      perChannel.resize(static_cast<std::size_t>(channel) + 1, 0);
    perChannel[static_cast<std::size_t>(channel)] += cycles;
  }
};

/// Fork/join callbacks implemented by the system simulator; only the
/// wrapper engine invokes them.
class SystemHooks {
public:
  virtual ~SystemHooks() = default;
  virtual void onFork(const ir::Instruction& inst,
                      std::span<const std::uint64_t> args) = 0;
  virtual bool joinReady(int loopId) = 0;
};

/// One scheduled instruction, pre-decoded for the issue loop: opcode,
/// types, predicate, immediates, result slot, and a pointer into the
/// SlotMap's flat operand-slot table. Issuing reads this one contiguous
/// struct instead of chasing Instruction -> operand Value pointers
/// scattered across the heap.
struct DecodedBlock;

struct MicroOp {
  const std::int32_t* ops;  ///< Operand slots (into SlotMap storage).
  ir::Instruction* inst;    ///< Original instruction (fork hook only).
  const DecodedBlock* succ0 = nullptr; ///< Br / CondBr-true target.
  const DecodedBlock* succ1 = nullptr; ///< CondBr-false target.
  std::int64_t immA = 0; ///< gepScale / channelId / loopId / intrinsic.
  std::int64_t immB = 0; ///< gepOffset / taskIndex / liveoutId.
  double energyPj = 0.0;
  std::int32_t slot = 0;
  std::uint32_t latency = 0;
  ir::Opcode op;
  ir::Type type;   ///< Result type.
  ir::Type opType; ///< operand(0) type (value type for stores).
  ir::CmpPred pred;
  std::uint8_t numOps = 0;
};

/// Phi latches of one CFG edge: (destination slot, incoming slot) pairs,
/// pre-resolved so block entry never searches phi incoming lists.
struct PhiEdge {
  const DecodedBlock* pred;
  std::vector<std::pair<std::int32_t, std::int32_t>> latches;
};

/// A basic block's schedule, decoded: all states' MicroOps in one
/// contiguous array (state s spans [stateBegin[s], stateBegin[s+1])) plus
/// the per-predecessor phi latch lists. Branch MicroOps point directly at
/// the successor's DecodedBlock, so taking an edge involves no lookup.
struct DecodedBlock {
  const ir::BasicBlock* block = nullptr; ///< Source block (diagnostics).
  std::vector<MicroOp> microOps;
  std::vector<std::uint32_t> stateBegin; ///< numStates() + 1 offsets.
  std::vector<PhiEdge> phiEdges; ///< Empty when the block has no phis.
  int numStates() const { return static_cast<int>(stateBegin.size()) - 1; }
};

/// Immutable per-function execution plan shared by every engine running
/// that function: the FSM schedule, the dense slot numbering, per-slot
/// constant/latency/energy tables, and the pre-decoded MicroOp form of
/// every block. Built once per (function, schedule) by the system runner
/// so forking a worker costs one vector copy. Not copyable: MicroOps point
/// into this plan's SlotMap storage.
struct ExecPlan {
  ExecPlan(const ir::Function& function, hls::FunctionSchedule schedule);
  ExecPlan(const ExecPlan&) = delete;
  ExecPlan& operator=(const ExecPlan&) = delete;

  const ir::Function* fn;
  hls::FunctionSchedule schedule;
  ir::SlotMap slots;
  /// Register-file template: zeros with constant patterns preloaded.
  std::vector<std::uint64_t> initialRegs;
  /// Result latency (cycles from issue to use) per instruction slot,
  /// mirroring the engine's issue semantics: zero for latched results
  /// (gep, select, consume, retrieve_liveout, phi) and control/effect ops,
  /// hls::opTiming for arithmetic, casts, and calls.
  std::vector<std::uint32_t> latency;
  /// Per-issue dynamic energy per instruction slot.
  std::vector<double> energyPj;
  /// Pre-decoded schedule per block, parallel to fn->blocks() (so the
  /// entry block is decoded.front()). Sized once; MicroOps and PhiEdges
  /// hold stable pointers into this vector.
  std::vector<DecodedBlock> decoded;
};

/// How a step ended, and — when blocked — the exact condition under
/// which re-stepping the engine could make progress. The system
/// scheduler parks the engine on that condition; stepping a parked
/// engine earlier is always safe (it just re-blocks), stepping it later
/// than the condition would change simulated timing. Shared by every
/// execution tier (the interpreting WorkerEngine and the threaded-code
/// tier in sim/exec), so the scheduler is engine-agnostic.
struct StepOutcome {
  enum class Wait : std::uint8_t {
    Run,       ///< Progressed (or finished): step again next cycle.
    Timed,     ///< Blocked until a known cycle: re-step at `wakeAt`.
    FifoSpace, ///< Push blocked on a full lane: wake on pop of (channel, lane).
    FifoData,  ///< Pop blocked on an empty lane: wake on push to (channel, lane).
    Join,      ///< parallel_join: wake when a worker of `loopId` finishes.
  };
  /// Stall class the skipped cycles are accounted under while parked.
  enum class Stall : std::uint8_t { None, Mem, Fifo, Dep };
  Wait wait = Wait::Run;
  Stall stall = Stall::None;
  std::uint64_t wakeAt = 0; ///< Wait::Timed only.
  int channel = -1;         ///< Wait::FifoSpace / FifoData only.
  int lane = -1;            ///< Wait::FifoSpace / FifoData only.
  int loopId = -1;          ///< Wait::Join only.
};

class WorkerEngine {
public:
  /// Plan type consumed by this tier (the system runner is templated on
  /// the engine and derives the plan type from this alias).
  using Plan = ExecPlan;
  /// Compatibility alias: StepOutcome now lives at namespace scope.
  using StepOutcome = sim::StepOutcome;

  WorkerEngine(const ExecPlan& plan, interp::Memory& memory, DCache& cache,
               ChannelSet* channels, interp::LiveoutFile& liveouts,
               std::span<const std::uint64_t> args, SystemHooks* hooks);

  bool done() const { return done_; }
  std::uint64_t returnValue() const { return returnValue_; }
  /// Folds the dense per-opcode counters into the map-based public stats.
  WorkerStats stats() const;

  /// Advance one cycle. The returned reference stays valid until the next
  /// step() call on this engine.
  const StepOutcome& step(std::uint64_t now);

  /// Account `cycles` that the scheduler skipped while this engine was
  /// parked — under the busy-poll scheduler every one of them would have
  /// been a fully-stalled step of class `stall`. `wait` / `channel` carry
  /// the park's wakeup condition so FIFO stalls keep their full-vs-empty
  /// and per-channel attribution.
  void accountParked(StepOutcome::Stall stall, StepOutcome::Wait wait,
                     int channel, std::uint64_t cycles);

private:
  enum class Blocked { No, Mem, Fifo, Dep };

  /// readyCycle_ sentinel: result not produced yet (or load in flight).
  static constexpr std::uint64_t kNotReady = ~0ULL;

  bool operandsReady(const MicroOp& mop, std::uint64_t now) const;
  /// Phi latch list of the edge from the current block into `decoded`
  /// (nullptr when that block has no phis).
  const PhiEdge* phiEdgeInto(const DecodedBlock& decoded) const;
  bool phiInputsReady(const PhiEdge* edge, std::uint64_t now) const;
  /// Earliest cycle at which every currently-not-ready operand in
  /// `slots[0..count)` becomes ready (exact for latencies and in-flight
  /// loads; conservative now+1 otherwise).
  std::uint64_t operandWakeCycle(const std::int32_t* slots, int count,
                                 std::uint64_t now) const;
  std::uint64_t phiWakeCycle(const PhiEdge* edge, std::uint64_t now) const;
  Blocked tryIssue(const MicroOp& mop, std::uint64_t now);
  void enterBlock(const DecodedBlock& decoded, const PhiEdge* edge);

  const ExecPlan* plan_;
  interp::Memory* memory_;
  DCache* cache_;
  ChannelSet* channels_;
  interp::LiveoutFile* liveouts_;
  SystemHooks* hooks_;

  /// Dense register file and per-slot readiness, indexed by SlotMap slot.
  std::vector<std::uint64_t> regs_;
  std::vector<std::uint64_t> readyCycle_;

  struct PendingLoad {
    std::int32_t slot;
    std::uint64_t doneAt; ///< Known at submit: cache latency is determinate.
    /// Value latched when the request entered the memory system (issue
    /// order equals program order per worker, so later stores must not be
    /// observed — WAR correctness).
    std::uint64_t value;
  };
  std::vector<PendingLoad> pendingLoads_;
  /// Earliest doneAt among pendingLoads_ (kNotReady when none): gates the
  /// per-step resolution scan.
  std::uint64_t nextLoadDone_ = kNotReady;

  const DecodedBlock* decoded_ = nullptr; ///< Current block.
  int state_ = 0;
  /// Position in decoded_->microOps (absolute, not per-state): the next
  /// instruction of the current state to issue.
  std::uint32_t idxInState_ = 0;
  /// Cached decoded_->stateBegin[state_ + 1] / microOps.data() — spares
  /// the per-step loads through decoded_.
  std::uint32_t stateEnd_ = 0;
  const MicroOp* mops_ = nullptr;
  const DecodedBlock* branchTarget_ = nullptr;
  bool retPending_ = false;
  bool done_ = false;
  std::uint64_t returnValue_ = 0;
  std::array<std::uint64_t, ir::kNumOpcodes> opCounts_{};
  WorkerStats stats_;
  /// Block/wait details filled by tryIssue when it returns Blocked.
  StepOutcome outcome_;
  /// Scratch for atomic phi latching (reused across block entries).
  std::vector<std::pair<std::size_t, std::uint64_t>> phiScratch_;
};

} // namespace cgpa::sim
