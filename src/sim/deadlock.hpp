// Deadlock forensics: the structured report the system scheduler builds
// when a simulation wedges (every engine parked with no pending wakeup) or
// runs past its cycle cap.
//
// The report snapshots every engine's park state and every FIFO lane's
// occupancy, replays the scheduler's recent park/wake/fork/finish event
// ring, and — via analyzeWaitForGraph() — derives the wait-for graph over
// engines to name the blocking cycle (classic produce/consume deadlock) or
// the wedged channel (a producer that exited without producing enough).
// It travels inside a cgpa::Status as a StatusDetail, so callers that get
// an ErrorCode::SimDeadlock / CycleCapExceeded can downcast with
// status.detailAs<sim::DeadlockReport>() and dump it (text here, JSON via
// trace/failure_json.hpp and `cgpac --failure-json`).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace cgpa::sim {

struct DeadlockReport : StatusDetail {
  enum class Kind : std::uint8_t {
    Deadlock, ///< All engines parked, wakeup heap empty.
    CycleCap, ///< Simulation reached SystemConfig::maxCycles.
  };

  /// What an engine was waiting on when the report was taken. Mirrors
  /// WorkerEngine::StepOutcome::Wait plus the running/retired states.
  enum class Wait : std::uint8_t {
    Running,   ///< Not parked (cycle-cap reports only).
    Done,      ///< Engine retired.
    Timed,     ///< Timed wakeup pending (cycle-cap reports only).
    FifoSpace, ///< Push blocked: lane full.
    FifoData,  ///< Pop blocked: lane empty.
    Join,      ///< parallel_join waiting on workers of a loop.
  };
  static const char* kindName(Kind kind);
  static const char* waitName(Wait wait);

  struct EngineState {
    int id = -1;
    int taskIndex = -1;  ///< -1 for the wrapper.
    int stageIndex = -1; ///< -1 for the wrapper.
    Wait wait = Wait::Running;
    int channel = -1; ///< FifoSpace/FifoData: blocking channel.
    int lane = -1;    ///< FifoSpace/FifoData: blocking lane.
    int loopId = -1;  ///< Join: awaited loop id.
    int memberLoopId = -1; ///< Forked workers: join group they belong to.
    std::uint64_t parkedSince = 0; ///< First fully-skipped cycle.
  };

  struct LaneState {
    int channel = -1;
    int lane = -1;
    int occupiedFlits = 0;
    int capacityFlits = 0;
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;
  };

  struct ChannelMeta {
    int id = -1;
    std::string valueName;
    int producerStage = -1;
    int consumerStage = -1;
    int lanes = 1;
    int flitsPerValue = 1;
  };

  /// One scheduler transition from the forensic ring buffer.
  struct Event {
    enum class Kind : std::uint8_t { Park, Wake, Fork, Finish };
    std::uint64_t cycle = 0;
    Kind kind = Kind::Park;
    int engine = -1;
    Wait wait = Wait::Running; ///< Park events: what it parked on.
    int channel = -1;
    int lane = -1;
  };
  static const char* eventKindName(Event::Kind kind);

  Kind kind = Kind::Deadlock;
  std::uint64_t cycle = 0;     ///< Simulated cycle at detection.
  std::uint64_t maxCycles = 0; ///< The cap (CycleCap reports).
  std::vector<EngineState> engines; ///< Index == engine id; [0] wrapper.
  std::vector<LaneState> lanes;
  std::vector<ChannelMeta> channels;
  /// Scheduler transitions leading up to the failure, oldest first
  /// (bounded ring; see kMaxEvents in system.cpp).
  std::vector<Event> recentEvents;

  // Filled by analyzeWaitForGraph():
  /// Engine ids forming a blocking wait-for cycle (in order; empty when
  /// the wedge is not cyclic — e.g. a dead producer).
  std::vector<int> blockingCycle;
  /// The FIFO channel at the heart of the wedge: a channel on the blocking
  /// cycle, or one whose waiters' counterpart engines have all retired.
  int wedgedChannel = -1;

  /// Derive blockingCycle / wedgedChannel from the snapshot. Edges: a
  /// FifoData waiter waits on every live engine of the channel's producer
  /// stage, a FifoSpace waiter on the consumer stage, a Join waiter on
  /// every live worker of the awaited loop.
  void analyzeWaitForGraph();

  std::string describe() const override;
};

} // namespace cgpa::sim
