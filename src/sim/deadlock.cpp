#include "sim/deadlock.hpp"

#include <algorithm>

namespace cgpa::sim {

const char* DeadlockReport::kindName(Kind kind) {
  return kind == Kind::Deadlock ? "deadlock" : "cycle-cap";
}

const char* DeadlockReport::waitName(Wait wait) {
  switch (wait) {
  case Wait::Running:
    return "running";
  case Wait::Done:
    return "done";
  case Wait::Timed:
    return "timed";
  case Wait::FifoSpace:
    return "fifo-space";
  case Wait::FifoData:
    return "fifo-data";
  case Wait::Join:
    return "join";
  }
  return "?";
}

const char* DeadlockReport::eventKindName(Event::Kind kind) {
  switch (kind) {
  case Event::Kind::Park:
    return "park";
  case Event::Kind::Wake:
    return "wake";
  case Event::Kind::Fork:
    return "fork";
  case Event::Kind::Finish:
    return "finish";
  }
  return "?";
}

void DeadlockReport::analyzeWaitForGraph() {
  blockingCycle.clear();
  wedgedChannel = -1;
  const int n = static_cast<int>(engines.size());

  auto stageOf = [&](int engineId) {
    return engines[static_cast<std::size_t>(engineId)].stageIndex;
  };
  auto live = [&](int engineId) {
    return engines[static_cast<std::size_t>(engineId)].wait != Wait::Done;
  };
  const ChannelMeta* channelMeta = nullptr;
  auto metaOf = [&](int channel) -> const ChannelMeta* {
    for (const ChannelMeta& meta : channels)
      if (meta.id == channel)
        return &meta;
    return nullptr;
  };

  // Adjacency: waiter -> engines that could unblock it, with the channel
  // labelling each FIFO edge (-1 for join edges).
  std::vector<std::vector<std::pair<int, int>>> edges(
      static_cast<std::size_t>(n));
  for (const EngineState& engine : engines) {
    if (engine.wait == Wait::FifoData || engine.wait == Wait::FifoSpace) {
      channelMeta = metaOf(engine.channel);
      if (channelMeta == nullptr)
        continue;
      const int counterpartStage = engine.wait == Wait::FifoData
                                       ? channelMeta->producerStage
                                       : channelMeta->consumerStage;
      bool anyLive = false;
      for (int other = 0; other < n; ++other) {
        if (other == engine.id || !live(other) ||
            stageOf(other) != counterpartStage)
          continue;
        anyLive = true;
        edges[static_cast<std::size_t>(engine.id)].emplace_back(
            other, engine.channel);
      }
      // Dead counterpart: the channel is wedged outright (its producer or
      // consumer retired without matching this engine's traffic).
      if (!anyLive && wedgedChannel < 0)
        wedgedChannel = engine.channel;
    } else if (engine.wait == Wait::Join) {
      for (int other = 0; other < n; ++other) {
        if (other == engine.id || !live(other))
          continue;
        if (engines[static_cast<std::size_t>(other)].memberLoopId ==
            engine.loopId)
          edges[static_cast<std::size_t>(engine.id)].emplace_back(other, -1);
      }
    }
  }

  // Find a cycle with an iterative colored DFS; record the cycle path.
  std::vector<int> color(static_cast<std::size_t>(n), 0); // 0/1/2
  std::vector<int> parent(static_cast<std::size_t>(n), -1);
  std::vector<int> parentChannel(static_cast<std::size_t>(n), -1);
  for (int root = 0; root < n && blockingCycle.empty(); ++root) {
    if (color[static_cast<std::size_t>(root)] != 0)
      continue;
    std::vector<std::pair<int, std::size_t>> stack = {{root, 0}};
    color[static_cast<std::size_t>(root)] = 1;
    while (!stack.empty() && blockingCycle.empty()) {
      auto& [node, nextEdge] = stack.back();
      const auto& out = edges[static_cast<std::size_t>(node)];
      if (nextEdge >= out.size()) {
        color[static_cast<std::size_t>(node)] = 2;
        stack.pop_back();
        continue;
      }
      const auto [target, channel] = out[nextEdge++];
      if (color[static_cast<std::size_t>(target)] == 1) {
        // Back edge: walk parents from `node` up to `target`.
        blockingCycle.push_back(target);
        int walk = node;
        std::vector<int> tail;
        int cycleChannel = channel;
        while (walk != target) {
          tail.push_back(walk);
          if (parentChannel[static_cast<std::size_t>(walk)] >= 0 &&
              cycleChannel < 0)
            cycleChannel = parentChannel[static_cast<std::size_t>(walk)];
          walk = parent[static_cast<std::size_t>(walk)];
        }
        std::reverse(tail.begin(), tail.end());
        blockingCycle.insert(blockingCycle.end(), tail.begin(), tail.end());
        if (cycleChannel >= 0)
          wedgedChannel = cycleChannel;
      } else if (color[static_cast<std::size_t>(target)] == 0) {
        color[static_cast<std::size_t>(target)] = 1;
        parent[static_cast<std::size_t>(target)] = node;
        parentChannel[static_cast<std::size_t>(target)] = channel;
        stack.emplace_back(target, 0);
      }
    }
  }

  // No cycle and no dead counterpart (e.g. cycle-cap on a live run): fall
  // back to the first FIFO wait's channel so the report always names the
  // hottest suspect.
  if (wedgedChannel < 0)
    for (const EngineState& engine : engines)
      if (engine.wait == Wait::FifoData || engine.wait == Wait::FifoSpace) {
        wedgedChannel = engine.channel;
        break;
      }
}

std::string DeadlockReport::describe() const {
  std::string text = std::string(kindName(kind)) + " at cycle " +
                     std::to_string(cycle);
  if (kind == Kind::CycleCap)
    text += " (cap " + std::to_string(maxCycles) + ")";
  text += "\n";
  if (wedgedChannel >= 0) {
    text += "wedged channel: " + std::to_string(wedgedChannel);
    for (const ChannelMeta& meta : channels)
      if (meta.id == wedgedChannel)
        text += " (" + meta.valueName + ", stage " +
                std::to_string(meta.producerStage) + "->" +
                std::to_string(meta.consumerStage) + ", " +
                std::to_string(meta.flitsPerValue) + " flits/value)";
    text += "\n";
  }
  if (!blockingCycle.empty()) {
    text += "blocking cycle: ";
    for (std::size_t i = 0; i < blockingCycle.size(); ++i) {
      if (i > 0)
        text += " -> ";
      text += "engine " + std::to_string(blockingCycle[i]);
    }
    text += " -> engine " + std::to_string(blockingCycle.front()) + "\n";
  }
  for (const EngineState& engine : engines) {
    text += "  engine " + std::to_string(engine.id) +
            (engine.taskIndex < 0 ? " (wrapper)"
                                  : " (task " +
                                        std::to_string(engine.taskIndex) +
                                        ", stage " +
                                        std::to_string(engine.stageIndex) +
                                        ")") +
            ": " + waitName(engine.wait);
    if (engine.wait == Wait::FifoData || engine.wait == Wait::FifoSpace)
      text += " on channel " + std::to_string(engine.channel) + " lane " +
              std::to_string(engine.lane);
    if (engine.wait == Wait::Join)
      text += " on loop " + std::to_string(engine.loopId);
    if (engine.wait != Wait::Running && engine.wait != Wait::Done)
      text += " since cycle " + std::to_string(engine.parkedSince);
    text += "\n";
  }
  for (const LaneState& lane : lanes)
    if (lane.occupiedFlits != 0 || lane.pushes != lane.pops)
      text += "  channel " + std::to_string(lane.channel) + " lane " +
              std::to_string(lane.lane) + ": " +
              std::to_string(lane.occupiedFlits) + "/" +
              std::to_string(lane.capacityFlits) + " flits, " +
              std::to_string(lane.pushes) + " pushes, " +
              std::to_string(lane.pops) + " pops\n";
  if (!recentEvents.empty()) {
    text += "  last " + std::to_string(recentEvents.size()) +
            " scheduler events:\n";
    for (const Event& event : recentEvents) {
      text += "    cycle " + std::to_string(event.cycle) + ": " +
              eventKindName(event.kind) + " engine " +
              std::to_string(event.engine);
      if (event.kind == Event::Kind::Park) {
        text += " (" + std::string(waitName(event.wait));
        if (event.channel >= 0)
          text += ", channel " + std::to_string(event.channel) + " lane " +
                  std::to_string(event.lane);
        text += ")";
      }
      text += "\n";
    }
  }
  return text;
}

} // namespace cgpa::sim
