#include "sim/system.hpp"

#include <vector>

#include "support/diag.hpp"

namespace cgpa::sim {

namespace {

class SystemRunner : public SystemHooks {
public:
  SystemRunner(const pipeline::PipelineModule& pipeline,
               interp::Memory& memory, const SystemConfig& config)
      : pipeline_(&pipeline), memory_(&memory), config_(&config),
        cache_(config.cache),
        channels_(pipeline, config.fifoDepth, config.fifoWidthBits) {
    wrapperSchedule_ = hls::scheduleFunction(*pipeline.wrapper,
                                             config.schedule);
    for (const pipeline::TaskInfo& task : pipeline.tasks)
      taskSchedules_.push_back(
          hls::scheduleFunction(*task.fn, config.schedule));
  }

  SimResult run(std::span<const std::uint64_t> args) {
    liveouts_.clear();
    WorkerEngine wrapper(*pipeline_->wrapper, wrapperSchedule_, *memory_,
                         cache_, &channels_, liveouts_, args, this);

    std::uint64_t now = 0;
    while (!wrapper.done()) {
      CGPA_ASSERT(now < config_->maxCycles, "simulation exceeded cycle cap");
      cache_.beginCycle(now);
      wrapper.step(now);
      // Rotate worker order for round-robin crossbar arbitration fairness.
      const std::size_t count = workers_.size();
      for (std::size_t i = 0; count != 0 && i < count; ++i) {
        WorkerEngine& worker =
            *workers_[(i + static_cast<std::size_t>(now)) % count];
        if (!worker.done())
          worker.step(now);
      }
      ++now;
    }

    SimResult result;
    result.cycles = now;
    result.returnValue = wrapper.returnValue();
    result.cache = cache_.stats();
    result.fifoPushes = channels_.totalPushes();
    for (int c = 0; c < channels_.numChannels(); ++c)
      result.channelStats.push_back(channels_.channelStats(c));
    result.enginesSpawned = static_cast<int>(workers_.size());
    result.liveouts = liveouts_;
    auto accumulate = [&](const WorkerStats& stats) {
      for (const auto& [op, count] : stats.opCounts)
        result.opCounts[op] += count;
      result.stallMem += stats.stallMem;
      result.stallFifo += stats.stallFifo;
      result.stallDep += stats.stallDep;
      result.dynamicEnergyPj += stats.dynamicEnergyPj;
    };
    accumulate(wrapper.stats());
    result.engines.push_back({-1, -1, wrapper.stats()});
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      accumulate(workers_[w]->stats());
      const int taskIndex = workerTaskIndex_[w];
      result.engines.push_back(
          {taskIndex,
           pipeline_->tasks[static_cast<std::size_t>(taskIndex)].stageIndex,
           workers_[w]->stats()});
    }
    return result;
  }

  // --- SystemHooks ---
  void onFork(const ir::Instruction& inst,
              std::span<const std::uint64_t> args) override {
    const int taskIndex = inst.taskIndex();
    const pipeline::TaskInfo& task =
        pipeline_->tasks.at(static_cast<std::size_t>(taskIndex));
    workers_.push_back(std::make_unique<WorkerEngine>(
        *task.fn, taskSchedules_[static_cast<std::size_t>(taskIndex)],
        *memory_, cache_, &channels_, liveouts_, args, nullptr));
    workerTaskIndex_.push_back(taskIndex);
    joinGroups_[inst.loopId()].push_back(workers_.back().get());
  }

  bool joinReady(int loopId) override {
    auto& group = joinGroups_[loopId];
    for (const WorkerEngine* worker : group)
      if (!worker->done())
        return false;
    // All workers of this activation finished: the FIFOs must be drained
    // (matched produce/consume counts), and the group resets for the next
    // activation of the same loop.
    CGPA_ASSERT(channels_.drained(),
                "FIFO left non-empty at parallel_join");
    group.clear();
    return true;
  }

private:
  const pipeline::PipelineModule* pipeline_;
  interp::Memory* memory_;
  const SystemConfig* config_;
  DCache cache_;
  ChannelSet channels_;
  interp::LiveoutFile liveouts_;
  hls::FunctionSchedule wrapperSchedule_;
  std::vector<hls::FunctionSchedule> taskSchedules_;
  std::vector<std::unique_ptr<WorkerEngine>> workers_;
  std::vector<int> workerTaskIndex_;
  std::map<int, std::vector<WorkerEngine*>> joinGroups_;
};

} // namespace

SimResult simulateSystem(const pipeline::PipelineModule& pipeline,
                         interp::Memory& memory,
                         std::span<const std::uint64_t> args,
                         const SystemConfig& config) {
  SystemRunner runner(pipeline, memory, config);
  return runner.run(args);
}

} // namespace cgpa::sim
