#include "sim/system.hpp"

#include <algorithm>
#include <array>
#include <functional>
#include <optional>
#include <queue>
#include <type_traits>
#include <vector>

#include "sim/deadlock.hpp"
#include "sim/exec/threaded.hpp"
#include "support/diag.hpp"

namespace cgpa::sim {

namespace {

// Wakeup-driven system scheduler.
//
// The naive runner steps every live engine every cycle; on wide pipelines
// most of those steps are blocked no-ops (a blocked step's only effect is
// a stall counter). Instead, an engine whose StepOutcome names a wakeup
// condition is *parked* and re-stepped only when that condition can hold:
//   - Timed: a min-heap of (cycle, engine) wakeups. The predicted cycle is
//     always <= the true unblock cycle (cache latencies are determinate at
//     submit; operand latencies are known at issue), so a premature wake
//     just re-parks — never a late one.
//   - FifoSpace / FifoData: the id parks on the blocking lane's wakeup
//     list and is woken by the lane's next pop / push (WakeSink).
//   - Join: the id parks per loop id and is woken when a worker of that
//     loop finishes.
// When no engine is immediately runnable, simulated time fast-forwards to
// the earliest timed wakeup; an empty heap then means a genuine deadlock.
//
// Cycle counts stay bit-identical to the busy-poll scheduler: within a
// cycle, workers still step in the rotated order (pos + now) % count, and
// a wake during cycle `now` re-steps the target this same cycle only if
// its rotation position has not been passed yet — exactly when the
// busy-poll loop would still have reached it. Skipped cycles are folded
// into the engine's stall counters on release (accountParked), so stall
// accounting matches the per-cycle counts too.
//
// Templated over the execution tier: EngineT is WorkerEngine (interp) or
// exec::ThreadedEngine, both speaking the StepOutcome protocol over
// EngineT::Plan. The scheduler itself is tier-agnostic.
template <class EngineT>
class SystemRunner : public SystemHooks, public WakeSink {
  using PlanT = typename EngineT::Plan;

public:
  SystemRunner(const pipeline::PipelineModule& pipeline,
               interp::Memory& memory, const SystemConfig& config,
               const PlanT& wrapperPlan,
               std::span<const PlanT* const> taskPlans, Tracer* tracer)
      : pipeline_(&pipeline), memory_(&memory), config_(&config),
        cache_(config.cache),
        channels_(pipeline, config.fifoDepth, config.fifoWidthBits,
                  /*clampCapacityToValue=*/!config.testOnlyNoCapacityClamp),
        wrapperPlan_(&wrapperPlan), taskPlans_(taskPlans), tracer_(tracer) {
    parkFull_.assign(static_cast<std::size_t>(channels_.numChannels()), 0);
    parkEmpty_.assign(static_cast<std::size_t>(channels_.numChannels()), 0);
    channels_.setWakeSink(this);
    // Tracing hooks are a no-op branch when tracer_ is null; a tracer
    // only observes, so enabling it cannot perturb simulated timing.
    channels_.setTracer(tracer);
    cache_.setTracer(tracer);
    if (config.faults.enabled()) {
      faults_.emplace(config.faults);
      cache_.setFaultInjector(&*faults_);
    }
  }

  Expected<SimResult> run(std::span<const std::uint64_t> args) {
    liveouts_.clear();
    engines_.push_back({std::make_unique<EngineT>(*wrapperPlan_, *memory_,
                                                  cache_, &channels_,
                                                  liveouts_, args, this),
                        -1, -1});
    ++immediateCount_;
    const EngineT& wrapper = *engines_[0].engine;
    if (tracer_ != nullptr) {
      tracer_->beginCycle(now_);
      tracer_->onEngineStart(0, -1, -1);
    }

    // The threaded tier gets a specialized cycle loop when nothing needs
    // the generic one's hooks (no tracer, no fault plan): identical
    // scheduling semantics, but the per-cycle machinery is inlined and
    // stripped of the hook branches. The generic loop stays the reference
    // implementation (and the only one the interpreting tier uses).
    std::optional<Status> failed;
    bool fast = false;
    if constexpr (std::is_same_v<EngineT, exec::ThreadedEngine>) {
      if (tracer_ == nullptr && !faults_.has_value()) {
        fast = true;
        failed = runCyclesFast(wrapper);
      }
    }
    if (!fast)
      failed = runCyclesGeneric(wrapper);
    if (failed.has_value())
      return *failed;

    if (tracer_ != nullptr) {
      tracer_->beginCycle(now_);
      tracer_->onRunEnd();
    }

    SimResult result;
    result.cycles = now_;
    result.returnValue = wrapper.returnValue();
    result.cache = cache_.stats();
    result.fifoPushes = channels_.totalPushes();
    result.fifoPops = channels_.totalPops();
    for (int c = 0; c < channels_.numChannels(); ++c) {
      ChannelSet::ChannelStats stats = channels_.channelStats(c);
      stats.parkFull = parkFull_[static_cast<std::size_t>(c)];
      stats.parkEmpty = parkEmpty_[static_cast<std::size_t>(c)];
      result.fifoMaxOccupancyFlits =
          std::max(result.fifoMaxOccupancyFlits, stats.maxOccupancyFlits);
      result.channelStats.push_back(stats);
    }
    result.enginesSpawned = static_cast<int>(engines_.size()) - 1;
    result.faultsInjected = faults_.has_value() ? faults_->injected() : 0;
    result.liveouts = liveouts_;
    auto accumulate = [&](const WorkerStats& stats) {
      for (const auto& [op, count] : stats.opCounts)
        result.opCounts[op] += count;
      result.stallMem += stats.stallMem;
      result.stallFifo += stats.stallFifo;
      result.stallFifoFull += stats.stallFifoFull;
      result.stallFifoEmpty += stats.stallFifoEmpty;
      result.stallDep += stats.stallDep;
      result.cyclesActive += stats.cyclesActive;
      result.cyclesStalled += stats.cyclesStalled;
      result.cyclesBusy += stats.cyclesBusy;
      result.cyclesIdle += stats.cyclesIdle;
      result.dynamicEnergyPj += stats.dynamicEnergyPj;
    };
    for (std::size_t e = 0; e < engines_.size(); ++e) {
      const EngineRec& rec = engines_[e];
      WorkerStats stats = rec.engine->stats();
      // Close the ledger: cycles outside the engine's live span (before
      // its fork, after its retirement) are idle, so per engine
      // Σ causes + idle == result.cycles.
      const std::uint64_t live = stats.cyclesActive + stats.cyclesStalled;
      stats.cyclesIdle = now_ >= live ? now_ - live : 0;
      // Fold the engine's per-channel FIFO-stall slices into the channel
      // summaries (vectors are lazily sized, so they may be short).
      for (std::size_t c = 0; c < stats.stallFifoFullByChannel.size(); ++c)
        result.channelStats[c].stallFullCycles +=
            stats.stallFifoFullByChannel[c];
      for (std::size_t c = 0; c < stats.stallFifoEmptyByChannel.size(); ++c)
        result.channelStats[c].stallEmptyCycles +=
            stats.stallFifoEmptyByChannel[c];
      accumulate(stats);
      const int stageIndex =
          rec.taskIndex < 0
              ? -1
              : pipeline_->tasks[static_cast<std::size_t>(rec.taskIndex)]
                    .stageIndex;
      result.engines.push_back({rec.taskIndex, stageIndex, stats});
    }
    return result;
  }

  /// The reference per-cycle loop. Returns the failure Status on deadlock
  /// or cycle-cap, nullopt when the wrapper ran to completion.
  std::optional<Status> runCyclesGeneric(const EngineT& wrapper) {
    while (!wrapper.done()) {
      // Nothing runnable this cycle: fast-forward to the next timed
      // wakeup. Stale heap entries (engine meanwhile re-parked on another
      // condition) wake nobody and are simply popped.
      while (immediateCount_ == 0) {
        if (timedWakes_.empty())
          return failureStatus(DeadlockReport::Kind::Deadlock);
        if (timedWakes_.top().first > now_)
          now_ = timedWakes_.top().first;
        releaseTimedWakes();
      }
      if (now_ >= config_->maxCycles)
        return failureStatus(DeadlockReport::Kind::CycleCap);
      if (!timedWakes_.empty() && timedWakes_.top().first <= now_)
        releaseTimedWakes();
      if (tracer_ != nullptr)
        tracer_->beginCycle(now_);
      cache_.beginCycle(now_);

      scanPos_ = kPosWrapper;
      stepEngine(0);
      // Rotate worker order for round-robin crossbar arbitration fairness.
      // Workers forked during the wrapper's step join this cycle's scan,
      // exactly as under the busy-poll loop.
      workerCount_ = engines_.size() - 1;
      if (workerCount_ != 0) {
        // idx = (pos + now) % count without a per-worker division.
        std::size_t idx = static_cast<std::size_t>(now_) % workerCount_;
        for (std::size_t pos = 0; pos < workerCount_; ++pos) {
          scanPos_ = static_cast<int>(pos);
          stepEngine(static_cast<int>(idx) + 1);
          if (++idx == workerCount_)
            idx = 0;
        }
      }
      scanPos_ = kPosBeforeCycle;
      ++now_;
    }
    return std::nullopt;
  }

  /// Specialized cycle loop of the threaded tier (no tracer, no faults —
  /// checked by the caller). Cycle-for-cycle identical to
  /// runCyclesGeneric: the only differences are strength reductions — the
  /// engine step is inlined (ThreadedEngine::stepFast), the rotation start
  /// is maintained incrementally instead of a per-cycle modulo, and the
  /// hook branches that are statically dead here are gone.
  std::optional<Status> runCyclesFast(const EngineT& wrapper) {
    // rotStart == now_ % workerCount_ whenever workerCount_ != 0;
    // recomputed when now_ jumps (fast-forward) or a fork resizes the
    // worker set, incremented otherwise.
    std::size_t rotStart = 0;
    while (!wrapper.done()) {
      if (immediateCount_ == 0) {
        do {
          if (nextTimedWake_ == kNoWake)
            return failureStatus(DeadlockReport::Kind::Deadlock);
          if (nextTimedWake_ > now_)
            now_ = nextTimedWake_;
          releaseTimedWakes();
        } while (immediateCount_ == 0);
        rotStart = workerCount_ != 0
                       ? static_cast<std::size_t>(now_) % workerCount_
                       : 0;
      }
      if (now_ >= config_->maxCycles)
        return failureStatus(DeadlockReport::Kind::CycleCap);
      if (nextTimedWake_ <= now_)
        releaseTimedWakes();
      cache_.beginCycle(now_);

      scanPos_ = kPosWrapper;
      stepEngineFast(0);
      if (engines_.size() - 1 != workerCount_) { // Fork grew the set.
        workerCount_ = engines_.size() - 1;
        rotStart = workerCount_ != 0
                       ? static_cast<std::size_t>(now_) % workerCount_
                       : 0;
      }
      std::size_t idx = rotStart;
      for (std::size_t pos = 0; pos < workerCount_; ++pos) {
        scanPos_ = static_cast<int>(pos);
        stepEngineFast(static_cast<int>(idx) + 1);
        if (++idx == workerCount_)
          idx = 0;
      }
      scanPos_ = kPosBeforeCycle;
      ++now_;
      if (workerCount_ != 0 && ++rotStart == workerCount_)
        rotStart = 0;
    }
    return std::nullopt;
  }

  // --- SystemHooks ---
  void onFork(const ir::Instruction& inst,
              std::span<const std::uint64_t> args) override {
    const int taskIndex = inst.taskIndex();
    const PlanT& plan = *taskPlans_[static_cast<std::size_t>(taskIndex)];
    engines_.push_back({std::make_unique<EngineT>(plan, *memory_, cache_,
                                                  &channels_, liveouts_,
                                                  args, nullptr),
                        taskIndex, inst.loopId()});
    ++immediateCount_;
    joinGroups_[inst.loopId()].push_back(engines_.back().engine.get());
    recordEvent(DeadlockReport::Event::Kind::Fork,
                static_cast<int>(engines_.size()) - 1);
    if (tracer_ != nullptr) {
      const int childId = static_cast<int>(engines_.size()) - 1;
      const int stageIndex =
          pipeline_->tasks[static_cast<std::size_t>(taskIndex)].stageIndex;
      tracer_->onEngineStart(childId, taskIndex, stageIndex);
      tracer_->onFork(0, childId, taskIndex);
    }
  }

  bool joinReady(int loopId) override {
    auto& group = joinGroups_[loopId];
    for (const EngineT* worker : group)
      if (!worker->done())
        return false;
    // All workers of this activation finished: the FIFOs must be drained
    // (matched produce/consume counts), and the group resets for the next
    // activation of the same loop.
    CGPA_ASSERT(channels_.drained(),
                "FIFO left non-empty at parallel_join");
    group.clear();
    if (tracer_ != nullptr)
      tracer_->onJoinComplete(0, loopId);
    return true;
  }

  // --- WakeSink ---
  void wakeEngine(int engineId) override {
    EngineRec& rec = engines_[static_cast<std::size_t>(engineId)];
    if (!rec.parked || rec.done)
      return;
    rec.parked = false;
    rec.notBefore = resumeCycleFor(engineId);
    ++immediateCount_;
    recordEvent(DeadlockReport::Event::Kind::Wake, engineId);
    // Every skipped cycle would have been a blocked step under busy-poll.
    // waitKind/waitChannel ride along so FIFO stalls keep their
    // full-vs-empty and per-channel ledger attribution (preserved even
    // when a fault converted the park into a timed retry).
    if (rec.notBefore > rec.parkedSince)
      rec.engine->accountParked(rec.stall, rec.waitKind, rec.waitChannel,
                                rec.notBefore - rec.parkedSince);
  }

private:
  using Wait = StepOutcome::Wait;

  /// scanPos_ sentinels: before any engine has stepped this cycle / while
  /// the wrapper is stepping (worker scan not started).
  static constexpr int kPosBeforeCycle = -2;
  static constexpr int kPosWrapper = -1;

  struct EngineRec {
    std::unique_ptr<EngineT> engine;
    int taskIndex = -1; ///< -1 for the wrapper.
    int loopId = -1;    ///< Join group of a forked worker.
    bool parked = false;
    /// Mirrors engine->done() so the per-cycle scan skips retired engines
    /// without dereferencing them.
    bool done = false;
    /// Earliest cycle an unparked engine may step (same-cycle wakes whose
    /// rotation position has already been passed resume next cycle).
    std::uint64_t notBefore = 0;
    std::uint64_t parkedSince = 0; ///< First fully-skipped cycle.
    StepOutcome::Stall stall = StepOutcome::Stall::None;
    /// Park forensics: what the last park blocked on (valid while parked).
    Wait waitKind = Wait::Run;
    int waitChannel = -1;
    int waitLane = -1;
    int waitLoopId = -1;
    /// Trace-span state (maintained only while a tracer is installed): is
    /// the engine currently inside a stall span, and of what kind.
    bool traceStalled = false;
    TraceStall traceCause = TraceStall::Dep;
    int traceChannel = -1;
    int traceLane = -1;
  };

  /// First cycle at which a wake issued right now lets the engine step:
  /// this cycle if its rotation slot is still ahead of the scan, else the
  /// next — the cycle the busy-poll scheduler would next step it.
  std::uint64_t resumeCycleFor(int engineId) const {
    if (scanPos_ == kPosBeforeCycle)
      return now_;
    if (engineId == 0)
      return now_ + 1; // Wrapper steps first; its slot has passed.
    if (scanPos_ == kPosWrapper)
      return now_; // Worker scan not started: every worker is ahead.
    const std::size_t count = workerCount_;
    const std::size_t idx = static_cast<std::size_t>(engineId) - 1;
    const std::size_t pos =
        (idx + count - (static_cast<std::size_t>(now_) % count)) % count;
    return static_cast<int>(pos) > scanPos_ ? now_ : now_ + 1;
  }

  /// No timed wake pending (nextTimedWake_): max so `<= now_` never fires.
  static constexpr std::uint64_t kNoWake = ~0ULL;

  void pushTimedWake(std::uint64_t wakeAt, int engineId) {
    timedWakes_.emplace(wakeAt, engineId);
    if (wakeAt < nextTimedWake_)
      nextTimedWake_ = wakeAt;
  }

  void releaseTimedWakes() {
    while (!timedWakes_.empty() && timedWakes_.top().first <= now_) {
      const int engineId = timedWakes_.top().second;
      timedWakes_.pop();
      wakeEngine(engineId);
    }
    nextTimedWake_ = timedWakes_.empty() ? kNoWake : timedWakes_.top().first;
  }

  /// Trace the scheduler-level active/stall span transitions implied by a
  /// step's outcome. Span classification: a step that ended blocked puts
  /// the whole cycle in a stall span (even if instructions issued first);
  /// a Run outcome puts it in an active span. A finishing step counts as
  /// active, so the final span closes at now + 1.
  void traceStep(const int engineId, EngineRec& rec,
                 const StepOutcome& outcome, const bool nowDone) {
    using Stall = StepOutcome::Stall;
    if (nowDone || outcome.wait == Wait::Run) {
      if (rec.traceStalled) {
        rec.traceStalled = false;
        tracer_->onEngineActive(engineId);
      }
      if (nowDone)
        tracer_->onEngineFinish(engineId);
      return;
    }
    const TraceStall cause = outcome.stall == Stall::Mem ? TraceStall::Mem
                             : outcome.stall == Stall::Fifo
                                 ? TraceStall::Fifo
                                 : TraceStall::Dep;
    const bool fifoWait = outcome.wait == Wait::FifoSpace ||
                          outcome.wait == Wait::FifoData;
    const int channel = fifoWait ? outcome.channel : -1;
    const int lane = fifoWait ? outcome.lane : -1;
    if (!rec.traceStalled || rec.traceCause != cause ||
        rec.traceChannel != channel || rec.traceLane != lane) {
      rec.traceStalled = true;
      rec.traceCause = cause;
      rec.traceChannel = channel;
      rec.traceLane = lane;
      tracer_->onEngineStall(engineId, cause, channel, lane);
    }
  }

  void stepEngine(const int engineId) {
    {
      const EngineRec& rec = engines_[static_cast<std::size_t>(engineId)];
      if (rec.parked || rec.done || now_ < rec.notBefore)
        return;
    }
    // The step may fork new workers, growing engines_; hold the engine by
    // pointer and re-index the record afterwards.
    EngineT* engine = engines_[static_cast<std::size_t>(engineId)].engine.get();
    const StepOutcome& outcome = engine->step(now_);
    EngineRec& rec = engines_[static_cast<std::size_t>(engineId)];
    if (engine->done()) {
      rec.done = true;
      --immediateCount_;
      recordEvent(DeadlockReport::Event::Kind::Finish, engineId);
      if (tracer_ != nullptr)
        traceStep(engineId, rec, outcome, /*nowDone=*/true);
      if (rec.loopId >= 0)
        wakeJoinWaiters(rec.loopId);
      return;
    }
    if (tracer_ != nullptr)
      traceStep(engineId, rec, outcome, /*nowDone=*/false);
    switch (outcome.wait) {
    case Wait::Run:
      return;
    case Wait::Timed: {
      park(engineId, rec, outcome);
      std::uint64_t wakeAt = outcome.wakeAt;
      // Fault: the wakeup is delivered late (slow control path). Late
      // wakes are always safe — the engine re-checks its condition.
      if (faults_.has_value() && faults_->wakeDelay())
        wakeAt += static_cast<std::uint64_t>(faults_->wakeDelayCycles());
      pushTimedWake(wakeAt, engineId);
      break;
    }
    case Wait::FifoSpace:
    case Wait::FifoData: {
      park(engineId, rec, outcome);
      // Fault: the lane transiently refuses service — retry on a timer
      // instead of parking on the lane's wakeup list. The timed entry
      // guarantees the engine is re-stepped (and re-parks if still
      // blocked), so no wakeup is ever lost.
      if (faults_.has_value() && faults_->fifoStall()) {
        pushTimedWake(
            now_ + static_cast<std::uint64_t>(faults_->fifoStallCycles()),
            engineId);
      } else if (outcome.wait == Wait::FifoSpace) {
        channels_.lane(outcome.channel, outcome.lane).parkForSpace(engineId);
      } else {
        channels_.lane(outcome.channel, outcome.lane).parkForData(engineId);
      }
      break;
    }
    case Wait::Join:
      park(engineId, rec, outcome);
      joinWaiters_[outcome.loopId].push_back(engineId);
      break;
    }
  }

  /// stepEngine of the threaded fast loop: the hot path (engine live and
  /// progressing) is branch-minimal and fully inlined via stepFast; the
  /// cold transitions (finish, park) reuse the generic helpers, minus the
  /// fault branches the caller guarantees are dead. Accounting and park /
  /// wake behavior match stepEngine exactly.
  void stepEngineFast(const int engineId) {
    {
      const EngineRec& rec = engines_[static_cast<std::size_t>(engineId)];
      if (rec.parked || rec.done || now_ < rec.notBefore)
        return;
    }
    // A wrapper step may fork, reallocating engines_: keep only the
    // engine pointer (stable) across the step, re-index afterwards.
    EngineT* engine =
        engines_[static_cast<std::size_t>(engineId)].engine.get();
    const StepOutcome& outcome = engine->stepFast(now_);
    if (outcome.wait == Wait::Run && !engine->done())
      return;
    EngineRec& rec = engines_[static_cast<std::size_t>(engineId)];
    if (engine->done()) {
      rec.done = true;
      --immediateCount_;
      recordEvent(DeadlockReport::Event::Kind::Finish, engineId);
      if (rec.loopId >= 0)
        wakeJoinWaiters(rec.loopId);
      return;
    }
    park(engineId, rec, outcome);
    switch (outcome.wait) {
    case Wait::Timed:
      pushTimedWake(outcome.wakeAt, engineId);
      break;
    case Wait::FifoSpace:
      channels_.lane(outcome.channel, outcome.lane).parkForSpace(engineId);
      break;
    case Wait::FifoData:
      channels_.lane(outcome.channel, outcome.lane).parkForData(engineId);
      break;
    case Wait::Join:
      joinWaiters_[outcome.loopId].push_back(engineId);
      break;
    case Wait::Run:
      break; // Unreachable: a Run outcome returned above.
    }
  }

  void park(const int engineId, EngineRec& rec,
            const StepOutcome& outcome) {
    rec.parked = true;
    rec.parkedSince = now_ + 1; // The blocking step itself was accounted.
    rec.stall = outcome.stall;
    rec.waitKind = outcome.wait;
    rec.waitChannel = outcome.channel;
    rec.waitLane = outcome.lane;
    rec.waitLoopId = outcome.loopId;
    // Backpressure attribution: a park is a transition, not a per-cycle
    // event, so counting here never perturbs cycle-level behavior (same
    // discipline as the forensic event ring below).
    if (outcome.wait == Wait::FifoSpace)
      ++parkFull_[static_cast<std::size_t>(outcome.channel)];
    else if (outcome.wait == Wait::FifoData)
      ++parkEmpty_[static_cast<std::size_t>(outcome.channel)];
    --immediateCount_;
    recordEvent(DeadlockReport::Event::Kind::Park, engineId,
                reportWait(outcome.wait), outcome.channel, outcome.lane);
  }

  void wakeJoinWaiters(int loopId) {
    const auto it = joinWaiters_.find(loopId);
    if (it == joinWaiters_.end() || it->second.empty())
      return;
    std::vector<int> woken;
    woken.swap(it->second);
    for (const int engineId : woken)
      wakeEngine(engineId);
  }

  // --- Failure forensics ---
  // Recording happens only on scheduler transitions (park / wake / fork /
  // finish), off the per-instruction hot path, and never influences
  // scheduling — cycle counts stay bit-identical with forensics always on
  // (guarded by tests/regression_cycles_test.cpp).

  /// Bounded ring of recent scheduler transitions, dumped into reports.
  static constexpr std::size_t kMaxEvents = 64;

  static DeadlockReport::Wait reportWait(Wait wait) {
    switch (wait) {
    case Wait::Run:
      return DeadlockReport::Wait::Running;
    case Wait::Timed:
      return DeadlockReport::Wait::Timed;
    case Wait::FifoSpace:
      return DeadlockReport::Wait::FifoSpace;
    case Wait::FifoData:
      return DeadlockReport::Wait::FifoData;
    case Wait::Join:
      return DeadlockReport::Wait::Join;
    }
    CGPA_UNREACHABLE("bad wait kind");
  }

  void recordEvent(DeadlockReport::Event::Kind kind, int engineId,
                   DeadlockReport::Wait wait = DeadlockReport::Wait::Running,
                   int channel = -1, int lane = -1) {
    DeadlockReport::Event& slot = eventRing_[eventCount_ % kMaxEvents];
    slot.cycle = now_;
    slot.kind = kind;
    slot.engine = engineId;
    slot.wait = wait;
    slot.channel = channel;
    slot.lane = lane;
    ++eventCount_;
  }

  int stageOf(int taskIndex) const {
    return taskIndex < 0
               ? -1
               : pipeline_->tasks[static_cast<std::size_t>(taskIndex)]
                     .stageIndex;
  }

  std::shared_ptr<DeadlockReport> buildReport(DeadlockReport::Kind kind) {
    auto report = std::make_shared<DeadlockReport>();
    report->kind = kind;
    report->cycle = now_;
    report->maxCycles = config_->maxCycles;
    for (std::size_t e = 0; e < engines_.size(); ++e) {
      const EngineRec& rec = engines_[e];
      DeadlockReport::EngineState state;
      state.id = static_cast<int>(e);
      state.taskIndex = rec.taskIndex;
      state.stageIndex = stageOf(rec.taskIndex);
      state.memberLoopId = rec.loopId;
      if (rec.done) {
        state.wait = DeadlockReport::Wait::Done;
      } else if (!rec.parked) {
        state.wait = DeadlockReport::Wait::Running;
      } else {
        state.wait = reportWait(rec.waitKind);
        state.channel = rec.waitChannel;
        state.lane = rec.waitLane;
        state.loopId = rec.waitLoopId;
        state.parkedSince = rec.parkedSince;
      }
      report->engines.push_back(state);
    }
    for (int c = 0; c < channels_.numChannels(); ++c) {
      const pipeline::ChannelInfo& info =
          pipeline_->channels[static_cast<std::size_t>(c)];
      DeadlockReport::ChannelMeta meta;
      meta.id = info.id;
      meta.valueName = info.valueName;
      meta.producerStage = info.producerStage;
      meta.consumerStage = info.consumerStage;
      meta.lanes = channels_.lanesOf(c);
      meta.flitsPerValue = channels_.flitsOf(c);
      report->channels.push_back(meta);
      for (int l = 0; l < channels_.lanesOf(c); ++l) {
        const FifoLane& lane = channels_.lane(c, l);
        DeadlockReport::LaneState laneState;
        laneState.channel = c;
        laneState.lane = l;
        laneState.occupiedFlits = lane.occupiedFlits();
        laneState.capacityFlits = lane.capacityFlits();
        laneState.pushes = lane.totalPushes();
        laneState.pops = lane.totalPops();
        report->lanes.push_back(laneState);
      }
    }
    const std::size_t count =
        eventCount_ < kMaxEvents ? eventCount_ : kMaxEvents;
    for (std::size_t i = 0; i < count; ++i)
      report->recentEvents.push_back(
          eventRing_[(eventCount_ - count + i) % kMaxEvents]);
    report->analyzeWaitForGraph();
    return report;
  }

  Status failureStatus(DeadlockReport::Kind kind) {
    std::shared_ptr<DeadlockReport> report = buildReport(kind);
    std::string message;
    if (kind == DeadlockReport::Kind::Deadlock) {
      message = "simulation deadlock: every engine parked with no pending "
                "wakeup";
      if (report->wedgedChannel >= 0) {
        message += " (wedged channel " + std::to_string(report->wedgedChannel);
        const std::size_t idx = static_cast<std::size_t>(report->wedgedChannel);
        if (idx < report->channels.size() &&
            !report->channels[idx].valueName.empty())
          message += " '" + report->channels[idx].valueName + "'";
        message += ")";
      }
      return Status::error(ErrorCode::SimDeadlock, std::move(message))
          .withDetail(std::move(report));
    }
    message = "simulation exceeded cycle cap (" +
              std::to_string(config_->maxCycles) + " cycles)";
    return Status::error(ErrorCode::CycleCapExceeded, std::move(message))
        .withDetail(std::move(report));
  }

  const pipeline::PipelineModule* pipeline_;
  interp::Memory* memory_;
  const SystemConfig* config_;
  DCache cache_;
  ChannelSet channels_;
  /// Engaged only when config.faults.enabled() — disabled plans cost one
  /// has_value() branch per park and per cache accept.
  std::optional<FaultInjector> faults_;
  /// Forensic ring of recent scheduler transitions (see kMaxEvents).
  std::array<DeadlockReport::Event, kMaxEvents> eventRing_{};
  std::size_t eventCount_ = 0;
  interp::LiveoutFile liveouts_;
  const PlanT* wrapperPlan_;
  std::span<const PlanT* const> taskPlans_;
  Tracer* tracer_; ///< Null when tracing is off (the common case).
  /// engines_[0] is the wrapper; engines_[w + 1] is worker w in spawn
  /// order. Engine ids index this vector.
  std::vector<EngineRec> engines_;
  /// Engines neither parked nor done — when zero, time fast-forwards.
  int immediateCount_ = 0;
  std::uint64_t now_ = 0;
  int scanPos_ = kPosBeforeCycle;
  std::size_t workerCount_ = 0; ///< Worker count of this cycle's rotation.
  /// (wakeCycle, engineId) min-heap; entries may be stale (lazy deletion).
  std::priority_queue<std::pair<std::uint64_t, int>,
                      std::vector<std::pair<std::uint64_t, int>>,
                      std::greater<>>
      timedWakes_;
  /// Cycle of timedWakes_.top() (kNoWake when empty), cached so the hot
  /// loop's release check is one compare instead of a heap probe.
  std::uint64_t nextTimedWake_ = kNoWake;
  std::map<int, std::vector<EngineT*>> joinGroups_;
  std::map<int, std::vector<int>> joinWaiters_;
  /// Per-channel park tallies (indexed by channel id): how often an engine
  /// blocked on a full / empty lane of the channel. Transition-granular,
  /// so recording them never changes cycle counts.
  std::vector<std::uint64_t> parkFull_;
  std::vector<std::uint64_t> parkEmpty_;
};

} // namespace

const char* toString(SimBackend backend) {
  switch (backend) {
  case SimBackend::Interp:
    return "interp";
  case SimBackend::Threaded:
    return "threaded";
  case SimBackend::Auto:
    return "auto";
  }
  CGPA_UNREACHABLE("bad sim backend");
}

bool parseSimBackend(std::string_view name, SimBackend& out) {
  if (name == "interp")
    out = SimBackend::Interp;
  else if (name == "threaded")
    out = SimBackend::Threaded;
  else if (name == "auto")
    out = SimBackend::Auto;
  else
    return false;
  return true;
}

SystemSimulator::SystemSimulator(const pipeline::PipelineModule& pipeline,
                                 const SystemConfig& config)
    : pipeline_(&pipeline), config_(config) {
  // Sim-side scheduling never reports remarks: the driver's area pass is
  // the one pass that does, so each SDC decision is recorded exactly once
  // even when a caller reuses its compile-time ScheduleOptions here.
  config_.schedule.remarks = nullptr;
  backend_ = config.backend == SimBackend::Auto ? SimBackend::Threaded
                                                : config.backend;
  wrapperPlan_ = std::make_unique<ExecPlan>(
      *pipeline.wrapper,
      hls::scheduleFunction(*pipeline.wrapper, config_.schedule));
  taskPlans_.reserve(pipeline.tasks.size());
  for (const pipeline::TaskInfo& task : pipeline.tasks)
    taskPlans_.push_back(std::make_unique<ExecPlan>(
        *task.fn, hls::scheduleFunction(*task.fn, config_.schedule)));
  for (const auto& plan : taskPlans_)
    taskPlanPtrs_.push_back(plan.get());
  if (backend_ == SimBackend::Threaded) {
    wrapperCode_ = std::make_unique<exec::ThreadedProgram>(*wrapperPlan_);
    taskCodes_.reserve(taskPlans_.size());
    for (const auto& plan : taskPlans_)
      taskCodes_.push_back(std::make_unique<exec::ThreadedProgram>(*plan));
    for (const auto& code : taskCodes_)
      taskCodePtrs_.push_back(code.get());
  }
}

SystemSimulator::~SystemSimulator() = default;

Expected<SimResult> SystemSimulator::runChecked(
    interp::Memory& memory, std::span<const std::uint64_t> args,
    Tracer* tracer) {
  auto tagged = [&](Expected<SimResult> result) {
    if (result.ok())
      result->backend = backend_;
    return result;
  };
  if (backend_ == SimBackend::Threaded) {
    SystemRunner<exec::ThreadedEngine> runner(
        *pipeline_, memory, config_, *wrapperCode_, taskCodePtrs_, tracer);
    return tagged(runner.run(args));
  }
  SystemRunner<WorkerEngine> runner(*pipeline_, memory, config_,
                                    *wrapperPlan_, taskPlanPtrs_, tracer);
  return tagged(runner.run(args));
}

SimResult SystemSimulator::run(interp::Memory& memory,
                               std::span<const std::uint64_t> args,
                               Tracer* tracer) {
  Expected<SimResult> result = runChecked(memory, args, tracer);
  if (!result.ok()) {
    const StatusDetail* detail = result.status().detail();
    if (detail != nullptr)
      std::fputs((detail->describe() + "\n").c_str(), stderr);
    fatalError(result.status().toString(), __FILE__, __LINE__);
  }
  return std::move(*result);
}

Expected<SimResult> simulateSystemChecked(
    const pipeline::PipelineModule& pipeline, interp::Memory& memory,
    std::span<const std::uint64_t> args, const SystemConfig& config,
    Tracer* tracer) {
  SystemSimulator simulator(pipeline, config);
  return simulator.runChecked(memory, args, tracer);
}

SimResult simulateSystem(const pipeline::PipelineModule& pipeline,
                         interp::Memory& memory,
                         std::span<const std::uint64_t> args,
                         const SystemConfig& config, Tracer* tracer) {
  SystemSimulator simulator(pipeline, config);
  return simulator.run(memory, args, tracer);
}

} // namespace cgpa::sim
