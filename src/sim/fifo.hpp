// FIFO buffer model for inter-stage channels (paper: 32-bit wide, 16-entry
// FIFOs built from BRAM). Values wider than the FIFO width occupy multiple
// flits (entries), so a 64-bit double on a 32-bit FIFO consumes two slots.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "ir/type.hpp"
#include "pipeline/transform.hpp"

namespace cgpa::sim {

class FifoLane {
public:
  FifoLane(int capacityFlits, int widthBits)
      : capacityFlits_(capacityFlits), widthBits_(widthBits) {}

  static int flitsFor(ir::Type type, int widthBits) {
    const int bits = typeBits(type) == 0 ? 1 : typeBits(type);
    return (bits + widthBits - 1) / widthBits;
  }

  bool canPush(int flits) const {
    return occupiedFlits_ + flits <= capacityFlits_;
  }
  void push(std::uint64_t value, int flits);
  bool canPop() const { return !entries_.empty(); }
  std::uint64_t pop();

  int occupiedFlits() const { return occupiedFlits_; }
  std::uint64_t totalPushes() const { return totalPushes_; }
  int maxOccupancy() const { return maxOccupancy_; }
  int widthBits() const { return widthBits_; }

private:
  struct Entry {
    std::uint64_t value;
    int flits;
  };
  int capacityFlits_;
  int widthBits_;
  int occupiedFlits_ = 0;
  int maxOccupancy_ = 0;
  std::uint64_t totalPushes_ = 0;
  std::deque<Entry> entries_;
};

/// All lanes of all channels of one pipeline.
class ChannelSet {
public:
  ChannelSet(const pipeline::PipelineModule& pipeline, int depthEntries,
             int widthBits);

  FifoLane& lane(int channel, int laneIndex);
  int lanesOf(int channel) const;
  int flitsOf(int channel) const {
    return flits_.at(static_cast<std::size_t>(channel));
  }

  /// True when every lane of every channel is empty.
  bool drained() const;

  std::uint64_t totalPushes() const;
  int widthBits() const { return widthBits_; }
  int numChannels() const { return static_cast<int>(channels_.size()); }

  struct ChannelStats {
    std::uint64_t pushes = 0;
    int maxOccupancyFlits = 0; ///< Max over the channel's lanes.
  };
  ChannelStats channelStats(int channel) const;

private:
  std::vector<std::vector<FifoLane>> channels_;
  std::vector<int> flits_;
  int widthBits_;
};

} // namespace cgpa::sim
