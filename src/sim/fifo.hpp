// FIFO buffer model for inter-stage channels (paper: 32-bit wide, 16-entry
// FIFOs built from BRAM). Values wider than the FIFO width occupy multiple
// flits (entries), so a 64-bit double on a 32-bit FIFO consumes two slots.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/type.hpp"
#include "pipeline/transform.hpp"
#include "support/diag.hpp"
#include "trace/tracer.hpp"

namespace cgpa::sim {

/// Receiver for resource-state-change notifications, implemented by the
/// system scheduler: an engine blocked on a FIFO lane parks its id on that
/// lane and is woken when the lane's occupancy changes (see sim/system.cpp).
class WakeSink {
public:
  virtual ~WakeSink() = default;
  virtual void wakeEngine(int engineId) = 0;
};

class FifoLane {
public:
  FifoLane(int capacityFlits, int widthBits)
      : capacityFlits_(capacityFlits), widthBits_(widthBits),
        ring_(static_cast<std::size_t>(capacityFlits) + 1) {}

  static int flitsFor(ir::Type type, int widthBits) {
    const int bits = typeBits(type) == 0 ? 1 : typeBits(type);
    return (bits + widthBits - 1) / widthBits;
  }

  bool canPush(int flits) const {
    return occupiedFlits_ + flits <= capacityFlits_;
  }
  // push/pop are the per-produce/consume hot path: a fixed-size ring
  // buffer (entries never outnumber capacity flits, every entry is at
  // least one flit) and an inline empty-check before the wakeup notify.
  // The tracer hook is one predictable branch when tracing is off.
  void push(std::uint64_t value, int flits) {
    CGPA_ASSERT(canPush(flits), "FIFO overflow");
    ring_[tail_] = {value, flits};
    tail_ = next(tail_);
    occupiedFlits_ += flits;
    maxOccupancy_ =
        occupiedFlits_ > maxOccupancy_ ? occupiedFlits_ : maxOccupancy_;
    ++totalPushes_;
    if (tracer_ != nullptr)
      tracer_->onFifoPush(channelId_, laneId_, occupiedFlits_);
    if (!waitData_.empty())
      notify(waitData_);
  }
  bool canPop() const { return head_ != tail_; }
  std::uint64_t pop() {
    CGPA_ASSERT(canPop(), "FIFO underflow");
    const Entry entry = ring_[head_];
    head_ = next(head_);
    occupiedFlits_ -= entry.flits;
    ++totalPops_;
    if (tracer_ != nullptr)
      tracer_->onFifoPop(channelId_, laneId_, occupiedFlits_);
    if (!waitSpace_.empty())
      notify(waitSpace_);
    return entry.value;
  }

  int occupiedFlits() const { return occupiedFlits_; }
  int capacityFlits() const { return capacityFlits_; }
  std::uint64_t totalPushes() const { return totalPushes_; }
  std::uint64_t totalPops() const { return totalPops_; }
  int maxOccupancy() const { return maxOccupancy_; }
  int widthBits() const { return widthBits_; }

  // Wakeup lists: each waiter fires once on the next matching occupancy
  // change and must re-park if still blocked (wakes may be spurious, e.g.
  // a single freed flit of a multi-flit push).
  void setWakeSink(WakeSink* sink) { sink_ = sink; }
  void parkForSpace(int engineId) { waitSpace_.push_back(engineId); }
  void parkForData(int engineId) { waitData_.push_back(engineId); }

  /// Install a tracer (nullptr disables); channel/lane tag its events.
  void setTracer(Tracer* tracer, int channel, int lane) {
    tracer_ = tracer;
    channelId_ = channel;
    laneId_ = lane;
  }

private:
  void notify(std::vector<int>& waiters);
  struct Entry {
    std::uint64_t value;
    int flits;
  };
  std::size_t next(std::size_t i) const {
    return i + 1 < ring_.size() ? i + 1 : 0;
  }
  int capacityFlits_;
  int widthBits_;
  int occupiedFlits_ = 0;
  int maxOccupancy_ = 0;
  std::uint64_t totalPushes_ = 0;
  std::uint64_t totalPops_ = 0;
  Tracer* tracer_ = nullptr;
  int channelId_ = -1;
  int laneId_ = -1;
  /// Ring buffer; one spare slot distinguishes full from empty.
  std::vector<Entry> ring_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  WakeSink* sink_ = nullptr;
  std::vector<int> waitSpace_; ///< Engines woken by the next pop.
  std::vector<int> waitData_;  ///< Engines woken by the next push.
};

/// All lanes of all channels of one pipeline.
class ChannelSet {
public:
  /// `clampCapacityToValue` keeps every lane able to hold one complete
  /// value of its channel's type (the production setting — a lane smaller
  /// than one value deadlocks on the first push). Tests pass false to
  /// reproduce exactly that wedge against the deadlock forensics
  /// (SystemConfig::testOnlyNoCapacityClamp).
  ChannelSet(const pipeline::PipelineModule& pipeline, int depthEntries,
             int widthBits, bool clampCapacityToValue = true);

  // Hot path (every produce/consume issue): lanes of all channels live in
  // one contiguous array indexed through per-channel offsets, and one
  // assert covers both axes.
  FifoLane& lane(int channel, int laneIndex) {
    CGPA_ASSERT(channel >= 0 && channel < numChannels() && laneIndex >= 0 &&
                    laneIndex < lanesOf(channel),
                "channel lane out of range");
    return lanes_[static_cast<std::size_t>(
        laneBegin_[static_cast<std::size_t>(channel)] + laneIndex)];
  }
  int lanesOf(int channel) const {
    return laneBegin_[static_cast<std::size_t>(channel) + 1] -
           laneBegin_[static_cast<std::size_t>(channel)];
  }
  int flitsOf(int channel) const {
    return flits_.at(static_cast<std::size_t>(channel));
  }

  /// True when every lane of every channel is empty.
  bool drained() const;

  /// Install `sink` on every lane (wakeup-driven scheduling).
  void setWakeSink(WakeSink* sink);
  /// Install `tracer` on every lane, tagged with its channel/lane ids.
  void setTracer(Tracer* tracer);

  std::uint64_t totalPushes() const;
  std::uint64_t totalPops() const;
  int widthBits() const { return widthBits_; }
  int numChannels() const { return static_cast<int>(laneBegin_.size()) - 1; }

  struct ChannelStats {
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;    ///< Push/pop balance check: == pushes once drained.
    int maxOccupancyFlits = 0; ///< Max over the channel's lanes.
    int capacityFlits = 0;     ///< Per-lane capacity (all lanes identical).
    /// Park events, filled in by the system runner: how often an engine
    /// blocked pushing into (full) / popping from (empty) this channel.
    std::uint64_t parkFull = 0;
    std::uint64_t parkEmpty = 0;
    /// Attributed stall *cycles* (not events) against this channel, summed
    /// over every engine's ledger by the system runner — the per-channel
    /// slice of WorkerStats::stallFifoFull / stallFifoEmpty.
    std::uint64_t stallFullCycles = 0;
    std::uint64_t stallEmptyCycles = 0;
  };
  ChannelStats channelStats(int channel) const;

private:
  std::vector<FifoLane> lanes_;  ///< All channels' lanes, contiguous.
  std::vector<int> laneBegin_;   ///< numChannels() + 1 offsets into lanes_.
  std::vector<int> flits_;
  int widthBits_;
};

} // namespace cgpa::sim
