#include "sim/fifo.hpp"

#include <algorithm>

#include "support/diag.hpp"

namespace cgpa::sim {

void FifoLane::notify(std::vector<int>& waiters) {
  if (sink_ == nullptr)
    return;
  // Swap out first: a woken engine may re-park on this lane immediately.
  std::vector<int> woken;
  woken.swap(waiters);
  for (const int engineId : woken)
    sink_->wakeEngine(engineId);
}

ChannelSet::ChannelSet(const pipeline::PipelineModule& pipeline,
                       int depthEntries, int widthBits,
                       bool clampCapacityToValue)
    : widthBits_(widthBits) {
  laneBegin_.push_back(0);
  for (const pipeline::ChannelInfo& channel : pipeline.channels) {
    const int flits = FifoLane::flitsFor(channel.type, widthBits);
    flits_.push_back(flits);
    // Depth is specified in 32-bit entries (paper: depth 16, width 32); a
    // lane's flit capacity equals the entry count, but never less than one
    // complete value of the channel's type — a lane that cannot hold a
    // single multi-flit value would deadlock on the first push. The
    // unclamped variant exists only to exercise that deadlock in tests.
    const int capacity =
        clampCapacityToValue ? std::max(depthEntries, flits) : depthEntries;
    for (int l = 0; l < channel.lanes; ++l)
      lanes_.emplace_back(capacity, widthBits);
    laneBegin_.push_back(static_cast<int>(lanes_.size()));
  }
}

void ChannelSet::setWakeSink(WakeSink* sink) {
  for (FifoLane& lane : lanes_)
    lane.setWakeSink(sink);
}

void ChannelSet::setTracer(Tracer* tracer) {
  for (int c = 0; c < numChannels(); ++c)
    for (int l = 0; l < lanesOf(c); ++l)
      lane(c, l).setTracer(tracer, c, l);
}

bool ChannelSet::drained() const {
  for (const FifoLane& lane : lanes_)
    if (lane.canPop())
      return false;
  return true;
}

ChannelSet::ChannelStats ChannelSet::channelStats(int channel) const {
  ChannelStats stats;
  const int begin = laneBegin_.at(static_cast<std::size_t>(channel));
  const int end = laneBegin_.at(static_cast<std::size_t>(channel) + 1);
  for (int l = begin; l < end; ++l) {
    const FifoLane& lane = lanes_[static_cast<std::size_t>(l)];
    stats.pushes += lane.totalPushes();
    stats.pops += lane.totalPops();
    stats.maxOccupancyFlits =
        std::max(stats.maxOccupancyFlits, lane.maxOccupancy());
    stats.capacityFlits = lane.capacityFlits();
  }
  return stats;
}

std::uint64_t ChannelSet::totalPushes() const {
  std::uint64_t total = 0;
  for (const FifoLane& lane : lanes_)
    total += lane.totalPushes();
  return total;
}

std::uint64_t ChannelSet::totalPops() const {
  std::uint64_t total = 0;
  for (const FifoLane& lane : lanes_)
    total += lane.totalPops();
  return total;
}

} // namespace cgpa::sim
