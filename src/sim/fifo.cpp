#include "sim/fifo.hpp"

#include <algorithm>

#include "support/diag.hpp"

namespace cgpa::sim {

void FifoLane::push(std::uint64_t value, int flits) {
  CGPA_ASSERT(canPush(flits), "FIFO overflow");
  entries_.push_back({value, flits});
  occupiedFlits_ += flits;
  maxOccupancy_ = occupiedFlits_ > maxOccupancy_ ? occupiedFlits_
                                                 : maxOccupancy_;
  ++totalPushes_;
}

std::uint64_t FifoLane::pop() {
  CGPA_ASSERT(canPop(), "FIFO underflow");
  const Entry entry = entries_.front();
  entries_.pop_front();
  occupiedFlits_ -= entry.flits;
  return entry.value;
}

ChannelSet::ChannelSet(const pipeline::PipelineModule& pipeline,
                       int depthEntries, int widthBits)
    : widthBits_(widthBits) {
  for (const pipeline::ChannelInfo& channel : pipeline.channels) {
    const int flits = FifoLane::flitsFor(channel.type, widthBits);
    flits_.push_back(flits);
    // Depth is specified in 32-bit entries (paper: depth 16, width 32); a
    // lane's flit capacity equals the entry count.
    channels_.emplace_back();
    for (int l = 0; l < channel.lanes; ++l)
      channels_.back().emplace_back(depthEntries, widthBits);
  }
}

FifoLane& ChannelSet::lane(int channel, int laneIndex) {
  auto& lanes = channels_.at(static_cast<std::size_t>(channel));
  CGPA_ASSERT(laneIndex >= 0 &&
                  laneIndex < static_cast<int>(lanes.size()),
              "channel lane out of range");
  return lanes[static_cast<std::size_t>(laneIndex)];
}

int ChannelSet::lanesOf(int channel) const {
  return static_cast<int>(channels_.at(static_cast<std::size_t>(channel)).size());
}

bool ChannelSet::drained() const {
  for (const auto& lanes : channels_)
    for (const FifoLane& lane : lanes)
      if (lane.canPop())
        return false;
  return true;
}

ChannelSet::ChannelStats ChannelSet::channelStats(int channel) const {
  ChannelStats stats;
  for (const FifoLane& lane :
       channels_.at(static_cast<std::size_t>(channel))) {
    stats.pushes += lane.totalPushes();
    stats.maxOccupancyFlits =
        std::max(stats.maxOccupancyFlits, lane.maxOccupancy());
  }
  return stats;
}

std::uint64_t ChannelSet::totalPushes() const {
  std::uint64_t total = 0;
  for (const auto& lanes : channels_)
    for (const FifoLane& lane : lanes)
      total += lane.totalPushes();
  return total;
}

} // namespace cgpa::sim
