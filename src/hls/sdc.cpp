#include "hls/sdc.hpp"

#include "support/diag.hpp"

namespace cgpa::hls {

const char* sdcTagName(SdcTag tag) {
  switch (tag) {
  case SdcTag::None:
    return "none";
  case SdcTag::DataDep:
    return "data-dep";
  case SdcTag::SideEffectOrder:
    return "side-effect-order";
  case SdcTag::TerminatorLast:
    return "terminator-last";
  case SdcTag::PhiLatch:
    return "phi-latch";
  case SdcTag::ForkSameLoop:
    return "eq1-fork-same-loop";
  case SdcTag::ForkSeparation:
    return "eq2-fork-separation";
  case SdcTag::CommVsMem:
    return "eq3-comm-vs-mem";
  case SdcTag::LiveoutCoschedule:
    return "eq4-liveout-coschedule";
  case SdcTag::Chaining:
    return "chaining";
  case SdcTag::MemPort:
    return "mem-port";
  case SdcTag::CommSerial:
    return "comm-serial";
  }
  return "none";
}

int SdcSystem::addVar() {
  lowerBounds_.push_back(0);
  return numVars_++;
}

void SdcSystem::addGe(int a, int b, int c, SdcTag tag) {
  CGPA_ASSERT(a >= 0 && a < numVars_ && b >= 0 && b < numVars_,
              "SDC variable out of range");
  edges_.push_back({b, a, c, tag});
}

void SdcSystem::addEq(int a, int b, int c, SdcTag tag) {
  addGe(a, b, c, tag);
  addGe(b, a, -c, tag);
}

void SdcSystem::addLowerBound(int a, int c) {
  CGPA_ASSERT(a >= 0 && a < numVars_, "SDC variable out of range");
  auto& bound = lowerBounds_[static_cast<std::size_t>(a)];
  if (c > bound)
    bound = c;
}

bool SdcSystem::solve() {
  // Longest-path relaxation from the implicit source: start at the lower
  // bounds and relax edges; more than numVars_ rounds means a positive
  // cycle (infeasible).
  values_ = lowerBounds_;
  for (int round = 0; round <= numVars_; ++round) {
    bool changed = false;
    for (const Edge& edge : edges_) {
      const int candidate = values_[static_cast<std::size_t>(edge.from)] +
                            edge.weight;
      if (candidate > values_[static_cast<std::size_t>(edge.to)]) {
        values_[static_cast<std::size_t>(edge.to)] = candidate;
        changed = true;
      }
    }
    if (!changed)
      return true;
  }
  return false;
}

} // namespace cgpa::hls
