// System of difference constraints (SDC) for instruction scheduling,
// following the formulation of Cong & Zhang (DAC'06) that the paper builds
// its scheduling constraints (1)-(4) on.
//
// Variables are schedule states (cycles); constraints have the form
// sv(a) - sv(b) >= c. The minimal (ASAP) solution with all variables >= 0
// is the longest path from a virtual source, computed by Bellman-Ford.
#pragma once

#include <vector>

namespace cgpa::hls {

class SdcSystem {
public:
  /// Add a variable; returns its id. All variables are constrained >= 0.
  int addVar();

  /// sv(a) - sv(b) >= c.
  void addGe(int a, int b, int c);

  /// sv(a) - sv(b) == c.
  void addEq(int a, int b, int c);

  /// sv(a) >= c (lower bound against the virtual source).
  void addLowerBound(int a, int c);

  /// Solve for the minimal assignment. Returns false when the constraints
  /// are infeasible (a positive cycle exists).
  bool solve();

  /// Value of a variable after a successful solve().
  int valueOf(int var) const { return values_.at(static_cast<std::size_t>(var)); }

  int numVars() const { return numVars_; }

private:
  struct Edge {
    int from;
    int to;
    int weight;
  };
  int numVars_ = 0;
  std::vector<Edge> edges_;
  std::vector<int> lowerBounds_;
  std::vector<int> values_;
};

} // namespace cgpa::hls
