// System of difference constraints (SDC) for instruction scheduling,
// following the formulation of Cong & Zhang (DAC'06) that the paper builds
// its scheduling constraints (1)-(4) on.
//
// Variables are schedule states (cycles); constraints have the form
// sv(a) - sv(b) >= c. The minimal (ASAP) solution with all variables >= 0
// is the longest path from a virtual source, computed by Bellman-Ford.
//
// Every constraint carries an SdcTag naming the scheduling rule that
// produced it, so the remarks layer can report which rule binds each
// operation (a constraint is *binding* when it holds with equality in the
// solved system) and walk the critical constraint chain of a block.
#pragma once

#include <vector>

namespace cgpa::hls {

/// Provenance tag for one SDC constraint. Eq1-Eq4 are the paper's
/// CGPA-specific constraints (Section 3.4); the rest are the structural
/// scheduling rules.
enum class SdcTag {
  None,
  DataDep,           ///< Operand ready after producer latency.
  SideEffectOrder,   ///< Side effects issue in program order.
  TerminatorLast,    ///< Terminator no earlier than any instruction.
  PhiLatch,          ///< Phi next-value latched by the back edge.
  ForkSameLoop,      ///< Eq. 1: forks of the same loop share a state.
  ForkSeparation,    ///< Eq. 2: forks of different loops >= 1 state apart.
  CommVsMem,         ///< Eq. 3: produce/consume never with a memory op.
  LiveoutCoschedule, ///< Eq. 4: store_liveout with the exit branch.
  Chaining,          ///< Combinational chain exceeded the delay budget.
  MemPort,           ///< Memory-port pressure within one state.
  CommSerial,        ///< One FIFO transaction per state.
};

/// Stable lowercase name for a tag (used in remark args).
const char* sdcTagName(SdcTag tag);

class SdcSystem {
public:
  struct Edge {
    int from;
    int to;
    int weight;
    SdcTag tag;
  };

  /// Add a variable; returns its id. All variables are constrained >= 0.
  int addVar();

  /// sv(a) - sv(b) >= c.
  void addGe(int a, int b, int c, SdcTag tag = SdcTag::None);

  /// sv(a) - sv(b) == c.
  void addEq(int a, int b, int c, SdcTag tag = SdcTag::None);

  /// sv(a) >= c (lower bound against the virtual source).
  void addLowerBound(int a, int c);

  /// Solve for the minimal assignment. Returns false when the constraints
  /// are infeasible (a positive cycle exists).
  bool solve();

  /// Value of a variable after a successful solve().
  int valueOf(int var) const { return values_.at(static_cast<std::size_t>(var)); }

  int numVars() const { return numVars_; }

  /// All constraints added so far (each addEq contributes two edges).
  const std::vector<Edge>& edges() const { return edges_; }

  /// True when `edge` holds with equality in the solved system — i.e. it
  /// is one of the constraints actually pinning sv(edge.to).
  bool isBinding(const Edge& edge) const {
    return valueOf(edge.to) - valueOf(edge.from) == edge.weight;
  }

private:
  int numVars_ = 0;
  std::vector<Edge> edges_;
  std::vector<int> lowerBounds_;
  std::vector<int> values_;
};

} // namespace cgpa::hls
