// FSM scheduler: maps each basic block's instructions onto FSM states
// (one state = one cycle at the target frequency) under SDC constraints,
// including the paper's four CGPA-specific constraints (Section 3.4):
//   (1) parallel_fork primitives of the same loop share one state;
//   (2) forks of different loops are at least one state apart;
//   (3) produce/consume never share a state with a memory operation;
//   (4) store_liveout is co-scheduled with the exit branch.
// Plus structural constraints: data dependences with operator latencies,
// operator chaining within a state bounded by a delay budget, bounded
// memory ports per state, and in-order side effects.
#pragma once

#include <unordered_map>
#include <vector>

#include "hls/ops.hpp"
#include "ir/function.hpp"
#include "support/status.hpp"
#include "trace/remarks.hpp"

namespace cgpa::hls {

struct ScheduleOptions {
  /// Combinational delay units chainable within one state.
  int chainBudget = 3;
  /// Memory operations issuable per state (dedicated worker ports).
  int memPortsPerState = 1;
  /// Enforce paper constraint (3) (used by the scheduler ablation bench).
  bool separateCommFromMem = true;
  /// Enforce the chaining limit (ablation switch; false = unlimited chain).
  bool enableChaining = true;
  /// When non-null, record per-op binding constraints / slack and the
  /// critical SDC chain of each block ("sdc" pass remarks). Never affects
  /// the produced schedule.
  trace::RemarkCollector* remarks = nullptr;
};

struct BlockSchedule {
  /// states[s] = instructions issued in state s, in program order.
  std::vector<std::vector<ir::Instruction*>> states;
  std::unordered_map<const ir::Instruction*, int> stateOf;
  int numStates() const { return static_cast<int>(states.size()); }
};

struct FunctionSchedule {
  std::unordered_map<const ir::BasicBlock*, BlockSchedule> blocks;
  int totalStates = 0;

  const BlockSchedule& of(const ir::BasicBlock* block) const {
    return blocks.at(block);
  }
  int stateOf(const ir::Instruction* inst) const {
    return blocks.at(inst->parent()).stateOf.at(inst);
  }
};

/// Schedule every block of `function`. An infeasible SDC system or a
/// non-converging refinement (both indicate contradictory constraints —
/// typically malformed or adversarial input IR) comes back as
/// ErrorCode::ScheduleError naming the function and block.
Expected<FunctionSchedule> scheduleFunctionChecked(
    const ir::Function& function, const ScheduleOptions& options);

/// Legacy aborting wrapper over scheduleFunctionChecked().
FunctionSchedule scheduleFunction(const ir::Function& function,
                                  const ScheduleOptions& options);

} // namespace cgpa::hls
