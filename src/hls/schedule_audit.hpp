// Independent re-validation of an FSM schedule against every SDC constraint
// the scheduler is supposed to enforce, including the paper's four
// CGPA-specific constraints (Section 3.4, Eqs. 1-4).
//
// The audit recomputes each constraint from the IR and the finished
// schedule — it shares no code with the scheduler's constraint emission, so
// a bug in either side shows up as a violation here. Besides pass/fail it
// reports *residuals* (minimum slack per constraint family), which the
// fuzzing harness records to prove the constraints were actually exercised
// rather than vacuously satisfied.
#pragma once

#include <string>
#include <vector>

#include "hls/schedule.hpp"

namespace cgpa::hls {

struct ScheduleAudit {
  /// Human-readable violations; empty means the schedule satisfies every
  /// audited constraint.
  std::vector<std::string> violations;

  // Residuals: the tightest observed slack per constraint family. A value
  // of -1 in the min* fields means the family never occurred in this
  // function (no constraint of that kind existed).
  int minDataDepSlack = -1;    ///< min over defs: state(use)-state(def)-lat.
  int minSideEffectSlack = -1; ///< min over ordered side-effect pairs.
  int minForkSeparation = -1;  ///< Eq. 2: min gap between cross-loop forks.
  int maxChainDepth = 0;       ///< Longest in-state combinational chain.
  int maxMemPortsUsed = 0;     ///< Max memory issues in one state.
  int maxCommPerState = 0;     ///< Max FIFO accesses in one state.
  int sameLoopForkGroups = 0;  ///< Eq. 1 groups audited.
  int liveoutsAudited = 0;     ///< Eq. 4 co-schedules audited.
  int statesAudited = 0;
  int constraintsChecked = 0;

  bool ok() const { return violations.empty(); }
};

/// Audit `schedule` for `function` under the options it was built with.
ScheduleAudit auditSchedule(const ir::Function& function,
                            const FunctionSchedule& schedule,
                            const ScheduleOptions& options);

} // namespace cgpa::hls
