#include "hls/ops.hpp"

#include "support/diag.hpp"

namespace cgpa::hls {

using ir::Opcode;
using ir::Type;

OpTiming opTiming(Opcode op, Type type) {
  const bool wide = typeBits(type) > 32;
  switch (op) {
  // Simple integer / pointer ops: combinational, chainable.
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::LShr:
  case Opcode::AShr:
  case Opcode::ICmp:
  case Opcode::Gep:
  case Opcode::Select:
    return {0, wide ? 2 : 1};
  case Opcode::Trunc:
  case Opcode::SExt:
  case Opcode::ZExt:
  case Opcode::PtrToInt:
  case Opcode::IntToPtr:
  case Opcode::Phi:
    return {0, 0}; // Wiring only.
  case Opcode::Mul:
    return {wide ? 3 : 2, 3};
  case Opcode::SDiv:
  case Opcode::SRem:
    return {wide ? 34 : 18, 3};
  // Floating point (pipelined megafunction-style blocks).
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FCmp:
    return {wide ? 5 : 4, 3};
  case Opcode::FMul:
    return {wide ? 6 : 5, 3};
  case Opcode::FDiv:
    return {wide ? 24 : 16, 3};
  case Opcode::SIToFP:
  case Opcode::FPToSI:
  case Opcode::FPExt:
  case Opcode::FPTrunc:
    return {3, 2};
  case Opcode::Call: // sqrt/abs/min/max units.
    return {8, 3};
  // Memory: issue + cache hit pipeline.
  case Opcode::Load:
    return {2, 2};
  case Opcode::Store:
    return {1, 2};
  // CGPA primitives (paper Table 1): one cycle of FIFO handshake per
  // 32-bit flit; the simulator adds stall cycles dynamically.
  case Opcode::Produce:
  case Opcode::ProduceBroadcast:
  case Opcode::Consume:
    return {1, 2};
  case Opcode::ParallelFork:
  case Opcode::ParallelJoin:
    return {1, 1};
  case Opcode::StoreLiveout:
  case Opcode::RetrieveLiveout:
    return {0, 1};
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Ret:
    return {0, 0};
  }
  CGPA_UNREACHABLE("opTiming: bad opcode");
}

int opAluts(Opcode op, Type type) {
  const int bits = typeBits(type) == 0 ? 32 : typeBits(type);
  switch (op) {
  case Opcode::Add:
  case Opcode::Sub:
    return bits;
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
    return bits / 2;
  case Opcode::Shl:
  case Opcode::LShr:
  case Opcode::AShr:
    return bits * 3 / 2; // Barrel shifter.
  case Opcode::ICmp:
    return 20;
  case Opcode::FCmp:
    return 60;
  case Opcode::Gep:
    return 40; // Shared base+index*scale adder tree.
  case Opcode::Select:
    return bits / 2;
  case Opcode::Trunc:
  case Opcode::SExt:
  case Opcode::ZExt:
  case Opcode::PtrToInt:
  case Opcode::IntToPtr:
  case Opcode::Phi:
    return 0; // Wiring / mux folded into FSM cost.
  case Opcode::Mul:
    return bits > 32 ? 140 : 70; // Mostly DSP blocks; glue ALUTs.
  case Opcode::SDiv:
  case Opcode::SRem:
    return bits > 32 ? 900 : 450;
  case Opcode::FAdd:
  case Opcode::FSub:
    return bits > 32 ? 650 : 400;
  case Opcode::FMul:
    return bits > 32 ? 350 : 180; // DSP-heavy.
  case Opcode::FDiv:
    return bits > 32 ? 1400 : 800;
  case Opcode::SIToFP:
  case Opcode::FPToSI:
  case Opcode::FPExt:
  case Opcode::FPTrunc:
    return 180;
  case Opcode::Call:
    return 600;
  case Opcode::Load:
  case Opcode::Store:
    return 90; // Memory port interface + tag of outstanding request.
  case Opcode::Produce:
  case Opcode::ProduceBroadcast:
  case Opcode::Consume:
    return 30; // FIFO handshake logic (buffers themselves are BRAM).
  case Opcode::ParallelFork:
  case Opcode::ParallelJoin:
    return 25;
  case Opcode::StoreLiveout:
  case Opcode::RetrieveLiveout:
    return 10;
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Ret:
    return 0; // Counted in FSM cost.
  }
  CGPA_UNREACHABLE("opAluts: bad opcode");
}

int mipsCycles(Opcode op, Type type) {
  const bool wide = typeBits(type) > 32;
  switch (op) {
  case Opcode::Mul:
    return wide ? 5 : 3;
  case Opcode::SDiv:
  case Opcode::SRem:
    return wide ? 40 : 24;
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FCmp:
    return 4;
  case Opcode::FMul:
    return wide ? 6 : 5;
  case Opcode::FDiv:
    return wide ? 30 : 22;
  case Opcode::SIToFP:
  case Opcode::FPToSI:
  case Opcode::FPExt:
  case Opcode::FPTrunc:
    return 4;
  case Opcode::Call:
    return 20;
  case Opcode::CondBr:
    return 2; // Branch + average misprediction-ish bubble on a simple core.
  case Opcode::Load:
  case Opcode::Store:
    return 1; // Plus cache latency, charged by the memory model.
  case Opcode::Phi:
    return 0; // Register-allocated copies, usually free.
  default:
    return 1;
  }
}

double opEnergyPj(Opcode op, Type type) {
  // Scale with active logic size; tuned so accelerator power lands in the
  // tens-to-hundreds-of-mW band the paper reports.
  const double aluts = static_cast<double>(opAluts(op, type));
  switch (op) {
  case Opcode::Load:
  case Opcode::Store:
    return 18.0; // Cache/crossbar access dominates.
  case Opcode::Produce:
  case Opcode::ProduceBroadcast:
  case Opcode::Consume:
    return 6.0; // BRAM FIFO push/pop.
  default:
    return 0.5 + aluts * 0.012;
  }
}

} // namespace cgpa::hls
