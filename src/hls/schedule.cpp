#include "hls/schedule.hpp"

#include <algorithm>

#include "hls/sdc.hpp"
#include "support/diag.hpp"

namespace cgpa::hls {

using ir::BasicBlock;
using ir::Instruction;
using ir::Opcode;

namespace {

bool isCommOp(Opcode op) {
  return op == Opcode::Produce || op == Opcode::ProduceBroadcast ||
         op == Opcode::Consume;
}

bool isOrderedSideEffect(Opcode op) {
  return ir::hasSideEffects(op) || op == Opcode::Load;
}

/// Human-readable handle for a scheduled instruction: its SSA name when it
/// has one, else its opcode mnemonic.
std::string instLabel(const Instruction* inst) {
  if (!inst->name().empty())
    return inst->name();
  return std::string(ir::opcodeName(inst->opcode()));
}

/// Report which scheduling rules pinned each communication / fork /
/// liveout op (the ops the paper's Eqs. 1-4 govern), its slack against the
/// block terminator, and the critical constraint chain of the block. Pure
/// observation of the already-solved SDC system.
void emitScheduleRemarks(trace::RemarkCollector& remarks,
                         const std::string& fnName, const BasicBlock& block,
                         const std::vector<Instruction*>& insts,
                         const SdcSystem& sdc, const Instruction* term,
                         const std::unordered_map<const Instruction*, int>&
                             indexOf) {
  const int n = static_cast<int>(insts.size());
  const int termState =
      term != nullptr ? sdc.valueOf(indexOf.at(term)) : 0;

  for (int i = 0; i < n; ++i) {
    const Instruction* inst = insts[static_cast<std::size_t>(i)];
    const Opcode op = inst->opcode();
    const bool interesting = isCommOp(op) || op == Opcode::ParallelFork ||
                             op == Opcode::StoreLiveout;
    if (!interesting)
      continue;
    // Constraints that hold with equality into this op are the ones that
    // actually decided its state.
    std::string boundBy;
    for (const SdcSystem::Edge& edge : sdc.edges()) {
      if (edge.to != i || edge.tag == SdcTag::None || !sdc.isBinding(edge))
        continue;
      const char* name = sdcTagName(edge.tag);
      if (boundBy.find(name) != std::string::npos)
        continue;
      if (!boundBy.empty())
        boundBy += ',';
      boundBy += name;
    }
    const int state = sdc.valueOf(i);
    remarks.add("sdc", "op-schedule",
                fnName + "/" + block.name() + "/" + instLabel(inst))
        .note("scheduled '" + instLabel(inst) + "' in state " +
              std::to_string(state))
        .arg("fn", fnName)
        .arg("block", block.name())
        .arg("op", std::string(ir::opcodeName(op)))
        .arg("state", state)
        .arg("slack", termState - state)
        .arg("bound_by", boundBy);
  }

  // Critical chain: walk binding constraints back from the latest
  // instruction. The eq-pair reverse edges can form 2-cycles, so keep a
  // visited set and prefer forward (positive-weight) edges.
  int latest = 0;
  for (int i = 1; i < n; ++i)
    if (sdc.valueOf(i) >= sdc.valueOf(latest))
      latest = i;
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  std::string chain = instLabel(insts[static_cast<std::size_t>(latest)]);
  std::string chainTags;
  int current = latest;
  visited[static_cast<std::size_t>(current)] = true;
  for (int step = 0; step < n; ++step) {
    const SdcSystem::Edge* best = nullptr;
    for (const SdcSystem::Edge& edge : sdc.edges()) {
      if (edge.to != current || edge.from == current ||
          visited[static_cast<std::size_t>(edge.from)] ||
          !sdc.isBinding(edge))
        continue;
      if (best == nullptr || edge.weight > best->weight)
        best = &edge;
    }
    if (best == nullptr || best->weight < 0)
      break;
    current = best->from;
    visited[static_cast<std::size_t>(current)] = true;
    chain += " <- " + instLabel(insts[static_cast<std::size_t>(current)]);
    if (!chainTags.empty())
      chainTags += ',';
    chainTags += sdcTagName(best->tag);
  }
  remarks.add("sdc", "critical-chain", fnName + "/" + block.name())
      .note("longest binding constraint chain ends at '" +
            instLabel(insts[static_cast<std::size_t>(latest)]) + "'")
      .arg("fn", fnName)
      .arg("block", block.name())
      .arg("states", termState + 1)
      .arg("chain", chain)
      .arg("chain_tags", chainTags);
}

cgpa::Expected<BlockSchedule> scheduleBlock(const BasicBlock& block,
                                            const std::string& fnName,
                                            const ScheduleOptions& options) {
  const int n = block.size();
  std::vector<Instruction*> insts;
  insts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    insts.push_back(block.instruction(i));
  std::unordered_map<const Instruction*, int> indexOf;
  for (int i = 0; i < n; ++i)
    indexOf[insts[static_cast<std::size_t>(i)]] = i;

  SdcSystem sdc;
  for (int i = 0; i < n; ++i)
    sdc.addVar();

  // Data dependences within the block.
  for (int i = 0; i < n; ++i) {
    const Instruction* inst = insts[static_cast<std::size_t>(i)];
    if (inst->opcode() == Opcode::Phi)
      continue; // Phis resolve at state 0 on block entry.
    for (const ir::Value* operand : inst->operands()) {
      const Instruction* def = ir::asInstruction(operand);
      if (def == nullptr || def->parent() != &block)
        continue;
      const auto defIt = indexOf.find(def);
      if (defIt == indexOf.end())
        continue;
      const OpTiming timing = opTiming(def->opcode(), def->type());
      sdc.addGe(i, defIt->second, timing.latency, SdcTag::DataDep);
    }
  }

  // In-order side effects (memory, FIFO, fork/join, live-outs): chain each
  // to its predecessor with >= 0 so program order is preserved across
  // states while still permitting co-scheduling where legal.
  int prevSideEffect = -1;
  for (int i = 0; i < n; ++i) {
    if (!isOrderedSideEffect(insts[static_cast<std::size_t>(i)]->opcode()))
      continue;
    if (prevSideEffect >= 0)
      sdc.addGe(i, prevSideEffect, 0, SdcTag::SideEffectOrder);
    prevSideEffect = i;
  }

  // Terminator is last; it also waits for its condition's latency (already
  // covered by the data-dependence pass) and for in-block values feeding
  // successor phis (the taken edge latches those phi registers).
  Instruction* term = block.terminator();
  if (term != nullptr) {
    const int t = indexOf.at(term);
    for (int i = 0; i < n; ++i)
      if (i != t)
        sdc.addGe(t, i, 0, SdcTag::TerminatorLast);
    for (const BasicBlock* succ : term->successors()) {
      for (const auto& phi : succ->instructions()) {
        if (phi->opcode() != Opcode::Phi)
          break;
        for (const ir::Value* operand : phi->operands()) {
          const Instruction* def = ir::asInstruction(operand);
          if (def == nullptr || def->parent() != &block)
            continue;
          const auto defIt = indexOf.find(def);
          if (defIt != indexOf.end())
            sdc.addGe(t, defIt->second,
                      opTiming(def->opcode(), def->type()).latency,
                      SdcTag::PhiLatch);
        }
      }
    }
    // Constraint (4): store_liveout co-scheduled with the exit branch.
    for (int i = 0; i < n; ++i)
      if (insts[static_cast<std::size_t>(i)]->opcode() ==
          Opcode::StoreLiveout)
        sdc.addEq(i, t, 0, SdcTag::LiveoutCoschedule);
  }

  // Constraints (1) and (2): forks of the same loop share a state; forks
  // of different loops are separated.
  std::vector<int> forkIdx;
  for (int i = 0; i < n; ++i)
    if (insts[static_cast<std::size_t>(i)]->opcode() == Opcode::ParallelFork)
      forkIdx.push_back(i);
  for (std::size_t a = 0; a + 1 < forkIdx.size(); ++a) {
    const Instruction* fa = insts[static_cast<std::size_t>(forkIdx[a])];
    const Instruction* fb = insts[static_cast<std::size_t>(forkIdx[a + 1])];
    if (fa->loopId() == fb->loopId())
      sdc.addEq(forkIdx[a + 1], forkIdx[a], 0, SdcTag::ForkSameLoop);
    else
      sdc.addGe(forkIdx[a + 1], forkIdx[a], 1, SdcTag::ForkSeparation);
  }

  if (!sdc.solve())
    return Status::error(ErrorCode::ScheduleError,
                         "initial SDC system infeasible in block '" +
                             block.name() + "'");

  // Iterative refinement: chaining budget, memory ports, constraint (3),
  // and single-FIFO-access-per-state. Each violation adds constraints and
  // re-solves (bounded).
  for (int round = 0; round < 256; ++round) {
    std::vector<int> sv(static_cast<std::size_t>(n));
    int maxState = 0;
    for (int i = 0; i < n; ++i) {
      sv[static_cast<std::size_t>(i)] = sdc.valueOf(i);
      maxState = std::max(maxState, sv[static_cast<std::size_t>(i)]);
    }
    bool violated = false;

    // Chaining: longest combinational chain within each state.
    if (options.enableChaining && !violated) {
      std::vector<int> depth(static_cast<std::size_t>(n), 0);
      for (int i = 0; i < n && !violated; ++i) {
        Instruction* inst = insts[static_cast<std::size_t>(i)];
        if (inst->opcode() == Opcode::Phi)
          continue;
        const OpTiming timing = opTiming(inst->opcode(), inst->type());
        int inDepth = 0;
        int worstPred = -1;
        for (const ir::Value* operand : inst->operands()) {
          const Instruction* def = ir::asInstruction(operand);
          if (def == nullptr || def->parent() != &block)
            continue;
          const int d = indexOf.at(def);
          if (sv[static_cast<std::size_t>(d)] != sv[static_cast<std::size_t>(i)])
            continue;
          if (opTiming(def->opcode(), def->type()).latency != 0)
            continue; // Registered output: no combinational chain.
          if (depth[static_cast<std::size_t>(d)] >= inDepth) {
            inDepth = depth[static_cast<std::size_t>(d)];
            worstPred = d;
          }
        }
        depth[static_cast<std::size_t>(i)] = inDepth + timing.delayUnits;
        if (depth[static_cast<std::size_t>(i)] > options.chainBudget &&
            worstPred >= 0) {
          sdc.addGe(i, worstPred, 1, SdcTag::Chaining);
          violated = true;
        }
      }
    }

    // Memory ports per state.
    if (!violated) {
      for (int s = 0; s <= maxState && !violated; ++s) {
        int used = 0;
        int lastKept = -1;
        for (int i = 0; i < n; ++i) {
          if (sv[static_cast<std::size_t>(i)] != s ||
              !insts[static_cast<std::size_t>(i)]->isMemory())
            continue;
          if (used < options.memPortsPerState) {
            ++used;
            lastKept = i;
          } else {
            sdc.addGe(i, lastKept, 1, SdcTag::MemPort);
            violated = true;
            break;
          }
        }
      }
    }

    // Constraint (3): produce/consume never with memory ops; also at most
    // one FIFO access per state (a FIFO port handles one push/pop/cycle).
    if (!violated) {
      for (int s = 0; s <= maxState && !violated; ++s) {
        int mem = -1;
        int comm = -1;
        for (int i = 0; i < n; ++i) {
          if (sv[static_cast<std::size_t>(i)] != s)
            continue;
          const Opcode op = insts[static_cast<std::size_t>(i)]->opcode();
          if (insts[static_cast<std::size_t>(i)]->isMemory())
            mem = mem < 0 ? i : mem;
          if (isCommOp(op)) {
            if (comm >= 0) {
              // Second FIFO access: next state.
              sdc.addGe(i, comm, 1, SdcTag::CommSerial);
              violated = true;
              break;
            }
            comm = i;
          }
        }
        if (!violated && options.separateCommFromMem && mem >= 0 &&
            comm >= 0) {
          // Push whichever comes later in program order.
          sdc.addGe(std::max(mem, comm), std::min(mem, comm), 1,
                    SdcTag::CommVsMem);
          violated = true;
        }
      }
    }

    if (!violated)
      break;
    if (!sdc.solve())
      return Status::error(ErrorCode::ScheduleError,
                           "SDC refinement infeasible in block '" +
                               block.name() + "'");
    if (round >= 255)
      return Status::error(ErrorCode::ScheduleError,
                           "scheduler failed to converge in block '" +
                               block.name() + "'");
  }

  if (options.remarks != nullptr)
    emitScheduleRemarks(*options.remarks, fnName, block, insts, sdc, term,
                        indexOf);

  // Materialize states.
  BlockSchedule schedule;
  int maxState = 0;
  for (int i = 0; i < n; ++i)
    maxState = std::max(maxState, sdc.valueOf(i));
  schedule.states.resize(static_cast<std::size_t>(maxState) + 1);
  for (int i = 0; i < n; ++i) {
    schedule.states[static_cast<std::size_t>(sdc.valueOf(i))].push_back(
        insts[static_cast<std::size_t>(i)]);
    schedule.stateOf[insts[static_cast<std::size_t>(i)]] = sdc.valueOf(i);
  }
  return schedule;
}

} // namespace

Expected<FunctionSchedule> scheduleFunctionChecked(
    const ir::Function& function, const ScheduleOptions& options) {
  FunctionSchedule schedule;
  for (const auto& block : function.blocks()) {
    Expected<BlockSchedule> blockSchedule =
        scheduleBlock(*block, function.name(), options);
    if (!blockSchedule.ok())
      return Status::error(ErrorCode::ScheduleError,
                           "in @" + function.name() + ": " +
                               blockSchedule.status().message());
    schedule.totalStates += blockSchedule->numStates();
    schedule.blocks.emplace(block.get(), std::move(*blockSchedule));
  }
  return schedule;
}

FunctionSchedule scheduleFunction(const ir::Function& function,
                                  const ScheduleOptions& options) {
  Expected<FunctionSchedule> schedule =
      scheduleFunctionChecked(function, options);
  if (!schedule.ok())
    fatalError(schedule.status().toString(), __FILE__, __LINE__);
  return std::move(*schedule);
}

} // namespace cgpa::hls
