// Operator timing and resource tables for the HLS backend.
//
// Latencies and ALUT costs are calibrated to Legup-era Stratix IV numbers
// at a 200 MHz target (the paper's synthesis frequency): simple integer
// ops chain combinationally within a cycle, multipliers and floating-point
// units are pipelined multi-cycle blocks, loads see the cache hit latency.
#pragma once

#include "ir/instruction.hpp"

namespace cgpa::hls {

struct OpTiming {
  /// Cycles from issue until the result may be used (0 = combinational,
  /// chainable within the issue state).
  int latency = 0;
  /// Combinational delay in chaining units; the scheduler limits the total
  /// units chained within one state (see ScheduleOptions::chainBudget).
  int delayUnits = 1;
};

OpTiming opTiming(ir::Opcode op, ir::Type type);

/// ALUTs consumed by one instance of this operation's datapath.
int opAluts(ir::Opcode op, ir::Type type);

/// Cycle cost of this op on the in-order MIPS software core model
/// (single-issue; memory cost added separately by the cache model).
int mipsCycles(ir::Opcode op, ir::Type type);

/// Estimated dynamic energy per execution, in picojoules, for the FPGA
/// datapath (feeds the PowerPlay-substitute model).
double opEnergyPj(ir::Opcode op, ir::Type type);

} // namespace cgpa::hls
