#include "hls/area.hpp"

#include <algorithm>
#include <map>

namespace cgpa::hls {

namespace {

/// Expensive, shareable functional-unit classes (one entry per distinct
/// hardware unit kind: a 32- and 64-bit multiply do not share).
bool isShareable(ir::Opcode op) {
  switch (op) {
  case ir::Opcode::Mul:
  case ir::Opcode::SDiv:
  case ir::Opcode::SRem:
  case ir::Opcode::FAdd:
  case ir::Opcode::FSub:
  case ir::Opcode::FMul:
  case ir::Opcode::FDiv:
  case ir::Opcode::Call:
    return true;
  default:
    return false;
  }
}

} // namespace

AreaReport estimateWorkerArea(const ir::Function& function,
                              const FunctionSchedule& schedule,
                              const AreaOptions& options) {
  AreaReport report;
  // Shared-unit accounting: per (opcode, type) class, the number of units
  // is the max concurrent uses in any single state (the FSM executes one
  // state at a time, so states never overlap within a worker).
  std::map<std::pair<ir::Opcode, ir::Type>, int> unitsNeeded;
  std::map<std::pair<ir::Opcode, ir::Type>, int> opInstances;

  for (const auto& block : function.blocks()) {
    const BlockSchedule& blockSchedule = schedule.of(block.get());
    for (const auto& state : blockSchedule.states) {
      std::map<std::pair<ir::Opcode, ir::Type>, int> inState;
      for (const ir::Instruction* inst : state)
        if (options.shareFunctionalUnits && isShareable(inst->opcode()))
          ++inState[{inst->opcode(), inst->type()}];
      for (const auto& [key, count] : inState)
        unitsNeeded[key] = std::max(unitsNeeded[key], count);
    }
    for (const auto& inst : block->instructions()) {
      if (options.shareFunctionalUnits && isShareable(inst->opcode()))
        ++opInstances[{inst->opcode(), inst->type()}];
      else
        report.aluts += opAluts(inst->opcode(), inst->type());
      // Every value crossing a state boundary is registered; approximate
      // with one register per produced bit (phis included: they are the
      // loop-carried registers).
      if (inst->type() != ir::Type::Void)
        report.registers += typeBits(inst->type());
    }
    report.fsmStates += blockSchedule.numStates();
  }

  // Shared units: unit area x units, plus input muxing per mapped op
  // (only when an op class actually shares; a 1:1 mapping needs no mux).
  for (const auto& [key, instances] : opInstances) {
    const int units = std::max(1, unitsNeeded[key]);
    report.aluts += units * opAluts(key.first, key.second);
    if (instances > units)
      report.aluts += instances * options.muxAlutsPerSharedOp;
  }
  // FSM one-hot state register + next-state logic + datapath enables.
  report.aluts += report.fsmStates * 6;
  report.registers += report.fsmStates;
  // Argument/live-in holding registers.
  for (const auto& arg : function.arguments())
    report.registers += typeBits(arg->type());
  return report;
}

int fifoBramBits(int depthEntries, int lanes, int widthBits) {
  return depthEntries * lanes * widthBits;
}

} // namespace cgpa::hls
