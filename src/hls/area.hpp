// ALUT/register/BRAM area estimation for synthesized workers — the
// reproduction's substitute for Quartus place-and-route area reports
// (paper Table 3). Absolute values are calibrated to Legup-era Stratix IV
// magnitudes; the experiments rely on the *ratios* between configurations.
#pragma once

#include "hls/schedule.hpp"

namespace cgpa::hls {

struct AreaReport {
  int aluts = 0;
  int registers = 0;
  int fsmStates = 0;
  /// BRAM bits used by FIFO buffers (reported separately, as in the paper:
  /// "BRAM to build the FIFO buffers ... not included in the ALUT usage").
  int fifoBramBits = 0;

  AreaReport& operator+=(const AreaReport& other) {
    aluts += other.aluts;
    registers += other.registers;
    fsmStates += other.fsmStates;
    fifoBramBits += other.fifoBramBits;
    return *this;
  }
};

struct AreaOptions {
  /// Share expensive functional units (multipliers, dividers, FP cores)
  /// across instructions that never execute in the same state, paying a
  /// mux cost per shared operation — classic HLS binding. Off by default:
  /// the paper's Legup-era numbers correspond to per-instance units.
  bool shareFunctionalUnits = false;
  /// Input-mux ALUTs charged per operation mapped onto a shared unit.
  int muxAlutsPerSharedOp = 24;
};

/// Area of one worker implementing `function` under `schedule`.
AreaReport estimateWorkerArea(const ir::Function& function,
                              const FunctionSchedule& schedule,
                              const AreaOptions& options = {});

/// BRAM bits for one FIFO channel (depth entries x lane count x width).
int fifoBramBits(int depthEntries, int lanes, int widthBits);

} // namespace cgpa::hls
