#include "hls/schedule_audit.hpp"

#include <algorithm>

#include "hls/ops.hpp"

namespace cgpa::hls {

using ir::BasicBlock;
using ir::Instruction;
using ir::Opcode;

namespace {

bool isCommOp(Opcode op) {
  return op == Opcode::Produce || op == Opcode::ProduceBroadcast ||
         op == Opcode::Consume;
}

bool isOrderedSideEffect(Opcode op) {
  return ir::hasSideEffects(op) || op == Opcode::Load;
}

std::string where(const Instruction& inst) {
  std::string text(ir::opcodeName(inst.opcode()));
  if (!inst.name().empty())
    text += " %" + inst.name();
  if (inst.parent() != nullptr)
    text += " in " + inst.parent()->name();
  return text;
}

/// Track the minimum of a residual family, treating -1 as "unset".
void shrinkTo(int& field, int value) {
  if (field < 0 || value < field)
    field = value;
}

void auditBlock(const BasicBlock& block, const BlockSchedule& schedule,
                const ScheduleOptions& options, ScheduleAudit& audit) {
  const int n = block.size();
  audit.statesAudited += schedule.numStates();
  const std::size_t violationsBefore = audit.violations.size();

  auto violation = [&](std::string message) {
    audit.violations.push_back(std::move(message));
  };

  // Membership: every instruction scheduled exactly once, and the
  // states[] layout agrees with the stateOf map.
  int placed = 0;
  for (int s = 0; s < schedule.numStates(); ++s) {
    for (const Instruction* inst : schedule.states[static_cast<std::size_t>(s)]) {
      ++placed;
      const auto it = schedule.stateOf.find(inst);
      if (it == schedule.stateOf.end() || it->second != s)
        violation("stateOf disagrees with states[] for " + where(*inst));
    }
  }
  if (placed != n)
    violation("block " + block.name() + " schedules " + std::to_string(placed) +
              " of " + std::to_string(n) + " instructions");
  for (int i = 0; i < n; ++i)
    if (schedule.stateOf.find(block.instruction(i)) == schedule.stateOf.end())
      violation("unscheduled instruction: " + where(*block.instruction(i)));
  if (audit.violations.size() != violationsBefore)
    return; // State lookups below would be unreliable.

  auto stateOf = [&](const Instruction* inst) {
    return schedule.stateOf.at(inst);
  };

  // Data dependences: state(use) - state(def) >= latency(def) for
  // same-block defs (phis latch on entry and are exempt as users).
  for (int i = 0; i < n; ++i) {
    const Instruction* inst = block.instruction(i);
    if (inst->opcode() == Opcode::Phi)
      continue;
    for (const ir::Value* operand : inst->operands()) {
      const Instruction* def = ir::asInstruction(operand);
      if (def == nullptr || def->parent() != &block)
        continue;
      ++audit.constraintsChecked;
      const int latency = opTiming(def->opcode(), def->type()).latency;
      const int slack = stateOf(inst) - stateOf(def) - latency;
      shrinkTo(audit.minDataDepSlack, slack);
      if (slack < 0)
        violation("data dependence violated: " + where(*inst) + " at state " +
                  std::to_string(stateOf(inst)) + " uses " + where(*def) +
                  " (state " + std::to_string(stateOf(def)) + ", latency " +
                  std::to_string(latency) + ")");
    }
  }

  // In-order side effects: program order must map to non-decreasing states.
  const Instruction* prevEffect = nullptr;
  for (int i = 0; i < n; ++i) {
    const Instruction* inst = block.instruction(i);
    if (!isOrderedSideEffect(inst->opcode()))
      continue;
    if (prevEffect != nullptr) {
      ++audit.constraintsChecked;
      const int slack = stateOf(inst) - stateOf(prevEffect);
      shrinkTo(audit.minSideEffectSlack, slack);
      if (slack < 0)
        violation("side effects reordered: " + where(*inst) + " before " +
                  where(*prevEffect));
    }
    prevEffect = inst;
  }

  // Terminator last: no instruction schedules after it.
  const Instruction* term = block.terminator();
  if (term != nullptr) {
    for (int i = 0; i < n; ++i) {
      ++audit.constraintsChecked;
      if (stateOf(block.instruction(i)) > stateOf(term))
        violation("scheduled past the terminator: " +
                  where(*block.instruction(i)));
    }
    // Phi inputs of successors must be ready when the edge is taken.
    for (const BasicBlock* succ : term->successors()) {
      for (const auto& phi : succ->instructions()) {
        if (phi->opcode() != Opcode::Phi)
          break;
        for (const ir::Value* operand : phi->operands()) {
          const Instruction* def = ir::asInstruction(operand);
          if (def == nullptr || def->parent() != &block)
            continue;
          ++audit.constraintsChecked;
          const int latency = opTiming(def->opcode(), def->type()).latency;
          if (stateOf(term) - stateOf(def) < latency)
            violation("phi input not ready at branch: " + where(*def) +
                      " feeding " + where(*phi));
        }
      }
    }
  }

  // Eq. 1 / Eq. 2: same-loop forks share a state; cross-loop forks are at
  // least one state apart.
  std::vector<const Instruction*> forks;
  for (int i = 0; i < n; ++i)
    if (block.instruction(i)->opcode() == Opcode::ParallelFork)
      forks.push_back(block.instruction(i));
  for (std::size_t a = 0; a + 1 < forks.size(); ++a) {
    ++audit.constraintsChecked;
    const int gap = stateOf(forks[a + 1]) - stateOf(forks[a]);
    if (forks[a]->loopId() == forks[a + 1]->loopId()) {
      ++audit.sameLoopForkGroups;
      if (gap != 0)
        violation("Eq.1 violated: forks of loop " +
                  std::to_string(forks[a]->loopId()) +
                  " split across states " + std::to_string(stateOf(forks[a])) +
                  " and " + std::to_string(stateOf(forks[a + 1])));
    } else {
      shrinkTo(audit.minForkSeparation, gap);
      if (gap < 1)
        violation("Eq.2 violated: forks of loops " +
                  std::to_string(forks[a]->loopId()) + " and " +
                  std::to_string(forks[a + 1]->loopId()) + " share a state");
    }
  }

  // Eq. 4: store_liveout co-scheduled with the exit branch.
  if (term != nullptr) {
    for (int i = 0; i < n; ++i) {
      const Instruction* inst = block.instruction(i);
      if (inst->opcode() != Opcode::StoreLiveout)
        continue;
      ++audit.constraintsChecked;
      ++audit.liveoutsAudited;
      if (stateOf(inst) != stateOf(term))
        violation("Eq.4 violated: " + where(*inst) + " at state " +
                  std::to_string(stateOf(inst)) + ", exit branch at " +
                  std::to_string(stateOf(term)));
    }
  }

  // Per-state resource checks: memory ports, Eq. 3 (produce/consume never
  // with a memory op), single FIFO access, and the chaining budget.
  std::vector<int> depth(static_cast<std::size_t>(n), 0);
  for (int s = 0; s < schedule.numStates(); ++s) {
    int memOps = 0;
    int commOps = 0;
    for (const Instruction* inst : schedule.states[static_cast<std::size_t>(s)]) {
      if (inst->isMemory())
        ++memOps;
      if (isCommOp(inst->opcode()))
        ++commOps;
    }
    audit.maxMemPortsUsed = std::max(audit.maxMemPortsUsed, memOps);
    audit.maxCommPerState = std::max(audit.maxCommPerState, commOps);
    ++audit.constraintsChecked;
    if (memOps > options.memPortsPerState)
      violation("memory ports exceeded in " + block.name() + " state " +
                std::to_string(s) + ": " + std::to_string(memOps) + " > " +
                std::to_string(options.memPortsPerState));
    if (commOps > 1)
      violation("multiple FIFO accesses in " + block.name() + " state " +
                std::to_string(s));
    if (options.separateCommFromMem && memOps > 0 && commOps > 0)
      violation("Eq.3 violated: FIFO access shares " + block.name() +
                " state " + std::to_string(s) + " with a memory op");
  }

  // Chaining: recompute the combinational depth of every instruction from
  // same-state zero-latency inputs; it must fit the budget.
  if (options.enableChaining) {
    for (int i = 0; i < n; ++i) {
      const Instruction* inst = block.instruction(i);
      if (inst->opcode() == Opcode::Phi)
        continue;
      const OpTiming timing = opTiming(inst->opcode(), inst->type());
      int inDepth = 0;
      for (const ir::Value* operand : inst->operands()) {
        const Instruction* def = ir::asInstruction(operand);
        if (def == nullptr || def->parent() != &block)
          continue;
        const int d = block.indexOf(def);
        if (stateOf(def) != stateOf(inst) || def->opcode() == Opcode::Phi)
          continue;
        if (opTiming(def->opcode(), def->type()).latency != 0)
          continue; // Registered output: chain breaks.
        inDepth = std::max(inDepth, depth[static_cast<std::size_t>(d)]);
      }
      depth[static_cast<std::size_t>(i)] = inDepth + timing.delayUnits;
      audit.maxChainDepth =
          std::max(audit.maxChainDepth, depth[static_cast<std::size_t>(i)]);
      ++audit.constraintsChecked;
      if (depth[static_cast<std::size_t>(i)] > options.chainBudget)
        violation("chain budget exceeded at " + where(*inst) + ": depth " +
                  std::to_string(depth[static_cast<std::size_t>(i)]) + " > " +
                  std::to_string(options.chainBudget));
    }
  }
}

} // namespace

ScheduleAudit auditSchedule(const ir::Function& function,
                            const FunctionSchedule& schedule,
                            const ScheduleOptions& options) {
  ScheduleAudit audit;
  for (const auto& block : function.blocks()) {
    const auto it = schedule.blocks.find(block.get());
    if (it == schedule.blocks.end()) {
      audit.violations.push_back("block " + block->name() +
                                 " missing from schedule");
      continue;
    }
    auditBlock(*block, it->second, options, audit);
  }
  return audit;
}

} // namespace cgpa::hls
