// Power/energy model — the reproduction's substitute for Quartus PowerPlay
// (paper Table 3). Total power splits into:
//   * dynamic datapath power: per-op switching energy accumulated by the
//     cycle simulator, divided by kernel runtime;
//   * clock-tree + static power: proportional to occupied ALUTs and BRAM.
// Constants are calibrated so the Legup-style single-worker accelerators
// land in the paper's tens-of-mW band and the 4-worker CGPA designs in the
// 150-300 mW band; the experiments evaluate ratios, not absolutes.
#pragma once

#include "hls/area.hpp"

namespace cgpa::power {

struct PowerConfig {
  double freqMHz = 200.0;
  double staticMwPerKAlut = 3.0; ///< Leakage per 1000 ALUTs.
  double clockMwPerKAlut = 9.0;  ///< Clock tree + idle toggle per 1000 ALUTs.
  double clockMwPerKReg = 2.0;   ///< Clock load of registers per 1000 FFs.
  double bramMwPerKbit = 0.35;   ///< FIFO BRAM banks.
  double baseMw = 4.0;           ///< Fixed overhead (PLLs, interface).
  /// Power of the MIPS soft core, for the energy-efficiency column
  /// (energy_efficiency = E_core / E_accelerator in paper Table 3).
  double mipsCoreMw = 110.0;
};

struct PowerReport {
  double dynamicMw = 0.0;
  double staticMw = 0.0;
  double totalMw = 0.0;
  double energyUj = 0.0;
};

/// Power/energy of an accelerator configuration that ran for `cycles`
/// cycles dissipating `dynamicEnergyPj` of datapath switching energy.
PowerReport estimateAcceleratorPower(const hls::AreaReport& area,
                                     double dynamicEnergyPj,
                                     std::uint64_t cycles,
                                     const PowerConfig& config);

/// Energy of the MIPS software core running for `cycles`.
double mipsEnergyUj(std::uint64_t cycles, const PowerConfig& config);

} // namespace cgpa::power
