#include "power/model.hpp"

namespace cgpa::power {

PowerReport estimateAcceleratorPower(const hls::AreaReport& area,
                                     double dynamicEnergyPj,
                                     std::uint64_t cycles,
                                     const PowerConfig& config) {
  PowerReport report;
  const double timeUs = static_cast<double>(cycles) / config.freqMHz;
  // dynamicEnergyPj [pJ] over timeUs [us]: pJ/us = uW; convert to mW.
  report.dynamicMw = timeUs > 0.0 ? (dynamicEnergyPj / timeUs) / 1000.0 : 0.0;

  const double kAluts = static_cast<double>(area.aluts) / 1000.0;
  const double kRegs = static_cast<double>(area.registers) / 1000.0;
  const double kBits = static_cast<double>(area.fifoBramBits) / 1000.0;
  report.staticMw = config.baseMw + kAluts * config.staticMwPerKAlut +
                    kAluts * config.clockMwPerKAlut +
                    kRegs * config.clockMwPerKReg +
                    kBits * config.bramMwPerKbit;
  report.totalMw = report.dynamicMw + report.staticMw;
  // E [uJ] = P [mW] * t [us] / 1000.
  report.energyUj = report.totalMw * timeUs / 1000.0;
  return report;
}

double mipsEnergyUj(std::uint64_t cycles, const PowerConfig& config) {
  const double timeUs = static_cast<double>(cycles) / config.freqMHz;
  return config.mipsCoreMw * timeUs / 1000.0;
}

} // namespace cgpa::power
