#include "verilog/testbench.hpp"

#include <sstream>

namespace cgpa::verilog {

std::string emitTestbench(const pipeline::PipelineModule& pipeline,
                          const TestbenchOptions& options) {
  std::ostringstream v;
  v << "// Testbench for the CGPA accelerator generated from @"
    << pipeline.wrapper->name() << ".\n";
  v << "`timescale 1ns/1ps\n";
  v << "module cgpa_tb;\n";
  v << "  reg clk;\n  reg rst;\n  reg start;\n  wire done;\n";
  v << "  integer cycles;\n  integer i;\n";
  v << "  cgpa_top dut (.clk(clk), .rst(rst), .start(start), .done(done));\n";
  v << "  initial clk = 1'b0;\n";
  v << "  always #" << options.clockPeriodNs / 2 + options.clockPeriodNs % 2
    << " clk = ~clk;\n";
  v << "  initial begin\n";
  v << "    rst = 1'b1;\n    start = 1'b0;\n    cycles = 0;\n";
  v << "    repeat (4) @(posedge clk);\n";
  v << "    rst = 1'b0;\n";
  v << "    @(posedge clk);\n";
  v << "    start = 1'b1;\n";
  v << "    @(posedge clk);\n";
  v << "    start = 1'b0;\n";
  v << "    while (!done && cycles < " << options.watchdogCycles
    << ") begin\n";
  v << "      @(posedge clk);\n";
  v << "      cycles = cycles + 1;\n";
  v << "    end\n";
  // Watchdog trip is a failure: $fatal exits nonzero so CI harnesses see
  // a wedged DUT as an error, not a silent pass ($finish returns 0).
  v << "    if (!done) begin\n";
  v << "      $display(\"CGPA_TB: TIMEOUT after %0d cycles\", cycles);\n";
  v << "      $fatal(1, \"CGPA_TB: watchdog expired\");\n";
  v << "    end\n";
  v << "    $display(\"CGPA_TB: done in %0d cycles\", cycles);\n";
  if (options.dumpBytes > 0) {
    v << "    for (i = 0; i < " << options.dumpBytes << "; i = i + 4)\n";
    v << "      $display(\"CGPA_TB: mem[%0d] = %02x%02x%02x%02x\", "
      << options.dumpBase << " + i,\n"
      << "               dut.u_memsys.mem[" << options.dumpBase
      << " + i + 3], dut.u_memsys.mem[" << options.dumpBase
      << " + i + 2],\n               dut.u_memsys.mem[" << options.dumpBase
      << " + i + 1], dut.u_memsys.mem[" << options.dumpBase << " + i]);\n";
  }
  v << "    $finish;\n";
  v << "  end\n";
  v << "endmodule\n";
  return v.str();
}

} // namespace cgpa::verilog
