// Structural lint checker for emitted Verilog (no external simulator is
// assumed): verifies module/endmodule, begin/end and case/endcase balance,
// and that every identifier used inside a module is declared (port, reg,
// wire, localparam/parameter, integer) or is a known module/keyword.
#pragma once

#include <string>
#include <vector>

namespace cgpa::verilog {

struct LintIssue {
  int line = 0;
  std::string message;
};

/// Returns all issues found; empty = lint-clean.
std::vector<LintIssue> lintVerilog(const std::string& source);

/// Convenience: format all issues as one string ("" if clean).
std::string lintReport(const std::string& source);

} // namespace cgpa::verilog
