#include "verilog/lint.hpp"

#include <cctype>
#include <set>
#include <sstream>

namespace cgpa::verilog {

namespace {

const std::set<std::string>& keywords() {
  static const std::set<std::string> kw = {
      "module",   "endmodule", "input",    "output",   "inout",
      "wire",     "reg",       "assign",   "always",   "posedge",
      "negedge",  "if",        "else",     "begin",    "end",
      "case",     "endcase",   "default",  "localparam", "parameter",
      "integer",  "genvar",    "generate", "endgenerate", "for",
      "initial",  "forever",   "repeat",   "posedge",
      "signed",   "unsigned",  "or",       "and",
      "not",      "wait",      "while",    "function", "endfunction",
      "task",     "endtask",   "mem",      "d",        "b",
      "h",        "o",
  };
  return kw;
}

bool isIdentChar(char c) {
  // '.' keeps hierarchical references (tb.dut.mem) and named port
  // connections (.clk) as single tokens, which the checker then skips.
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_' ||
         c == '$' || c == '.';
}

} // namespace

std::vector<LintIssue> lintVerilog(const std::string& source) {
  std::vector<LintIssue> issues;

  int moduleDepth = 0;
  int beginDepth = 0;
  int caseDepth = 0;
  std::set<std::string> declared;       // Per-module scope.
  std::set<std::string> moduleNames;    // All modules in the file.
  struct Use {
    std::string name;
    int line;
  };
  std::vector<Use> uses;

  std::istringstream in(source);
  std::string line;
  int lineNo = 0;
  bool pendingDecl = false; // Continuing a declaration list across tokens.
  bool inInstantiation = false; // Skipping a module-instance statement.

  auto flushUses = [&](int atLine) {
    for (const Use& use : uses) {
      if (use.name[0] == '$')
        continue; // System task/function.
      if (keywords().count(use.name) != 0)
        continue;
      if (declared.count(use.name) != 0)
        continue;
      if (moduleNames.count(use.name) != 0)
        continue;
      issues.push_back({use.line, "use of undeclared identifier '" +
                                      use.name + "'"});
    }
    uses.clear();
    (void)atLine;
  };

  while (std::getline(in, line)) {
    ++lineNo;
    // Strip comments and string literals.
    const std::size_t comment = line.find("//");
    if (comment != std::string::npos)
      line = line.substr(0, comment);
    while (true) {
      const std::size_t open = line.find('"');
      if (open == std::string::npos)
        break;
      const std::size_t close = line.find('"', open + 1);
      if (close == std::string::npos) {
        line = line.substr(0, open);
        break;
      }
      line = line.substr(0, open) + line.substr(close + 1);
    }

    // Tokenize.
    std::vector<std::string> tokens;
    std::string current;
    for (char c : line) {
      if (isIdentChar(c)) {
        current += c;
      } else {
        if (!current.empty())
          tokens.push_back(current);
        current.clear();
        if (c == '\'')
          tokens.push_back("'"); // Marks sized literals (8'hff).
      }
    }
    if (!current.empty())
      tokens.push_back(current);

    if (inInstantiation) {
      // Instance statements (parameter overrides + port connections) are
      // opaque to the identifier check; they end at a semicolon.
      if (line.find(';') != std::string::npos)
        inInstantiation = false;
      continue;
    }

    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const std::string& tok = tokens[i];
      if (moduleDepth > 0 && moduleNames.count(tok) != 0) {
        inInstantiation = line.find(';') == std::string::npos;
        break;
      }
      if (tok == "'") {
        // Sized literal: skip the base+digits token that follows.
        if (i + 1 < tokens.size())
          ++i;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(tok[0])) != 0)
        continue;
      if (tok.find('.') != std::string::npos)
        continue; // Hierarchical reference or named port connection.
      if (tok == "module") {
        ++moduleDepth;
        declared.clear();
        pendingDecl = false;
        // Next identifier is the module name.
        if (i + 1 < tokens.size()) {
          moduleNames.insert(tokens[i + 1]);
          ++i;
        }
        continue;
      }
      if (tok == "endmodule") {
        flushUses(lineNo);
        --moduleDepth;
        if (moduleDepth < 0)
          issues.push_back({lineNo, "unbalanced endmodule"});
        continue;
      }
      if (tok == "begin") {
        ++beginDepth;
        continue;
      }
      if (tok == "end") {
        --beginDepth;
        if (beginDepth < 0)
          issues.push_back({lineNo, "unbalanced end"});
        continue;
      }
      if (tok == "case") {
        ++caseDepth;
        continue;
      }
      if (tok == "endcase") {
        --caseDepth;
        if (caseDepth < 0)
          issues.push_back({lineNo, "unbalanced endcase"});
        continue;
      }
      if (tok == "input" || tok == "output" || tok == "inout" ||
          tok == "wire" || tok == "reg" || tok == "localparam" ||
          tok == "parameter" || tok == "integer" || tok == "genvar") {
        pendingDecl = true;
        continue;
      }
      if (tok == "signed" || tok == "unsigned")
        continue;
      if (keywords().count(tok) != 0) {
        pendingDecl = false;
        continue;
      }
      if (tok[0] == '$')
        continue;
      if (pendingDecl) {
        declared.insert(tok);
        // A declaration list can continue (`wire a, b;`), but any
        // right-hand side after '=' is a use; treating the whole list as
        // declarations is good enough for generated code.
        continue;
      }
      if (moduleDepth > 0)
        uses.push_back({tok, lineNo});
    }
    // Declaration lists end at line end in the generated code.
    if (line.find(';') != std::string::npos)
      pendingDecl = false;
  }

  if (moduleDepth != 0)
    issues.push_back({lineNo, "unbalanced module/endmodule"});
  if (beginDepth != 0)
    issues.push_back({lineNo, "unbalanced begin/end"});
  if (caseDepth != 0)
    issues.push_back({lineNo, "unbalanced case/endcase"});
  return issues;
}

std::string lintReport(const std::string& source) {
  std::ostringstream out;
  for (const LintIssue& issue : lintVerilog(source))
    out << "line " << issue.line << ": " << issue.message << "\n";
  return out.str();
}

} // namespace cgpa::verilog
