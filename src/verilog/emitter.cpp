#include "verilog/emitter.hpp"

#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "support/diag.hpp"

namespace cgpa::verilog {

using ir::BasicBlock;
using ir::Instruction;
using ir::Opcode;
using ir::Type;

std::string sanitizeIdent(const std::string& name) {
  std::string out;
  for (char c : name) {
    if ((std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_')
      out += c;
    else
      out += '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])) != 0)
    out = "v_" + out;
  return out;
}

namespace {

int widthOf(Type type) {
  const int bits = typeBits(type);
  return bits == 0 ? 1 : bits;
}

/// Per-module emission context: unique register names per value.
class Names {
public:
  explicit Names(const ir::Function& fn) {
    for (const auto& arg : fn.arguments())
      names_[arg.get()] = unique("in_" + sanitizeIdent(arg->name()));
    for (const auto& block : fn.blocks())
      for (const auto& inst : block->instructions())
        if (inst->type() != Type::Void)
          names_[inst.get()] = unique(
              "r_" + sanitizeIdent(inst->name().empty() ? "t" : inst->name()));
  }

  std::string of(const ir::Value* value) const {
    if (const ir::Constant* constant = ir::asConstant(value)) {
      const int width = widthOf(constant->type());
      if (isFloatType(constant->type())) {
        std::uint64_t bits;
        const double d = constant->floatValue();
        if (constant->type() == Type::F32) {
          const float f = static_cast<float>(d);
          std::uint32_t fb;
          static_assert(sizeof fb == sizeof f);
          std::memcpy(&fb, &f, sizeof fb);
          bits = fb;
        } else {
          std::memcpy(&bits, &d, sizeof bits);
        }
        std::ostringstream out;
        out << width << "'h" << std::hex << bits;
        return out.str();
      }
      std::ostringstream out;
      out << width << "'h" << std::hex
          << (static_cast<std::uint64_t>(constant->intValue()) &
              (width >= 64 ? ~0ULL : ((1ULL << width) - 1)));
      return out.str();
    }
    return names_.at(value);
  }

  const std::unordered_map<const ir::Value*, std::string>& all() const {
    return names_;
  }

private:
  std::string unique(std::string base) {
    std::string candidate = base;
    int suffix = 1;
    while (used_.count(candidate) != 0)
      candidate = base + "_" + std::to_string(suffix++);
    used_.insert(candidate);
    return candidate;
  }
  std::unordered_map<const ir::Value*, std::string> names_;
  std::set<std::string> used_;
};

std::string realOf(const std::string& expr, Type type) {
  return type == Type::F32 ? "$bitstoshortreal(" + expr + ")"
                           : "$bitstoreal(" + expr + ")";
}

std::string bitsOf(const std::string& expr, Type type) {
  return type == Type::F32 ? "$shortrealtobits(" + expr + ")"
                           : "$realtobits(" + expr + ")";
}

/// Right-hand-side Verilog expression for a (non-memory, non-comm)
/// instruction.
std::string rhsExpr(const Instruction& inst, const Names& names) {
  auto op0 = [&] { return names.of(inst.operand(0)); };
  auto op1 = [&] { return names.of(inst.operand(1)); };
  const Type type = inst.type();
  const Type opType =
      inst.numOperands() > 0 ? inst.operand(0)->type() : inst.type();
  switch (inst.opcode()) {
  case Opcode::Add:
    return op0() + " + " + op1();
  case Opcode::Sub:
    return op0() + " - " + op1();
  case Opcode::Mul:
    return op0() + " * " + op1();
  case Opcode::SDiv:
    return "$signed(" + op0() + ") / $signed(" + op1() + ")";
  case Opcode::SRem:
    return "$signed(" + op0() + ") % $signed(" + op1() + ")";
  case Opcode::And:
    return op0() + " & " + op1();
  case Opcode::Or:
    return op0() + " | " + op1();
  case Opcode::Xor:
    return op0() + " ^ " + op1();
  case Opcode::Shl:
    return op0() + " << " + op1();
  case Opcode::LShr:
    return op0() + " >> " + op1();
  case Opcode::AShr:
    return "$signed(" + op0() + ") >>> " + op1();
  case Opcode::FAdd:
    return bitsOf(realOf(op0(), opType) + " + " + realOf(op1(), opType), type);
  case Opcode::FSub:
    return bitsOf(realOf(op0(), opType) + " - " + realOf(op1(), opType), type);
  case Opcode::FMul:
    return bitsOf(realOf(op0(), opType) + " * " + realOf(op1(), opType), type);
  case Opcode::FDiv:
    return bitsOf(realOf(op0(), opType) + " / " + realOf(op1(), opType), type);
  case Opcode::ICmp: {
    std::string cmp;
    switch (inst.cmpPred()) {
    case ir::CmpPred::EQ:
      cmp = "==";
      break;
    case ir::CmpPred::NE:
      cmp = "!=";
      break;
    case ir::CmpPred::SLT:
      cmp = "<";
      break;
    case ir::CmpPred::SLE:
      cmp = "<=";
      break;
    case ir::CmpPred::SGT:
      cmp = ">";
      break;
    default:
      cmp = ">=";
      break;
    }
    return "$signed(" + op0() + ") " + cmp + " $signed(" + op1() + ")";
  }
  case Opcode::FCmp: {
    std::string cmp;
    switch (inst.cmpPred()) {
    case ir::CmpPred::OEQ:
      cmp = "==";
      break;
    case ir::CmpPred::ONE:
      cmp = "!=";
      break;
    case ir::CmpPred::OLT:
      cmp = "<";
      break;
    case ir::CmpPred::OLE:
      cmp = "<=";
      break;
    case ir::CmpPred::OGT:
      cmp = ">";
      break;
    default:
      cmp = ">=";
      break;
    }
    return realOf(op0(), opType) + " " + cmp + " " + realOf(op1(), opType);
  }
  case Opcode::Trunc:
    return op0() + "[" + std::to_string(widthOf(type) - 1) + ":0]";
  case Opcode::ZExt:
  case Opcode::PtrToInt:
  case Opcode::IntToPtr:
    return "{" + std::to_string(widthOf(type) - widthOf(opType)) + "'b0, " +
           op0() + "}";
  case Opcode::SExt:
    return "{{" + std::to_string(widthOf(type) - widthOf(opType)) + "{" +
           op0() + "[" + std::to_string(widthOf(opType) - 1) + "]}}, " +
           op0() + "}";
  case Opcode::SIToFP:
    return bitsOf("$itor($signed(" + op0() + "))", type);
  case Opcode::FPToSI:
    return "$rtoi(" + realOf(op0(), opType) + ")";
  case Opcode::FPExt:
  case Opcode::FPTrunc:
    return bitsOf(realOf(op0(), opType), type);
  case Opcode::Select:
    return names.of(inst.operand(0)) + " ? " + names.of(inst.operand(1)) +
           " : " + names.of(inst.operand(2));
  case Opcode::Gep: {
    std::string expr = op0();
    if (inst.numOperands() == 2)
      expr += " + " + op1() + " * 32'd" + std::to_string(inst.gepScale());
    if (inst.gepOffset() != 0)
      expr += " + 32'd" + std::to_string(inst.gepOffset());
    return expr;
  }
  case Opcode::Call:
    switch (inst.intrinsic()) {
    case ir::Intrinsic::Sqrt:
      return bitsOf("$sqrt(" + realOf(op0(), opType) + ")", type);
    case ir::Intrinsic::FAbs:
      return bitsOf("(" + realOf(op0(), opType) + " < 0.0 ? -" +
                        realOf(op0(), opType) + " : " + realOf(op0(), opType) +
                        ")",
                    type);
    case ir::Intrinsic::SMin:
      return "($signed(" + op0() + ") < $signed(" + op1() + ") ? " + op0() +
             " : " + op1() + ")";
    case ir::Intrinsic::SMax:
      return "($signed(" + op0() + ") > $signed(" + op1() + ") ? " + op0() +
             " : " + op1() + ")";
    }
    return "0";
  default:
    CGPA_UNREACHABLE("rhsExpr: unhandled opcode " +
                     std::string(opcodeName(inst.opcode())));
  }
}

/// Channel usage of one task.
struct ChannelUse {
  bool produces = false;
  bool consumes = false;
  bool broadcast = false;
  int width = 32;
};

std::map<int, ChannelUse> channelUses(const ir::Function& fn) {
  std::map<int, ChannelUse> uses;
  for (const auto& block : fn.blocks()) {
    for (const auto& inst : block->instructions()) {
      switch (inst->opcode()) {
      case Opcode::Produce:
        uses[inst->channelId()].produces = true;
        uses[inst->channelId()].width =
            widthOf(inst->operand(1)->type());
        break;
      case Opcode::ProduceBroadcast:
        uses[inst->channelId()].produces = true;
        uses[inst->channelId()].broadcast = true;
        uses[inst->channelId()].width =
            widthOf(inst->operand(0)->type());
        break;
      case Opcode::Consume:
        uses[inst->channelId()].consumes = true;
        uses[inst->channelId()].width = widthOf(inst->type());
        break;
      default:
        break;
      }
    }
  }
  return uses;
}

} // namespace

std::string emitWorkerModule(const ir::Function& fn,
                             const hls::FunctionSchedule& schedule,
                             const std::string& moduleName) {
  const Names names(fn);
  const auto uses = channelUses(fn);
  std::ostringstream v;

  // --- Ports ---------------------------------------------------------------
  v << "// Worker module generated by CGPA from task @" << fn.name() << "\n";
  v << "module " << moduleName << " (\n";
  v << "  input  wire clk,\n  input  wire rst,\n  input  wire start,\n"
    << "  output reg  done";
  for (const auto& arg : fn.arguments())
    v << ",\n  input  wire [" << widthOf(arg->type()) - 1 << ":0] "
      << names.of(arg.get());
  v << ",\n  output reg  mem_req_valid,\n  output reg  [31:0] mem_req_addr,\n"
    << "  output reg  [63:0] mem_req_wdata,\n  output reg  mem_req_write,\n"
    << "  output reg  [3:0] mem_req_size,\n  input  wire mem_req_ready,\n"
    << "  input  wire mem_resp_valid,\n  input  wire [63:0] mem_resp_data";
  for (const auto& [channel, use] : uses) {
    const std::string ch = "ch" + std::to_string(channel);
    if (use.produces) {
      v << ",\n  output reg  " << ch << "_push,\n  output reg  ["
        << use.width - 1 << ":0] " << ch << "_wdata,\n  output reg  [7:0] "
        << ch << "_lane,\n  input  wire " << ch << "_full";
    }
    if (use.consumes) {
      v << ",\n  output reg  " << ch << "_pop,\n  input  wire ["
        << use.width - 1 << ":0] " << ch << "_rdata,\n  output reg  [7:0] "
        << ch << "_rlane,\n  input  wire " << ch << "_empty";
    }
  }
  v << "\n);\n\n";

  // --- Declarations ----------------------------------------------------------
  for (const auto& block : fn.blocks())
    for (const auto& inst : block->instructions())
      if (inst->type() != Type::Void)
        v << "  reg [" << widthOf(inst->type()) - 1 << ":0] "
          << names.of(inst.get()) << ";\n";
  v << "  reg [15:0] state;\n";
  v << "  reg mem_pending;\n\n";

  // State numbering: one localparam per (block, state).
  std::map<std::pair<const BasicBlock*, int>, int> stateIds;
  int nextState = 1; // 0 = idle.
  v << "  localparam ST_IDLE = 16'd0;\n";
  for (const auto& block : fn.blocks()) {
    const hls::BlockSchedule& bs = schedule.of(block.get());
    for (int s = 0; s < bs.numStates(); ++s) {
      stateIds[{block.get(), s}] = nextState;
      v << "  localparam ST_" << sanitizeIdent(block->name()) << "_" << s
        << " = 16'd" << nextState << ";\n";
      ++nextState;
    }
  }
  v << "\n";

  auto stateName = [&](const BasicBlock* block, int s) {
    return "ST_" + sanitizeIdent(block->name()) + "_" + std::to_string(s);
  };

  // Phi updates on a control-flow edge into `target` from `from`.
  auto emitEdge = [&](std::ostringstream& out, const BasicBlock* from,
                      const BasicBlock* target, const char* indent) {
    for (const auto& inst : target->instructions()) {
      if (inst->opcode() != Opcode::Phi)
        break;
      out << indent << names.of(inst.get()) << " <= "
          << names.of(inst->incomingValueFor(from)) << ";\n";
    }
    out << indent << "state <= " << stateName(target, 0) << ";\n";
  };

  // --- FSM -------------------------------------------------------------------
  v << "  always @(posedge clk) begin\n";
  v << "    if (rst) begin\n      state <= ST_IDLE;\n      done <= 1'b0;\n"
    << "      mem_req_valid <= 1'b0;\n      mem_pending <= 1'b0;\n"
    << "    end else begin\n";
  v << "      mem_req_valid <= 1'b0;\n";
  for (const auto& [channel, use] : uses) {
    const std::string ch = "ch" + std::to_string(channel);
    if (use.produces)
      v << "      " << ch << "_push <= 1'b0;\n";
    if (use.consumes)
      v << "      " << ch << "_pop <= 1'b0;\n";
  }
  v << "      case (state)\n";
  v << "        ST_IDLE: begin\n          done <= 1'b0;\n"
    << "          if (start) begin\n";
  {
    std::ostringstream edge;
    // Entry block has no phis; just jump to its first state.
    edge << "            state <= " << stateName(fn.entry(), 0) << ";\n";
    v << edge.str();
  }
  v << "          end\n        end\n";

  for (const auto& block : fn.blocks()) {
    const hls::BlockSchedule& bs = schedule.of(block.get());
    for (int s = 0; s < bs.numStates(); ++s) {
      v << "        " << stateName(block.get(), s) << ": begin\n";
      std::ostringstream body;
      std::string gate; // Wait condition (empty = none).

      for (const Instruction* inst : bs.states[static_cast<std::size_t>(s)]) {
        switch (inst->opcode()) {
        case Opcode::Phi:
          break; // Latched on the incoming edge.
        case Opcode::Load: {
          // Request, then wait for the response in this state.
          gate = "!(mem_pending && mem_resp_valid)";
          body << "          if (!mem_pending) begin\n"
               << "            mem_req_valid <= 1'b1;\n"
               << "            mem_req_addr  <= " << names.of(inst->operand(0))
               << ";\n"
               << "            mem_req_write <= 1'b0;\n"
               << "            mem_req_size  <= 4'd"
               << typeBytes(inst->type()) << ";\n"
               << "            if (mem_req_ready) mem_pending <= 1'b1;\n"
               << "          end\n"
               << "          if (mem_pending && mem_resp_valid) begin\n"
               << "            " << names.of(inst) << " <= mem_resp_data["
               << widthOf(inst->type()) - 1 << ":0];\n"
               << "            mem_pending <= 1'b0;\n"
               << "          end\n";
          break;
        }
        case Opcode::Store: {
          gate = "!mem_req_ready";
          body << "          mem_req_valid <= 1'b1;\n"
               << "          mem_req_addr  <= " << names.of(inst->operand(1))
               << ";\n"
               << "          mem_req_wdata <= {"
               << 64 - widthOf(inst->operand(0)->type()) << "'b0, "
               << names.of(inst->operand(0)) << "};\n"
               << "          mem_req_write <= 1'b1;\n"
               << "          mem_req_size  <= 4'd"
               << typeBytes(inst->operand(0)->type()) << ";\n";
          break;
        }
        case Opcode::Produce: {
          const std::string ch = "ch" + std::to_string(inst->channelId());
          gate = ch + "_full";
          body << "          " << ch << "_lane <= "
               << names.of(inst->operand(0)) << "[7:0];\n"
               << "          " << ch << "_wdata <= "
               << names.of(inst->operand(1)) << ";\n"
               << "          if (!" << ch << "_full) " << ch
               << "_push <= 1'b1;\n";
          break;
        }
        case Opcode::ProduceBroadcast: {
          const std::string ch = "ch" + std::to_string(inst->channelId());
          gate = ch + "_full";
          body << "          " << ch << "_lane <= 8'hff; // broadcast\n"
               << "          " << ch << "_wdata <= "
               << names.of(inst->operand(0)) << ";\n"
               << "          if (!" << ch << "_full) " << ch
               << "_push <= 1'b1;\n";
          break;
        }
        case Opcode::Consume: {
          const std::string ch = "ch" + std::to_string(inst->channelId());
          gate = ch + "_empty";
          body << "          " << ch << "_rlane <= "
               << names.of(inst->operand(0)) << "[7:0];\n"
               << "          if (!" << ch << "_empty) begin\n"
               << "            " << names.of(inst) << " <= " << ch
               << "_rdata;\n            " << ch << "_pop <= 1'b1;\n"
               << "          end\n";
          break;
        }
        case Opcode::StoreLiveout:
          body << "          // store_liveout " << inst->loopId() << ","
               << inst->liveoutId() << " handled by liveout register file\n";
          break;
        case Opcode::RetrieveLiveout:
          body << "          " << names.of(inst)
               << " <= 0; // retrieve_liveout via register file\n";
          break;
        case Opcode::ParallelFork:
        case Opcode::ParallelJoin:
          body << "          // fork/join handled by the top-level module\n";
          break;
        case Opcode::Br:
        case Opcode::CondBr:
        case Opcode::Ret:
          break; // Emitted with the state transition below.
        default:
          body << "          " << names.of(inst) << " <= "
               << rhsExpr(*inst, names) << ";\n";
          break;
        }
      }

      // Transition.
      std::ostringstream trans;
      if (s + 1 < bs.numStates()) {
        trans << "          state <= " << stateName(block.get(), s + 1)
              << ";\n";
      } else {
        const Instruction* term = block->terminator();
        CGPA_ASSERT(term != nullptr, "verilog: unterminated block");
        if (term->opcode() == Opcode::Ret) {
          trans << "          done <= 1'b1;\n          state <= ST_IDLE;\n";
        } else if (term->opcode() == Opcode::Br) {
          std::ostringstream edge;
          emitEdge(edge, block.get(), term->successors()[0], "          ");
          trans << edge.str();
        } else {
          trans << "          if (" << names.of(term->operand(0))
                << ") begin\n";
          std::ostringstream e0;
          emitEdge(e0, block.get(), term->successors()[0], "            ");
          trans << e0.str() << "          end else begin\n";
          std::ostringstream e1;
          emitEdge(e1, block.get(), term->successors()[1], "            ");
          trans << e1.str() << "          end\n";
        }
      }

      v << body.str();
      if (!gate.empty()) {
        v << "          if (!(" << gate << ")) begin\n";
        // Re-indent transition.
        v << trans.str();
        v << "          end\n";
      } else {
        v << trans.str();
      }
      v << "        end\n";
    }
  }
  v << "        default: state <= ST_IDLE;\n";
  v << "      endcase\n    end\n  end\n\nendmodule\n";
  return v.str();
}

std::string emitFifoModule() {
  return R"(// Synchronous FIFO, one lane (paper: 32-bit wide, 16 entries, BRAM).
module cgpa_fifo #(
  parameter WIDTH = 32,
  parameter DEPTH = 16,
  parameter ADDRW = 4
) (
  input  wire clk,
  input  wire rst,
  input  wire push,
  input  wire [WIDTH-1:0] wdata,
  input  wire pop,
  output wire [WIDTH-1:0] rdata,
  output wire full,
  output wire empty
);
  reg [WIDTH-1:0] mem [0:DEPTH-1];
  reg [ADDRW:0] wptr;
  reg [ADDRW:0] rptr;
  assign full  = (wptr - rptr) == DEPTH;
  assign empty = wptr == rptr;
  assign rdata = mem[rptr[ADDRW-1:0]];
  always @(posedge clk) begin
    if (rst) begin
      wptr <= 0;
      rptr <= 0;
    end else begin
      if (push && !full) begin
        mem[wptr[ADDRW-1:0]] <= wdata;
        wptr <= wptr + 1;
      end
      if (pop && !empty) begin
        rptr <= rptr + 1;
      end
    end
  end
endmodule
)";
}

std::string emitMemorySystemModule() {
  return R"(// Behavioral shared-memory system: round-robin arbiter over N
// requesters into a banked direct-mapped cache model (timing approximated
// with a fixed latency; the C++ cycle simulator is the timing reference).
module cgpa_memsys #(
  parameter REQUESTERS = 8,
  parameter LATENCY = 2,
  parameter MEM_WORDS = 1 << 20
) (
  input  wire clk,
  input  wire rst,
  input  wire [REQUESTERS-1:0] req_valid,
  input  wire [REQUESTERS*32-1:0] req_addr,
  input  wire [REQUESTERS*64-1:0] req_wdata,
  input  wire [REQUESTERS-1:0] req_write,
  input  wire [REQUESTERS*4-1:0] req_size,
  output reg  [REQUESTERS-1:0] req_ready,
  output reg  [REQUESTERS-1:0] resp_valid,
  output reg  [63:0] resp_data
);
  reg [7:0] mem [0:MEM_WORDS-1];
  integer g;
  integer lat;
  reg [31:0] cur_addr;
  reg [63:0] cur_wdata;
  reg cur_write;
  reg [3:0] cur_size;
  reg [7:0] grant;
  reg busy;
  always @(posedge clk) begin
    if (rst) begin
      busy <= 1'b0;
      req_ready <= {REQUESTERS{1'b0}};
      resp_valid <= {REQUESTERS{1'b0}};
      grant <= 8'd0;
    end else begin
      req_ready <= {REQUESTERS{1'b0}};
      resp_valid <= {REQUESTERS{1'b0}};
      if (!busy) begin
        for (g = 0; g < REQUESTERS; g = g + 1) begin
          if (!busy && req_valid[g]) begin
            busy <= 1'b1;
            grant <= g[7:0];
            lat <= LATENCY;
            cur_addr <= req_addr[g*32 +: 32];
            cur_wdata <= req_wdata[g*64 +: 64];
            cur_write <= req_write[g];
            cur_size <= req_size[g*4 +: 4];
            req_ready[g] <= 1'b1;
          end
        end
      end else begin
        lat <= lat - 1;
        if (lat == 0) begin
          if (cur_write) begin
            for (g = 0; g < 8; g = g + 1)
              if (g < cur_size)
                mem[cur_addr + g] <= cur_wdata[g*8 +: 8];
          end else begin
            resp_data <= {mem[cur_addr+7], mem[cur_addr+6], mem[cur_addr+5],
                          mem[cur_addr+4], mem[cur_addr+3], mem[cur_addr+2],
                          mem[cur_addr+1], mem[cur_addr]};
          end
          resp_valid[grant] <= 1'b1;
          busy <= 1'b0;
        end
      end
    end
  end
endmodule
)";
}

std::string emitTopModule(const pipeline::PipelineModule& pipeline,
                          const std::vector<hls::FunctionSchedule>& schedules,
                          const VerilogOptions& options) {
  (void)schedules;
  std::ostringstream v;
  // Count requesters: one per worker instance.
  int requesters = 0;
  for (const pipeline::TaskInfo& task : pipeline.tasks)
    requesters += task.parallel ? pipeline.numWorkers : 1;

  v << "// Top-level CGPA accelerator (paper Figure 2): stage workers,\n"
    << "// FIFO lanes, and the shared memory crossbar.\n";
  v << "module cgpa_top (\n  input wire clk,\n  input wire rst,\n"
    << "  input wire start,\n  output wire done\n);\n\n";

  // FIFO lane instances.
  for (const pipeline::ChannelInfo& channel : pipeline.channels) {
    const int width = typeBits(channel.type) == 0 ? 1 : typeBits(channel.type);
    for (int lane = 0; lane < channel.lanes; ++lane) {
      const std::string base =
          "ch" + std::to_string(channel.id) + "_l" + std::to_string(lane);
      v << "  wire " << base << "_push, " << base << "_pop, " << base
        << "_full, " << base << "_empty;\n";
      v << "  wire [" << width - 1 << ":0] " << base << "_wdata, " << base
        << "_rdata;\n";
      v << "  cgpa_fifo #(.WIDTH(" << width << "), .DEPTH("
        << options.fifoDepth << ")) u_" << base
        << " (.clk(clk), .rst(rst), .push(" << base << "_push), .wdata("
        << base << "_wdata), .pop(" << base << "_pop), .rdata(" << base
        << "_rdata), .full(" << base << "_full), .empty(" << base
        << "_empty));\n";
    }
  }
  v << "\n";

  // Memory system wires.
  v << "  wire [" << requesters - 1 << ":0] mem_req_valid;\n"
    << "  wire [" << requesters * 32 - 1 << ":0] mem_req_addr;\n"
    << "  wire [" << requesters * 64 - 1 << ":0] mem_req_wdata;\n"
    << "  wire [" << requesters - 1 << ":0] mem_req_write;\n"
    << "  wire [" << requesters * 4 - 1 << ":0] mem_req_size;\n"
    << "  wire [" << requesters - 1 << ":0] mem_req_ready;\n"
    << "  wire [" << requesters - 1 << ":0] mem_resp_valid;\n"
    << "  wire [63:0] mem_resp_data;\n";
  v << "  cgpa_memsys #(.REQUESTERS(" << requesters
    << ")) u_memsys (.clk(clk), .rst(rst), .req_valid(mem_req_valid),"
    << " .req_addr(mem_req_addr), .req_wdata(mem_req_wdata),"
    << " .req_write(mem_req_write), .req_size(mem_req_size),"
    << " .req_ready(mem_req_ready), .resp_valid(mem_resp_valid),"
    << " .resp_data(mem_resp_data));\n\n";

  // Worker instances (ports beyond clk/rst/start/done/mem left open in
  // this structural sketch; the testbench drives the C++-simulated design,
  // and channel wiring is emitted per instance).
  int requester = 0;
  std::ostringstream doneExpr;
  for (std::size_t t = 0; t < pipeline.tasks.size(); ++t) {
    const pipeline::TaskInfo& task = pipeline.tasks[t];
    const int copies = task.parallel ? pipeline.numWorkers : 1;
    for (int w = 0; w < copies; ++w) {
      const std::string inst =
          "u_stage" + std::to_string(task.stageIndex) + "_w" +
          std::to_string(w);
      v << "  wire " << inst << "_done;\n";
      v << "  cgpa_" << sanitizeIdent(task.fn->name()) << " " << inst
        << " (.clk(clk), .rst(rst), .start(start), .done(" << inst
        << "_done),\n    .mem_req_valid(mem_req_valid[" << requester
        << "]), .mem_req_addr(mem_req_addr[" << requester * 32 + 31 << ":"
        << requester * 32 << "]),\n    .mem_req_wdata(mem_req_wdata["
        << requester * 64 + 63 << ":" << requester * 64
        << "]), .mem_req_write(mem_req_write[" << requester
        << "]),\n    .mem_req_size(mem_req_size[" << requester * 4 + 3 << ":"
        << requester * 4 << "]), .mem_req_ready(mem_req_ready[" << requester
        << "]),\n    .mem_resp_valid(mem_resp_valid[" << requester
        << "]), .mem_resp_data(mem_resp_data));\n";
      if (t != 0 || w != 0)
        doneExpr << " & ";
      doneExpr << inst << "_done";
      ++requester;
    }
  }
  v << "\n  assign done = " << doneExpr.str() << ";\n";
  v << "endmodule\n";
  return v.str();
}

std::string emitPipelineVerilog(const pipeline::PipelineModule& pipeline,
                                const hls::ScheduleOptions& scheduleOptions,
                                const VerilogOptions& options) {
  std::ostringstream v;
  v << "// Generated by the CGPA HLS framework (DAC'14 reproduction).\n"
    << "// " << pipeline.tasks.size() << " pipeline stage(s), "
    << pipeline.numWorkers << " worker(s) in the parallel stage.\n\n";
  v << emitFifoModule() << "\n" << emitMemorySystemModule() << "\n";
  std::vector<hls::FunctionSchedule> schedules;
  for (const pipeline::TaskInfo& task : pipeline.tasks) {
    schedules.push_back(hls::scheduleFunction(*task.fn, scheduleOptions));
    v << emitWorkerModule(*task.fn, schedules.back(),
                          "cgpa_" + sanitizeIdent(task.fn->name()))
      << "\n";
  }
  v << emitTopModule(pipeline, schedules, options);
  return v.str();
}

} // namespace cgpa::verilog
