// Verilog backend: translates scheduled task functions into RTL modules
// (FSM + datapath), instantiates FIFO buffers and a memory arbiter in a
// top-level module, and (see testbench.hpp) generates a self-checking
// testbench — the "Verilog Generation" phase of paper Section 3.4.
//
// Floating-point operations are emitted as behavioral expressions using
// $bitstoreal/$realtobits (simulation-grade, matching the paper's
// testbench-verification flow); a synthesis flow would swap in vendor FP
// cores with the same latencies the scheduler assumed.
#pragma once

#include <string>

#include "hls/schedule.hpp"
#include "pipeline/transform.hpp"

namespace cgpa::verilog {

struct VerilogOptions {
  int fifoDepth = 16;
  int fifoWidth = 32;
};

/// RTL for one worker module implementing `fn` under `schedule`.
std::string emitWorkerModule(const ir::Function& fn,
                             const hls::FunctionSchedule& schedule,
                             const std::string& moduleName);

/// Parameterizable synchronous FIFO (one module, instantiated per lane).
std::string emitFifoModule();

/// Behavioral round-robin memory arbiter + single-port memory model.
std::string emitMemorySystemModule();

/// Top-level module: stage worker instances (the parallel stage expanded
/// to its worker count), FIFO lanes with produce-side lane demux and
/// consume-side lane mux, and the shared memory system.
std::string emitTopModule(const pipeline::PipelineModule& pipeline,
                          const std::vector<hls::FunctionSchedule>& schedules,
                          const VerilogOptions& options);

/// Everything (fifo + memory + workers + top) as one .v text.
std::string emitPipelineVerilog(const pipeline::PipelineModule& pipeline,
                                const hls::ScheduleOptions& scheduleOptions,
                                const VerilogOptions& options);

/// Sanitized Verilog identifier for a value/block name.
std::string sanitizeIdent(const std::string& name);

} // namespace cgpa::verilog
