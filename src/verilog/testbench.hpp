// Testbench generation (paper Section 3.4: "the compiler also generates a
// testbench to verify the design"). The testbench drives clock/reset/start,
// waits for done with a watchdog, and dumps a configurable memory window so
// results can be diffed against the reference interpreter.
#pragma once

#include <string>

#include "pipeline/transform.hpp"

namespace cgpa::verilog {

struct TestbenchOptions {
  int clockPeriodNs = 5; ///< 200 MHz.
  std::uint64_t watchdogCycles = 10'000'000;
  /// Memory window [dumpBase, dumpBase + dumpBytes) printed at the end.
  std::uint64_t dumpBase = 0;
  std::uint64_t dumpBytes = 0;
};

/// Self-checking testbench module for the generated cgpa_top.
std::string emitTestbench(const pipeline::PipelineModule& pipeline,
                          const TestbenchOptions& options);

} // namespace cgpa::verilog
