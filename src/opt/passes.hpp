// Scalar optimization passes run before pipeline generation (paper
// Section 3.3: "a set of common optimization passes such as dead code
// elimination, strength reduction, and scalar optimizations are applied
// before generating the actual pipeline").
//
// The passes are deliberately conservative: they preserve SSA form, the
// block structure (the partitioner and transform rely on the canonical
// loop shape), and bit-exact arithmetic.
#pragma once

#include "ir/module.hpp"

namespace cgpa::opt {

struct PassStats {
  int foldedConstants = 0;
  int strengthReduced = 0;
  int commonSubexprs = 0;
  int hoisted = 0;
  int deadRemoved = 0;

  int total() const {
    return foldedConstants + strengthReduced + commonSubexprs + hoisted +
           deadRemoved;
  }
};

/// Fold instructions whose operands are all constants (binary ops,
/// comparisons, casts, selects with constant condition, single-arm phis).
int foldConstants(ir::Function& function);

/// Strength reduction: multiply/divide by powers of two become shifts;
/// x*1, x+0, x|0, x&-1, x^0 forward the operand.
int reduceStrength(ir::Function& function);

/// Block-local common subexpression elimination over pure instructions.
int eliminateCommonSubexpressions(ir::Function& function);

/// Remove side-effect-free instructions with no remaining uses
/// (iterates to a fixed point).
int eliminateDeadCode(ir::Function& function);

/// Loop-invariant code motion: hoist pure, non-load instructions whose
/// operands are all defined outside the loop into the preheader. (Loads
/// are left in place — hoisting them requires alias reasoning and changes
/// the memory-traffic profile the partitioner keys on.)
int hoistLoopInvariants(ir::Function& function);

/// The standard pre-pipeline pipeline: fold -> reduce -> CSE -> DCE,
/// repeated until nothing changes.
PassStats runScalarOptimizations(ir::Function& function);

/// Run the scalar pipeline over every function in the module.
PassStats runScalarOptimizations(ir::Module& module);

} // namespace cgpa::opt
